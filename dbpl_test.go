package dbpl_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"dbpl"
)

// ExampleDatabase_Get shows the paper's headline: extents derived from the
// type hierarchy by one generic function, with no class declarations.
func ExampleDatabase_Get() {
	person := dbpl.MustParseType("{Name: String}")
	employee := dbpl.MustParseType("{Name: String, Empno: Int}")

	db := dbpl.NewDatabase(dbpl.StrategyScan)
	db.InsertValue(dbpl.Rec("Name", dbpl.Str("P1")))
	db.InsertValue(dbpl.Rec("Name", dbpl.Str("E1"), "Empno", dbpl.IntV(1)))
	db.InsertValue(dbpl.IntV(42)) // databases are unconstrained

	fmt.Println("persons:", len(db.Get(person)))
	fmt.Println("employees:", len(db.Get(employee)))
	// Output:
	// persons: 2
	// employees: 1
}

// ExampleJoinValues shows object-level inheritance: turning a Person into
// an Employee by adding information.
func ExampleJoinValues() {
	person := dbpl.Rec("Name", dbpl.Str("J Doe"))
	extra := dbpl.Rec("Emp_no", dbpl.IntV(1234))
	emp, _ := dbpl.JoinValues(person, extra)
	fmt.Println(emp)
	// Output:
	// {Emp_no = 1234, Name = 'J Doe'}
}

// ExampleJoinRelations reproduces the shape of the paper's Figure 1 in
// miniature.
func ExampleJoinRelations() {
	people := dbpl.NewRelation(
		dbpl.Rec("Name", dbpl.Str("J Doe"), "Dept", dbpl.Str("Sales")),
		dbpl.Rec("Name", dbpl.Str("N Bug")),
	)
	depts := dbpl.NewRelation(
		dbpl.Rec("Dept", dbpl.Str("Sales"), "Floor", dbpl.IntV(3)),
	)
	fmt.Println(dbpl.JoinRelations(people, depts).Len())
	// Output:
	// 2
}

func ExampleInterp() {
	in := dbpl.NewInterp(nil)
	rs, err := in.Run(`
		type Person = {Name: String};
		let db: List[Dynamic] = [
			dynamic {Name = "P1"},
			dynamic {Name = "E1", Empno = 1}
		];
		length(get[Person](db))
	`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rs[len(rs)-1].Value)
	// Output:
	// 2
}

func TestFacadeTypeOps(t *testing.T) {
	emp := dbpl.MustParseType("{Name: String, Empno: Int}")
	per := dbpl.MustParseType("{Name: String}")
	if !dbpl.Subtype(emp, per) || dbpl.Subtype(per, emp) {
		t.Error("facade Subtype broken")
	}
	if !dbpl.EqualTypes(per, dbpl.MustParseType("{Name: String}")) {
		t.Error("facade EqualTypes broken")
	}
	j := dbpl.JoinTypes(emp, dbpl.MustParseType("{Name: String, Dept: String}"))
	if !dbpl.EqualTypes(j, per) {
		t.Errorf("JoinTypes = %s", j)
	}
	m, ok := dbpl.MeetTypes(emp, dbpl.MustParseType("{Dept: String}"))
	if !ok || !dbpl.Subtype(m, emp) {
		t.Errorf("MeetTypes = %s, %v", m, ok)
	}
	if !dbpl.Consistent(emp, per) || dbpl.Consistent(dbpl.Int, dbpl.String) {
		t.Error("Consistent broken")
	}
	if _, err := dbpl.ParseType("{{{"); err == nil {
		t.Error("ParseType should propagate errors")
	}
}

func TestFacadeValuesAndDynamics(t *testing.T) {
	v := dbpl.Rec("Name", dbpl.Str("J"), "Age", dbpl.IntV(30))
	if !dbpl.Conforms(v, dbpl.MustParseType("{Name: String}")) {
		t.Error("Conforms broken")
	}
	if !dbpl.Leq(dbpl.Rec("Name", dbpl.Str("J")), v) {
		t.Error("Leq broken")
	}
	d := dbpl.MakeDynamic(v)
	got, err := d.Coerce(dbpl.MustParseType("{Age: Int}"))
	if err != nil || !dbpl.EqualValues(got, v) {
		t.Errorf("dynamic round trip: %v, %v", got, err)
	}
	if _, err := dbpl.MakeDynamicAt(dbpl.IntV(1), dbpl.String); err == nil {
		t.Error("MakeDynamicAt should check conformance")
	}
	if dbpl.TypeOf(dbpl.NewList(dbpl.IntV(1))).String() != "List[Int]" {
		t.Error("TypeOf broken")
	}
	if dbpl.NewSet(dbpl.IntV(1), dbpl.IntV(1)).Len() != 1 {
		t.Error("NewSet broken")
	}
	if !dbpl.EqualValues(dbpl.FloatV(1.5), dbpl.FloatV(1.5)) || !dbpl.EqualValues(dbpl.BoolV(true), dbpl.BoolV(true)) {
		t.Error("atom constructors broken")
	}
}

func TestFacadeRelationsAndFDs(t *testing.T) {
	r := dbpl.NewKeyedRelation("Name")
	if _, err := r.Insert(dbpl.Rec("Name", dbpl.Str("J"))); err != nil {
		t.Fatal(err)
	}
	p := dbpl.Project(dbpl.NewRelation(
		dbpl.Rec("A", dbpl.IntV(1), "B", dbpl.IntV(2))), "A")
	if p.Len() != 1 {
		t.Error("Project broken")
	}
	e := dbpl.ExtractByType(dbpl.NewRelation(
		dbpl.Rec("Name", dbpl.Str("x")), dbpl.Rec("K", dbpl.IntV(1))),
		dbpl.MustParseType("{Name: String}"))
	if e.Len() != 1 {
		t.Error("ExtractByType broken")
	}
	f := dbpl.NewFlat("A", "B")
	if err := f.Insert(dbpl.Rec("A", dbpl.IntV(1), "B", dbpl.IntV(2))); err != nil {
		t.Fatal(err)
	}
	if !dbpl.FDImplies([]dbpl.FD{dbpl.Dep("A", "B"), dbpl.Dep("B", "C")}, dbpl.Dep("A", "C")) {
		t.Error("FDImplies broken")
	}
}

func TestFacadeClasses(t *testing.T) {
	s := dbpl.NewSchema()
	person := s.MustDeclare("Person", dbpl.VariableClass, "{Name: String}")
	emp := s.MustDeclare("Employee", dbpl.VariableClass, "{Name: String, Empno: Int}", "Person")
	if _, err := s.NewObject(emp, dbpl.Rec("Name", dbpl.Str("E"), "Empno", dbpl.IntV(1))); err != nil {
		t.Fatal(err)
	}
	pe, err := person.Extent()
	if err != nil || len(pe) != 1 {
		t.Errorf("extent inclusion broken: %v, %v", pe, err)
	}
}

func TestFacadePersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := dbpl.OpenStore(filepath.Join(dir, "s.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bind("x", dbpl.Rec("K", dbpl.IntV(1)), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	rep, err := dbpl.OpenReplicating(filepath.Join(dir, "rep"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ExternValue("h", dbpl.IntV(7)); err != nil {
		t.Fatal(err)
	}
	if v, err := rep.InternAs("h", dbpl.Int); err != nil || !dbpl.EqualValues(v, dbpl.IntV(7)) {
		t.Errorf("replicating round trip: %v, %v", v, err)
	}
	env := dbpl.NewEnvironment()
	env.Bind("a", dbpl.IntV(1))
	var buf bytes.Buffer
	if err := dbpl.SaveEnvironment(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := dbpl.ResumeEnvironment(&buf)
	if err != nil || got.Len() != 1 {
		t.Errorf("snapshot round trip: %v", err)
	}
}

func TestFacadeJoinFastAndGroupBy(t *testing.T) {
	people := dbpl.NewRelation(
		dbpl.Rec("Name", dbpl.Str("J"), "Dept", dbpl.Str("S")),
		dbpl.Rec("Name", dbpl.Str("M"), "Dept", dbpl.Str("S")),
	)
	depts := dbpl.NewRelation(dbpl.Rec("Dept", dbpl.Str("S"), "Floor", dbpl.IntV(3)))
	fast := dbpl.JoinRelationsFast(people, depts)
	if fast.Len() != dbpl.JoinRelations(people, depts).Len() {
		t.Error("facade join strategies disagree")
	}
	g, err := dbpl.GroupBy(fast, []string{"Dept"}, dbpl.CountAll("N"), dbpl.Sum("F", "Floor"),
		dbpl.Min("Lo", "Floor"), dbpl.Max("Hi", "Floor"), dbpl.Count("K", "Floor"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("GroupBy = %s", g)
	}
}

func TestFacadeGetTypeSignature(t *testing.T) {
	want := dbpl.MustParseType("forall t . List[Dynamic] -> List[exists u <= t . u]")
	if !dbpl.EqualTypes(dbpl.GetType, want) {
		t.Errorf("GetType = %s", dbpl.GetType)
	}
}
