package fd

import "sort"

// This file carries the dependency theory through to schema normalization:
// BCNF violation detection and decomposition, 3NF synthesis from a minimal
// cover, and the binary lossless-join test. The paper points at [Bune86]
// for "the basic results of the theory of functional dependencies"; these
// are the standard consequences a database programming language's schema
// layer builds on.

// Superkey reports whether x determines every attribute of the (sub)schema.
func Superkey(x AttrSet, schema AttrSet, fds []FD) bool {
	return Closure(x, fds).Contains(schema)
}

// BCNFViolation finds a nontrivial dependency X → Y over the given
// (sub)schema, implied by fds, whose left side is not a superkey of the
// subschema. ok is false when the subschema is in BCNF. The search
// enumerates subsets of the subschema and is exponential in its width, as
// the problem demands; schemas are small.
func BCNFViolation(schema AttrSet, fds []FD) (FD, bool) {
	attrs := schema.Sorted()
	n := len(attrs)
	// Enumerate proper nonempty subsets X in order of increasing size so the
	// reported violation has a minimal left side.
	for size := 1; size < n; size++ {
		var found FD
		ok := false
		var walk func(start int, cur []string)
		walk = func(start int, cur []string) {
			if ok {
				return
			}
			if len(cur) == size {
				x := NewAttrSet(cur...)
				closure := Closure(x, fds)
				// Restrict to the subschema.
				y := AttrSet{}
				for a := range closure {
					if schema[a] && !x[a] {
						y[a] = true
					}
				}
				if len(y) > 0 && !closure.Contains(schema) {
					found = FD{From: x, To: y}
					ok = true
				}
				return
			}
			for i := start; i < n; i++ {
				walk(i+1, append(cur, attrs[i]))
			}
		}
		walk(0, nil)
		if ok {
			return found, true
		}
	}
	return FD{}, false
}

// IsBCNF reports whether the (sub)schema is in Boyce–Codd normal form with
// respect to the dependencies.
func IsBCNF(schema AttrSet, fds []FD) bool {
	_, violated := BCNFViolation(schema, fds)
	return !violated
}

// DecomposeBCNF splits the schema into BCNF subschemas by the classical
// recursive algorithm: on a violation X → Y, split into X ∪ Y and
// schema − Y. Every split is lossless (X is shared and X → X ∪ Y).
// Dependency preservation is not guaranteed, as usual.
func DecomposeBCNF(schema AttrSet, fds []FD) []AttrSet {
	v, violated := BCNFViolation(schema, fds)
	if !violated {
		return []AttrSet{schema}
	}
	left := v.From.Union(v.To)
	right := AttrSet{}
	for a := range schema {
		if !v.To[a] || v.From[a] {
			right[a] = true
		}
	}
	out := DecomposeBCNF(left, fds)
	out = append(out, DecomposeBCNF(right, fds)...)
	return dedupeSchemas(out)
}

// Synthesize3NF produces a third-normal-form, dependency-preserving,
// lossless decomposition by the synthesis algorithm: one subschema per
// minimal-cover group (same left side), plus a candidate key if no
// subschema contains one, with subsumed subschemas dropped.
func Synthesize3NF(schema AttrSet, fds []FD) []AttrSet {
	mc := MinimalCover(fds)
	// Group by left-hand side.
	groups := map[string]AttrSet{}
	for _, f := range mc {
		k := f.From.String()
		g, ok := groups[k]
		if !ok {
			g = f.From.Union(nil)
		}
		groups[k] = g.Union(f.To)
	}
	var out []AttrSet
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, groups[k])
	}
	// Ensure some subschema contains a candidate key of the whole schema.
	cks := CandidateKeys(schema, fds)
	hasKey := false
	for _, sub := range out {
		for _, ck := range cks {
			if sub.Contains(ck) {
				hasKey = true
				break
			}
		}
		if hasKey {
			break
		}
	}
	if !hasKey && len(cks) > 0 {
		out = append(out, cks[0])
	}
	// Attributes in no dependency still need a home: put them with a key.
	covered := AttrSet{}
	for _, sub := range out {
		covered = covered.Union(sub)
	}
	loose := AttrSet{}
	for a := range schema {
		if !covered[a] {
			loose[a] = true
		}
	}
	if len(loose) > 0 {
		if len(cks) > 0 {
			out = append(out, cks[0].Union(loose))
		} else {
			out = append(out, loose)
		}
	}
	return dedupeSchemas(out)
}

// dedupeSchemas removes subschemas contained in another subschema.
func dedupeSchemas(in []AttrSet) []AttrSet {
	var out []AttrSet
	for i, a := range in {
		subsumed := false
		for j, b := range in {
			if i == j {
				continue
			}
			if b.Contains(a) && (!a.Contains(b) || j < i) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, a)
		}
	}
	return out
}

// ProjectFDs computes the dependencies implied on a subschema: for every
// subset X of the subschema, X → (X⁺ ∩ subschema). Exponential in the
// subschema width, as the problem demands. Trivial dependencies are
// omitted.
func ProjectFDs(sub AttrSet, fds []FD) []FD {
	attrs := sub.Sorted()
	n := len(attrs)
	var out []FD
	for mask := 1; mask < (1 << n); mask++ {
		x := AttrSet{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				x[attrs[i]] = true
			}
		}
		closure := Closure(x, fds)
		y := AttrSet{}
		for a := range closure {
			if sub[a] && !x[a] {
				y[a] = true
			}
		}
		if len(y) > 0 {
			out = append(out, FD{From: x, To: y})
		}
	}
	return out
}

// PreservesDependencies reports whether a decomposition preserves the
// dependencies: the union of the projections onto the parts implies every
// original dependency.
func PreservesDependencies(parts []AttrSet, fds []FD) bool {
	var projected []FD
	for _, p := range parts {
		projected = append(projected, ProjectFDs(p, fds)...)
	}
	for _, f := range fds {
		if !Implies(projected, f) {
			return false
		}
	}
	return true
}

// LosslessSplit reports whether splitting schema into (r1, r2) is a
// lossless-join decomposition under fds: the shared attributes must
// functionally determine one side (r1 ∩ r2 → r1 or r1 ∩ r2 → r2).
func LosslessSplit(r1, r2 AttrSet, fds []FD) bool {
	shared := AttrSet{}
	for a := range r1 {
		if r2[a] {
			shared[a] = true
		}
	}
	c := Closure(shared, fds)
	return c.Contains(r1) || c.Contains(r2)
}
