// Package fd implements the classical theory of functional dependencies —
// attribute-set closure under Armstrong's axioms, implication, equivalence,
// minimal covers and candidate keys — together with dependency satisfaction
// on both flat (1NF) relations and the paper's generalized relations. The
// paper notes that the interaction of the information ordering with a
// projection ordering "allows us [to] derive the basic results of the
// theory of functional dependencies" [Bune86]; this package provides those
// results so the claim can be exercised (experiment E8).
package fd

import (
	"fmt"
	"sort"
	"strings"

	"dbpl/internal/relation"
	"dbpl/internal/value"
)

// AttrSet is a set of attribute names.
type AttrSet map[string]bool

// NewAttrSet builds an attribute set.
func NewAttrSet(attrs ...string) AttrSet {
	s := AttrSet{}
	for _, a := range attrs {
		s[a] = true
	}
	return s
}

// Sorted returns the attributes in sorted order.
func (s AttrSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether every attribute of t is in s.
func (s AttrSet) Contains(t AttrSet) bool {
	for a := range t {
		if !s[a] {
			return false
		}
	}
	return true
}

// Union returns s ∪ t as a new set.
func (s AttrSet) Union(t AttrSet) AttrSet {
	out := AttrSet{}
	for a := range s {
		out[a] = true
	}
	for a := range t {
		out[a] = true
	}
	return out
}

// Equal reports set equality.
func (s AttrSet) Equal(t AttrSet) bool { return s.Contains(t) && t.Contains(s) }

// String renders the set as {A, B, C}.
func (s AttrSet) String() string { return "{" + strings.Join(s.Sorted(), ", ") + "}" }

// FD is a functional dependency From → To.
type FD struct {
	From AttrSet
	To   AttrSet
}

// Dep builds the dependency from → to, with "," separating attribute names:
// Dep("Name", "Dept,Floor").
func Dep(from, to string) FD {
	split := func(s string) AttrSet {
		out := AttrSet{}
		for _, a := range strings.Split(s, ",") {
			if a = strings.TrimSpace(a); a != "" {
				out[a] = true
			}
		}
		return out
	}
	return FD{From: split(from), To: split(to)}
}

// String renders the dependency as A, B -> C.
func (f FD) String() string {
	return strings.Join(f.From.Sorted(), ", ") + " -> " + strings.Join(f.To.Sorted(), ", ")
}

// Trivial reports whether the dependency is implied by reflexivity alone
// (To ⊆ From).
func (f FD) Trivial() bool { return f.From.Contains(f.To) }

// Closure computes the closure X⁺ of the attribute set under the given
// dependencies: the largest set Y with X → Y derivable by Armstrong's
// axioms. It runs in O(|fds| · |attrs|) rounds.
func Closure(x AttrSet, fds []FD) AttrSet {
	out := AttrSet{}
	for a := range x {
		out[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if out.Contains(f.From) && !out.Contains(f.To) {
				for a := range f.To {
					out[a] = true
				}
				changed = true
			}
		}
	}
	return out
}

// Implies reports whether the set of dependencies logically implies f,
// using the closure test: fds ⊨ X → Y iff Y ⊆ X⁺.
func Implies(fds []FD, f FD) bool {
	return Closure(f.From, fds).Contains(f.To)
}

// Equivalent reports whether two dependency sets imply each other.
func Equivalent(a, b []FD) bool {
	for _, f := range a {
		if !Implies(b, f) {
			return false
		}
	}
	for _, f := range b {
		if !Implies(a, f) {
			return false
		}
	}
	return true
}

// MinimalCover returns a minimal cover of fds: singleton right-hand sides,
// no redundant dependencies, and no extraneous left-hand attributes. The
// result is equivalent to the input.
func MinimalCover(fds []FD) []FD {
	// 1. Split right-hand sides.
	var work []FD
	for _, f := range fds {
		for a := range f.To {
			if f.From[a] {
				continue // trivial component
			}
			work = append(work, FD{From: f.From.Union(nil), To: NewAttrSet(a)})
		}
	}
	// 2. Remove extraneous left-hand attributes.
	for i := range work {
		for {
			removed := false
			for a := range work[i].From {
				if len(work[i].From) == 1 {
					break
				}
				smaller := AttrSet{}
				for b := range work[i].From {
					if b != a {
						smaller[b] = true
					}
				}
				if Closure(smaller, work).Contains(work[i].To) {
					work[i].From = smaller
					removed = true
					break
				}
			}
			if !removed {
				break
			}
		}
	}
	// 3. Remove redundant dependencies.
	var out []FD
	for i := range work {
		rest := make([]FD, 0, len(work)-1)
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if !Implies(rest, work[i]) {
			out = append(out, work[i])
		}
	}
	// Deduplicate identical dependencies (possible after step 2).
	seen := map[string]bool{}
	var dedup []FD
	for _, f := range out {
		k := f.String()
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// CandidateKeys returns all minimal attribute sets whose closure covers the
// whole schema. Exponential in the worst case, as the problem demands; fine
// for schema-sized inputs.
func CandidateKeys(schema AttrSet, fds []FD) []AttrSet {
	attrs := schema.Sorted()
	n := len(attrs)
	var keys []AttrSet
	// Enumerate subsets in order of increasing size so minimality is a
	// superset check against already-found keys.
	for size := 0; size <= n; size++ {
		var walk func(start int, cur []string)
		walk = func(start int, cur []string) {
			if len(cur) == size {
				cand := NewAttrSet(cur...)
				for _, k := range keys {
					if cand.Contains(k) {
						return // superset of a smaller key: not minimal
					}
				}
				if Closure(cand, fds).Contains(schema) {
					keys = append(keys, cand)
				}
				return
			}
			for i := start; i < n; i++ {
				walk(i+1, append(cur, attrs[i]))
			}
		}
		walk(0, nil)
	}
	return keys
}

// SatisfiedFlat reports whether the flat relation satisfies f classically:
// no two tuples agree on From but disagree somewhere in To.
func SatisfiedFlat(r *relation.Flat, f FD) bool {
	groups := map[string]*value.Record{}
	for _, t := range r.Tuples() {
		k, ok := projKey(t, f.From)
		if !ok {
			continue // attribute not in schema: vacuous for this tuple
		}
		if prev, seen := groups[k]; seen {
			if !agree(prev, t, f.To) {
				return false
			}
		} else {
			groups[k] = t
		}
	}
	return true
}

// SatisfiedGen reports whether the generalized relation satisfies f under
// the domain-theoretic reading: whenever two members both define all of
// From and agree on it, their To-projections must be *joinable* — they may
// differ only where one is silent. On flat data this coincides with
// SatisfiedFlat, since atoms are joinable exactly when equal.
func SatisfiedGen(r *relation.Relation, f FD) bool {
	groups := map[string][]*value.Record{}
	for _, m := range r.Members() {
		rec, ok := m.(*value.Record)
		if !ok {
			continue
		}
		k, ok := projKey(rec, f.From)
		if !ok {
			continue // member silent on part of From: no claim made
		}
		groups[k] = append(groups[k], rec)
	}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				if !joinableOn(g[i], g[j], f.To) {
					return false
				}
			}
		}
	}
	return true
}

// projKey builds a canonical key of rec's values on attrs; ok is false when
// any attribute is absent.
func projKey(rec *value.Record, attrs AttrSet) (string, bool) {
	var b strings.Builder
	for _, a := range attrs.Sorted() {
		v, ok := rec.Get(a)
		if !ok {
			return "", false
		}
		fmt.Fprintf(&b, "%s|", value.Key(v))
	}
	return b.String(), true
}

// agree reports whether both records have equal values on every attribute
// of attrs that either defines (flat data always defines all).
func agree(a, b *value.Record, attrs AttrSet) bool {
	for x := range attrs {
		av, aok := a.Get(x)
		bv, bok := b.Get(x)
		if aok != bok {
			return false
		}
		if aok && !value.Equal(av, bv) {
			return false
		}
	}
	return true
}

// joinableOn reports whether the two records' projections onto attrs join
// without conflict.
func joinableOn(a, b *value.Record, attrs AttrSet) bool {
	for x := range attrs {
		av, aok := a.Get(x)
		bv, bok := b.Get(x)
		if aok && bok {
			if _, err := value.Join(av, bv); err != nil {
				return false
			}
		}
	}
	return true
}
