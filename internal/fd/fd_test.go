package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dbpl/internal/relation"
	"dbpl/internal/value"
)

func TestClosureTextbook(t *testing.T) {
	// R(A,B,C,D,E,F) with A,B → C; B,C → A,D; D → E; C,F → B.
	fds := []FD{
		Dep("A,B", "C"),
		Dep("B,C", "A,D"),
		Dep("D", "E"),
		Dep("C,F", "B"),
	}
	got := Closure(NewAttrSet("A", "B"), fds)
	want := NewAttrSet("A", "B", "C", "D", "E")
	if !got.Equal(want) {
		t.Errorf("{A,B}+ = %s, want %s", got, want)
	}
	got = Closure(NewAttrSet("D"), fds)
	if !got.Equal(NewAttrSet("D", "E")) {
		t.Errorf("{D}+ = %s, want {D, E}", got)
	}
}

func TestArmstrongAxiomsDerivable(t *testing.T) {
	// Reflexivity: X → Y for Y ⊆ X, from no dependencies at all.
	if !Implies(nil, Dep("A,B", "A")) {
		t.Error("reflexivity failed")
	}
	// Augmentation: from A → B derive A,C → B,C.
	if !Implies([]FD{Dep("A", "B")}, Dep("A,C", "B,C")) {
		t.Error("augmentation failed")
	}
	// Transitivity: from A → B and B → C derive A → C.
	if !Implies([]FD{Dep("A", "B"), Dep("B", "C")}, Dep("A", "C")) {
		t.Error("transitivity failed")
	}
	// Pseudo-transitivity: A → B and B,C → D give A,C → D.
	if !Implies([]FD{Dep("A", "B"), Dep("B,C", "D")}, Dep("A,C", "D")) {
		t.Error("pseudo-transitivity failed")
	}
	// Non-implication.
	if Implies([]FD{Dep("A", "B")}, Dep("B", "A")) {
		t.Error("implication must not invert dependencies")
	}
}

func TestMinimalCover(t *testing.T) {
	fds := []FD{
		Dep("A", "B,C"),
		Dep("B", "C"),
		Dep("A,B", "C"), // redundant given A → B and B → C
		Dep("A", "A"),   // trivial
	}
	mc := MinimalCover(fds)
	if !Equivalent(mc, fds) {
		t.Fatalf("minimal cover %v not equivalent to input", mc)
	}
	for _, f := range mc {
		if len(f.To) != 1 {
			t.Errorf("cover FD %s has non-singleton RHS", f)
		}
		if f.Trivial() {
			t.Errorf("cover contains trivial FD %s", f)
		}
	}
	// A → B and B → C suffice; A → C is derivable and must be gone.
	if len(mc) != 2 {
		t.Errorf("cover = %v, want 2 dependencies", mc)
	}
}

func TestMinimalCoverExtraneousLHS(t *testing.T) {
	// In A,B → C with A → C, B is extraneous.
	fds := []FD{Dep("A,B", "C"), Dep("A", "C")}
	mc := MinimalCover(fds)
	if !Equivalent(mc, fds) {
		t.Fatal("cover not equivalent")
	}
	for _, f := range mc {
		if len(f.From) > 1 {
			t.Errorf("cover FD %s kept an extraneous attribute", f)
		}
	}
}

func TestCandidateKeys(t *testing.T) {
	// R(A,B,C) with A → B, B → C: key is {A}.
	keys := CandidateKeys(NewAttrSet("A", "B", "C"), []FD{Dep("A", "B"), Dep("B", "C")})
	if len(keys) != 1 || !keys[0].Equal(NewAttrSet("A")) {
		t.Errorf("keys = %v, want [{A}]", keys)
	}
	// R(A,B) with A → B and B → A: both {A} and {B}.
	keys = CandidateKeys(NewAttrSet("A", "B"), []FD{Dep("A", "B"), Dep("B", "A")})
	if len(keys) != 2 {
		t.Errorf("keys = %v, want two", keys)
	}
	// No dependencies: the whole schema is the only key.
	keys = CandidateKeys(NewAttrSet("A", "B"), nil)
	if len(keys) != 1 || !keys[0].Equal(NewAttrSet("A", "B")) {
		t.Errorf("keys = %v, want [{A, B}]", keys)
	}
}

func mkFlat(t *testing.T, rows [][3]string) *relation.Flat {
	t.Helper()
	f := relation.NewFlat("Name", "Dept", "Floor")
	for _, r := range rows {
		err := f.Insert(value.Rec(
			"Name", value.String(r[0]),
			"Dept", value.String(r[1]),
			"Floor", value.String(r[2])))
		if err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestSatisfiedFlat(t *testing.T) {
	good := mkFlat(t, [][3]string{
		{"J Doe", "Sales", "3"},
		{"M Dee", "Manuf", "1"},
		{"N Bug", "Manuf", "1"},
	})
	if !SatisfiedFlat(good, Dep("Name", "Dept")) {
		t.Error("Name → Dept should hold")
	}
	if !SatisfiedFlat(good, Dep("Dept", "Floor")) {
		t.Error("Dept → Floor should hold")
	}
	bad := mkFlat(t, [][3]string{
		{"J Doe", "Sales", "3"},
		{"J Doe", "Manuf", "1"},
	})
	if SatisfiedFlat(bad, Dep("Name", "Dept")) {
		t.Error("violated dependency reported satisfied")
	}
}

func TestSatisfiedGen(t *testing.T) {
	// Members silent on part of the LHS make no claim.
	r := relation.New(
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales")),
		value.Rec("Name", value.String("J Doe")), // silent on Dept — subsumed? No: comparable!
	)
	// The comparable pair collapses by subsumption, so build explicitly:
	r = relation.New(
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales")),
		value.Rec("Name", value.String("M Dee")),
	)
	if !SatisfiedGen(r, Dep("Name", "Dept")) {
		t.Error("silence is not a violation")
	}
	// Two members agreeing on Name with conflicting Dept: violation.
	viol := relation.New(
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales"), "A", value.Int(1)),
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Manuf"), "B", value.Int(2)),
	)
	if SatisfiedGen(viol, Dep("Name", "Dept")) {
		t.Error("conflicting Dept under equal Name should violate")
	}
	// Agreement where one is silent on the RHS: joinable, hence fine.
	partial := relation.New(
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales"), "A", value.Int(1)),
		value.Rec("Name", value.String("J Doe"), "B", value.Int(2)),
	)
	if !SatisfiedGen(partial, Dep("Name", "Dept")) {
		t.Error("a silent RHS is joinable with anything")
	}
}

func TestGenCoincidesWithFlatOnFlatData(t *testing.T) {
	flat := mkFlat(t, [][3]string{
		{"J Doe", "Sales", "3"},
		{"M Dee", "Manuf", "1"},
		{"N Bug", "Manuf", "2"}, // violates Dept → Floor
	})
	gen := flat.Generalize()
	for _, f := range []FD{
		Dep("Name", "Dept"), Dep("Dept", "Floor"), Dep("Name", "Floor"),
		Dep("Floor", "Dept"), Dep("Dept,Floor", "Name"),
	} {
		if SatisfiedFlat(flat, f) != SatisfiedGen(gen, f) {
			t.Errorf("flat and generalized satisfaction disagree on %s", f)
		}
	}
}

func TestQuickGenCoincidesWithFlat(t *testing.T) {
	// Property: on randomly generated flat data, the generalized reading of
	// FD satisfaction coincides with the classical one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flat := relation.NewFlat("A", "B", "C")
		for i := 0; i < 10; i++ {
			_ = flat.Insert(value.Rec(
				"A", value.Int(int64(rng.Intn(3))),
				"B", value.Int(int64(rng.Intn(3))),
				"C", value.Int(int64(rng.Intn(3)))))
		}
		gen := flat.Generalize()
		for _, d := range []FD{Dep("A", "B"), Dep("B", "C"), Dep("A,B", "C"), Dep("C", "A,B")} {
			if SatisfiedFlat(flat, d) != SatisfiedGen(gen, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickClosureMonotoneAndIdempotent(t *testing.T) {
	gen := func(rng *rand.Rand) []FD {
		attrs := []string{"A", "B", "C", "D"}
		var fds []FD
		for i := 0; i < rng.Intn(5); i++ {
			from := NewAttrSet(attrs[rng.Intn(4)])
			to := NewAttrSet(attrs[rng.Intn(4)])
			fds = append(fds, FD{From: from, To: to})
		}
		return fds
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fds := gen(rng)
		x := NewAttrSet("A")
		cx := Closure(x, fds)
		// X ⊆ X⁺, (X⁺)⁺ = X⁺, and closure is monotone.
		if !cx.Contains(x) {
			return false
		}
		if !Closure(cx, fds).Equal(cx) {
			return false
		}
		bigger := x.Union(NewAttrSet("B"))
		return Closure(bigger, fds).Contains(cx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDepParsingAndString(t *testing.T) {
	d := Dep(" A , B ", "C")
	if d.String() != "A, B -> C" {
		t.Errorf("String = %q", d.String())
	}
	if !d.From.Equal(NewAttrSet("A", "B")) {
		t.Error("Dep did not trim attribute names")
	}
	if !Dep("A,B", "A").Trivial() {
		t.Error("A,B → A is trivial")
	}
	if Dep("A", "B").Trivial() {
		t.Error("A → B is not trivial")
	}
}
