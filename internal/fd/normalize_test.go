package fd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSuperkey(t *testing.T) {
	schema := NewAttrSet("A", "B", "C")
	fds := []FD{Dep("A", "B"), Dep("B", "C")}
	if !Superkey(NewAttrSet("A"), schema, fds) {
		t.Error("{A} is a superkey")
	}
	if Superkey(NewAttrSet("B"), schema, fds) {
		t.Error("{B} is not a superkey")
	}
	if !Superkey(NewAttrSet("A", "B"), schema, fds) {
		t.Error("supersets of keys are superkeys")
	}
}

func TestBCNFViolation(t *testing.T) {
	// The classic: R(Street, City, Zip) with Street,City → Zip and
	// Zip → City. Zip → City violates BCNF (Zip is not a superkey).
	schema := NewAttrSet("Street", "City", "Zip")
	fds := []FD{Dep("Street,City", "Zip"), Dep("Zip", "City")}
	v, violated := BCNFViolation(schema, fds)
	if !violated {
		t.Fatal("schema should violate BCNF")
	}
	if !v.From.Equal(NewAttrSet("Zip")) {
		t.Errorf("minimal violation LHS = %s, want {Zip}", v.From)
	}
	if IsBCNF(schema, fds) {
		t.Error("IsBCNF disagrees with BCNFViolation")
	}
	// A key-determined schema is in BCNF.
	if !IsBCNF(NewAttrSet("A", "B"), []FD{Dep("A", "B")}) {
		t.Error("R(A,B) with A → B is in BCNF")
	}
	if !IsBCNF(NewAttrSet("A", "B"), nil) {
		t.Error("a schema with no dependencies is in BCNF")
	}
}

func TestDecomposeBCNF(t *testing.T) {
	schema := NewAttrSet("Street", "City", "Zip")
	fds := []FD{Dep("Street,City", "Zip"), Dep("Zip", "City")}
	parts := DecomposeBCNF(schema, fds)
	// Every part is in BCNF and the union covers the schema.
	union := AttrSet{}
	for _, p := range parts {
		if !IsBCNF(p, fds) {
			t.Errorf("part %s is not in BCNF", p)
		}
		union = union.Union(p)
	}
	if !union.Equal(schema) {
		t.Errorf("decomposition loses attributes: %v", parts)
	}
	// The classic result: {Zip, City} and {Zip, Street}.
	if len(parts) != 2 {
		t.Fatalf("parts = %v, want 2", parts)
	}
	if !LosslessSplit(parts[0], parts[1], fds) {
		t.Error("BCNF decomposition must be lossless")
	}
}

func TestDecomposeBCNFAlreadyNormal(t *testing.T) {
	schema := NewAttrSet("A", "B", "C")
	fds := []FD{Dep("A", "B,C")}
	parts := DecomposeBCNF(schema, fds)
	if len(parts) != 1 || !parts[0].Equal(schema) {
		t.Errorf("BCNF schema should not split: %v", parts)
	}
}

func TestSynthesize3NF(t *testing.T) {
	// R(A,B,C,D) with A → B, B → C: synthesis gives {A,B}, {B,C} and a key
	// subschema containing D.
	schema := NewAttrSet("A", "B", "C", "D")
	fds := []FD{Dep("A", "B"), Dep("B", "C")}
	parts := Synthesize3NF(schema, fds)
	union := AttrSet{}
	for _, p := range parts {
		union = union.Union(p)
	}
	if !union.Equal(schema) {
		t.Errorf("synthesis loses attributes: %v", parts)
	}
	// Some part must contain a candidate key ({A, D}).
	hasKey := false
	for _, p := range parts {
		if p.Contains(NewAttrSet("A", "D")) {
			hasKey = true
		}
	}
	if !hasKey {
		t.Errorf("no part contains the key {A, D}: %v", parts)
	}
	// Dependency preservation: each original FD is implied by the FDs
	// projected onto some part — for synthesis, each minimal-cover FD lives
	// whole in a part.
	for _, f := range MinimalCover(fds) {
		lives := false
		for _, p := range parts {
			if p.Contains(f.From) && p.Contains(f.To) {
				lives = true
				break
			}
		}
		if !lives {
			t.Errorf("dependency %s not preserved by %v", f, parts)
		}
	}
}

func TestSynthesize3NFNoFDs(t *testing.T) {
	schema := NewAttrSet("A", "B")
	parts := Synthesize3NF(schema, nil)
	if len(parts) != 1 || !parts[0].Equal(schema) {
		t.Errorf("no dependencies: whole schema is the only part, got %v", parts)
	}
}

func TestLosslessSplit(t *testing.T) {
	fds := []FD{Dep("Zip", "City")}
	if !LosslessSplit(NewAttrSet("Zip", "City"), NewAttrSet("Zip", "Street"), fds) {
		t.Error("split on Zip (which determines City) is lossless")
	}
	if LosslessSplit(NewAttrSet("A", "B"), NewAttrSet("C", "B"), nil) {
		t.Error("split sharing a non-determining attribute is lossy")
	}
}

func TestQuickDecompositionInvariants(t *testing.T) {
	attrs := []string{"A", "B", "C", "D", "E"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var fds []FD
		for i := 0; i < rng.Intn(5); i++ {
			from := NewAttrSet(attrs[rng.Intn(5)])
			if rng.Intn(2) == 0 {
				from[attrs[rng.Intn(5)]] = true
			}
			to := NewAttrSet(attrs[rng.Intn(5)])
			fds = append(fds, FD{From: from, To: to})
		}
		schema := NewAttrSet(attrs...)
		parts := DecomposeBCNF(schema, fds)
		union := AttrSet{}
		for _, p := range parts {
			if !IsBCNF(p, fds) {
				return false
			}
			union = union.Union(p)
		}
		if !union.Equal(schema) {
			return false
		}
		// 3NF synthesis also covers the schema and keeps a key.
		sparts := Synthesize3NF(schema, fds)
		sunion := AttrSet{}
		hasKey := false
		cks := CandidateKeys(schema, fds)
		for _, p := range sparts {
			sunion = sunion.Union(p)
			for _, ck := range cks {
				if p.Contains(ck) {
					hasKey = true
				}
			}
		}
		return sunion.Equal(schema) && hasKey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestProjectFDsAndPreservation(t *testing.T) {
	fds := []FD{Dep("A", "B"), Dep("B", "C")}
	// Projecting onto {A, C} reveals the transitive A → C even though no
	// given dependency mentions only those attributes.
	proj := ProjectFDs(NewAttrSet("A", "C"), fds)
	if !Implies(proj, Dep("A", "C")) {
		t.Errorf("projection lost A → C: %v", proj)
	}
	if Implies(proj, Dep("C", "A")) {
		t.Error("projection invented C → A")
	}
	// 3NF synthesis preserves dependencies; this particular BCNF
	// decomposition famously does not.
	schema := NewAttrSet("Street", "City", "Zip")
	zipFDs := []FD{Dep("Street,City", "Zip"), Dep("Zip", "City")}
	if !PreservesDependencies(Synthesize3NF(schema, zipFDs), zipFDs) {
		t.Error("3NF synthesis should preserve dependencies")
	}
	if PreservesDependencies(DecomposeBCNF(schema, zipFDs), zipFDs) {
		t.Error("the Street/City/Zip BCNF decomposition is the classic dependency-loss example")
	}
	// Trivially, projecting onto the whole schema preserves everything.
	if !PreservesDependencies([]AttrSet{NewAttrSet("A", "B", "C")}, fds) {
		t.Error("identity decomposition must preserve dependencies")
	}
}
