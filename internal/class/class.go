// Package class implements the *baseline* the paper argues against needing:
// explicit class constructs in the style of Taxis, Adaplex and Galileo,
// where a class couples a record type with a maintained extent and the
// subclass hierarchy is declared rather than derived.
//
//   - Taxis: VARIABLE_CLASS (with an extent defined by explicit insertion
//     and deletion) vs AGGREGATE_CLASS (a plain record type); classes are
//     themselves instances of meta-classes, giving a three-level instance
//     hierarchy.
//   - Adaplex: entity types with "include Employee in Person" directives;
//     creating an Employee instance also creates a Person instance.
//   - Galileo: a class is built on a separately declared type.
//
// The package also models the paper's two instance-hierarchy scenarios (the
// university parking lot and the priced products) through class-level
// attributes: a class is simultaneously an object whose fields live on the
// class itself.
//
// Object extension (Specialize) migrates an object *down* the hierarchy in
// place — turning a Person into an Employee by adding information, the
// operation Amber cannot express without delete-and-readd.
package class

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Kind distinguishes Taxis's two meta-classes.
type Kind int

const (
	// VariableClass has an extent maintained by insertion and deletion.
	VariableClass Kind = iota
	// AggregateClass is a pure record type with no extent, like a record
	// type in an ordinary programming language.
	AggregateClass
)

// String returns the kind's Taxis-style name.
func (k Kind) String() string {
	if k == AggregateClass {
		return "AGGREGATE_CLASS"
	}
	return "VARIABLE_CLASS"
}

// Errors reported by schema operations.
var (
	ErrDuplicateClass = errors.New("class: class already declared")
	ErrUnknownClass   = errors.New("class: unknown class")
	ErrNotSubtype     = errors.New("class: class type is not a subtype of its superclass")
	ErrNotConforming  = errors.New("class: record does not conform to class type")
	ErrNoExtent       = errors.New("class: aggregate classes have no extent")
	ErrNotSubclass    = errors.New("class: target is not a subclass of the object's class")
)

// Object is a class instance: a mutable record with identity, tracked by
// the extents of its class and all superclasses.
type Object struct {
	rec  *value.Record
	cls  *Class // most specific class
	mu   sync.Mutex
	dead bool
}

// Record returns the object's underlying record (shared, mutable).
func (o *Object) Record() *value.Record { return o.rec }

// Class returns the object's most specific class.
func (o *Object) Class() *Class {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cls
}

// String renders the object with its class.
func (o *Object) String() string { return fmt.Sprintf("%s %s", o.Class().Name(), o.rec) }

// Class is a declared class: a name, a kind, a record type, declared
// superclasses, optional class-level attributes, and (for variable classes)
// an extent.
type Class struct {
	name   string
	kind   Kind
	typ    types.Type
	in     *types.Interned // canonical handle of typ
	supers []*Class
	attrs  *value.Record // class-level attributes (instance-hierarchy use)
	extent []*Object
	schema *Schema

	// Instance hierarchy (see meta.go): the meta-class this class is an
	// instance of, and the classes that are instances of this one.
	meta           *Class
	classInstances []*Class
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Kind returns the class kind.
func (c *Class) Kind() Kind { return c.kind }

// Type returns the record type associated with the class.
func (c *Class) Type() types.Type { return c.typ }

// Interned returns the canonical handle of the class type, so conformance
// checks against the class are pointer-keyed cache hits.
func (c *Class) Interned() *types.Interned { return c.in }

// Attrs returns the class-level attribute record, creating it on first use.
// These are the "properties of the class" in the paper's products scenario
// (e.g. weight and number-in-stock held at class level for cheap products).
func (c *Class) Attrs() *value.Record {
	if c.attrs == nil {
		c.attrs = value.NewRecord()
	}
	return c.attrs
}

// Supers returns the declared direct superclasses.
func (c *Class) Supers() []*Class { return append([]*Class(nil), c.supers...) }

// IsSubclassOf reports whether c is (transitively, reflexively) a subclass
// of s.
func (c *Class) IsSubclassOf(s *Class) bool {
	if c == s {
		return true
	}
	for _, up := range c.supers {
		if up.IsSubclassOf(s) {
			return true
		}
	}
	return false
}

// Schema is a set of class declarations with instance management. Safe for
// concurrent use.
type Schema struct {
	mu      sync.RWMutex
	classes map[string]*Class
}

// NewSchema returns an empty schema.
func NewSchema() *Schema { return &Schema{classes: map[string]*Class{}} }

// Declare adds a class. The class type must be a structural subtype of
// every declared superclass's type — the constraint Taxis's "isa" enforces
// by attribute inheritance. Superclasses must be variable classes if the
// new class is (extent inclusion must be maintainable).
func (s *Schema) Declare(name string, kind Kind, typ types.Type, isa ...string) (*Class, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.classes[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateClass, name)
	}
	in := types.Intern(typ)
	var supers []*Class
	for _, up := range isa {
		sc, ok := s.classes[up]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownClass, up)
		}
		if !types.SubtypeInterned(in, sc.in) {
			return nil, fmt.Errorf("%w: %s ≤ %s fails", ErrNotSubtype, typ, sc.typ)
		}
		supers = append(supers, sc)
	}
	c := &Class{name: name, kind: kind, typ: typ, in: in, supers: supers, schema: s}
	s.classes[name] = c
	return c, nil
}

// MustDeclare is Declare but panics on error; for fixtures and examples.
func (s *Schema) MustDeclare(name string, kind Kind, typeSrc string, isa ...string) *Class {
	c, err := s.Declare(name, kind, types.MustParse(typeSrc), isa...)
	if err != nil {
		panic(err)
	}
	return c
}

// Lookup returns the named class.
func (s *Schema) Lookup(name string) (*Class, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.classes[name]
	return c, ok
}

// Classes returns all class names in sorted order.
func (s *Schema) Classes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.classes))
	for n := range s.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewObject creates an instance of the class from rec, which must conform
// to the class type. Adaplex semantics: the object enters the extent of the
// class and of every (transitive) superclass.
func (s *Schema) NewObject(c *Class, rec *value.Record) (*Object, error) {
	if c.kind != VariableClass {
		return nil, fmt.Errorf("%w: %q", ErrNoExtent, c.name)
	}
	if !value.ConformsInterned(rec, c.in) {
		return nil, fmt.Errorf("%w: %s : %s", ErrNotConforming, rec, c.typ)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := &Object{rec: rec, cls: c}
	for up := range ancestry(c) {
		up.extent = append(up.extent, o)
	}
	return o, nil
}

// ancestry returns the set {c} ∪ all transitive superclasses.
func ancestry(c *Class) map[*Class]bool {
	out := map[*Class]bool{}
	var walk func(*Class)
	walk = func(x *Class) {
		if out[x] {
			return
		}
		out[x] = true
		for _, up := range x.supers {
			walk(up)
		}
	}
	walk(c)
	return out
}

// Extent returns the members of the class's extent, in insertion order.
// By construction every instance of a subclass is present — "the inclusion
// relationships among the extents follow directly from the explicit
// hierarchy of entity types".
func (c *Class) Extent() ([]*Object, error) {
	if c.kind != VariableClass {
		return nil, fmt.Errorf("%w: %q", ErrNoExtent, c.name)
	}
	c.schema.mu.RLock()
	defer c.schema.mu.RUnlock()
	return append([]*Object(nil), c.extent...), nil
}

// Specialize migrates o down the hierarchy to sub, which must be a subclass
// of o's current class, merging extra into the object's record (a value
// join — "adding information"). The object keeps its identity: references
// held elsewhere observe the new fields. This is what Adaplex, Galileo and
// Taxis support and Amber does not.
func (s *Schema) Specialize(o *Object, sub *Class, extra *value.Record) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !sub.IsSubclassOf(o.cls) {
		return fmt.Errorf("%w: %s is not below %s", ErrNotSubclass, sub.name, o.cls.name)
	}
	// Merge on a copy first so a failed join or conformance check leaves
	// the object untouched.
	merged, err := value.Join(o.rec.Copy(), extra)
	if err != nil {
		return err
	}
	if !value.ConformsInterned(merged, sub.in) {
		return fmt.Errorf("%w: %s : %s", ErrNotConforming, merged, sub.typ)
	}
	// Commit: write the new fields into the original record in place.
	extra.Each(func(l string, v value.Value) {
		if prev, ok := o.rec.Get(l); ok {
			j, _ := value.Join(prev, v) // cannot fail: checked on the copy
			o.rec.Set(l, j)
		} else {
			o.rec.Set(l, v)
		}
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	was := ancestry(o.cls)
	for up := range ancestry(sub) {
		if !was[up] {
			up.extent = append(up.extent, o)
		}
	}
	o.cls = sub
	return nil
}

// Delete removes the object from every extent. The object is dead
// afterwards; deleting twice reports false.
func (s *Schema) Delete(o *Object) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		return false
	}
	o.dead = true
	s.mu.Lock()
	defer s.mu.Unlock()
	for up := range ancestry(o.cls) {
		for i, m := range up.extent {
			if m == o {
				up.extent = append(up.extent[:i], up.extent[i+1:]...)
				break
			}
		}
	}
	return true
}
