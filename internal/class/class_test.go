package class

import (
	"errors"
	"testing"

	"dbpl/internal/core"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// declarePersonnel builds the paper's running schema:
//
//	VARIABLE_CLASS EMPLOYEE isa PERSON with Empno, Dept.
func declarePersonnel(t *testing.T) (*Schema, *Class, *Class) {
	t.Helper()
	s := NewSchema()
	person := s.MustDeclare("Person", VariableClass, "{Name: String}")
	employee := s.MustDeclare("Employee", VariableClass,
		"{Name: String, Empno: Int, Dept: String}", "Person")
	return s, person, employee
}

func TestDeclareChecksSubtyping(t *testing.T) {
	s, _, _ := declarePersonnel(t)
	// A declared subclass whose type is not a structural subtype is
	// rejected: the isa declaration cannot contradict the types.
	_, err := s.Declare("Robot", VariableClass, types.MustParse("{Serial: Int}"), "Person")
	if !errors.Is(err, ErrNotSubtype) {
		t.Errorf("err = %v, want ErrNotSubtype", err)
	}
	// Unknown superclass.
	_, err = s.Declare("X", VariableClass, types.MustParse("{Name: String}"), "Nobody")
	if !errors.Is(err, ErrUnknownClass) {
		t.Errorf("err = %v, want ErrUnknownClass", err)
	}
	// Duplicate declaration.
	_, err = s.Declare("Person", VariableClass, types.MustParse("{Name: String}"))
	if !errors.Is(err, ErrDuplicateClass) {
		t.Errorf("err = %v, want ErrDuplicateClass", err)
	}
}

func TestAdaplexExtentInclusion(t *testing.T) {
	// "creating an instance of Employee will also create a new instance of
	// Person".
	s, person, employee := declarePersonnel(t)
	if _, err := s.NewObject(person, value.Rec("Name", value.String("P1"))); err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"E1", "E2"} {
		_, err := s.NewObject(employee, value.Rec(
			"Name", value.String(n), "Empno", value.Int(int64(i)), "Dept", value.String("Sales")))
		if err != nil {
			t.Fatal(err)
		}
	}
	pe, _ := person.Extent()
	ee, _ := employee.Extent()
	if len(pe) != 3 || len(ee) != 2 {
		t.Errorf("extents: Person %d (want 3), Employee %d (want 2)", len(pe), len(ee))
	}
	// Employee extent ⊆ Person extent, by identity.
	in := map[*Object]bool{}
	for _, o := range pe {
		in[o] = true
	}
	for _, o := range ee {
		if !in[o] {
			t.Error("employee instance missing from Person extent")
		}
	}
}

func TestNewObjectConformance(t *testing.T) {
	s, _, employee := declarePersonnel(t)
	_, err := s.NewObject(employee, value.Rec("Name", value.String("E")))
	if !errors.Is(err, ErrNotConforming) {
		t.Errorf("err = %v, want ErrNotConforming", err)
	}
}

func TestAggregateClassHasNoExtent(t *testing.T) {
	s := NewSchema()
	addr := s.MustDeclare("Address", AggregateClass, "{City: String}")
	if _, err := addr.Extent(); !errors.Is(err, ErrNoExtent) {
		t.Errorf("Extent err = %v, want ErrNoExtent", err)
	}
	if _, err := s.NewObject(addr, value.Rec("City", value.String("Austin"))); !errors.Is(err, ErrNoExtent) {
		t.Errorf("NewObject err = %v, want ErrNoExtent", err)
	}
	if addr.Kind().String() != "AGGREGATE_CLASS" {
		t.Error("kind string")
	}
}

func TestSpecializePreservesIdentity(t *testing.T) {
	s, person, employee := declarePersonnel(t)
	o, err := s.NewObject(person, value.Rec("Name", value.String("J Doe")))
	if err != nil {
		t.Fatal(err)
	}
	ref := o.Record() // a reference held elsewhere

	err = s.Specialize(o, employee, value.Rec("Empno", value.Int(1234), "Dept", value.String("Sales")))
	if err != nil {
		t.Fatal(err)
	}
	if o.Class() != employee {
		t.Error("object should now be an Employee")
	}
	if v, ok := ref.Get("Empno"); !ok || !value.Equal(v, value.Int(1234)) {
		t.Error("reference does not observe the extension — identity lost")
	}
	// It joined the Employee extent and stayed in Person's (exactly once).
	ee, _ := employee.Extent()
	if len(ee) != 1 || ee[0] != o {
		t.Errorf("employee extent = %v", ee)
	}
	pe, _ := person.Extent()
	count := 0
	for _, m := range pe {
		if m == o {
			count++
		}
	}
	if count != 1 {
		t.Errorf("object appears %d times in Person extent, want 1", count)
	}
}

func TestSpecializeRejectsBadMoves(t *testing.T) {
	s, person, employee := declarePersonnel(t)
	student := s.MustDeclare("Student", VariableClass, "{Name: String, StudentID: Int}", "Person")
	o, _ := s.NewObject(employee, value.Rec(
		"Name", value.String("E"), "Empno", value.Int(1), "Dept", value.String("S")))

	// Student is not a subclass of Employee: sideways moves are rejected.
	if err := s.Specialize(o, student, value.Rec("StudentID", value.Int(7))); !errors.Is(err, ErrNotSubclass) {
		t.Errorf("err = %v, want ErrNotSubclass", err)
	}
	// Upwards moves are rejected too.
	if err := s.Specialize(o, person, value.NewRecord()); !errors.Is(err, ErrNotSubclass) {
		t.Errorf("err = %v, want ErrNotSubclass", err)
	}
	// Conflicting extra information fails and leaves the object unchanged.
	p, _ := s.NewObject(person, value.Rec("Name", value.String("X")))
	err := s.Specialize(p, employee, value.Rec("Name", value.String("Y"), "Empno", value.Int(1), "Dept", value.String("D")))
	if !errors.Is(err, value.ErrConflict) {
		t.Errorf("err = %v, want a join conflict", err)
	}
	if _, ok := p.Record().Get("Empno"); ok {
		t.Error("failed specialize must not modify the object")
	}
	// Missing required fields.
	q, _ := s.NewObject(person, value.Rec("Name", value.String("Z")))
	if err := s.Specialize(q, employee, value.Rec("Empno", value.Int(2))); !errors.Is(err, ErrNotConforming) {
		t.Errorf("err = %v, want ErrNotConforming", err)
	}
}

func TestDelete(t *testing.T) {
	s, person, employee := declarePersonnel(t)
	o, _ := s.NewObject(employee, value.Rec(
		"Name", value.String("E"), "Empno", value.Int(1), "Dept", value.String("S")))
	if !s.Delete(o) {
		t.Fatal("Delete reported failure")
	}
	if s.Delete(o) {
		t.Error("second Delete should fail")
	}
	pe, _ := person.Extent()
	ee, _ := employee.Extent()
	if len(pe) != 0 || len(ee) != 0 {
		t.Error("deleted object still in extents")
	}
}

func TestDiamondHierarchy(t *testing.T) {
	s, person, employee := declarePersonnel(t)
	student := s.MustDeclare("Student", VariableClass, "{Name: String, StudentID: Int}", "Person")
	both := s.MustDeclare("StudentEmployee", VariableClass,
		"{Name: String, Empno: Int, Dept: String, StudentID: Int}", "Employee", "Student")
	o, err := s.NewObject(both, value.Rec(
		"Name", value.String("SE"), "Empno", value.Int(1),
		"Dept", value.String("S"), "StudentID", value.Int(2)))
	if err != nil {
		t.Fatal(err)
	}
	// The object appears exactly once in each extent, including the shared
	// apex of the diamond.
	for _, c := range []*Class{both, employee, student, person} {
		e, _ := c.Extent()
		n := 0
		for _, m := range e {
			if m == o {
				n++
			}
		}
		if n != 1 {
			t.Errorf("object appears %d times in %s extent, want 1", n, c.Name())
		}
	}
	if !both.IsSubclassOf(person) || both.IsSubclassOf(s.MustDeclare("Other", VariableClass, "{}")) {
		t.Error("IsSubclassOf misbehaves")
	}
}

func TestClassExtentsMatchDerivedExtents(t *testing.T) {
	// E9: the class-based extents (explicit hierarchy) coincide with the
	// extents derived from the type hierarchy by the generic Get.
	s, person, employee := declarePersonnel(t)
	db := core.New(core.StrategyScan)

	mk := func(c *Class, rec *value.Record) {
		if _, err := s.NewObject(c, rec); err != nil {
			t.Fatal(err)
		}
		db.InsertValue(rec)
	}
	mk(person, value.Rec("Name", value.String("P1")))
	mk(employee, value.Rec("Name", value.String("E1"), "Empno", value.Int(1), "Dept", value.String("S")))
	mk(employee, value.Rec("Name", value.String("E2"), "Empno", value.Int(2), "Dept", value.String("M")))

	for _, c := range []*Class{person, employee} {
		ext, _ := c.Extent()
		got := db.Get(c.Type())
		if len(got) != len(ext) {
			t.Errorf("%s: derived %d, class extent %d", c.Name(), len(got), len(ext))
		}
	}
}

func TestParkingLotInstanceHierarchy(t *testing.T) {
	// "a given car is an instance of a make-and-model type" — length lives
	// on the make-and-model, and AttrOf ascends one level to find it.
	s := NewSchema()
	mm, err := s.DeclareMeta("MakeModel", types.MustParse("{Make: String, Length: Int}"))
	if err != nil {
		t.Fatal(err)
	}
	nova, err := s.DeclareInstanceOf(mm, "ChevvyNova", VariableClass,
		types.MustParse("{Tag: String}"),
		value.Rec("Make", value.String("Chevrolet"), "Length", value.Int(183)))
	if err != nil {
		t.Fatal(err)
	}
	car, err := s.NewObject(nova, value.Rec("Tag", value.String("PA-1234")))
	if err != nil {
		t.Fatal(err)
	}

	if v, ok := AttrOf(car, "Tag"); !ok || !value.Equal(v, value.String("PA-1234")) {
		t.Error("object-level attribute lookup failed")
	}
	if v, ok := AttrOf(car, "Length"); !ok || !value.Equal(v, value.Int(183)) {
		t.Error("class-level attribute lookup (the instance-hierarchy ascent) failed")
	}
	if _, ok := AttrOf(car, "TopSpeed"); ok {
		t.Error("absent attribute should not resolve")
	}
	if m, ok := nova.Meta(); !ok || m != mm {
		t.Error("Meta link broken")
	}
	if insts := mm.ClassInstances(); len(insts) != 1 || insts[0] != nova {
		t.Error("ClassInstances broken")
	}
	// Declaring an instance class with non-conforming attributes fails.
	_, err = s.DeclareInstanceOf(mm, "Edsel", VariableClass,
		types.MustParse("{Tag: String}"), value.Rec("Make", value.String("Ford")))
	if !errors.Is(err, ErrMetaConformance) {
		t.Errorf("err = %v, want ErrMetaConformance", err)
	}
}

func TestProductsLevelShift(t *testing.T) {
	// Products above a price are individuals; below it they are classes
	// with weight and number-in-stock as class properties.
	s := NewSchema()
	cheapMeta, err := s.DeclareMeta("CheapProduct", types.MustParse("{Weight: Float, NumberInStock: Int}"))
	if err != nil {
		t.Fatal(err)
	}
	washer, err := s.DeclareInstanceOf(cheapMeta, "Washer10mm", VariableClass,
		types.MustParse("{}"),
		value.Rec("Weight", value.Float(0.01), "NumberInStock", value.Int(12000)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := washer.ClassAttr("NumberInStock"); !ok || !value.Equal(v, value.Int(12000)) {
		t.Error("class-level stock count missing")
	}

	expensive := s.MustDeclare("ExpensiveProduct", VariableClass,
		"{Serial: Int, Weight: Float, CompletionDate: String}")
	turbine, err := s.NewObject(expensive, value.Rec(
		"Serial", value.Int(77), "Weight", value.Float(1200),
		"CompletionDate", value.String("1986-05-28")))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := AttrOf(turbine, "Weight"); !ok || !value.Equal(v, value.Float(1200)) {
		t.Error("individual product weight lives on the object")
	}
}

func TestSchemaListing(t *testing.T) {
	s, _, _ := declarePersonnel(t)
	got := s.Classes()
	if len(got) != 2 || got[0] != "Employee" || got[1] != "Person" {
		t.Errorf("Classes = %v", got)
	}
	if _, ok := s.Lookup("Person"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := s.Lookup("Nobody"); ok {
		t.Error("Lookup of absent class should fail")
	}
}
