package class

import (
	"fmt"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// This file models the paper's *instance hierarchy* (is-a-kind-of), as
// opposed to the subclass hierarchy (is-a): classes are themselves
// instances of meta-classes, and may carry attribute values of their own.
// Taxis is the only surveyed language supporting this, "and then only in a
// limited three-level framework"; the same three levels are provided here:
//
//	meta-class  —  class  —  object
//
// The paper motivates this with two scenarios. In the university parking
// lot, a car is an instance of a make-and-model, and properties such as the
// length used to derive charges live on the make-and-model, not the car.
// In the manufacturing plant, products above a certain price are treated as
// individuals (objects with weight and completion date) while below it they
// are treated as classes with weight and number-in-stock as properties *of
// the class*.

// ErrMetaConformance is returned when a class's attribute record does not
// conform to its meta-class's type.
var ErrMetaConformance = fmt.Errorf("class: attributes do not conform to meta-class type")

// DeclareMeta declares a meta-class: a class whose instances are classes.
// typ describes the attribute records its instance classes must carry.
func (s *Schema) DeclareMeta(name string, typ types.Type) (*Class, error) {
	return s.Declare(name, VariableClass, typ)
}

// DeclareInstanceOf declares a new class that is an instance of the given
// meta-class, with class-level attributes attrs (which must conform to the
// meta-class type) and instance type typ for its own objects.
func (s *Schema) DeclareInstanceOf(meta *Class, name string, kind Kind, typ types.Type, attrs *value.Record, isa ...string) (*Class, error) {
	if attrs == nil {
		attrs = value.NewRecord()
	}
	if !value.Conforms(attrs, meta.typ) {
		return nil, fmt.Errorf("%w: %s : %s", ErrMetaConformance, attrs, meta.typ)
	}
	c, err := s.Declare(name, kind, typ, isa...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c.meta = meta
	c.attrs = attrs
	meta.classInstances = append(meta.classInstances, c)
	return c, nil
}

// Meta returns the class's meta-class, if any.
func (c *Class) Meta() (*Class, bool) { return c.meta, c.meta != nil }

// ClassInstances returns the classes that are instances of this
// (meta-)class.
func (c *Class) ClassInstances() []*Class {
	c.schema.mu.RLock()
	defer c.schema.mu.RUnlock()
	return append([]*Class(nil), c.classInstances...)
}

// ClassAttr reads a class-level attribute, ascending the *instance*
// hierarchy exactly one level the way "my car is a Chevvy Nova; the Chevvy
// Nova weighs 3,000 pounds" ascends from token to kind.
func (c *Class) ClassAttr(label string) (value.Value, bool) {
	if c.attrs == nil {
		return nil, false
	}
	return c.attrs.Get(label)
}

// AttrOf reads an attribute of an object by looking first at the object
// itself and then at its class's class-level attributes — the two-level
// switch of the parking-lot example: a car's Length is a property of its
// make-and-model.
func AttrOf(o *Object, label string) (value.Value, bool) {
	if v, ok := o.Record().Get(label); ok {
		return v, true
	}
	return o.Class().ClassAttr(label)
}
