package lang

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/replicating"
	"dbpl/internal/value"
)

// newPersistentInterp builds an interpreter with both stores attached.
func newPersistentInterp(t *testing.T, dir string) *Interp {
	t.Helper()
	rep, err := replicating.Open(filepath.Join(dir, "rep"))
	if err != nil {
		t.Fatal(err)
	}
	intr, err := intrinsic.Open(filepath.Join(dir, "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { intr.Close() })
	in := New(new(bytes.Buffer))
	in.Replicating = rep
	in.Intrinsic = intr
	return in
}

func TestExternInternInLanguage(t *testing.T) {
	// The paper's Amber program, in our syntax:
	//	type Database = ...; var d : database = ...;
	//	extern('DBFile', dynamic d)
	// and in a subsequent program
	//	var x = intern 'DBFile'; var d = coerce x to database
	dir := t.TempDir()
	in1 := newPersistentInterp(t, dir)
	if _, err := in1.Run(`
		type Database = {Employees: List[{Name: String}]};
		let d: Database = {Employees = [{Name = "J Doe"}]};
		extern("DBFile", dynamic d)
	`); err != nil {
		t.Fatal(err)
	}

	in2 := newPersistentInterp(t, dir)
	rs, err := in2.Run(`
		type Database = {Employees: List[{Name: String}]};
		let x = intern("DBFile");
		let d = coerce x to Database;
		(head(d.Employees)).Name
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(rs[len(rs)-1].Value, value.String("J Doe")) {
		t.Errorf("cross-program intern = %s", rs[len(rs)-1].Value)
	}

	// Coercing at the wrong type is the run-time failure the paper
	// describes.
	in3 := newPersistentInterp(t, dir)
	_, err = in3.Run(`coerce intern("DBFile") to Int`)
	if err == nil || !strings.Contains(err.Error(), "run error") {
		t.Errorf("wrong-type intern err = %v", err)
	}
}

func TestReplicatingLostUpdateInLanguage(t *testing.T) {
	// var x = intern 'DBFile'; -- code that modifies x; x = intern 'DBFile'
	// "the modifications to x will not survive the second intern".
	dir := t.TempDir()
	in := newPersistentInterp(t, dir)
	rs, err := in.Run(`
		extern("H", dynamic {Count = 0});
		let x = coerce intern("H") to {Count: Int};
		let modified = x with {Count = 99};     -- modify the copy (not re-externed)
		let x2 = coerce intern("H") to {Count: Int};
		x2.Count
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(rs[len(rs)-1].Value, value.Int(0)) {
		t.Errorf("modification survived without extern: %s", rs[len(rs)-1].Value)
	}
}

func TestPersistentDeclarationCreatesAndReopens(t *testing.T) {
	dir := t.TempDir()
	// First program: the handle does not exist; the initializer runs.
	in1 := newPersistentInterp(t, dir)
	if _, err := in1.Run(`
		type DBType = {Employees: List[{Name: String}]};
		persistent DB : DBType = {Employees = [{Name = "J Doe"}]};
		commit()
	`); err != nil {
		t.Fatal(err)
	}

	// Second program: the handle exists; the initializer must NOT run
	// (it would reset the database).
	in2 := newPersistentInterp(t, dir)
	rs, err := in2.Run(`
		type DBType = {Employees: List[{Name: String}]};
		persistent DB : DBType = fail[DBType]("initializer must not run");
		length(DB.Employees)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(rs[len(rs)-1].Value, value.Int(1)) {
		t.Errorf("reopened DB = %s", rs[len(rs)-1].Value)
	}
}

func TestPersistentSchemaEvolutionInLanguage(t *testing.T) {
	dir := t.TempDir()
	in1 := newPersistentInterp(t, dir)
	if _, err := in1.Run(`
		persistent DB : {Employees: List[{Name: String, Empno: Int}]} =
			{Employees = [{Name = "J Doe", Empno = 1}]};
		commit()
	`); err != nil {
		t.Fatal(err)
	}

	// Recompiled program with a *supertype* DBType': works as a view.
	in2 := newPersistentInterp(t, dir)
	rs, err := in2.Run(`
		persistent DB : {Employees: List[{Name: String}]} = {Employees = []};
		(head(DB.Employees)).Name
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(rs[len(rs)-1].Value, value.String("J Doe")) {
		t.Errorf("view = %s", rs[len(rs)-1].Value)
	}

	// Recompiled with an inconsistent type: rejected at the handle, in the
	// run phase (the program itself is well typed).
	in3 := newPersistentInterp(t, dir)
	_, err = in3.Run(`persistent DB : {Employees: Int} = {Employees = 0}; DB`)
	if err == nil {
		t.Fatal("inconsistent reopen should fail")
	}
	if le, ok := err.(*Error); !ok || le.Phase != "run" || !strings.Contains(le.Msg, "inconsistent") {
		t.Errorf("err = %v, want a run-phase inconsistency error", err)
	}
}

func TestCommitAbortInLanguage(t *testing.T) {
	dir := t.TempDir()
	in := newPersistentInterp(t, dir)
	if _, err := in.Run(`
		persistent X : {K: Int} = {K = 1};
		commit()
	`); err != nil {
		t.Fatal(err)
	}
	// Rebind the handle to a diverged value, then abort.
	if _, err := in.Run(`
		persistent Y : {K: Int} = {K = 99}
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(`abort()`); err != nil {
		t.Fatal(err)
	}
	// Y was never committed: it is gone after abort.
	if _, err := in.Run(`Y`); err == nil {
		t.Error("uncommitted persistent binding survived abort")
	}
	rs, err := in.Run(`X.K`)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(rs[len(rs)-1].Value, value.Int(1)) {
		t.Errorf("X.K after abort = %s", rs[len(rs)-1].Value)
	}
}

func TestPersistenceRequiresStores(t *testing.T) {
	in := New(new(bytes.Buffer))
	if _, err := in.Run(`extern("h", dynamic 1)`); err == nil {
		t.Error("extern without a store should fail")
	}
	if _, err := in.Run(`persistent X : Int = 1`); err == nil {
		t.Error("persistent without a store should fail")
	}
	if _, err := in.Run(`commit()`); err == nil {
		t.Error("commit without a store should fail")
	}
}

func TestBillOfMaterialsInLanguage(t *testing.T) {
	// The paper's TotalCost with memoization on a DAG-shaped parts
	// explosion, using transient memo fields on persistent parts.
	dir := t.TempDir()
	in := newPersistentInterp(t, dir)
	src := `
		type Part = {
			Name: String, IsBase: Bool,
			PurchasePrice: Float, ManufacturingCost: Float,
			Components: List[{SubPart: Part, Qty: Int}]
		};
		let mkBase = fun(n: String, price: Float): Part is
			{Name = n, IsBase = true, PurchasePrice = price,
			 ManufacturingCost = 0.0, Components = []};
		let bolt = mkBase("bolt", 0.5);
		let plate = mkBase("plate", 4.0);
		let bracket: Part = {Name = "bracket", IsBase = false,
			PurchasePrice = 0.0, ManufacturingCost = 1.0,
			Components = [{SubPart = bolt, Qty = 4}, {SubPart = plate, Qty = 1}]};
		let frame: Part = {Name = "frame", IsBase = false,
			PurchasePrice = 0.0, ManufacturingCost = 10.0,
			Components = [{SubPart = bracket, Qty = 2}, {SubPart = plate, Qty = 2}]};

		let rec totalCost = fun(p: Part): Float is
			if p.IsBase then p.PurchasePrice
			else if memoHas(p, "_cost") then coerce memoGet(p, "_cost") to Float
			else let c = p.ManufacturingCost +
				fold(fun(acc: Float, comp: {SubPart: Part, Qty: Int}): Float is
					acc + totalCost(comp.SubPart) * comp.Qty,
					0.0, p.Components) in
			let ignore = memoSet(p, "_cost", dynamic c) in c;

		persistent Catalogue : {Root: Part} = {Root = frame};
		commit();
		totalCost(frame)
	`
	rs, err := in.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	// bracket = 1 + 4*0.5 + 4 = 7; frame = 10 + 2*7 + 2*4 = 32.
	if !value.Equal(rs[len(rs)-1].Value, value.Float(32)) {
		t.Errorf("totalCost = %s, want 32.0", rs[len(rs)-1].Value)
	}
	// The memo fields must not have been persisted.
	r, ok := in.Intrinsic.Root("Catalogue")
	if !ok {
		t.Fatal("Catalogue lost")
	}
	if _, err := in.Intrinsic.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = r
	in2 := newPersistentInterp(t, dir)
	rs2, err := in2.Run(`
		type Part = {
			Name: String, IsBase: Bool,
			PurchasePrice: Float, ManufacturingCost: Float,
			Components: List[{SubPart: Part, Qty: Int}]
		};
		persistent Catalogue : {Root: Part} = fail[{Root: Part}]("must reopen");
		memoHas(Catalogue.Root, "_cost")
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(rs2[len(rs2)-1].Value, value.Bool(false)) {
		t.Error("transient memo field persisted across programs")
	}
}
