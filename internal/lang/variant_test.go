package lang

import (
	"testing"

	"dbpl/internal/value"
)

func TestVariantConstruction(t *testing.T) {
	wantType(t, `<Circle = 2.5>`, "[Circle: Float]")
	wantType(t, `<Point = {X = 1, Y = 2}>`, "[Point: {X: Int, Y: Int}]")
	// Subsumption: fewer tags ≤ more tags, so the annotation widens.
	wantType(t, `
		type Shape = [Circle: Float, Square: Float];
		let s: Shape = <Circle = 2.5>;
		s
	`, "[Circle: Float, Square: Float]")
	// Payload binds tighter than comparison; parentheses admit one.
	wantType(t, `<Flag = (1 < 2)>`, "[Flag: Bool]")
	wantType(t, `<N = 1 + 2 * 3>`, "[N: Int]")
}

func TestCaseElimination(t *testing.T) {
	src := `
		type Shape = [Circle: Float, Square: Float];
		let area = fun(s: Shape): Float is
			case s of
			  Circle(r) is 3.14159 * r * r
			| Square(w) is w * w
			end;
	`
	wantVal(t, src+`area(<Square = 3.0>)`, value.Float(9))
	r := last(t, src+`area(<Circle = 1.0>)`)
	if f, ok := r.Value.(value.Float); !ok || float64(f) < 3.14 || float64(f) > 3.15 {
		t.Errorf("area(circle) = %s", r.Value)
	}
	// Branch results join.
	wantType(t, `
		case <A = 1> of A(x) is x end
	`, "Int")
	wantType(t, `
		type E = [L: Int, R: Float];
		let v: E = <L = 1>;
		case v of L(x) is x | R(y) is y end
	`, "Float")
}

func TestCaseExhaustiveness(t *testing.T) {
	// Missing tag: static error.
	failRun(t, `
		type Shape = [Circle: Float, Square: Float];
		let s: Shape = <Circle = 1.0>;
		case s of Circle(r) is r end
	`, "type")
	// Unknown tag: static error.
	failRun(t, `
		case <A = 1> of A(x) is x | B(y) is y end
	`, "type")
	// Case on a non-variant: static error.
	failRun(t, `case 3 of A(x) is x end`, "type")
	// Duplicate arm: parse error.
	failRun(t, `case <A = 1> of A(x) is x | A(y) is y end`, "parse")
}

func TestVariantInFunctionsAndLists(t *testing.T) {
	// A heterogeneous-but-typed list of shapes, folded.
	src := `
		type Shape = [Circle: Float, Square: Float];
		let shapes: List[Shape] = [<Circle = 1.0>, <Square = 2.0>, <Square = 3.0>];
		let area = fun(s: Shape): Float is
			case s of Circle(r) is 3.0 * r * r | Square(w) is w * w end;
		fold(fun(a: Float, s: Shape): Float is a + area(s), 0.0, shapes)
	`
	wantVal(t, src, value.Float(16))
}

func TestVariantDynamics(t *testing.T) {
	// Variants interact with dynamics like everything else.
	wantVal(t, `
		let d = dynamic <Circle = 2.5>;
		case (coerce d to [Circle: Float, Square: Float]) of
		  Circle(r) is r
		| Square(w) is w
		end
	`, value.Float(2.5))
}

func TestVariantRecursiveType(t *testing.T) {
	// The canonical recursive sum: an integer list as a variant, folded.
	src := `
		type IntList = [Nil: Unit, Cons: {Head: Int, Tail: IntList}];
		let rec sum = fun(l: IntList): Int is
			case l of
			  Nil(u) is 0
			| Cons(c) is c.Head + sum(c.Tail)
			end;
		sum(<Cons = {Head = 1, Tail = <Cons = {Head = 2, Tail = <Nil = unit>}>}>)
	`
	wantVal(t, src, value.Int(3))
}
