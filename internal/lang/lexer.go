package lang

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer turns source text into tokens. Comments run from "--" to end of
// line, as in several of the paper's languages.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) advance(w int, r rune) {
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r, w := l.peekRune()
		if w == 0 {
			return
		}
		if unicode.IsSpace(r) {
			l.advance(w, r)
			continue
		}
		if r == '-' && strings.HasPrefix(l.src[l.pos:], "--") {
			for {
				r, w := l.peekRune()
				if w == 0 || r == '\n' {
					break
				}
				l.advance(w, r)
			}
			continue
		}
		return
	}
}

// next returns the next token.
func (l *lexer) next() (Token, *Error) {
	l.skipSpaceAndComments()
	pos := Pos{Line: l.line, Col: l.col}
	r, w := l.peekRune()
	if w == 0 {
		return Token{Kind: TEOF, Pos: pos}, nil
	}

	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.pos
		for {
			r, w := l.peekRune()
			if w == 0 || (!unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_') {
				break
			}
			l.advance(w, r)
		}
		return Token{Kind: TIdent, Lit: l.src[start:l.pos], Pos: pos}, nil

	case unicode.IsDigit(r):
		start := l.pos
		isFloat := false
		for {
			r, w := l.peekRune()
			if w == 0 {
				break
			}
			if r == '.' && !isFloat {
				// A digit must follow for this to be a float; otherwise the
				// dot is field selection (e.g. 1.x is ill-formed anyway).
				if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
					isFloat = true
					l.advance(w, r)
					continue
				}
				break
			}
			if !unicode.IsDigit(r) {
				break
			}
			l.advance(w, r)
		}
		kind := TInt
		if isFloat {
			kind = TFloat
		}
		return Token{Kind: kind, Lit: l.src[start:l.pos], Pos: pos}, nil

	case r == '"' || r == '\'':
		quote := r
		l.advance(w, r)
		var b strings.Builder
		for {
			r, w := l.peekRune()
			if w == 0 || r == '\n' {
				return Token{}, errAt(pos, "lex", "unterminated string")
			}
			if r == quote {
				l.advance(w, r)
				break
			}
			if r == '\\' {
				l.advance(w, r)
				e, ew := l.peekRune()
				if ew == 0 {
					return Token{}, errAt(pos, "lex", "unterminated escape")
				}
				switch e {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"', '\'':
					b.WriteRune(e)
				default:
					return Token{}, errAt(pos, "lex", "unknown escape \\%c", e)
				}
				l.advance(ew, e)
				continue
			}
			b.WriteRune(r)
			l.advance(w, r)
		}
		return Token{Kind: TString, Lit: b.String(), Pos: pos}, nil
	}

	two := func(kind TokenKind, lit string) (Token, *Error) {
		l.advance(1, 0)
		l.advance(1, 0)
		return Token{Kind: kind, Lit: lit, Pos: pos}, nil
	}
	one := func(kind TokenKind, lit string) (Token, *Error) {
		l.advance(w, r)
		return Token{Kind: kind, Lit: lit, Pos: pos}, nil
	}
	rest := l.src[l.pos:]
	switch {
	case strings.HasPrefix(rest, "=="):
		return two(TEq, "==")
	case strings.HasPrefix(rest, "!="):
		return two(TNe, "!=")
	case strings.HasPrefix(rest, "<="):
		return two(TLe, "<=")
	case strings.HasPrefix(rest, "<-"):
		// The generator arrow of comprehensions. Note `a < -b` therefore
		// needs parentheses: `a < (-b)`.
		return two(TGenArrow, "<-")
	case strings.HasPrefix(rest, ">="):
		return two(TGe, ">=")
	case strings.HasPrefix(rest, "++"):
		return two(TConcat, "++")
	case strings.HasPrefix(rest, "->"):
		return two(TArrow, "->")
	}
	switch r {
	case '(':
		return one(TLParen, "(")
	case ')':
		return one(TRParen, ")")
	case '[':
		return one(TLBrack, "[")
	case ']':
		return one(TRBrack, "]")
	case '{':
		return one(TLBrace, "{")
	case '}':
		return one(TRBrace, "}")
	case ',':
		return one(TComma, ",")
	case ';':
		return one(TSemi, ";")
	case ':':
		return one(TColon, ":")
	case '.':
		return one(TDot, ".")
	case '=':
		return one(TAssign, "=")
	case '<':
		return one(TLt, "<")
	case '>':
		return one(TGt, ">")
	case '+':
		return one(TPlus, "+")
	case '-':
		return one(TMinus, "-")
	case '*':
		return one(TStar, "*")
	case '/':
		return one(TSlash, "/")
	case '%':
		return one(TPercent, "%")
	case '|':
		return one(TBar, "|")
	}
	return Token{}, errAt(pos, "lex", "unexpected character %q", r)
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]Token, *Error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TEOF {
			return out, nil
		}
	}
}
