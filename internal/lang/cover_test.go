package lang

import (
	"bytes"
	"strings"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// These tests sweep the less-travelled syntax and error paths: explicit
// quantifier and recursive types in annotations, every keyword construct's
// error productions, and the small public helpers.

func TestExplicitQuantifierAnnotations(t *testing.T) {
	// forall in a type annotation.
	wantVal(t, `
		let id: forall t . t -> t = fun[t](x: t): t is x;
		id(41) + 1
	`, value.Int(42))
	// Bounded forall annotation.
	wantType(t, `
		let f: forall t <= {Name: String} . t -> String =
			fun[t <= {Name: String}](x: t): String is x.Name;
		f
	`, "forall t <= {Name: String} . t -> String")
	// exists annotation on a variable holding a Get element.
	wantVal(t, `
		type Person = {Name: String};
		let db: List[Dynamic] = [dynamic {Name = "J"}];
		let p: exists u <= Person . u = head(get[Person](db));
		open p as (t, x) in x.Name
	`, value.String("J"))
	// rec type annotation.
	wantVal(t, `
		let l: rec t . [Nil: Unit, Cons: {Head: Int, Tail: t}] =
			<Cons = {Head = 7, Tail = <Nil = unit>}>;
		case l of Nil(u) is 0 | Cons(c) is c.Head end
	`, value.Int(7))
}

func TestTypeSyntaxErrors(t *testing.T) {
	failRun(t, "let x: forall . t = 1", "parse")
	failRun(t, "let x: forall t t = 1", "parse")
	failRun(t, "let x: rec . t = 1", "parse")
	failRun(t, "let x: rec t t = 1", "parse")
	failRun(t, "let x: (Int, Int) = 1", "parse") // bare parameter list
	failRun(t, "let x: List[Int = 1", "parse")
	failRun(t, "let x: List Int = 1", "parse")
	failRun(t, "let x: {A Int} = 1", "parse")
	failRun(t, "let x: {A: Int, A: Int} = 1", "parse")
	failRun(t, "let x: [A: Int, A: Int] = 1", "parse")
	failRun(t, "let x: [A Int] = 1", "parse")
	failRun(t, "let x: 3 = 1", "parse")
	failRun(t, "let x: if = 1", "parse")
}

func TestKeywordConstructErrors(t *testing.T) {
	failRun(t, "if true 1 else 2", "parse")
	failRun(t, "if true then 1 2", "parse")
	failRun(t, "let x = 1 in", "parse")
	failRun(t, "let x = in 2", "parse")
	failRun(t, "open 3 as t, p) in 1", "parse")
	failRun(t, "open 3 as (t p) in 1", "parse")
	failRun(t, "open 3 as (t, p) 1", "parse")
	failRun(t, "fun[](x: Int): Int is x", "parse")
	failRun(t, "fun(x: Int) Int is x", "parse")
	failRun(t, "fun(x: Int): Int x", "parse")
	failRun(t, "case 1 of", "parse")
	failRun(t, "case <A = 1> of A x) is 1 end", "parse")
	failRun(t, "case <A = 1> of A(x) is 1", "parse")
	failRun(t, "persistent X = 1", "parse")
	failRun(t, "persistent X : Int 1", "parse")
	failRun(t, "type X", "parse")
	failRun(t, "<A 1>", "parse")
	failRun(t, "<A = 1", "parse")
	failRun(t, "{A = 1,}", "parse")
	failRun(t, "f(1,)", "parse")
	failRun(t, "x[Int", "parse")
	failRun(t, "1 with 2", "parse")
}

func TestMoreRuntimeAndTypeErrors(t *testing.T) {
	failRun(t, "let f = fun(x: Int): Int is x; f(1, 2)", "type")
	failRun(t, "let f = fun(x: Int): Int is x; f[Int](1)", "type") // not polymorphic
	failRun(t, "3(1)", "type")
	failRun(t, "3[Int]", "type")
	failRun(t, "let id = fun[a](x: a): a is x; id[Int, Int](1)", "type")
	failRun(t, "-true", "type")
	failRun(t, "true < false", "type")
	failRun(t, `1.5 % 2.5`, "type")
	failRun(t, "1 and true", "type")
	failRun(t, "let x: t = 1", "type") // unbound type variable
	failRun(t, "fun(x: t): Int is 1", "type")
}

func TestOpenShadowingRejected(t *testing.T) {
	failRun(t, `
		type Person = {Name: String};
		let db: List[Dynamic] = [dynamic {Name = "J"}];
		open head(get[Person](db)) as (t, x) in
			open head(get[Person](db)) as (t, y) in x.Name
	`, "type")
}

func TestMustRunAndTypeNames(t *testing.T) {
	in := New(new(bytes.Buffer))
	rs := in.MustRun("type Person = {Name: String}; 1 + 1")
	if len(rs) != 2 {
		t.Fatalf("MustRun results = %d", len(rs))
	}
	names := in.TypeNames()
	if ty, ok := names["Person"]; !ok || !types.Equal(ty, types.MustParse("{Name: String}")) {
		t.Errorf("TypeNames = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRun should panic on bad input")
		}
	}()
	in.MustRun("][")
}

func TestValueStrings(t *testing.T) {
	in := New(new(bytes.Buffer))
	rs := in.MustRun("fun(x: Int): Int is x")
	if rs[0].Value.String() != "<fun>" {
		t.Errorf("closure String = %q", rs[0].Value.String())
	}
	if rs[0].Value.Kind() != value.KindOpaque {
		t.Error("closure kind")
	}
	rs = in.MustRun("head")
	if !strings.Contains(rs[0].Value.String(), "head") {
		t.Errorf("builtin String = %q", rs[0].Value.String())
	}
	rs = in.MustRun("head[Int]")
	if !strings.Contains(rs[0].Value.String(), "head") {
		t.Errorf("bound builtin String = %q", rs[0].Value.String())
	}
	if rs[0].Value.Kind() != value.KindOpaque {
		t.Error("bound builtin kind")
	}
}

func TestPolymorphicClosureChainedInstantiation(t *testing.T) {
	// Instantiating a two-parameter function in stages.
	wantVal(t, `
		let k = fun[a, b](x: a, y: b): a is x;
		k[Int][String](7, "ignored")
	`, value.Int(7))
	// Uninstantiated parameters fall back to their bounds at run time (the
	// dynamic built inside sees the bound).
	wantVal(t, `
		let f = fun[t <= {Name: String}](x: t): Bool is
			typeof (dynamic x) == typeof (dynamic x);
		f({Name = "J"})
	`, value.Bool(true))
}

func TestGetWithoutInstantiationActsAsTop(t *testing.T) {
	// get(db) is statically List[exists u <= Top . u]; at run time it
	// returns everything.
	wantVal(t, `
		let db: List[Dynamic] = [dynamic 1, dynamic "x"];
		length(get(db))
	`, value.Int(2))
}

func TestIfJoinsToTopIsUsable(t *testing.T) {
	// Unrelated branches join to Top; the value is still printable.
	wantType(t, `if true then 1 else "x"`, "Top")
	wantVal(t, `show(if true then 1 else "x")`, value.String("1"))
}

func TestDeepExpressionNesting(t *testing.T) {
	// A deeply right-nested expression exercises parser recursion.
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString("1 + (")
	}
	b.WriteString("0")
	for i := 0; i < 200; i++ {
		b.WriteString(")")
	}
	wantVal(t, b.String(), value.Int(200))
}

func TestSubtypeOfBuiltin(t *testing.T) {
	// Type-level computation on reified types: the runtime face of the
	// paper's "types as values" discussion.
	wantVal(t, `
		subtypeOf(typeof (dynamic {Name = "J", Empno = 1}),
		          typeof (dynamic {Name = "X"}))
	`, value.Bool(true))
	wantVal(t, `
		subtypeOf(typeof (dynamic {Name = "X"}),
		          typeof (dynamic {Name = "J", Empno = 1}))
	`, value.Bool(false))
	wantVal(t, `subtypeOf(typeof (dynamic 3), typeof (dynamic 3.5))`, value.Bool(true))
	failRun(t, `subtypeOf(typeof (dynamic 1), 2)`, "type")
}

func TestSemicolonHandling(t *testing.T) {
	wantVal(t, "1;", value.Int(1)) // trailing semicolon
	wantVal(t, "1 ; 2 ;", value.Int(2))
	failRun(t, "1 2", "parse")
	if rs := run(t, "   "); len(rs) != 0 {
		t.Error("blank program should produce no results")
	}
}
