package lang

import (
	"fmt"
	"io"
	"os"

	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/replicating"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Interp is a session of the database programming language: global
// bindings, declared type abbreviations, and the attached persistence
// stores. Successive Run calls share state, so it serves both as a script
// runner and as the engine behind the REPL.
type Interp struct {
	Out io.Writer
	// Replicating, when set, backs the extern/intern builtins.
	Replicating *replicating.Store
	// Intrinsic, when set, backs `persistent` declarations and the
	// commit/abort builtins.
	Intrinsic *intrinsic.Store

	globals         map[string]value.Value
	globalTypes     map[string]types.Type
	abbrevs         map[string]types.Type
	persistentNames map[string]bool
	refines         map[string]refineEntry
	rebound         map[string]bool
	depth           int
}

// New returns a fresh interpreter writing program output to out (default
// os.Stdout).
func New(out io.Writer) *Interp {
	if out == nil {
		out = os.Stdout
	}
	in := &Interp{
		Out:             out,
		globals:         map[string]value.Value{},
		globalTypes:     map[string]types.Type{},
		abbrevs:         map[string]types.Type{},
		persistentNames: map[string]bool{},
	}
	in.refines = map[string]refineEntry{}
	in.rebound = map[string]bool{}
	for _, b := range builtins() {
		in.globals[b.Name] = b
		in.globalTypes[b.Name] = b.Type
		if b.Refine != nil {
			in.refines[b.Name] = refineEntry{declared: b.Type, fn: b.Refine}
		}
	}
	return in
}

// Result is the outcome of one top-level declaration.
type Result struct {
	Name  string     // bound name, if any
	Type  types.Type // static type (nil for type declarations)
	Value value.Value
}

// String renders the result REPL-style.
func (r Result) String() string {
	if r.Type == nil {
		return fmt.Sprintf("type %s defined", r.Name)
	}
	if r.Name != "" {
		return fmt.Sprintf("%s : %s = %s", r.Name, r.Type, r.Value)
	}
	return fmt.Sprintf("%s : %s", r.Value, r.Type)
}

// Run type-checks and evaluates a program, returning one Result per
// declaration. The program is checked in full before anything is
// evaluated — static checking first, as the paper requires.
func (in *Interp) Run(src string) ([]Result, error) {
	decls, err := Parse(src, in.abbrevs)
	if err != nil {
		return nil, err
	}
	// Static checking pass. The checker mutates its globals map, so give
	// it a copy seeded from the current session.
	ck := &checker{globals: map[string]types.Type{}, refines: in.refines, rebound: in.rebound}
	for k, v := range in.globalTypes {
		ck.globals[k] = v
	}
	type checked struct {
		decl Decl
		name string
		typ  types.Type
	}
	var plan []checked
	for _, d := range decls {
		name, typ, err := ck.checkDecl(d)
		if err != nil {
			return nil, err
		}
		plan = append(plan, checked{decl: d, name: name, typ: typ})
	}

	// Evaluation pass.
	var results []Result
	for _, c := range plan {
		switch dd := c.decl.(type) {
		case *DType:
			results = append(results, Result{Name: dd.Name})
		case *DLet:
			v, err := in.eval(nil, nil, dd.Init)
			if err != nil {
				return results, err
			}
			in.globals[dd.Name] = v
			in.globalTypes[dd.Name] = c.typ
			results = append(results, Result{Name: dd.Name, Type: c.typ, Value: v})
		case *DPersistent:
			v, err := in.evalPersistent(dd)
			if err != nil {
				return results, err
			}
			in.globals[dd.Name] = v
			in.globalTypes[dd.Name] = c.typ
			in.persistentNames[dd.Name] = true
			results = append(results, Result{Name: dd.Name, Type: c.typ, Value: v})
		case *DExpr:
			v, err := in.eval(nil, nil, dd.X)
			if err != nil {
				return results, err
			}
			results = append(results, Result{Type: c.typ, Value: v})
		}
	}
	return results, nil
}

// evalPersistent implements the paper's handle semantics: if the store
// already holds the handle, it is opened at the declared type (a view when
// the stored type is finer; schema enrichment when merely consistent) and
// the initializer is NOT evaluated. Otherwise the initializer runs once and
// the handle is created.
func (in *Interp) evalPersistent(d *DPersistent) (value.Value, error) {
	if in.Intrinsic == nil {
		return nil, errAt(d.Pos, "run", "persistent declarations require an intrinsic store")
	}
	if _, ok := in.Intrinsic.Root(d.Name); ok {
		v, err := in.Intrinsic.OpenAs(d.Name, d.Ann)
		if err != nil {
			return nil, errAt(d.Pos, "run", "persistent %s: %v", d.Name, err)
		}
		return v, nil
	}
	v, err := in.eval(nil, nil, d.Init)
	if err != nil {
		return nil, err
	}
	if err := in.Intrinsic.Bind(d.Name, v, d.Ann); err != nil {
		return nil, errAt(d.Pos, "run", "persistent %s: %v", d.Name, err)
	}
	return v, nil
}

// MustRun is Run but panics on error; for fixtures and examples.
func (in *Interp) MustRun(src string) []Result {
	rs, err := in.Run(src)
	if err != nil {
		panic(err)
	}
	return rs
}

// Lookup returns a global binding and its static type.
func (in *Interp) Lookup(name string) (value.Value, types.Type, bool) {
	v, ok := in.globals[name]
	if !ok {
		return nil, nil, false
	}
	return v, in.globalTypes[name], true
}

// TypeNames returns the declared type abbreviations.
func (in *Interp) TypeNames() map[string]types.Type {
	out := map[string]types.Type{}
	for k, v := range in.abbrevs {
		out[k] = v
	}
	return out
}
