package lang

import (
	"bytes"
	"strings"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// run evaluates src in a fresh interpreter and returns the results.
func run(t *testing.T, src string) []Result {
	t.Helper()
	in := New(new(bytes.Buffer))
	rs, err := in.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return rs
}

// last evaluates src and returns the final result.
func last(t *testing.T, src string) Result {
	t.Helper()
	rs := run(t, src)
	if len(rs) == 0 {
		t.Fatalf("Run(%q) produced no results", src)
	}
	return rs[len(rs)-1]
}

// failRun asserts that src fails in the given phase, returning the message.
func failRun(t *testing.T, src, phase string) string {
	t.Helper()
	in := New(new(bytes.Buffer))
	_, err := in.Run(src)
	if err == nil {
		t.Fatalf("Run(%q) unexpectedly succeeded", src)
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("Run(%q) error %v is not a lang error", src, err)
	}
	if le.Phase != phase {
		t.Fatalf("Run(%q) failed in phase %q (%v), want %q", src, le.Phase, err, phase)
	}
	return le.Msg
}

func wantVal(t *testing.T, src string, want value.Value) {
	t.Helper()
	got := last(t, src).Value
	if !value.Equal(got, want) {
		t.Errorf("Run(%q) = %s, want %s", src, got, want)
	}
}

func wantType(t *testing.T, src string, want string) {
	t.Helper()
	got := last(t, src).Type
	if !types.Equal(got, types.MustParse(want)) {
		t.Errorf("Run(%q) : %s, want %s", src, got, want)
	}
}

// ---------------------------------------------------------------------------
// Literals, operators, control flow
// ---------------------------------------------------------------------------

func TestLiteralsAndArithmetic(t *testing.T) {
	wantVal(t, "1 + 2 * 3", value.Int(7))
	wantVal(t, "(1 + 2) * 3", value.Int(9))
	wantVal(t, "7 / 2", value.Int(3))
	wantVal(t, "7 % 2", value.Int(1))
	wantVal(t, "7.0 / 2", value.Float(3.5))
	wantVal(t, "1 + 2.5", value.Float(3.5))
	wantVal(t, "-3", value.Int(-3))
	wantVal(t, `"foo" ++ "bar"`, value.String("foobar"))
	wantVal(t, "'single' ++ \"double\"", value.String("singledouble"))
	wantVal(t, "unit", value.Unit)
	wantVal(t, "()", value.Unit)
	wantType(t, "1 + 2", "Int")
	wantType(t, "1 + 2.0", "Float")
	wantType(t, "1.5", "Float")
}

func TestComparisonsAndLogic(t *testing.T) {
	wantVal(t, "1 < 2", value.Bool(true))
	wantVal(t, "2 <= 2", value.Bool(true))
	wantVal(t, "3 > 4", value.Bool(false))
	wantVal(t, "1.5 >= 1", value.Bool(true))
	wantVal(t, `"a" < "b"`, value.Bool(true))
	wantVal(t, "1 == 1", value.Bool(true))
	wantVal(t, "1 == 2", value.Bool(false))
	wantVal(t, "{A = 1} == {A = 1}", value.Bool(true))
	wantVal(t, "1 != 2", value.Bool(true))
	wantVal(t, "true and false", value.Bool(false))
	wantVal(t, "true or false", value.Bool(true))
	wantVal(t, "not true", value.Bool(false))
	// Short-circuit: the right side would fail.
	wantVal(t, "false and (1 / 0 == 0)", value.Bool(false))
	wantVal(t, "true or (1 / 0 == 0)", value.Bool(true))
}

func TestIfAndLet(t *testing.T) {
	wantVal(t, "if 1 < 2 then 10 else 20", value.Int(10))
	wantVal(t, "let x = 5 in x * x", value.Int(25))
	wantVal(t, "let x = 1 in let y = 2 in x + y", value.Int(3))
	wantVal(t, "let x = 1; let y = x + 1; y", value.Int(2))
	// Joined branch types.
	wantType(t, "if true then 1 else 2.0", "Float")
	wantType(t, "if true then {A = 1, B = 2} else {A = 3, C = 4}", "{A: Int}")
}

func TestRuntimeErrors(t *testing.T) {
	failRun(t, "1 / 0", "run")
	failRun(t, "1 % 0", "run")
	failRun(t, `fail[Int]("boom")`, "run")
	failRun(t, "let rec f = fun(n: Int): Int is f(n); f(1)", "run") // depth limit
}

func TestTypeErrors(t *testing.T) {
	failRun(t, "1 + true", "type")
	failRun(t, `"a" + "b"`, "type")
	failRun(t, "if 1 then 2 else 3", "type")
	failRun(t, "not 1", "type")
	failRun(t, "unknownVar", "type")
	failRun(t, "let x: String = 3; x", "type")
	failRun(t, "{A = 1}.B", "type")
	failRun(t, "1.A", "type")
	failRun(t, `1 ++ "x"`, "type")
	failRun(t, "1 < \"x\"", "type")
}

func TestParseErrors(t *testing.T) {
	failRun(t, "let = 3", "parse")
	failRun(t, "let x 3", "parse")
	failRun(t, "{A = 1, A = 2}", "parse")
	failRun(t, "fun(x) is x", "parse") // untyped parameter
	failRun(t, "let rec f = 3; f", "parse")
	failRun(t, "1 +", "parse")
	failRun(t, "(1", "parse")
	failRun(t, "let let = 1", "parse")
	failRun(t, "coerce d too Int", "parse")
}

func TestLexErrors(t *testing.T) {
	failRun(t, `"unterminated`, "lex")
	failRun(t, "#", "lex")
	failRun(t, `"bad \q escape"`, "lex")
}

func TestComments(t *testing.T) {
	wantVal(t, "1 + 1 -- this is a comment\n", value.Int(2))
	wantVal(t, "-- leading comment\n2", value.Int(2))
}

// ---------------------------------------------------------------------------
// Records, lists, subtyping
// ---------------------------------------------------------------------------

func TestRecords(t *testing.T) {
	wantVal(t, `{Name = "J Doe"}.Name`, value.String("J Doe"))
	wantVal(t, `{Addr = {City = "Austin"}}.Addr.City`, value.String("Austin"))
	wantType(t, `{Name = "J Doe", Age = 30}`, "{Name: String, Age: Int}")
	// with: functional extension and override.
	wantVal(t, `({Name = "J"} with {Empno = 7}).Empno`, value.Int(7))
	wantVal(t, `({A = 1} with {A = 2}).A`, value.Int(2))
	wantType(t, `{Name = "J"} with {Empno = 7}`, "{Name: String, Empno: Int}")
	// with does not mutate the original.
	wantVal(t, `let p = {A = 1} in let q = p with {A = 2} in p.A`, value.Int(1))
}

func TestLists(t *testing.T) {
	wantType(t, "[1, 2, 3]", "List[Int]")
	wantType(t, "[]", "List[Bottom]")
	wantType(t, "[1, 2.0]", "List[Float]")
	wantType(t, `[{A = 1, B = 2}, {A = 3, C = 4}]`, "List[{A: Int}]")
	wantVal(t, "head([7, 8])", value.Int(7))
	wantVal(t, "length(tail([7, 8, 9]))", value.Int(2))
	wantVal(t, "nth([7, 8, 9], 2)", value.Int(9))
	wantVal(t, "length(append([1], [2, 3]))", value.Int(3))
	wantVal(t, "isEmpty([])", value.Bool(true))
	wantVal(t, "head(cons(0, [1]))", value.Int(0))
	failRun(t, "head([])", "run")
	failRun(t, "nth([1], 5)", "run")
}

func TestHigherOrderBuiltins(t *testing.T) {
	wantVal(t, "nth(map(fun(x: Int): Int is x * 2, [1, 2, 3]), 2)", value.Int(6))
	wantVal(t, "length(filter(fun(x: Int): Bool is x > 1, [1, 2, 3]))", value.Int(2))
	wantVal(t, "fold(fun(a: Int, x: Int): Int is a + x, 0, [1, 2, 3, 4])", value.Int(10))
	// map can change the element type.
	wantType(t, `map(fun(x: Int): String is show(x), [1])`, "List[String]")
}

func TestFunctionsAndSubtyping(t *testing.T) {
	// An Employee can be passed where a Person is expected.
	src := `
		let getName = fun(p: {Name: String}): String is p.Name;
		getName({Name = "J Doe", Empno = 1234})
	`
	wantVal(t, src, value.String("J Doe"))
	// But not the reverse.
	failRun(t, `
		let f = fun(e: {Name: String, Empno: Int}): Int is e.Empno;
		f({Name = "J"})
	`, "type")
	// Declared result must cover the body.
	failRun(t, `fun(x: Int): String is x`, "type")
	// Higher-order subtyping: contravariant parameters.
	wantVal(t, `
		let apply = fun(f: ({Name: String, Empno: Int}) -> String, e: {Name: String, Empno: Int}): String is f(e);
		apply(fun(p: {Name: String}): String is p.Name, {Name = "X", Empno = 1})
	`, value.String("X"))
}

func TestRecursion(t *testing.T) {
	wantVal(t, `
		let rec fact = fun(n: Int): Int is if n <= 1 then 1 else n * fact(n - 1);
		fact(10)
	`, value.Int(3628800))
	wantVal(t, `
		let rec fib = fun(n: Int): Int is if n < 2 then n else fib(n-1) + fib(n-2);
		fib(15)
	`, value.Int(610))
}

func TestLetRecExpression(t *testing.T) {
	// let rec as an expression, not just a declaration.
	wantVal(t, `
		let rec go = fun(n: Int, acc: Int): Int is
			if n == 0 then acc else go(n - 1, acc + n)
		in go(100, 0)
	`, value.Int(5050))
	// Nested inside another function.
	wantVal(t, `
		let sumTo = fun(m: Int): Int is
			let rec go = fun(n: Int): Int is
				if n == 0 then 0 else n + go(n - 1)
			in go(m);
		sumTo(10)
	`, value.Int(55))
	failRun(t, `let rec f = 3 in f`, "parse")
	failRun(t, `let rec f = fun(n: Int) is n in f(1)`, "parse") // needs result type
}

func TestClosures(t *testing.T) {
	wantVal(t, `
		let mkAdder = fun(n: Int): (Int) -> Int is fun(m: Int): Int is n + m;
		let add3 = mkAdder(3);
		add3(4)
	`, value.Int(7))
}

// ---------------------------------------------------------------------------
// Type declarations and recursive types
// ---------------------------------------------------------------------------

func TestTypeDeclarations(t *testing.T) {
	wantVal(t, `
		type Person = {Name: String};
		type Employee = {Name: String, Empno: Int};
		let getName = fun(p: Person): String is p.Name;
		let e: Employee = {Name = "J Doe", Empno = 1};
		getName(e)
	`, value.String("J Doe"))
	failRun(t, "type Person = {A: Int}; type Person = {B: Int}; 1", "parse")
	failRun(t, "type lower = Int; 1", "parse")
	failRun(t, "let x: Unknown = 1; x", "parse")
}

func TestRecursiveTypeDeclaration(t *testing.T) {
	src := `
		type Part = {Name: String, Components: List[{Sub: Part, Qty: Int}]};
		let bolt: Part = {Name = "bolt", Components = []};
		let frame: Part = {Name = "frame", Components = [{Sub = bolt, Qty = 8}]};
		(head(frame.Components)).Sub.Name
	`
	wantVal(t, src, value.String("bolt"))
}

// ---------------------------------------------------------------------------
// Bounded polymorphism and existentials
// ---------------------------------------------------------------------------

func TestPolymorphicFunctions(t *testing.T) {
	wantVal(t, `
		let id = fun[a](x: a): a is x;
		id[Int](3)
	`, value.Int(3))
	wantType(t, `
		let id = fun[a](x: a): a is x;
		id
	`, "forall a . a -> a")
	// Bounded quantification: the function may use the bound's fields.
	wantVal(t, `
		let getName = fun[t <= {Name: String}](x: t): String is x.Name;
		getName[{Name: String, Empno: Int}]({Name = "J", Empno = 1})
	`, value.String("J"))
	// Exceeding the bound is a static error.
	failRun(t, `
		let getName = fun[t <= {Name: String}](x: t): String is x.Name;
		getName[Int](3)
	`, "type")
	// Direct application infers the instantiation from the arguments.
	wantVal(t, `
		let id = fun[a](x: a): a is x;
		id(3)
	`, value.Int(3))
	wantType(t, `
		let id = fun[a](x: a): a is x;
		id(3)
	`, "Int")
	// Inference joins the candidates from multiple occurrences.
	wantType(t, `
		let pick = fun[a](c: Bool, x: a, y: a): a is if c then x else y;
		pick(true, 1, 2.0)
	`, "Float")
	// An inferred argument that exceeds the bound is still an error.
	failRun(t, `
		let getName = fun[t <= {Name: String}](x: t): String is x.Name;
		getName(3)
	`, "type")
}

func TestOpenExistential(t *testing.T) {
	// get's result elements are existential packages; open reveals them at
	// the bound.
	src := `
		type Person = {Name: String};
		let db: List[Dynamic] = [dynamic {Name = "J Doe", Empno = 1}];
		let ps = get[Person](db);
		open head(ps) as (t, p) in p.Name
	`
	wantVal(t, src, value.String("J Doe"))
	// The opened variable has the abstract type t; fields beyond the bound
	// are invisible statically.
	failRun(t, `
		type Person = {Name: String};
		let db: List[Dynamic] = [dynamic {Name = "J", Empno = 1}];
		open head(get[Person](db)) as (t, p) in p.Empno
	`, "type")
	// The type variable must not escape.
	failRun(t, `
		type Person = {Name: String};
		let db: List[Dynamic] = [dynamic {Name = "J"}];
		open head(get[Person](db)) as (t, p) in p
	`, "type")
	failRun(t, `open 3 as (t, p) in 1`, "type")
}

// ---------------------------------------------------------------------------
// Dynamics: the paper's coerce example
// ---------------------------------------------------------------------------

func TestPaperDynamicExample(t *testing.T) {
	// let d = dynamic 3; let i = coerce d to Int  -- 3
	wantVal(t, `
		let d = dynamic 3;
		coerce d to Int
	`, value.Int(3))
	// coerce d to String raises a run-time exception.
	failRun(t, `
		let d = dynamic 3;
		coerce d to String
	`, "run")
	// Coercion respects subsumption.
	wantVal(t, `
		let d = dynamic {Name = "J", Empno = 1};
		(coerce d to {Name: String}).Name
	`, value.String("J"))
	// typeof reifies the carried type.
	wantType(t, "typeof (dynamic 3)", "Type")
	wantVal(t, `typeof (dynamic 3) == typeof (dynamic 4)`, value.Bool(true))
	wantVal(t, `typeof (dynamic 3) == typeof (dynamic "x")`, value.Bool(false))
	// Static: only dynamics can be coerced.
	failRun(t, "coerce 3 to Int", "type")
	failRun(t, "typeof 3", "type")
}

// ---------------------------------------------------------------------------
// The generic get: deriving extents from the type hierarchy
// ---------------------------------------------------------------------------

func TestGetDerivesClassHierarchy(t *testing.T) {
	src := `
		type Person = {Name: String};
		type Employee = {Name: String, Empno: Int, Dept: String};
		type Student = {Name: String, StudentID: Int};
		let db: List[Dynamic] = [
			dynamic {Name = "P1"},
			dynamic {Name = "E1", Empno = 1, Dept = "Sales"},
			dynamic {Name = "E2", Empno = 2, Dept = "Manuf"},
			dynamic {Name = "S1", StudentID = 100},
			dynamic {Name = "SE1", Empno = 3, Dept = "Admin", StudentID = 101},
			dynamic 42
		];
	`
	for _, c := range []struct {
		query string
		want  int64
	}{
		{"Person", 5}, {"Employee", 3}, {"Student", 2}, {"Int", 1}, {"Top", 6},
	} {
		wantVal(t, src+"length(get["+c.query+"](db))", value.Int(c.want))
	}
}

func TestGetTypeIsThePapersType(t *testing.T) {
	wantType(t, "get", "forall t . List[Dynamic] -> List[exists u <= t . u]")
	wantType(t, `
		type Person = {Name: String};
		get[Person]
	`, "List[Dynamic] -> List[exists u <= {Name: String} . u]")
	wantType(t, `
		type Person = {Name: String};
		let db: List[Dynamic] = [];
		get[Person](db)
	`, "List[exists u <= {Name: String} . u]")
}

func TestGetInsidePolymorphicFunction(t *testing.T) {
	// A user-defined generic count function built on get — generic code
	// over the database, statically checked.
	src := `
		let count = fun[t](db: List[Dynamic]): Int is length(get[t](db));
		type Employee = {Name: String, Empno: Int};
		let db: List[Dynamic] = [
			dynamic {Name = "E1", Empno = 1},
			dynamic {Name = "P1"}
		];
		count[Employee](db)
	`
	wantVal(t, src, value.Int(1))
}

// ---------------------------------------------------------------------------
// Object-level inheritance in the language
// ---------------------------------------------------------------------------

func TestObjectJoin(t *testing.T) {
	// {Name = 'J Doe'} ⊔ {Emp_no = 1234} = {Name = 'J Doe', Emp_no = 1234}.
	// The join's static type is the join of the record types ({} here), so
	// the merged fields are observed dynamically.
	wantVal(t, `
		join({Name = "J Doe"}, {Emp_no = 1234}) == {Name = "J Doe", Emp_no = 1234}
	`, value.Bool(true))
	// With an explicit common supertype instantiation the shared fields
	// stay statically visible.
	wantVal(t, `
		(join[{Name: String}]({Name = "J", A = 1}, {Name = "J", B = 2})).Name
	`, value.String("J"))
	failRun(t, `join({Name = "J"}, {Name = "K"})`, "run")
	// [Bune85]: a direct join is typed at the MEET of the argument types,
	// so the merged fields are statically visible — the "minor
	// modification … to assign a type to relational operators".
	wantType(t, `join({Name = "J Doe"}, {Emp_no = 1234})`, "{Name: String, Emp_no: Int}")
	wantVal(t, `join({Name = "J Doe"}, {Emp_no = 1234}).Emp_no`, value.Int(1234))
	wantType(t, `
		let people = relation([{Name = "J", Dept = "S"}]);
		let depts = relation([{Dept = "S", Floor = 3}]);
		rjoin(people, depts)
	`, "Set[{Name: String, Dept: String, Floor: Int}]")
	// Joining inconsistent relations is statically empty.
	wantType(t, `rjoin(setof([{A = 1}]), setof([{A = "x"}]))`, "Set[Bottom]")
	wantVal(t, `size(rjoin(setof([{A = 1}]), setof([{A = "x"}])))`, value.Int(0))
	// A user rebinding `join` gets ordinary generic typing, not the
	// refinement.
	wantType(t, `
		let join = fun[a](x: a, y: a): a is x;
		join({Name = "J"}, {Emp_no = 1})
	`, "{}")
	wantVal(t, `joinable({Name = "J"}, {Name = "K"})`, value.Bool(false))
	wantVal(t, `joinable({Name = "J"}, {Empno = 1})`, value.Bool(true))
	wantVal(t, `leq({Name = "J"}, {Name = "J", Empno = 1})`, value.Bool(true))
	wantVal(t, `leq({Name = "J", Empno = 1}, {Name = "J"})`, value.Bool(false))
}

func TestGeneralizedRelations(t *testing.T) {
	// Cochain construction subsumes comparable members.
	wantVal(t, `size(relation[{}]([{A = 1}, {A = 1, B = 2}]))`, value.Int(1))
	wantVal(t, `size(setof[{A: Int}]([{A = 1}, {A = 1}]))`, value.Int(1))
	// A miniature Figure 1 join.
	src := `
		let people = relation[{}]([
			{Name = "J Doe", Dept = "Sales"},
			{Name = "N Bug"}
		]);
		let depts = relation[{}]([
			{Dept = "Sales", Floor = 3},
			{Dept = "Admin", Floor = 1}
		]);
		size(rjoin[{}](people, depts))
	`
	wantVal(t, src, value.Int(3))
	wantVal(t, `size(project[{}](relation[{}]([{A = 1, B = 1}, {A = 1, B = 2}]), ["A"]))`, value.Int(1))
	wantVal(t, `contains[{A: Int}](setof[{A: Int}]([{A = 1}]), {A = 1})`, value.Bool(true))
	wantVal(t, `size(runion[{}](relation[{}]([{A = 1}]), relation[{}]([{A = 1, B = 2}])))`, value.Int(1))
	wantVal(t, `size(sfilter[{A: Int}](fun(r: {A: Int}): Bool is r.A > 1, setof[{A: Int}]([{A = 1}, {A = 2}])))`, value.Int(1))
}

func TestRExtract(t *testing.T) {
	src := `
		type Employee = {Name: String, Empno: Int};
		let r = relation([
			{Name = "E1", Empno = 1},
			{Name = "P1"},
			{Name = "E2", Empno = 2}
		]);
	`
	wantVal(t, src+`size(rextract[Employee](r))`, value.Int(2))
	wantType(t, src+`rextract[Employee](r)`, "Set[{Name: String, Empno: Int}]")
	// Elements of the extraction can be used at the extracted type.
	wantVal(t, src+`
		fold(fun(a: Int, e: Employee): Int is a + e.Empno, 0,
			members(rextract[Employee](r)))`, value.Int(3))
}

func TestStringBuiltins(t *testing.T) {
	wantVal(t, `strlen("hello")`, value.Int(5))
	wantVal(t, `substring("hello", 1, 3)`, value.String("el"))
	wantVal(t, `strContains("database", "base")`, value.Bool(true))
	wantVal(t, `strContains("database", "xyz")`, value.Bool(false))
	failRun(t, `substring("hi", 0, 9)`, "run")
	failRun(t, `substring("hi", -1, 1)`, "run")
	failRun(t, `strlen(3)`, "type")
}

// ---------------------------------------------------------------------------
// Output and session behaviour
// ---------------------------------------------------------------------------

func TestPrintAndShow(t *testing.T) {
	var buf bytes.Buffer
	in := New(&buf)
	if _, err := in.Run(`print[Int](42); print[String]("hello")`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "hello") {
		t.Errorf("output = %q", out)
	}
	wantVal(t, `show[{A: Int}]({A = 1})`, value.String("{A = 1}"))
}

func TestSessionStatePersistsAcrossRuns(t *testing.T) {
	in := New(new(bytes.Buffer))
	if _, err := in.Run("let x = 40"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run("type Person = {Name: String}"); err != nil {
		t.Fatal(err)
	}
	rs, err := in.Run("let p: Person = {Name = \"J\"}; x + 2")
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(rs[len(rs)-1].Value, value.Int(42)) {
		t.Errorf("cross-run state: %s", rs[len(rs)-1].Value)
	}
	// Lookup API.
	if v, typ, ok := in.Lookup("x"); !ok || !value.Equal(v, value.Int(40)) || !types.Equal(typ, types.Int) {
		t.Error("Lookup failed")
	}
}

func TestStaticCheckBeforeAnyEvaluation(t *testing.T) {
	// The second declaration has a type error; the first must not run.
	var buf bytes.Buffer
	in := New(&buf)
	_, err := in.Run(`print[Int](1); 1 + true`)
	if err == nil {
		t.Fatal("expected type error")
	}
	if buf.Len() != 0 {
		t.Errorf("evaluation happened before checking: %q", buf.String())
	}
}

func TestMemoBuiltins(t *testing.T) {
	src := `
		let part = {Name = "frame", Cost = 10.0};
		memoSet[{}](part, "_total", dynamic 99.5);
		let back = coerce memoGet[{}](part, "_total") to Float;
		back
	`
	wantVal(t, src, value.Float(99.5))
	wantVal(t, `
		let p = {A = 1};
		memoHas[{}](p, "_m")
	`, value.Bool(false))
	// Labels must be transient.
	failRun(t, `memoSet[{}]({A = 1}, "B", dynamic 1)`, "run")
	// Memo fields are invisible to the static type system: the record still
	// has its declared type and no more.
	wantType(t, `
		let p = {A = 1};
		memoSet[{}](p, "_m", dynamic 2);
		p
	`, "{A: Int}")
}

func TestResultString(t *testing.T) {
	rs := run(t, "let x = 1; 2; type T = Int")
	if got := rs[0].String(); !strings.Contains(got, "x : Int = 1") {
		t.Errorf("let result = %q", got)
	}
	if got := rs[1].String(); !strings.Contains(got, "2 : Int") {
		t.Errorf("expr result = %q", got)
	}
	if got := rs[2].String(); !strings.Contains(got, "type T defined") {
		t.Errorf("type result = %q", got)
	}
}
