package lang

import (
	"dbpl/internal/types"
)

// checker performs static type checking: record subtyping, Kernel-Fun
// bounded quantification, existential elimination, and Dynamic as the
// boundary between the static and dynamic worlds — "a certain amount of
// dynamic type-checking … is necessary" (Atkinson & Morrison), but it is
// confined to coerce and to the implementation of get.
type checker struct {
	globals map[string]types.Type
	// refines holds the [Bune85]-style precise result typings of builtins
	// (join, rjoin); see Builtin.Refine. rebound records builtin names the
	// program has redefined, whose refinement must no longer apply — a
	// user function with the same generic type need not satisfy it.
	refines map[string]refineEntry
	rebound map[string]bool
}

// refineEntry pairs a builtin's declared type with its refinement function.
type refineEntry struct {
	declared types.Type
	fn       func(argTs []types.Type) (types.Type, bool)
}

// tenv is a lexical environment of value bindings.
type tenv struct {
	parent *tenv
	name   string
	typ    types.Type
}

func (e *tenv) bind(name string, t types.Type) *tenv {
	return &tenv{parent: e, name: name, typ: t}
}

func (e *tenv) lookup(name string) (types.Type, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.typ, true
		}
	}
	return nil, false
}

// checkDecl type-checks one declaration against the current globals and
// returns the binding it introduces (name may be empty for expressions).
func (c *checker) checkDecl(d Decl) (name string, t types.Type, err error) {
	switch dd := d.(type) {
	case *DType:
		return "", nil, nil // expanded at parse time
	case *DLet:
		inferred, err := c.infer(nil, nil, dd.Init)
		if err != nil {
			return "", nil, err
		}
		bound := inferred
		if dd.Ann != nil {
			if err := c.validateType(nil, dd.Ann, dd.Pos); err != nil {
				return "", nil, err
			}
			if !types.Subtype(inferred, dd.Ann) {
				return "", nil, errAt(dd.Pos, "type", "cannot bind %s value to %s", inferred, dd.Ann)
			}
			bound = dd.Ann
		}
		c.globals[dd.Name] = bound
		c.markRebound(dd.Name)
		return dd.Name, bound, nil
	case *DPersistent:
		if err := c.validateType(nil, dd.Ann, dd.Pos); err != nil {
			return "", nil, err
		}
		inferred, err := c.infer(nil, nil, dd.Init)
		if err != nil {
			return "", nil, err
		}
		if !types.Subtype(inferred, dd.Ann) {
			return "", nil, errAt(dd.Pos, "type", "initializer %s does not conform to declared %s", inferred, dd.Ann)
		}
		c.globals[dd.Name] = dd.Ann
		c.markRebound(dd.Name)
		return dd.Name, dd.Ann, nil
	case *DExpr:
		t, err := c.infer(nil, nil, dd.X)
		if err != nil {
			return "", nil, err
		}
		return "", t, nil
	default:
		return "", nil, errAt(d.declPos(), "type", "unknown declaration %T", d)
	}
}

// markRebound records that the program redefined a refinable builtin.
func (c *checker) markRebound(name string) {
	if _, ok := c.refines[name]; ok {
		c.rebound[name] = true
	}
}

// validateType checks that every free type variable of t is bound in ctx.
func (c *checker) validateType(ctx *types.Context, t types.Type, pos Pos) error {
	for v := range types.FreeVars(t) {
		if _, ok := ctx.Bound(v); !ok {
			return errAt(pos, "type", "unbound type variable %q", v)
		}
	}
	return nil
}

// resolveStruct unfolds a type to its structural head: variables resolve to
// their bounds, recursive types unfold. It is used to look inside a type
// for field selection, application, etc.
func resolveStruct(ctx *types.Context, t types.Type) types.Type {
	for i := 0; i < 64; i++ {
		switch tt := t.(type) {
		case *types.Var:
			b, ok := ctx.Bound(tt.Name)
			if !ok {
				return t
			}
			t = b
		case *types.Rec:
			t = tt.Unfold()
		default:
			return t
		}
	}
	return t
}

func (c *checker) infer(ctx *types.Context, env *tenv, e Expr) (types.Type, error) {
	switch ee := e.(type) {
	case *EInt:
		return types.Int, nil
	case *EFloat:
		return types.Float, nil
	case *EString:
		return types.String, nil
	case *EBool:
		return types.Bool, nil
	case *EUnit:
		return types.Unit, nil

	case *EVar:
		if t, ok := env.lookup(ee.Name); ok {
			return t, nil
		}
		if t, ok := c.globals[ee.Name]; ok {
			return t, nil
		}
		return nil, errAt(ee.Pos, "type", "unknown variable %q", ee.Name)

	case *ERecord:
		fs := make([]types.Field, len(ee.Fields))
		for i, f := range ee.Fields {
			ft, err := c.infer(ctx, env, f.X)
			if err != nil {
				return nil, err
			}
			fs[i] = types.Field{Label: f.Label, Type: ft}
		}
		return types.NewRecord(fs...), nil

	case *EList:
		elem := types.Type(types.Bottom)
		for _, el := range ee.Elems {
			t, err := c.infer(ctx, env, el)
			if err != nil {
				return nil, err
			}
			elem = types.Join(elem, t)
		}
		return types.NewList(elem), nil

	case *EField:
		xt, err := c.infer(ctx, env, ee.X)
		if err != nil {
			return nil, err
		}
		rec, ok := resolveStruct(ctx, xt).(*types.Record)
		if !ok {
			return nil, errAt(ee.Pos, "type", "field selection on non-record %s", xt)
		}
		ft, ok := rec.Lookup(ee.Label)
		if !ok {
			return nil, errAt(ee.Pos, "type", "%s has no field %q", xt, ee.Label)
		}
		return ft, nil

	case *EWith:
		xt, err := c.infer(ctx, env, ee.X)
		if err != nil {
			return nil, err
		}
		rec, ok := resolveStruct(ctx, xt).(*types.Record)
		if !ok {
			return nil, errAt(ee.Pos, "type", "'with' requires a record, got %s", xt)
		}
		rt, err := c.infer(ctx, env, ee.R)
		if err != nil {
			return nil, err
		}
		over := rt.(*types.Record)
		merged := map[string]types.Type{}
		for i := 0; i < rec.Len(); i++ {
			f := rec.Field(i)
			merged[f.Label] = f.Type
		}
		for i := 0; i < over.Len(); i++ {
			f := over.Field(i)
			merged[f.Label] = f.Type
		}
		fs := make([]types.Field, 0, len(merged))
		for l, t := range merged {
			fs = append(fs, types.Field{Label: l, Type: t})
		}
		return types.NewRecord(fs...), nil

	case *ECall:
		ft, err := c.infer(ctx, env, ee.Fn)
		if err != nil {
			return nil, err
		}
		argTs := make([]types.Type, len(ee.Args))
		for i, a := range ee.Args {
			if argTs[i], err = c.infer(ctx, env, a); err != nil {
				return nil, err
			}
		}
		// Local inference: a universally quantified function applied
		// directly has its type arguments inferred from the value
		// arguments (head(xs) instead of head[Int](xs)). Explicit [T]
		// instantiation always remains available and is required when a
		// parameter does not mention the variable (notably get[T]).
		head := resolveStruct(ctx, ft)
		if q, isQ := head.(*types.Quant); isQ && q.Kind() == types.KindForAll {
			inst, err := inferTypeArgs(ctx, q, argTs, ee.Pos)
			if err != nil {
				return nil, err
			}
			head = inst
		}
		fn, ok := head.(*types.Func)
		if !ok {
			return nil, errAt(ee.Pos, "type", "cannot call non-function %s", ft)
		}
		if len(ee.Args) != len(fn.Params) {
			return nil, errAt(ee.Pos, "type", "wrong number of arguments: have %d, want %d", len(ee.Args), len(fn.Params))
		}
		for i, a := range ee.Args {
			if !types.SubtypeIn(ctx, argTs[i], fn.Params[i]) {
				return nil, errAt(a.exprPos(), "type", "argument %d: %s is not a subtype of %s", i+1, argTs[i], fn.Params[i])
			}
		}
		// [Bune85] refinement: a direct call of an unshadowed relational
		// builtin gets a result type computed from the argument types
		// (e.g. join : (T1, T2) → T1 ⊓ T2), always a subtype of the
		// declared generic result.
		if ev, ok := ee.Fn.(*EVar); ok {
			if _, shadowed := env.lookup(ev.Name); !shadowed && !c.rebound[ev.Name] {
				if r, ok := c.refines[ev.Name]; ok && types.Equal(c.globals[ev.Name], r.declared) {
					if precise, ok := r.fn(argTs); ok && types.SubtypeIn(ctx, precise, fn.Result) {
						return precise, nil
					}
				}
			}
		}
		return fn.Result, nil

	case *ETypeApp:
		ft, err := c.infer(ctx, env, ee.Fn)
		if err != nil {
			return nil, err
		}
		cur := ft
		for _, targ := range ee.Types {
			if err := c.validateType(ctx, targ, ee.Pos); err != nil {
				return nil, err
			}
			q, ok := resolveStruct(ctx, cur).(*types.Quant)
			if !ok || q.Kind() != types.KindForAll {
				return nil, errAt(ee.Pos, "type", "%s is not universally quantified", cur)
			}
			if !types.SubtypeIn(ctx, targ, q.Bound) {
				return nil, errAt(ee.Pos, "type", "type argument %s exceeds bound %s", targ, q.Bound)
			}
			cur = types.Substitute(q.Body, q.Param, targ)
		}
		return cur, nil

	case *EFun:
		fctx := ctx
		for _, tp := range ee.TypeParams {
			if err := c.validateType(fctx, tp.Bound, ee.Pos); err != nil {
				return nil, err
			}
			fctx = fctx.Extend(tp.Name, tp.Bound)
		}
		fenv := env
		params := make([]types.Type, len(ee.Params))
		for i, p := range ee.Params {
			if err := c.validateType(fctx, p.Type, ee.Pos); err != nil {
				return nil, err
			}
			params[i] = p.Type
			fenv = fenv.bind(p.Name, p.Type)
		}
		if ee.Result != nil {
			if err := c.validateType(fctx, ee.Result, ee.Pos); err != nil {
				return nil, err
			}
		}
		mkType := func(result types.Type) types.Type {
			var t types.Type = types.NewFunc(params, result)
			for i := len(ee.TypeParams) - 1; i >= 0; i-- {
				t = types.NewForAll(ee.TypeParams[i].Name, ee.TypeParams[i].Bound, t)
			}
			return t
		}
		if ee.SelfName != "" {
			// let rec: the body sees the fully annotated self.
			fenv = fenv.bind(ee.SelfName, mkType(ee.Result))
		}
		bodyT, err := c.infer(fctx, fenv, ee.Body)
		if err != nil {
			return nil, err
		}
		result := bodyT
		if ee.Result != nil {
			if !types.SubtypeIn(fctx, bodyT, ee.Result) {
				return nil, errAt(ee.Pos, "type", "body has type %s, not a subtype of declared result %s", bodyT, ee.Result)
			}
			result = ee.Result
		}
		return mkType(result), nil

	case *EIf:
		ct, err := c.infer(ctx, env, ee.Cond)
		if err != nil {
			return nil, err
		}
		if !types.SubtypeIn(ctx, ct, types.Bool) {
			return nil, errAt(ee.Cond.exprPos(), "type", "condition must be Bool, got %s", ct)
		}
		tt, err := c.infer(ctx, env, ee.Then)
		if err != nil {
			return nil, err
		}
		et, err := c.infer(ctx, env, ee.Else)
		if err != nil {
			return nil, err
		}
		return types.Join(tt, et), nil

	case *ELetIn:
		it, err := c.infer(ctx, env, ee.Init)
		if err != nil {
			return nil, err
		}
		bound := it
		if ee.Ann != nil {
			if err := c.validateType(ctx, ee.Ann, ee.Pos); err != nil {
				return nil, err
			}
			if !types.SubtypeIn(ctx, it, ee.Ann) {
				return nil, errAt(ee.Pos, "type", "cannot bind %s value to %s", it, ee.Ann)
			}
			bound = ee.Ann
		}
		return c.infer(ctx, env.bind(ee.Name, bound), ee.Body)

	case *EBinary:
		return c.inferBinary(ctx, env, ee)

	case *EUnary:
		xt, err := c.infer(ctx, env, ee.X)
		if err != nil {
			return nil, err
		}
		switch ee.Op {
		case OpNeg:
			if !types.SubtypeIn(ctx, xt, types.Float) {
				return nil, errAt(ee.Pos, "type", "cannot negate %s", xt)
			}
			return xt, nil
		case OpNot:
			if !types.SubtypeIn(ctx, xt, types.Bool) {
				return nil, errAt(ee.Pos, "type", "'not' requires Bool, got %s", xt)
			}
			return types.Bool, nil
		}
		return nil, errAt(ee.Pos, "type", "unknown unary operator")

	case *EDynamic:
		if _, err := c.infer(ctx, env, ee.X); err != nil {
			return nil, err
		}
		return types.Dynamic, nil

	case *ECoerce:
		xt, err := c.infer(ctx, env, ee.X)
		if err != nil {
			return nil, err
		}
		if !types.SubtypeIn(ctx, xt, types.Dynamic) {
			return nil, errAt(ee.Pos, "type", "coerce requires a Dynamic, got %s", xt)
		}
		if err := c.validateType(ctx, ee.T, ee.Pos); err != nil {
			return nil, err
		}
		return ee.T, nil

	case *ETypeOf:
		xt, err := c.infer(ctx, env, ee.X)
		if err != nil {
			return nil, err
		}
		if !types.SubtypeIn(ctx, xt, types.Dynamic) {
			return nil, errAt(ee.Pos, "type", "typeof requires a Dynamic, got %s", xt)
		}
		return types.TypeRep, nil

	case *EVariant:
		xt, err := c.infer(ctx, env, ee.X)
		if err != nil {
			return nil, err
		}
		return types.NewVariant(types.Field{Label: ee.Label, Type: xt}), nil

	case *ECompr:
		qenv := env
		for _, q := range ee.Quals {
			if q.Var == "" {
				gt, err := c.infer(ctx, qenv, q.Source)
				if err != nil {
					return nil, err
				}
				if !types.SubtypeIn(ctx, gt, types.Bool) {
					return nil, errAt(q.Source.exprPos(), "type", "comprehension guard must be Bool, got %s", gt)
				}
				continue
			}
			st, err := c.infer(ctx, qenv, q.Source)
			if err != nil {
				return nil, err
			}
			lst, ok := resolveStruct(ctx, st).(*types.List)
			if !ok {
				return nil, errAt(q.Source.exprPos(), "type", "comprehension generator must draw from a List, got %s", st)
			}
			qenv = qenv.bind(q.Var, lst.Elem)
		}
		ht, err := c.infer(ctx, qenv, ee.Head)
		if err != nil {
			return nil, err
		}
		return types.NewList(ht), nil

	case *ECase:
		xt, err := c.infer(ctx, env, ee.X)
		if err != nil {
			return nil, err
		}
		v, ok := resolveStruct(ctx, xt).(*types.Variant)
		if !ok {
			return nil, errAt(ee.Pos, "type", "case requires a variant, got %s", xt)
		}
		covered := map[string]bool{}
		result := types.Type(types.Bottom)
		for _, arm := range ee.Arms {
			payload, ok := v.Lookup(arm.Label)
			if !ok {
				return nil, errAt(ee.Pos, "type", "case arm %q is not a tag of %s", arm.Label, xt)
			}
			covered[arm.Label] = true
			bt, err := c.infer(ctx, env.bind(arm.Var, payload), arm.Body)
			if err != nil {
				return nil, err
			}
			result = types.Join(result, bt)
		}
		for i := 0; i < v.Len(); i++ {
			if tag := v.Tag(i); !covered[tag.Label] {
				return nil, errAt(ee.Pos, "type", "case does not cover tag %q of %s", tag.Label, xt)
			}
		}
		return result, nil

	case *EOpen:
		xt, err := c.infer(ctx, env, ee.X)
		if err != nil {
			return nil, err
		}
		q, ok := resolveStruct(ctx, xt).(*types.Quant)
		if !ok || q.Kind() != types.KindExists {
			return nil, errAt(ee.Pos, "type", "open requires an existential package, got %s", xt)
		}
		if _, shadow := ctx.Bound(ee.TVar); shadow {
			return nil, errAt(ee.Pos, "type", "type variable %q is already in scope", ee.TVar)
		}
		bctx := ctx.Extend(ee.TVar, q.Bound)
		benv := env.bind(ee.Var, types.Substitute(q.Body, q.Param, types.NewVar(ee.TVar)))
		bt, err := c.infer(bctx, benv, ee.Body)
		if err != nil {
			return nil, err
		}
		if types.FreeVars(bt)[ee.TVar] {
			return nil, errAt(ee.Pos, "type", "type variable %q escapes its open scope in %s", ee.TVar, bt)
		}
		return bt, nil

	default:
		return nil, errAt(e.exprPos(), "type", "unknown expression %T", e)
	}
}

// inferTypeArgs instantiates a chain of universal quantifiers by matching
// the declared parameter types against the actual argument types. A
// variable with no occurrence in any parameter falls back to its bound
// (always a sound instantiation). The caller's subsequent argument subtype
// checks guarantee soundness of the guesses.
func inferTypeArgs(ctx *types.Context, q *types.Quant, argTs []types.Type, pos Pos) (types.Type, error) {
	var names []string
	var bounds []types.Type
	var cur types.Type = q
	for {
		qq, ok := resolveStruct(ctx, cur).(*types.Quant)
		if !ok || qq.Kind() != types.KindForAll {
			break
		}
		names = append(names, qq.Param)
		bounds = append(bounds, qq.Bound)
		cur = qq.Body
	}
	fn, ok := resolveStruct(ctx, cur).(*types.Func)
	if !ok {
		return nil, errAt(pos, "type", "polymorphic value must be instantiated with [T] before application")
	}
	if len(fn.Params) != len(argTs) {
		return nil, errAt(pos, "type", "wrong number of arguments: have %d, want %d", len(argTs), len(fn.Params))
	}
	vars := map[string]bool{}
	for _, n := range names {
		vars[n] = true
	}
	cands := map[string]types.Type{}
	for i, p := range fn.Params {
		matchInfer(p, argTs[i], vars, cands)
	}
	// Instantiate in binding order; later bounds may mention earlier
	// variables (F-bounded style), so substitute as we go.
	result := types.Type(fn)
	for i, n := range names {
		bound := bounds[i]
		for j := 0; j < i; j++ {
			bound = types.Substitute(bound, names[j], cands[names[j]])
		}
		arg, ok := cands[n]
		if !ok {
			arg = bound
			cands[n] = arg
		}
		if !types.SubtypeIn(ctx, arg, bound) {
			return nil, errAt(pos, "type", "inferred type argument %s for %q exceeds bound %s; instantiate explicitly with [T]", arg, n, bound)
		}
		result = types.Substitute(result, n, arg)
	}
	return result, nil
}

// matchInfer records candidate instantiations by structurally matching the
// declared type against the actual type. Multiple occurrences of one
// variable join their candidates.
func matchInfer(decl, actual types.Type, vars map[string]bool, cands map[string]types.Type) {
	switch d := decl.(type) {
	case *types.Var:
		if vars[d.Name] {
			if prev, ok := cands[d.Name]; ok {
				cands[d.Name] = types.Join(prev, actual)
			} else {
				cands[d.Name] = actual
			}
		}
	case *types.Record:
		a, ok := actual.(*types.Record)
		if !ok {
			return
		}
		for i := 0; i < d.Len(); i++ {
			f := d.Field(i)
			if at, ok := a.Lookup(f.Label); ok {
				matchInfer(f.Type, at, vars, cands)
			}
		}
	case *types.List:
		if a, ok := actual.(*types.List); ok {
			matchInfer(d.Elem, a.Elem, vars, cands)
		}
	case *types.Set:
		if a, ok := actual.(*types.Set); ok {
			matchInfer(d.Elem, a.Elem, vars, cands)
		}
	case *types.Func:
		a, ok := actual.(*types.Func)
		if !ok || len(a.Params) != len(d.Params) {
			return
		}
		for i := range d.Params {
			matchInfer(d.Params[i], a.Params[i], vars, cands)
		}
		matchInfer(d.Result, a.Result, vars, cands)
	}
}

func (c *checker) inferBinary(ctx *types.Context, env *tenv, ee *EBinary) (types.Type, error) {
	lt, err := c.infer(ctx, env, ee.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.infer(ctx, env, ee.R)
	if err != nil {
		return nil, err
	}
	numeric := func(t types.Type) bool { return types.SubtypeIn(ctx, t, types.Float) }
	isInt := func(t types.Type) bool { return types.SubtypeIn(ctx, t, types.Int) }
	isString := func(t types.Type) bool { return types.SubtypeIn(ctx, t, types.String) }
	switch ee.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		if !numeric(lt) || !numeric(rt) {
			return nil, errAt(ee.Pos, "type", "operator %s requires numbers, got %s and %s", ee.Op, lt, rt)
		}
		if isInt(lt) && isInt(rt) {
			return types.Int, nil
		}
		return types.Float, nil
	case OpMod:
		if !isInt(lt) || !isInt(rt) {
			return nil, errAt(ee.Pos, "type", "%% requires integers, got %s and %s", lt, rt)
		}
		return types.Int, nil
	case OpConcat:
		if !isString(lt) || !isString(rt) {
			return nil, errAt(ee.Pos, "type", "++ requires strings, got %s and %s", lt, rt)
		}
		return types.String, nil
	case OpEq, OpNe:
		return types.Bool, nil
	case OpLt, OpLe, OpGt, OpGe:
		if (numeric(lt) && numeric(rt)) || (isString(lt) && isString(rt)) {
			return types.Bool, nil
		}
		return nil, errAt(ee.Pos, "type", "operator %s requires two numbers or two strings, got %s and %s", ee.Op, lt, rt)
	case OpAnd, OpOr:
		if !types.SubtypeIn(ctx, lt, types.Bool) || !types.SubtypeIn(ctx, rt, types.Bool) {
			return nil, errAt(ee.Pos, "type", "operator %s requires Bool operands", ee.Op)
		}
		return types.Bool, nil
	}
	return nil, errAt(ee.Pos, "type", "unknown operator")
}
