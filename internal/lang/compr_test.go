package lang

import (
	"testing"

	"dbpl/internal/value"
)

func TestComprehensionBasics(t *testing.T) {
	wantVal(t, `[x * x | x <- [1, 2, 3]]`,
		value.NewList(value.Int(1), value.Int(4), value.Int(9)))
	wantVal(t, `[x | x <- [1, 2, 3, 4], x % 2 == 0]`,
		value.NewList(value.Int(2), value.Int(4)))
	wantVal(t, `length([x | x <- []])`, value.Int(0))
	wantType(t, `[x + 0.5 | x <- [1, 2]]`, "List[Float]")
	// Guards can interleave with generators freely.
	wantVal(t, `[x + y | x <- [10, 20], x > 10, y <- [1, 2]]`,
		value.NewList(value.Int(21), value.Int(22)))
}

func TestComprehensionCrossProductOrder(t *testing.T) {
	// Later generators iterate fastest, as in the classical notation.
	wantVal(t, `[x * 10 + y | x <- [1, 2], y <- [1, 2]]`,
		value.NewList(value.Int(11), value.Int(12), value.Int(21), value.Int(22)))
	// A later generator may depend on an earlier binding.
	wantVal(t, `[y | x <- [[1, 2], [3]], y <- x]`,
		value.NewList(value.Int(1), value.Int(2), value.Int(3)))
}

func TestComprehensionAsQuery(t *testing.T) {
	// The database-programming use: a join written as a comprehension over
	// two relations, selecting and projecting in one expression.
	src := `
		type Emp = {Name: String, Dept: String};
		type Dept = {Dept: String, Floor: Int};
		let emps: List[Emp] = [
			{Name = "J Doe", Dept = "Sales"},
			{Name = "M Dee", Dept = "Manuf"},
			{Name = "N Bug", Dept = "Manuf"}
		];
		let depts: List[Dept] = [
			{Dept = "Sales", Floor = 3},
			{Dept = "Manuf", Floor = 1}
		];
		[{Who = e.Name, Where = d.Floor} |
			e <- emps, d <- depts, e.Dept == d.Dept, d.Floor < 2]
	`
	wantVal(t, src, value.NewList(
		value.Rec("Who", value.String("M Dee"), "Where", value.Int(1)),
		value.Rec("Who", value.String("N Bug"), "Where", value.Int(1)),
	))
	wantType(t, src, "List[{Who: String, Where: Int}]")
}

func TestComprehensionOverGet(t *testing.T) {
	// Comprehensions compose with the generic get: draw the existential
	// packages, open each, and project a Person field.
	src := `
		type Person = {Name: String};
		let db: List[Dynamic] = [
			dynamic {Name = "P1"},
			dynamic {Name = "E1", Empno = 1}
		];
		[open p as (t, x) in x.Name | p <- get[Person](db)]
	`
	wantVal(t, src, value.NewList(value.String("P1"), value.String("E1")))
}

func TestComprehensionErrors(t *testing.T) {
	failRun(t, `[x | x <- 3]`, "type")          // non-list generator
	failRun(t, `[x | x <- [1], x + 1]`, "type") // non-Bool guard
	failRun(t, `[y | x <- [1]]`, "type")        // unbound head variable
	failRun(t, `[x | x <- [1]`, "parse")        // unterminated
	failRun(t, `[x |]`, "parse")
	// The generator variable scopes only over the comprehension.
	failRun(t, `let a = [x | x <- [1]]; x`, "type")
}

func TestComprehensionShadowing(t *testing.T) {
	wantVal(t, `
		let x = 100;
		head([x | x <- [7]]) + x
	`, value.Int(107))
}
