package lang

import (
	"fmt"
	"strings"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// This file defines the standard library: list and set primitives,
// generalized-relation operations (cochain insertion, the Figure 1 join,
// projection), the object-level join ⊔, the generic get over a database of
// dynamics, the replicating-persistence extern/intern pair and the
// intrinsic-persistence commit/abort pair, and the transient memo fields of
// the bill-of-materials example.

func t(src string) types.Type { return types.MustParse(src) }

// builtins returns the global primitive bindings.
func builtins() []*Builtin {
	return []*Builtin{
		{
			Name: "print", Type: t("forall a . a -> Unit"), Arity: 1,
			Fn: func(in *Interp, _ Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				fmt.Fprintln(in.Out, render(args[0]))
				return value.Unit, nil
			},
		},
		{
			Name: "show", Type: t("forall a . a -> String"), Arity: 1,
			Fn: func(_ *Interp, _ Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				return value.String(render(args[0])), nil
			},
		},
		{
			Name: "fail", Type: t("forall a . String -> a"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				return nil, errAt(pos, "run", "fail: %s", args[0])
			},
		},

		// ----- lists ---------------------------------------------------
		{
			Name: "cons", Type: t("forall a . (a, List[a]) -> List[a]"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "cons", args[1])
				if err != nil {
					return nil, err
				}
				out := value.NewList(args[0])
				out.Elems = append(out.Elems, lst.Elems...)
				return out, nil
			},
		},
		{
			Name: "insert", Type: t("forall a . (List[a], a) -> List[a]"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "insert", args[0])
				if err != nil {
					return nil, err
				}
				out := value.NewList(lst.Elems...)
				out.Append(args[1])
				return out, nil
			},
		},
		{
			Name: "head", Type: t("forall a . List[a] -> a"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "head", args[0])
				if err != nil {
					return nil, err
				}
				if lst.Len() == 0 {
					return nil, errAt(pos, "run", "head of empty list")
				}
				return lst.Elems[0], nil
			},
		},
		{
			Name: "tail", Type: t("forall a . List[a] -> List[a]"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "tail", args[0])
				if err != nil {
					return nil, err
				}
				if lst.Len() == 0 {
					return nil, errAt(pos, "run", "tail of empty list")
				}
				return value.NewList(lst.Elems[1:]...), nil
			},
		},
		{
			Name: "nth", Type: t("forall a . (List[a], Int) -> a"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "nth", args[0])
				if err != nil {
					return nil, err
				}
				i, ok := args[1].(value.Int)
				if !ok || int64(i) < 0 || int64(i) >= int64(lst.Len()) {
					return nil, errAt(pos, "run", "nth: index %s out of range [0, %d)", args[1], lst.Len())
				}
				return lst.Elems[i], nil
			},
		},
		{
			Name: "length", Type: t("forall a . List[a] -> Int"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "length", args[0])
				if err != nil {
					return nil, err
				}
				return value.Int(int64(lst.Len())), nil
			},
		},
		{
			Name: "isEmpty", Type: t("forall a . List[a] -> Bool"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "isEmpty", args[0])
				if err != nil {
					return nil, err
				}
				return value.Bool(lst.Len() == 0), nil
			},
		},
		{
			Name: "append", Type: t("forall a . (List[a], List[a]) -> List[a]"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				a, err := wantList(pos, "append", args[0])
				if err != nil {
					return nil, err
				}
				b, err := wantList(pos, "append", args[1])
				if err != nil {
					return nil, err
				}
				out := value.NewList(a.Elems...)
				out.Elems = append(out.Elems, b.Elems...)
				return out, nil
			},
		},
		{
			Name: "map", Type: t("forall a . forall b . ((a) -> b, List[a]) -> List[b]"), Arity: 2,
			Fn: func(in *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "map", args[1])
				if err != nil {
					return nil, err
				}
				out := value.NewList()
				for _, el := range lst.Elems {
					v, err := in.apply(pos, args[0], []value.Value{el})
					if err != nil {
						return nil, err
					}
					out.Append(v)
				}
				return out, nil
			},
		},
		{
			Name: "filter", Type: t("forall a . ((a) -> Bool, List[a]) -> List[a]"), Arity: 2,
			Fn: func(in *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "filter", args[1])
				if err != nil {
					return nil, err
				}
				out := value.NewList()
				for _, el := range lst.Elems {
					keep, err := in.apply(pos, args[0], []value.Value{el})
					if err != nil {
						return nil, err
					}
					b, ok := keep.(value.Bool)
					if !ok {
						return nil, errAt(pos, "run", "filter predicate returned %s", keep)
					}
					if bool(b) {
						out.Append(el)
					}
				}
				return out, nil
			},
		},
		{
			Name: "fold", Type: t("forall a . forall b . ((b, a) -> b, b, List[a]) -> b"), Arity: 3,
			Fn: func(in *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "fold", args[2])
				if err != nil {
					return nil, err
				}
				acc := args[1]
				for _, el := range lst.Elems {
					if acc, err = in.apply(pos, args[0], []value.Value{acc, el}); err != nil {
						return nil, err
					}
				}
				return acc, nil
			},
		},

		// ----- the paper's generic Get ----------------------------------
		{
			// get : forall t . List[Dynamic] -> List[exists u <= t . u]
			// The single generic function that derives every class extent
			// from the type hierarchy.
			Name: "get", Type: types.NewForAll("t", nil, types.NewFunc(
				[]types.Type{types.NewList(types.Dynamic)},
				types.NewList(types.NewExists("u", types.NewVar("t"), types.NewVar("u"))))),
			Arity: 1,
			Fn: func(_ *Interp, pos Pos, targs []types.Type, args []value.Value) (value.Value, error) {
				want := types.Intern(types.Top)
				if len(targs) >= 1 {
					want = types.Intern(targs[0])
				}
				lst, err := wantList(pos, "get", args[0])
				if err != nil {
					return nil, err
				}
				out := value.NewList()
				for _, el := range lst.Elems {
					d, ok := el.(*dynamic.Dynamic)
					if !ok {
						return nil, errAt(pos, "run", "database element is not a dynamic: %s", el)
					}
					if d.IsInterned(want) {
						out.Append(d.Value())
					}
				}
				return out, nil
			},
		},

		// ----- sets and generalized relations ---------------------------
		{
			Name: "setof", Type: t("forall a . List[a] -> Set[a]"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "setof", args[0])
				if err != nil {
					return nil, err
				}
				return value.NewSet(lst.Elems...), nil
			},
		},
		{
			// relation builds a cochain: comparable members are subsumed.
			Name: "relation", Type: t("forall a . List[a] -> Set[a]"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				lst, err := wantList(pos, "relation", args[0])
				if err != nil {
					return nil, err
				}
				return value.NewSet(value.Maximal(lst.Elems)...), nil
			},
		},
		{
			Name: "members", Type: t("forall a . Set[a] -> List[a]"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, err := wantSet(pos, "members", args[0])
				if err != nil {
					return nil, err
				}
				return value.NewList(s.Elems()...), nil
			},
		},
		{
			Name: "size", Type: t("forall a . Set[a] -> Int"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, err := wantSet(pos, "size", args[0])
				if err != nil {
					return nil, err
				}
				return value.Int(int64(s.Len())), nil
			},
		},
		{
			Name: "contains", Type: t("forall a . (Set[a], a) -> Bool"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, err := wantSet(pos, "contains", args[0])
				if err != nil {
					return nil, err
				}
				return value.Bool(s.Contains(args[1])), nil
			},
		},
		{
			// rinsert applies the paper's subsumption rule.
			Name: "rinsert", Type: t("forall a . (Set[a], a) -> Set[a]"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, err := wantSet(pos, "rinsert", args[0])
				if err != nil {
					return nil, err
				}
				return value.NewSet(value.Maximal(append(s.Elems(), args[1]))...), nil
			},
		},
		{
			// rjoin is the generalized natural join of Figure 1. Per
			// [Bune85], a direct call is typed Set[T1 ⊓ T2]: joined tuples
			// carry the information of both sides (an inconsistent element
			// meet types the always-empty result as Set[Bottom]).
			Name: "rjoin", Type: t("forall a . (Set[a], Set[a]) -> Set[a]"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				a, err := wantSet(pos, "rjoin", args[0])
				if err != nil {
					return nil, err
				}
				b, err := wantSet(pos, "rjoin", args[1])
				if err != nil {
					return nil, err
				}
				return value.SetJoin(a, b), nil
			},
			Refine: func(argTs []types.Type) (types.Type, bool) {
				s1, ok1 := argTs[0].(*types.Set)
				s2, ok2 := argTs[1].(*types.Set)
				if !ok1 || !ok2 {
					return nil, false
				}
				m, ok := types.Meet(s1.Elem, s2.Elem)
				if !ok {
					m = types.Bottom // join of inconsistent relations is empty
				}
				return types.NewSet(m), true
			},
		},
		{
			Name: "runion", Type: t("forall a . (Set[a], Set[a]) -> Set[a]"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				a, err := wantSet(pos, "runion", args[0])
				if err != nil {
					return nil, err
				}
				b, err := wantSet(pos, "runion", args[1])
				if err != nil {
					return nil, err
				}
				return value.NewSet(value.Maximal(append(a.Elems(), b.Elems()...))...), nil
			},
		},
		{
			// project restricts records to the given labels; the result is
			// typed Set[{}] — every record type is a supertype of the
			// projections' types.
			Name: "project", Type: t("forall a . (Set[a], List[String]) -> Set[{}]"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, err := wantSet(pos, "project", args[0])
				if err != nil {
					return nil, err
				}
				ls, err := wantList(pos, "project", args[1])
				if err != nil {
					return nil, err
				}
				want := map[string]bool{}
				for _, l := range ls.Elems {
					str, ok := l.(value.String)
					if !ok {
						return nil, errAt(pos, "run", "project labels must be strings")
					}
					want[string(str)] = true
				}
				var projected []value.Value
				s.Each(func(m value.Value) {
					rec, ok := m.(*value.Record)
					if !ok {
						return
					}
					p := value.NewRecord()
					rec.Each(func(l string, v value.Value) {
						if want[l] {
							p.Set(l, v)
						}
					})
					projected = append(projected, p)
				})
				return value.NewSet(value.Maximal(projected)...), nil
			},
		},
		{
			Name: "sfilter", Type: t("forall a . ((a) -> Bool, Set[a]) -> Set[a]"), Arity: 2,
			Fn: func(in *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, err := wantSet(pos, "sfilter", args[1])
				if err != nil {
					return nil, err
				}
				out := value.NewSet()
				for _, el := range s.Elems() {
					keep, err := in.apply(pos, args[0], []value.Value{el})
					if err != nil {
						return nil, err
					}
					b, ok := keep.(value.Bool)
					if !ok {
						return nil, errAt(pos, "run", "sfilter predicate returned %s", keep)
					}
					if bool(b) {
						out.Add(el)
					}
				}
				return out, nil
			},
		},

		{
			// rextract is the type-as-relation extraction: the members of a
			// relation whose most specific type is a subtype of T. Like
			// get, the type parameter does not occur in the argument types
			// and so must be instantiated explicitly: rextract[T](r).
			Name: "rextract", Type: types.NewForAll("t", nil, types.NewFunc(
				[]types.Type{types.NewSet(types.Top)},
				types.NewSet(types.NewVar("t")))),
			Arity: 1,
			Fn: func(_ *Interp, pos Pos, targs []types.Type, args []value.Value) (value.Value, error) {
				want := types.Type(types.Top)
				if len(targs) >= 1 {
					want = targs[0]
				}
				s, err := wantSet(pos, "rextract", args[0])
				if err != nil {
					return nil, err
				}
				out := value.NewSet()
				s.Each(func(m value.Value) {
					if value.Conforms(m, want) {
						out.Add(m)
					}
				})
				return out, nil
			},
		},

		{
			// subtypeOf computes the subtype relation on reified types —
			// "one solution is to treat types as values"; the compiler's
			// type-level computation exposed at run time.
			Name: "subtypeOf", Type: t("(Type, Type) -> Bool"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				a, ok1 := args[0].(*value.TypeVal)
				b, ok2 := args[1].(*value.TypeVal)
				if !ok1 || !ok2 {
					return nil, errAt(pos, "run", "subtypeOf requires two Type values")
				}
				return value.Bool(types.Subtype(a.T, b.T)), nil
			},
		},

		// ----- strings ---------------------------------------------------
		{
			Name: "strlen", Type: t("String -> Int"), Arity: 1,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, ok := args[0].(value.String)
				if !ok {
					return nil, errAt(pos, "run", "strlen: not a string")
				}
				return value.Int(int64(len(s))), nil
			},
		},
		{
			Name: "substring", Type: t("(String, Int, Int) -> String"), Arity: 3,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, ok := args[0].(value.String)
				lo, ok2 := args[1].(value.Int)
				hi, ok3 := args[2].(value.Int)
				if !ok || !ok2 || !ok3 {
					return nil, errAt(pos, "run", "substring: bad arguments")
				}
				if lo < 0 || hi < lo || int64(hi) > int64(len(s)) {
					return nil, errAt(pos, "run", "substring: range [%d, %d) out of bounds for length %d", lo, hi, len(s))
				}
				return s[lo:hi], nil
			},
		},
		{
			Name: "strContains", Type: t("(String, String) -> Bool"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				s, ok := args[0].(value.String)
				sub, ok2 := args[1].(value.String)
				if !ok || !ok2 {
					return nil, errAt(pos, "run", "strContains: bad arguments")
				}
				return value.Bool(strings.Contains(string(s), string(sub))), nil
			},
		},

		// ----- object-level inheritance ---------------------------------
		{
			// join is the paper's ⊔: merge the information in two objects;
			// a conflict is a runtime error. Per [Bune85], a direct call
			// is typed precisely at the meet of the argument types: joining
			// a Person-typed and an Employee-info-typed record yields a
			// value typed with *both* sets of fields.
			Name: "join", Type: t("forall a . (a, a) -> a"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				j, err := value.Join(args[0], args[1])
				if err != nil {
					return nil, errAt(pos, "run", "%v", err)
				}
				return j, nil
			},
			Refine: func(argTs []types.Type) (types.Type, bool) {
				return types.Meet(argTs[0], argTs[1])
			},
		},
		{
			Name: "joinable", Type: t("forall a . (a, a) -> Bool"), Arity: 2,
			Fn: func(_ *Interp, _ Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				_, err := value.Join(args[0], args[1])
				return value.Bool(err == nil), nil
			},
		},
		{
			// leq is the information ordering o ⊑ o'.
			Name: "leq", Type: t("forall a . (a, a) -> Bool"), Arity: 2,
			Fn: func(_ *Interp, _ Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				return value.Bool(value.Leq(args[0], args[1])), nil
			},
		},

		// ----- replicating persistence ----------------------------------
		{
			Name: "extern", Type: t("(String, Dynamic) -> Unit"), Arity: 2,
			Fn: func(in *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				if in.Replicating == nil {
					return nil, errAt(pos, "run", "no replicating store attached")
				}
				h, ok := args[0].(value.String)
				if !ok {
					return nil, errAt(pos, "run", "extern handle must be a string")
				}
				d, ok := args[1].(*dynamic.Dynamic)
				if !ok {
					return nil, errAt(pos, "run", "extern requires a dynamic value")
				}
				if err := in.Replicating.Extern(string(h), d); err != nil {
					return nil, errAt(pos, "run", "extern: %v", err)
				}
				return value.Unit, nil
			},
		},
		{
			Name: "intern", Type: t("String -> Dynamic"), Arity: 1,
			Fn: func(in *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				if in.Replicating == nil {
					return nil, errAt(pos, "run", "no replicating store attached")
				}
				h, ok := args[0].(value.String)
				if !ok {
					return nil, errAt(pos, "run", "intern handle must be a string")
				}
				d, err := in.Replicating.Intern(string(h))
				if err != nil {
					return nil, errAt(pos, "run", "intern: %v", err)
				}
				return d, nil
			},
		},

		// ----- intrinsic persistence ------------------------------------
		{
			Name: "commit", Type: t("() -> Unit"), Arity: 0,
			Fn: func(in *Interp, pos Pos, _ []types.Type, _ []value.Value) (value.Value, error) {
				if in.Intrinsic == nil {
					return nil, errAt(pos, "run", "no intrinsic store attached")
				}
				if _, err := in.Intrinsic.Commit(); err != nil {
					return nil, errAt(pos, "run", "commit: %v", err)
				}
				return value.Unit, nil
			},
		},
		{
			Name: "abort", Type: t("() -> Unit"), Arity: 0,
			Fn: func(in *Interp, pos Pos, _ []types.Type, _ []value.Value) (value.Value, error) {
				if in.Intrinsic == nil {
					return nil, errAt(pos, "run", "no intrinsic store attached")
				}
				if err := in.Intrinsic.Abort(); err != nil {
					return nil, errAt(pos, "run", "abort: %v", err)
				}
				// Rebind persistent globals to the reverted values.
				for name := range in.persistentNames {
					if r, ok := in.Intrinsic.Root(name); ok {
						in.globals[name] = r.Value
					} else {
						delete(in.globals, name)
					}
				}
				return value.Unit, nil
			},
		},

		// ----- transient memo fields (bill of materials) -----------------
		{
			// memoSet attaches a transient field (label must begin with
			// "_") to a record in place. Transient fields are invisible to
			// the type system and are not persisted.
			Name: "memoSet", Type: t("forall a . (a, String, Dynamic) -> Unit"), Arity: 3,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				rec, label, err := memoArgs(pos, args)
				if err != nil {
					return nil, err
				}
				rec.Set(label, args[2])
				return value.Unit, nil
			},
		},
		{
			Name: "memoGet", Type: t("forall a . (a, String) -> Dynamic"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				rec, label, err := memoArgs(pos, args)
				if err != nil {
					return nil, err
				}
				v, ok := rec.Get(label)
				if !ok {
					return nil, errAt(pos, "run", "memoGet: no memo %q", label)
				}
				d, ok := v.(*dynamic.Dynamic)
				if !ok {
					return nil, errAt(pos, "run", "memo %q does not hold a dynamic", label)
				}
				return d, nil
			},
		},
		{
			Name: "memoHas", Type: t("forall a . (a, String) -> Bool"), Arity: 2,
			Fn: func(_ *Interp, pos Pos, _ []types.Type, args []value.Value) (value.Value, error) {
				rec, label, err := memoArgs(pos, args)
				if err != nil {
					return nil, err
				}
				_, ok := rec.Get(label)
				return value.Bool(ok), nil
			},
		},
	}
}

func wantList(pos Pos, who string, v value.Value) (*value.List, error) {
	lst, ok := v.(*value.List)
	if !ok {
		return nil, errAt(pos, "run", "%s: expected a list, got %s", who, v)
	}
	return lst, nil
}

func wantSet(pos Pos, who string, v value.Value) (*value.Set, error) {
	s, ok := v.(*value.Set)
	if !ok {
		return nil, errAt(pos, "run", "%s: expected a set, got %s", who, v)
	}
	return s, nil
}

func memoArgs(pos Pos, args []value.Value) (*value.Record, string, error) {
	rec, ok := args[0].(*value.Record)
	if !ok {
		return nil, "", errAt(pos, "run", "memo operations require a record, got %s", args[0])
	}
	label, ok := args[1].(value.String)
	if !ok {
		return nil, "", errAt(pos, "run", "memo label must be a string")
	}
	if !strings.HasPrefix(string(label), "_") {
		return nil, "", errAt(pos, "run", "memo labels must begin with %q (transient fields)", "_")
	}
	return rec, string(label), nil
}

// render prints a value for the user; dynamics render with their type, and
// plain strings render without the quote marks print would otherwise show.
func render(v value.Value) string {
	if s, ok := v.(value.String); ok {
		return string(s)
	}
	return v.String()
}
