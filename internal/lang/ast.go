package lang

import (
	"dbpl/internal/types"
)

// Decl is a top-level declaration or expression statement.
type Decl interface{ declPos() Pos }

// DLet binds a name: let [rec] name [: T] = expr.
type DLet struct {
	Pos  Pos
	Rec  bool
	Name string
	Ann  types.Type // nil if unannotated
	Init Expr
}

// DType declares a type abbreviation: type Name = T. Self-references in T
// are closed into a recursive type at parse time.
type DType struct {
	Pos  Pos
	Name string
	Type types.Type
}

// DPersistent binds a handle in the intrinsic store:
// persistent name : T = expr. If the store already has the handle, it is
// opened at T under the paper's schema-evolution rules and expr is not
// evaluated; otherwise expr initializes it.
type DPersistent struct {
	Pos  Pos
	Name string
	Ann  types.Type
	Init Expr
}

// DExpr is a bare expression evaluated for its value and effects.
type DExpr struct {
	Pos Pos
	X   Expr
}

func (d *DLet) declPos() Pos        { return d.Pos }
func (d *DType) declPos() Pos       { return d.Pos }
func (d *DPersistent) declPos() Pos { return d.Pos }
func (d *DExpr) declPos() Pos       { return d.Pos }

// Expr is an expression node.
type Expr interface{ exprPos() Pos }

// EInt is an integer literal.
type EInt struct {
	Pos Pos
	V   int64
}

// EFloat is a float literal.
type EFloat struct {
	Pos Pos
	V   float64
}

// EString is a string literal.
type EString struct {
	Pos Pos
	V   string
}

// EBool is true or false.
type EBool struct {
	Pos Pos
	V   bool
}

// EUnit is the unit literal.
type EUnit struct{ Pos Pos }

// EVar is a variable reference.
type EVar struct {
	Pos  Pos
	Name string
}

// FieldExpr is one field of a record literal.
type FieldExpr struct {
	Label string
	X     Expr
}

// ERecord is a record literal {L1 = e1, ..., Ln = en}.
type ERecord struct {
	Pos    Pos
	Fields []FieldExpr
}

// EList is a list literal [e1, ..., en].
type EList struct {
	Pos   Pos
	Elems []Expr
}

// EField is field selection e.Label.
type EField struct {
	Pos   Pos
	X     Expr
	Label string
}

// EWith is functional record extension/override: e with {L = v, ...}.
type EWith struct {
	Pos Pos
	X   Expr
	R   *ERecord
}

// ECall is function application f(e1, ..., en).
type ECall struct {
	Pos  Pos
	Fn   Expr
	Args []Expr
}

// ETypeApp is type application f[T1, ..., Tn] on a polymorphic value.
type ETypeApp struct {
	Pos   Pos
	Fn    Expr
	Types []types.Type
}

// TypeParam is a bounded type parameter of a function: t <= Bound.
type TypeParam struct {
	Name  string
	Bound types.Type // Top if unbounded
}

// Param is a typed value parameter.
type Param struct {
	Name string
	Type types.Type
}

// EFun is a (possibly polymorphic) function literal:
// fun[t <= B](x: T, ...): R is body.
type EFun struct {
	Pos        Pos
	TypeParams []TypeParam
	Params     []Param
	Result     types.Type // nil: inferred from the body
	Body       Expr
	// SelfName is set for let rec bindings so the closure can see itself.
	SelfName string
}

// EIf is if c then t else e.
type EIf struct {
	Pos  Pos
	Cond Expr
	Then Expr
	Else Expr
}

// ELetIn is a let expression: let name [: T] = e1 in e2.
type ELetIn struct {
	Pos  Pos
	Name string
	Ann  types.Type
	Init Expr
	Body Expr
}

// Binary operators.
type BinOp int

// The binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpConcat: "++", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "and", OpOr: "or",
}

// String returns the operator's source spelling.
func (o BinOp) String() string { return binOpNames[o] }

// EBinary is a binary operation.
type EBinary struct {
	Pos  Pos
	Op   BinOp
	L, R Expr
}

// Unary operators.
type UnOp int

// The unary operators.
const (
	OpNeg UnOp = iota
	OpNot
)

// EUnary is a unary operation.
type EUnary struct {
	Pos Pos
	Op  UnOp
	X   Expr
}

// EDynamic injects a value into Dynamic: dynamic e.
type EDynamic struct {
	Pos Pos
	X   Expr
}

// ECoerce projects a Dynamic at a type: coerce e to T. It fails at run
// time when the carried type is not a subtype of T.
type ECoerce struct {
	Pos Pos
	X   Expr
	T   types.Type
}

// ETypeOf reifies the type of a Dynamic: typeof e, of type Type.
type ETypeOf struct {
	Pos Pos
	X   Expr
}

// Qualifier is one clause of a comprehension: either a generator
// (Var <- Source) or, when Var is empty, a boolean guard (Source is the
// condition).
type Qualifier struct {
	Var    string
	Source Expr
}

// ECompr is a list comprehension:
//
//	[ head | x <- xs, cond, y <- ys, ... ]
//
// the query notation of database programming languages: generators draw
// from lists left to right (later generators iterate fastest), guards
// filter, and the head is evaluated per surviving binding.
type ECompr struct {
	Pos   Pos
	Head  Expr
	Quals []Qualifier
}

// EVariant injects a value into a variant: <Label = e>, of the singleton
// variant type [Label: T], which widens by subsumption to any variant
// carrying that tag.
type EVariant struct {
	Pos   Pos
	Label string
	X     Expr
}

// CaseArm is one branch of a case expression: Label(Var) is Body.
type CaseArm struct {
	Label string
	Var   string
	Body  Expr
}

// ECase eliminates a variant:
//
//	case e of Circle(x) is … | Square(y) is … end
//
// The arms must cover every tag of e's variant type.
type ECase struct {
	Pos  Pos
	X    Expr
	Arms []CaseArm
}

// EOpen eliminates an existential package: open e as (t, x) in body.
// Statically e must have type exists u <= B . T; within body the type
// variable t has bound B and x has type T[u := t].
type EOpen struct {
	Pos  Pos
	X    Expr
	TVar string
	Var  string
	Body Expr
}

func (e *EInt) exprPos() Pos     { return e.Pos }
func (e *EFloat) exprPos() Pos   { return e.Pos }
func (e *EString) exprPos() Pos  { return e.Pos }
func (e *EBool) exprPos() Pos    { return e.Pos }
func (e *EUnit) exprPos() Pos    { return e.Pos }
func (e *EVar) exprPos() Pos     { return e.Pos }
func (e *ERecord) exprPos() Pos  { return e.Pos }
func (e *EList) exprPos() Pos    { return e.Pos }
func (e *EField) exprPos() Pos   { return e.Pos }
func (e *EWith) exprPos() Pos    { return e.Pos }
func (e *ECall) exprPos() Pos    { return e.Pos }
func (e *ETypeApp) exprPos() Pos { return e.Pos }
func (e *EFun) exprPos() Pos     { return e.Pos }
func (e *EIf) exprPos() Pos      { return e.Pos }
func (e *ELetIn) exprPos() Pos   { return e.Pos }
func (e *EBinary) exprPos() Pos  { return e.Pos }
func (e *EUnary) exprPos() Pos   { return e.Pos }
func (e *EDynamic) exprPos() Pos { return e.Pos }
func (e *ECoerce) exprPos() Pos  { return e.Pos }
func (e *ETypeOf) exprPos() Pos  { return e.Pos }
func (e *EOpen) exprPos() Pos    { return e.Pos }
func (e *EVariant) exprPos() Pos { return e.Pos }
func (e *ECompr) exprPos() Pos   { return e.Pos }
func (e *ECase) exprPos() Pos    { return e.Pos }
