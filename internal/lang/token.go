// Package lang implements a small, statically typed database programming
// language in the mould the paper advocates: Amber-style records and
// subtyping, Cardelli–Wegner bounded universal and existential
// quantification, Dynamic with coerce and typeof, generalized-relation
// operations, and all three of the paper's persistence styles (snapshot
// images are the host's concern; extern/intern give replicating
// persistence; `persistent` declarations with commit give intrinsic
// persistence, including subtype-based schema evolution at handles).
//
// The language demonstrates the paper's central claim executably: the
// database is nothing but a List[Dynamic]; the generic function
//
//	get : forall t . List[Dynamic] -> List[exists u <= t . u]
//
// is an ordinary library binding; and the class hierarchy falls out of the
// type hierarchy with no class construct in the language at all.
package lang

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	TEOF TokenKind = iota
	TIdent
	TInt
	TFloat
	TString
	// Punctuation.
	TLParen   // (
	TRParen   // )
	TLBrack   // [
	TRBrack   // ]
	TLBrace   // {
	TRBrace   // }
	TComma    // ,
	TSemi     // ;
	TColon    // :
	TDot      // .
	TAssign   // =
	TEq       // ==
	TNe       // !=
	TLt       // <
	TLe       // <=
	TGt       // >
	TGe       // >=
	TPlus     // +
	TMinus    // -
	TStar     // *
	TSlash    // /
	TPercent  // %
	TConcat   // ++
	TArrow    // ->
	TBar      // |
	TGenArrow // <-  (comprehension generator)
)

// Keywords are identifiers with reserved meaning.
var keywords = map[string]bool{
	"let": true, "rec": true, "type": true, "fun": true, "is": true,
	"if": true, "then": true, "else": true, "true": true, "false": true,
	"and": true, "or": true, "not": true, "in": true,
	"dynamic": true, "coerce": true, "to": true, "typeof": true,
	"with": true, "open": true, "as": true, "persistent": true,
	"unit": true, "forall": true, "exists": true,
	"case": true, "of": true, "end": true,
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its literal text and position.
type Token struct {
	Kind TokenKind
	Lit  string
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == TEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Lit)
}

// Error is a positioned language error (lexical, syntactic, type or
// runtime).
type Error struct {
	Pos   Pos
	Phase string // "lex", "parse", "type", "run"
	Msg   string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s error: %s", e.Pos, e.Phase, e.Msg)
}

func errAt(pos Pos, phase, format string, args ...any) *Error {
	return &Error{Pos: pos, Phase: phase, Msg: fmt.Sprintf(format, args...)}
}
