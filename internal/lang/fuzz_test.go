package lang

import (
	"bytes"
	"testing"
)

// FuzzRun feeds arbitrary source through the whole pipeline — lexer,
// parser, checker and (when everything passes) the evaluator. The invariant
// is no panic and no hang on any input; programs that pass the checker must
// evaluate without internal errors other than positioned runtime errors.
func FuzzRun(f *testing.F) {
	seeds := []string{
		"",
		"1 + 2 * 3",
		`let x = {Name = "J"} in x.Name`,
		"type Person = {Name: String}; length(get[Person]([dynamic {Name = \"J\"}]))",
		"let rec fact = fun(n: Int): Int is if n <= 1 then 1 else n * fact(n - 1); fact(5)",
		"case <A = 1> of A(x) is x end",
		"open head(get([dynamic 1])) as (t, x) in 0",
		"coerce (dynamic 3) to Int",
		"join({A = 1}, {B = 2})",
		"forall t . t", // type syntax in expression position: parse error
		"let x: rec t . {N: t} = 1",
		"-- comment only",
		"\"unterminated",
		"((((((((((",
		"<A = <B = <C = 1>>>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // keep the checker's worst cases bounded
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Run(%q) panicked: %v", src, r)
			}
		}()
		in := New(new(bytes.Buffer))
		_, _ = in.Run(src)
	})
}
