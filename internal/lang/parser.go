package lang

import (
	"strconv"

	"dbpl/internal/types"
)

// parser is a recursive-descent parser over the token stream. Type
// abbreviations (type N = T) are expanded during parsing; a self-reference
// closes into a recursive type.
type parser struct {
	toks    []Token
	pos     int
	abbrevs map[string]types.Type
}

// Parse parses a program. abbrevs carries type abbreviations in scope; the
// map is extended by type declarations in the source (so a REPL can retain
// them between inputs).
func Parse(src string, abbrevs map[string]types.Type) ([]Decl, error) {
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	if abbrevs == nil {
		abbrevs = map[string]types.Type{}
	}
	p := &parser{toks: toks, abbrevs: abbrevs}
	var decls []Decl
	for !p.at(TEOF) {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		decls = append(decls, d)
		// Declarations are separated by semicolons; the final one may omit
		// it.
		if p.at(TSemi) {
			p.advance()
		} else if !p.at(TEOF) {
			return nil, errAt(p.cur().Pos, "parse", "expected ';' or end of input, found %s", p.cur())
		}
	}
	return decls, nil
}

func (p *parser) cur() Token          { return p.toks[p.pos] }
func (p *parser) advance()            { p.pos++ }
func (p *parser) at(k TokenKind) bool { return p.cur().Kind == k }

// atKw reports whether the current token is the given keyword.
func (p *parser) atKw(kw string) bool {
	return p.cur().Kind == TIdent && p.cur().Lit == kw
}

func (p *parser) expect(k TokenKind, what string) (Token, error) {
	if !p.at(k) {
		return Token{}, errAt(p.cur().Pos, "parse", "expected %s, found %s", what, p.cur())
	}
	t := p.cur()
	p.advance()
	return t, nil
}

func (p *parser) expectKw(kw string) error {
	if !p.atKw(kw) {
		return errAt(p.cur().Pos, "parse", "expected %q, found %s", kw, p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) ident(what string) (Token, error) {
	t, err := p.expect(TIdent, what)
	if err != nil {
		return Token{}, err
	}
	if keywords[t.Lit] {
		return Token{}, errAt(t.Pos, "parse", "%q is a keyword and cannot be %s", t.Lit, what)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

func (p *parser) parseDecl() (Decl, error) {
	switch {
	case p.atKw("let") && p.peekIsLetDecl():
		return p.parseLetDecl()
	case p.atKw("type"):
		return p.parseTypeDecl()
	case p.atKw("persistent"):
		return p.parsePersistentDecl()
	default:
		pos := p.cur().Pos
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &DExpr{Pos: pos, X: e}, nil
	}
}

// peekIsLetDecl distinguishes the declaration `let x = e;` from the
// expression `let x = e in b`: scan forward for `in` at the same bracket
// depth before the terminating semicolon. A `let` at the top of a
// declaration with a matching `in` is an expression.
func (p *parser) peekIsLetDecl() bool {
	depth := 0
	lets := 1
	for i := p.pos + 1; i < len(p.toks); i++ {
		t := p.toks[i]
		switch t.Kind {
		case TLParen, TLBrack, TLBrace:
			depth++
		case TRParen, TRBrack, TRBrace:
			depth--
		case TSemi:
			if depth == 0 {
				return true
			}
		case TIdent:
			if depth == 0 {
				switch t.Lit {
				case "let":
					lets++
				case "in":
					lets--
					if lets == 0 {
						return false
					}
				}
			}
		case TEOF:
			return true
		}
	}
	return true
}

func (p *parser) parseLetDecl() (Decl, error) {
	pos := p.cur().Pos
	p.advance() // let
	rec := false
	if p.atKw("rec") {
		rec = true
		p.advance()
	}
	name, err := p.ident("a binding name")
	if err != nil {
		return nil, err
	}
	var ann types.Type
	if p.at(TColon) {
		p.advance()
		if ann, err = p.parseType(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TAssign, "'='"); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if rec {
		fn, ok := init.(*EFun)
		if !ok {
			return nil, errAt(pos, "parse", "let rec requires a fun literal")
		}
		if fn.Result == nil {
			return nil, errAt(fn.Pos, "parse", "let rec requires the fun to declare its result type")
		}
		fn.SelfName = name.Lit
	}
	return &DLet{Pos: pos, Rec: rec, Name: name.Lit, Ann: ann, Init: init}, nil
}

func (p *parser) parseTypeDecl() (Decl, error) {
	pos := p.cur().Pos
	p.advance() // type
	name, err := p.ident("a type name")
	if err != nil {
		return nil, err
	}
	if name.Lit[0] < 'A' || name.Lit[0] > 'Z' {
		return nil, errAt(name.Pos, "parse", "type names must start with an uppercase letter")
	}
	if _, dup := p.abbrevs[name.Lit]; dup || baseTypes[name.Lit] != nil {
		return nil, errAt(name.Pos, "parse", "type %q is already defined", name.Lit)
	}
	if _, err := p.expect(TAssign, "'='"); err != nil {
		return nil, err
	}
	// Allow self-reference: N stands for a variable while parsing the body.
	p.abbrevs[name.Lit] = types.NewVar(name.Lit)
	t, err := p.parseType()
	if err != nil {
		delete(p.abbrevs, name.Lit)
		return nil, err
	}
	if types.FreeVars(t)[name.Lit] {
		t = types.NewRec(name.Lit, t)
	}
	p.abbrevs[name.Lit] = t
	return &DType{Pos: pos, Name: name.Lit, Type: t}, nil
}

func (p *parser) parsePersistentDecl() (Decl, error) {
	pos := p.cur().Pos
	p.advance() // persistent
	name, err := p.ident("a handle name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TColon, "':' (persistent bindings must declare their type)"); err != nil {
		return nil, err
	}
	ann, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TAssign, "'='"); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &DPersistent{Pos: pos, Name: name.Lit, Ann: ann, Init: init}, nil
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

func (p *parser) parseExpr() (Expr, error) {
	switch {
	case p.atKw("fun"):
		return p.parseFun()
	case p.atKw("if"):
		return p.parseIf()
	case p.atKw("let"):
		return p.parseLetIn()
	case p.atKw("open"):
		return p.parseOpen()
	case p.atKw("case"):
		return p.parseCase()
	default:
		return p.parseOr()
	}
}

// parseCase parses case e of A(x) is e1 | B(y) is e2 end.
func (p *parser) parseCase() (Expr, error) {
	pos := p.cur().Pos
	p.advance() // case
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("of"); err != nil {
		return nil, err
	}
	var arms []CaseArm
	seen := map[string]bool{}
	for {
		label, err := p.expect(TIdent, "a variant tag")
		if err != nil {
			return nil, err
		}
		if keywords[label.Lit] {
			return nil, errAt(label.Pos, "parse", "%q is a keyword and cannot be a tag", label.Lit)
		}
		if seen[label.Lit] {
			return nil, errAt(label.Pos, "parse", "duplicate case arm for tag %q", label.Lit)
		}
		seen[label.Lit] = true
		if _, err := p.expect(TLParen, "'('"); err != nil {
			return nil, err
		}
		v, err := p.ident("a binding name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen, "')'"); err != nil {
			return nil, err
		}
		if err := p.expectKw("is"); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		arms = append(arms, CaseArm{Label: label.Lit, Var: v.Lit, Body: body})
		if p.at(TBar) {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return &ECase{Pos: pos, X: x, Arms: arms}, nil
}

func (p *parser) parseFun() (Expr, error) {
	pos := p.cur().Pos
	p.advance() // fun
	fn := &EFun{Pos: pos}
	if p.at(TLBrack) {
		p.advance()
		for {
			name, err := p.ident("a type parameter")
			if err != nil {
				return nil, err
			}
			bound := types.Type(types.Top)
			if p.at(TLe) {
				p.advance()
				if bound, err = p.parseType(); err != nil {
					return nil, err
				}
			}
			fn.TypeParams = append(fn.TypeParams, TypeParam{Name: name.Lit, Bound: bound})
			if !p.at(TComma) {
				break
			}
			p.advance()
		}
		if _, err := p.expect(TRBrack, "']'"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TLParen, "'('"); err != nil {
		return nil, err
	}
	if !p.at(TRParen) {
		for {
			name, err := p.ident("a parameter name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TColon, "':' (parameters must be typed)"); err != nil {
				return nil, err
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Name: name.Lit, Type: pt})
			if !p.at(TComma) {
				break
			}
			p.advance()
		}
	}
	if _, err := p.expect(TRParen, "')'"); err != nil {
		return nil, err
	}
	if p.at(TColon) {
		p.advance()
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn.Result = rt
	}
	if err := p.expectKw("is"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseIf() (Expr, error) {
	pos := p.cur().Pos
	p.advance() // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	thn, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &EIf{Pos: pos, Cond: cond, Then: thn, Else: els}, nil
}

func (p *parser) parseLetIn() (Expr, error) {
	pos := p.cur().Pos
	p.advance() // let
	rec := false
	if p.atKw("rec") {
		rec = true
		p.advance()
	}
	name, err := p.ident("a binding name")
	if err != nil {
		return nil, err
	}
	var ann types.Type
	if p.at(TColon) {
		p.advance()
		if ann, err = p.parseType(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TAssign, "'='"); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if rec {
		fn, ok := init.(*EFun)
		if !ok {
			return nil, errAt(pos, "parse", "let rec requires a fun literal")
		}
		if fn.Result == nil {
			return nil, errAt(fn.Pos, "parse", "let rec requires the fun to declare its result type")
		}
		fn.SelfName = name.Lit
	}
	if err := p.expectKw("in"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ELetIn{Pos: pos, Name: name.Lit, Ann: ann, Init: init, Body: body}, nil
}

func (p *parser) parseOpen() (Expr, error) {
	pos := p.cur().Pos
	p.advance() // open
	x, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TLParen, "'('"); err != nil {
		return nil, err
	}
	tv, err := p.ident("a type variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TComma, "','"); err != nil {
		return nil, err
	}
	v, err := p.ident("a variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TRParen, "')'"); err != nil {
		return nil, err
	}
	if err := p.expectKw("in"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &EOpen{Pos: pos, X: x, TVar: tv.Lit, Var: v.Lit, Body: body}, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKw("or") {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Pos: pos, Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.atKw("and") {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Pos: pos, Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[TokenKind]BinOp{
	TEq: OpEq, TNe: OpNe, TLt: OpLt, TLe: OpLe, TGt: OpGt, TGe: OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &EBinary{Pos: pos, Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TPlus:
			op = OpAdd
		case TMinus:
			op = OpSub
		case TConcat:
			op = OpConcat
		default:
			return l, nil
		}
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Pos: pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TStar:
			op = OpMul
		case TSlash:
			op = OpDiv
		case TPercent:
			op = OpMod
		default:
			return l, nil
		}
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Pos: pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	pos := p.cur().Pos
	switch {
	case p.atKw("not"):
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &EUnary{Pos: pos, Op: OpNot, X: x}, nil
	case p.at(TMinus):
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &EUnary{Pos: pos, Op: OpNeg, X: x}, nil
	case p.atKw("dynamic"):
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &EDynamic{Pos: pos, X: x}, nil
	case p.atKw("typeof"):
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ETypeOf{Pos: pos, X: x}, nil
	case p.atKw("coerce"):
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("to"); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &ECoerce{Pos: pos, X: x, T: t}, nil
	default:
		return p.parsePostfix()
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TDot):
			pos := p.cur().Pos
			p.advance()
			label, err := p.expect(TIdent, "a field label")
			if err != nil {
				return nil, err
			}
			x = &EField{Pos: pos, X: x, Label: label.Lit}
		case p.at(TLParen):
			pos := p.cur().Pos
			p.advance()
			var args []Expr
			if !p.at(TRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.at(TComma) {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(TRParen, "')'"); err != nil {
				return nil, err
			}
			x = &ECall{Pos: pos, Fn: x, Args: args}
		case p.at(TLBrack):
			pos := p.cur().Pos
			p.advance()
			var ts []types.Type
			for {
				t, err := p.parseType()
				if err != nil {
					return nil, err
				}
				ts = append(ts, t)
				if !p.at(TComma) {
					break
				}
				p.advance()
			}
			if _, err := p.expect(TRBrack, "']'"); err != nil {
				return nil, err
			}
			x = &ETypeApp{Pos: pos, Fn: x, Types: ts}
		case p.atKw("with"):
			pos := p.cur().Pos
			p.advance()
			rec, err := p.parseRecordLit()
			if err != nil {
				return nil, err
			}
			x = &EWith{Pos: pos, X: x, R: rec}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TInt:
		p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, errAt(t.Pos, "parse", "bad integer literal %q", t.Lit)
		}
		return &EInt{Pos: t.Pos, V: v}, nil
	case TFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, errAt(t.Pos, "parse", "bad float literal %q", t.Lit)
		}
		return &EFloat{Pos: t.Pos, V: v}, nil
	case TString:
		p.advance()
		return &EString{Pos: t.Pos, V: t.Lit}, nil
	case TIdent:
		switch t.Lit {
		case "true", "false":
			p.advance()
			return &EBool{Pos: t.Pos, V: t.Lit == "true"}, nil
		case "unit":
			p.advance()
			return &EUnit{Pos: t.Pos}, nil
		case "fun", "if", "let", "open":
			// Allowed in expression position inside parentheses; direct
			// nesting is handled by parseExpr, so reaching here means the
			// construct appeared where only an operand may.
			return p.parseExpr()
		}
		if keywords[t.Lit] {
			return nil, errAt(t.Pos, "parse", "unexpected keyword %q", t.Lit)
		}
		p.advance()
		return &EVar{Pos: t.Pos, Name: t.Lit}, nil
	case TLParen:
		p.advance()
		if p.at(TRParen) { // () is unit
			p.advance()
			return &EUnit{Pos: t.Pos}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case TLt:
		// Variant injection: <Label = expr>.
		p.advance()
		label, err := p.ident("a variant tag")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TAssign, "'='"); err != nil {
			return nil, err
		}
		// The payload binds tighter than comparisons so the closing '>' is
		// unambiguous; parenthesize a comparison payload.
		var x Expr
		var err2 error
		if p.atKw("fun") || p.atKw("if") || p.atKw("let") || p.atKw("open") || p.atKw("case") {
			x, err2 = p.parseExpr()
		} else {
			x, err2 = p.parseAdd()
		}
		if err2 != nil {
			return nil, err2
		}
		if _, err := p.expect(TGt, "'>'"); err != nil {
			return nil, err
		}
		return &EVariant{Pos: t.Pos, Label: label.Lit, X: x}, nil
	case TLBrace:
		return p.parseRecordLit()
	case TLBrack:
		p.advance()
		lst := &EList{Pos: t.Pos}
		if !p.at(TRBrack) {
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			// [ head | quals ] is a comprehension; otherwise a list literal.
			if p.at(TBar) {
				p.advance()
				return p.parseComprTail(t.Pos, first)
			}
			lst.Elems = append(lst.Elems, first)
			for p.at(TComma) {
				p.advance()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lst.Elems = append(lst.Elems, e)
			}
		}
		if _, err := p.expect(TRBrack, "']'"); err != nil {
			return nil, err
		}
		return lst, nil
	default:
		return nil, errAt(t.Pos, "parse", "unexpected %s", t)
	}
}

// parseComprTail parses the qualifiers of [ head | x <- xs, guard, ... ].
func (p *parser) parseComprTail(pos Pos, head Expr) (Expr, error) {
	compr := &ECompr{Pos: pos, Head: head}
	for {
		// A generator is IDENT <- expr; anything else is a guard.
		if p.at(TIdent) && !keywords[p.cur().Lit] &&
			p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TGenArrow {
			name := p.cur().Lit
			p.advance() // ident
			p.advance() // <-
			src, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			compr.Quals = append(compr.Quals, Qualifier{Var: name, Source: src})
		} else {
			guard, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			compr.Quals = append(compr.Quals, Qualifier{Source: guard})
		}
		if p.at(TComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TRBrack, "']'"); err != nil {
		return nil, err
	}
	if len(compr.Quals) == 0 {
		return nil, errAt(pos, "parse", "a comprehension needs at least one qualifier")
	}
	return compr, nil
}

func (p *parser) parseRecordLit() (*ERecord, error) {
	t, err := p.expect(TLBrace, "'{'")
	if err != nil {
		return nil, err
	}
	rec := &ERecord{Pos: t.Pos}
	seen := map[string]bool{}
	if !p.at(TRBrace) {
		for {
			label, err := p.ident("a field label")
			if err != nil {
				return nil, err
			}
			if seen[label.Lit] {
				return nil, errAt(label.Pos, "parse", "duplicate field %q", label.Lit)
			}
			seen[label.Lit] = true
			if _, err := p.expect(TAssign, "'='"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rec.Fields = append(rec.Fields, FieldExpr{Label: label.Lit, X: e})
			if !p.at(TComma) {
				break
			}
			p.advance()
		}
	}
	if _, err := p.expect(TRBrace, "'}'"); err != nil {
		return nil, err
	}
	return rec, nil
}

// ---------------------------------------------------------------------------
// Types (lang-level syntax with abbreviations)
// ---------------------------------------------------------------------------

// baseTypes are the built-in type names.
var baseTypes = map[string]types.Type{
	"Int": types.Int, "Float": types.Float, "String": types.String,
	"Bool": types.Bool, "Unit": types.Unit, "Top": types.Top,
	"Bottom": types.Bottom, "Dynamic": types.Dynamic, "Type": types.TypeRep,
}

func (p *parser) parseType() (types.Type, error) {
	if p.atKw("forall") || p.atKw("exists") {
		kw := p.cur().Lit
		p.advance()
		name, err := p.ident("a type variable")
		if err != nil {
			return nil, err
		}
		bound := types.Type(types.Top)
		if p.at(TLe) {
			p.advance()
			if bound, err = p.parseType(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TDot, "'.'"); err != nil {
			return nil, err
		}
		body, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if kw == "forall" {
			return types.NewForAll(name.Lit, bound, body), nil
		}
		return types.NewExists(name.Lit, bound, body), nil
	}
	if p.atKw("rec") {
		p.advance()
		name, err := p.ident("a type variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TDot, "'.'"); err != nil {
			return nil, err
		}
		body, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return types.NewRec(name.Lit, body), nil
	}
	parts, single, err := p.parseTypeGroup()
	if err != nil {
		return nil, err
	}
	if p.at(TArrow) {
		p.advance()
		res, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return types.NewFunc(parts, res), nil
	}
	if !single {
		return nil, errAt(p.cur().Pos, "parse", "parameter list must be followed by \"->\"")
	}
	return parts[0], nil
}

func (p *parser) parseTypeGroup() ([]types.Type, bool, error) {
	if p.at(TLParen) {
		p.advance()
		if p.at(TRParen) {
			p.advance()
			return nil, false, nil
		}
		var parts []types.Type
		for {
			t, err := p.parseType()
			if err != nil {
				return nil, false, err
			}
			parts = append(parts, t)
			if !p.at(TComma) {
				break
			}
			p.advance()
		}
		if _, err := p.expect(TRParen, "')'"); err != nil {
			return nil, false, err
		}
		return parts, len(parts) == 1, nil
	}
	t, err := p.parseTypePrimary()
	if err != nil {
		return nil, false, err
	}
	return []types.Type{t}, true, nil
}

func (p *parser) parseTypePrimary() (types.Type, error) {
	t := p.cur()
	switch t.Kind {
	case TIdent:
		name := t.Lit
		if keywords[name] && name != "rec" {
			return nil, errAt(t.Pos, "parse", "unexpected keyword %q in type", name)
		}
		p.advance()
		if bt, ok := baseTypes[name]; ok {
			return bt, nil
		}
		if name == "List" || name == "Set" {
			if _, err := p.expect(TLBrack, "'['"); err != nil {
				return nil, err
			}
			el, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TRBrack, "']'"); err != nil {
				return nil, err
			}
			if name == "List" {
				return types.NewList(el), nil
			}
			return types.NewSet(el), nil
		}
		if abbr, ok := p.abbrevs[name]; ok {
			return abbr, nil
		}
		if name[0] >= 'A' && name[0] <= 'Z' {
			return nil, errAt(t.Pos, "parse", "unknown type name %q", name)
		}
		return types.NewVar(name), nil
	case TLBrace:
		p.advance()
		var fs []types.Field
		seen := map[string]bool{}
		if !p.at(TRBrace) {
			for {
				label, err := p.expect(TIdent, "a field label")
				if err != nil {
					return nil, err
				}
				if seen[label.Lit] {
					return nil, errAt(label.Pos, "parse", "duplicate field %q", label.Lit)
				}
				seen[label.Lit] = true
				if _, err := p.expect(TColon, "':'"); err != nil {
					return nil, err
				}
				ft, err := p.parseType()
				if err != nil {
					return nil, err
				}
				fs = append(fs, types.Field{Label: label.Lit, Type: ft})
				if !p.at(TComma) {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(TRBrace, "'}'"); err != nil {
			return nil, err
		}
		return types.NewRecord(fs...), nil
	case TLBrack:
		// Variant type: [Circle: Float, Square: Float].
		p.advance()
		var fs []types.Field
		seen := map[string]bool{}
		for {
			label, err := p.expect(TIdent, "a variant tag")
			if err != nil {
				return nil, err
			}
			if seen[label.Lit] {
				return nil, errAt(label.Pos, "parse", "duplicate variant tag %q", label.Lit)
			}
			seen[label.Lit] = true
			if _, err := p.expect(TColon, "':'"); err != nil {
				return nil, err
			}
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fs = append(fs, types.Field{Label: label.Lit, Type: ft})
			if !p.at(TComma) {
				break
			}
			p.advance()
		}
		if _, err := p.expect(TRBrack, "']'"); err != nil {
			return nil, err
		}
		return types.NewVariant(fs...), nil
	default:
		return nil, errAt(t.Pos, "parse", "unexpected %s in type", t)
	}
}
