package lang

import (
	"math"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// renv is a lexical runtime environment.
type renv struct {
	parent *renv
	name   string
	val    value.Value
}

func (e *renv) bind(name string, v value.Value) *renv {
	return &renv{parent: e, name: name, val: v}
}

func (e *renv) lookup(name string) (value.Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.val, true
		}
	}
	return nil, false
}

// tsub is a runtime substitution for type variables introduced by type
// application and by open. It makes coerce/dynamic/get meaningful inside
// polymorphic code.
type tsub struct {
	parent *tsub
	name   string
	typ    types.Type
}

func (s *tsub) bind(name string, t types.Type) *tsub {
	return &tsub{parent: s, name: name, typ: t}
}

// apply substitutes all bound variables in t.
func (s *tsub) apply(t types.Type) types.Type {
	for cur := s; cur != nil; cur = cur.parent {
		t = types.Substitute(t, cur.name, cur.typ)
	}
	return t
}

// Closure is a function value: the literal, its captured environment and
// the type substitution in force at capture, plus any type arguments
// applied so far.
type Closure struct {
	Fn    *EFun
	Env   *renv
	Sub   *tsub
	TArgs []types.Type
}

// Kind implements value.Value.
func (*Closure) Kind() value.Kind { return value.KindOpaque }

// String implements value.Value.
func (c *Closure) String() string { return "<fun>" }

// Builtin is a primitive function with a declared (possibly polymorphic)
// type. targs receives the resolved type arguments when the builtin was
// instantiated with [T].
type Builtin struct {
	Name  string
	Type  types.Type
	Arity int
	Fn    func(in *Interp, pos Pos, targs []types.Type, args []value.Value) (value.Value, error)
	// Refine, when set, computes a more precise result type from the
	// argument types for a *direct* (uninstantiated) call. It is the
	// paper's [Bune85] extension: "a rather minor modification … to the
	// type system of Amber to allow for object-level inheritance and to
	// use this to assign a type to relational operators such as join".
	// Returning ok=false falls back to the declared polymorphic type.
	Refine func(argTs []types.Type) (types.Type, bool)
}

// Kind implements value.Value.
func (*Builtin) Kind() value.Kind { return value.KindOpaque }

// String implements value.Value.
func (b *Builtin) String() string { return "<builtin " + b.Name + ">" }

// boundBuiltin is a builtin with type arguments already applied.
type boundBuiltin struct {
	b     *Builtin
	targs []types.Type
}

// Kind implements value.Value.
func (*boundBuiltin) Kind() value.Kind { return value.KindOpaque }

// String implements value.Value.
func (b *boundBuiltin) String() string { return b.b.String() }

// eval evaluates an expression.
func (in *Interp) eval(env *renv, sub *tsub, e Expr) (value.Value, error) {
	switch ee := e.(type) {
	case *EInt:
		return value.Int(ee.V), nil
	case *EFloat:
		return value.Float(ee.V), nil
	case *EString:
		return value.String(ee.V), nil
	case *EBool:
		return value.Bool(ee.V), nil
	case *EUnit:
		return value.Unit, nil

	case *EVar:
		if v, ok := env.lookup(ee.Name); ok {
			return v, nil
		}
		if v, ok := in.globals[ee.Name]; ok {
			return v, nil
		}
		return nil, errAt(ee.Pos, "run", "unbound variable %q", ee.Name)

	case *ERecord:
		rec := value.NewRecord()
		for _, f := range ee.Fields {
			v, err := in.eval(env, sub, f.X)
			if err != nil {
				return nil, err
			}
			rec.Set(f.Label, v)
		}
		return rec, nil

	case *EList:
		lst := value.NewList()
		for _, el := range ee.Elems {
			v, err := in.eval(env, sub, el)
			if err != nil {
				return nil, err
			}
			lst.Append(v)
		}
		return lst, nil

	case *EField:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		rec, ok := x.(*value.Record)
		if !ok {
			return nil, errAt(ee.Pos, "run", "field selection on non-record %s", x)
		}
		v, ok := rec.Get(ee.Label)
		if !ok {
			return nil, errAt(ee.Pos, "run", "record has no field %q", ee.Label)
		}
		return v, nil

	case *EWith:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		rec, ok := x.(*value.Record)
		if !ok {
			return nil, errAt(ee.Pos, "run", "'with' on non-record %s", x)
		}
		out := rec.Copy()
		for _, f := range ee.R.Fields {
			v, err := in.eval(env, sub, f.X)
			if err != nil {
				return nil, err
			}
			out.Set(f.Label, v)
		}
		return out, nil

	case *ECall:
		fn, err := in.eval(env, sub, ee.Fn)
		if err != nil {
			return nil, err
		}
		args := make([]value.Value, len(ee.Args))
		for i, a := range ee.Args {
			if args[i], err = in.eval(env, sub, a); err != nil {
				return nil, err
			}
		}
		return in.apply(ee.Pos, fn, args)

	case *ETypeApp:
		fn, err := in.eval(env, sub, ee.Fn)
		if err != nil {
			return nil, err
		}
		resolved := make([]types.Type, len(ee.Types))
		for i, t := range ee.Types {
			resolved[i] = sub.apply(t)
		}
		switch f := fn.(type) {
		case *Closure:
			return &Closure{Fn: f.Fn, Env: f.Env, Sub: f.Sub,
				TArgs: append(append([]types.Type(nil), f.TArgs...), resolved...)}, nil
		case *Builtin:
			return &boundBuiltin{b: f, targs: resolved}, nil
		case *boundBuiltin:
			return &boundBuiltin{b: f.b, targs: append(append([]types.Type(nil), f.targs...), resolved...)}, nil
		default:
			return nil, errAt(ee.Pos, "run", "type application on non-polymorphic value %s", fn)
		}

	case *EFun:
		return &Closure{Fn: ee, Env: env, Sub: sub}, nil

	case *EIf:
		cond, err := in.eval(env, sub, ee.Cond)
		if err != nil {
			return nil, err
		}
		b, ok := cond.(value.Bool)
		if !ok {
			return nil, errAt(ee.Pos, "run", "condition is not a Bool: %s", cond)
		}
		if bool(b) {
			return in.eval(env, sub, ee.Then)
		}
		return in.eval(env, sub, ee.Else)

	case *ELetIn:
		v, err := in.eval(env, sub, ee.Init)
		if err != nil {
			return nil, err
		}
		return in.eval(env.bind(ee.Name, v), sub, ee.Body)

	case *EBinary:
		return in.evalBinary(env, sub, ee)

	case *EUnary:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		switch ee.Op {
		case OpNeg:
			switch n := x.(type) {
			case value.Int:
				return value.Int(-n), nil
			case value.Float:
				return value.Float(-n), nil
			}
			return nil, errAt(ee.Pos, "run", "cannot negate %s", x)
		case OpNot:
			b, ok := x.(value.Bool)
			if !ok {
				return nil, errAt(ee.Pos, "run", "'not' on non-Bool %s", x)
			}
			return value.Bool(!b), nil
		}
		return nil, errAt(ee.Pos, "run", "unknown unary op")

	case *EDynamic:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		return dynamic.Make(x), nil

	case *ECoerce:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		d, ok := x.(*dynamic.Dynamic)
		if !ok {
			return nil, errAt(ee.Pos, "run", "coerce on non-dynamic %s", x)
		}
		want := sub.apply(ee.T)
		v, err := d.Coerce(want)
		if err != nil {
			return nil, errAt(ee.Pos, "run", "%v", err)
		}
		return v, nil

	case *ETypeOf:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		d, ok := x.(*dynamic.Dynamic)
		if !ok {
			return nil, errAt(ee.Pos, "run", "typeof on non-dynamic %s", x)
		}
		return d.TypeVal(), nil

	case *EVariant:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		return value.NewTag(ee.Label, x), nil

	case *ECompr:
		out := value.NewList()
		if err := in.evalCompr(env, sub, ee, 0, out); err != nil {
			return nil, err
		}
		return out, nil

	case *ECase:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		tag, ok := x.(*value.Tag)
		if !ok {
			return nil, errAt(ee.Pos, "run", "case on non-variant %s", x)
		}
		for _, arm := range ee.Arms {
			if arm.Label == tag.Label {
				return in.eval(env.bind(arm.Var, tag.Payload), sub, arm.Body)
			}
		}
		return nil, errAt(ee.Pos, "run", "no case arm for tag %q", tag.Label)

	case *EOpen:
		x, err := in.eval(env, sub, ee.X)
		if err != nil {
			return nil, err
		}
		// At run time an existential package is its underlying value; the
		// hidden witness type is the value's most specific type.
		bsub := sub.bind(ee.TVar, value.TypeOf(x))
		return in.eval(env.bind(ee.Var, x), bsub, ee.Body)

	default:
		return nil, errAt(e.exprPos(), "run", "unknown expression %T", e)
	}
}

// evalCompr runs a comprehension's qualifiers from position idx onward,
// appending one head value per surviving binding. Generators iterate in
// source order, so later generators vary fastest.
func (in *Interp) evalCompr(env *renv, sub *tsub, ee *ECompr, idx int, out *value.List) error {
	if idx == len(ee.Quals) {
		v, err := in.eval(env, sub, ee.Head)
		if err != nil {
			return err
		}
		out.Append(v)
		return nil
	}
	q := ee.Quals[idx]
	if q.Var == "" {
		cond, err := in.eval(env, sub, q.Source)
		if err != nil {
			return err
		}
		b, ok := cond.(value.Bool)
		if !ok {
			return errAt(q.Source.exprPos(), "run", "guard is not a Bool: %s", cond)
		}
		if bool(b) {
			return in.evalCompr(env, sub, ee, idx+1, out)
		}
		return nil
	}
	src, err := in.eval(env, sub, q.Source)
	if err != nil {
		return err
	}
	lst, ok := src.(*value.List)
	if !ok {
		return errAt(q.Source.exprPos(), "run", "generator source is not a list: %s", src)
	}
	for _, el := range lst.Elems {
		if err := in.evalCompr(env.bind(q.Var, el), sub, ee, idx+1, out); err != nil {
			return err
		}
	}
	return nil
}

// apply calls a function value with evaluated arguments.
func (in *Interp) apply(pos Pos, fn value.Value, args []value.Value) (value.Value, error) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > maxCallDepth {
		return nil, errAt(pos, "run", "call depth exceeds %d (runaway recursion?)", maxCallDepth)
	}
	switch f := fn.(type) {
	case *Closure:
		if len(args) != len(f.Fn.Params) {
			return nil, errAt(pos, "run", "wrong number of arguments: have %d, want %d", len(args), len(f.Fn.Params))
		}
		env := f.Env
		if f.Fn.SelfName != "" {
			env = env.bind(f.Fn.SelfName, f)
		}
		sub := f.Sub
		for i, tp := range f.Fn.TypeParams {
			if i < len(f.TArgs) {
				sub = sub.bind(tp.Name, f.TArgs[i])
			} else {
				// Un-instantiated type parameter: fall back to its bound.
				sub = sub.bind(tp.Name, tp.Bound)
			}
		}
		for i, p := range f.Fn.Params {
			env = env.bind(p.Name, args[i])
		}
		return in.eval(env, sub, f.Fn.Body)
	case *Builtin:
		if len(args) != f.Arity {
			return nil, errAt(pos, "run", "builtin %s: have %d arguments, want %d", f.Name, len(args), f.Arity)
		}
		return f.Fn(in, pos, nil, args)
	case *boundBuiltin:
		if len(args) != f.b.Arity {
			return nil, errAt(pos, "run", "builtin %s: have %d arguments, want %d", f.b.Name, len(args), f.b.Arity)
		}
		return f.b.Fn(in, pos, f.targs, args)
	default:
		return nil, errAt(pos, "run", "cannot call %s", fn)
	}
}

// maxCallDepth bounds recursion so runaway programs fail fast rather than
// exhausting the goroutine stack.
const maxCallDepth = 10000

func (in *Interp) evalBinary(env *renv, sub *tsub, ee *EBinary) (value.Value, error) {
	// and/or short-circuit.
	if ee.Op == OpAnd || ee.Op == OpOr {
		l, err := in.eval(env, sub, ee.L)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(value.Bool)
		if !ok {
			return nil, errAt(ee.Pos, "run", "%s on non-Bool %s", ee.Op, l)
		}
		if ee.Op == OpAnd && !bool(lb) {
			return value.Bool(false), nil
		}
		if ee.Op == OpOr && bool(lb) {
			return value.Bool(true), nil
		}
		r, err := in.eval(env, sub, ee.R)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(value.Bool)
		if !ok {
			return nil, errAt(ee.Pos, "run", "%s on non-Bool %s", ee.Op, r)
		}
		return rb, nil
	}

	l, err := in.eval(env, sub, ee.L)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(env, sub, ee.R)
	if err != nil {
		return nil, err
	}
	switch ee.Op {
	case OpEq:
		return value.Bool(value.Equal(l, r)), nil
	case OpNe:
		return value.Bool(!value.Equal(l, r)), nil
	case OpConcat:
		ls, ok1 := l.(value.String)
		rs, ok2 := r.(value.String)
		if !ok1 || !ok2 {
			return nil, errAt(ee.Pos, "run", "++ on non-strings")
		}
		return ls + rs, nil
	case OpMod:
		li, ok1 := l.(value.Int)
		ri, ok2 := r.(value.Int)
		if !ok1 || !ok2 {
			return nil, errAt(ee.Pos, "run", "%% on non-integers")
		}
		if ri == 0 {
			return nil, errAt(ee.Pos, "run", "division by zero")
		}
		return li % ri, nil
	}

	// String comparisons.
	if ls, ok := l.(value.String); ok {
		rs, ok := r.(value.String)
		if !ok {
			return nil, errAt(ee.Pos, "run", "%s on mixed operand kinds", ee.Op)
		}
		switch ee.Op {
		case OpLt:
			return value.Bool(ls < rs), nil
		case OpLe:
			return value.Bool(ls <= rs), nil
		case OpGt:
			return value.Bool(ls > rs), nil
		case OpGe:
			return value.Bool(ls >= rs), nil
		}
	}

	// Numeric operations with Int ≤ Float promotion.
	li, lInt := l.(value.Int)
	ri, rInt := r.(value.Int)
	if lInt && rInt {
		switch ee.Op {
		case OpAdd:
			return li + ri, nil
		case OpSub:
			return li - ri, nil
		case OpMul:
			return li * ri, nil
		case OpDiv:
			if ri == 0 {
				return nil, errAt(ee.Pos, "run", "division by zero")
			}
			return li / ri, nil
		case OpLt:
			return value.Bool(li < ri), nil
		case OpLe:
			return value.Bool(li <= ri), nil
		case OpGt:
			return value.Bool(li > ri), nil
		case OpGe:
			return value.Bool(li >= ri), nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, errAt(ee.Pos, "run", "%s on non-numeric operands %s, %s", ee.Op, l, r)
	}
	switch ee.Op {
	case OpAdd:
		return value.Float(lf + rf), nil
	case OpSub:
		return value.Float(lf - rf), nil
	case OpMul:
		return value.Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return nil, errAt(ee.Pos, "run", "division by zero")
		}
		return value.Float(lf / rf), nil
	case OpLt:
		return value.Bool(lf < rf), nil
	case OpLe:
		return value.Bool(lf <= rf), nil
	case OpGt:
		return value.Bool(lf > rf), nil
	case OpGe:
		return value.Bool(lf >= rf), nil
	}
	return nil, errAt(ee.Pos, "run", "unknown operator %s", ee.Op)
}

func toFloat(v value.Value) (float64, bool) {
	switch n := v.(type) {
	case value.Int:
		return float64(n), true
	case value.Float:
		return float64(n), true
	}
	return math.NaN(), false
}
