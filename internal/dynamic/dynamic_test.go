package dynamic

import (
	"errors"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

func TestPaperCoerceExample(t *testing.T) {
	// let d = dynamic 3
	d := Make(value.Int(3))

	// let i = coerce d to Int  -- succeeds, binds 3
	i, err := d.Coerce(types.Int)
	if err != nil {
		t.Fatalf("coerce to Int: %v", err)
	}
	if !value.Equal(i, value.Int(3)) {
		t.Errorf("coerce = %s, want 3", i)
	}

	// let s = coerce d to String  -- run-time type error
	_, err = d.Coerce(types.String)
	var ce *CoerceError
	if !errors.As(err, &ce) {
		t.Fatalf("coerce to String: err = %v, want *CoerceError", err)
	}
	if !types.Equal(ce.Have, types.Int) || !types.Equal(ce.Want, types.String) {
		t.Errorf("CoerceError = %v, want Int -> String", ce)
	}
}

func TestCoerceSubsumption(t *testing.T) {
	emp := value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1234))
	d := Make(emp)
	person := types.MustParse("{Name: String}")
	got, err := d.Coerce(person)
	if err != nil {
		t.Fatalf("employee should coerce to Person: %v", err)
	}
	// Coercion changes the static view, not the value: the fields are all
	// still there, which is what makes Get's existential result useful.
	if _, ok := got.(*value.Record).Get("Empno"); !ok {
		t.Error("coercion should not strip fields")
	}
	if _, err := d.Coerce(types.MustParse("{Name: String, Dept: String}")); err == nil {
		t.Error("coerce to a non-supertype should fail")
	}
}

func TestCoerceWidensNumbers(t *testing.T) {
	d := Make(value.Int(3))
	if _, err := d.Coerce(types.Float); err != nil {
		t.Errorf("Int dynamic should coerce to Float: %v", err)
	}
}

func TestMakeAt(t *testing.T) {
	emp := value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1))
	person := types.MustParse("{Name: String}")

	d, err := MakeAt(emp, person)
	if err != nil {
		t.Fatalf("MakeAt at supertype: %v", err)
	}
	if !types.Equal(d.Type(), person) {
		t.Errorf("declared type = %s, want Person", d.Type())
	}
	// The declared label hides the extra structure from Is/Coerce: the
	// value was *injected* at Person.
	if d.Is(types.MustParse("{Name: String, Empno: Int}")) {
		t.Error("a dynamic labelled Person should not claim to be Employee")
	}

	if _, err := MakeAt(value.Int(3), types.String); err == nil {
		t.Error("MakeAt with non-conforming type should fail")
	}
}

func TestMakeUsesMostSpecificType(t *testing.T) {
	emp := value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1))
	d := Make(emp)
	if !d.Is(types.MustParse("{Name: String, Empno: Int}")) {
		t.Error("Make should record the most specific type")
	}
	if !d.Is(types.MustParse("{Name: String}")) {
		t.Error("Is should respect subtyping")
	}
	if d.Is(types.MustParse("{Salary: Float}")) {
		t.Error("Is should reject unrelated types")
	}
}

func TestTypeVal(t *testing.T) {
	d := Make(value.Int(3))
	tv := d.TypeVal()
	if !types.Equal(tv.T, types.Int) {
		t.Errorf("TypeVal = %s, want Int", tv.T)
	}
	if value.TypeOf(tv).Kind() != types.KindTypeRep {
		t.Error("a reified type should have type Type")
	}
}

func TestDynamicIsAValue(t *testing.T) {
	// Dynamics nest inside ordinary structures.
	d := Make(value.Int(3))
	lst := value.NewList(d, d)
	if lst.Len() != 2 {
		t.Fatal("list of dynamics")
	}
	got, ok := lst.Elems[0].(*Dynamic)
	if !ok {
		t.Fatal("element should be a *Dynamic")
	}
	if v, _ := got.Coerce(types.Int); !value.Equal(v, value.Int(3)) {
		t.Error("nested dynamic lost its value")
	}
	if d.String() == "" {
		t.Error("String should render something")
	}
}
