// Package dynamic implements Amber-style dynamic values: a value paired
// with a description of its type. Ordinary values are made dynamic with
// Make and recovered with Coerce, which checks — at run time — that the
// carried type is a subtype of the requested one. In the paper:
//
//	let d = dynamic 3;
//	let i = coerce d to Int;     -- binds 3
//	let s = coerce d to String;  -- raises a run-time exception
//
// Dynamics are the paper's vehicle for both heterogeneous databases (a
// database is a list of dynamics) and replicating persistence (extern
// writes a dynamic so the value's type survives with it, principle P2).
package dynamic

import (
	"fmt"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Dynamic is a value that carries its own type. It is itself a value (of
// the basic type Dynamic), so dynamics can be stored in records, lists and
// databases like anything else.
type Dynamic struct {
	v  value.Value
	t  types.Type
	in *types.Interned // canonical handle of t, computed at construction
}

// Kind implements value.Value.
func (*Dynamic) Kind() value.Kind { return value.KindOpaque }

// String implements value.Value.
func (d *Dynamic) String() string {
	return fmt.Sprintf("dynamic(%s : %s)", d.v, d.t)
}

// Make pairs v with the most specific type that can be computed for it.
func Make(v value.Value) *Dynamic {
	t := value.TypeOf(v)
	return &Dynamic{v: v, t: t, in: types.Intern(t)}
}

// MakeAt pairs v with the declared type t, which must be conformed to; the
// declared type may be a supertype of v's most specific type (this is how a
// statically typed program injects an Employee into a database of Persons
// without losing the record's extra fields — the value keeps them, only the
// label changes).
func MakeAt(v value.Value, t types.Type) (*Dynamic, error) {
	if !value.Conforms(v, t) {
		return nil, &CoerceError{Have: value.TypeOf(v), Want: t}
	}
	return &Dynamic{v: v, t: t, in: types.Intern(t)}, nil
}

// Value returns the carried value without any check. Use Coerce for the
// type-safe accessor.
func (d *Dynamic) Value() value.Value { return d.v }

// Type returns the carried type description — the paper's typeOf function
// on dynamics.
func (d *Dynamic) Type() types.Type { return d.t }

// Interned returns the canonical handle of the carried type. The extent
// engine shards and indexes by it, and IsInterned makes the per-candidate
// subtype test a pointer-keyed cache hit.
func (d *Dynamic) Interned() *types.Interned { return d.in }

// TypeVal returns the carried type reified as a value of type Type.
func (d *Dynamic) TypeVal() *value.TypeVal { return value.NewTypeVal(d.t) }

// CoerceError reports a failed coercion: the dynamic's type is not a
// subtype of the requested type.
type CoerceError struct {
	Have types.Type // the type carried by the dynamic
	Want types.Type // the type requested by coerce
}

// Error implements error.
func (e *CoerceError) Error() string {
	return fmt.Sprintf("dynamic: cannot coerce %s to %s", e.Have, e.Want)
}

// Coerce reveals the carried value at type want. It succeeds when the
// carried type is a subtype of want (subsumption: a dynamic Employee
// coerces to Person). On failure it returns a *CoerceError, the statically
// typed analogue of Amber's run-time exception.
func (d *Dynamic) Coerce(want types.Type) (value.Value, error) {
	if !types.Subtype(d.t, want) {
		return nil, &CoerceError{Have: d.t, Want: want}
	}
	return d.v, nil
}

// Is reports whether the dynamic's carried type is a subtype of t — the
// test at the heart of the generic Get function.
func (d *Dynamic) Is(t types.Type) bool { return types.SubtypeInterned(d.in, types.Intern(t)) }

// IsInterned is Is with the target already interned, for callers testing
// many dynamics against one type: both cache keys are then pointers the
// caller already holds.
func (d *Dynamic) IsInterned(t *types.Interned) bool { return types.SubtypeInterned(d.in, t) }
