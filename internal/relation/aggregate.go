package relation

import (
	"fmt"
	"sort"
	"strings"

	"dbpl/internal/value"
)

// This file rounds out the relational algebra with grouping and
// aggregation, in the spirit of the paper's Merrett reference (relational
// algebra as a general computational tool). Aggregates work on both flat
// and generalized relations; on generalized relations a member that is
// silent on the aggregated attribute simply contributes nothing — the
// null-as-missing-field reading again.

// Aggregate is a function folded over the values of one attribute within a
// group.
type Aggregate struct {
	// Name labels the output field, e.g. "Total".
	Name string
	// Attr is the aggregated attribute ("" for CountAll).
	Attr string
	// fold updates the accumulator with one value; zero produces the
	// initial accumulator and finish maps it to the output value.
	fold   func(acc value.Value, v value.Value) (value.Value, error)
	zero   func() value.Value
	finish func(acc value.Value) value.Value
}

// Count counts the group members that define attr.
func Count(name, attr string) Aggregate {
	return Aggregate{
		Name: name, Attr: attr,
		zero: func() value.Value { return value.Int(0) },
		fold: func(acc, _ value.Value) (value.Value, error) {
			return acc.(value.Int) + 1, nil
		},
		finish: func(acc value.Value) value.Value { return acc },
	}
}

// CountAll counts every group member.
func CountAll(name string) Aggregate {
	a := Count(name, "")
	return a
}

// numeric returns the float reading of an Int or Float.
func numeric(v value.Value) (float64, bool) {
	switch n := v.(type) {
	case value.Int:
		return float64(n), true
	case value.Float:
		return float64(n), true
	}
	return 0, false
}

// Sum totals a numeric attribute over the group.
func Sum(name, attr string) Aggregate {
	return Aggregate{
		Name: name, Attr: attr,
		zero: func() value.Value { return value.Float(0) },
		fold: func(acc, v value.Value) (value.Value, error) {
			f, ok := numeric(v)
			if !ok {
				return nil, fmt.Errorf("relation: sum of non-numeric %s", v)
			}
			return acc.(value.Float) + value.Float(f), nil
		},
		finish: func(acc value.Value) value.Value { return acc },
	}
}

// Min keeps the least value of the attribute under the information
// ordering-compatible primitive orderings (numbers and strings).
func Min(name, attr string) Aggregate { return extremum(name, attr, true) }

// Max keeps the greatest value of the attribute.
func Max(name, attr string) Aggregate { return extremum(name, attr, false) }

func extremum(name, attr string, min bool) Aggregate {
	return Aggregate{
		Name: name, Attr: attr,
		zero: func() value.Value { return value.Bottom },
		fold: func(acc, v value.Value) (value.Value, error) {
			if acc.Kind() == value.KindBottom {
				return v, nil
			}
			less, err := primLess(v, acc)
			if err != nil {
				return nil, err
			}
			if less == min {
				return v, nil
			}
			return acc, nil
		},
		finish: func(acc value.Value) value.Value { return acc },
	}
}

func primLess(a, b value.Value) (bool, error) {
	if as, ok := a.(value.String); ok {
		bs, ok := b.(value.String)
		if !ok {
			return false, fmt.Errorf("relation: cannot compare %s with %s", a, b)
		}
		return as < bs, nil
	}
	af, ok1 := numeric(a)
	bf, ok2 := numeric(b)
	if !ok1 || !ok2 {
		return false, fmt.Errorf("relation: cannot compare %s with %s", a, b)
	}
	return af < bf, nil
}

// GroupBy groups the relation's record members by the given attributes and
// applies each aggregate within a group, producing one record per group
// carrying the grouping attributes plus one field per aggregate. Members
// silent on a grouping attribute form their own "unknown" groups keyed by
// the attributes they do define; members silent on an aggregated attribute
// are skipped by that aggregate (CountAll counts them regardless).
//
// The result is itself a generalized relation (a cochain), so a group
// record that is strictly less informative than another — an unknown-key
// group whose aggregates happen to equal a known group's — is subsumed,
// consistent with the information ordering. Flat inputs can never trigger
// this (every group defines all grouping attributes).
func GroupBy(r *Relation, by []string, aggs ...Aggregate) (*Relation, error) {
	type group struct {
		key  *value.Record
		accs []value.Value
	}
	sortedBy := append([]string(nil), by...)
	sort.Strings(sortedBy)
	groups := map[string]*group{}
	var order []string

	for _, m := range r.Members() {
		rec, ok := m.(*value.Record)
		if !ok {
			continue
		}
		keyRec := value.NewRecord()
		var kb strings.Builder
		for _, a := range sortedBy {
			if v, ok := rec.Get(a); ok {
				keyRec.Set(a, v)
				fmt.Fprintf(&kb, "%s=%s|", a, value.Key(v))
			} else {
				fmt.Fprintf(&kb, "%s=⊥|", a)
			}
		}
		g, ok := groups[kb.String()]
		if !ok {
			g = &group{key: keyRec, accs: make([]value.Value, len(aggs))}
			for i, agg := range aggs {
				g.accs[i] = agg.zero()
			}
			groups[kb.String()] = g
			order = append(order, kb.String())
		}
		for i, agg := range aggs {
			if agg.Attr == "" { // CountAll
				acc, err := agg.fold(g.accs[i], value.Unit)
				if err != nil {
					return nil, err
				}
				g.accs[i] = acc
				continue
			}
			v, ok := rec.Get(agg.Attr)
			if !ok {
				continue
			}
			acc, err := agg.fold(g.accs[i], v)
			if err != nil {
				return nil, err
			}
			g.accs[i] = acc
		}
	}

	out := New()
	for _, k := range order {
		g := groups[k]
		res := g.key
		for i, agg := range aggs {
			res.Set(agg.Name, aggs[i].finish(g.accs[i]))
		}
		out.Insert(res)
	}
	return out, nil
}

// GroupByFlat is GroupBy for flat relations, returning a flat relation over
// the grouping attributes plus the aggregate names. Aggregates over flat
// relations never meet missing attributes.
func GroupByFlat(f *Flat, by []string, aggs ...Aggregate) (*Flat, error) {
	gen, err := GroupBy(f.Generalize(), by, aggs...)
	if err != nil {
		return nil, err
	}
	attrs := append([]string(nil), by...)
	for _, a := range aggs {
		attrs = append(attrs, a.Name)
	}
	out := NewFlat(attrs...)
	for _, m := range gen.Members() {
		if err := out.Insert(m.(*value.Record)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
