package relation

import (
	"fmt"
	"time"

	"dbpl/internal/value"
)

// This file implements a hash-accelerated generalized natural join. The
// naive join compares every pair of members — O(|R|·|S|) value joins. On
// the common case where both relations largely *define* a shared atomic
// attribute, members with distinct atoms on that attribute can never join
// (atoms conflict unless equal), so pairing can be restricted to members
// whose atoms agree — plus the members *silent* on the attribute, which,
// like the paper's N Bug tuple, remain joinable with everything.
//
// The optimization never changes the result; TestQuickJoinFastEquals
// checks equivalence on random partial relations, and BenchmarkJoin
// measures the effect (the E1 ablation).

// joinAttrStats describes how useful an attribute is as a hash key.
type joinAttrStats struct {
	label    string
	distinct int
	silent   int // members not defining the attribute, or non-atomically
}

// pickJoinAttr selects the attribute with the best selectivity: maximal
// distinct atom count, minimal silent members. Returns false when no
// attribute is shared usefully.
func pickJoinAttr(r, s *Relation) (string, bool) {
	stats := func(rel *Relation) map[string]*joinAttrStats {
		out := map[string]*joinAttrStats{}
		for _, m := range rel.elems {
			rec, ok := m.(*value.Record)
			if !ok {
				continue
			}
			rec.Each(func(l string, v value.Value) {
				st, ok := out[l]
				if !ok {
					st = &joinAttrStats{label: l}
					out[l] = st
				}
				if isAtom(v) {
					st.distinct++ // counts occurrences; good enough as a proxy
				} else {
					st.silent++
				}
			})
		}
		return out
	}
	rs, ss := stats(r), stats(s)
	best := ""
	bestScore := -1
	for l, a := range rs {
		b, ok := ss[l]
		if !ok {
			continue
		}
		// Score: members that actually define the attribute atomically on
		// both sides; penalize non-atomic occurrences (those members fall
		// into the wildcard bucket anyway).
		score := a.distinct + b.distinct - 2*(a.silent+b.silent)
		if score > bestScore {
			bestScore = score
			best = l
		}
	}
	if bestScore <= 0 {
		return "", false
	}
	return best, true
}

// JoinCosts are the cost-model coefficients for the join planner, in
// nanoseconds. DefaultJoinCosts holds measured priors; the server
// substitutes learned values from its telemetry histograms.
type JoinCosts struct {
	PairNs  float64 // one value.Join attempt
	HashNs  float64 // hashing one member into a bucket
	SetupNs float64 // fixed partition overhead (map allocation)
}

// DefaultJoinCosts are the cold-start priors, measured on the E1/E16
// microbenchmarks. Only their ordering needs to be roughly right: the
// server's feedback loop replaces PairNs and HashNs with observed means.
var DefaultJoinCosts = JoinCosts{PairNs: 150, HashNs: 120, SetupNs: 2000}

// JoinPlan is the planner's verdict for one join: whether to hash-
// partition at all, on which attribute, and which side to build the hash
// table from (the probe side streams). The zero value means nested-loop.
type JoinPlan struct {
	Attr       string // partition attribute; "" for nested-loop
	Partition  bool
	BuildRight bool // build from s (the smaller side), probe with r

	// Cost estimates behind the choice, for EXPLAIN.
	CostNested    float64
	CostPartition float64
}

// String renders the plan in the EXPLAIN format.
func (p JoinPlan) String() string {
	if !p.Partition {
		return fmt.Sprintf("join path=nested cost{nested=%s partition=%s}",
			ns(p.CostNested), ns(p.CostPartition))
	}
	side := "left"
	if p.BuildRight {
		side = "right"
	}
	return fmt.Sprintf("join path=partition attr=%s build=%s cost{nested=%s partition=%s}",
		p.Attr, side, ns(p.CostNested), ns(p.CostPartition))
}

func ns(c float64) string {
	if c <= 0 {
		return "-"
	}
	return time.Duration(c).String()
}

// PlanJoin chooses the join strategy with the default cost priors —
// replacing the old fixed "both sides ≥ 16 rows" threshold.
func PlanJoin(r, s *Relation) JoinPlan {
	return PlanJoinWith(r, s, DefaultJoinCosts)
}

// PlanJoinWith chooses the join strategy under explicit cost
// coefficients. The nested-loop cost is |R|·|S| pair attempts; the
// partition cost is hashing both sides plus the pairs that survive the
// partition — same-bucket pairs (estimated through the attribute's
// distinct-count) and wildcard cross-pairs, which the partition cannot
// avoid.
func PlanJoinWith(r, s *Relation, c JoinCosts) JoinPlan {
	nr, nsz := r.Len(), s.Len()
	p := JoinPlan{CostNested: float64(nr) * float64(nsz) * c.PairNs}
	attr, ok := pickJoinAttr(r, s)
	if !ok {
		return p // no shared atomic attribute: partitioning cannot help
	}
	ra, rw := attrCounts(r, attr)
	sa, sw := attrCounts(s, attr)
	distinct := distinctAtoms(r, s, attr)
	if distinct < 1 {
		distinct = 1
	}
	survivors := float64(ra)*float64(sa)/float64(distinct) +
		float64(rw)*float64(nsz) + float64(sw)*float64(ra)
	p.CostPartition = c.SetupNs + float64(nr+nsz)*c.HashNs + survivors*c.PairNs
	if p.CostPartition < p.CostNested {
		p.Attr = attr
		p.Partition = true
		p.BuildRight = nsz <= nr // build the hash table over the smaller side
	}
	return p
}

// attrCounts returns how many members of rel define attr atomically, and
// how many are wildcards on it (silent, non-atomic, or non-records).
func attrCounts(rel *Relation, attr string) (atoms, wild int) {
	for _, m := range rel.elems {
		if _, ok := atomOn(m, attr); ok {
			atoms++
		} else {
			wild++
		}
	}
	return atoms, wild
}

// distinctAtoms counts the distinct atom values attr takes across both
// relations — the denominator of the same-bucket pair estimate.
func distinctAtoms(r, s *Relation, attr string) int {
	seen := map[string]bool{}
	for _, rel := range []*Relation{r, s} {
		for _, m := range rel.elems {
			if k, ok := atomOn(m, attr); ok {
				seen[k] = true
			}
		}
	}
	return len(seen)
}

// atomOn returns the canonical key of m's attr field when m is a record
// defining it atomically.
func atomOn(m value.Value, attr string) (string, bool) {
	rec, ok := m.(*value.Record)
	if !ok {
		return "", false
	}
	v, ok := rec.Get(attr)
	if !ok || !isAtom(v) {
		return "", false
	}
	return value.Key(v), true
}

// JoinFast computes the same generalized natural join as Join, planning
// the strategy with the default cost model. Members silent (or
// non-atomic) on the chosen attribute are wildcards paired with
// everything, exactly preserving the partial-tuple semantics.
func JoinFast(r, s *Relation) *Relation {
	return JoinPlanned(r, s, PlanJoin(r, s))
}

// JoinPlanned executes a join under an explicit plan: nested-loop, or a
// build/probe hash join — the build side is partitioned into buckets once,
// the probe side streams through them. The result is identical under
// every plan (TestQuickJoinPlannedEquals).
func JoinPlanned(r, s *Relation, p JoinPlan) *Relation {
	if !p.Partition {
		return Join(r, s)
	}
	build, probe := r, s
	if p.BuildRight {
		build, probe = s, r
	}
	buckets := map[string][]value.Value{}
	var buildWild []value.Value
	for _, m := range build.elems {
		if k, ok := atomOn(m, p.Attr); ok {
			buckets[k] = append(buckets[k], m)
		} else {
			buildWild = append(buildWild, m)
		}
	}

	var joined []value.Value
	// tryJoin keeps the (r, s) orientation regardless of build side.
	tryJoin := func(pm, bm value.Value) {
		a, b := bm, pm
		if p.BuildRight {
			a, b = pm, bm
		}
		if j, err := value.Join(a, b); err == nil {
			joined = append(joined, j)
		}
	}
	for _, m := range probe.elems {
		if k, ok := atomOn(m, p.Attr); ok {
			// Equal atoms join; the build side's wildcards join everything.
			for _, bm := range buckets[k] {
				tryJoin(m, bm)
			}
			for _, bm := range buildWild {
				tryJoin(m, bm)
			}
		} else {
			// A probe wildcard pairs with the whole build side.
			for _, bm := range build.elems {
				tryJoin(m, bm)
			}
		}
	}
	return newFromCochain(value.Maximal(joined))
}
