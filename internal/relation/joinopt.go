package relation

import (
	"dbpl/internal/value"
)

// This file implements a hash-accelerated generalized natural join. The
// naive join compares every pair of members — O(|R|·|S|) value joins. On
// the common case where both relations largely *define* a shared atomic
// attribute, members with distinct atoms on that attribute can never join
// (atoms conflict unless equal), so pairing can be restricted to members
// whose atoms agree — plus the members *silent* on the attribute, which,
// like the paper's N Bug tuple, remain joinable with everything.
//
// The optimization never changes the result; TestQuickJoinFastEquals
// checks equivalence on random partial relations, and BenchmarkJoin
// measures the effect (the E1 ablation).

// joinAttrStats describes how useful an attribute is as a hash key.
type joinAttrStats struct {
	label    string
	distinct int
	silent   int // members not defining the attribute, or non-atomically
}

// pickJoinAttr selects the attribute with the best selectivity: maximal
// distinct atom count, minimal silent members. Returns false when no
// attribute is shared usefully.
func pickJoinAttr(r, s *Relation) (string, bool) {
	stats := func(rel *Relation) map[string]*joinAttrStats {
		out := map[string]*joinAttrStats{}
		for _, m := range rel.elems {
			rec, ok := m.(*value.Record)
			if !ok {
				continue
			}
			rec.Each(func(l string, v value.Value) {
				st, ok := out[l]
				if !ok {
					st = &joinAttrStats{label: l}
					out[l] = st
				}
				if isAtom(v) {
					st.distinct++ // counts occurrences; good enough as a proxy
				} else {
					st.silent++
				}
			})
		}
		return out
	}
	rs, ss := stats(r), stats(s)
	best := ""
	bestScore := -1
	for l, a := range rs {
		b, ok := ss[l]
		if !ok {
			continue
		}
		// Score: members that actually define the attribute atomically on
		// both sides; penalize non-atomic occurrences (those members fall
		// into the wildcard bucket anyway).
		score := a.distinct + b.distinct - 2*(a.silent+b.silent)
		if score > bestScore {
			bestScore = score
			best = l
		}
	}
	if bestScore <= 0 {
		return "", false
	}
	return best, true
}

// JoinFast computes the same generalized natural join as Join, using a
// hash partition on a shared atomic attribute when one exists. Members
// silent (or non-atomic) on the chosen attribute are wildcards paired with
// everything, exactly preserving the partial-tuple semantics.
func JoinFast(r, s *Relation) *Relation {
	attr, ok := pickJoinAttr(r, s)
	if !ok || r.Len() < 16 || s.Len() < 16 {
		return Join(r, s) // not worth partitioning
	}
	partition := func(rel *Relation) (map[string][]value.Value, []value.Value) {
		buckets := map[string][]value.Value{}
		var wild []value.Value
		for _, m := range rel.elems {
			rec, ok := m.(*value.Record)
			if !ok {
				wild = append(wild, m)
				continue
			}
			v, ok := rec.Get(attr)
			if !ok || !isAtom(v) {
				wild = append(wild, m)
				continue
			}
			k := value.Key(v)
			buckets[k] = append(buckets[k], m)
		}
		return buckets, wild
	}
	rb, rw := partition(r)
	sb, sw := partition(s)

	var joined []value.Value
	tryJoin := func(a, b value.Value) {
		if j, err := value.Join(a, b); err == nil {
			joined = append(joined, j)
		}
	}
	// Same-bucket pairs: equal atoms on the partition attribute.
	for k, as := range rb {
		for _, a := range as {
			for _, b := range sb[k] {
				tryJoin(a, b)
			}
		}
	}
	// Wildcards pair with everything on the other side.
	for _, a := range rw {
		for _, b := range s.elems {
			tryJoin(a, b)
		}
	}
	for _, b := range sw {
		for _, a := range r.elems {
			// Pair only with r's non-wildcards: r's wildcards already met
			// every member of s above.
			ar, ok := a.(*value.Record)
			if !ok {
				continue
			}
			if v, ok := ar.Get(attr); ok && isAtom(v) {
				tryJoin(a, b)
			}
		}
	}
	return newFromCochain(value.Maximal(joined))
}
