package relation

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dbpl/internal/value"
)

// Flat is a classical first-normal-form relation: a set of tuples over a
// fixed attribute schema, every attribute an atom. It is the baseline the
// paper's generalized relations are measured against, and embodies the
// three restrictions the paper lists: tuples are identified by intrinsic
// properties, there is no inheritance, and values are flat.
type Flat struct {
	attrs  []string // sorted schema
	tuples []*value.Record
	index  map[string]int // value.Key -> position
}

// ErrSchema is returned when a tuple does not match the relation's schema
// exactly or has non-atomic attribute values.
var ErrSchema = errors.New("relation: tuple does not match 1NF schema")

// NewFlat returns an empty flat relation over the given attributes.
func NewFlat(attrs ...string) *Flat {
	as := append([]string(nil), attrs...)
	sort.Strings(as)
	return &Flat{attrs: as, index: map[string]int{}}
}

// Attrs returns the schema attributes in sorted order.
func (f *Flat) Attrs() []string { return append([]string(nil), f.attrs...) }

// Len reports the number of tuples.
func (f *Flat) Len() int { return len(f.tuples) }

// Tuples returns the tuples; the slice is fresh but shares the records.
func (f *Flat) Tuples() []*value.Record { return append([]*value.Record(nil), f.tuples...) }

func isAtom(v value.Value) bool {
	switch v.Kind() {
	case value.KindInt, value.KindFloat, value.KindString, value.KindBool:
		return true
	}
	return false
}

// check validates t against the schema: exactly the schema attributes, all
// atomic.
func (f *Flat) check(t *value.Record) error {
	if t.Len() != len(f.attrs) {
		return fmt.Errorf("%w: have %v, want %v", ErrSchema, t.Labels(), f.attrs)
	}
	for _, a := range f.attrs {
		v, ok := t.Get(a)
		if !ok {
			return fmt.Errorf("%w: missing attribute %q", ErrSchema, a)
		}
		if !isAtom(v) {
			return fmt.Errorf("%w: attribute %q is not atomic (first normal form)", ErrSchema, a)
		}
	}
	return nil
}

// Insert adds the tuple; duplicates are ignored (set semantics). An error
// is returned if the tuple violates the schema.
func (f *Flat) Insert(t *value.Record) error {
	if err := f.check(t); err != nil {
		return err
	}
	k := value.Key(t)
	if _, ok := f.index[k]; ok {
		return nil
	}
	f.index[k] = len(f.tuples)
	f.tuples = append(f.tuples, t)
	return nil
}

// Contains reports membership by structural equality.
func (f *Flat) Contains(t *value.Record) bool {
	_, ok := f.index[value.Key(t)]
	return ok
}

// Delete removes the tuple, reporting whether it was present.
func (f *Flat) Delete(t *value.Record) bool {
	k := value.Key(t)
	i, ok := f.index[k]
	if !ok {
		return false
	}
	last := len(f.tuples) - 1
	if i != last {
		f.tuples[i] = f.tuples[last]
		f.index[value.Key(f.tuples[i])] = i
	}
	f.tuples = f.tuples[:last]
	delete(f.index, k)
	return true
}

// NaturalJoin is the classical natural join: tuples agreeing on all shared
// attributes are merged. When the schemas are disjoint it degenerates to
// the Cartesian product.
func NaturalJoin(a, b *Flat) *Flat {
	shared := map[string]bool{}
	for _, x := range a.attrs {
		shared[x] = true
	}
	var common []string
	merged := append([]string(nil), a.attrs...)
	for _, y := range b.attrs {
		if shared[y] {
			common = append(common, y)
		} else {
			merged = append(merged, y)
		}
	}
	out := NewFlat(merged...)
	// Hash join on the common attributes.
	h := map[string][]*value.Record{}
	keyOf := func(t *value.Record) string {
		var sb strings.Builder
		for _, c := range common {
			v, _ := t.Get(c)
			sb.WriteString(value.Key(v))
			sb.WriteByte('|')
		}
		return sb.String()
	}
	for _, t := range a.tuples {
		k := keyOf(t)
		h[k] = append(h[k], t)
	}
	for _, u := range b.tuples {
		for _, t := range h[keyOf(u)] {
			m := t.Copy()
			u.Each(func(l string, v value.Value) { m.Set(l, v) })
			// Safe to ignore the error: both sides satisfied their schemas.
			_ = out.Insert(m)
		}
	}
	return out
}

// ProjectFlat projects onto the given attributes (which must be a subset of
// the schema) with set semantics.
func ProjectFlat(f *Flat, attrs ...string) (*Flat, error) {
	have := map[string]bool{}
	for _, a := range f.attrs {
		have[a] = true
	}
	for _, a := range attrs {
		if !have[a] {
			return nil, fmt.Errorf("%w: projection attribute %q not in schema", ErrSchema, a)
		}
	}
	out := NewFlat(attrs...)
	for _, t := range f.tuples {
		p := value.NewRecord()
		for _, a := range attrs {
			v, _ := t.Get(a)
			p.Set(a, v)
		}
		if err := out.Insert(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SelectFlat returns the tuples satisfying pred.
func SelectFlat(f *Flat, pred func(*value.Record) bool) *Flat {
	out := NewFlat(f.attrs...)
	for _, t := range f.tuples {
		if pred(t) {
			_ = out.Insert(t)
		}
	}
	return out
}

// DiffFlat returns a − b over identical schemas (set difference).
func DiffFlat(a, b *Flat) (*Flat, error) {
	if len(a.attrs) != len(b.attrs) {
		return nil, fmt.Errorf("%w: schemas differ", ErrSchema)
	}
	for i := range a.attrs {
		if a.attrs[i] != b.attrs[i] {
			return nil, fmt.Errorf("%w: schemas differ", ErrSchema)
		}
	}
	out := NewFlat(a.attrs...)
	for _, t := range a.tuples {
		if !b.Contains(t) {
			if err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Generalize converts a flat relation to a generalized one; total tuples
// over the same schema are automatically mutually incomparable (they differ
// somewhere, hence conflict), so no information is lost.
func (f *Flat) Generalize() *Relation {
	return New(recordsToValues(f.tuples)...)
}

// String renders the relation in canonical order.
func (f *Flat) String() string {
	return New(recordsToValues(f.tuples)...).String()
}

func recordsToValues(rs []*value.Record) []value.Value {
	out := make([]value.Value, len(rs))
	for i, r := range rs {
		out[i] = r
	}
	return out
}
