// Package relation implements the paper's generalized relations: sets of
// mutually incomparable objects (cochains in the information ordering of
// package value), with insertion by subsumption, a generalized natural join
// — the operation of Figure 1 — projection, selection, keys, and the
// type-as-relation extraction that unifies relational and object-oriented
// database programming. A classical flat (1NF) relation type is provided as
// the baseline the generalization is measured against.
package relation

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Outcome describes what Insert did with an object.
type Outcome int

const (
	// Added: the object was incomparable with every member and was added.
	Added Outcome = iota
	// Redundant: an existing member already contains as much information,
	// so the relation is unchanged.
	Redundant
	// Subsumed: the object was more informative than one or more existing
	// members, which it replaced.
	Subsumed
)

// String returns the outcome's name.
func (o Outcome) String() string {
	switch o {
	case Added:
		return "added"
	case Redundant:
		return "redundant"
	case Subsumed:
		return "subsumed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ErrKeyViolation is returned when a keyed insert collides with an existing
// member on the key attributes but neither object subsumes the other.
var ErrKeyViolation = errors.New("relation: key violation")

// ErrNoKey is returned when an inserted object lacks one of the relation's
// key attributes.
var ErrNoKey = errors.New("relation: object missing key attribute")

// Relation is a generalized relation: a set of mutually incomparable
// objects under the information ordering ("cochains in the jargon of
// lattice theory"). The zero value is not usable; construct with New or
// NewKeyed.
type Relation struct {
	elems []value.Value
	index map[string]int // value.Key -> position
	key   []string       // key attributes; empty means unkeyed
	byKey map[string]int // key-tuple -> position, when keyed
}

// New returns an empty generalized relation, optionally seeded with
// objects (inserted in order, with subsumption).
func New(objects ...value.Value) *Relation {
	r := &Relation{index: map[string]int{}}
	for _, o := range objects {
		r.Insert(o)
	}
	return r
}

// newFromCochain builds a relation directly from members already known to
// be mutually incomparable (e.g. the output of value.Maximal), skipping the
// per-insert subsumption scan.
func newFromCochain(members []value.Value) *Relation {
	r := &Relation{index: make(map[string]int, len(members))}
	for _, m := range members {
		k := value.Key(m)
		if _, dup := r.index[k]; dup {
			continue
		}
		r.index[k] = len(r.elems)
		r.elems = append(r.elems, m)
	}
	return r
}

// NewKeyed returns an empty relation with the given key attributes. As the
// paper observes, imposing a key prevents comparable objects from
// coexisting: two comparable objects would necessarily agree on the key.
func NewKeyed(key ...string) *Relation {
	ks := append([]string(nil), key...)
	sort.Strings(ks)
	return &Relation{index: map[string]int{}, key: ks, byKey: map[string]int{}}
}

// Len reports the number of members.
func (r *Relation) Len() int { return len(r.elems) }

// Key returns the key attributes (nil when unkeyed).
func (r *Relation) Key() []string { return append([]string(nil), r.key...) }

// Members returns the members; the slice is fresh but shares the member
// values.
func (r *Relation) Members() []value.Value { return append([]value.Value(nil), r.elems...) }

// Contains reports whether an object structurally equal to o is a member.
func (r *Relation) Contains(o value.Value) bool {
	_, ok := r.index[value.Key(o)]
	return ok
}

// keyString extracts the canonical key tuple of o, or an error if a key
// attribute is missing or o is not a record.
func (r *Relation) keyString(o value.Value) (string, error) {
	rec, ok := o.(*value.Record)
	if !ok {
		return "", fmt.Errorf("%w: %s is not a record", ErrNoKey, o)
	}
	var b strings.Builder
	for _, k := range r.key {
		v, ok := rec.Get(k)
		if !ok {
			return "", fmt.Errorf("%w: %q", ErrNoKey, k)
		}
		b.WriteString(value.Key(v))
		b.WriteByte('|')
	}
	return b.String(), nil
}

// Insert adds o with the paper's subsumption rule: o is not admitted if an
// existing member contains as much information; if o is more informative
// than existing members, those are subsumed (removed). For keyed relations
// a collision on the key with a non-comparable member is ErrKeyViolation.
func (r *Relation) Insert(o value.Value) (Outcome, error) {
	if r.Contains(o) {
		return Redundant, nil
	}
	if len(r.key) > 0 {
		ks, err := r.keyString(o)
		if err != nil {
			return Redundant, err
		}
		if i, ok := r.byKey[ks]; ok {
			old := r.elems[i]
			switch {
			case value.Leq(o, old):
				return Redundant, nil
			case value.Leq(old, o):
				r.removeAt(i)
				r.add(o, ks)
				return Subsumed, nil
			default:
				return Redundant, fmt.Errorf("%w: %s vs %s", ErrKeyViolation, o, old)
			}
		}
		// With a key, distinct key tuples guarantee incomparability, so no
		// further scan is needed.
		r.add(o, ks)
		return Added, nil
	}
	// Unkeyed: compare against every member (the cost experiment E6
	// measures exactly this scan).
	subsumed := false
	for i := 0; i < len(r.elems); {
		m := r.elems[i]
		if value.Leq(o, m) {
			return Redundant, nil
		}
		if value.Leq(m, o) {
			r.removeAt(i)
			subsumed = true
			continue
		}
		i++
	}
	r.add(o, "")
	if subsumed {
		return Subsumed, nil
	}
	return Added, nil
}

func (r *Relation) add(o value.Value, keyStr string) {
	r.index[value.Key(o)] = len(r.elems)
	if keyStr != "" || len(r.key) > 0 {
		r.byKey[keyStr] = len(r.elems)
	}
	r.elems = append(r.elems, o)
}

func (r *Relation) removeAt(i int) {
	o := r.elems[i]
	delete(r.index, value.Key(o))
	if len(r.key) > 0 {
		if ks, err := r.keyString(o); err == nil {
			delete(r.byKey, ks)
		}
	}
	last := len(r.elems) - 1
	if i != last {
		r.elems[i] = r.elems[last]
		moved := r.elems[i]
		r.index[value.Key(moved)] = i
		if len(r.key) > 0 {
			if ks, err := r.keyString(moved); err == nil {
				r.byKey[ks] = i
			}
		}
	}
	r.elems = r.elems[:last]
}

// Delete removes the member structurally equal to o, reporting whether it
// was present.
func (r *Relation) Delete(o value.Value) bool {
	i, ok := r.index[value.Key(o)]
	if !ok {
		return false
	}
	r.removeAt(i)
	return true
}

// Lookup returns the member with the given key values (keyed relations
// only). The key values must be given in the sorted order of Key().
func (r *Relation) Lookup(keyVals ...value.Value) (value.Value, bool) {
	if len(r.key) == 0 || len(keyVals) != len(r.key) {
		return nil, false
	}
	var b strings.Builder
	for _, v := range keyVals {
		b.WriteString(value.Key(v))
		b.WriteByte('|')
	}
	i, ok := r.byKey[b.String()]
	if !ok {
		return nil, false
	}
	return r.elems[i], true
}

// Leq reports the paper's ordering on relations: r ⊑ s iff every member of
// s is more informative than some member of r.
func Leq(r, s *Relation) bool {
	return value.SetLeq(value.NewSet(r.elems...), value.NewSet(s.elems...))
}

// Equal reports whether the two relations have structurally equal members.
func Equal(r, s *Relation) bool {
	if r.Len() != s.Len() {
		return false
	}
	for _, m := range r.elems {
		if !s.Contains(m) {
			return false
		}
	}
	return true
}

// Join is the generalized natural join of Figure 1: every pairwise join of
// members that does not conflict, reduced to the maximal (mutually
// incomparable) objects. For flat keyed relations it coincides with the
// classical natural join.
func Join(r, s *Relation) *Relation {
	var joined []value.Value
	for _, a := range r.elems {
		for _, b := range s.elems {
			if j, err := value.Join(a, b); err == nil {
				joined = append(joined, j)
			}
		}
	}
	return newFromCochain(value.Maximal(joined))
}

// Project restricts each member record to the given labels — with partial
// records a member simply loses the fields it has and keeps silent on those
// it lacks — and reduces the result to a cochain.
func Project(r *Relation, labels ...string) *Relation {
	want := map[string]bool{}
	for _, l := range labels {
		want[l] = true
	}
	out := New()
	for _, m := range r.elems {
		rec, ok := m.(*value.Record)
		if !ok {
			continue
		}
		p := value.NewRecord()
		rec.Each(func(l string, v value.Value) {
			if want[l] {
				p.Set(l, v)
			}
		})
		out.Insert(p)
	}
	return out
}

// Select returns the members satisfying pred, as a new relation.
func Select(r *Relation, pred func(value.Value) bool) *Relation {
	out := New()
	for _, m := range r.elems {
		if pred(m) {
			out.Insert(m)
		}
	}
	return out
}

// Union inserts every member of s into a copy of r, applying subsumption.
func Union(r, s *Relation) *Relation {
	out := New(r.elems...)
	for _, m := range s.elems {
		out.Insert(m)
	}
	return out
}

// Diff returns the members of r that are not members of s (structural
// equality), as a new relation. With partial records this is the set
// difference of the cochains, not an information-ordering operation.
func Diff(r, s *Relation) *Relation {
	out := New()
	for _, m := range r.elems {
		if !s.Contains(m) {
			out.Insert(m)
		}
	}
	return out
}

// ExtractByType returns the members whose most specific type is a subtype
// of t. The paper derives this from the join: "the type {Name: String; Age:
// Int} can be seen as a very large relation … it is meaningful to talk
// about the join of this relation with a relation R to extract all the
// objects in R whose type is a subtype" — joining o with the matching
// member of the type-relation adds no information, so the join filters R by
// conformance. This is precisely the class-extraction operation of the
// paper's earlier sections, now expressed relationally.
func ExtractByType(r *Relation, t types.Type) *Relation {
	want := types.Intern(t)
	return Select(r, func(v value.Value) bool { return value.ConformsInterned(v, want) })
}

// String renders the relation with members in canonical order.
func (r *Relation) String() string {
	keys := make([]string, len(r.elems))
	byKey := map[string]value.Value{}
	for i, m := range r.elems {
		keys[i] = value.Key(m)
		byKey[keys[i]] = m
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(",\n ")
		}
		b.WriteString(byKey[k].String())
	}
	b.WriteString("}")
	return b.String()
}

// IsCochain verifies the relation invariant: no two members are comparable.
// It exists for tests and costs O(n²).
func (r *Relation) IsCochain() bool {
	for i, a := range r.elems {
		for j, b := range r.elems {
			if i != j && value.Leq(a, b) {
				return false
			}
		}
	}
	return true
}
