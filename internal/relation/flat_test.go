package relation

import (
	"errors"
	"testing"

	"dbpl/internal/value"
)

func flatEmp() *Flat {
	f := NewFlat("Name", "Dept")
	for _, row := range [][2]string{
		{"J Doe", "Sales"}, {"M Dee", "Manuf"}, {"N Bug", "Manuf"},
	} {
		if err := f.Insert(value.Rec("Name", value.String(row[0]), "Dept", value.String(row[1]))); err != nil {
			panic(err)
		}
	}
	return f
}

func flatDept() *Flat {
	f := NewFlat("Dept", "Floor")
	for _, row := range []struct {
		d string
		n int64
	}{{"Sales", 3}, {"Manuf", 1}, {"Admin", 2}} {
		if err := f.Insert(value.Rec("Dept", value.String(row.d), "Floor", value.Int(row.n))); err != nil {
			panic(err)
		}
	}
	return f
}

func TestFlatSchemaEnforcement(t *testing.T) {
	f := NewFlat("Name", "Dept")
	cases := []*value.Record{
		value.Rec("Name", value.String("X")),                                               // missing attr
		value.Rec("Name", value.String("X"), "Dept", value.String("S"), "Z", value.Int(1)), // extra attr
		value.Rec("Name", value.String("X"), "Dept", value.Rec("D", value.String("S"))),    // non-atomic: 1NF violation
	}
	for _, c := range cases {
		if err := f.Insert(c); !errors.Is(err, ErrSchema) {
			t.Errorf("Insert(%s) err = %v, want ErrSchema", c, err)
		}
	}
	if f.Len() != 0 {
		t.Error("failed inserts must not modify the relation")
	}
}

func TestFlatSetSemantics(t *testing.T) {
	f := NewFlat("A")
	tpl := value.Rec("A", value.Int(1))
	if err := f.Insert(tpl); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(value.Rec("A", value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1 {
		t.Errorf("len = %d, want 1 (set semantics)", f.Len())
	}
	if !f.Contains(tpl) {
		t.Error("Contains failed")
	}
	if !f.Delete(tpl) || f.Len() != 0 {
		t.Error("Delete failed")
	}
	if f.Delete(tpl) {
		t.Error("second Delete should fail")
	}
}

func TestFlatNaturalJoin(t *testing.T) {
	j := NaturalJoin(flatEmp(), flatDept())
	if j.Len() != 3 {
		t.Fatalf("join = %d tuples, want 3", j.Len())
	}
	want := value.Rec("Name", value.String("N Bug"), "Dept", value.String("Manuf"), "Floor", value.Int(1))
	if !j.Contains(want) {
		t.Errorf("join missing %s; got %s", want, j)
	}
	// Admin has no employees: no dangling tuple in the result.
	admin := SelectFlat(j, func(r *value.Record) bool {
		d, _ := r.Get("Dept")
		return value.Equal(d, value.String("Admin"))
	})
	if admin.Len() != 0 {
		t.Error("natural join must drop dangling tuples")
	}
}

func TestFlatJoinDisjointSchemasIsProduct(t *testing.T) {
	a := NewFlat("A")
	b := NewFlat("B")
	_ = a.Insert(value.Rec("A", value.Int(1)))
	_ = a.Insert(value.Rec("A", value.Int(2)))
	_ = b.Insert(value.Rec("B", value.Int(10)))
	j := NaturalJoin(a, b)
	if j.Len() != 2 {
		t.Errorf("disjoint join = %d, want 2 (Cartesian product)", j.Len())
	}
}

func TestFlatProject(t *testing.T) {
	p, err := ProjectFlat(flatEmp(), "Dept")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 { // Sales, Manuf — duplicates collapse
		t.Errorf("project = %d tuples, want 2", p.Len())
	}
	if _, err := ProjectFlat(flatEmp(), "Salary"); !errors.Is(err, ErrSchema) {
		t.Errorf("projection on foreign attribute err = %v, want ErrSchema", err)
	}
}

func TestGeneralizeAgreesOnJoin(t *testing.T) {
	// On total 1NF data the generalized join coincides with the classical
	// natural join — the generalization is conservative.
	classical := NaturalJoin(flatEmp(), flatDept()).Generalize()
	generalized := Join(flatEmp().Generalize(), flatDept().Generalize())
	if !Equal(classical, generalized) {
		t.Errorf("joins disagree on flat data:\nclassical  %s\ngeneralized %s",
			classical, generalized)
	}
}

func TestGeneralizeAgreesOnProject(t *testing.T) {
	pFlat, err := ProjectFlat(flatEmp(), "Dept")
	if err != nil {
		t.Fatal(err)
	}
	pGen := Project(flatEmp().Generalize(), "Dept")
	if !Equal(pFlat.Generalize(), pGen) {
		t.Error("projections disagree on flat data")
	}
}

func TestDiffFlat(t *testing.T) {
	a := flatEmp()
	b := NewFlat("Name", "Dept")
	_ = b.Insert(value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales")))
	d, err := DiffFlat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Contains(value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales"))) {
		t.Errorf("DiffFlat = %s", d)
	}
	if _, err := DiffFlat(a, NewFlat("X")); err == nil {
		t.Error("schema mismatch should fail")
	}
	// Union − intersection identities on flat data.
	whole, err := DiffFlat(a, NewFlat("Name", "Dept"))
	if err != nil || whole.Len() != a.Len() {
		t.Errorf("a − ∅ = %v, %v", whole, err)
	}
}
