package relation

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dbpl/internal/value"
)

func TestJoinFastFigure1(t *testing.T) {
	// Below the size threshold JoinFast delegates; force the fast path by
	// inflating the figure with padding rows that join with nothing.
	r1, r2 := Figure1R1(), Figure1R2()
	for i := 0; i < 20; i++ {
		r1.Insert(value.Rec("Name", value.String(fmt.Sprintf("pad%d", i)),
			"Dept", value.String(fmt.Sprintf("PD%d", i))))
		r2.Insert(value.Rec("Dept", value.String(fmt.Sprintf("QD%d", i)),
			"Addr", value.Rec("State", value.String("ZZ"))))
	}
	slow := Join(r1, r2)
	fast := JoinFast(r1, r2)
	if !Equal(slow, fast) {
		t.Fatalf("JoinFast diverges on padded Figure 1:\nslow %s\nfast %s", slow, fast)
	}
	// The published tuples are all present.
	for _, m := range Figure1Result().Members() {
		if !fast.Contains(m) {
			t.Errorf("missing %s", m)
		}
	}
}

func TestJoinFastSmallDelegates(t *testing.T) {
	if !Equal(JoinFast(Figure1R1(), Figure1R2()), Figure1Result()) {
		t.Error("small-input delegation broke Figure 1")
	}
}

func TestQuickJoinFastEquals(t *testing.T) {
	// On random partial relations — including members silent on the join
	// attribute and non-atomic attribute values — JoinFast must equal Join.
	gen := func(rng *rand.Rand, n int) *Relation {
		r := New()
		for i := 0; i < n; i++ {
			rec := value.NewRecord()
			rec.Set("ID", value.Int(int64(i))) // keep members incomparable
			if rng.Intn(4) != 0 {              // sometimes silent on Dept
				switch rng.Intn(5) {
				case 0:
					rec.Set("Dept", value.Rec("Nested", value.Int(int64(rng.Intn(3)))))
				default:
					rec.Set("Dept", value.String(fmt.Sprintf("D%d", rng.Intn(4))))
				}
			}
			if rng.Intn(2) == 0 {
				rec.Set("X", value.Int(int64(rng.Intn(3))))
			}
			r.Insert(rec)
		}
		return r
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gen(rng, 16+rng.Intn(20))
		b := gen(rng, 16+rng.Intn(20))
		return Equal(Join(a, b), JoinFast(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinFastSharedAtomHeavy(t *testing.T) {
	// The favourable case: both sides define the attribute atomically.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(), New()
		for i := 0; i < 25; i++ {
			a.Insert(value.Rec("Name", value.String(fmt.Sprintf("E%d", i)),
				"Dept", value.String(fmt.Sprintf("D%d", rng.Intn(5)))))
		}
		for i := 0; i < 25; i++ {
			b.Insert(value.Rec("Dept", value.String(fmt.Sprintf("D%d", rng.Intn(5))),
				"Floor", value.Int(int64(i))))
		}
		return Equal(Join(a, b), JoinFast(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkJoinNaive(b *testing.B) {
	benchJoinImpl(b, Join)
}

func BenchmarkJoinHashed(b *testing.B) {
	benchJoinImpl(b, JoinFast)
}

func benchJoinImpl(b *testing.B, impl func(*Relation, *Relation) *Relation) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			emp, dept := New(), New()
			for i := 0; i < n; i++ {
				emp.Insert(value.Rec("Name", value.String(fmt.Sprintf("E%d", i)),
					"Dept", value.String(fmt.Sprintf("D%d", i%20))))
			}
			for i := 0; i < 20; i++ {
				dept.Insert(value.Rec("Dept", value.String(fmt.Sprintf("D%d", i)),
					"Addr", value.Rec("State", value.String("PA"))))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				impl(emp, dept)
			}
		})
	}
}
