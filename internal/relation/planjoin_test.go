package relation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dbpl/internal/value"
)

// genPartial builds a random partial relation: members sometimes silent on
// Dept, sometimes carrying it non-atomically — the wildcard cases the
// partition must preserve.
func genPartial(rng *rand.Rand, n int) *Relation {
	r := New()
	for i := 0; i < n; i++ {
		rec := value.NewRecord()
		rec.Set("ID", value.Int(int64(i)))
		if rng.Intn(4) != 0 {
			if rng.Intn(5) == 0 {
				rec.Set("Dept", value.Rec("Nested", value.Int(int64(rng.Intn(3)))))
			} else {
				rec.Set("Dept", value.String(fmt.Sprintf("D%d", rng.Intn(4))))
			}
		}
		r.Insert(rec)
	}
	return r
}

// TestQuickJoinPlannedEquals: under EVERY plan — nested, partition
// building left, partition building right — JoinPlanned equals the
// reference Join. The planner can therefore only affect speed, never the
// result.
func TestQuickJoinPlannedEquals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genPartial(rng, 4+rng.Intn(24))
		b := genPartial(rng, 4+rng.Intn(24))
		want := Join(a, b)
		plans := []JoinPlan{
			{},
			{Attr: "Dept", Partition: true, BuildRight: false},
			{Attr: "Dept", Partition: true, BuildRight: true},
			PlanJoin(a, b),
		}
		for _, p := range plans {
			if !Equal(want, JoinPlanned(a, b, p)) {
				t.Logf("seed %d: plan %+v diverges", seed, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPlanJoinBuildSideAndThreshold(t *testing.T) {
	big, small := New(), New()
	for i := 0; i < 60; i++ {
		big.Insert(value.Rec("Name", value.String(fmt.Sprintf("E%d", i)),
			"Dept", value.String(fmt.Sprintf("D%d", i%6))))
	}
	for i := 0; i < 8; i++ {
		small.Insert(value.Rec("Dept", value.String(fmt.Sprintf("D%d", i%6)),
			"Floor", value.Int(int64(i))))
	}
	p := PlanJoin(big, small)
	if !p.Partition {
		t.Fatalf("60×8 with a shared selective attribute should partition: %+v", p)
	}
	if !p.BuildRight {
		t.Errorf("build side should be the smaller (right) relation: %+v", p)
	}
	if q := PlanJoin(small, big); q.BuildRight {
		t.Errorf("swapped inputs: build side should be the smaller (left) relation: %+v", q)
	}

	// Tiny inputs: partitioning cannot pay for its setup.
	tiny := New()
	tiny.Insert(value.Rec("Dept", value.String("D1")))
	if p := PlanJoin(tiny, tiny); p.Partition {
		t.Errorf("1×1 join should be nested-loop: %+v", p)
	}

	// No shared atomic attribute: partitioning is impossible.
	left, right := New(), New()
	for i := 0; i < 40; i++ {
		left.Insert(value.Rec("A", value.Int(int64(i))))
		right.Insert(value.Rec("B", value.Int(int64(i))))
	}
	if p := PlanJoin(left, right); p.Partition {
		t.Errorf("disjoint attributes should plan nested-loop: %+v", p)
	}
}

func TestJoinPlanExplainRendering(t *testing.T) {
	r, s := New(), New()
	for i := 0; i < 40; i++ {
		r.Insert(value.Rec("Dept", value.String(fmt.Sprintf("D%d", i%4)), "N", value.Int(int64(i))))
		s.Insert(value.Rec("Dept", value.String(fmt.Sprintf("D%d", i%4)), "M", value.Int(int64(i))))
	}
	p := PlanJoin(r, s)
	out := p.String()
	if !strings.Contains(out, "path=partition") || !strings.Contains(out, "attr=Dept") ||
		!strings.Contains(out, "cost{") {
		t.Errorf("EXPLAIN rendering missing pieces: %q", out)
	}
	var zero JoinPlan
	if !strings.Contains(zero.String(), "path=nested") {
		t.Errorf("zero plan rendering: %q", zero.String())
	}
}
