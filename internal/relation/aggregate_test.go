package relation

import (
	"testing"

	"dbpl/internal/value"
)

func payrollGen() *Relation {
	return New(
		value.Rec("Name", value.String("E1"), "Dept", value.String("Sales"), "Salary", value.Int(100)),
		value.Rec("Name", value.String("E2"), "Dept", value.String("Sales"), "Salary", value.Int(300)),
		value.Rec("Name", value.String("E3"), "Dept", value.String("Manuf"), "Salary", value.Int(200)),
		value.Rec("Name", value.String("E4"), "Dept", value.String("Manuf")), // salary unknown
		value.Rec("Name", value.String("E5")),                                // dept unknown
	)
}

func TestGroupByCountSum(t *testing.T) {
	g, err := GroupBy(payrollGen(), []string{"Dept"},
		CountAll("N"), Sum("Total", "Salary"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 { // Sales, Manuf, and the unknown-dept group
		t.Fatalf("groups = %s", g)
	}
	find := func(dept value.Value) *value.Record {
		for _, m := range g.Members() {
			rec := m.(*value.Record)
			d, ok := rec.Get("Dept")
			if !ok && dept == nil {
				return rec
			}
			if ok && dept != nil && value.Equal(d, dept) {
				return rec
			}
		}
		t.Fatalf("group %v missing in %s", dept, g)
		return nil
	}
	sales := find(value.String("Sales"))
	if v, _ := sales.Get("N"); !value.Equal(v, value.Int(2)) {
		t.Errorf("Sales N = %s", v)
	}
	if v, _ := sales.Get("Total"); !value.Equal(v, value.Float(400)) {
		t.Errorf("Sales Total = %s", v)
	}
	manuf := find(value.String("Manuf"))
	// The member with unknown salary counts but does not contribute.
	if v, _ := manuf.Get("N"); !value.Equal(v, value.Int(2)) {
		t.Errorf("Manuf N = %s", v)
	}
	if v, _ := manuf.Get("Total"); !value.Equal(v, value.Float(200)) {
		t.Errorf("Manuf Total = %s", v)
	}
	unknown := find(nil)
	if v, _ := unknown.Get("N"); !value.Equal(v, value.Int(1)) {
		t.Errorf("unknown-dept N = %s", v)
	}
}

func TestGroupByMinMax(t *testing.T) {
	g, err := GroupBy(payrollGen(), []string{"Dept"},
		Min("Lo", "Salary"), Max("Hi", "Salary"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range g.Members() {
		rec := m.(*value.Record)
		d, hasDept := rec.Get("Dept")
		if hasDept && value.Equal(d, value.String("Sales")) {
			if lo, _ := rec.Get("Lo"); !value.Equal(lo, value.Int(100)) {
				t.Errorf("Sales Lo = %s", lo)
			}
			if hi, _ := rec.Get("Hi"); !value.Equal(hi, value.Int(300)) {
				t.Errorf("Sales Hi = %s", hi)
			}
		}
	}
	// Min over strings.
	g2, err := GroupBy(payrollGen(), nil, Min("First", "Name"))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != 1 {
		t.Fatalf("single global group expected, got %s", g2)
	}
	if v, _ := g2.Members()[0].(*value.Record).Get("First"); !value.Equal(v, value.String("E1")) {
		t.Errorf("First = %s", v)
	}
}

func TestGroupByCountAttr(t *testing.T) {
	// Count(attr) counts only members defining the attribute.
	g, err := GroupBy(payrollGen(), nil, Count("Known", "Salary"), CountAll("All"))
	if err != nil {
		t.Fatal(err)
	}
	rec := g.Members()[0].(*value.Record)
	if v, _ := rec.Get("Known"); !value.Equal(v, value.Int(3)) {
		t.Errorf("Known = %s", v)
	}
	if v, _ := rec.Get("All"); !value.Equal(v, value.Int(5)) {
		t.Errorf("All = %s", v)
	}
}

func TestGroupBySubsumesUninformativeGroups(t *testing.T) {
	// A group keyed by missing attributes whose aggregates coincide with a
	// known group is strictly less informative and is subsumed — the
	// cochain semantics of generalized relations, pinned here.
	r := New(
		value.Rec("Name", value.String("E1"), "Dept", value.String("Sales")),
		value.Rec("Name", value.String("E9")), // unknown dept, same count
	)
	g, err := GroupBy(r, []string{"Dept"}, CountAll("N"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("groups = %s, want the unknown group subsumed", g)
	}
	if !g.Contains(value.Rec("Dept", value.String("Sales"), "N", value.Int(1))) {
		t.Errorf("surviving group wrong: %s", g)
	}
}

func TestGroupByErrors(t *testing.T) {
	r := New(value.Rec("A", value.String("x"), "V", value.String("not-a-number")))
	if _, err := GroupBy(r, []string{"A"}, Sum("S", "V")); err == nil {
		t.Error("summing strings should fail")
	}
	r2 := New(
		value.Rec("A", value.Int(1), "V", value.Int(1)),
		value.Rec("A", value.Int(1), "V", value.String("x"), "W", value.Int(0)),
	)
	if _, err := GroupBy(r2, []string{"A"}, Min("M", "V")); err == nil {
		t.Error("min over mixed kinds should fail")
	}
}

func TestGroupByFlat(t *testing.T) {
	f := NewFlat("Dept", "Salary")
	for _, row := range []struct {
		d string
		s int64
	}{{"Sales", 100}, {"Sales", 300}, {"Manuf", 200}} {
		if err := f.Insert(value.Rec("Dept", value.String(row.d), "Salary", value.Int(row.s))); err != nil {
			t.Fatal(err)
		}
	}
	g, err := GroupByFlat(f, []string{"Dept"}, CountAll("N"), Sum("Total", "Salary"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	want := value.Rec("Dept", value.String("Sales"), "N", value.Int(2), "Total", value.Float(400))
	if !g.Contains(want) {
		t.Errorf("missing %s in %s", want, g)
	}
}
