package relation

import (
	"errors"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

func TestFigure1Exact(t *testing.T) {
	got := Join(Figure1R1(), Figure1R2())
	want := Figure1Result()
	if !Equal(got, want) {
		t.Fatalf("Figure 1 join mismatch:\ngot  %s\nwant %s", got, want)
	}
	if got.Len() != 4 {
		t.Errorf("Figure 1 join has %d members, want 4", got.Len())
	}
	if !got.IsCochain() {
		t.Error("join result must be a cochain")
	}
}

func TestFigure1JoinIsUpperBound(t *testing.T) {
	r1, r2 := Figure1R1(), Figure1R2()
	j := Join(r1, r2)
	if !Leq(r1, j) {
		t.Error("R1 ⊑ R1⋈R2 should hold")
	}
	if !Leq(r2, j) {
		t.Error("R2 ⊑ R1⋈R2 should hold")
	}
}

func TestFigure1Details(t *testing.T) {
	j := Join(Figure1R1(), Figure1R2())
	// N Bug (no Dept, Addr.State=MT) joins with both Manuf and Admin but
	// conflicts with Sales (WY vs MT).
	nbugs := Select(j, func(v value.Value) bool {
		n, _ := v.(*value.Record).Get("Name")
		return value.Equal(n, value.String("N Bug"))
	})
	if nbugs.Len() != 2 {
		t.Errorf("N Bug appears %d times, want 2", nbugs.Len())
	}
	for _, m := range nbugs.Members() {
		d, _ := m.(*value.Record).Get("Dept")
		if value.Equal(d, value.String("Sales")) {
			t.Error("N Bug must not join with Sales: WY conflicts with MT")
		}
	}
}

func TestInsertSubsumption(t *testing.T) {
	r := New()
	less := value.Rec("Name", value.String("J Doe"))
	more := value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales"))

	if out, err := r.Insert(less); err != nil || out != Added {
		t.Fatalf("first insert: %v, %v", out, err)
	}
	// Inserting something an existing member subsumes: redundant.
	if out, _ := r.Insert(value.Rec("Name", value.String("J Doe"))); out != Redundant {
		t.Errorf("duplicate insert outcome = %v, want redundant", out)
	}
	// Inserting something more informative: subsumes the old member.
	if out, _ := r.Insert(more); out != Subsumed {
		t.Errorf("informative insert outcome = %v, want subsumed", out)
	}
	if r.Len() != 1 || !r.Contains(more) || r.Contains(less) {
		t.Errorf("relation after subsumption = %s", r)
	}
	// Now the less informative object is redundant.
	if out, _ := r.Insert(less); out != Redundant {
		t.Error("less informative object should be redundant")
	}
	if !r.IsCochain() {
		t.Error("invariant broken")
	}
}

func TestInsertSubsumesMultiple(t *testing.T) {
	r := New(
		value.Rec("A", value.Int(1)),
		value.Rec("B", value.Int(2)),
		value.Rec("C", value.Int(3)),
	)
	big := value.Rec("A", value.Int(1), "B", value.Int(2), "D", value.Int(4))
	out, err := r.Insert(big)
	if err != nil || out != Subsumed {
		t.Fatalf("insert = %v, %v; want subsumed", out, err)
	}
	if r.Len() != 2 {
		t.Errorf("len = %d, want 2 (A and B rows subsumed, C kept)", r.Len())
	}
	if !r.Contains(big) || !r.Contains(value.Rec("C", value.Int(3))) {
		t.Errorf("wrong survivors: %s", r)
	}
}

func TestKeyedRelation(t *testing.T) {
	// "If we insist that Name is a key for Person, we cannot now place two
	// comparable objects … for if they were comparable, they would
	// necessarily have the same key."
	r := NewKeyed("Name")
	p := value.Rec("Name", value.String("J Doe"))
	e := value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales"))

	if _, err := r.Insert(p); err != nil {
		t.Fatal(err)
	}
	// Comparable with same key: subsume (this is an update).
	if out, err := r.Insert(e); err != nil || out != Subsumed {
		t.Fatalf("comparable keyed insert = %v, %v", out, err)
	}
	// Incomparable with same key: violation.
	e2 := value.Rec("Name", value.String("J Doe"), "Dept", value.String("Manuf"))
	if _, err := r.Insert(e2); !errors.Is(err, ErrKeyViolation) {
		t.Errorf("err = %v, want ErrKeyViolation", err)
	}
	// Different key: fine.
	if out, err := r.Insert(value.Rec("Name", value.String("K Smith"))); err != nil || out != Added {
		t.Errorf("distinct key insert = %v, %v", out, err)
	}
	// Missing key attribute: rejected.
	if _, err := r.Insert(value.Rec("Dept", value.String("Sales"))); !errors.Is(err, ErrNoKey) {
		t.Errorf("missing key err = %v, want ErrNoKey", err)
	}
	// Lookup by key.
	got, ok := r.Lookup(value.String("J Doe"))
	if !ok || !value.Equal(got, e) {
		t.Errorf("Lookup = %v, %v", got, ok)
	}
	if _, ok := r.Lookup(value.String("Nobody")); ok {
		t.Error("Lookup of absent key should fail")
	}
}

func TestUnkeyedAllowsObjectStyleDuplicatesOnlyIfIncomparable(t *testing.T) {
	// Without a registration tag, two identical cars collapse to one in a
	// *relation* (sets identify by intrinsic properties) — the paper's
	// incompatibility (a) between relational and object-oriented models.
	r := New()
	car := value.Rec("MakeModel", value.String("Chevvy Nova"))
	r.Insert(car)
	out, _ := r.Insert(value.Copy(car))
	if out != Redundant || r.Len() != 1 {
		t.Error("relations must identify equal objects")
	}
}

func TestDelete(t *testing.T) {
	r := New(value.Rec("A", value.Int(1)), value.Rec("B", value.Int(2)))
	if !r.Delete(value.Rec("A", value.Int(1))) {
		t.Error("Delete should find the member")
	}
	if r.Delete(value.Rec("A", value.Int(1))) {
		t.Error("second Delete should fail")
	}
	if r.Len() != 1 {
		t.Errorf("len = %d, want 1", r.Len())
	}
}

func TestProject(t *testing.T) {
	r := Figure1R1()
	p := Project(r, "Name")
	if p.Len() != 3 {
		t.Errorf("project Name: %d members, want 3", p.Len())
	}
	// Projecting onto Dept: M Dee and J Doe have depts, N Bug projects to
	// the empty record, which is subsumed by anything.
	p = Project(r, "Dept")
	if p.Len() != 2 {
		t.Errorf("project Dept = %s, want 2 members", p)
	}
	if !p.IsCochain() {
		t.Error("projection must reduce to a cochain")
	}
}

func TestSelectAndUnion(t *testing.T) {
	r1, r2 := Figure1R1(), Figure1R2()
	sales := Select(Union(r1, r2), func(v value.Value) bool {
		d, ok := v.(*value.Record).Get("Dept")
		return ok && value.Equal(d, value.String("Sales"))
	})
	if sales.Len() != 2 {
		t.Errorf("sales rows = %d, want 2", sales.Len())
	}
	u := Union(r1, r2)
	if u.Len() != 6 {
		t.Errorf("union = %d members, want 6 (all incomparable)", u.Len())
	}
	// Union applies subsumption.
	u2 := Union(New(value.Rec("A", value.Int(1))),
		New(value.Rec("A", value.Int(1), "B", value.Int(2))))
	if u2.Len() != 1 {
		t.Errorf("union with comparable members = %s", u2)
	}
}

func TestExtractByType(t *testing.T) {
	personT := types.MustParse("{Name: String}")
	deptT := types.MustParse("{Dept: String, Addr: {State: String}}")
	r := Union(Figure1R1(), Figure1R2())

	people := ExtractByType(r, personT)
	if people.Len() != 3 {
		t.Errorf("ExtractByType[Person] = %d, want 3", people.Len())
	}
	depts := ExtractByType(r, deptT)
	if depts.Len() != 2 { // Sales/WY and Manuf/MT; Admin's Addr lacks State
		t.Errorf("ExtractByType[Dept+State] = %s, want 2 members", depts)
	}
	// Equivalence with value.Conforms — the join-with-type reading.
	for _, m := range r.Members() {
		if people.Contains(m) != value.Conforms(m, personT) {
			t.Errorf("extract disagrees with conformance on %s", m)
		}
	}
}

func TestNullValueReading(t *testing.T) {
	// Zaniolo's observation: a missing field is a null. A tuple with a null
	// Dept is exactly a partial record without Dept, and join treats it as
	// "unknown, joinable with anything".
	r := New(value.Rec("Name", value.String("N Bug"))) // Dept unknown
	d := New(value.Rec("Dept", value.String("Sales")))
	j := Join(r, d)
	want := New(value.Rec("Name", value.String("N Bug"), "Dept", value.String("Sales")))
	if !Equal(j, want) {
		t.Errorf("null-extending join = %s, want %s", j, want)
	}
}

func TestJoinEmptyAndIdentity(t *testing.T) {
	r := Figure1R1()
	empty := New()
	if got := Join(r, empty); got.Len() != 0 {
		t.Errorf("join with empty relation = %d members, want 0", got.Len())
	}
	// Join with the unit relation {⊥-like empty record} is the identity.
	unit := New(value.NewRecord())
	if got := Join(r, unit); !Equal(got, r) {
		t.Errorf("join with unit = %s, want R1", got)
	}
}

func TestLeqOnRelations(t *testing.T) {
	r := New(value.Rec("Name", value.String("J Doe")))
	rp := New(
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales")),
	)
	if !Leq(r, rp) {
		t.Error("r ⊑ r' should hold")
	}
	if Leq(rp, r) {
		t.Error("r' ⊑ r should not hold")
	}
	if !Leq(r, r) {
		t.Error("⊑ should be reflexive")
	}
}

func TestDiff(t *testing.T) {
	r := New(
		value.Rec("A", value.Int(1)),
		value.Rec("B", value.Int(2)),
		value.Rec("C", value.Int(3)),
	)
	s := New(value.Rec("B", value.Int(2)), value.Rec("D", value.Int(4)))
	d := Diff(r, s)
	if d.Len() != 2 || !d.Contains(value.Rec("A", value.Int(1))) || !d.Contains(value.Rec("C", value.Int(3))) {
		t.Errorf("Diff = %s", d)
	}
	if Diff(r, r).Len() != 0 {
		t.Error("r − r should be empty")
	}
	if got := Diff(New(), r); got.Len() != 0 {
		t.Error("∅ − r should be empty")
	}
}
