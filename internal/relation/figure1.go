package relation

import "dbpl/internal/value"

// This file provides the exact data of the paper's Figure 1 — "A join of
// generalized relations" — for use by tests, the figure1 example and the
// benchmark harness.
//
//	R1 = {{Name = 'J Doe', Dept = 'Sales', Addr = {City = 'Moose'}},
//	      {Name = 'M Dee', Dept = 'Manuf'},
//	      {Name = 'N Bug', Addr = {State = 'MT'}}}
//
//	R2 = {{Dept = 'Sales', Addr = {State = 'WY'}},
//	      {Dept = 'Admin', Addr = {City = 'Billings'}},
//	      {Dept = 'Manuf', Addr = {State = 'MT'}}}
//
//	R1 ⋈ R2 =
//	     {{Name = 'J Doe', Dept = 'Sales', Addr = {City = 'Moose', State = 'WY'}},
//	      {Name = 'M Dee', Dept = 'Manuf', Addr = {State = 'MT'}},
//	      {Name = 'N Bug', Dept = 'Manuf', Addr = {State = 'MT'}},
//	      {Name = 'N Bug', Dept = 'Admin', Addr = {City = 'Billings', State = 'MT'}}}

// Figure1R1 returns the paper's relation R1.
func Figure1R1() *Relation {
	return New(
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales"),
			"Addr", value.Rec("City", value.String("Moose"))),
		value.Rec("Name", value.String("M Dee"), "Dept", value.String("Manuf")),
		value.Rec("Name", value.String("N Bug"),
			"Addr", value.Rec("State", value.String("MT"))),
	)
}

// Figure1R2 returns the paper's relation R2.
func Figure1R2() *Relation {
	return New(
		value.Rec("Dept", value.String("Sales"),
			"Addr", value.Rec("State", value.String("WY"))),
		value.Rec("Dept", value.String("Admin"),
			"Addr", value.Rec("City", value.String("Billings"))),
		value.Rec("Dept", value.String("Manuf"),
			"Addr", value.Rec("State", value.String("MT"))),
	)
}

// Figure1Result returns the paper's published join R1 ⋈ R2.
func Figure1Result() *Relation {
	return New(
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales"),
			"Addr", value.Rec("City", value.String("Moose"), "State", value.String("WY"))),
		value.Rec("Name", value.String("M Dee"), "Dept", value.String("Manuf"),
			"Addr", value.Rec("State", value.String("MT"))),
		value.Rec("Name", value.String("N Bug"), "Dept", value.String("Manuf"),
			"Addr", value.Rec("State", value.String("MT"))),
		value.Rec("Name", value.String("N Bug"), "Dept", value.String("Admin"),
			"Addr", value.Rec("City", value.String("Billings"), "State", value.String("MT"))),
	)
}
