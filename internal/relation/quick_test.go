package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dbpl/internal/value"
)

// genObject builds a random partial record over a small label pool so that
// subsumption and joins occur frequently.
func genObject(r *rand.Rand) value.Value {
	rec := value.NewRecord()
	for _, l := range []string{"A", "B", "C"} {
		switch r.Intn(3) {
		case 0:
			rec.Set(l, value.Int(int64(r.Intn(2))))
		case 1:
			rec.Set(l, value.Rec("X", value.Int(int64(r.Intn(2)))))
		}
	}
	return rec
}

// randRelation adapts a random generalized relation to testing/quick.
type randRelation struct{ R *Relation }

// Generate implements quick.Generator.
func (randRelation) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(6)
	rel := New()
	for i := 0; i < n; i++ {
		rel.Insert(genObject(r))
	}
	return reflect.ValueOf(randRelation{R: rel})
}

var quickCfg = &quick.Config{MaxCount: 300}

func TestQuickInsertPreservesCochain(t *testing.T) {
	f := func(a randRelation) bool { return a.R.IsCochain() }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIsCochainAndUpperBound(t *testing.T) {
	f := func(a, b randRelation) bool {
		j := Join(a.R, b.R)
		if !j.IsCochain() {
			return false
		}
		if j.Len() == 0 {
			return true // empty join makes no bound claim
		}
		// Every member of the join is above some member of each input.
		return Leq(a.R, j) && Leq(b.R, j)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(a, b randRelation) bool {
		return Equal(Join(a.R, b.R), Join(b.R, a.R))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectIsCochain(t *testing.T) {
	f := func(a randRelation) bool {
		return Project(a.R, "A", "B").IsCochain()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionIsCochain(t *testing.T) {
	f := func(a, b randRelation) bool {
		return Union(a.R, b.R).IsCochain()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickInsertionOrderIrrelevant(t *testing.T) {
	// A cochain reached by inserting objects in any order is the same.
	f := func(a randRelation, seed int64) bool {
		members := a.R.Members()
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		return Equal(New(members...), a.R)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyedNeverComparable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := NewKeyed("A")
		for i := 0; i < 8; i++ {
			o := genObject(rng)
			if _, ok := o.(*value.Record).Get("A"); !ok {
				continue
			}
			rel.Insert(o) // errors allowed; invariant must hold regardless
		}
		return rel.IsCochain()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
