package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

var (
	personT   = types.MustParse("{Name: String, Address: {City: String}}")
	employeeT = types.MustParse("{Name: String, Address: {City: String}, Empno: Int, Dept: String}")
	studentT  = types.MustParse("{Name: String, Address: {City: String}, StudentID: Int}")
)

func person(name, city string) *value.Record {
	return value.Rec("Name", value.String(name),
		"Address", value.Rec("City", value.String(city)))
}

func employee(name, city string, empno int, dept string) *value.Record {
	r := person(name, city)
	r.Set("Empno", value.Int(int64(empno)))
	r.Set("Dept", value.String(dept))
	return r
}

func student(name, city string, id int) *value.Record {
	r := person(name, city)
	r.Set("StudentID", value.Int(int64(id)))
	return r
}

func studentEmployee(name, city string, empno, id int, dept string) *value.Record {
	r := employee(name, city, empno, dept)
	r.Set("StudentID", value.Int(int64(id)))
	return r
}

// populate inserts a small mixed population and returns counts by kind.
func populate(db *Database) (nPerson, nEmployee, nStudent, nBoth, nOther int) {
	db.InsertValue(person("P1", "Austin"))
	db.InsertValue(person("P2", "Moose"))
	db.InsertValue(employee("E1", "Austin", 1, "Sales"))
	db.InsertValue(employee("E2", "Glasgow", 2, "Manuf"))
	db.InsertValue(employee("E3", "Philadelphia", 3, "Sales"))
	db.InsertValue(student("S1", "Austin", 100))
	db.InsertValue(studentEmployee("SE1", "Austin", 4, 101, "Admin"))
	db.InsertValue(value.Int(42))            // databases are unconstrained:
	db.InsertValue(value.String("anything")) // "we can put any dynamic value in it"
	return 2, 3, 1, 1, 2
}

func forBothStrategies(t *testing.T, f func(t *testing.T, db *Database)) {
	for _, s := range []Strategy{StrategyScan, StrategyIndexed} {
		t.Run(s.String(), func(t *testing.T) {
			f(t, New(s))
		})
	}
}

func TestGetDerivedExtents(t *testing.T) {
	forBothStrategies(t, func(t *testing.T, db *Database) {
		populate(db)
		// Get[Person] includes persons, employees, students and the
		// student-employee: 2+3+1+1 = 7.
		if got := len(db.Get(personT)); got != 7 {
			t.Errorf("Get[Person] = %d objects, want 7", got)
		}
		if got := len(db.Get(employeeT)); got != 4 {
			t.Errorf("Get[Employee] = %d objects, want 4", got)
		}
		if got := len(db.Get(studentT)); got != 2 {
			t.Errorf("Get[Student] = %d objects, want 2", got)
		}
		if got := len(db.Get(types.Int)); got != 1 {
			t.Errorf("Get[Int] = %d objects, want 1", got)
		}
	})
}

func TestGetHierarchyContainment(t *testing.T) {
	// "getPersons will always return a larger list than getEmployees."
	forBothStrategies(t, func(t *testing.T, db *Database) {
		populate(db)
		persons := db.Get(personT)
		index := map[string]bool{}
		for _, p := range persons {
			index[value.Key(p.Value)] = true
		}
		for _, e := range db.Get(employeeT) {
			if !index[value.Key(e.Value)] {
				t.Errorf("employee %s missing from Get[Person]", e.Value)
			}
		}
	})
}

func TestGetWitnesses(t *testing.T) {
	forBothStrategies(t, func(t *testing.T, db *Database) {
		populate(db)
		for _, p := range db.Get(personT) {
			// Each witness is a subtype of the requested type …
			if !types.Subtype(p.Witness, personT) {
				t.Errorf("witness %s is not ≤ Person", p.Witness)
			}
			// … and opening at the request type always succeeds.
			if _, err := p.Open(personT); err != nil {
				t.Errorf("Open at request type failed: %v", err)
			}
		}
		// An employee package opens at Employee, a plain person doesn't.
		opened := 0
		for _, p := range db.Get(personT) {
			if _, err := p.Open(employeeT); err == nil {
				opened++
			}
		}
		if opened != 4 {
			t.Errorf("%d packages opened at Employee, want 4", opened)
		}
	})
}

func TestStrategiesAgree(t *testing.T) {
	scan := New(StrategyScan)
	idx := New(StrategyIndexed)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		var v value.Value
		switch rng.Intn(4) {
		case 0:
			v = person(fmt.Sprintf("P%d", i), "Austin")
		case 1:
			v = employee(fmt.Sprintf("E%d", i), "Moose", i, "Sales")
		case 2:
			v = student(fmt.Sprintf("S%d", i), "Glasgow", i)
		default:
			v = value.Int(int64(i))
		}
		scan.InsertValue(v)
		idx.InsertValue(v)
	}
	for _, q := range []types.Type{personT, employeeT, studentT, types.Int, types.Top} {
		a, b := scan.Get(q), idx.Get(q)
		if len(a) != len(b) {
			t.Fatalf("strategies disagree on %s: %d vs %d", q, len(a), len(b))
		}
		for i := range a {
			if !value.Equal(a[i].Value, b[i].Value) {
				t.Fatalf("strategies disagree at %d on %s", i, q)
			}
		}
	}
}

func TestIndexedExtentMaintainedAcrossInserts(t *testing.T) {
	db := New(StrategyIndexed)
	populate(db)
	before := len(db.Get(employeeT)) // builds the extent
	db.InsertValue(employee("E9", "Austin", 9, "Sales"))
	db.InsertValue(person("P9", "Austin")) // must NOT enter the Employee extent
	after := len(db.Get(employeeT))
	if after != before+1 {
		t.Errorf("extent after inserts = %d, want %d", after, before+1)
	}
	if n := len(db.ExtentTypes()); n != 1 {
		t.Errorf("maintained extents = %d, want 1", n)
	}
}

func TestRemove(t *testing.T) {
	forBothStrategies(t, func(t *testing.T, db *Database) {
		populate(db)
		d := db.InsertValue(employee("Gone", "X", 99, "Sales"))
		before := len(db.Get(employeeT))
		if !db.Remove(d) {
			t.Fatal("Remove reported absence")
		}
		if db.Remove(d) {
			t.Error("second Remove should report absence")
		}
		if got := len(db.Get(employeeT)); got != before-1 {
			t.Errorf("Get after remove = %d, want %d", got, before-1)
		}
	})
}

func TestGetTopReturnsEverything(t *testing.T) {
	forBothStrategies(t, func(t *testing.T, db *Database) {
		populate(db)
		if got := len(db.Get(types.Top)); got != db.Len() {
			t.Errorf("Get[Top] = %d, want %d", got, db.Len())
		}
	})
}

func TestCount(t *testing.T) {
	forBothStrategies(t, func(t *testing.T, db *Database) {
		populate(db)
		if db.Count(employeeT) != len(db.Get(employeeT)) {
			t.Error("Count disagrees with Get before the extent exists")
		}
		// After Get builds an extent (indexed mode), Count still agrees —
		// including after further inserts.
		db.InsertValue(employee("Late", "X", 77, "Sales"))
		if db.Count(employeeT) != len(db.Get(employeeT)) {
			t.Error("Count disagrees with Get after insert")
		}
	})
}

func TestGetAtDeclaredType(t *testing.T) {
	// A value inserted at a declared supertype is found at that label, not
	// at its structural type: the static view governs.
	db := New(StrategyScan)
	emp := employee("E1", "Austin", 1, "Sales")
	d, err := dynamic.MakeAt(emp, personT)
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(d)
	if got := len(db.Get(personT)); got != 1 {
		t.Errorf("Get[Person] = %d, want 1", got)
	}
	if got := len(db.Get(employeeT)); got != 0 {
		t.Errorf("Get[Employee] = %d, want 0 (value was injected at Person)", got)
	}
}

func TestGetTypeSignature(t *testing.T) {
	want := types.MustParse("forall t . List[Dynamic] -> List[exists u <= t . u]")
	if !types.Equal(GetType, want) {
		t.Errorf("GetType = %s, want %s", GetType, want)
	}
}

func TestSetStrategyResets(t *testing.T) {
	db := New(StrategyIndexed)
	populate(db)
	db.Get(personT)
	if len(db.ExtentTypes()) != 1 {
		t.Fatal("extent not built")
	}
	db.SetStrategy(StrategyScan)
	if len(db.ExtentTypes()) != 0 {
		t.Error("extents should be dropped on strategy switch")
	}
	if got := len(db.Get(personT)); got != 7 {
		t.Errorf("scan after switch = %d, want 7", got)
	}
}

func TestObjectIdentityCoexistence(t *testing.T) {
	// "there is no reason why we should not allow two comparable objects to
	// co-exist": the university lot with two identical cars.
	db := New(StrategyScan)
	car := value.Rec("MakeModel", value.String("Chevvy Nova"))
	db.InsertValue(car)
	db.InsertValue(value.Copy(car))
	carT := types.MustParse("{MakeModel: String}")
	if got := len(db.Get(carT)); got != 2 {
		t.Errorf("Get[Car] = %d, want 2 — databases of objects admit duplicates", got)
	}
}

func TestForkHypotheticalState(t *testing.T) {
	// "One may want to experiment with hypothetical states of the
	// database": a fork evolves independently while sharing objects.
	forBothStrategies(t, func(t *testing.T, db *Database) {
		populate(db)
		before := len(db.Get(employeeT))
		db.Get(personT) // build extents in indexed mode

		fork := db.Fork()
		fork.InsertValue(employee("Hypothetical", "Nowhere", 99, "Sales"))
		d := fork.All()[0]
		fork.Remove(d)

		// The original is untouched.
		if got := len(db.Get(employeeT)); got != before {
			t.Errorf("original changed by fork: %d vs %d", got, before)
		}
		if got := len(fork.Get(employeeT)); got != before+1 {
			t.Errorf("fork = %d employees, want %d", got, before+1)
		}
		if fork.Len() != db.Len() { // +1 insert, -1 remove
			t.Errorf("fork length %d, original %d", fork.Len(), db.Len())
		}
		// Structure sharing: the same *Dynamic pointers appear in both.
		if db.All()[1] != fork.All()[0] {
			t.Error("fork should share member objects")
		}
	})
}

func TestConcurrentInsertAndGet(t *testing.T) {
	db := New(StrategyIndexed)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			db.InsertValue(employee(fmt.Sprintf("E%d", i), "Austin", i, "Sales"))
		}
	}()
	for i := 0; i < 200; i++ {
		db.Get(employeeT)
	}
	<-done
	if got := len(db.Get(employeeT)); got != 200 {
		t.Errorf("after concurrent use: %d employees, want 200", got)
	}
}
