// Package core implements the paper's primary contribution: a database that
// is nothing but a collection of dynamic values, together with a single
// generic extraction function
//
//	Get : forall t . Database -> List[exists t' <= t . t']
//
// that returns every object in the database whose runtime type is a subtype
// of the requested type. Extents are therefore *derived from the type
// hierarchy* instead of being tied to a distinguished class construct:
// Get[Person] always contains Get[Employee], with no class declarations at
// all. Persistence is provided separately (package persist), completing the
// separation of type, extent and persistence the paper argues for.
//
// The paper discusses the efficiency of this design: a naive implementation
// "has to traverse the whole database" and "check the structure of each
// value". The package provides both that naive strategy (StrategyScan) and
// the remedy the paper sketches — "a set of (statically) typed lists with
// appropriate structure sharing" (StrategyIndexed), which maintains shared
// per-type extents incrementally. The two are interchangeable behind the
// same Get (and the Getter interface), which is the ablation of experiment
// E2.
//
// # Engine
//
// Storage is sharded: members live in numShards shards, each publishing an
// immutable copy-on-write slice of entries through an atomic pointer. Get
// never takes a lock — it snapshots every shard's published slice, tests
// candidates against the interned target type (a pointer-keyed cache hit per
// distinct member type), and restores insertion order by a global sequence
// number carried on each entry. Inserts contend only on their target shard.
// StrategyScan fans the filter across shards with a bounded worker pool
// (SetScanWorkers); StrategyIndexed maintains per-shard extents, themselves
// COW slices, so an indexed Get is lock-free once the extent exists. Fork is
// O(shards): both databases keep the published slices, marked frozen so the
// next writer on either side copies instead of appending in place.
//
// Entries are assigned to shards by interned-type hash mixed with a global
// placement counter. Hash alone would be faithful "partitioned by type", but
// a database holding a handful of hot types — the common case — would
// degenerate to a handful of hot shards; mixing the counter spreads each
// type's members round-robin over all shards. The insertion-order sequence
// number is a separate counter taken under the shard lock, which keeps every
// shard slice seq-ascending and lets reads restore global order with a k-way
// merge instead of a sort. See docs/ARCHITECTURE.md.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Packed is an element of Get's result list: a value packaged with the
// witness type at which it lives in the database. It is the concrete
// rendering of the existential type exists t' <= t . t' — "all we know is
// that we can perform on it any operation associated with the type t".
type Packed struct {
	Value   value.Value
	Witness types.Type
}

// String renders the package with its witness.
func (p Packed) String() string {
	return fmt.Sprintf("pack(%s : %s)", p.Value, p.Witness)
}

// Open reveals the packed value at the requested type; it fails unless the
// witness is a subtype of want. This mirrors opening an existential package
// at its bound.
func (p Packed) Open(want types.Type) (value.Value, error) {
	if !types.Subtype(p.Witness, want) {
		return nil, &dynamic.CoerceError{Have: p.Witness, Want: want}
	}
	return p.Value, nil
}

// Getter is the extraction interface shared by every Get implementation —
// the two Database strategies here and any future backend. DESIGN.md §6
// discusses the ablation between its implementations.
type Getter interface {
	// Get returns an existential package for every stored object whose type
	// is a subtype of t, in insertion order.
	Get(t types.Type) []Packed
}

var _ Getter = (*Database)(nil)

// Strategy selects how Get locates objects.
type Strategy int

const (
	// StrategyScan is the paper's first solution: traverse the whole
	// database interrogating each dynamic's type. Cost ∝ database size.
	StrategyScan Strategy = iota
	// StrategyIndexed maintains per-type extents with structure sharing:
	// the first Get at a type pays one scan, after which inserts keep the
	// extent current and Get costs ∝ result size.
	StrategyIndexed
)

// String returns the strategy's name.
func (s Strategy) String() string {
	switch s {
	case StrategyScan:
		return "scan"
	case StrategyIndexed:
		return "indexed"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

const (
	numShards = 16
	shardMask = numShards - 1

	// scanParallelMin is the database size below which a parallel scan is
	// not worth the goroutine handoff.
	scanParallelMin = 1024
)

// entry is one stored member: the dynamic plus the database-wide sequence
// number that recovers insertion order after a multi-shard merge.
type entry struct {
	d   *dynamic.Dynamic
	seq uint64
}

// cowSlice publishes an immutable slice of entries through an atomic
// pointer. Readers load the pointer and iterate with no lock; writers
// (holding the owning shard's mutex) either append in place — safe when the
// backing array has spare capacity and is not shared with a fork, since
// published headers never reach past their own length — or copy.
type cowSlice struct {
	ptr atomic.Pointer[[]entry]
	// frozen marks the backing array as shared with a forked database, so
	// the next append must copy. Guarded by the owning shard's mutex.
	frozen bool
}

// load returns the published slice. Safe without the shard mutex.
func (c *cowSlice) load() []entry {
	if p := c.ptr.Load(); p != nil {
		return *p
	}
	return nil
}

// appendLocked publishes cur+e. Caller holds the owning shard's mutex.
func (c *cowSlice) appendLocked(e entry) {
	cur := c.load()
	if !c.frozen && cap(cur) > len(cur) {
		next := append(cur, e)
		c.ptr.Store(&next)
		return
	}
	next := make([]entry, len(cur), len(cur)*2+8)
	copy(next, cur)
	next = append(next, e)
	c.ptr.Store(&next)
	c.frozen = false
}

// removeLocked publishes the slice without the entry holding d, reporting
// whether it was present. Always copies. Caller holds the shard's mutex.
func (c *cowSlice) removeLocked(d *dynamic.Dynamic) bool {
	cur := c.load()
	for i := range cur {
		if cur[i].d == d {
			next := make([]entry, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			c.ptr.Store(&next)
			c.frozen = false
			return true
		}
	}
	return false
}

// shardExtent is one shard's slice of a maintained extent: the shard members
// conforming to the extent's type, sharing *dynamic.Dynamic pointers with
// the member list — the "appropriate structure sharing" of the paper.
type shardExtent struct {
	in    *types.Interned
	items cowSlice
}

// shard is one partition of the database. The mutex serializes writers;
// readers go through the atomic pointers only.
type shard struct {
	mu      sync.Mutex
	items   cowSlice
	extents atomic.Pointer[map[*types.Interned]*shardExtent]
}

// extentsLoad returns the shard's extent map (possibly empty, never nil to
// index). The map itself is immutable; writers replace it wholesale.
func (sh *shard) extentsLoad() map[*types.Interned]*shardExtent {
	if p := sh.extents.Load(); p != nil {
		return *p
	}
	return nil
}

// Database is an unconstrained, heterogeneous collection of dynamic values
// — "we can put any dynamic value in it". Order of insertion is preserved.
// A Database is safe for concurrent use; Get never blocks on writers.
type Database struct {
	strategy atomic.Int32
	// seq numbers entries in insertion order. It is taken while holding the
	// receiving shard's mutex, so each shard's slice is seq-ascending and
	// reads can restore global order with a k-way merge.
	seq atomic.Uint64
	// place spreads consecutive inserts over the shards (mixed with the type
	// hash in shardIndex). It is a separate counter from seq because the
	// shard must be chosen before its lock can be taken.
	place   atomic.Uint64
	workers atomic.Int32
	shards  [numShards]shard
}

// New returns an empty database using the given strategy.
func New(strategy Strategy) *Database {
	db := &Database{}
	db.strategy.Store(int32(strategy))
	empty := map[*types.Interned]*shardExtent{}
	for i := range db.shards {
		db.shards[i].extents.Store(&empty)
	}
	return db
}

// GetType is the Cardelli–Wegner type of the generic Get function itself,
//
//	forall t . List[Dynamic] -> List[exists u <= t . u]
//
// which the paper writes ∀t. Database → List[∃t' ≤ t]. It is exported so
// callers (and tests) can exhibit that the extraction function has a single
// static type for every instantiation.
var GetType = types.NewForAll("t", nil,
	types.NewFunc(
		[]types.Type{types.NewList(types.Dynamic)},
		types.NewList(types.NewExists("u", types.NewVar("t"), types.NewVar("u"))),
	))

// Strategy reports the database's current strategy.
func (db *Database) Strategy() Strategy {
	return Strategy(db.strategy.Load())
}

// SetStrategy switches strategies. Switching to StrategyScan drops all
// maintained extents; switching to StrategyIndexed starts with none (they
// are built lazily on first Get).
func (db *Database) SetStrategy(s Strategy) {
	db.strategy.Store(int32(s))
	empty := map[*types.Interned]*shardExtent{}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		sh.extents.Store(&empty)
		sh.mu.Unlock()
	}
}

// SetScanWorkers bounds the worker pool a StrategyScan Get fans out over
// the shards. n <= 0 restores the default, min(GOMAXPROCS, shard count);
// n == 1 forces a sequential scan. Small databases scan sequentially
// regardless.
func (db *Database) SetScanWorkers(n int) { db.workers.Store(int32(n)) }

func (db *Database) scanWorkerCount() int {
	n := int(db.workers.Load())
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > numShards {
		n = numShards
	}
	return n
}

// shardIndex picks the shard for an entry: interned-type hash mixed with the
// placement counter, so one hot type still spreads over every shard (see the
// package comment).
func shardIndex(h, place uint64) int { return int((h + place) & shardMask) }

// Len reports the number of objects in the database.
func (db *Database) Len() int {
	n := 0
	for i := range db.shards {
		n += len(db.shards[i].items.load())
	}
	return n
}

// Insert adds a dynamic value to the database.
func (db *Database) Insert(d *dynamic.Dynamic) {
	sh := &db.shards[shardIndex(d.Interned().Hash(), db.place.Add(1))]
	sh.mu.Lock()
	e := entry{d: d, seq: db.seq.Add(1)}
	sh.items.appendLocked(e)
	for in, ext := range sh.extentsLoad() {
		if d.IsInterned(in) {
			ext.items.appendLocked(e)
		}
	}
	sh.mu.Unlock()
}

// InsertValue wraps v in a dynamic at its most specific type and inserts it.
// It returns the dynamic so callers can later Remove it.
func (db *Database) InsertValue(v value.Value) *dynamic.Dynamic {
	d := dynamic.Make(v)
	db.Insert(d)
	return d
}

// Remove deletes the given dynamic (by identity), reporting whether it was
// present.
func (db *Database) Remove(d *dynamic.Dynamic) bool {
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		if sh.items.removeLocked(d) {
			for _, ext := range sh.extentsLoad() {
				ext.items.removeLocked(d)
			}
			sh.mu.Unlock()
			return true
		}
		sh.mu.Unlock()
	}
	return false
}

// snapshot loads every shard's published slice, returning the total count.
func (db *Database) snapshot(snaps *[numShards][]entry) int {
	total := 0
	for i := range db.shards {
		snaps[i] = db.shards[i].items.load()
		total += len(snaps[i])
	}
	return total
}

// mergeBySeq restores insertion order across per-shard entry slices.
// Sequence numbers are assigned under the shard lock, so each part is already
// seq-ascending and a tree of two-way merges suffices — no comparison sort,
// no reflection-based swapping on the Get hot path. The result may alias an
// input slice (when only one shard has matches); all inputs and the result
// are immutable by the COW discipline.
func mergeBySeq(parts [][]entry, total int) []entry {
	live, last := 0, -1
	for i := range parts {
		if len(parts[i]) > 0 {
			live, last = live+1, i
		}
	}
	if live == 0 {
		return nil
	}
	if live == 1 {
		return parts[last]
	}
	// Pairwise merge rounds over an even-padded slot list, ping-ponging
	// between two flat buffers so each round's outputs never alias its
	// inputs. Empty slots merge as plain copies, so no odd-carry case exists
	// and the whole merge costs two buffer allocations.
	cur := make([][]entry, len(parts), len(parts)+1)
	copy(cur, parts)
	if len(cur)%2 == 1 {
		cur = append(cur, nil)
	}
	buf, alt := make([]entry, 0, total), make([]entry, 0, total)
	for len(cur) > 1 {
		dst := buf[:0]
		next := cur[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			start := len(dst)
			dst = merge2(dst, cur[i], cur[i+1])
			next = append(next, dst[start:len(dst):len(dst)])
		}
		cur = next
		buf, alt = alt, dst
	}
	return cur[0]
}

// merge2 appends the seq-ordered merge of a and b (each seq-ascending) to dst.
func merge2(dst, a, b []entry) []entry {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].seq <= b[j].seq {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// All returns the database contents in insertion order.
func (db *Database) All() []*dynamic.Dynamic {
	var snaps [numShards][]entry
	total := db.snapshot(&snaps)
	merged := mergeBySeq(snaps[:], total)
	out := make([]*dynamic.Dynamic, len(merged))
	for i, e := range merged {
		out[i] = e.d
	}
	return out
}

// filterEntries keeps the entries whose carried type is a subtype of want.
// memo keys verdicts by the candidate's interned handle, so a shard of
// mostly-repeated member types costs one map hit per member after the first
// occurrence of each type.
func filterEntries(snap []entry, want *types.Interned, memo map[*types.Interned]bool) []entry {
	var out []entry
	for _, e := range snap {
		in := e.d.Interned()
		v, ok := memo[in]
		if !ok {
			v = types.SubtypeInterned(in, want)
			memo[in] = v
		}
		if v {
			out = append(out, e)
		}
	}
	return out
}

func packEntries(es []entry) []Packed {
	out := make([]Packed, len(es))
	for i, e := range es {
		out[i] = Packed{Value: e.d.Value(), Witness: e.d.Type()}
	}
	return out
}

// Get is the generic extraction function: it returns, in insertion order,
// an existential package for every object whose type is a subtype of t.
// Get[Employee] ⊆ Get[Person] holds for every database because Employee ≤
// Person — the class hierarchy is derived from the type hierarchy. Get
// takes no locks beyond (for the first indexed Get at a type) the per-shard
// mutexes used to install the missing extents.
func (db *Database) Get(t types.Type) []Packed {
	want := types.Intern(t)
	if db.Strategy() == StrategyIndexed {
		return db.getIndexed(want)
	}
	return db.getScan(want)
}

func (db *Database) getScan(want *types.Interned) []Packed {
	var snaps [numShards][]entry
	total := db.snapshot(&snaps)
	var matches [numShards][]entry
	workers := db.scanWorkerCount()
	if workers <= 1 || total < scanParallelMin {
		memo := map[*types.Interned]bool{}
		for i := range snaps {
			matches[i] = filterEntries(snaps[i], want, memo)
		}
	} else {
		var next atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				memo := map[*types.Interned]bool{}
				for {
					i := int(next.Add(1)) - 1
					if i >= numShards {
						return
					}
					matches[i] = filterEntries(snaps[i], want, memo)
				}
			}()
		}
		wg.Wait()
	}
	found := 0
	for i := range matches {
		found += len(matches[i])
	}
	return packEntries(mergeBySeq(matches[:], found))
}

func (db *Database) getIndexed(want *types.Interned) []Packed {
	parts := make([][]entry, 0, numShards)
	found := 0
	for i := range db.shards {
		sh := &db.shards[i]
		ext := sh.extentsLoad()[want]
		if ext == nil {
			ext = sh.buildExtent(want)
		}
		p := ext.items.load()
		parts = append(parts, p)
		found += len(p)
	}
	return packEntries(mergeBySeq(parts, found))
}

// buildExtent installs (or finds, if a racing Get won) the shard's extent
// for the interned type, scanning the shard's members once.
func (sh *shard) buildExtent(want *types.Interned) *shardExtent {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := sh.extentsLoad()
	if ext, ok := old[want]; ok {
		return ext
	}
	ext := &shardExtent{in: want}
	memo := map[*types.Interned]bool{}
	for _, e := range filterEntries(sh.items.load(), want, memo) {
		ext.items.appendLocked(e)
	}
	next := make(map[*types.Interned]*shardExtent, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[want] = ext
	sh.extents.Store(&next)
	return ext
}

// GetValues is Get without the witnesses, for callers that only need the
// values.
func (db *Database) GetValues(t types.Type) []value.Value {
	ps := db.Get(t)
	out := make([]value.Value, len(ps))
	for i, p := range ps {
		out[i] = p.Value
	}
	return out
}

// Count returns the number of objects whose type is a subtype of t without
// materializing the result list. A maintained extent answers its shard in
// O(1); shards without one are scanned.
func (db *Database) Count(t types.Type) int {
	want := types.Intern(t)
	indexed := db.Strategy() == StrategyIndexed
	memo := map[*types.Interned]bool{}
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		if indexed {
			if ext, ok := sh.extentsLoad()[want]; ok {
				n += len(ext.items.load())
				continue
			}
		}
		n += len(filterEntries(sh.items.load(), want, memo))
	}
	return n
}

// Fork returns an independent database with the same contents. The two
// databases share the member objects (structure sharing) but their
// memberships evolve separately — this supports the paper's case for
// multiple extents per type: "one may want to experiment with hypothetical
// states of the database", which a unique type-coupled extent cannot
// express. Fork is O(shards): the published slices are kept by both sides
// and marked frozen, so whichever database appends next copies then.
func (db *Database) Fork() *Database {
	out := New(db.Strategy())
	for i := range db.shards {
		sh := &db.shards[i]
		osh := &out.shards[i]
		sh.mu.Lock()
		osh.items.ptr.Store(sh.items.ptr.Load())
		osh.items.frozen = true
		sh.items.frozen = true
		if m := sh.extentsLoad(); len(m) > 0 {
			nm := make(map[*types.Interned]*shardExtent, len(m))
			for in, ext := range m {
				ext.items.frozen = true
				ne := &shardExtent{in: in}
				ne.items.ptr.Store(ext.items.ptr.Load())
				ne.items.frozen = true
				nm[in] = ne
			}
			osh.extents.Store(&nm)
		}
		sh.mu.Unlock()
	}
	out.seq.Store(db.seq.Load())
	out.place.Store(db.place.Load())
	return out
}

// ExtentTypes reports the types for which maintained extents currently
// exist (StrategyIndexed only); useful for inspection and tests.
func (db *Database) ExtentTypes() []types.Type {
	seen := map[*types.Interned]bool{}
	var out []types.Type
	for i := range db.shards {
		for in := range db.shards[i].extentsLoad() {
			if !seen[in] {
				seen[in] = true
				out = append(out, in.Type())
			}
		}
	}
	return out
}
