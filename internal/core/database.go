// Package core implements the paper's primary contribution: a database that
// is nothing but a collection of dynamic values, together with a single
// generic extraction function
//
//	Get : forall t . Database -> List[exists t' <= t . t']
//
// that returns every object in the database whose runtime type is a subtype
// of the requested type. Extents are therefore *derived from the type
// hierarchy* instead of being tied to a distinguished class construct:
// Get[Person] always contains Get[Employee], with no class declarations at
// all. Persistence is provided separately (package persist), completing the
// separation of type, extent and persistence the paper argues for.
//
// The paper discusses the efficiency of this design: a naive implementation
// "has to traverse the whole database" and "check the structure of each
// value". The package provides both that naive strategy (StrategyScan) and
// the remedy the paper sketches — "a set of (statically) typed lists with
// appropriate structure sharing" (StrategyIndexed), which maintains shared
// per-type extents incrementally. The two are interchangeable behind the
// same Get, which is the ablation of experiment E2.
package core

import (
	"fmt"
	"sync"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Packed is an element of Get's result list: a value packaged with the
// witness type at which it lives in the database. It is the concrete
// rendering of the existential type exists t' <= t . t' — "all we know is
// that we can perform on it any operation associated with the type t".
type Packed struct {
	Value   value.Value
	Witness types.Type
}

// String renders the package with its witness.
func (p Packed) String() string {
	return fmt.Sprintf("pack(%s : %s)", p.Value, p.Witness)
}

// Open reveals the packed value at the requested type; it fails unless the
// witness is a subtype of want. This mirrors opening an existential package
// at its bound.
func (p Packed) Open(want types.Type) (value.Value, error) {
	if !types.Subtype(p.Witness, want) {
		return nil, &dynamic.CoerceError{Have: p.Witness, Want: want}
	}
	return p.Value, nil
}

// Strategy selects how Get locates objects.
type Strategy int

const (
	// StrategyScan is the paper's first solution: traverse the whole
	// database interrogating each dynamic's type. Cost ∝ database size.
	StrategyScan Strategy = iota
	// StrategyIndexed maintains per-type extents with structure sharing:
	// the first Get at a type pays one scan, after which inserts keep the
	// extent current and Get costs ∝ result size.
	StrategyIndexed
)

// String returns the strategy's name.
func (s Strategy) String() string {
	switch s {
	case StrategyScan:
		return "scan"
	case StrategyIndexed:
		return "indexed"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// extent is a maintained list of the database members conforming to a type.
// The slices share the same *dynamic.Dynamic pointers as the main list —
// the "appropriate structure sharing" of the paper.
type extent struct {
	typ   types.Type
	items []*dynamic.Dynamic
}

// Database is an unconstrained, heterogeneous collection of dynamic values
// — "we can put any dynamic value in it". Order of insertion is preserved.
// A Database is safe for concurrent use.
type Database struct {
	mu       sync.RWMutex
	items    []*dynamic.Dynamic
	strategy Strategy
	extents  map[string]*extent // types.Key -> extent
}

// New returns an empty database using the given strategy.
func New(strategy Strategy) *Database {
	return &Database{strategy: strategy, extents: map[string]*extent{}}
}

// GetType is the Cardelli–Wegner type of the generic Get function itself,
//
//	forall t . List[Dynamic] -> List[exists u <= t . u]
//
// which the paper writes ∀t. Database → List[∃t' ≤ t]. It is exported so
// callers (and tests) can exhibit that the extraction function has a single
// static type for every instantiation.
var GetType = types.NewForAll("t", nil,
	types.NewFunc(
		[]types.Type{types.NewList(types.Dynamic)},
		types.NewList(types.NewExists("u", types.NewVar("t"), types.NewVar("u"))),
	))

// Strategy reports the database's current strategy.
func (db *Database) Strategy() Strategy {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.strategy
}

// SetStrategy switches strategies. Switching to StrategyScan drops all
// maintained extents; switching to StrategyIndexed starts with none (they
// are built lazily on first Get).
func (db *Database) SetStrategy(s Strategy) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.strategy = s
	db.extents = map[string]*extent{}
}

// Len reports the number of objects in the database.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.items)
}

// Insert adds a dynamic value to the database.
func (db *Database) Insert(d *dynamic.Dynamic) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.items = append(db.items, d)
	for _, ext := range db.extents {
		if d.Is(ext.typ) {
			ext.items = append(ext.items, d)
		}
	}
}

// InsertValue wraps v in a dynamic at its most specific type and inserts it.
// It returns the dynamic so callers can later Remove it.
func (db *Database) InsertValue(v value.Value) *dynamic.Dynamic {
	d := dynamic.Make(v)
	db.Insert(d)
	return d
}

// Remove deletes the given dynamic (by identity), reporting whether it was
// present.
func (db *Database) Remove(d *dynamic.Dynamic) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	found := false
	for i, it := range db.items {
		if it == d {
			db.items = append(db.items[:i], db.items[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for _, ext := range db.extents {
		for i, it := range ext.items {
			if it == d {
				ext.items = append(ext.items[:i], ext.items[i+1:]...)
				break
			}
		}
	}
	return true
}

// All returns the database contents in insertion order.
func (db *Database) All() []*dynamic.Dynamic {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]*dynamic.Dynamic(nil), db.items...)
}

// Get is the generic extraction function: it returns, in insertion order,
// an existential package for every object whose type is a subtype of t.
// Get[Employee] ⊆ Get[Person] holds for every database because Employee ≤
// Person — the class hierarchy is derived from the type hierarchy.
func (db *Database) Get(t types.Type) []Packed {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch db.strategy {
	case StrategyIndexed:
		key := types.Key(t)
		ext, ok := db.extents[key]
		if !ok {
			ext = &extent{typ: t}
			for _, d := range db.items {
				if d.Is(t) {
					ext.items = append(ext.items, d)
				}
			}
			db.extents[key] = ext
		}
		out := make([]Packed, len(ext.items))
		for i, d := range ext.items {
			out[i] = Packed{Value: d.Value(), Witness: d.Type()}
		}
		return out
	default:
		var out []Packed
		for _, d := range db.items {
			if d.Is(t) {
				out = append(out, Packed{Value: d.Value(), Witness: d.Type()})
			}
		}
		return out
	}
}

// GetValues is Get without the witnesses, for callers that only need the
// values.
func (db *Database) GetValues(t types.Type) []value.Value {
	ps := db.Get(t)
	out := make([]value.Value, len(ps))
	for i, p := range ps {
		out[i] = p.Value
	}
	return out
}

// Count returns the number of objects whose type is a subtype of t without
// materializing the result list. A maintained extent answers in O(1).
func (db *Database) Count(t types.Type) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.strategy == StrategyIndexed {
		if ext, ok := db.extents[types.Key(t)]; ok {
			return len(ext.items)
		}
	}
	n := 0
	for _, d := range db.items {
		if d.Is(t) {
			n++
		}
	}
	return n
}

// Fork returns an independent database with the same contents. The two
// databases share the member objects (structure sharing) but their
// memberships evolve separately — this supports the paper's case for
// multiple extents per type: "one may want to experiment with hypothetical
// states of the database", which a unique type-coupled extent cannot
// express.
func (db *Database) Fork() *Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := New(db.strategy)
	out.items = append([]*dynamic.Dynamic(nil), db.items...)
	for k, e := range db.extents {
		out.extents[k] = &extent{typ: e.typ, items: append([]*dynamic.Dynamic(nil), e.items...)}
	}
	return out
}

// ExtentTypes reports the types for which maintained extents currently
// exist (StrategyIndexed only); useful for inspection and tests.
func (db *Database) ExtentTypes() []types.Type {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]types.Type, 0, len(db.extents))
	for _, e := range db.extents {
		out = append(out, e.typ)
	}
	return out
}
