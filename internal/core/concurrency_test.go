package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// TestStressParallelInsertGetFork hammers one database from three kinds of
// goroutine at once — inserters, getters and forkers — under both
// strategies. Run with -race; the assertions here are the invariants that
// survive interleaving: Get results are always well-formed members, forks
// are consistent prefixes plus nothing foreign, and the final state is
// exactly what was inserted.
func TestStressParallelInsertGetFork(t *testing.T) {
	for _, strat := range []Strategy{StrategyScan, StrategyIndexed} {
		t.Run(strat.String(), func(t *testing.T) {
			db := New(strat)
			const (
				inserters   = 4
				perInserter = 300
				getters     = 4
				forkers     = 2
			)
			var writers, readers sync.WaitGroup
			done := make(chan struct{})
			for g := 0; g < inserters; g++ {
				writers.Add(1)
				go func(g int) {
					defer writers.Done()
					for i := 0; i < perInserter; i++ {
						if i%2 == 0 {
							db.InsertValue(person(fmt.Sprintf("p%d-%d", g, i), "Austin"))
						} else {
							db.InsertValue(employee(fmt.Sprintf("e%d-%d", g, i), "Austin", i, "Sales"))
						}
					}
				}(g)
			}
			for g := 0; g < getters; g++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						// Employee snapshot first: members are never removed
						// from db, so everything in the earlier employee
						// snapshot is still present — and still a person — in
						// the later person snapshot. (The other order is not
						// an invariant: the database may grow arbitrarily
						// between the two calls.)
						es := db.Get(employeeT)
						ps := db.Get(personT)
						if len(es) > len(ps) {
							t.Errorf("Get[Employee] (%d) larger than Get[Person] (%d)", len(es), len(ps))
							return
						}
						for _, p := range ps {
							if !types.Subtype(p.Witness, personT) {
								t.Errorf("Get[Person] returned witness %s", p.Witness)
								return
							}
						}
					}
				}()
			}
			for g := 0; g < forkers; g++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						f := db.Fork()
						n := f.Len()
						if got := len(f.All()); got != n {
							t.Errorf("fork: Len %d but All returned %d", n, got)
							return
						}
						// The fork evolves independently of the parent.
						d := f.InsertValue(person("fork-only", "Nowhere"))
						if !f.Remove(d) {
							t.Errorf("fork lost its own insert")
							return
						}
					}
				}()
			}
			// Wait for the inserters, then stop the readers.
			writers.Wait()
			close(done)
			readers.Wait()

			if got := db.Len(); got != inserters*perInserter {
				t.Fatalf("Len = %d, want %d", got, inserters*perInserter)
			}
			if got := len(db.Get(personT)); got != inserters*perInserter {
				t.Errorf("Get[Person] = %d, want %d", got, inserters*perInserter)
			}
			if got := len(db.Get(employeeT)); got != inserters*perInserter/2 {
				t.Errorf("Get[Employee] = %d, want %d", got, inserters*perInserter/2)
			}
		})
	}
}

// TestScanWorkerSettingsAgree checks the parallel scan against the
// sequential one on a database large enough to cross the fan-out threshold.
func TestScanWorkerSettingsAgree(t *testing.T) {
	db := New(StrategyScan)
	for i := 0; i < 2*scanParallelMin; i++ {
		if i%3 == 0 {
			db.InsertValue(employee(fmt.Sprintf("e%d", i), "Austin", i, "Sales"))
		} else {
			db.InsertValue(person(fmt.Sprintf("p%d", i), "Austin"))
		}
	}
	db.SetScanWorkers(1)
	seq := db.Get(employeeT)
	db.SetScanWorkers(8)
	par := db.Get(employeeT)
	if len(seq) != len(par) {
		t.Fatalf("sequential scan found %d, parallel found %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Value != par[i].Value {
			t.Fatalf("order diverges at %d: %s vs %s", i, seq[i], par[i])
		}
	}
}

// entrySpec drives the Get-vs-reference-scan property: a recipe for a small
// heterogeneous database plus a query type.
type entrySpec struct {
	Kinds []uint8
	Query uint8
}

// Generate implements quick.Generator.
func (entrySpec) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(60)
	ks := make([]uint8, n)
	for i := range ks {
		ks[i] = uint8(r.Intn(4))
	}
	return reflect.ValueOf(entrySpec{Kinds: ks, Query: uint8(r.Intn(4))})
}

func (s entrySpec) build(i int, k uint8) value.Value {
	switch k % 4 {
	case 0:
		return person(fmt.Sprintf("p%d", i), "Austin")
	case 1:
		return employee(fmt.Sprintf("e%d", i), "Austin", i, "Sales")
	case 2:
		return student(fmt.Sprintf("s%d", i), "Austin", i)
	default:
		return value.Int(int64(i))
	}
}

func (s entrySpec) queryType() types.Type {
	switch s.Query % 4 {
	case 0:
		return personT
	case 1:
		return employeeT
	case 2:
		return studentT
	default:
		return types.Top
	}
}

// TestQuickGetMatchesReferenceScan is the engine-semantics property: for a
// random database and query, the sharded Get (both strategies, sequential
// and fanned-out) returns exactly the members a plain reference scan over
// All() selects, in the same order.
func TestQuickGetMatchesReferenceScan(t *testing.T) {
	f := func(spec entrySpec) bool {
		db := New(StrategyScan)
		for i, k := range spec.Kinds {
			db.InsertValue(spec.build(i, k))
		}
		q := spec.queryType()

		// Reference: a sequential filter over the merged, ordered contents.
		var want []value.Value
		for _, d := range db.All() {
			if types.Subtype(d.Type(), q) {
				want = append(want, d.Value())
			}
		}

		check := func(ps []Packed) bool {
			if len(ps) != len(want) {
				return false
			}
			for i := range ps {
				if ps[i].Value != want[i] {
					return false
				}
			}
			return true
		}
		if !check(db.Get(q)) {
			return false
		}
		db.SetScanWorkers(8)
		if !check(db.Get(q)) {
			return false
		}
		db.SetStrategy(StrategyIndexed)
		if !check(db.Get(q)) { // builds extents
			return false
		}
		return check(db.Get(q)) // reads extents
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestForkIsolationAfterCOW verifies the copy-on-write boundary: appends on
// either side of a fork never leak into the other, even when the shared
// backing arrays had spare capacity.
func TestForkIsolationAfterCOW(t *testing.T) {
	db := New(StrategyIndexed)
	var ds []*dynamic.Dynamic
	for i := 0; i < 200; i++ {
		ds = append(ds, db.InsertValue(person(fmt.Sprintf("p%d", i), "Austin")))
	}
	db.Get(personT) // build extents so forks copy them too
	f := db.Fork()

	db.InsertValue(person("parent-only", "Austin"))
	f.InsertValue(employee("fork-only", "Austin", 1, "Sales"))
	f.Remove(ds[0])

	if got := db.Len(); got != 201 {
		t.Errorf("parent Len = %d, want 201", got)
	}
	if got := f.Len(); got != 200 {
		t.Errorf("fork Len = %d, want 200", got)
	}
	for _, p := range db.Get(employeeT) {
		if p.Value.(*value.Record).MustGet("Name") == value.String("fork-only") {
			t.Errorf("fork insert leaked into parent")
		}
	}
	if got := len(f.Get(personT)); got != 200 {
		t.Errorf("fork Get[Person] = %d, want 200", got)
	}
	if got := len(db.Get(personT)); got != 201 {
		t.Errorf("parent Get[Person] = %d, want 201", got)
	}
}
