package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("re-registering a counter name returned a different instance")
	}
	g := r.Gauge("g")
	g.Set(7)
	if got := g.Add(-3); got != 4 {
		t.Errorf("Gauge.Add returned %d, want the post-update value 4", got)
	}
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

// TestHistogramZeroObservations: the degenerate histogram must stay fully
// well-defined — zero counts, zero sum, quantiles and mean of 0 — because
// a scrape can land before the first request does.
func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", UnitDuration, DurationBuckets)
	snap := r.Snapshot()
	h, ok := snap.Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if h.Count != 0 || h.Sum != 0 {
		t.Errorf("empty histogram count=%d sum=%d, want 0/0", h.Count, h.Sum)
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("Quantile(0.99) of empty histogram = %d, want 0", q)
	}
	if m := h.Mean(); m != 0 {
		t.Errorf("Mean of empty histogram = %v, want 0", m)
	}
	for i, n := range h.Counts {
		if n != 0 {
			t.Errorf("bucket %d = %d, want 0", i, n)
		}
	}
}

// TestHistogramBucketBoundaries: bounds are inclusive upper bounds
// (Prometheus le semantics) — an observation equal to a bound lands in
// that bound's bucket, one past it lands in the next, and one past the
// last bound lands in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", UnitCount, []int64{10, 20, 30})
	for _, v := range []int64{0, 10, 11, 20, 21, 30, 31, 1 << 40} {
		h.Observe(v)
	}
	hs, _ := r.Snapshot().Histogram("h")
	want := []uint64{2, 2, 2, 2} // {0,10} {11,20} {21,30} {31,2^40}
	for i, n := range hs.Counts {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, n, want[i], hs.Counts)
		}
	}
	if hs.Count != 8 {
		t.Errorf("count = %d, want 8", hs.Count)
	}
	wantSum := int64(0 + 10 + 11 + 20 + 21 + 30 + 31 + 1<<40)
	if hs.Sum != wantSum {
		t.Errorf("sum = %d, want %d (exact)", hs.Sum, wantSum)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", UnitCount, []int64{100, 200})
	for i := 0; i < 100; i++ {
		h.Observe(150) // all in the (100,200] bucket
	}
	hs, _ := r.Snapshot().Histogram("h")
	p50 := hs.Quantile(0.5)
	if p50 <= 100 || p50 > 200 {
		t.Errorf("p50 = %d, want inside the (100,200] bucket", p50)
	}
	// Overflow-only data floors at the last bound.
	h2 := r.Histogram("h2", UnitCount, []int64{10})
	h2.Observe(1000)
	hs2, _ := r.Snapshot().Histogram("h2")
	if q := hs2.Quantile(0.5); q != 10 {
		t.Errorf("overflow-bucket quantile = %d, want the last bound 10", q)
	}
}

// TestHistogramConcurrentObserve: many writers under -race, then the
// totals must balance exactly — Observe may not lose updates.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", UnitCount, SizeBuckets)
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(seed) // constant per goroutine; exact sum is checkable
			}
		}(int64(w + 1))
	}
	wg.Wait()
	hs, _ := r.Snapshot().Histogram("h")
	if hs.Count != writers*per {
		t.Errorf("count = %d, want %d", hs.Count, writers*per)
	}
	wantSum := int64(per * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8))
	if hs.Sum != wantSum {
		t.Errorf("sum = %d, want %d", hs.Sum, wantSum)
	}
}

// TestSnapshotImmutableUnderConcurrentWrites: a snapshot taken while
// writers keep hammering must not change afterwards — its bucket arrays
// are copies, not views.
func TestSnapshotImmutableUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", UnitCount, SizeBuckets)
	c := r.Counter("c")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(3)
				c.Inc()
			}
		}
	}()
	snap := r.Snapshot()
	hs, _ := snap.Histogram("h")
	counts := append([]uint64(nil), hs.Counts...)
	cv, _ := snap.Counter("c")
	time.Sleep(20 * time.Millisecond) // let the writer mutate the registry
	close(stop)
	wg.Wait()
	hs2, _ := snap.Histogram("h")
	for i := range counts {
		if hs2.Counts[i] != counts[i] {
			t.Fatalf("snapshot bucket %d changed after capture: %d -> %d", i, counts[i], hs2.Counts[i])
		}
	}
	if cv2, _ := snap.Counter("c"); cv2 != cv {
		t.Fatalf("snapshot counter changed after capture: %d -> %d", cv, cv2)
	}
	// And the registry itself did move on.
	if now, _ := r.Snapshot().Counter("c"); now <= cv {
		t.Errorf("registry counter did not advance past the snapshot (%d <= %d)", now, cv)
	}
}

func TestGaugeFuncAndSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.GaugeFunc("derived", func() int64 { return v })
	v = 42
	snap := r.Snapshot()
	if got, ok := snap.Gauge("derived"); !ok || got != 42 {
		t.Errorf("gauge func = %d,%v, want 42,true (evaluated at snapshot time)", got, ok)
	}
	if _, ok := snap.Gauge("absent"); ok {
		t.Error("lookup of absent gauge reported ok")
	}
	if _, ok := snap.Counter("absent"); ok {
		t.Error("lookup of absent counter reported ok")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m"} {
		r.Counter(n)
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Fatalf("counters not sorted: %q before %q", snap.Counters[i-1].Name, snap.Counters[i].Name)
		}
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	if l.Record(SlowOp{Op: "fast", Duration: time.Millisecond}) {
		t.Error("sub-threshold op was recorded")
	}
	for i := 0; i < 5; i++ {
		if !l.Record(SlowOp{Op: "slow", Duration: time.Duration(i+10) * time.Millisecond, Trace: uint64(i)}) {
			t.Fatalf("op %d at threshold not recorded", i)
		}
	}
	if got := l.Total(); got != 5 {
		t.Errorf("total = %d, want 5 (eviction must not decrement)", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring retained %d entries, want capacity 3", len(snap))
	}
	// Newest first: traces 4, 3, 2.
	for i, want := range []uint64{4, 3, 2} {
		if snap[i].Trace != want {
			t.Errorf("snapshot[%d].Trace = %d, want %d (newest first)", i, snap[i].Trace, want)
		}
	}
}

func TestSlowLogZeroThresholdKeepsEverything(t *testing.T) {
	l := NewSlowLog(2, 0)
	if !l.Record(SlowOp{Op: "instant"}) {
		t.Error("zero-threshold log rejected a zero-duration op")
	}
}

func TestSnapshotEncodeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(123456789)
	r.Gauge("g").Set(-42)
	h := r.Histogram("h", UnitDuration, []int64{100, 2000})
	h.Observe(50)
	h.Observe(1500)
	h.Observe(999999)
	snap := r.Snapshot()
	b := snap.AppendBinary(nil)
	got, err := UnmarshalSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Counter("c"); v != 123456789 {
		t.Errorf("decoded counter = %d", v)
	}
	if v, _ := got.Gauge("g"); v != -42 {
		t.Errorf("decoded gauge = %d", v)
	}
	hs, ok := got.Histogram("h")
	if !ok {
		t.Fatal("decoded histogram missing")
	}
	if hs.Unit != UnitDuration {
		t.Errorf("decoded unit = %d", hs.Unit)
	}
	if hs.Count != 3 || hs.Sum != 50+1500+999999 {
		t.Errorf("decoded count/sum = %d/%d", hs.Count, hs.Sum)
	}
	orig, _ := snap.Histogram("h")
	for i := range orig.Counts {
		if hs.Counts[i] != orig.Counts[i] {
			t.Errorf("decoded bucket %d = %d, want %d", i, hs.Counts[i], orig.Counts[i])
		}
	}
	if !got.TakenAt.Equal(snap.TakenAt.Truncate(0)) && got.TakenAt.UnixNano() != snap.TakenAt.UnixNano() {
		t.Errorf("decoded TakenAt = %v, want %v", got.TakenAt, snap.TakenAt)
	}
}

// TestUnmarshalSnapshotMalformed: hostile and truncated payloads yield
// ErrBadSnapshot, never a panic or a giant allocation.
func TestUnmarshalSnapshotMalformed(t *testing.T) {
	valid := (&Snapshot{TakenAt: time.Unix(0, 1)}).AppendBinary(nil)
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       {'X', 1},
		"bad version":     {'S', 99},
		"truncated":       valid[:len(valid)-1],
		"trailing":        append(append([]byte{}, valid...), 0),
		"huge entries":    {'S', 1, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"huge name":       {'S', 1, 0, 1, 0xFF, 0xFF, 0x7F},
		"counter cutoff":  {'S', 1, 0, 2, 1, 'a', 5},
		"gauge cutoff":    {'S', 1, 0, 0, 1, 1, 'g'},
		"hist no bounds":  {'S', 1, 0, 0, 0, 0, 1, 1, 'h'},
		"hist big bounds": {'S', 1, 0, 0, 0, 0, 1, 1, 'h', 0, 0xFF, 0xFF, 0x7F},
	}
	for name, b := range cases {
		if _, err := UnmarshalSnapshot(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := UnmarshalSnapshot(valid); err != nil {
		t.Fatalf("valid empty snapshot failed to decode: %v", err)
	}
}

// TestWritePromParses validates the exposition with a miniature parser
// implementing the format rules a real scraper enforces: TYPE lines
// precede their samples, bucket counts are cumulative and end at the
// +Inf == _count invariant, durations render in seconds.
func TestWritePromParses(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{op="GET"}`).Add(3)
	r.Counter(`req_total{op="PUT"}`).Add(2)
	r.Gauge("inflight").Set(7)
	h := r.Histogram("lat_seconds", UnitDuration, []int64{int64(time.Millisecond), int64(time.Second)})
	h.Observe(int64(500 * time.Microsecond))
	h.Observe(int64(2 * time.Second))
	var sb strings.Builder
	if err := r.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	typed := map[string]string{}
	samples := map[string]string{}
	var lastBucketCum map[string]string // series base -> last cumulative value seen
	lastBucketCum = map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			t.Fatalf("unexpected comment/blank line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		series, val := line[:sp], line[sp+1:]
		samples[series] = val
		base := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			base = series[:i]
		}
		if strings.HasSuffix(base, "_bucket") {
			lastBucketCum[strings.TrimSuffix(base, "_bucket")] = val
		}
		// Every sample's base (or its _bucket/_sum/_count family) must have
		// been typed already.
		family := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suffix) && typed[strings.TrimSuffix(base, suffix)] == "histogram" {
				family = strings.TrimSuffix(base, suffix)
			}
		}
		if typed[family] == "" {
			t.Errorf("sample %q appears before its TYPE line", series)
		}
	}
	if typed["req_total"] != "counter" || typed["inflight"] != "gauge" || typed["lat_seconds"] != "histogram" {
		t.Errorf("TYPE lines wrong: %v", typed)
	}
	if samples[`req_total{op="GET"}`] != "3" {
		t.Errorf(`req_total{op="GET"} = %q, want 3`, samples[`req_total{op="GET"}`])
	}
	// The final (+Inf) bucket must equal _count.
	if lastBucketCum["lat_seconds"] != samples["lat_seconds_count"] {
		t.Errorf("+Inf bucket %q != count %q", lastBucketCum["lat_seconds"], samples["lat_seconds_count"])
	}
	if samples["lat_seconds_count"] != "2" {
		t.Errorf("lat_seconds_count = %q, want 2", samples["lat_seconds_count"])
	}
	// Durations render as seconds: the sum is 2.0005, not 2000500000.
	if got := samples["lat_seconds_sum"]; got != "2.0005" {
		t.Errorf("lat_seconds_sum = %q, want 2.0005 (seconds)", got)
	}
	// An le label merged into an existing label set keeps both.
	if !strings.Contains(text, `lat_seconds_bucket{le="0.001"} 1`) {
		t.Errorf("missing cumulative 1ms bucket; got:\n%s", text)
	}
}
