// Package telemetry is the zero-dependency observability layer beneath
// the served database: a metrics registry (atomic counters, gauges and
// fixed-bucket histograms), a bounded slow-operation ring log, an
// instrumented file system for the persistence seam, a binary snapshot
// codec for the STATS opcode, and a hand-rolled Prometheus text
// exposition.
//
// "Orthogonal Persistence Revisited" (PAPERS.md) stresses that
// persistent systems live or die by their operational behaviour, not
// just their semantics; this package makes that behaviour observable
// without adding a dependency or a lock to any hot path. Design rules,
// enforced by the benchmarks in bench_test.go:
//
//   - Updating a metric is one or two uncontended atomic operations and
//     never allocates. Hot paths hold *Counter/*Gauge/*Histogram
//     pointers obtained once at construction; the registry's maps are
//     touched only at registration and snapshot time.
//   - Reads are race-free by construction: Snapshot() deep-copies every
//     value into an immutable Snapshot, so a scraper can never observe
//     a histogram mid-update or tear a multi-field report. All derived
//     views (the wire encoding, the Prometheus text, the health report)
//     are computed from one Snapshot.
//   - Histograms have fixed, immutable bucket bounds and an exact sum:
//     quantiles are estimates (linear interpolation inside a bucket) but
//     totals and averages are not.
//
// Metric names follow the Prometheus convention, with an optional
// brace-delimited label set baked into the registered name — e.g.
// "dbpl_server_requests_total{op=\"GET\"}" is one series; the registry
// itself is label-agnostic.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta and returns the new value (so a gauge can double as an
// admission-control counter: the caller learns atomically whether it
// crossed a cap).
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Unit says how a histogram's observations should be rendered.
type Unit byte

const (
	// UnitCount: dimensionless observations (e.g. commit-group sizes).
	UnitCount Unit = iota
	// UnitDuration: observations are nanoseconds; expositions render
	// them as seconds.
	UnitDuration
)

// Histogram is a fixed-bucket histogram with an exact sum. Bounds are
// ascending inclusive upper bounds; one implicit overflow bucket catches
// everything past the last bound. Observe is lock-free and
// allocation-free.
type Histogram struct {
	unit      Unit
	bounds    []int64 // immutable after construction
	counts    []atomic.Uint64
	exemplars []atomic.Uint64 // last trace ID to land in each bucket; 0 = none
	sum       atomic.Int64
}

func newHistogram(unit Unit, bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		unit:      unit,
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one observation. An observation lands in the first
// bucket whose bound is >= v (Prometheus "le" semantics); past the last
// bound it lands in the overflow bucket.
func (h *Histogram) Observe(v int64) { h.ObserveExemplar(v, 0) }

// ObserveExemplar records one observation and, when trace is non-zero,
// remembers it as the bucket's exemplar — the trace ID of the last
// request that landed there, so a suspicious p99 bucket points at a
// concrete span tree (`dbpl trace`) instead of an anonymous count. Still
// lock-free and allocation-free: the exemplar is one extra atomic store.
func (h *Histogram) ObserveExemplar(v int64, trace uint64) {
	idx := len(h.bounds)
	// Linear scan: bucket counts are small (~20) and the loop is
	// branch-predictable; a binary search costs more in practice.
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	if trace != 0 {
		h.exemplars[idx].Store(trace)
	}
	h.sum.Add(v)
}

// ObserveDuration records a duration observation (for UnitDuration
// histograms: the duration in nanoseconds).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveDurationExemplar is ObserveExemplar for durations.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, trace uint64) {
	h.ObserveExemplar(int64(d), trace)
}

// Stat returns the observation count and exact sum without the deep copy
// a Snapshot performs — cheap enough to call on every request. The two
// loads are not mutually atomic; under concurrent Observes the pair is
// approximate, which is fine for its consumer (the cost model's
// mean-per-item feedback loop).
func (h *Histogram) Stat() (count uint64, sum int64) {
	for i := range h.counts {
		count += h.counts[i].Load()
	}
	return count, h.sum.Load()
}

// DurationBuckets is the default latency bucket layout: 1µs to 10s in a
// 1–2.5–5 progression, wide enough for a cache hit and an fsync alike.
var DurationBuckets = []int64{
	int64(1 * time.Microsecond), int64(2500 * time.Nanosecond), int64(5 * time.Microsecond),
	int64(10 * time.Microsecond), int64(25 * time.Microsecond), int64(50 * time.Microsecond),
	int64(100 * time.Microsecond), int64(250 * time.Microsecond), int64(500 * time.Microsecond),
	int64(1 * time.Millisecond), int64(2500 * time.Microsecond), int64(5 * time.Millisecond),
	int64(10 * time.Millisecond), int64(25 * time.Millisecond), int64(50 * time.Millisecond),
	int64(100 * time.Millisecond), int64(250 * time.Millisecond), int64(500 * time.Millisecond),
	int64(1 * time.Second), int64(2500 * time.Millisecond), int64(5 * time.Second),
	int64(10 * time.Second),
}

// SizeBuckets is the default layout for small-count distributions
// (commit-group sizes): powers of two up to 1024.
var SizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Registry is a named collection of metrics. Registration is
// get-or-create and safe for concurrent use; hot paths should register
// once and hold the returned pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
	helps    map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() int64{},
		hists:    map[string]*Histogram{},
		helps:    map[string]string{},
	}
}

// SetHelp records a one-line description for a metric family (the base
// name, without any {label} suffix); the Prometheus exposition emits it
// as the family's # HELP line. Help text is registry-local operator
// documentation — the binary snapshot codec does not carry it.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helps[name] = help
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a derived gauge computed at snapshot time (uptime,
// root counts — values that already live elsewhere as atomics). fn must
// be safe to call concurrently and must not call back into the registry.
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it with the given unit
// and bucket bounds on first use. Later calls ignore unit and bounds.
func (r *Registry) Histogram(name string, unit Unit, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(unit, bounds)
		r.hists[name] = h
	}
	return h
}

// ---------------------------------------------------------------------------
// Snapshot: the race-free read side
// ---------------------------------------------------------------------------

// NamedCounter is one counter in a snapshot.
type NamedCounter struct {
	Name  string
	Value uint64
}

// NamedGauge is one gauge (or gauge func) in a snapshot.
type NamedGauge struct {
	Name  string
	Value int64
}

// HistogramSnapshot is one histogram's state: immutable copies of the
// bounds and bucket counts, the exact sum, and the total count.
type HistogramSnapshot struct {
	Name      string
	Unit      Unit
	Bounds    []int64  // ascending inclusive upper bounds
	Counts    []uint64 // len(Bounds)+1; last is the overflow bucket
	Exemplars []uint64 // per-bucket last trace ID (0 = none); nil when no bucket has one
	Sum       int64
	Count     uint64
}

// Snapshot is a point-in-time copy of a registry, immutable after
// construction: every consumer (HEALTH, STATS, /metrics) reads one
// Snapshot instead of re-loading atomics field by field, so a report can
// never mix values from different instants of its own capture.
type Snapshot struct {
	TakenAt    time.Time
	Counters   []NamedCounter      // sorted by name
	Gauges     []NamedGauge        // sorted by name (includes gauge funcs)
	Histograms []HistogramSnapshot // sorted by name
	Helps      map[string]string   // family help text; local only, not wire-encoded
}

// Snapshot captures every registered metric. Values are copied with one
// atomic load each; bucket arrays are deep-copied, so the result stays
// stable under concurrent writers.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{TakenAt: time.Now()}
	s.Counters = make([]NamedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedCounter{Name: name, Value: c.Value()})
	}
	s.Gauges = make([]NamedGauge, 0, len(r.gauges)+len(r.gaugeFns))
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedGauge{Name: name, Value: g.Value()})
	}
	for name, fn := range r.gaugeFns {
		s.Gauges = append(s.Gauges, NamedGauge{Name: name, Value: fn()})
	}
	s.Histograms = make([]HistogramSnapshot, 0, len(r.hists))
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Name:   name,
			Unit:   h.unit,
			Bounds: h.bounds, // immutable; shared deliberately
			Counts: make([]uint64, len(h.counts)),
		}
		var total uint64
		for i := range h.counts {
			n := h.counts[i].Load()
			hs.Counts[i] = n
			total += n
		}
		for i := range h.exemplars {
			if ex := h.exemplars[i].Load(); ex != 0 {
				if hs.Exemplars == nil {
					hs.Exemplars = make([]uint64, len(h.exemplars))
				}
				hs.Exemplars[i] = ex
			}
		}
		hs.Count = total
		hs.Sum = h.sum.Load()
		s.Histograms = append(s.Histograms, hs)
	}
	if len(r.helps) > 0 {
		s.Helps = make(map[string]string, len(r.helps))
		for name, help := range r.helps {
			s.Helps[name] = help
		}
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter finds a counter by name.
func (s *Snapshot) Counter(name string) (uint64, bool) {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value, true
	}
	return 0, false
}

// Gauge finds a gauge by name.
func (s *Snapshot) Gauge(name string) (int64, bool) {
	i := sort.Search(len(s.Gauges), func(i int) bool { return s.Gauges[i].Name >= name })
	if i < len(s.Gauges) && s.Gauges[i].Name == name {
		return s.Gauges[i].Value, true
	}
	return 0, false
}

// Histogram finds a histogram by name.
func (s *Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i], true
	}
	return HistogramSnapshot{}, false
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank. Inside the overflow bucket
// the last bound is returned — the histogram cannot resolve beyond it.
// Returns 0 for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, n := range h.Counts {
		next := cum + float64(n)
		if next >= rank && n > 0 {
			lo := int64(0)
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1] // overflow bucket: floor at the last bound
			}
			hi := h.Bounds[i]
			frac := (rank - cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Mean is the exact average observation (Sum/Count), 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// ExemplarNear returns the exemplar trace ID closest to the q-quantile:
// the last trace that landed in the bucket holding the target rank, or —
// when that bucket has none — the nearest lower bucket that has one.
// Returns 0 when the histogram is empty or carries no exemplars.
func (h HistogramSnapshot) ExemplarNear(q float64) uint64 {
	if h.Count == 0 || h.Exemplars == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	target := len(h.Counts) - 1
	var cum float64
	for i, n := range h.Counts {
		cum += float64(n)
		if cum >= rank && n > 0 {
			target = i
			break
		}
	}
	for i := target; i >= 0; i-- {
		if h.Exemplars[i] != 0 {
			return h.Exemplars[i]
		}
	}
	return 0
}

// Delta returns the change from prev to s, for rate displays (`dbpl
// stats -watch`): counter values and histogram bucket counts/sums become
// the interval's increments, gauges keep their current (instantaneous)
// values, and exemplars keep the current snapshot's. A metric absent
// from prev — or one that shrank, meaning the server restarted between
// snapshots — passes through whole rather than going negative. TakenAt
// is s's capture time; the interval length is s.TakenAt−prev.TakenAt.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	d := &Snapshot{TakenAt: s.TakenAt, Helps: s.Helps}
	d.Counters = make([]NamedCounter, len(s.Counters))
	for i, c := range s.Counters {
		if old, ok := prev.Counter(c.Name); ok && old <= c.Value {
			c.Value -= old
		}
		d.Counters[i] = c
	}
	d.Gauges = append([]NamedGauge(nil), s.Gauges...)
	d.Histograms = make([]HistogramSnapshot, len(s.Histograms))
	for i, h := range s.Histograms {
		old, ok := prev.Histogram(h.Name)
		if ok && len(old.Counts) == len(h.Counts) && old.Count <= h.Count {
			nh := HistogramSnapshot{
				Name: h.Name, Unit: h.Unit, Bounds: h.Bounds,
				Exemplars: h.Exemplars,
				Counts:    make([]uint64, len(h.Counts)),
				Sum:       h.Sum - old.Sum,
				Count:     h.Count - old.Count,
			}
			for j := range h.Counts {
				if old.Counts[j] <= h.Counts[j] {
					nh.Counts[j] = h.Counts[j] - old.Counts[j]
				}
			}
			h = nh
		}
		d.Histograms[i] = h
	}
	return d
}
