package telemetry_test

import (
	"errors"
	"path/filepath"
	"testing"

	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/telemetry"
	"dbpl/internal/value"
)

// TestInstrumentFSThroughRealStore drives a real intrinsic store through
// the instrumented FS and asserts the persistence metrics move: commits
// fsync and write bytes, reopening replays and reads bytes, and the
// counts are visible in one registry snapshot.
func TestInstrumentFSThroughRealStore(t *testing.T) {
	reg := telemetry.NewRegistry()
	fsys := telemetry.InstrumentFS(iofault.OS{}, reg)
	path := filepath.Join(t.TempDir(), "store.log")

	st, err := intrinsic.OpenFS(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bind("n", value.Int(42), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	fsyncs, _ := snap.Counter("dbpl_persist_fsync_total")
	if fsyncs == 0 {
		t.Error("commit did not count an fsync")
	}
	if h, ok := snap.Histogram("dbpl_persist_fsync_seconds"); !ok || h.Count != fsyncs {
		t.Errorf("fsync histogram count = %d, want %d (every fsync timed)", h.Count, fsyncs)
	}
	if out, _ := snap.Counter("dbpl_persist_write_bytes_total"); out == 0 {
		t.Error("commit wrote no counted bytes")
	}
	if opens, _ := snap.Counter("dbpl_persist_open_total"); opens == 0 {
		t.Error("open was not counted")
	}
	if errs, _ := snap.Counter("dbpl_persist_io_errors_total"); errs != 0 {
		t.Errorf("clean run counted %d I/O errors", errs)
	}

	// Reopen: recovery replays the log through instrumented reads.
	st2, err := intrinsic.OpenFS(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.Root("n"); !ok {
		t.Fatal("root lost across reopen")
	}
	if in, _ := reg.Snapshot().Counter("dbpl_persist_read_bytes_total"); in == 0 {
		t.Error("replay read no counted bytes")
	}
}

// TestInstrumentFSCountsInjectedFaults composes the instrumentation
// around the fault injector: an injected failure surfaces to the store
// AND lands in the io-errors counter.
func TestInstrumentFSCountsInjectedFaults(t *testing.T) {
	reg := telemetry.NewRegistry()
	inj := iofault.NewInjector(iofault.OS{})
	fsys := telemetry.InstrumentFS(inj, reg)
	path := filepath.Join(t.TempDir(), "store.log")

	st, err := intrinsic.OpenFS(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bind("n", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	// Opening the store may already have fsynced; only the *failed* sync
	// below must not advance the success counter.
	base, _ := reg.Snapshot().Counter("dbpl_persist_fsync_total")
	inj.FailAt(iofault.OpSync, inj.Count(iofault.OpSync)+1)
	if _, err := st.Commit(); !errors.Is(err, iofault.ErrIOFailed) {
		t.Fatalf("commit with injected sync fault = %v, want ErrIOFailed", err)
	}
	snap := reg.Snapshot()
	if errs, _ := snap.Counter("dbpl_persist_io_errors_total"); errs == 0 {
		t.Error("injected fault was not counted as an I/O error")
	}
	if fsyncs, _ := snap.Counter("dbpl_persist_fsync_total"); fsyncs != base {
		t.Errorf("failed fsync changed the success counter (%d -> %d)", base, fsyncs)
	}
}
