package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), hand-rolled: one # HELP (when the registry has
// help text for the family) and one # TYPE line per metric base name,
// counters and gauges as bare samples, histograms as cumulative _bucket
// series with an "le" label plus _sum and _count. Registered names may
// carry a label set ("name{op=\"GET\"}"); the writer splices the "le"
// label into it for bucket lines. Duration histograms are exposed in
// seconds, per Prometheus convention.
func (s *Snapshot) WriteProm(w io.Writer) error {
	var lastType string
	typeLine := func(base, kind string) string {
		if base == lastType {
			return ""
		}
		lastType = base
		var head string
		if help, ok := s.Helps[base]; ok {
			head = "# HELP " + base + " " + help + "\n"
		}
		return head + "# TYPE " + base + " " + kind + "\n"
	}
	for _, c := range s.Counters {
		base, labels := splitSeries(c.Name)
		if _, err := fmt.Fprintf(w, "%s%s%s %d\n", typeLine(base, "counter"), base, braced(labels), c.Value); err != nil {
			return err
		}
	}
	lastType = ""
	for _, g := range s.Gauges {
		base, labels := splitSeries(g.Name)
		if _, err := fmt.Fprintf(w, "%s%s%s %d\n", typeLine(base, "gauge"), base, braced(labels), g.Value); err != nil {
			return err
		}
	}
	lastType = ""
	for _, h := range s.Histograms {
		base, labels := splitSeries(h.Name)
		if _, err := io.WriteString(w, typeLine(base, "histogram")); err != nil {
			return err
		}
		var cum uint64
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = h.formatValue(float64(h.Bounds[i]))
			}
			withLE := mergeLabels(labels, `le="`+le+`"`)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, braced(withLE), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, braced(labels), h.formatValue(float64(h.Sum))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, braced(labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders an observation magnitude for exposition:
// durations (stored as nanoseconds) become seconds.
func (h HistogramSnapshot) formatValue(v float64) string {
	if h.Unit == UnitDuration {
		return strconv.FormatFloat(v/1e9, 'g', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitSeries splits a registered series name into its base metric name
// and the label pairs baked into it (without braces, "" when unlabeled).
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	j := strings.LastIndexByte(name, '}')
	if j < i {
		return name, ""
	}
	return name[:i], name[i+1 : j]
}

// braced re-wraps a label set, yielding "" for an empty one.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// mergeLabels joins two label fragments with a comma.
func mergeLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}
