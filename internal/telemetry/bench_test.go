package telemetry

import (
	"io"
	"testing"
	"time"
)

// The instruments are on every request path, so their per-update cost is
// the whole argument for always-on telemetry. E15 in EXPERIMENTS.md
// records these alongside the end-to-end server delta.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
		g.Add(-1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", UnitDuration, DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A mid-range value: the linear scan pays for about half the
		// bucket list, the common case for request latencies.
		h.ObserveDuration(750 * time.Microsecond)
	}
}

func BenchmarkSlowLogBelowThreshold(b *testing.B) {
	l := NewSlowLog(256, 10*time.Millisecond)
	op := SlowOp{Op: "GET", Duration: time.Microsecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(op)
	}
}

// benchRegistry approximates the serve verb's live registry: the
// per-opcode server series plus the persistence set.
func benchRegistry() *Registry {
	r := NewRegistry()
	for _, op := range []string{"PING", "GET", "PUT", "DELETE", "JOIN",
		"BEGIN", "COMMIT", "ABORT", "NAMES", "HEALTH", "STATS"} {
		r.Counter(`dbpl_server_requests_total{op="` + op + `"}`).Add(1000)
		h := r.Histogram(`dbpl_server_request_seconds{op="`+op+`"}`,
			UnitDuration, DurationBuckets)
		for i := 0; i < 100; i++ {
			h.ObserveDuration(time.Duration(i) * 50 * time.Microsecond)
		}
	}
	r.Counter("dbpl_persist_fsync_total").Add(500)
	r.Histogram("dbpl_persist_fsync_seconds", UnitDuration, DurationBuckets)
	r.Gauge("dbpl_server_inflight").Add(3)
	r.Gauge("dbpl_server_sessions").Add(7)
	return r
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := benchRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Snapshot()
	}
}

func BenchmarkSnapshotAppendBinary(b *testing.B) {
	snap := benchRegistry().Snapshot()
	buf := snap.AppendBinary(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snap.AppendBinary(buf[:0])
	}
}

func BenchmarkSnapshotWriteProm(b *testing.B) {
	snap := benchRegistry().Snapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := snap.WriteProm(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
