package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// The wire encoding of a Snapshot, carried by the STATS opcode as one
// frame field. Same engineering rules as the image codec and the wire
// framing: self-contained, versioned, and hardened — a malformed or
// hostile payload yields ErrBadSnapshot, never a panic and never an
// unbounded allocation.
//
// Layout (all integers varint-encoded):
//
//	'S' version(1)
//	taken-at: uvarint unix-nanoseconds
//	counters:   uvarint n, then n × (str name, uvarint value)
//	gauges:     uvarint n, then n × (str name, zigzag value)
//	histograms: uvarint n, then n × (str name, unit byte,
//	            uvarint b, b × zigzag bound, (b+1) × uvarint count,
//	            zigzag sum[, flag byte, (b+1) × uvarint exemplar])
//
// where str is uvarint length + bytes. The bracketed exemplar block is
// version 2: a flag byte after the sum (1 = per-bucket exemplar trace
// IDs follow, 0 = none). Version-1 payloads (from pre-trace servers)
// still decode, with no exemplars; the encoder always writes version 2.

// ErrBadSnapshot reports a malformed snapshot payload.
var ErrBadSnapshot = errors.New("telemetry: malformed snapshot encoding")

const (
	snapMagic = 'S'
	// snapVersion is what the encoder writes; the decoder also accepts
	// snapVersionV1 (no exemplar blocks) from older peers.
	snapVersion   = 2
	snapVersionV1 = 1

	// Decode hardening bounds: generous multiples of what a real registry
	// produces, small enough that a hostile length claim cannot balloon.
	maxEntries = 1 << 16
	maxBounds  = 1 << 12
	maxNameLen = 1 << 12
)

// AppendBinary appends the snapshot's wire encoding to dst.
func (s *Snapshot) AppendBinary(dst []byte) []byte {
	dst = append(dst, snapMagic, snapVersion)
	dst = appendUvarint(dst, uint64(s.TakenAt.UnixNano()))
	dst = appendUvarint(dst, uint64(len(s.Counters)))
	for _, c := range s.Counters {
		dst = appendStr(dst, c.Name)
		dst = appendUvarint(dst, c.Value)
	}
	dst = appendUvarint(dst, uint64(len(s.Gauges)))
	for _, g := range s.Gauges {
		dst = appendStr(dst, g.Name)
		dst = appendVarint(dst, g.Value)
	}
	dst = appendUvarint(dst, uint64(len(s.Histograms)))
	for _, h := range s.Histograms {
		dst = appendStr(dst, h.Name)
		dst = append(dst, byte(h.Unit))
		dst = appendUvarint(dst, uint64(len(h.Bounds)))
		for _, b := range h.Bounds {
			dst = appendVarint(dst, b)
		}
		for _, c := range h.Counts {
			dst = appendUvarint(dst, c)
		}
		dst = appendVarint(dst, h.Sum)
		if h.Exemplars == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			for _, ex := range h.Exemplars {
				dst = appendUvarint(dst, ex)
			}
		}
	}
	return dst
}

// UnmarshalSnapshot decodes a snapshot payload.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	d := &snapDecoder{buf: b}
	if len(b) < 2 || b[0] != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if b[1] != snapVersion && b[1] != snapVersionV1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, b[1])
	}
	hasExemplars := b[1] >= snapVersion
	d.pos = 2
	s := &Snapshot{}
	takenNS, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	s.TakenAt = time.Unix(0, int64(takenNS))

	n, err := d.count()
	if err != nil {
		return nil, err
	}
	s.Counters = make([]NamedCounter, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		s.Counters = append(s.Counters, NamedCounter{Name: name, Value: v})
	}

	if n, err = d.count(); err != nil {
		return nil, err
	}
	s.Gauges = make([]NamedGauge, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		s.Gauges = append(s.Gauges, NamedGauge{Name: name, Value: v})
	}

	if n, err = d.count(); err != nil {
		return nil, err
	}
	s.Histograms = make([]HistogramSnapshot, 0, n)
	for i := uint64(0); i < n; i++ {
		h := HistogramSnapshot{}
		if h.Name, err = d.str(); err != nil {
			return nil, err
		}
		unit, err := d.byte()
		if err != nil {
			return nil, err
		}
		h.Unit = Unit(unit)
		nb, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nb > maxBounds {
			return nil, fmt.Errorf("%w: %d histogram bounds", ErrBadSnapshot, nb)
		}
		h.Bounds = make([]int64, nb)
		for j := range h.Bounds {
			if h.Bounds[j], err = d.varint(); err != nil {
				return nil, err
			}
		}
		h.Counts = make([]uint64, nb+1)
		for j := range h.Counts {
			if h.Counts[j], err = d.uvarint(); err != nil {
				return nil, err
			}
			h.Count += h.Counts[j]
		}
		if h.Sum, err = d.varint(); err != nil {
			return nil, err
		}
		if hasExemplars {
			flag, err := d.byte()
			if err != nil {
				return nil, err
			}
			switch flag {
			case 0:
			case 1:
				h.Exemplars = make([]uint64, nb+1)
				for j := range h.Exemplars {
					if h.Exemplars[j], err = d.uvarint(); err != nil {
						return nil, err
					}
				}
			default:
				return nil, fmt.Errorf("%w: bad exemplar flag %d", ErrBadSnapshot, flag)
			}
		}
		s.Histograms = append(s.Histograms, h)
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(d.buf)-d.pos)
	}
	return s, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	return append(dst, b[:n]...)
}

func appendVarint(dst []byte, v int64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	return append(dst, b[:n]...)
}

func appendStr(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

type snapDecoder struct {
	buf []byte
	pos int
}

func (d *snapDecoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadSnapshot)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *snapDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadSnapshot)
	}
	d.pos += n
	return v, nil
}

func (d *snapDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrBadSnapshot)
	}
	d.pos += n
	return v, nil
}

// count reads a section length, refusing hostile claims before any
// allocation sized by them.
func (d *snapDecoder) count() (uint64, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > maxEntries {
		return 0, fmt.Errorf("%w: %d entries exceeds limit", ErrBadSnapshot, n)
	}
	return n, nil
}

func (d *snapDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("%w: name length %d exceeds limit", ErrBadSnapshot, n)
	}
	if uint64(len(d.buf)-d.pos) < n {
		return "", fmt.Errorf("%w: truncated name", ErrBadSnapshot)
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}
