package telemetry

import (
	"sync"
	"time"
)

// SlowOp is one logged operation: what ran, how long it took, for whom,
// and how it ended. Trace is the client-stamped trace ID echoed on the
// wire (0 when the request was untraced), so one slow server-side entry
// can be tied to the client call that suffered it.
type SlowOp struct {
	Time     time.Time     `json:"time"`
	Op       string        `json:"op"`
	Duration time.Duration `json:"duration_ns"`
	Session  string        `json:"session"`
	Trace    uint64        `json:"trace,omitempty"`
	Bytes    int           `json:"bytes"`
	Err      string        `json:"err,omitempty"`
}

// SlowLog is a bounded in-memory ring of the most recent operations at
// or above a duration threshold. Recording below the threshold is one
// comparison and no lock; recording above it takes a mutex for the ring
// slot — slow operations are, by definition, not the hot path.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	ring  []SlowOp
	next  int    // ring index of the next write
	total uint64 // operations recorded since start (not bounded by the ring)
}

// NewSlowLog builds a ring of the given capacity keeping operations with
// Duration >= threshold. A threshold of 0 keeps everything.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowOp, 0, capacity)}
}

// Threshold reports the configured cut-off.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Record keeps op if it is at or above the threshold, reporting whether
// it was kept. The oldest entry is evicted when the ring is full.
func (l *SlowLog) Record(op SlowOp) bool {
	if op.Duration < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, op)
	} else {
		l.ring[l.next] = op
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
	return true
}

// Total reports how many operations have ever been recorded (eviction
// does not decrement it).
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained entries, newest first. The result is a
// copy; the ring keeps filling underneath it.
func (l *SlowLog) Snapshot() []SlowOp {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowOp, 0, len(l.ring))
	for i := 1; i <= len(l.ring); i++ {
		// Walk backwards from the slot before next, wrapping.
		idx := (l.next - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}
