package telemetry

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", UnitDuration, []int64{10, 100, 1000})
	h.Observe(5) // no exemplar
	h.ObserveExemplar(50, 0xAAA)
	h.ObserveExemplar(60, 0xBBB) // same bucket: last one wins
	h.ObserveExemplar(5000, 0xCCC)

	hs, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Exemplars == nil {
		t.Fatal("no exemplars captured")
	}
	if hs.Exemplars[0] != 0 || hs.Exemplars[1] != 0xBBB || hs.Exemplars[3] != 0xCCC {
		t.Fatalf("exemplars = %v", hs.Exemplars)
	}

	// ExemplarNear: the p99 rank lands in the overflow bucket → 0xCCC;
	// a mid-rank quantile falls in the 100-bucket → 0xBBB.
	if got := hs.ExemplarNear(0.99); got != 0xCCC {
		t.Fatalf("ExemplarNear(0.99) = %#x, want 0xCCC", got)
	}
	if got := hs.ExemplarNear(0.5); got != 0xBBB {
		t.Fatalf("ExemplarNear(0.5) = %#x, want 0xBBB", got)
	}

	// A histogram with no traced observations snapshots nil exemplars.
	r2 := NewRegistry()
	r2.Histogram("plain", UnitCount, []int64{1}).Observe(1)
	if hs, _ := r2.Snapshot().Histogram("plain"); hs.Exemplars != nil {
		t.Fatalf("untraced histogram has exemplars: %v", hs.Exemplars)
	}
	if (HistogramSnapshot{}).ExemplarNear(0.5) != 0 {
		t.Fatal("empty histogram ExemplarNear != 0")
	}
}

func TestSnapshotCodecCarriesExemplars(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", UnitDuration, []int64{10, 100}).ObserveExemplar(50, 0xFEED)
	r.Histogram("plain", UnitCount, []int64{1}).Observe(1)
	s := r.Snapshot()
	got, err := UnmarshalSnapshot(s.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	lat, _ := got.Histogram("lat")
	if lat.Exemplars == nil || lat.Exemplars[1] != 0xFEED {
		t.Fatalf("decoded exemplars = %v", lat.Exemplars)
	}
	plain, _ := got.Histogram("plain")
	if plain.Exemplars != nil {
		t.Fatalf("plain histogram decoded exemplars: %v", plain.Exemplars)
	}
}

// TestSnapshotCodecAcceptsV1: a version-1 payload (pre-trace server,
// no exemplar blocks) still decodes — a new `dbpl stats` must read an
// old server's STATS response.
func TestSnapshotCodecAcceptsV1(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Histogram("lat", UnitDuration, []int64{10, 100}).Observe(50)
	s := r.Snapshot()

	// Re-encode by hand in the v1 layout: same bytes minus the exemplar
	// flag per histogram.
	var v1 []byte
	v1 = append(v1, snapMagic, snapVersionV1)
	v1 = appendUvarint(v1, uint64(s.TakenAt.UnixNano()))
	v1 = appendUvarint(v1, uint64(len(s.Counters)))
	for _, c := range s.Counters {
		v1 = appendStr(v1, c.Name)
		v1 = appendUvarint(v1, c.Value)
	}
	v1 = appendUvarint(v1, uint64(len(s.Gauges)))
	v1 = appendUvarint(v1, uint64(len(s.Histograms)))
	for _, h := range s.Histograms {
		v1 = appendStr(v1, h.Name)
		v1 = append(v1, byte(h.Unit))
		v1 = appendUvarint(v1, uint64(len(h.Bounds)))
		for _, b := range h.Bounds {
			v1 = appendVarint(v1, b)
		}
		for _, c := range h.Counts {
			v1 = appendUvarint(v1, c)
		}
		v1 = appendVarint(v1, h.Sum)
	}

	got, err := UnmarshalSnapshot(v1)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Counter("c"); v != 3 {
		t.Fatalf("counter = %d", v)
	}
	lat, ok := got.Histogram("lat")
	if !ok || lat.Count != 1 || lat.Exemplars != nil {
		t.Fatalf("v1 histogram = %+v", lat)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	g := r.Gauge("inflight")
	h := r.Histogram("lat", UnitDuration, []int64{10, 100})
	c.Add(5)
	g.Set(2)
	h.Observe(50)
	prev := r.Snapshot()

	c.Add(7)
	g.Set(9)
	h.Observe(5)
	h.Observe(50)
	time.Sleep(time.Millisecond)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if !d.TakenAt.After(prev.TakenAt) {
		t.Fatal("delta TakenAt not current")
	}
	if v, _ := d.Counter("reqs"); v != 7 {
		t.Fatalf("counter delta = %d, want 7", v)
	}
	if v, _ := d.Gauge("inflight"); v != 9 {
		t.Fatalf("gauge in delta = %d, want current value 9", v)
	}
	dh, _ := d.Histogram("lat")
	if dh.Count != 2 || dh.Counts[0] != 1 || dh.Counts[1] != 1 || dh.Sum != 55 {
		t.Fatalf("histogram delta = %+v", dh)
	}

	// A counter that shrank (server restart) passes through whole.
	shrunk := &Snapshot{Counters: []NamedCounter{{Name: "reqs", Value: 3}}}
	if v, _ := cur.Delta(&Snapshot{Counters: []NamedCounter{{Name: "reqs", Value: 100}}}).Counter("reqs"); v != 12 {
		t.Fatalf("restart counter delta = %d, want full value 12", v)
	}
	_ = shrunk
	// A metric absent from prev passes through whole.
	if v, _ := cur.Delta(&Snapshot{}).Counter("reqs"); v != 12 {
		t.Fatalf("fresh counter delta = %d, want 12", v)
	}
}

// TestWritePromHelpAndBuckets is the satellite's parse-back test: the
// exposition carries # HELP/# TYPE for families with help text, each
// histogram's bucket series is cumulative-monotone, and the last bucket
// is le="+Inf" and equals _count.
func TestWritePromHelpAndBuckets(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("dbpl_lat_seconds", "request latency by opcode")
	for _, op := range []string{"GET", "PUT"} {
		h := r.Histogram(`dbpl_lat_seconds{op="`+op+`"}`, UnitDuration, DurationBuckets)
		for i := 0; i < 100; i++ {
			h.Observe(int64(i) * int64(time.Microsecond))
		}
	}
	r.Counter("dbpl_reqs_total").Add(4)
	r.SetHelp("dbpl_reqs_total", "requests served")

	var sb strings.Builder
	if err := r.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP dbpl_lat_seconds request latency by opcode\n# TYPE dbpl_lat_seconds histogram",
		"# HELP dbpl_reqs_total requests served\n# TYPE dbpl_reqs_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# HELP dbpl_lat_seconds"); n != 1 {
		t.Fatalf("HELP emitted %d times for one family, want 1", n)
	}

	// Parse the buckets back per series and assert the contract.
	type series struct {
		cums   []uint64
		sawInf bool
		count  uint64
	}
	got := map[string]*series{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable line %q", line)
		}
		switch {
		case strings.Contains(name, "_bucket{"):
			key := name[:strings.Index(name, "_bucket{")]
			labels := name[strings.Index(name, "{"):]
			op := ""
			if i := strings.Index(labels, `op="`); i >= 0 {
				op = labels[i+4 : i+4+strings.Index(labels[i+4:], `"`)]
			}
			s := got[key+op]
			if s == nil {
				s = &series{}
				got[key+op] = s
			}
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", valStr, err)
			}
			s.cums = append(s.cums, v)
			if strings.Contains(labels, `le="+Inf"`) {
				s.sawInf = true
			}
		case strings.Contains(name, "_count"):
			key := strings.Split(name, "_count")[0]
			op := ""
			if i := strings.Index(name, `op="`); i >= 0 {
				op = name[i+4 : i+4+strings.Index(name[i+4:], `"`)]
			}
			if s := got[key+op]; s != nil {
				s.count, _ = strconv.ParseUint(valStr, 10, 64)
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d bucket series, want 2", len(got))
	}
	for key, s := range got {
		if !s.sawInf {
			t.Fatalf("series %s has no +Inf bucket", key)
		}
		for i := 1; i < len(s.cums); i++ {
			if s.cums[i] < s.cums[i-1] {
				t.Fatalf("series %s buckets not cumulative-monotone: %v", key, s.cums)
			}
		}
		if last := s.cums[len(s.cums)-1]; last != s.count || last != 100 {
			t.Fatalf("series %s +Inf bucket %d != count %d (want 100)", key, last, s.count)
		}
	}
}

// TestSlowLogConcurrentWriters is the -race stress for the slow-op ring:
// racing writers above and below the threshold must never lose an
// above-threshold entry while the ring has room, and Total must count
// exactly the kept ones.
func TestSlowLogConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		slowPer = 16 // 128 slow entries, ring capacity 256
		fastPer = 200
	)
	sl := NewSlowLog(256, 10*time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < slowPer; i++ {
				sl.Record(SlowOp{Op: "PUT", Duration: 20 * time.Millisecond,
					Trace: uint64(w*slowPer + i + 1)})
			}
			for i := 0; i < fastPer; i++ {
				sl.Record(SlowOp{Op: "GET", Duration: time.Millisecond})
			}
		}(w)
	}
	wg.Wait()
	snap := sl.Snapshot()
	seen := map[uint64]bool{}
	for _, op := range snap {
		if op.Trace != 0 {
			seen[op.Trace] = true
		}
	}
	if len(seen) != writers*slowPer {
		t.Fatalf("lost slow entries: %d of %d retained", len(seen), writers*slowPer)
	}
	if sl.Total() != uint64(writers*slowPer) {
		t.Fatalf("Total = %d, want %d", sl.Total(), writers*slowPer)
	}
}
