package telemetry

import (
	"os"
	"time"

	"dbpl/internal/persist/iofault"
)

// FSMetrics is the persistence-seam instrument set: the counters and
// histograms an InstrumentFS updates. One hook point covers every store
// (intrinsic, snapshot, replicating, pascalr) because they all perform
// file I/O exclusively through the iofault.FS seam.
type FSMetrics struct {
	Fsyncs   *Counter   // file fsyncs (the commit latency driver)
	DirSyncs *Counter   // directory fsyncs (atomic replaces, compactions)
	FsyncNS  *Histogram // latency of both kinds of fsync
	BytesIn  *Counter   // bytes read (reads + ReadFile)
	BytesOut *Counter   // bytes written
	Opens    *Counter   // OpenFile + CreateTemp
	Renames  *Counter   // atomic replaces: each compaction/snapshot save completes with exactly one
	IOErrors *Counter   // failed operations of any kind
}

// NewFSMetrics registers the persistence metrics on r under the
// dbpl_persist_* names documented in docs/OBSERVABILITY.md.
func NewFSMetrics(r *Registry) *FSMetrics {
	return &FSMetrics{
		Fsyncs:   r.Counter("dbpl_persist_fsync_total"),
		DirSyncs: r.Counter("dbpl_persist_dir_fsync_total"),
		FsyncNS:  r.Histogram("dbpl_persist_fsync_seconds", UnitDuration, DurationBuckets),
		BytesIn:  r.Counter("dbpl_persist_read_bytes_total"),
		BytesOut: r.Counter("dbpl_persist_write_bytes_total"),
		Opens:    r.Counter("dbpl_persist_open_total"),
		Renames:  r.Counter("dbpl_persist_rename_total"),
		IOErrors: r.Counter("dbpl_persist_io_errors_total"),
	}
}

// InstrumentFS wraps an iofault.FS so every store opened through it
// feeds the dbpl_persist_* metrics: fsync count and latency, bytes in
// and out, opens, renames, and failed operations. The wrapper composes
// with the fault injector in either order (metrics outside the injector
// see injected faults as failures; inside, they see what reached the
// "disk").
func InstrumentFS(inner iofault.FS, r *Registry) iofault.FS {
	return &instrFS{inner: inner, m: NewFSMetrics(r)}
}

type instrFS struct {
	inner iofault.FS
	m     *FSMetrics
}

func (f *instrFS) fail(err error) error {
	if err != nil {
		f.m.IOErrors.Inc()
	}
	return err
}

func (f *instrFS) OpenFile(name string, flag int, perm os.FileMode) (iofault.File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, f.fail(err)
	}
	f.m.Opens.Inc()
	return &instrFile{File: file, m: f.m}, nil
}

func (f *instrFS) CreateTemp(dir, pattern string) (iofault.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, f.fail(err)
	}
	f.m.Opens.Inc()
	return &instrFile{File: file, m: f.m}, nil
}

func (f *instrFS) Rename(oldpath, newpath string) error {
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return f.fail(err)
	}
	f.m.Renames.Inc()
	return nil
}

func (f *instrFS) Remove(name string) error { return f.fail(f.inner.Remove(name)) }

func (f *instrFS) ReadFile(name string) ([]byte, error) {
	b, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, f.fail(err)
	}
	f.m.BytesIn.Add(uint64(len(b)))
	return b, nil
}

func (f *instrFS) ReadDir(name string) ([]os.DirEntry, error) {
	es, err := f.inner.ReadDir(name)
	return es, f.fail(err)
}

func (f *instrFS) Stat(name string) (os.FileInfo, error) {
	fi, err := f.inner.Stat(name)
	return fi, f.fail(err)
}

func (f *instrFS) MkdirAll(path string, perm os.FileMode) error {
	return f.fail(f.inner.MkdirAll(path, perm))
}

func (f *instrFS) SyncDir(dir string) error {
	start := time.Now()
	if err := f.inner.SyncDir(dir); err != nil {
		return f.fail(err)
	}
	f.m.DirSyncs.Inc()
	f.m.FsyncNS.ObserveDuration(time.Since(start))
	return nil
}

// instrFile counts bytes through a store's file handle and times its
// fsyncs.
type instrFile struct {
	iofault.File
	m *FSMetrics
}

// Read counts bytes only: io.EOF is the normal end-of-log signal during
// replay, not a fault, so read errors are left to the stores to classify.
func (f *instrFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	if n > 0 {
		f.m.BytesIn.Add(uint64(n))
	}
	return n, err
}

func (f *instrFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	if n > 0 {
		f.m.BytesOut.Add(uint64(n))
	}
	if err != nil {
		f.m.IOErrors.Inc()
	}
	return n, err
}

func (f *instrFile) Sync() error {
	start := time.Now()
	if err := f.File.Sync(); err != nil {
		f.m.IOErrors.Inc()
		return err
	}
	f.m.Fsyncs.Inc()
	f.m.FsyncNS.ObserveDuration(time.Since(start))
	return nil
}
