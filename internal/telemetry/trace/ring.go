// The bounded ring of completed trace trees. Mirrors the slow-op ring's
// contract — fixed memory, newest wins — with one refinement: a trace
// recorded as *forced* (the request also tripped the slow-op threshold)
// is never displaced by ordinary sampled traffic, so the span tree that
// explains a slow operation survives until an operator fetches it, even
// on a busy server whose ring turns over in seconds.
package trace

import (
	"sort"
	"sync"
)

type ringEntry struct {
	d      Data
	forced bool
	set    bool
}

// Ring retains the last capacity completed traces.
type Ring struct {
	mu    sync.Mutex
	slots []ringEntry
	next  int
	total uint64
}

// NewRing builds a ring holding capacity traces; capacity < 1 is
// clamped to 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]ringEntry, capacity)}
}

// Record adds a completed trace. Ordinary traces overwrite the oldest
// *ordinary* slot; a forced trace may also overwrite the oldest forced
// slot when nothing else is free. An ordinary trace arriving when every
// slot is forced is dropped — forced entries are the ones an operator is
// owed. Returns whether the trace was kept.
func (r *Ring) Record(d Data, forced bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	// First choice: the next slot in rotation, if it is not protecting a
	// forced entry (or if we are forced ourselves and may displace it).
	n := len(r.slots)
	for i := 0; i < n; i++ {
		at := (r.next + i) % n
		if !r.slots[at].set || !r.slots[at].forced {
			r.slots[at] = ringEntry{d: d, forced: forced, set: true}
			r.next = (at + 1) % n
			return true
		}
	}
	if !forced {
		return false
	}
	// Every slot holds a forced entry; displace the oldest one.
	oldest := 0
	for i := 1; i < n; i++ {
		if r.slots[i].d.Begin.Before(r.slots[oldest].d.Begin) {
			oldest = i
		}
	}
	r.slots[oldest] = ringEntry{d: d, forced: true, set: true}
	r.next = (oldest + 1) % n
	return true
}

// Total reports how many traces were ever offered to the ring (kept or
// dropped), for the registry gauge.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(r.total)
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []Data {
	r.mu.Lock()
	out := make([]Data, 0, len(r.slots))
	for _, e := range r.slots {
		if e.set {
			out = append(out, e.d)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Begin.After(out[j].Begin) })
	return out
}
