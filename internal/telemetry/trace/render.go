// Text rendering of a completed trace: the span tree with per-span
// offsets and durations, shared by `dbpl trace` and the tests that
// assert span nesting.
package trace

import (
	"fmt"
	"io"
	"time"
)

// WriteText renders the trace as an indented tree. The header carries
// the IDs an operator correlates on (trace ID, link, slow-op ring,
// exemplars); each span line shows its offset from the trace start and
// its duration.
func WriteText(w io.Writer, d Data) {
	fmt.Fprintf(w, "trace %016x  %s  %s", d.ID, d.Op, d.Begin.Format(time.RFC3339Nano))
	if d.Link != 0 {
		fmt.Fprintf(w, "  link=%016x", d.Link)
	}
	fmt.Fprintln(w)
	// Children in recorded order under each parent; the span array is
	// small, so the quadratic child scan is cheaper than building maps.
	var walk func(parent SpanID, depth int)
	walk = func(parent SpanID, depth int) {
		for i, s := range d.Spans {
			if s.Parent != parent {
				continue
			}
			fmt.Fprintf(w, "  %*s%-*s @%-10s %s\n",
				2*depth, "", 24-2*depth, s.Name, rdur(s.Start), rdur(s.Dur))
			walk(SpanID(i), depth+1)
		}
	}
	walk(NoSpan, 0)
}

// rdur rounds a duration for display: microsecond precision is plenty
// against a 1µs histogram floor.
func rdur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
