package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := New(42, "PUT")
	commit := tr.Start(0, "commit")
	stage := tr.Start(commit, "stage")
	time.Sleep(time.Millisecond)
	tr.End(stage)
	tr.End(commit)
	tr.Finish()

	d := tr.Data()
	if d.ID != 42 || d.Op != "PUT" {
		t.Fatalf("got ID=%d Op=%q", d.ID, d.Op)
	}
	if len(d.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(d.Spans))
	}
	if d.Spans[0].Parent != NoSpan || d.Spans[1].Parent != 0 || d.Spans[2].Parent != 1 {
		t.Fatalf("bad parents: %+v", d.Spans)
	}
	if d.Spans[2].Dur <= 0 {
		t.Fatalf("stage span has no duration: %+v", d.Spans[2])
	}
	// Nesting invariant: a child's interval lies within its parent's.
	for i, s := range d.Spans {
		if s.Parent == NoSpan {
			continue
		}
		p := d.Spans[s.Parent]
		if s.Start < p.Start || s.Start+s.Dur > p.Start+p.Dur {
			t.Fatalf("span %d [%v,%v] escapes parent [%v,%v]",
				i, s.Start, s.Start+s.Dur, p.Start, p.Start+p.Dur)
		}
	}
}

func TestTraceAddExplicitInterval(t *testing.T) {
	tr := New(7, "PUT")
	start := time.Now()
	end := start.Add(3 * time.Millisecond)
	tr.Add(0, "fsync", start, end)
	tr.Finish()
	d := tr.Data()
	if len(d.Spans) != 2 || d.Spans[1].Name != "fsync" {
		t.Fatalf("spans: %+v", d.Spans)
	}
	if d.Spans[1].Dur != 3*time.Millisecond {
		t.Fatalf("dur = %v, want 3ms", d.Spans[1].Dur)
	}
	// Inverted interval is clamped, not negative.
	tr2 := New(8, "PUT")
	tr2.Add(0, "bad", end, start)
	if got := tr2.Data().Spans[1].Dur; got != 0 {
		t.Fatalf("inverted interval dur = %v, want 0", got)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if id := tr.Start(0, "x"); id != NoSpan {
		t.Fatalf("nil Start = %d, want NoSpan", id)
	}
	tr.End(0)
	tr.End(NoSpan)
	tr.Add(0, "x", time.Now(), time.Now())
	tr.SetLink(9)
	tr.Finish()
	if tr.ID() != 0 {
		t.Fatal("nil ID != 0")
	}
	if d := tr.Data(); d.ID != 0 || len(d.Spans) != 0 {
		t.Fatalf("nil Data = %+v", d)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := New(1, "X")
	for i := 0; i < maxSpans+10; i++ {
		tr.Start(0, "s")
	}
	if got := len(tr.Data().Spans); got != maxSpans {
		t.Fatalf("span count %d, want cap %d", got, maxSpans)
	}
	// End on an out-of-range ID from a dropped Start must not panic.
	tr.End(SpanID(maxSpans + 5))
}

func TestSampler(t *testing.T) {
	if NewSampler(0).Sample(NextID()) {
		t.Fatal("rate 0 sampled")
	}
	all := NewSampler(1)
	if !all.Sample(NextID()) || all.Sample(0) {
		t.Fatal("rate 1 must keep every non-zero ID and never ID 0")
	}
	// A fractional rate keeps roughly that share of uniform IDs.
	half := NewSampler(0.5)
	kept := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if half.Sample(NextID()) {
			kept++
		}
	}
	if kept < n*4/10 || kept > n*6/10 {
		t.Fatalf("rate 0.5 kept %d/%d", kept, n)
	}
	// Determinism: both ends of a replication link make the same call.
	id := NextID()
	if half.Sample(id) != half.Sample(id) {
		t.Fatal("sampler not deterministic")
	}
}

func TestNextIDNonZeroDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NextID()
		if id == 0 || seen[id] {
			t.Fatalf("NextID collision or zero: %d", id)
		}
		seen[id] = true
	}
}

func dataAt(id uint64, at time.Time) Data {
	return Data{ID: id, Op: "OP", Begin: at}
}

func TestRingForcedRetention(t *testing.T) {
	r := NewRing(4)
	base := time.Now()
	if !r.Record(dataAt(1, base), true) {
		t.Fatal("forced record dropped on empty ring")
	}
	// A flood of ordinary traces turns the ring over…
	for i := uint64(2); i < 50; i++ {
		r.Record(dataAt(i, base.Add(time.Duration(i))), false)
	}
	// …but the forced entry survives.
	found := false
	for _, d := range r.Snapshot() {
		if d.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("forced trace displaced by ordinary traffic")
	}
}

func TestRingAllForced(t *testing.T) {
	r := NewRing(2)
	base := time.Now()
	r.Record(dataAt(1, base), true)
	r.Record(dataAt(2, base.Add(1)), true)
	// Ordinary trace has nowhere to go.
	if r.Record(dataAt(3, base.Add(2)), false) {
		t.Fatal("ordinary trace displaced a forced entry")
	}
	// A newer forced trace displaces the oldest forced entry.
	if !r.Record(dataAt(4, base.Add(3)), true) {
		t.Fatal("forced trace dropped")
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != 4 || snap[1].ID != 2 {
		t.Fatalf("snapshot after forced displacement: %+v", snap)
	}
}

func TestRingSnapshotNewestFirst(t *testing.T) {
	r := NewRing(8)
	base := time.Now()
	for i := uint64(1); i <= 5; i++ {
		r.Record(dataAt(i, base.Add(time.Duration(i))), false)
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Begin.After(snap[i-1].Begin) {
			t.Fatalf("snapshot not newest-first: %+v", snap)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
}

// TestRingConcurrentForced is the -race stress for the satellite: many
// writers racing ordinary and forced records must never lose a
// force-retained entry while forced count ≤ capacity.
func TestRingConcurrentForced(t *testing.T) {
	const (
		writers   = 8
		perWriter = 500
		forcedPer = 2 // 16 forced total, ring capacity 32
	)
	r := NewRing(32)
	var wg sync.WaitGroup
	base := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i + 1)
				forced := i < forcedPer
				r.Record(dataAt(id, base.Add(time.Duration(id))), forced)
			}
		}(w)
	}
	wg.Wait()
	forcedIDs := map[uint64]bool{}
	for w := 0; w < writers; w++ {
		for i := 0; i < forcedPer; i++ {
			forcedIDs[uint64(w*perWriter+i+1)] = true
		}
	}
	kept := 0
	for _, d := range r.Snapshot() {
		if forcedIDs[d.ID] {
			kept++
		}
	}
	if kept != writers*forcedPer {
		t.Fatalf("lost forced traces: kept %d of %d", kept, writers*forcedPer)
	}
	if r.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*perWriter)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := New(0xdeadbeef, "PUT")
	tr.SetLink(0xfeed)
	c := tr.Start(0, "commit")
	tr.Start(c, "fsync")
	tr.End(c)
	tr.Finish()
	d := tr.Data()

	got, err := Decode(d.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != d.ID || got.Link != d.Link || got.Op != d.Op {
		t.Fatalf("header mismatch: %+v vs %+v", got, d)
	}
	if got.Begin.UnixNano() != d.Begin.UnixNano() {
		t.Fatalf("begin mismatch: %v vs %v", got.Begin, d.Begin)
	}
	if len(got.Spans) != len(d.Spans) {
		t.Fatalf("span count %d vs %d", len(got.Spans), len(d.Spans))
	}
	for i := range d.Spans {
		if got.Spans[i] != d.Spans[i] {
			t.Fatalf("span %d: %+v vs %+v", i, got.Spans[i], d.Spans[i])
		}
	}
}

func TestDecodeMalformed(t *testing.T) {
	good := New(1, "GET").Data().AppendBinary(nil)
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   {'X', 1},
		"bad version": {'T', 99},
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Hostile span count must not allocate unboundedly.
	hostile := []byte{'T', traceVersion}
	hostile = append(hostile, 1, 1) // id, link
	hostile = append(hostile, 0)    // empty op
	hostile = append(hostile, 2)    // begin varint (1)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := Decode(hostile); err == nil {
		t.Error("hostile span count decoded without error")
	}
	// Parent index pointing outside the span array is rejected.
	d := Data{ID: 1, Op: "X", Begin: time.Now(),
		Spans: []Span{{Name: "a", Parent: 5}}}
	if _, err := Decode(d.AppendBinary(nil)); err == nil {
		t.Error("out-of-range parent decoded without error")
	}
}

func TestWriteText(t *testing.T) {
	tr := New(0xabc, "PUT")
	tr.SetLink(0x123)
	c := tr.Start(0, "commit")
	tr.Start(c, "fsync")
	tr.End(c)
	tr.Finish()
	var sb strings.Builder
	WriteText(&sb, tr.Data())
	out := sb.String()
	for _, want := range []string{"0000000000000abc", "PUT", "link=0000000000000123", "commit", "fsync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// fsync is indented deeper than commit.
	lines := strings.Split(out, "\n")
	var commitIndent, fsyncIndent int
	for _, l := range lines {
		trimmed := strings.TrimLeft(l, " ")
		switch {
		case strings.HasPrefix(trimmed, "commit"):
			commitIndent = len(l) - len(trimmed)
		case strings.HasPrefix(trimmed, "fsync"):
			fsyncIndent = len(l) - len(trimmed)
		}
	}
	if fsyncIndent <= commitIndent {
		t.Fatalf("fsync not nested under commit:\n%s", out)
	}
}
