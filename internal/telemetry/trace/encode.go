// Wire/binary form of a completed trace, one trace per TRACES response
// field. Same hardening posture as the telemetry snapshot codec: a
// hostile or corrupt payload must yield a typed error, never a panic or
// an unbounded allocation.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

const (
	traceMagic   = 'T'
	traceVersion = 1

	maxDecodeSpans   = maxSpans
	maxDecodeNameLen = 256
)

// AppendBinary appends the encoded trace to dst and returns the extended
// slice. Layout: magic, version, id, link, op, begin-unixnano, span
// count, then per span name/parent/start/dur. All integers are varints
// (zigzag where the value can be negative).
func (d Data) AppendBinary(dst []byte) []byte {
	dst = append(dst, traceMagic, traceVersion)
	dst = binary.AppendUvarint(dst, d.ID)
	dst = binary.AppendUvarint(dst, d.Link)
	dst = appendString(dst, d.Op)
	dst = binary.AppendVarint(dst, d.Begin.UnixNano())
	dst = binary.AppendUvarint(dst, uint64(len(d.Spans)))
	for _, s := range d.Spans {
		dst = appendString(dst, s.Name)
		dst = binary.AppendVarint(dst, int64(s.Parent))
		dst = binary.AppendVarint(dst, int64(s.Start))
		dst = binary.AppendVarint(dst, int64(s.Dur))
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Decode parses one encoded trace.
func Decode(b []byte) (Data, error) {
	var d Data
	if len(b) < 2 || b[0] != traceMagic {
		return d, errors.New("trace: bad magic")
	}
	if b[1] != traceVersion {
		return d, fmt.Errorf("trace: unsupported version %d", b[1])
	}
	dec := decoder{b: b[2:]}
	d.ID = dec.uvarint()
	d.Link = dec.uvarint()
	d.Op = dec.str()
	d.Begin = time.Unix(0, dec.varint())
	n := dec.uvarint()
	if dec.err == nil && n > maxDecodeSpans {
		return d, fmt.Errorf("trace: span count %d exceeds limit", n)
	}
	if dec.err == nil && n > 0 {
		d.Spans = make([]Span, 0, n)
		for i := uint64(0); i < n && dec.err == nil; i++ {
			var s Span
			s.Name = dec.str()
			parent := dec.varint()
			if dec.err == nil && (parent < int64(NoSpan) || parent >= int64(n)) {
				return d, fmt.Errorf("trace: span parent %d out of range", parent)
			}
			s.Parent = SpanID(parent)
			s.Start = time.Duration(dec.varint())
			s.Dur = time.Duration(dec.varint())
			d.Spans = append(d.Spans, s)
		}
	}
	if dec.err != nil {
		return Data{}, dec.err
	}
	if len(dec.b) != 0 {
		return Data{}, fmt.Errorf("trace: %d trailing bytes", len(dec.b))
	}
	return d, nil
}

// decoder consumes from the front of b, latching the first error so
// callers can decode a whole record and check once.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = errors.New("trace: truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = errors.New("trace: truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxDecodeNameLen {
		d.err = fmt.Errorf("trace: string length %d exceeds limit", n)
		return ""
	}
	if uint64(len(d.b)) < n {
		d.err = errors.New("trace: truncated string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
