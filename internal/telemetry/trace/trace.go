// Package trace records lightweight span trees for individual requests.
//
// A Trace is a flat array of spans; each span names an interval of work
// and points at its parent by index, so building one costs a handful of
// appends and no per-span allocations beyond the backing array. The
// trace ID reuses the wire trace ID the client stamped on the request
// (or a server-generated one when the request arrived unstamped), which
// makes a span tree joinable against client logs, the slow-op ring, and
// histogram exemplars without any extra correlation machinery.
//
// Every method on *Trace is nil-safe: an unsampled request carries a nil
// trace and every Start/End/Add collapses to a no-op without a branch at
// the call sites. That is the whole overhead story for sampling-off —
// see EXPERIMENTS.md E20.
//
// Traces cross goroutines: under group commit the coalescer goroutine
// appends queue-wait/fsync spans to a waiter's trace while the waiter
// owns it, so span mutation is guarded by a mutex. The completed tree is
// snapshotted into a plain-value Data before it enters the ring.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID indexes a span within its trace. The root span is always index
// 0; NoSpan is returned by Start on a nil or full trace and is accepted
// (as a no-op) everywhere a SpanID is.
type SpanID int32

// NoSpan is the SpanID of a span that was never recorded.
const NoSpan SpanID = -1

// maxSpans bounds one trace's span count so a pathological handler loop
// cannot grow a trace without bound; Start past the cap drops the span.
const maxSpans = 1 << 12

// Span is one named interval. Start and Dur are offsets relative to the
// trace's Begin so a span costs 8+8 bytes instead of two time.Times, and
// the encoded form stays compact.
type Span struct {
	Name   string        `json:"name"`
	Parent SpanID        `json:"parent"` // index into the trace's span array; -1 for the root
	Start  time.Duration `json:"start"`  // offset from the trace's Begin
	Dur    time.Duration `json:"dur"`
}

// Trace is one in-progress span tree. The zero value is not useful; use
// New. A nil *Trace is the "unsampled" trace and all methods no-op on it.
type Trace struct {
	id    uint64
	op    string
	begin time.Time
	link  uint64 // originating trace on another node (follower apply → primary commit)

	mu    sync.Mutex
	spans []Span
}

// New starts a trace rooted at a span named op. The root span is open
// until Finish.
func New(id uint64, op string) *Trace {
	return &Trace{
		id:    id,
		op:    op,
		begin: time.Now(),
		spans: []Span{{Name: op, Parent: NoSpan}},
	}
}

// ID reports the trace ID; 0 on a nil (unsampled) trace.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// SetLink records the ID of the trace this one continues on another
// node — a follower's apply trace links to the primary commit trace
// carried by the REPDATA frame.
func (t *Trace) SetLink(link uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.link = link
	t.mu.Unlock()
}

// Start opens a child span under parent and returns its ID. On a nil
// trace, or when the trace is full, it returns NoSpan (which End
// ignores).
func (t *Trace) Start(parent SpanID, name string) SpanID {
	if t == nil {
		return NoSpan
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		return NoSpan
	}
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: time.Since(t.begin)})
	return SpanID(len(t.spans) - 1)
}

// End closes the span opened by Start. NoSpan and out-of-range IDs are
// ignored.
func (t *Trace) End(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.spans) {
		return
	}
	t.spans[id].Dur = time.Since(t.begin) - t.spans[id].Start
}

// Add records an already-completed interval as a child of parent. This
// is how a different goroutine (the coalescer) attributes shared work —
// queue-wait, the batched fsync — to a waiter's trace: it measures the
// interval itself and appends it wholesale.
func (t *Trace) Add(parent SpanID, name string, start, end time.Time) {
	if t == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		return
	}
	t.spans = append(t.spans, Span{
		Name:   name,
		Parent: parent,
		Start:  start.Sub(t.begin),
		Dur:    end.Sub(start),
	})
}

// Finish closes the root span. Call once, when the request completes.
func (t *Trace) Finish() {
	t.End(0)
}

// Data is a completed trace as plain values: safe to retain in the ring,
// encode, or serve as JSON while the originating goroutines move on.
type Data struct {
	ID    uint64    `json:"id"`
	Op    string    `json:"op"`
	Begin time.Time `json:"begin"`
	Link  uint64    `json:"link,omitempty"`
	Spans []Span    `json:"spans"`
}

// Data snapshots the trace. On a nil trace it returns the zero Data.
func (t *Trace) Data() Data {
	if t == nil {
		return Data{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := Data{ID: t.id, Op: t.op, Begin: t.begin, Link: t.link}
	d.Spans = make([]Span, len(t.spans))
	copy(d.Spans, t.spans)
	return d
}

// Sampler decides, from the trace ID alone, whether a request is traced.
// Trace IDs are splitmix64 outputs (uniform over uint64), so comparing
// against rate×MaxUint64 head-samples at the configured rate — and both
// ends of a replication link holding the same rate make the *same*
// decision for the same ID, which is what links a follower's apply trace
// to the primary's commit trace without any negotiation.
type Sampler struct {
	threshold uint64
}

// NewSampler builds a sampler keeping approximately rate of traffic;
// rate ≤ 0 keeps nothing, rate ≥ 1 keeps everything.
func NewSampler(rate float64) Sampler {
	switch {
	case rate <= 0:
		return Sampler{}
	case rate >= 1:
		return Sampler{threshold: ^uint64(0)}
	default:
		return Sampler{threshold: uint64(rate * float64(^uint64(0)))}
	}
}

// Sample reports whether the trace ID is kept. ID 0 (untraced wire
// request) is never kept — callers mint an ID with NextID first.
func (s Sampler) Sample(id uint64) bool {
	return id != 0 && id <= s.threshold
}

// traceSeq seeds server-generated trace IDs; crypto-seeded once so
// concurrent servers in one process do not collide.
var traceSeq atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		traceSeq.Store(binary.LittleEndian.Uint64(b[:]))
	}
}

// NextID returns a fresh non-zero trace ID: splitmix64 over a seeded
// counter, the same generator the client uses to stamp requests, so
// server-minted IDs are uniform and the Sampler's threshold comparison
// stays honest.
func NextID() uint64 {
	for {
		z := traceSeq.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}
