package intrinsic

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/value"
)

// render summarizes the visible state of a store — every root, printed —
// for equality checks between a live store and its reopened image.
func render(s *Store) map[string]string {
	out := map[string]string{}
	for _, n := range s.Names() {
		if r, ok := s.Root(n); ok {
			out[n] = r.Value.String()
		}
	}
	return out
}

func sameState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// crashWorkload runs a fixed scripted session against a store on fsys:
// three commits with a Compact between the second and third. It returns
// the rendered state after each *successful* commit. Every durable point
// is a checkpoint; Compact does not change the logical state (it commits
// first), so it adds no checkpoint. Errors end the run early — exactly
// what a crash does.
func crashWorkload(fsys iofault.FS, path string) (checkpoints []map[string]string) {
	s, err := OpenFS(fsys, path)
	if err != nil {
		return nil
	}
	defer s.Close()
	step := func(mutate func() error) bool {
		if err := mutate(); err != nil {
			return false
		}
		if _, err := s.Commit(); err != nil {
			return false
		}
		checkpoints = append(checkpoints, render(s))
		return true
	}

	if !step(func() error {
		return s.Bind("emp", value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1)), nil)
	}) {
		return
	}
	if !step(func() error {
		r, _ := s.Root("emp")
		r.Value.(*value.Record).Set("Empno", value.Int(2))
		return s.Bind("dept", value.NewSet(value.Rec("Dname", value.String("Sales"))), nil)
	}) {
		return
	}
	if _, err := s.Compact(); err != nil {
		return
	}
	step(func() error { return s.Bind("n", value.Int(42), nil) })
	return
}

// TestCrashAtEveryIOBoundary is the crash matrix: a probe run counts the
// mutating I/O operations of the scripted workload, then the workload is
// re-run crashing at every single boundary (with and without losing
// unsynced page-cache data). After each crash the store is reopened over
// the real files and must hold *exactly* a committed state: the last
// checkpoint the crashed run completed, or — when the crash hit inside a
// commit whose bytes were already fully durable — the very next one.
// Anything else (a torn state, a panic, a refused open) fails.
func TestCrashAtEveryIOBoundary(t *testing.T) {
	probe := iofault.NewInjector(iofault.OS{})
	want := crashWorkload(probe, filepath.Join(t.TempDir(), "store.log"))
	if len(want) != 3 {
		t.Fatalf("fault-free workload made %d checkpoints, want 3", len(want))
	}
	n := probe.Ops()
	if n < 10 {
		t.Fatalf("workload performed only %d mutating ops", n)
	}

	for _, lose := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			t.Run(fmt.Sprintf("lose=%v/op=%d", lose, k), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "store.log")
				inj := iofault.NewInjector(iofault.OS{})
				inj.LoseUnsynced = lose
				inj.CrashAt(k)
				got := crashWorkload(inj, path)
				if !inj.Crashed() {
					t.Fatalf("crash at op %d never fired", k)
				}

				s, err := Open(path)
				if err != nil {
					t.Fatalf("reopen after crash at op %d: %v", k, err)
				}
				defer s.Close()
				state := render(s)

				// The crashed run completed len(got) checkpoints. An
				// in-flight commit is all-or-nothing: the reopened state is
				// that checkpoint or, if the group was fully written before
				// the crash boundary, the next one — never anything between.
				allowed := []map[string]string{{}}
				if len(got) > 0 {
					allowed = []map[string]string{got[len(got)-1]}
				}
				if len(got) < len(want) {
					allowed = append(allowed, want[len(got)])
				}
				for _, a := range allowed {
					if sameState(state, a) {
						return
					}
				}
				t.Fatalf("crash at op %d (lose=%v): reopened state %v not a committed checkpoint (allowed %v)",
					k, lose, state, allowed)
			})
		}
	}
}

// TestCommitFailureThenRecovery is the regression for the torn-commit bug:
// a failed write or sync inside Commit must roll the log back to the last
// durable group, so the *next* commit appends cleanly instead of landing
// after torn garbage.
func TestCommitFailureThenRecovery(t *testing.T) {
	for _, op := range []iofault.Op{iofault.OpWrite, iofault.OpSync} {
		t.Run(string(op), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "store.log")
			inj := iofault.NewInjector(iofault.OS{})
			s, err := OpenFS(inj, path)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.Bind("x", value.Int(1), nil); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}

			inj.FailAt(op, inj.Count(op)+1)
			if err := s.Bind("x", value.Int(2), nil); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Commit(); err == nil {
				t.Fatalf("Commit with injected %s failure succeeded", op)
			} else if !errors.Is(err, iofault.ErrInjected) {
				t.Fatalf("Commit error %v does not wrap ErrInjected", err)
			}

			// The rollback leaves the log clean; retrying the commit works
			// and persists the pending binding.
			if _, err := s.Commit(); err != nil {
				t.Fatalf("Commit after rollback: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if got := rootInt(t, path, "x"); got != 2 {
				t.Fatalf("x = %d after reopen, want 2", got)
			}
			rep, err := Fsck(path)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("log not clean after rollback + retry: %v", rep)
			}
		})
	}
}

// TestPoisonedStoreRecoversViaAbort drives the worst case: the commit's
// write fails *and* the rollback truncate fails, leaving torn bytes the
// store cannot remove. Further commits must refuse with ErrPoisoned until
// Abort replays the log, after which committing works again.
func TestPoisonedStoreRecoversViaAbort(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	inj := iofault.NewInjector(iofault.OS{})
	s, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	inj.FailAt(iofault.OpWrite, inj.Count(iofault.OpWrite)+1)
	inj.FailAt(iofault.OpTruncate, inj.Count(iofault.OpTruncate)+1)
	if err := s.Bind("x", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err == nil {
		t.Fatal("Commit with failing write+truncate succeeded")
	}
	if _, err := s.Commit(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Commit on poisoned store: %v, want ErrPoisoned", err)
	}
	if _, err := s.Compact(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Compact on poisoned store: %v, want ErrPoisoned", err)
	}

	if err := s.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	// Abort discarded the uncommitted generation and the torn bytes are
	// trimmed by the next append.
	if r, _ := s.Root("x"); !value.Equal(r.Value, value.Int(1)) {
		t.Fatalf("x = %v after Abort, want 1", r.Value)
	}
	if err := s.Bind("x", value.Int(3), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("Commit after Abort: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rootInt(t, path, "x"); got != 3 {
		t.Fatalf("x = %d after reopen, want 3", got)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("log not clean after poison recovery: %v", rep)
	}
}
