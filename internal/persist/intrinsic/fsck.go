package intrinsic

import (
	"fmt"
	"io"
	"os"

	"dbpl/internal/persist/iofault"
)

// FsckReport is the verdict of a structural log verification: how much of
// the file is valid, what it holds, and — when the log is damaged — whether
// the damage is a recoverable torn tail or deterministic corruption.
type FsckReport struct {
	Path    string
	Version byte  // log format version (1 or 2)
	Size    int64 // file size in bytes
	GoodEnd int64 // offset just past the last valid commit group
	Commits int   // valid commit groups
	Nodes   int   // node records inside valid groups
	Roots   int   // root-table entries in the last valid root table
	// IndexDefs counts the entries of the last valid index-definition
	// table ('X' record) — the field indexes a reopen will rebuild.
	IndexDefs int
	// Epoch is the last committed promotion epoch ('E' record); 0 for a
	// log that was never promoted.
	Epoch uint64
	// TornTail reports bytes past GoodEnd that a crash explains (an
	// interrupted commit); they are ignored by Open and dropped by Salvage.
	TornTail bool
	// Corrupt is non-nil when the log holds deterministically detected
	// corruption (v2 checksum mismatch or structurally impossible bytes);
	// Open refuses such a log, Salvage recovers the prefix before it.
	Corrupt *CorruptError
}

// Clean reports whether the log is fully valid: no torn tail, no
// corruption.
func (r *FsckReport) Clean() bool { return !r.TornTail && r.Corrupt == nil }

// String renders the report in the format the fsck CLI verb prints.
func (r *FsckReport) String() string {
	s := fmt.Sprintf("%s: log v%d, %d bytes, %d commits, %d nodes, %d roots, %d index defs, epoch %d\n",
		r.Path, r.Version, r.Size, r.Commits, r.Nodes, r.Roots, r.IndexDefs, r.Epoch)
	s += fmt.Sprintf("last valid commit ends at offset %d", r.GoodEnd)
	switch {
	case r.Corrupt != nil:
		s += fmt.Sprintf("\nCORRUPT at offset %d: %s", r.Corrupt.Offset, r.Corrupt.Reason)
		s += fmt.Sprintf("\nsalvageable prefix: %d bytes", r.GoodEnd)
	case r.TornTail:
		s += fmt.Sprintf("\ntorn tail: %d trailing bytes from an interrupted commit (ignored on open)", r.Size-r.GoodEnd)
	default:
		s += "\nclean"
	}
	return s
}

// Fsck verifies the log at path without opening it as a store: it checks
// every record's structure and (v2) every commit group's CRC-32C, and
// reports the last valid commit offset. It never modifies the file.
func Fsck(path string) (*FsckReport, error) {
	return FsckFS(iofault.OS{}, path)
}

// FsckFS is Fsck over an explicit file system.
func FsckFS(fsys iofault.FS, path string) (*FsckReport, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := fsys.Stat(path)
	if err != nil {
		return nil, err
	}

	rep := &FsckReport{Path: path, Size: fi.Size()}
	nodes := 0
	var lastRoots, lastDefs int
	var lastEpoch, pendingEpoch uint64
	pendingNodes := 0
	pendingRoots, pendingDefs := -1, -1
	sawEpoch := false
	sum, err := scanLog(f, scanSink{
		node:      func(uint64, []byte) { pendingNodes++ },
		roots:     func(entries []rootEntry) { pendingRoots = len(entries) },
		indexDefs: func(fields []string) { pendingDefs = len(fields) },
		epoch:     func(e uint64) { pendingEpoch, sawEpoch = e, true },
		commit: func(int64) {
			nodes += pendingNodes
			pendingNodes = 0
			if pendingRoots >= 0 {
				lastRoots = pendingRoots
				pendingRoots = -1
			}
			if pendingDefs >= 0 {
				lastDefs = pendingDefs
				pendingDefs = -1
			}
			if sawEpoch {
				lastEpoch = pendingEpoch
				sawEpoch = false
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if sum.empty {
		rep.Version = logVersion
		rep.TornTail = false
		return rep, nil
	}
	rep.Version = sum.version
	rep.GoodEnd = sum.goodEnd
	rep.Commits = sum.commits
	rep.Nodes = nodes
	rep.Roots = lastRoots
	rep.IndexDefs = lastDefs
	rep.Epoch = lastEpoch
	rep.TornTail = sum.torn
	rep.Corrupt = sum.corrupt
	return rep, nil
}

// Salvage copies the valid prefix of the log at src — everything up to and
// including the last valid commit group — into a fresh log at dst, written
// atomically and durably. The result opens cleanly and holds exactly the
// last committed state; torn or corrupt bytes are dropped. It returns the
// fsck report of the source, whose GoodEnd is the number of bytes kept.
func Salvage(src, dst string) (*FsckReport, error) {
	return SalvageFS(iofault.OS{}, src, dst)
}

// SalvageFS is Salvage over an explicit file system.
func SalvageFS(fsys iofault.FS, src, dst string) (*FsckReport, error) {
	rep, err := FsckFS(fsys, src)
	if err != nil {
		return nil, err
	}
	if rep.Corrupt != nil && rep.GoodEnd == 0 {
		// Not even the header survived; a fresh empty log is all that can
		// be salvaged.
		err := iofault.AtomicWriteFile(fsys, dst, func(w io.Writer) error {
			_, werr := w.Write(append([]byte(logMagic), logVersion))
			return werr
		})
		if err != nil {
			return nil, err
		}
		return rep, nil
	}
	f, err := fsys.OpenFile(src, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	err = iofault.AtomicWriteFile(fsys, dst, func(w io.Writer) error {
		_, cerr := io.CopyN(w, f, rep.GoodEnd)
		return cerr
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
