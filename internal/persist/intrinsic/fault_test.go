package intrinsic

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dbpl/internal/value"
)

// Fault injection on the log: Open over a corrupted file must either
// succeed (possibly with older state) or fail with an error — never panic
// or hang.

func buildLog(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("a", value.Rec("K", value.Int(1),
		"Nested", value.Rec("L", value.NewList(value.Int(1), value.String("x")))), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("b", value.NewSet(value.Rec("S", value.Int(2))), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Root("a")
	r.Value.(*value.Record).Set("K", value.Int(2))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return path
}

func openSafely(t *testing.T, path, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s: Open panicked: %v", what, r)
			}
			close(done)
		}()
		if s, err := Open(path); err == nil {
			// If it opened, the visible state must be internally usable.
			for _, n := range s.Names() {
				if r, ok := s.Root(n); ok {
					_ = r.Value.String()
				}
			}
			s.Close()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: Open hung", what)
	}
}

func TestLogBitFlipsNeverPanic(t *testing.T) {
	dir := t.TempDir()
	orig := buildLog(t, dir)
	img, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		mut := append([]byte(nil), img...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			i := rng.Intn(len(mut))
			mut[i] ^= 1 << rng.Intn(8)
		}
		path := filepath.Join(dir, "mut.log")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		openSafely(t, path, "bitflip")
	}
}

func TestLogGarbageNeverPanics(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(300)
		img := make([]byte, n)
		rng.Read(img)
		path := filepath.Join(dir, "garbage.log")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		openSafely(t, path, "garbage")
	}
	// Garbage behind a valid header.
	for trial := 0; trial < 60; trial++ {
		img := append([]byte(logMagic), logVersion)
		tail := make([]byte, rng.Intn(200))
		rng.Read(tail)
		img = append(img, tail...)
		path := filepath.Join(dir, "gwh.log")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		openSafely(t, path, "garbage-with-header")
	}
}
