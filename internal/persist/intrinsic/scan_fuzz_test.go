package intrinsic

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// v2Group appends one v2 commit group (records + 'C' + CRC-32C) to log.
func v2Group(log *bytes.Buffer, records func(b *nodeBuf)) {
	var b nodeBuf
	records(&b)
	b.WriteByte(recCommit)
	var tr [checksumSize]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(b.Bytes(), crcTable))
	b.Write(tr[:])
	log.Write(b.Bytes())
}

// seedLogWithIndexGroup builds a well-formed v2 log whose second commit
// group carries an index-definition delta — the satellite seed for the log
// fuzzer, exercising the 'X' grammar alongside nodes and roots.
func seedLogWithIndexGroup(t testing.TB) []byte {
	var log bytes.Buffer
	log.WriteString(logMagic)
	log.WriteByte(logVersion2)
	v2Group(&log, func(b *nodeBuf) {
		b.WriteByte(recRoots)
		b.uvarint(1)
		b.str("x")
		if err := b.typ(types.Int); err != nil {
			t.Fatal(err)
		}
		var vb nodeBuf
		if err := encodeInline(&vb, value.Int(7), nil); err != nil {
			t.Fatal(err)
		}
		b.uvarint(uint64(vb.Len()))
		b.Write(vb.Bytes())
	})
	v2Group(&log, func(b *nodeBuf) {
		b.WriteByte(recIndex)
		b.uvarint(2)
		b.str("Empno")
		b.str("Dept")
	})
	return log.Bytes()
}

// FuzzScanLog is the structural reader's contract under arbitrary bytes:
// scanLog never panics, never returns an I/O error on an in-memory reader,
// and its verdict is coherent — goodEnd within the input, corruption and
// torn-tail reports never pointing past it, and replay (sink callbacks)
// confined to validated groups.
func FuzzScanLog(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(logMagic))
	f.Add(append([]byte(logMagic), logVersion1))
	seed := seedLogWithIndexGroup(f)
	f.Add(seed)
	// Torn inside the index-definition record.
	f.Add(seed[:len(seed)-checksumSize-2])
	// One flipped bit inside the index group: must read as corruption.
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)-checksumSize-3] ^= 0x40
	f.Add(flipped)
	// An actually-unknown record kind after a valid group.
	f.Add(append(append([]byte(nil), seed...), 'Z', 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		commits := 0
		lastCommitEnd := int64(0)
		sum, err := scanLog(bytes.NewReader(data), scanSink{
			node:      func(uint64, []byte) {},
			roots:     func([]rootEntry) {},
			indexDefs: func([]string) {},
			commit: func(end int64) {
				commits++
				lastCommitEnd = end
			},
		})
		if err != nil {
			t.Fatalf("scanLog returned an I/O error on in-memory input: %v", err)
		}
		if sum.goodEnd < 0 || sum.goodEnd > int64(len(data)) {
			t.Fatalf("goodEnd %d outside input of %d bytes", sum.goodEnd, len(data))
		}
		if sum.commits != commits {
			t.Fatalf("summary commits %d != sink commits %d", sum.commits, commits)
		}
		if commits > 0 && lastCommitEnd > sum.goodEnd {
			t.Fatalf("commit callback fired at %d past goodEnd %d", lastCommitEnd, sum.goodEnd)
		}
		if sum.corrupt != nil && (sum.corrupt.Offset < 0 || sum.corrupt.Offset > int64(len(data))) {
			t.Fatalf("corruption offset %d outside input", sum.corrupt.Offset)
		}
	})
}

// TestScanLogIndexSeeds pins the exact classification of the fuzz seeds,
// so the properties FuzzScanLog checks loosely are verified sharply here:
// the index group parses (named, not "unknown record"), tears are torn,
// and bit rot is corruption.
func TestScanLogIndexSeeds(t *testing.T) {
	seed := seedLogWithIndexGroup(t)

	var defs []string
	sum, err := scanLog(bytes.NewReader(seed), scanSink{
		indexDefs: func(fields []string) { defs = fields },
	})
	if err != nil || sum.corrupt != nil || sum.torn {
		t.Fatalf("clean seed misclassified: err=%v sum=%+v", err, sum)
	}
	if sum.commits != 2 || len(defs) != 2 || defs[0] != "Empno" {
		t.Fatalf("index group not replayed: commits=%d defs=%v", sum.commits, defs)
	}

	sum, _ = scanLog(bytes.NewReader(seed[:len(seed)-checksumSize-2]), scanSink{})
	if sum.corrupt != nil || !sum.torn || sum.commits != 1 {
		t.Fatalf("torn index group: %+v", sum)
	}

	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)-checksumSize-3] ^= 0x40
	sum, _ = scanLog(bytes.NewReader(flipped), scanSink{})
	if sum.corrupt == nil {
		t.Fatalf("bit rot in index group not detected: %+v", sum)
	}
}
