package intrinsic

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// The paper, on intrinsic persistence: "we have implicitly assumed a single
// global name space. Although it is global to the program, is it also
// global to the user, the user community…? In practice one needs to operate
// with multiple name spaces and control the sharing of structures among
// name spaces." This file provides that: named views of one store whose
// handles are isolated from each other, with explicit operations that
// either *share* a structure with another namespace (both see updates) or
// *copy* it (isolated replicas). Sharing across namespaces survives commit
// and reopen because the underlying heap is OID-based.

// nsSep separates a namespace name from a handle name in the store's flat
// root table.
const nsSep = "/"

// ErrBadName is returned for handle or namespace names containing the
// namespace separator.
var ErrBadName = errors.New("intrinsic: name must not contain '/'")

// Namespace is a view of a store: all handles bound through it are
// invisible to other namespaces (and to the unqualified root-level API
// names, which live in the anonymous namespace).
type Namespace struct {
	s      *Store
	prefix string // "user1/" — empty for the anonymous namespace
}

// Namespace returns the named namespace view. The empty string denotes the
// anonymous namespace (the plain Bind/Root/... API).
func (s *Store) Namespace(name string) (*Namespace, error) {
	if strings.Contains(name, nsSep) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if name == "" {
		return &Namespace{s: s}, nil
	}
	return &Namespace{s: s, prefix: name + nsSep}, nil
}

// Namespaces lists the namespace names that currently have at least one
// handle (the anonymous namespace is listed as "" when non-empty).
func (s *Store) Namespaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for n := range s.roots {
		if i := strings.Index(n, nsSep); i >= 0 {
			seen[n[:i]] = true
		} else {
			seen[""] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the namespace's name ("" for the anonymous namespace).
func (ns *Namespace) Name() string { return strings.TrimSuffix(ns.prefix, nsSep) }

func (ns *Namespace) qualify(name string) (string, error) {
	if strings.Contains(name, nsSep) {
		return "", fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return ns.prefix + name, nil
}

// Bind creates (or replaces) a handle in this namespace.
func (ns *Namespace) Bind(name string, v value.Value, declared types.Type) error {
	q, err := ns.qualify(name)
	if err != nil {
		return err
	}
	return ns.s.Bind(q, v, declared)
}

// Unbind removes a handle from this namespace.
func (ns *Namespace) Unbind(name string) bool {
	q, err := ns.qualify(name)
	if err != nil {
		return false
	}
	return ns.s.Unbind(q)
}

// Root returns a handle of this namespace.
func (ns *Namespace) Root(name string) (*Root, bool) {
	q, err := ns.qualify(name)
	if err != nil {
		return nil, false
	}
	return ns.s.Root(q)
}

// OpenAs opens a handle of this namespace at a (re)declared type, with the
// usual schema-evolution rules.
func (ns *Namespace) OpenAs(name string, want types.Type) (value.Value, error) {
	q, err := ns.qualify(name)
	if err != nil {
		return nil, err
	}
	return ns.s.OpenAs(q, want)
}

// Names lists the handles of this namespace, unqualified and sorted.
func (ns *Namespace) Names() []string {
	var out []string
	for _, n := range ns.s.Names() {
		if ns.prefix == "" {
			if !strings.Contains(n, nsSep) {
				out = append(out, n)
			}
		} else if strings.HasPrefix(n, ns.prefix) {
			out = append(out, strings.TrimPrefix(n, ns.prefix))
		}
	}
	return out
}

// ShareTo binds this namespace's handle into another namespace *sharing the
// same structure*: updates through either namespace are visible through the
// other, across commits and reopens. This is the controlled sharing the
// paper asks for.
func (ns *Namespace) ShareTo(other *Namespace, name string) error {
	r, ok := ns.Root(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRoot, ns.prefix+name)
	}
	return other.Bind(name, r.Value, r.Declared)
}

// CopyTo binds a *deep copy* of this namespace's handle into another
// namespace: the two namespaces are isolated from each other's updates
// (replication on request, rather than by accident as in the replicating
// store).
func (ns *Namespace) CopyTo(other *Namespace, name string) error {
	r, ok := ns.Root(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRoot, ns.prefix+name)
	}
	return other.Bind(name, value.Copy(r.Value), r.Declared)
}
