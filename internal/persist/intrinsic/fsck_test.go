package intrinsic

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dbpl/internal/value"
)

// buildGenerations creates a store at path with `commits` committed
// generations of a root "x" (values 1..commits) and closes it.
func buildGenerations(t *testing.T, path string, commits int) {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= commits; i++ {
		if err := s.Bind("x", value.Int(int64(i)), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func rootInt(t *testing.T, path, name string) int64 {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	r, ok := s.Root(name)
	if !ok {
		t.Fatalf("no root %q", name)
	}
	return int64(r.Value.(value.Int))
}

func TestFsckCleanLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	buildGenerations(t, path, 3)

	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("report not clean: %v", rep)
	}
	if rep.Version != logVersion2 {
		t.Errorf("version = %d, want 2", rep.Version)
	}
	if rep.Commits != 3 {
		t.Errorf("commits = %d, want 3", rep.Commits)
	}
	if rep.GoodEnd != rep.Size {
		t.Errorf("goodEnd = %d, size = %d; want equal on a clean log", rep.GoodEnd, rep.Size)
	}
	if rep.Roots != 1 {
		t.Errorf("roots = %d, want 1", rep.Roots)
	}
}

func TestFsckTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	buildGenerations(t, path, 2)
	clean, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the final group: the signature of a crash mid-commit.
	if err := os.Truncate(path, clean.Size-3); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != nil {
		t.Fatalf("torn tail misreported as corruption: %v", rep.Corrupt)
	}
	if !rep.TornTail {
		t.Fatal("torn tail not reported")
	}
	if rep.Commits != 1 {
		t.Errorf("commits = %d, want 1", rep.Commits)
	}
	// Open tolerates the torn tail and yields the first generation.
	if got := rootInt(t, path, "x"); got != 1 {
		t.Errorf("x = %d, want 1", got)
	}
}

func TestFsckBitFlipIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	buildGenerations(t, path, 2)

	// Flip a bit in the stored checksum of the final commit group: the
	// group parses completely, so v2 must classify this as corruption at
	// the group's start offset — never as a torn tail.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0x40
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == nil {
		t.Fatal("bit flip not reported as corruption")
	}
	if rep.Corrupt.Offset != rep.GoodEnd {
		t.Errorf("corrupt offset = %d, want start of last group %d", rep.Corrupt.Offset, rep.GoodEnd)
	}
	if rep.Commits != 1 {
		t.Errorf("commits = %d, want 1 valid group before the damage", rep.Commits)
	}

	// Open refuses a corrupt log with the typed error.
	_, err = Open(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open error = %v, want *CorruptError", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open error %v does not wrap ErrCorrupt", err)
	}

	// Salvage recovers the prefix before the damage.
	dst := filepath.Join(t.TempDir(), "salvaged.log")
	srep, err := Salvage(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	if srep.GoodEnd != rep.GoodEnd {
		t.Errorf("salvage kept %d bytes, want %d", srep.GoodEnd, rep.GoodEnd)
	}
	if got := rootInt(t, dst, "x"); got != 1 {
		t.Errorf("salvaged x = %d, want first generation 1", got)
	}
	if rep2, err := Fsck(dst); err != nil || !rep2.Clean() {
		t.Fatalf("salvaged log not clean: %v, %v", rep2, err)
	}
}

func TestSalvageTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	buildGenerations(t, path, 2)
	clean, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, clean.Size-2); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(t.TempDir(), "salvaged.log")
	rep, err := Salvage(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail {
		t.Fatal("source torn tail not reported")
	}
	if rep2, err := Fsck(dst); err != nil || !rep2.Clean() {
		t.Fatalf("salvaged log not clean: %v, %v", rep2, err)
	}
	if got := rootInt(t, dst, "x"); got != 1 {
		t.Errorf("salvaged x = %d, want 1", got)
	}
}

func TestFsckMissingHeaderVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	if err := os.WriteFile(path, []byte(logMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	// A short header is what a crash during store creation leaves behind:
	// recoverable, classified as a torn tail with nothing salvageable.
	if rep.Corrupt != nil {
		t.Fatalf("short header misreported as corruption: %v", rep.Corrupt)
	}
	if !rep.TornTail || rep.GoodEnd != 0 {
		t.Fatalf("report = %+v, want torn tail with goodEnd 0", rep)
	}
	// Salvage of a headerless file yields a fresh empty log.
	dst := filepath.Join(t.TempDir(), "salvaged.log")
	if _, err := Salvage(path, dst); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dst)
	if err != nil {
		t.Fatalf("salvaged empty log does not open: %v", err)
	}
	s.Close()
}
