package intrinsic

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file implements the single structural reader of the log, shared by
// Open (replay) and Fsck (verification). It distinguishes, byte for byte:
//
//   - a clean log (every group ends in a valid commit marker);
//   - a *torn tail* (the file ends inside a group — the signature of a
//     crash mid-commit, recoverable by ignoring the tail);
//   - *corruption* (v2 only: a complete group whose CRC-32C does not
//     match, or structurally impossible bytes mid-file — the signature of
//     bit rot, reported deterministically with an offset, never applied).
//
// The classification rule for v2 is: an anomaly that manifests as end of
// input is torn (a crash can only shorten an fsynced append-only log);
// any other anomaly is corruption. v1 logs have no checksum, so every
// anomaly is treated leniently as a torn tail, exactly as before.

// crcTable is the Castagnoli polynomial table; CRC-32C has hardware
// support (SSE4.2 / ARMv8 CRC) through hash/crc32.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError is deterministically detected log corruption: where in the
// file and why. It unwraps to ErrCorrupt.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("intrinsic: corrupt log at offset %d: %s", e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// scanSink receives log records as they parse. Records arrive *before*
// their group is validated: callers must buffer per group and apply only
// on commit (which fires only for valid groups).
type scanSink struct {
	node      func(oid uint64, img []byte)
	roots     func(entries []rootEntry)
	indexDefs func(fields []string)
	epoch     func(e uint64)
	commit    func(end int64)
}

// scanSummary is the structural verdict over a whole log.
type scanSummary struct {
	empty   bool  // zero-length file (fresh store)
	version byte  // header version (1 or 2)
	goodEnd int64 // offset just past the last valid commit group
	commits int   // valid commit groups
	torn    bool  // trailing bytes past goodEnd that a crash explains
	corrupt *CorruptError
}

// logScanner reads the log sequentially, tracking the absolute offset and
// the running CRC-32C of the current commit group.
type logScanner struct {
	r   *bufio.Reader
	off int64
	crc uint32
}

// ReadByte implements io.ByteReader so binary.ReadUvarint counts and
// checksums every byte it consumes.
func (s *logScanner) ReadByte() (byte, error) {
	b, err := s.r.ReadByte()
	if err != nil {
		return 0, err
	}
	s.off++
	s.crc = crc32.Update(s.crc, crcTable, []byte{b})
	return b, nil
}

func (s *logScanner) uvarint() (uint64, error) {
	return binary.ReadUvarint(s)
}

func (s *logScanner) bytes(n int) ([]byte, error) {
	buf, err := readN(s.r, n)
	if err != nil {
		return nil, err
	}
	s.off += int64(n)
	s.crc = crc32.Update(s.crc, crcTable, buf)
	return buf, nil
}

// raw reads n bytes without feeding the group checksum — used for the
// stored checksum itself.
func (s *logScanner) raw(n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(s.r, buf); err != nil {
		return nil, err
	}
	s.off += int64(n)
	return buf, nil
}

// isEOF reports whether err is an end-of-input condition — the only
// anomaly a crash can produce on an append-only log.
func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// scanRootTable parses a root-table record, validating lengths and type
// images.
func scanRootTable(s *logScanner) ([]rootEntry, error) {
	count, err := s.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxRecordSize {
		return nil, fmt.Errorf("%w: oversized root table", ErrCorrupt)
	}
	entries := make([]rootEntry, 0, capCount(int(count)))
	for i := uint64(0); i < count; i++ {
		n, err := s.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxRecordSize {
			return nil, fmt.Errorf("%w: bad root name length", ErrCorrupt)
		}
		name, err := s.bytes(int(n))
		if err != nil {
			return nil, err
		}
		tn, err := s.uvarint()
		if err != nil {
			return nil, err
		}
		if tn > maxRecordSize {
			return nil, fmt.Errorf("%w: oversized type record", ErrCorrupt)
		}
		tbuf, err := s.bytes(int(tn))
		if err != nil {
			return nil, err
		}
		typ, err := parseType(tbuf)
		if err != nil {
			return nil, err
		}
		vn, err := s.uvarint()
		if err != nil {
			return nil, err
		}
		if vn > maxRecordSize {
			return nil, fmt.Errorf("%w: bad root value length", ErrCorrupt)
		}
		vbuf, err := s.bytes(int(vn))
		if err != nil {
			return nil, err
		}
		entries = append(entries, rootEntry{name: string(name), typ: typ, inline: vbuf})
	}
	return entries, nil
}

// scanIndexDefs parses an index-definition table record.
func scanIndexDefs(s *logScanner) ([]string, error) {
	count, err := s.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxRecordSize {
		return nil, fmt.Errorf("%w: oversized index-definition table", ErrCorrupt)
	}
	fields := make([]string, 0, capCount(int(count)))
	for i := uint64(0); i < count; i++ {
		n, err := s.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxRecordSize {
			return nil, fmt.Errorf("%w: bad index field length", ErrCorrupt)
		}
		name, err := s.bytes(int(n))
		if err != nil {
			return nil, err
		}
		fields = append(fields, string(name))
	}
	return fields, nil
}

// scanLog reads the whole log from r, firing sink callbacks, and returns
// the structural summary. The returned error is reserved for real I/O
// failures of the underlying reader; corruption and torn tails are
// reported in the summary.
func scanLog(r io.Reader, sink scanSink) (scanSummary, error) {
	s := &logScanner{r: bufio.NewReader(r)}
	var sum scanSummary

	header := make([]byte, len(logMagic)+1)
	if _, err := io.ReadFull(s.r, header); err != nil {
		if err == io.EOF {
			sum.empty = true
			return sum, nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// Fewer bytes than a header: a crash during store creation —
			// the header write itself was torn. Recoverable.
			sum.torn = true
			return sum, nil
		}
		return sum, err
	}
	s.off = int64(len(header))
	if string(header[:len(logMagic)]) != logMagic {
		sum.corrupt = &CorruptError{Offset: 0, Reason: "bad magic"}
		return sum, nil
	}
	v := header[len(logMagic)]
	if v != logVersion1 && v != logVersion2 {
		sum.corrupt = &CorruptError{Offset: int64(len(logMagic)), Reason: fmt.Sprintf("unsupported log version %d", v)}
		return sum, nil
	}
	sum.version = v
	sum.goodEnd = s.off

	groupStart := s.off
	s.crc = 0

	// anomaly classifies a parse failure at offset off: torn when a crash
	// explains it, corrupt otherwise (v2) or leniently torn (v1).
	anomaly := func(off int64, reason string, err error) {
		if err != nil && isEOF(err) {
			sum.torn = true
			return
		}
		if v == logVersion2 {
			sum.corrupt = &CorruptError{Offset: off, Reason: reason}
			return
		}
		sum.torn = true
	}

	for {
		kindOff := s.off
		kind, err := s.r.ReadByte()
		if err == io.EOF {
			if s.off > sum.goodEnd {
				sum.torn = true // mid-group end of input
			}
			return sum, nil
		}
		if err != nil {
			return sum, err
		}
		s.off++
		s.crc = crc32.Update(s.crc, crcTable, []byte{kind})

		switch kind {
		case recNode:
			oid, err := s.uvarint()
			if err != nil {
				anomaly(s.off, "bad node oid", err)
				return sum, nil
			}
			n, err := s.uvarint()
			if err != nil {
				anomaly(s.off, "bad node length", err)
				return sum, nil
			}
			if n > maxRecordSize {
				anomaly(s.off, fmt.Sprintf("oversized node (%d bytes)", n), nil)
				return sum, nil
			}
			img, err := s.bytes(int(n))
			if err != nil {
				anomaly(s.off, "short node image", err)
				return sum, nil
			}
			if sink.node != nil {
				sink.node(oid, img)
			}
		case recRoots:
			entries, err := scanRootTable(s)
			if err != nil {
				anomaly(s.off, fmt.Sprintf("bad root table: %v", err), err)
				return sum, nil
			}
			if sink.roots != nil {
				sink.roots(entries)
			}
		case recIndex:
			fields, err := scanIndexDefs(s)
			if err != nil {
				anomaly(s.off, fmt.Sprintf("bad index-definition table: %v", err), err)
				return sum, nil
			}
			if sink.indexDefs != nil {
				sink.indexDefs(fields)
			}
		case recEpoch:
			e, err := s.uvarint()
			if err != nil {
				anomaly(s.off, "bad epoch record", err)
				return sum, nil
			}
			if sink.epoch != nil {
				sink.epoch(e)
			}
		case recCommit:
			if v == logVersion2 {
				want := s.crc
				stored, err := s.raw(checksumSize)
				if err != nil {
					anomaly(s.off, "short commit checksum", err)
					return sum, nil
				}
				if got := binary.LittleEndian.Uint32(stored); got != want {
					sum.corrupt = &CorruptError{
						Offset: groupStart,
						Reason: fmt.Sprintf("checksum mismatch in commit group at offset %d (stored %08x, computed %08x)", groupStart, got, want),
					}
					return sum, nil
				}
			}
			if sink.commit != nil {
				sink.commit(s.off)
			}
			sum.commits++
			sum.goodEnd = s.off
			groupStart = s.off
			s.crc = 0
		default:
			anomaly(kindOff, fmt.Sprintf("unknown record kind 0x%02x", kind), nil)
			return sum, nil
		}
	}
}
