// Package intrinsic implements the paper's third and preferred form of
// persistence: *intrinsic* persistence, where "every value in a program is
// persistent" and survival is determined by reachability from named
// handles, with no extern/intern movement and no distinction in the
// language between primary and secondary storage. PS-algol and GemStone
// implemented forms of this model; like PS-algol the store provides an
// explicit commit, before which "the persistent value and the value being
// used by the program can diverge".
//
// The store is an append-only log of shallow node images keyed by OID (see
// format.go). Key properties, each exercised by the tests:
//
//   - Sharing and cycles survive: two handles reaching one value still
//     share it after reopening — the defect of replicating persistence does
//     not arise.
//   - Commit is incremental: only nodes whose image changed are appended.
//   - Garbage collection: values unreachable from any handle are simply not
//     written by Compact, and never re-materialized.
//   - Crash recovery: a torn final commit group is ignored on reopen.
//   - Transient fields (label prefix "_") are not persisted — the paper's
//     memoization fields on persistent Part values.
//   - Schema evolution at handles: opening at a supertype is a view;
//     opening at a *consistent* type enriches the handle's schema to the
//     meet; inconsistent types are rejected (the paper's DBType/DBType'
//     discussion).
package intrinsic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"dbpl/internal/dynamic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Errors returned by store operations.
var (
	ErrNoRoot            = errors.New("intrinsic: no such handle")
	ErrNotConforming     = errors.New("intrinsic: value does not conform to declared type")
	ErrInconsistent      = errors.New("intrinsic: stored and requested types are inconsistent")
	ErrMigrationRequired = errors.New("intrinsic: schema enrichment requires value migration")
	ErrClosed            = errors.New("intrinsic: store is closed")
	// ErrPoisoned is returned by Commit and Compact after a failed commit
	// whose torn bytes could not be rolled back: the log tail is in an
	// unknown state, so further appends are refused until Abort (which
	// replays and re-trims) or a reopen.
	ErrPoisoned = errors.New("intrinsic: store poisoned by a failed commit; Abort or reopen to recover")
	// ErrReplica is returned by every local mutation (Bind, Commit,
	// DeclareIndex, Compact, ...) on a store in replica mode: its log is a
	// byte-for-byte prefix of a primary's, and a local commit group would
	// diverge it forever. See EnterReplica and ApplyGroup in repl.go.
	ErrReplica = errors.New("intrinsic: store is a replication follower; writes must go to the primary")
)

// TransientPrefix is the record-field label prefix marking fields that must
// not persist across Commit.
const TransientPrefix = "_"

// Root is a named handle: a declared type and the value it names. "The sole
// purpose of the handle is to provide a name for the value that is global
// to the program."
type Root struct {
	Declared types.Type
	Value    value.Value
}

// CommitStats reports what a Commit wrote.
type CommitStats struct {
	NodesReachable int // containers reachable from the roots
	NodesWritten   int // nodes whose image changed (or were new)
	BytesWritten   int // log bytes appended, including the root table
}

// CompactStats reports the effect of a Compact.
type CompactStats struct {
	BytesBefore int64
	BytesAfter  int64
	NodesKept   int
	NodesFreed  int
}

// Store is an intrinsically persistent heap backed by an append-only log
// file. It is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	fs     iofault.FS
	path   string
	f      iofault.File
	closed bool

	// version is the log format of the backing file (1 or 2); appends
	// must match it. Compact always rewrites at the current version.
	version byte
	// end is the offset just past the last durable commit group — the
	// only legal append position. endA mirrors it for lock-free readers
	// (DurableEnd): health reporting must not block behind a commit wedged
	// on a dying disk, which holds mu through the fsync.
	end  int64
	endA atomic.Int64
	// tailDirty records that the file extends past end with torn bytes
	// (crash leftovers); the next append truncates them first.
	tailDirty bool
	// broken poisons the store after a commit failure that could not be
	// rolled back; see ErrPoisoned.
	broken error

	roots map[string]*Root
	// oids maps live container values to their OIDs; nodes holds the last
	// committed image per OID.
	oids    map[value.Value]uint64
	nodes   map[uint64][]byte
	nextOID uint64

	// epoch is the promotion epoch: 0 until the first Promote, bumped by
	// every Promote and recovered from the last committed 'E' record on
	// open. epochA mirrors it for lock-free readers (Epoch): health and
	// fencing decisions must not block behind a commit wedged on a dying
	// disk.
	epoch  uint64
	epochA atomic.Uint64

	// indexDefs is the declared field-index set (see DeclareIndex). Durable
	// on v2 logs as an 'X' record in the next commit group after a change;
	// on v1 logs it is memory-only until Compact upgrades the file. Only
	// the *definitions* persist — index contents always rebuild from the
	// committed roots, so they can never run ahead of the durable state.
	indexDefs map[string]bool
	// defsDirty records that indexDefs changed since the last commit that
	// persisted them.
	defsDirty bool

	// Batch staging (group commit). StageCommit appends an encoded commit
	// group to the file *without* syncing it; SyncBatch makes every staged
	// group durable with one fsync. Between the two, the file extends past
	// end by whole (but volatile) commit groups:
	//
	//   staged      — groups written since the last durable boundary
	//   stagedEnd   — file offset just past the last staged group
	//   stagedNodes — node images those groups wrote; merged into nodes only
	//                 when the batch is durable, so a failed batch leaves the
	//                 in-memory images exactly at the durable state
	//   stagedDefs  — a staged group persisted the index-definition table
	//                 (defsDirty is restored if the batch fails)
	//
	// The invariant every recovery path preserves: while staged > 0 the file
	// may hold complete-but-unsynced groups past end, and they must be
	// truncated away (rollbackStaged, or Abort) before any replay — a replay
	// would otherwise resurrect groups whose writers were told they failed.
	staged      int
	stagedEnd   int64
	stagedNodes map[uint64][]byte
	stagedDefs  bool

	// replica marks a store fed by ApplyGroup (a replication follower);
	// local mutations are refused with ErrReplica, and materialized values
	// are not registered in oids (a follower never re-encodes them).
	replica bool
	// lastRoots retains the last applied root-table entries so ApplyGroup
	// can diff a new table against them and re-materialize only the roots
	// whose bound value changed.
	lastRoots map[string]rootEntry
	// applyOverlay, non-nil only inside ApplyGroup, lets materialize see
	// the incoming group's node images before they are committed to nodes.
	applyOverlay map[uint64][]byte
}

// Open opens (or creates) a store at path, replaying the log to the last
// complete commit.
func Open(path string) (*Store, error) {
	return OpenFS(iofault.OS{}, path)
}

// OpenFS is Open over an explicit file system — the seam the fault and
// crash tests inject through.
func OpenFS(fsys iofault.FS, path string) (*Store, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		fs:        fsys,
		path:      path,
		f:         f,
		roots:     map[string]*Root{},
		oids:      map[value.Value]uint64{},
		nodes:     map[uint64][]byte{},
		indexDefs: map[string]bool{},
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Close closes the underlying file without committing.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// Path returns the log file path.
func (s *Store) Path() string { return s.path }

// setEnd moves the durable end, keeping the lock-free mirror in step.
// Callers hold s.mu.
func (s *Store) setEnd(v int64) {
	s.end = v
	s.endA.Store(v)
}

// setEpoch moves the promotion epoch, keeping the lock-free mirror in
// step. Callers hold s.mu.
func (s *Store) setEpoch(e uint64) {
	s.epoch = e
	s.epochA.Store(e)
}

// rootEntry is a parsed but not yet materialized root-table entry.
type rootEntry struct {
	name   string
	typ    types.Type
	inline []byte // the inline value bytes (atom or ref)
}

// load replays the log and materializes the root graph. Replay applies
// whole valid commit groups only; a torn tail is remembered (and trimmed
// before the next append) and deterministic v2 corruption fails the open
// with a CorruptError naming the offset.
func (s *Store) load() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.indexDefs = map[string]bool{}
	s.defsDirty = false
	committed := struct {
		nodes map[uint64][]byte
		roots []rootEntry
		defs  []string
		epoch uint64
	}{nodes: map[uint64][]byte{}}
	pending := map[uint64][]byte{}
	var pendingRoots []rootEntry
	var pendingDefs []string
	var pendingEpoch uint64
	sawRoots, sawDefs, sawEpoch := false, false, false

	sum, err := scanLog(s.f, scanSink{
		node:      func(oid uint64, img []byte) { pending[oid] = img },
		roots:     func(entries []rootEntry) { pendingRoots = entries; sawRoots = true },
		indexDefs: func(fields []string) { pendingDefs = fields; sawDefs = true },
		epoch:     func(e uint64) { pendingEpoch = e; sawEpoch = true },
		commit: func(int64) {
			for oid, img := range pending {
				committed.nodes[oid] = img
			}
			pending = map[uint64][]byte{}
			if sawRoots {
				committed.roots = pendingRoots
				sawRoots = false
			}
			if sawDefs {
				committed.defs = pendingDefs
				sawDefs = false
			}
			if sawEpoch {
				committed.epoch = pendingEpoch
				sawEpoch = false
			}
		},
	})
	if err != nil {
		return err
	}
	if sum.empty || (sum.corrupt == nil && sum.version == 0) {
		// Fresh file — or a torn header fragment from a crash during store
		// creation, which cannot contain any commit and is safe to clear.
		header := append([]byte(logMagic), logVersion)
		if !sum.empty {
			if err := s.f.Truncate(0); err != nil {
				return &iofault.IOError{Op: iofault.OpTruncate, Path: s.path, Err: err}
			}
			if _, err := s.f.Seek(0, io.SeekStart); err != nil {
				return &iofault.IOError{Op: iofault.OpSeek, Path: s.path, Err: err}
			}
		}
		if _, err := s.f.Write(header); err != nil {
			return &iofault.IOError{Op: iofault.OpWrite, Path: s.path, Err: err}
		}
		if err := s.f.Sync(); err != nil {
			return &iofault.IOError{Op: iofault.OpSync, Path: s.path, Err: err}
		}
		s.version = logVersion
		s.setEnd(int64(len(header)))
		s.tailDirty = false
		s.setEpoch(0)
		s.lastRoots = map[string]rootEntry{}
		return nil
	}
	if sum.corrupt != nil {
		return sum.corrupt
	}
	s.version = sum.version
	s.setEnd(sum.goodEnd)
	s.tailDirty = sum.torn
	s.setEpoch(committed.epoch)

	for _, f := range committed.defs {
		s.indexDefs[f] = true
	}
	s.nodes = committed.nodes
	for oid := range s.nodes {
		if oid >= s.nextOID {
			s.nextOID = oid + 1
		}
	}
	// Materialize the committed roots, retaining the raw entries for
	// ApplyGroup's change detection.
	cache := map[uint64]value.Value{}
	s.lastRoots = make(map[string]rootEntry, len(committed.roots))
	for _, e := range committed.roots {
		rd := &nodeReader{buf: e.inline}
		v, err := rd.inlineValue(func(oid uint64) (value.Value, error) {
			return s.materialize(oid, cache, map[uint64]bool{})
		})
		if err != nil {
			return err
		}
		s.roots[e.name] = &Root{Declared: e.typ, Value: v}
		s.lastRoots[e.name] = e
	}
	// Position the write handle at the end of durable data: a torn tail,
	// if any, is overwritten by the next append (after truncation).
	if _, err := s.f.Seek(s.end, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// register records a live container's OID so a later Commit can re-encode
// it incrementally. A replica never commits locally, so registration is
// skipped there — a long-running follower must not grow oids without
// bound as groups stream in.
func (s *Store) register(v value.Value, oid uint64) {
	if !s.replica {
		s.oids[v] = oid
	}
}

// materialize decodes the node oid (and, recursively, its children) into a
// live value, with sharing through cache.
func (s *Store) materialize(oid uint64, cache map[uint64]value.Value, busy map[uint64]bool) (value.Value, error) {
	if v, ok := cache[oid]; ok {
		return v, nil
	}
	img, ok := s.nodes[oid]
	if o, ok2 := s.applyOverlay[oid]; ok2 {
		img, ok = o, true // the incoming group's image wins during ApplyGroup
	}
	if !ok {
		return nil, fmt.Errorf("%w: dangling oid %d", ErrCorrupt, oid)
	}
	if busy[oid] {
		return nil, fmt.Errorf("%w: cycle through a non-record node %d", ErrCorrupt, oid)
	}
	r := &nodeReader{buf: img}
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	resolve := func(child uint64) (value.Value, error) {
		return s.materialize(child, cache, busy)
	}
	switch tag {
	case inRecord:
		rec := value.NewRecord()
		cache[oid] = rec // before children: record cycles are supported
		s.register(rec, oid)
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			l, err := r.str()
			if err != nil {
				return nil, err
			}
			f, err := r.inlineValue(resolve)
			if err != nil {
				return nil, err
			}
			rec.Set(l, f)
		}
		return rec, nil
	case inList:
		lst := value.NewList()
		cache[oid] = lst
		s.register(lst, oid)
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			el, err := r.inlineValue(resolve)
			if err != nil {
				return nil, err
			}
			lst.Append(el)
		}
		return lst, nil
	case inSet:
		set := value.NewSet()
		cache[oid] = set
		s.register(set, oid)
		busy[oid] = true
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			el, err := r.inlineValue(resolve)
			if err != nil {
				return nil, err
			}
			set.Add(el)
		}
		delete(busy, oid)
		return set, nil
	case inTag:
		busy[oid] = true
		label, err := r.str()
		if err != nil {
			return nil, err
		}
		payload, err := r.inlineValue(resolve)
		if err != nil {
			return nil, err
		}
		delete(busy, oid)
		tv := value.NewTag(label, payload)
		cache[oid] = tv
		s.register(tv, oid)
		return tv, nil
	case inDynamic:
		busy[oid] = true
		t, err := r.typ()
		if err != nil {
			return nil, err
		}
		inner, err := r.inlineValue(resolve)
		if err != nil {
			return nil, err
		}
		delete(busy, oid)
		d, err := dynamic.MakeAt(inner, t)
		if err != nil {
			return nil, fmt.Errorf("%w: persisted dynamic no longer conforms: %v", ErrCorrupt, err)
		}
		cache[oid] = d
		s.register(d, oid)
		return d, nil
	default:
		return nil, fmt.Errorf("%w: node tag %d", ErrCorrupt, tag)
	}
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

// Bind creates (or replaces) a handle naming v at the declared type; nil
// declares the value's most specific type. Binding is in-memory until the
// next Commit, matching PS-algol's pre-commit divergence.
func (s *Store) Bind(name string, v value.Value, declared types.Type) error {
	if declared == nil {
		declared = value.TypeOf(v)
	} else if !value.Conforms(v, declared) {
		return fmt.Errorf("%w: %s : %s", ErrNotConforming, value.TypeOf(v), declared)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replica {
		return ErrReplica
	}
	s.roots[name] = &Root{Declared: declared, Value: v}
	return nil
}

// Unbind removes a handle; the values it named become garbage unless
// reachable from another handle, and are reclaimed by the next Compact.
func (s *Store) Unbind(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.roots[name]
	delete(s.roots, name)
	return ok
}

// Root returns the handle's declared type and value.
func (s *Store) Root(name string) (*Root, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.roots[name]
	return r, ok
}

// Names returns all handle names in sorted order.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.roots))
	for n := range s.roots {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeclareIndex adds a field-value index definition, durable from the next
// Commit (v2 logs; on a v1 log the definition persists only after Compact
// upgrades the file). It reports whether the field was newly declared.
// Like Bind, the declaration is in-memory until Commit.
func (s *Store) DeclareIndex(field string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.indexDefs[field] {
		return false
	}
	s.indexDefs[field] = true
	s.defsDirty = true
	return true
}

// DropIndexDef removes a field-value index definition, reporting whether
// it was declared.
func (s *Store) DropIndexDef(field string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.indexDefs[field] {
		return false
	}
	delete(s.indexDefs, field)
	s.defsDirty = true
	return true
}

// IndexDefs returns the declared index fields in sorted order.
func (s *Store) IndexDefs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.indexDefsLocked()
}

func (s *Store) indexDefsLocked() []string {
	out := make([]string, 0, len(s.indexDefs))
	for f := range s.indexDefs {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// OpenAs opens a handle at the type a (re)compiled program declares for it,
// implementing the paper's schema-evolution rules:
//
//   - stored ≤ want: the program sees a *view* of the richer data; the
//     stored schema is unchanged.
//   - stored and want merely *consistent* (a common subtype exists): the
//     handle's schema is enriched to the meet — "provided we never
//     contradict any of our previous definitions, we can continue to
//     enrich the type, or schema, of the database". If the current value
//     does not yet conform to the meet, ErrMigrationRequired is returned
//     and nothing changes.
//   - otherwise: ErrInconsistent.
func (s *Store) OpenAs(name string, want types.Type) (value.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.roots[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRoot, name)
	}
	if types.Subtype(r.Declared, want) {
		return r.Value, nil // a view of the (possibly richer) stored data
	}
	meet, ok := types.Meet(r.Declared, want)
	if !ok {
		return nil, fmt.Errorf("%w: stored %s, requested %s", ErrInconsistent, r.Declared, want)
	}
	if !value.Conforms(r.Value, meet) {
		return nil, fmt.Errorf("%w: value %s does not conform to %s",
			ErrMigrationRequired, value.TypeOf(r.Value), meet)
	}
	r.Declared = meet // schema enrichment
	return r.Value, nil
}

// ---------------------------------------------------------------------------
// Commit, abort, compaction
// ---------------------------------------------------------------------------

// reach walks the container graph from the roots, assigning OIDs to new
// containers, and returns the reachable containers in a deterministic
// order. Transient record fields are not traversed.
func (s *Store) reach() []value.Value {
	var order []value.Value
	seen := map[value.Value]bool{}
	var walk func(v value.Value)
	walk = func(v value.Value) {
		if !isContainer(v) {
			return
		}
		if seen[v] {
			return
		}
		seen[v] = true
		if _, ok := s.oids[v]; !ok {
			s.oids[v] = s.nextOID
			s.nextOID++
		}
		order = append(order, v)
		switch vv := v.(type) {
		case *value.Record:
			vv.Each(func(l string, f value.Value) {
				if !isTransient(l, TransientPrefix) {
					walk(f)
				}
			})
		case *value.List:
			for _, el := range vv.Elems {
				walk(el)
			}
		case *value.Set:
			for _, el := range vv.Elems() {
				walk(el)
			}
		case *value.Tag:
			walk(vv.Payload)
		case *dynamic.Dynamic:
			walk(vv.Value())
		}
	}
	names := make([]string, 0, len(s.roots))
	for n := range s.roots {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		walk(s.roots[n].Value)
	}
	return order
}

// encodeRootTable writes the current root table record into b.
func (s *Store) encodeRootTable(b *nodeBuf) error {
	b.WriteByte(recRoots)
	b.uvarint(uint64(len(s.roots)))
	names := make([]string, 0, len(s.roots))
	for n := range s.roots {
		names = append(names, n)
	}
	sort.Strings(names)
	oidOf := func(v value.Value) uint64 { return s.oids[v] }
	for _, n := range names {
		r := s.roots[n]
		b.str(n)
		if err := b.typ(r.Declared); err != nil {
			return err
		}
		var vb nodeBuf
		if err := encodeInline(&vb, r.Value, oidOf); err != nil {
			return err
		}
		b.uvarint(uint64(vb.Len()))
		b.Write(vb.Bytes())
	}
	return nil
}

// encodeIndexDefs writes the index-definition table record into b.
func (s *Store) encodeIndexDefs(b *nodeBuf) {
	b.WriteByte(recIndex)
	defs := s.indexDefsLocked()
	b.uvarint(uint64(len(defs)))
	for _, f := range defs {
		b.str(f)
	}
}

// wrapIO wraps cause in the shared I/O taxonomy.
func wrapIO(op iofault.Op, path string, cause error) error {
	return iofault.Wrap(op, path, cause)
}

// poison marks the store unusable for further appends until Abort or a
// reopen, and returns cause.
func (s *Store) poison(cause error) error {
	s.broken = fmt.Errorf("%w (cause: %v)", ErrPoisoned, cause)
	return cause
}

// appendPos is the file handle's append position: past the last staged
// group while a batch is open, else the durable end. Callers hold s.mu.
func (s *Store) appendPos() int64 {
	if s.staged > 0 {
		return s.stagedEnd
	}
	return s.end
}

// resetStaging discards the in-memory staging state once the staged bytes
// are gone from the file. A batch that persisted the index-definition
// table and then failed must mark the defs dirty again, so the next commit
// re-writes them. Callers hold s.mu.
func (s *Store) resetStaging() {
	s.staged = 0
	s.stagedEnd = s.end
	s.stagedNodes = nil
	if s.stagedDefs {
		s.defsDirty = true
		s.stagedDefs = false
	}
}

// rollbackStaged trims every staged-but-unsynced group (and any torn bytes
// of the failed write) back to the pre-batch durable end, so a later
// append or replay can never resurrect a batch whose writers were told it
// failed. If the trim itself fails the store is poisoned: the file holds
// complete groups past the durable end that cannot be removed, and only a
// successful Abort (which retries the trim) recovers. Returns cause.
func (s *Store) rollbackStaged(cause error) error {
	if terr := s.f.Truncate(s.end); terr != nil {
		return s.poison(cause)
	}
	if _, serr := s.f.Seek(s.end, io.SeekStart); serr != nil {
		return s.poison(cause)
	}
	s.resetStaging()
	return cause
}

// stageGroup stages one encoded commit group — adding the CRC-32C trailer
// on v2 logs — via stageBytes.
func (s *Store) stageGroup(out *nodeBuf) error {
	if s.version == logVersion2 {
		var tr [checksumSize]byte
		binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(out.Bytes(), crcTable))
		out.Write(tr[:])
	}
	return s.stageBytes(out.Bytes())
}

// stageBytes appends raw past the last staged group *without* syncing,
// clearing any torn crash tail first. The bytes are volatile until
// syncStaged promotes them; a write failure rolls the whole open batch
// back (rollbackStaged), so staged groups fail together.
func (s *Store) stageBytes(raw []byte) error {
	if s.tailDirty {
		if err := s.f.Truncate(s.end); err != nil {
			return s.poison(wrapIO(iofault.OpTruncate, s.path, err))
		}
		if _, err := s.f.Seek(s.end, io.SeekStart); err != nil {
			return s.poison(wrapIO(iofault.OpSeek, s.path, err))
		}
		s.tailDirty = false
	}
	if s.staged == 0 {
		s.stagedEnd = s.end
	}
	if _, err := s.f.Write(raw); err != nil {
		return s.rollbackStaged(wrapIO(iofault.OpWrite, s.path, err))
	}
	s.stagedEnd += int64(len(raw))
	s.staged++
	return nil
}

// syncStaged fsyncs the file, promoting every staged group to durable at
// once — the one shared fsync group commit exists to amortize — and only
// then merges the staged node images into the committed ones. On a sync
// failure the batch is rolled back to the pre-batch durable end (or the
// store is poisoned if even that fails): all staged groups fail together,
// with the same cause. Returns the number of groups made durable.
func (s *Store) syncStaged() (int, error) {
	if s.staged == 0 {
		return 0, nil
	}
	if err := s.f.Sync(); err != nil {
		return 0, s.rollbackStaged(wrapIO(iofault.OpSync, s.path, err))
	}
	n := s.staged
	s.setEnd(s.stagedEnd)
	for oid, img := range s.stagedNodes {
		s.nodes[oid] = img
	}
	s.stagedNodes = nil
	s.staged = 0
	s.stagedDefs = false
	return n, nil
}

// appendBytes appends raw (already checksummed, when the format has
// checksums) at the append position and advances s.end only when the
// bytes are fully durable — stage + sync as a batch of one. This is the
// single write path shared by local commits and replicated groups
// (ApplyGroup), so both get the identical rollback/poison discipline.
func (s *Store) appendBytes(raw []byte) error {
	if err := s.stageBytes(raw); err != nil {
		return err
	}
	_, err := s.syncStaged()
	return err
}

// Commit makes the current state of every handle durable. Only nodes whose
// shallow image differs from the last committed image are appended — the
// incremental property benchmarked in experiment E4. Commit is stage +
// sync as a batch of one: the group-commit primitives below share every
// byte of its write path.
//
// Commit is crash-consistent: on a write or sync failure the log is
// truncated back to the pre-commit offset (and the in-memory images are
// left at the last committed state), so a failed commit can never bury a
// torn tail under later appends. If even the truncation fails, the store
// is poisoned (ErrPoisoned) until Abort or a reopen.
func (s *Store) Commit() (CommitStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return CommitStats{}, err
	}
	stats, err := s.stageCommitLocked()
	if err != nil {
		return stats, err
	}
	_, err = s.syncStaged()
	return stats, err
}

// StageCommit encodes the current state of every handle as one commit
// group and appends it to the log *without* syncing: the group is staged,
// not durable, and must not be acknowledged to anyone until a SyncBatch
// succeeds. Repeated StageCommit calls build a batch that one SyncBatch
// promotes with a single shared fsync — group commit's amortization. A
// staged group is volatile (a crash may lose it) but never torn-visible:
// recovery applies whole groups only, so a reopen lands on a group
// boundary — some serial prefix of the staged batch, never part of one
// group.
func (s *Store) StageCommit() (CommitStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return CommitStats{}, err
	}
	return s.stageCommitLocked()
}

// SyncBatch makes every staged commit group durable with one fsync and
// reports how many groups it promoted (0, trivially succeeding, when
// nothing is staged). On failure the whole batch has been rolled back to
// the pre-batch durable end — every staged group failed, with this error
// as the shared cause — or, if even the rollback failed, the store is
// poisoned until Abort re-trims and replays.
func (s *Store) SyncBatch() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return 0, err
	}
	return s.syncStaged()
}

// StagedEnd returns the offset just past the last staged commit group —
// the durable end when no batch is open. It is the acked-end watermark a
// Durability=async server publishes next to DurableEnd.
func (s *Store) StagedEnd() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendPos()
}

// StagedGroups reports how many staged-but-unsynced groups the open batch
// holds (tests and invariant checks).
func (s *Store) StagedGroups() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.staged
}

// writable is the shared precondition of every local append path. Callers
// hold s.mu.
func (s *Store) writable() error {
	if s.closed {
		return ErrClosed
	}
	if s.broken != nil {
		return s.broken
	}
	if s.replica {
		return ErrReplica
	}
	return nil
}

// stageCommitLocked encodes and stages one commit group. Incremental
// encoding compares against the staged image when one exists — within a
// batch each group diffs against its predecessor, exactly as if the
// groups had been committed singly — which is why a batched log is
// byte-identical to a serial one (the property test). Callers hold s.mu.
func (s *Store) stageCommitLocked() (CommitStats, error) {
	order := s.reach()
	oidOf := func(v value.Value) uint64 { return s.oids[v] }

	var out nodeBuf
	stats := CommitStats{NodesReachable: len(order)}
	newImages := map[uint64][]byte{}
	for _, v := range order {
		img, err := encodeNode(v, oidOf, TransientPrefix)
		if err != nil {
			return stats, err
		}
		oid := s.oids[v]
		prev, ok := s.stagedNodes[oid]
		if !ok {
			prev, ok = s.nodes[oid]
		}
		if ok && string(prev) == string(img) {
			continue // unchanged: no I/O
		}
		newImages[oid] = img
		out.WriteByte(recNode)
		out.uvarint(oid)
		out.uvarint(uint64(len(img)))
		out.Write(img)
		stats.NodesWritten++
	}
	if err := s.encodeRootTable(&out); err != nil {
		return stats, err
	}
	wroteDefs := false
	if s.defsDirty && s.version == logVersion2 {
		s.encodeIndexDefs(&out)
		wroteDefs = true
	}
	out.WriteByte(recCommit)
	if err := s.stageGroup(&out); err != nil {
		return stats, err
	}
	stats.BytesWritten = out.Len()
	if s.stagedNodes == nil {
		s.stagedNodes = make(map[uint64][]byte, len(newImages))
	}
	for oid, img := range newImages {
		s.stagedNodes[oid] = img
	}
	if wroteDefs {
		s.defsDirty = false
		s.stagedDefs = true
	}
	return stats, nil
}

// Abort discards all uncommitted changes by replaying the log: handles and
// their values revert to the last commit. Values obtained before the abort
// are detached from the store afterwards.
func (s *Store) Abort() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Staged-but-unsynced groups must leave the file before the replay
	// below: they are complete, valid groups, so a replay would resurrect
	// them as committed even though their writers were told the batch
	// failed. This is also how a poisoned batch rollback recovers — Abort
	// retries the trim it could not do.
	if s.staged > 0 {
		if err := s.f.Truncate(s.end); err != nil {
			return s.poison(wrapIO(iofault.OpTruncate, s.path, err))
		}
		if _, err := s.f.Seek(s.end, io.SeekStart); err != nil {
			return s.poison(wrapIO(iofault.OpSeek, s.path, err))
		}
		s.resetStaging()
	}
	s.broken = nil // a poisoned store recovers by replaying the log
	s.roots = map[string]*Root{}
	s.oids = map[value.Value]uint64{}
	s.nodes = map[uint64][]byte{}
	s.nextOID = 0
	return s.load()
}

// Compact garbage-collects the log: it rewrites the file with only the
// nodes reachable from the current handles, at their current images. The
// store must have no uncommitted changes worth keeping — Compact performs
// a Commit first so the result is the current state, minimally stored.
// Compact always rewrites at the current log version, so it is also the
// upgrade path from a v1 (checksum-free) log to v2.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.staged > 0 {
		// Rewriting the file would silently bake staged-but-unacked groups
		// into the compacted image (or drop them). The batch owner decides
		// their fate first.
		return CompactStats{}, fmt.Errorf("intrinsic: a staged commit batch is open; SyncBatch or Abort before Compact")
	}
	if err := s.writable(); err != nil {
		return CompactStats{}, err
	}
	if _, err := s.stageCommitLocked(); err != nil {
		return CompactStats{}, err
	}
	if _, err := s.syncStaged(); err != nil {
		return CompactStats{}, err
	}
	before := s.end
	order := s.reach()
	oidOf := func(v value.Value) uint64 { return s.oids[v] }

	tmp, err := s.fs.CreateTemp(iofault.Dir(s.path), ".compact-*")
	if err != nil {
		return CompactStats{}, wrapIO(iofault.OpCreateTemp, s.path, err)
	}
	tmpName := tmp.Name()
	defer s.fs.Remove(tmpName)
	headerLen := len(logMagic) + 1
	var out nodeBuf
	out.WriteString(logMagic)
	out.WriteByte(logVersion)
	kept := map[uint64][]byte{}
	for _, v := range order {
		img, err := encodeNode(v, oidOf, TransientPrefix)
		if err != nil {
			tmp.Close()
			return CompactStats{}, err
		}
		oid := s.oids[v]
		kept[oid] = img
		out.WriteByte(recNode)
		out.uvarint(oid)
		out.uvarint(uint64(len(img)))
		out.Write(img)
	}
	if err := s.encodeRootTable(&out); err != nil {
		tmp.Close()
		return CompactStats{}, err
	}
	if len(s.indexDefs) > 0 {
		s.encodeIndexDefs(&out) // the v1→v2 upgrade path for definitions
	}
	if s.epoch > 0 {
		// Carry the promotion epoch into the rewritten log (and onto v2
		// for a v1 source, where the record could not be appended).
		out.WriteByte(recEpoch)
		out.uvarint(s.epoch)
	}
	out.WriteByte(recCommit)
	// The group checksum covers everything after the header.
	var tr [checksumSize]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(out.Bytes()[headerLen:], crcTable))
	out.Write(tr[:])
	if _, err := tmp.Write(out.Bytes()); err != nil {
		tmp.Close()
		return CompactStats{}, wrapIO(iofault.OpWrite, tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return CompactStats{}, wrapIO(iofault.OpSync, tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return CompactStats{}, wrapIO(iofault.OpClose, tmpName, err)
	}
	if err := s.fs.Rename(tmpName, s.path); err != nil {
		return CompactStats{}, wrapIO(iofault.OpRename, s.path, err)
	}
	// From here the on-disk log is the compacted file. Swap the handle
	// before anything else can fail, so appends never target the unlinked
	// old inode; failure to swap poisons the store.
	f, err := s.fs.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return CompactStats{}, s.poison(wrapIO(iofault.OpOpen, s.path, err))
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return CompactStats{}, s.poison(wrapIO(iofault.OpSeek, s.path, err))
	}
	s.f.Close()
	s.f = f
	s.version = logVersion
	s.setEnd(int64(out.Len()))
	s.tailDirty = false
	s.defsDirty = false // the rewrite persisted the definitions
	freed := len(s.nodes) - len(kept)
	s.nodes = kept
	// fsync the containing directory: without it the rename itself — the
	// whole compaction — can be undone by a crash.
	if err := s.fs.SyncDir(iofault.Dir(s.path)); err != nil {
		return CompactStats{}, wrapIO(iofault.OpSyncDir, s.path, err)
	}
	return CompactStats{
		BytesBefore: before,
		BytesAfter:  int64(out.Len()),
		NodesKept:   len(kept),
		NodesFreed:  freed,
	}, nil
}
