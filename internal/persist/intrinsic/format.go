package intrinsic

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"dbpl/internal/dynamic"
	"dbpl/internal/persist/codec"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// This file defines the on-disk format: an append-only log of *shallow*
// node images. Each container value (record, list, set, tag, dynamic) is a
// node identified by an OID; a node's image encodes its atoms inline and
// its child containers as OID references. Because parents reference
// children by OID, structure sharing and cycles survive commits, and a
// commit need only append the nodes whose images changed.
//
// Log layout:
//
//	"DBPLLOG" version
//	repeated groups of records, each group terminated by a commit marker:
//	  'N' oid len imageBytes     -- a node (re)definition
//	  'R' count {name typeLen typeBytes valueInline}  -- the root table
//	  'X' count {name}           -- the index-definition table (v2 only)
//	  'E' epoch                  -- the promotion epoch (v2 only)
//	  'C' [crc32c]               -- commit marker
//
// Version 2 (current) follows the 'C' with the little-endian CRC-32C of
// the whole commit group — every byte from the end of the previous group
// through the 'C' itself — so bit rot is *detected* with an offset
// (CorruptError) instead of surfacing as an arbitrary decode failure.
// Version 1 groups have no checksum; v1 logs remain fully readable, and a
// store opened on one keeps appending v1 groups until Compact rewrites it
// at v2.
//
// Replay applies whole groups only: a torn final group (crash mid-commit)
// is ignored, so the store always reopens at the last complete commit.
// See scan.go for the torn-versus-corrupt classification rule.

// Errors returned by log decoding.
var (
	ErrCorrupt = errors.New("intrinsic: corrupt log")
)

const (
	logMagic    = "DBPLLOG"
	logVersion1 = 1
	logVersion2 = 2
	// logVersion is the format written to fresh logs.
	logVersion = logVersion2

	recNode   byte = 'N'
	recRoots  byte = 'R'
	recCommit byte = 'C'
	// recIndex is the index-definition table: the declared field indexes,
	// written whenever the set changes (a delta in time, a full table in
	// content, like the root table). Layout: 'X' count {len fieldName}.
	// Written only to v2 logs — the v1 grammar is frozen — but tolerated by
	// the reader in either version. Extent and index *contents* are never
	// logged: they rebuild from the committed roots on open, which is what
	// keeps an index from ever running ahead of the durable state.
	recIndex byte = 'X'
	// recEpoch is the promotion epoch: a monotone counter bumped by
	// Promote() when a replication follower takes over as primary, so two
	// histories that fork at a failover are distinguishable forever.
	// Layout: 'E' uvarint(epoch). Like 'X' it is a delta in time — the
	// last committed record wins — and is written only to v2 logs (the v1
	// grammar is frozen; Compact upgrades), but tolerated by the reader in
	// either version. Appended durably inside its own commit group by
	// Promote, and carried forward by Compact.
	recEpoch byte = 'E'

	// checksumSize is the CRC-32C trailer length after a v2 commit marker.
	checksumSize = 4

	// maxRecordSize bounds single node and type images as a corruption
	// guard during replay.
	maxRecordSize = 1 << 30
)

// readN reads exactly n bytes, growing the buffer incrementally so a
// corrupt log claiming a huge length fails fast at end of input instead of
// pre-allocating gigabytes.
func readN(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	if n <= chunk {
		buf := make([]byte, n)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		step := n - len(buf)
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// capCount bounds an initial slice capacity derived from untrusted input.
func capCount(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

// parseType decodes a codec type image (as written by nodeBuf.typ, without
// the length prefix).
func parseType(img []byte) (types.Type, error) {
	dec, err := codec.NewDecoder(bytes.NewReader(img))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	t, err := dec.Type()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return t, nil
}

// Inline value tags used inside node images and root entries.
const (
	inBottom byte = iota
	inUnit
	inInt
	inFloat
	inString
	inBoolTrue
	inBoolFalse
	inRef // child container: uvarint OID follows
	inRecord
	inList
	inSet
	inTag
	inDynamic
	inTypeVal
)

// nodeBuf is a growable encoding buffer.
type nodeBuf struct {
	bytes.Buffer
}

func (b *nodeBuf) uvarint(x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	b.Write(tmp[:n])
}

func (b *nodeBuf) varint(x int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], x)
	b.Write(tmp[:n])
}

func (b *nodeBuf) str(s string) {
	b.uvarint(uint64(len(s)))
	b.WriteString(s)
}

func (b *nodeBuf) typ(t types.Type) error {
	var tb bytes.Buffer
	e := codec.NewEncoder(&tb)
	if err := e.Type(t); err != nil {
		return err
	}
	if err := e.Flush(); err != nil {
		return err
	}
	b.uvarint(uint64(tb.Len()))
	b.Write(tb.Bytes())
	return nil
}

// isContainer reports whether v is stored as its own node.
func isContainer(v value.Value) bool {
	switch v.(type) {
	case *value.Record, *value.List, *value.Set, *value.Tag, *dynamic.Dynamic:
		return true
	}
	return false
}

// encodeInline writes an atom inline or a container as an OID reference.
// oidOf must return the (pre-assigned) OID for any container encountered.
func encodeInline(b *nodeBuf, v value.Value, oidOf func(value.Value) uint64) error {
	switch vv := v.(type) {
	case value.Int:
		b.WriteByte(inInt)
		b.varint(int64(vv))
	case value.Float:
		b.WriteByte(inFloat)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(float64(vv)))
		b.Write(tmp[:])
	case value.String:
		b.WriteByte(inString)
		b.str(string(vv))
	case value.Bool:
		if vv {
			b.WriteByte(inBoolTrue)
		} else {
			b.WriteByte(inBoolFalse)
		}
	case *value.TypeVal:
		b.WriteByte(inTypeVal)
		return b.typ(vv.T)
	default:
		if isContainer(v) {
			b.WriteByte(inRef)
			b.uvarint(oidOf(v))
			return nil
		}
		switch v.Kind() {
		case value.KindBottom:
			b.WriteByte(inBottom)
		case value.KindUnit:
			b.WriteByte(inUnit)
		default:
			return fmt.Errorf("intrinsic: unsupported value kind %T", v)
		}
	}
	return nil
}

// encodeNode produces the shallow image of a container. Record fields whose
// label begins with transientPrefix are skipped — the paper's "transient
// information attached to a persistent structure" (the memo fields of the
// bill-of-materials example), which must not persist. Set elements are
// emitted in canonical key order so images are deterministic.
func encodeNode(v value.Value, oidOf func(value.Value) uint64, transientPrefix string) ([]byte, error) {
	var b nodeBuf
	var err error
	switch vv := v.(type) {
	case *value.Record:
		b.WriteByte(inRecord)
		// Count the persistent fields first.
		n := 0
		vv.Each(func(l string, _ value.Value) {
			if !isTransient(l, transientPrefix) {
				n++
			}
		})
		b.uvarint(uint64(n))
		vv.Each(func(l string, f value.Value) {
			if err != nil || isTransient(l, transientPrefix) {
				return
			}
			b.str(l)
			err = encodeInline(&b, f, oidOf)
		})
	case *value.List:
		b.WriteByte(inList)
		b.uvarint(uint64(len(vv.Elems)))
		for _, el := range vv.Elems {
			if err = encodeInline(&b, el, oidOf); err != nil {
				break
			}
		}
	case *value.Set:
		b.WriteByte(inSet)
		elems := vv.Elems()
		sort.Slice(elems, func(i, j int) bool { return value.Key(elems[i]) < value.Key(elems[j]) })
		b.uvarint(uint64(len(elems)))
		for _, el := range elems {
			if err = encodeInline(&b, el, oidOf); err != nil {
				break
			}
		}
	case *value.Tag:
		b.WriteByte(inTag)
		b.str(vv.Label)
		err = encodeInline(&b, vv.Payload, oidOf)
	case *dynamic.Dynamic:
		b.WriteByte(inDynamic)
		if err = b.typ(vv.Type()); err == nil {
			err = encodeInline(&b, vv.Value(), oidOf)
		}
	default:
		return nil, fmt.Errorf("intrinsic: %T is not a container", v)
	}
	if err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func isTransient(label, prefix string) bool {
	return prefix != "" && len(label) >= len(prefix) && label[:len(prefix)] == prefix
}

// nodeReader decodes node images.
type nodeReader struct {
	buf []byte
	pos int
}

func (r *nodeReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("%w: short node", ErrCorrupt)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *nodeReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	r.pos += n
	return x, nil
}

func (r *nodeReader) varint() (int64, error) {
	x, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	r.pos += n
	return x, nil
}

func (r *nodeReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.buf) {
		return "", fmt.Errorf("%w: short string", ErrCorrupt)
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *nodeReader) typ() (types.Type, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if r.pos+int(n) > len(r.buf) {
		return nil, fmt.Errorf("%w: short type", ErrCorrupt)
	}
	dec, err := codec.NewDecoder(bytes.NewReader(r.buf[r.pos : r.pos+int(n)]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	r.pos += int(n)
	t, err := dec.Type()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return t, nil
}

// inlineValue decodes an inline value; container refs are resolved through
// resolve, which materializes (or returns the already-materialized) node.
func (r *nodeReader) inlineValue(resolve func(oid uint64) (value.Value, error)) (value.Value, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case inBottom:
		return value.Bottom, nil
	case inUnit:
		return value.Unit, nil
	case inInt:
		x, err := r.varint()
		if err != nil {
			return nil, err
		}
		return value.Int(x), nil
	case inFloat:
		if r.pos+8 > len(r.buf) {
			return nil, fmt.Errorf("%w: short float", ErrCorrupt)
		}
		bits := binary.LittleEndian.Uint64(r.buf[r.pos:])
		r.pos += 8
		return value.Float(math.Float64frombits(bits)), nil
	case inString:
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		return value.String(s), nil
	case inBoolTrue:
		return value.Bool(true), nil
	case inBoolFalse:
		return value.Bool(false), nil
	case inTypeVal:
		t, err := r.typ()
		if err != nil {
			return nil, err
		}
		return value.NewTypeVal(t), nil
	case inRef:
		oid, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		return resolve(oid)
	default:
		return nil, fmt.Errorf("%w: inline tag %d", ErrCorrupt, tag)
	}
}
