package intrinsic

import (
	"os"
	"path/filepath"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// writeV1Log handcrafts a version-1 (checksum-free) log holding one
// committed root x = 7, byte for byte what the pre-v2 store wrote.
func writeV1Log(t *testing.T, path string) {
	t.Helper()
	var b nodeBuf
	b.WriteString(logMagic)
	b.WriteByte(logVersion1)
	b.WriteByte(recRoots)
	b.uvarint(1)
	b.str("x")
	if err := b.typ(types.Int); err != nil {
		t.Fatal(err)
	}
	var vb nodeBuf
	if err := encodeInline(&vb, value.Int(7), nil); err != nil {
		t.Fatal(err)
	}
	b.uvarint(uint64(vb.Len()))
	b.Write(vb.Bytes())
	b.WriteByte(recCommit) // v1: no checksum after the commit marker
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1LogCompat: a v1 log still opens, appends stay v1 (a mixed-version
// log would be unreadable), and Compact upgrades the file to v2.
func TestV1LogCompat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.log")
	writeV1Log(t, path)

	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open v1 log: %v", err)
	}
	if r, ok := s.Root("x"); !ok || !value.Equal(r.Value, value.Int(7)) {
		t.Fatalf("v1 root x = %v, want 7", r)
	}
	if err := s.Bind("y", value.Int(8), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("Commit onto v1 log: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The appended group is v1 too: the log stays structurally clean at
	// version 1 (an appended checksum would read as a stray record).
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != logVersion1 {
		t.Fatalf("version = %d after append, want 1", rep.Version)
	}
	if !rep.Clean() || rep.Commits != 2 {
		t.Fatalf("report = %+v, want clean with 2 commits", rep)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen v1 log: %v", err)
	}
	if r, ok := s2.Root("y"); !ok || !value.Equal(r.Value, value.Int(8)) {
		t.Fatalf("appended v1 root y = %v, want 8", r)
	}

	// Compact rewrites at the current version: the upgrade path to v2.
	if _, err := s2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	rep2, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Version != logVersion2 {
		t.Fatalf("version = %d after Compact, want 2", rep2.Version)
	}
	if !rep2.Clean() {
		t.Fatalf("upgraded log not clean: %+v", rep2)
	}

	s3, err := Open(path)
	if err != nil {
		t.Fatalf("reopen upgraded log: %v", err)
	}
	defer s3.Close()
	if r, ok := s3.Root("x"); !ok || !value.Equal(r.Value, value.Int(7)) {
		t.Fatalf("upgraded root x = %v, want 7", r)
	}
	if r, ok := s3.Root("y"); !ok || !value.Equal(r.Value, value.Int(8)) {
		t.Fatalf("upgraded root y = %v, want 8", r)
	}
}
