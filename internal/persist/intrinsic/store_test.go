package intrinsic

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func reopen(t *testing.T, s *Store) *Store {
	t.Helper()
	path := s.Path()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	return s2
}

func TestBindCommitReopen(t *testing.T) {
	s := open(t)
	db := value.Rec("Employees", value.NewSet(
		value.Rec("Name", value.String("J Doe"), "Dept", value.String("Sales"))))
	if err := s.Bind("DB", db, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	r, ok := s2.Root("DB")
	if !ok {
		t.Fatal("root lost")
	}
	if !value.Equal(r.Value, db) {
		t.Errorf("reopened value = %s", r.Value)
	}
	if !types.Equal(r.Declared, value.TypeOf(db)) {
		t.Errorf("declared type = %s", r.Declared)
	}
}

func TestBindConformance(t *testing.T) {
	s := open(t)
	err := s.Bind("x", value.Int(3), types.String)
	if !errors.Is(err, ErrNotConforming) {
		t.Errorf("err = %v, want ErrNotConforming", err)
	}
	// Binding at a declared supertype is fine.
	if err := s.Bind("p", value.Rec("Name", value.String("J"), "Empno", value.Int(1)),
		types.MustParse("{Name: String}")); err != nil {
		t.Fatal(err)
	}
}

func TestAtomRoots(t *testing.T) {
	s := open(t)
	if err := s.Bind("n", value.Int(42), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("s", value.String("hello"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	if r, _ := s2.Root("n"); !value.Equal(r.Value, value.Int(42)) {
		t.Error("atom root lost")
	}
	if r, _ := s2.Root("s"); !value.Equal(r.Value, value.String("hello")) {
		t.Error("string root lost")
	}
}

func TestSharingSurvivesReopen(t *testing.T) {
	// The decisive advantage over replicating persistence: two handles
	// reaching one value still share it after reopening.
	s := open(t)
	c := value.Rec("Balance", value.Int(100))
	if err := s.Bind("a", value.Rec("Ref", c), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("b", value.Rec("Ref", c), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	ra, _ := s2.Root("a")
	rb, _ := s2.Root("b")
	ca := ra.Value.(*value.Record).MustGet("Ref").(*value.Record)
	cb := rb.Value.(*value.Record).MustGet("Ref").(*value.Record)
	if ca != cb {
		t.Fatal("sharing lost across reopen")
	}
	// An update through a is visible through b — no update anomaly.
	ca.Set("Balance", value.Int(0))
	if v, _ := cb.Get("Balance"); !value.Equal(v, value.Int(0)) {
		t.Error("update through one handle invisible through the other")
	}
}

func TestCycleSurvivesReopen(t *testing.T) {
	s := open(t)
	r := value.NewRecord()
	r.Set("Name", value.String("loop"))
	r.Set("Self", r)
	if err := s.Bind("cyc", r, types.Top); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	root, _ := s2.Root("cyc")
	rec := root.Value.(*value.Record)
	if rec.MustGet("Self").(*value.Record) != rec {
		t.Error("cycle lost")
	}
}

func TestCommitIsIncremental(t *testing.T) {
	s := open(t)
	// Bind many independent records, commit, mutate one, commit again.
	var recs []*value.Record
	lst := value.NewList()
	for i := 0; i < 100; i++ {
		r := value.Rec("I", value.Int(int64(i)))
		recs = append(recs, r)
		lst.Append(r)
	}
	if err := s.Bind("all", lst, nil); err != nil {
		t.Fatal(err)
	}
	st1, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st1.NodesWritten != 101 { // the list + 100 records
		t.Errorf("first commit wrote %d nodes, want 101", st1.NodesWritten)
	}
	// A no-op commit writes no nodes.
	st2, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st2.NodesWritten != 0 {
		t.Errorf("no-op commit wrote %d nodes, want 0", st2.NodesWritten)
	}
	// Mutating one record re-writes exactly that node.
	recs[42].Set("I", value.Int(-1))
	st3, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st3.NodesWritten != 1 {
		t.Errorf("delta commit wrote %d nodes, want 1", st3.NodesWritten)
	}
	if st3.NodesReachable != 101 {
		t.Errorf("reachable = %d, want 101", st3.NodesReachable)
	}
}

func TestAbortRevertsToLastCommit(t *testing.T) {
	// PS-algol: "before this instruction is called, the persistent value
	// and the value being used by the program can diverge".
	s := open(t)
	r := value.Rec("K", value.Int(1))
	if err := s.Bind("x", r, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	r.Set("K", value.Int(2))                               // diverge
	if err := s.Bind("y", value.Int(9), nil); err != nil { // and a new root
		t.Fatal(err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	root, ok := s.Root("x")
	if !ok {
		t.Fatal("x lost by abort")
	}
	if v, _ := root.Value.(*value.Record).Get("K"); !value.Equal(v, value.Int(1)) {
		t.Errorf("abort did not revert: K = %s", v)
	}
	if _, ok := s.Root("y"); ok {
		t.Error("uncommitted root survived abort")
	}
}

func TestTransientFieldsDoNotPersist(t *testing.T) {
	// The bill-of-materials memo fields: attached to persistent parts,
	// needed during the computation, not persisted.
	s := open(t)
	part := value.Rec("Name", value.String("frame"), "Cost", value.Float(10))
	part.Set("_memoTotalCost", value.Float(123.45))
	if err := s.Bind("part", part, types.MustParse("{Name: String, Cost: Float}")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// In memory the memo is still there.
	if _, ok := part.Get("_memoTotalCost"); !ok {
		t.Fatal("commit must not strip in-memory transient fields")
	}
	s2 := reopen(t, s)
	root, _ := s2.Root("part")
	if _, ok := root.Value.(*value.Record).Get("_memoTotalCost"); ok {
		t.Error("transient field persisted")
	}
	if v, _ := root.Value.(*value.Record).Get("Cost"); !value.Equal(v, value.Float(10)) {
		t.Error("persistent field lost")
	}
}

func TestTransientOnlyChangeIsNoOpCommit(t *testing.T) {
	s := open(t)
	part := value.Rec("Name", value.String("frame"))
	if err := s.Bind("part", part, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	part.Set("_memo", value.Int(1))
	st, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesWritten != 0 {
		t.Errorf("transient-only change wrote %d nodes, want 0", st.NodesWritten)
	}
}

func TestUnbindAndCompactCollectGarbage(t *testing.T) {
	s := open(t)
	big := value.NewList()
	for i := 0; i < 500; i++ {
		big.Append(value.Rec("I", value.Int(int64(i))))
	}
	if err := s.Bind("big", big, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("small", value.Rec("K", value.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !s.Unbind("big") {
		t.Fatal("Unbind failed")
	}
	st, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Errorf("compaction did not shrink the log: %d -> %d", st.BytesBefore, st.BytesAfter)
	}
	if st.NodesFreed < 500 {
		t.Errorf("freed %d nodes, want >= 500", st.NodesFreed)
	}
	// The survivor is intact after reopen.
	s2 := reopen(t, s)
	if _, ok := s2.Root("big"); ok {
		t.Error("unbound root survived compaction")
	}
	root, ok := s2.Root("small")
	if !ok {
		t.Fatal("small root lost by compaction")
	}
	if v, _ := root.Value.(*value.Record).Get("K"); !value.Equal(v, value.Int(1)) {
		t.Error("survivor corrupted")
	}
}

func TestCrashRecoveryTornCommit(t *testing.T) {
	s := open(t)
	if err := s.Bind("x", value.Rec("K", value.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Root("x")
	r.Value.(*value.Record).Set("K", value.Int(2))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	path := s.Path()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-commit: truncate the tail of the log so the
	// second commit group is torn.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(img) - 1; cut > len(logMagic)+1; cut-- {
		if err := os.WriteFile(path, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after truncation at %d: %v", cut, err)
		}
		if root, ok := s2.Root("x"); ok {
			v, _ := root.Value.(*value.Record).Get("K")
			if !value.Equal(v, value.Int(1)) && !value.Equal(v, value.Int(2)) {
				t.Fatalf("truncation at %d exposed inconsistent state: K = %s", cut, v)
			}
		}
		s2.Close()
	}
}

func TestSchemaEvolutionMatrix(t *testing.T) {
	// The paper's DBType / DBType' recompilation scenario.
	stored := types.MustParse("{Employees: Set[{Name: String, Empno: Int}]}")
	emps := value.Rec("Employees", value.NewSet(
		value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1))))

	t.Run("supertype is a view", func(t *testing.T) {
		s := open(t)
		if err := s.Bind("DB", emps, stored); err != nil {
			t.Fatal(err)
		}
		v, err := s.OpenAs("DB", types.MustParse("{Employees: Set[{Name: String}]}"))
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(v, emps) {
			t.Error("view should expose the stored value")
		}
		// The schema is NOT narrowed by a view.
		r, _ := s.Root("DB")
		if !types.Equal(r.Declared, stored) {
			t.Errorf("view changed the schema to %s", r.Declared)
		}
	})

	t.Run("consistent type enriches the schema", func(t *testing.T) {
		s := open(t)
		if err := s.Bind("DB", emps, stored); err != nil {
			t.Fatal(err)
		}
		// A new program knows about Departments too. Consistent: the meet
		// has both fields. The value must be migrated first.
		want := types.MustParse("{Employees: Set[{Name: String, Empno: Int}], Departments: Set[{Dept: String}]}")
		_, err := s.OpenAs("DB", want)
		if !errors.Is(err, ErrMigrationRequired) {
			t.Fatalf("err = %v, want ErrMigrationRequired", err)
		}
		// Migrate: add the missing field, then reopen.
		emps2 := value.Copy(emps).(*value.Record)
		emps2.Set("Departments", value.NewSet())
		if err := s.Bind("DB", emps2, stored); err != nil {
			t.Fatal(err)
		}
		if _, err := s.OpenAs("DB", want); err != nil {
			t.Fatalf("after migration: %v", err)
		}
		r, _ := s.Root("DB")
		m, _ := types.Meet(stored, want)
		if !types.Equal(r.Declared, m) {
			t.Errorf("schema = %s, want the meet %s", r.Declared, m)
		}
	})

	t.Run("element enrichment", func(t *testing.T) {
		// Same field, finer element type: consistent; existing elements
		// must already carry the extra attribute.
		s := open(t)
		richEmps := value.Rec("Employees", value.NewSet(
			value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1), "Dept", value.String("S"))))
		if err := s.Bind("DB", richEmps, stored); err != nil {
			t.Fatal(err)
		}
		want := types.MustParse("{Employees: Set[{Name: String, Empno: Int, Dept: String}]}")
		if _, err := s.OpenAs("DB", want); err != nil {
			t.Fatalf("consistent element enrichment failed: %v", err)
		}
	})

	t.Run("inconsistent is rejected", func(t *testing.T) {
		s := open(t)
		if err := s.Bind("DB", emps, stored); err != nil {
			t.Fatal(err)
		}
		_, err := s.OpenAs("DB", types.MustParse("{Employees: Int}"))
		if !errors.Is(err, ErrInconsistent) {
			t.Errorf("err = %v, want ErrInconsistent", err)
		}
	})

	t.Run("missing handle", func(t *testing.T) {
		s := open(t)
		if _, err := s.OpenAs("nope", types.Top); !errors.Is(err, ErrNoRoot) {
			t.Errorf("err = %v, want ErrNoRoot", err)
		}
	})
}

func TestDynamicsPersist(t *testing.T) {
	s := open(t)
	d, err := dynamic.MakeAt(value.Rec("Name", value.String("J"), "Empno", value.Int(1)),
		types.MustParse("{Name: String}"))
	if err != nil {
		t.Fatal(err)
	}
	lst := value.NewList(d)
	if err := s.Bind("db", lst, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	root, _ := s2.Root("db")
	got := root.Value.(*value.List).Elems[0].(*dynamic.Dynamic)
	if !types.Equal(got.Type(), types.MustParse("{Name: String}")) {
		t.Errorf("dynamic declared type = %s", got.Type())
	}
	if _, ok := got.Value().(*value.Record).Get("Empno"); !ok {
		t.Error("dynamic payload lost structure")
	}
}

func TestNamesAndUnbind(t *testing.T) {
	s := open(t)
	_ = s.Bind("b", value.Int(1), nil)
	_ = s.Bind("a", value.Int(2), nil)
	if names := s.Names(); len(names) != 2 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
	if !s.Unbind("a") || s.Unbind("a") {
		t.Error("Unbind misbehaves")
	}
}

func TestRebindOverwrites(t *testing.T) {
	s := open(t)
	_ = s.Bind("x", value.Int(1), nil)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = s.Bind("x", value.Rec("K", value.Int(2)), nil)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	root, _ := s2.Root("x")
	if root.Value.Kind() != value.KindRecord {
		t.Errorf("rebind lost: %s", root.Value)
	}
}

func TestSetsWithContainersPersist(t *testing.T) {
	s := open(t)
	set := value.NewSet(
		value.Rec("Name", value.String("A")),
		value.Rec("Name", value.String("B")),
	)
	if err := s.Bind("s", set, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	root, _ := s2.Root("s")
	got := root.Value.(*value.Set)
	if got.Len() != 2 || !got.Contains(value.Rec("Name", value.String("A"))) {
		t.Errorf("set round trip = %s", got)
	}
}
