package intrinsic

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// This file is the store's replication surface: a primary reads verified
// commit groups back out of its own log (ReadGroupsAt), and a follower
// appends them verbatim to its log and applies them to its materialized
// state (ApplyGroup). Because groups are shipped as raw log bytes, a
// follower's file is a byte-for-byte prefix of the primary's verified
// prefix at every instant — the invariant the crash-matrix test replays —
// and resuming after a crash on either side is just "send me everything
// from my durable end".

// HeaderSize is the length of the log header ("DBPLLOG" + version byte):
// the smallest legal replication offset.
const HeaderSize = int64(len(logMagic) + 1)

// Replication errors.
var (
	// ErrBadOffset: a replication offset outside [HeaderSize, durable end].
	ErrBadOffset = errors.New("intrinsic: replication offset out of range")
	// ErrUnverified: the log is v1 (no group checksums), so groups cannot
	// be verified before shipping or applying; Compact upgrades it.
	ErrUnverified = errors.New("intrinsic: replication requires a v2 (checksummed) log")
	// ErrBadGroup: the bytes handed to ApplyGroup are not a sequence of
	// whole, valid commit groups.
	ErrBadGroup = errors.New("intrinsic: bytes are not whole verified commit groups")
)

// DurableEnd returns the offset just past the last durable commit group.
// It is lock-free: safe to call from health reporting while a commit is
// wedged holding the store mutex.
func (s *Store) DurableEnd() int64 { return s.endA.Load() }

// EnterReplica puts the store in replica mode before the first group
// arrives: local mutations (Bind, Commit, Compact, ...) are refused with
// ErrReplica from here on, so the log can only grow through ApplyGroup.
func (s *Store) EnterReplica() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replica = true
}

// scanRaw runs the structural scanner over raw bytes as if they followed a
// v2 log header. Offsets in the returned summary therefore count from
// HeaderSize, as in a real file.
func scanRaw(raw []byte, sink scanSink) (scanSummary, error) {
	hdr := append([]byte(logMagic), logVersion2)
	return scanLog(io.MultiReader(bytes.NewReader(hdr), bytes.NewReader(raw)), sink)
}

// ReadGroupsAt reads whole commit groups starting exactly at offset from,
// verifying structure and CRC before returning them — a primary ships only
// its verified prefix. It returns the raw bytes, the offset of the first
// byte after them, and how many groups they contain. maxBytes is a soft
// target (<= 0 means 256 KiB): at least one whole group is always
// returned, however large. from == DurableEnd returns (nil, from, 0, nil).
func (s *Store) ReadGroupsAt(from int64, maxBytes int) ([]byte, int64, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, 0, ErrClosed
	}
	if s.broken != nil {
		return nil, 0, 0, s.broken
	}
	if s.version != logVersion2 {
		return nil, 0, 0, ErrUnverified
	}
	if from < HeaderSize || from > s.end {
		return nil, 0, 0, fmt.Errorf("%w: %d (durable log spans [%d,%d])", ErrBadOffset, from, HeaderSize, s.end)
	}
	if from == s.end {
		return nil, from, 0, nil
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 10
	}
	n := int64(maxBytes)
	for {
		if n > s.end-from {
			n = s.end - from
		}
		buf, err := s.readAt(from, int(n))
		if err != nil {
			return nil, 0, 0, err
		}
		good, groups, cerr := groupBoundary(buf)
		if cerr != nil {
			return nil, 0, 0, cerr
		}
		if groups > 0 {
			return buf[:good], from + good, groups, nil
		}
		if n == s.end-from {
			// The whole durable remainder contains no complete group: the
			// file rotted under us (the durable prefix always ends on a
			// group boundary).
			return nil, 0, 0, &CorruptError{Offset: from, Reason: "no commit-group boundary before durable end"}
		}
		n *= 2 // a single group larger than the window: widen and retry
	}
}

// readAt reads n bytes at off and restores the file position to the
// append position — the durable end, or past the last staged group while
// a commit batch is open (a replication read racing a group commit must
// not reset where the next staged group lands). Failing to restore it
// poisons the store: a later append at an unknown position could corrupt
// the log.
func (s *Store) readAt(off int64, n int) ([]byte, error) {
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return nil, s.poison(wrapIO(iofault.OpSeek, s.path, err))
	}
	buf := make([]byte, n)
	_, rerr := io.ReadFull(s.f, buf)
	if _, err := s.f.Seek(s.appendPos(), io.SeekStart); err != nil {
		return nil, s.poison(wrapIO(iofault.OpSeek, s.path, err))
	}
	if rerr != nil {
		return nil, wrapIO(iofault.OpRead, s.path, rerr)
	}
	return buf, nil
}

// groupBoundary scans buf and returns the length of its longest prefix of
// whole valid commit groups and how many groups that prefix holds. A cut
// final group is fine (it just isn't counted); deterministic corruption is
// an error.
func groupBoundary(buf []byte) (int64, int, error) {
	sum, err := scanRaw(buf, scanSink{})
	if err != nil {
		return 0, 0, err
	}
	if sum.corrupt != nil {
		return 0, 0, sum.corrupt
	}
	return sum.goodEnd - HeaderSize, sum.commits, nil
}

// GroupDelta reports what ApplyGroup changed, in the vocabulary the server
// needs to advance its published state: which roots were (re)bound, which
// disappeared, and whether the index-definition table changed.
type GroupDelta struct {
	Start, End int64 // the log offsets the bytes occupy
	Groups     int   // commit groups applied
	// Changed names roots whose binding is new or different, sorted;
	// Removed names roots no longer in the table, sorted.
	Changed []string
	Removed []string
	// DefsChanged reports that the declared index-field set changed.
	DefsChanged bool
}

// ApplyGroup verifies raw — one or more whole v2 commit groups that must
// begin exactly at the store's durable end — appends it to the log with
// the same rollback/poison discipline as a local commit, and applies it to
// the materialized roots. The first call puts the store in replica mode
// (see EnterReplica). Verification is complete before any I/O: a torn or
// checksum-corrupt frame is rejected with ErrBadGroup or a *CorruptError
// and the store is untouched.
func (s *Store) ApplyGroup(raw []byte) (GroupDelta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var delta GroupDelta
	if s.closed {
		return delta, ErrClosed
	}
	if s.broken != nil {
		return delta, s.broken
	}
	if s.version != logVersion2 {
		return delta, ErrUnverified
	}
	if s.staged > 0 {
		return delta, fmt.Errorf("%w: store has a staged local commit batch", ErrReplica)
	}
	s.replica = true
	delta.Start, delta.End = s.end, s.end
	if len(raw) == 0 {
		return delta, nil
	}

	// 1. Structural + checksum verification, collecting the committed
	//    effect, before a single byte touches the file.
	newNodes := map[uint64][]byte{}
	pending := map[uint64][]byte{}
	var newRoots []rootEntry
	var newDefs []string
	sawRoots, sawDefs := false, false
	var pendRoots []rootEntry
	var pendDefs []string
	pendSawRoots, pendSawDefs := false, false
	sum, err := scanRaw(raw, scanSink{
		node:      func(oid uint64, img []byte) { pending[oid] = img },
		roots:     func(e []rootEntry) { pendRoots, pendSawRoots = e, true },
		indexDefs: func(f []string) { pendDefs, pendSawDefs = f, true },
		commit: func(int64) {
			for oid, img := range pending {
				newNodes[oid] = img
			}
			pending = map[uint64][]byte{}
			if pendSawRoots {
				newRoots, sawRoots, pendSawRoots = pendRoots, true, false
			}
			if pendSawDefs {
				newDefs, sawDefs, pendSawDefs = pendDefs, true, false
			}
		},
	})
	if err != nil {
		return delta, err
	}
	if sum.corrupt != nil {
		return delta, sum.corrupt
	}
	if sum.commits == 0 || sum.goodEnd != HeaderSize+int64(len(raw)) {
		return delta, fmt.Errorf("%w: frame does not end on a commit-group boundary", ErrBadGroup)
	}
	delta.Groups = sum.commits

	// 2. Stage the in-memory effect without touching live state, so a
	//    failed append leaves memory exactly at the old commit. A node
	//    image overwriting a *different* existing image means in-place
	//    mutation of a shared subgraph — a serve primary never produces
	//    that (every PUT binds freshly decoded values), but a generic
	//    primary can, and then the cheap per-root diff under-approximates:
	//    fall back to re-materializing every root.
	overwrite := false
	for oid, img := range newNodes {
		if prev, ok := s.nodes[oid]; ok && !bytes.Equal(prev, img) {
			overwrite = true
			break
		}
	}
	var changedEntries []rootEntry
	var removed []string
	if sawRoots {
		for _, e := range newRoots {
			old, ok := s.lastRoots[e.name]
			if !ok || overwrite || !bytes.Equal(old.inline, e.inline) ||
				types.Intern(old.typ) != types.Intern(e.typ) {
				changedEntries = append(changedEntries, e)
			}
		}
		seen := make(map[string]bool, len(newRoots))
		for _, e := range newRoots {
			seen[e.name] = true
		}
		for name := range s.lastRoots {
			if !seen[name] {
				removed = append(removed, name)
			}
		}
		sort.Strings(removed)
	}
	type stagedRoot struct {
		entry rootEntry
		val   value.Value
	}
	staged := make([]stagedRoot, 0, len(changedEntries))
	s.applyOverlay = newNodes
	cache := map[uint64]value.Value{}
	for _, e := range changedEntries {
		rd := &nodeReader{buf: e.inline}
		v, merr := rd.inlineValue(func(oid uint64) (value.Value, error) {
			return s.materialize(oid, cache, map[uint64]bool{})
		})
		if merr != nil {
			s.applyOverlay = nil
			return delta, merr
		}
		staged = append(staged, stagedRoot{entry: e, val: v})
	}
	s.applyOverlay = nil

	// 3. Durable append — the shared write path with local commits.
	if err := s.appendBytes(raw); err != nil {
		return delta, err
	}
	delta.End = s.end

	// 4. Publish to memory; nothing below can fail.
	for oid, img := range newNodes {
		s.nodes[oid] = img
		if oid >= s.nextOID {
			s.nextOID = oid + 1
		}
	}
	if sawRoots {
		for _, name := range removed {
			delete(s.roots, name)
		}
		for _, st := range staged {
			s.roots[st.entry.name] = &Root{Declared: st.entry.typ, Value: st.val}
			delta.Changed = append(delta.Changed, st.entry.name)
		}
		sort.Strings(delta.Changed)
		s.lastRoots = make(map[string]rootEntry, len(newRoots))
		for _, e := range newRoots {
			s.lastRoots[e.name] = e
		}
		delta.Removed = removed
	}
	if sawDefs {
		next := make(map[string]bool, len(newDefs))
		for _, f := range newDefs {
			next[f] = true
		}
		if len(next) != len(s.indexDefs) {
			delta.DefsChanged = true
		} else {
			for f := range next {
				if !s.indexDefs[f] {
					delta.DefsChanged = true
					break
				}
			}
		}
		s.indexDefs = next
		s.defsDirty = false
	}
	return delta, nil
}
