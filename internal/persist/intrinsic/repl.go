package intrinsic

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// This file is the store's replication surface: a primary reads verified
// commit groups back out of its own log (ReadGroupsAt), and a follower
// appends them verbatim to its log and applies them to its materialized
// state (ApplyGroup). Because groups are shipped as raw log bytes, a
// follower's file is a byte-for-byte prefix of the primary's verified
// prefix at every instant — the invariant the crash-matrix test replays —
// and resuming after a crash on either side is just "send me everything
// from my durable end".

// HeaderSize is the length of the log header ("DBPLLOG" + version byte):
// the smallest legal replication offset.
const HeaderSize = int64(len(logMagic) + 1)

// Replication errors.
var (
	// ErrBadOffset: a replication offset outside [HeaderSize, durable end].
	ErrBadOffset = errors.New("intrinsic: replication offset out of range")
	// ErrUnverified: the log is v1 (no group checksums), so groups cannot
	// be verified before shipping or applying; Compact upgrades it.
	ErrUnverified = errors.New("intrinsic: replication requires a v2 (checksummed) log")
	// ErrBadGroup: the bytes handed to ApplyGroup are not a sequence of
	// whole, valid commit groups.
	ErrBadGroup = errors.New("intrinsic: bytes are not whole verified commit groups")
	// ErrDiverged: this store's log is not a byte prefix of the log it is
	// being compared against — the histories forked (a stale primary kept
	// committing past a failover) and no amount of shipping can reconcile
	// them. DivergenceError carries the first divergent offset.
	ErrDiverged = errors.New("intrinsic: log has diverged; histories forked and cannot be reconciled by replication")
)

// DivergenceError reports where two logs stop agreeing: the offset of the
// first byte at which this store's log differs from the one it rejoined
// against. It unwraps to ErrDiverged. Recovery is manual and explicit —
// salvage or discard the divergent suffix — never silent truncation.
type DivergenceError struct {
	Offset int64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("intrinsic: log diverges at offset %d: local bytes disagree with the current primary's history; refusing to truncate", e.Offset)
}

func (e *DivergenceError) Unwrap() error { return ErrDiverged }

// DurableEnd returns the offset just past the last durable commit group.
// It is lock-free: safe to call from health reporting while a commit is
// wedged holding the store mutex.
func (s *Store) DurableEnd() int64 { return s.endA.Load() }

// EnterReplica puts the store in replica mode before the first group
// arrives: local mutations (Bind, Commit, Compact, ...) are refused with
// ErrReplica from here on, so the log can only grow through ApplyGroup.
func (s *Store) EnterReplica() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replica = true
}

// Epoch returns the promotion epoch: 0 until the first Promote, and the
// last committed 'E' record's value after recovery. Lock-free, like
// DurableEnd — fencing decisions and health reporting must not block
// behind a wedged commit.
func (s *Store) Epoch() uint64 { return s.epochA.Load() }

// Promote is the inverse of EnterReplica: it bumps the promotion epoch,
// appends the epoch record durably as its own commit group, and re-enables
// local mutations (Bind, Commit, ...). It is the store half of failover —
// a follower whose primary died becomes the new primary the moment the
// epoch record is durable. Promote also works on a store that was never a
// replica (a planned epoch bump before handing off).
//
// The bump is atomic: the record rides the same stage/sync/rollback path
// as a commit, so a crash at any I/O boundary leaves either the old epoch
// (torn or missing group, ignored on reopen) or the new one — never a torn
// record applied. Refused while a staged batch is open (its owner decides
// its fate first), on a poisoned store, and on a v1 log (no checksummed
// groups to replicate afterwards; Compact upgrades).
func (s *Store) Promote() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.broken != nil {
		return 0, s.broken
	}
	if s.staged > 0 {
		return 0, fmt.Errorf("intrinsic: a staged commit batch is open; SyncBatch or Abort before Promote")
	}
	if s.version != logVersion2 {
		return 0, ErrUnverified
	}
	next := s.epoch + 1
	var out nodeBuf
	out.WriteByte(recEpoch)
	out.uvarint(next)
	out.WriteByte(recCommit)
	if err := s.stageGroup(&out); err != nil {
		return 0, err
	}
	if _, err := s.syncStaged(); err != nil {
		return 0, err
	}
	s.replica = false
	s.setEpoch(next)
	return next, nil
}

// VerifyTail compares raw — the current primary's log bytes starting at
// offset from — against this store's durable log. It returns how many
// bytes of raw overlap the local log (the caller applies the remainder
// with ApplyGroup), or a *DivergenceError naming the first offset at which
// the local bytes disagree: this store committed history the primary does
// not have, and must not be truncated silently. from must lie within the
// durable log.
func (s *Store) VerifyTail(raw []byte, from int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.broken != nil {
		return 0, s.broken
	}
	if from < HeaderSize || from > s.end {
		return 0, fmt.Errorf("%w: %d (durable log spans [%d,%d])", ErrBadOffset, from, HeaderSize, s.end)
	}
	n := int64(len(raw))
	if from+n > s.end {
		n = s.end - from
	}
	if n <= 0 {
		return 0, nil
	}
	local, err := s.readAt(from, int(n))
	if err != nil {
		return 0, err
	}
	for i := int64(0); i < n; i++ {
		if local[i] != raw[i] {
			return i, &DivergenceError{Offset: from + i}
		}
	}
	return n, nil
}

// scanRaw runs the structural scanner over raw bytes as if they followed a
// v2 log header. Offsets in the returned summary therefore count from
// HeaderSize, as in a real file.
func scanRaw(raw []byte, sink scanSink) (scanSummary, error) {
	hdr := append([]byte(logMagic), logVersion2)
	return scanLog(io.MultiReader(bytes.NewReader(hdr), bytes.NewReader(raw)), sink)
}

// ReadGroupsAt reads whole commit groups starting exactly at offset from,
// verifying structure and CRC before returning them — a primary ships only
// its verified prefix. It returns the raw bytes, the offset of the first
// byte after them, and how many groups they contain. maxBytes is a soft
// target (<= 0 means 256 KiB): at least one whole group is always
// returned, however large. from == DurableEnd returns (nil, from, 0, nil).
func (s *Store) ReadGroupsAt(from int64, maxBytes int) ([]byte, int64, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, 0, ErrClosed
	}
	if s.broken != nil {
		return nil, 0, 0, s.broken
	}
	if s.version != logVersion2 {
		return nil, 0, 0, ErrUnverified
	}
	if from < HeaderSize || from > s.end {
		return nil, 0, 0, fmt.Errorf("%w: %d (durable log spans [%d,%d])", ErrBadOffset, from, HeaderSize, s.end)
	}
	if from == s.end {
		return nil, from, 0, nil
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 10
	}
	n := int64(maxBytes)
	for {
		if n > s.end-from {
			n = s.end - from
		}
		buf, err := s.readAt(from, int(n))
		if err != nil {
			return nil, 0, 0, err
		}
		good, groups, cerr := groupBoundary(buf)
		if cerr != nil {
			return nil, 0, 0, cerr
		}
		if groups > 0 {
			return buf[:good], from + good, groups, nil
		}
		if n == s.end-from {
			// The whole durable remainder contains no complete group: the
			// file rotted under us (the durable prefix always ends on a
			// group boundary).
			return nil, 0, 0, &CorruptError{Offset: from, Reason: "no commit-group boundary before durable end"}
		}
		n *= 2 // a single group larger than the window: widen and retry
	}
}

// readAt reads n bytes at off and restores the file position to the
// append position — the durable end, or past the last staged group while
// a commit batch is open (a replication read racing a group commit must
// not reset where the next staged group lands). Failing to restore it
// poisons the store: a later append at an unknown position could corrupt
// the log.
func (s *Store) readAt(off int64, n int) ([]byte, error) {
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return nil, s.poison(wrapIO(iofault.OpSeek, s.path, err))
	}
	buf := make([]byte, n)
	_, rerr := io.ReadFull(s.f, buf)
	if _, err := s.f.Seek(s.appendPos(), io.SeekStart); err != nil {
		return nil, s.poison(wrapIO(iofault.OpSeek, s.path, err))
	}
	if rerr != nil {
		return nil, wrapIO(iofault.OpRead, s.path, rerr)
	}
	return buf, nil
}

// groupBoundary scans buf and returns the length of its longest prefix of
// whole valid commit groups and how many groups that prefix holds. A cut
// final group is fine (it just isn't counted); deterministic corruption is
// an error.
func groupBoundary(buf []byte) (int64, int, error) {
	sum, err := scanRaw(buf, scanSink{})
	if err != nil {
		return 0, 0, err
	}
	if sum.corrupt != nil {
		return 0, 0, sum.corrupt
	}
	return sum.goodEnd - HeaderSize, sum.commits, nil
}

// GroupDelta reports what ApplyGroup changed, in the vocabulary the server
// needs to advance its published state: which roots were (re)bound, which
// disappeared, and whether the index-definition table changed.
type GroupDelta struct {
	Start, End int64 // the log offsets the bytes occupy
	Groups     int   // commit groups applied
	// Changed names roots whose binding is new or different, sorted;
	// Removed names roots no longer in the table, sorted.
	Changed []string
	Removed []string
	// DefsChanged reports that the declared index-field set changed.
	DefsChanged bool
}

// ApplyGroup verifies raw — one or more whole v2 commit groups that must
// begin exactly at the store's durable end — appends it to the log with
// the same rollback/poison discipline as a local commit, and applies it to
// the materialized roots. The first call puts the store in replica mode
// (see EnterReplica). Verification is complete before any I/O: a torn or
// checksum-corrupt frame is rejected with ErrBadGroup or a *CorruptError
// and the store is untouched.
func (s *Store) ApplyGroup(raw []byte) (GroupDelta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var delta GroupDelta
	if s.closed {
		return delta, ErrClosed
	}
	if s.broken != nil {
		return delta, s.broken
	}
	if s.version != logVersion2 {
		return delta, ErrUnverified
	}
	if s.staged > 0 {
		return delta, fmt.Errorf("%w: store has a staged local commit batch", ErrReplica)
	}
	s.replica = true
	delta.Start, delta.End = s.end, s.end
	if len(raw) == 0 {
		return delta, nil
	}

	// 1. Structural + checksum verification, collecting the committed
	//    effect, before a single byte touches the file.
	newNodes := map[uint64][]byte{}
	pending := map[uint64][]byte{}
	var newRoots []rootEntry
	var newDefs []string
	var newEpoch uint64
	sawRoots, sawDefs, sawEpoch := false, false, false
	var pendRoots []rootEntry
	var pendDefs []string
	var pendEpoch uint64
	pendSawRoots, pendSawDefs, pendSawEpoch := false, false, false
	sum, err := scanRaw(raw, scanSink{
		node:      func(oid uint64, img []byte) { pending[oid] = img },
		roots:     func(e []rootEntry) { pendRoots, pendSawRoots = e, true },
		indexDefs: func(f []string) { pendDefs, pendSawDefs = f, true },
		epoch:     func(e uint64) { pendEpoch, pendSawEpoch = e, true },
		commit: func(int64) {
			for oid, img := range pending {
				newNodes[oid] = img
			}
			pending = map[uint64][]byte{}
			if pendSawRoots {
				newRoots, sawRoots, pendSawRoots = pendRoots, true, false
			}
			if pendSawDefs {
				newDefs, sawDefs, pendSawDefs = pendDefs, true, false
			}
			if pendSawEpoch {
				newEpoch, sawEpoch, pendSawEpoch = pendEpoch, true, false
			}
		},
	})
	if err != nil {
		return delta, err
	}
	if sum.corrupt != nil {
		return delta, sum.corrupt
	}
	if sum.commits == 0 || sum.goodEnd != HeaderSize+int64(len(raw)) {
		return delta, fmt.Errorf("%w: frame does not end on a commit-group boundary", ErrBadGroup)
	}
	delta.Groups = sum.commits

	// 2. Stage the in-memory effect without touching live state, so a
	//    failed append leaves memory exactly at the old commit. A node
	//    image overwriting a *different* existing image means in-place
	//    mutation of a shared subgraph — a serve primary never produces
	//    that (every PUT binds freshly decoded values), but a generic
	//    primary can, and then the cheap per-root diff under-approximates:
	//    fall back to re-materializing every root.
	overwrite := false
	for oid, img := range newNodes {
		if prev, ok := s.nodes[oid]; ok && !bytes.Equal(prev, img) {
			overwrite = true
			break
		}
	}
	var changedEntries []rootEntry
	var removed []string
	if sawRoots {
		for _, e := range newRoots {
			old, ok := s.lastRoots[e.name]
			if !ok || overwrite || !bytes.Equal(old.inline, e.inline) ||
				types.Intern(old.typ) != types.Intern(e.typ) {
				changedEntries = append(changedEntries, e)
			}
		}
		seen := make(map[string]bool, len(newRoots))
		for _, e := range newRoots {
			seen[e.name] = true
		}
		for name := range s.lastRoots {
			if !seen[name] {
				removed = append(removed, name)
			}
		}
		sort.Strings(removed)
	}
	type stagedRoot struct {
		entry rootEntry
		val   value.Value
	}
	staged := make([]stagedRoot, 0, len(changedEntries))
	s.applyOverlay = newNodes
	cache := map[uint64]value.Value{}
	for _, e := range changedEntries {
		rd := &nodeReader{buf: e.inline}
		v, merr := rd.inlineValue(func(oid uint64) (value.Value, error) {
			return s.materialize(oid, cache, map[uint64]bool{})
		})
		if merr != nil {
			s.applyOverlay = nil
			return delta, merr
		}
		staged = append(staged, stagedRoot{entry: e, val: v})
	}
	s.applyOverlay = nil

	// 3. Durable append — the shared write path with local commits.
	if err := s.appendBytes(raw); err != nil {
		return delta, err
	}
	delta.End = s.end

	// 4. Publish to memory; nothing below can fail.
	for oid, img := range newNodes {
		s.nodes[oid] = img
		if oid >= s.nextOID {
			s.nextOID = oid + 1
		}
	}
	if sawRoots {
		for _, name := range removed {
			delete(s.roots, name)
		}
		for _, st := range staged {
			s.roots[st.entry.name] = &Root{Declared: st.entry.typ, Value: st.val}
			delta.Changed = append(delta.Changed, st.entry.name)
		}
		sort.Strings(delta.Changed)
		s.lastRoots = make(map[string]rootEntry, len(newRoots))
		for _, e := range newRoots {
			s.lastRoots[e.name] = e
		}
		delta.Removed = removed
	}
	if sawDefs {
		next := make(map[string]bool, len(newDefs))
		for _, f := range newDefs {
			next[f] = true
		}
		if len(next) != len(s.indexDefs) {
			delta.DefsChanged = true
		} else {
			for f := range next {
				if !s.indexDefs[f] {
					delta.DefsChanged = true
					break
				}
			}
		}
		s.indexDefs = next
		s.defsDirty = false
	}
	if sawEpoch {
		// The primary's promotion record flows down the stream like any
		// other record; the follower's epoch tracks the history it holds.
		s.setEpoch(newEpoch)
	}
	return delta, nil
}
