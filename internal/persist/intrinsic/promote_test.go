package intrinsic

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/value"
)

// TestPromoteBumpsEpochDurably: a fresh store is at epoch 0; Promote bumps
// it, the bump survives a reopen, and fsck reports it.
func TestPromoteBumpsEpochDurably(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if e := s.Epoch(); e != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", e)
	}
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	e, err := s.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if e != 1 || s.Epoch() != 1 {
		t.Fatalf("Promote = %d (Epoch() %d), want 1", e, s.Epoch())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Epoch() != 1 {
		t.Fatalf("epoch = %d after reopen, want 1", fresh.Epoch())
	}
	if r, ok := fresh.Root("x"); !ok || !value.Equal(r.Value, value.Int(1)) {
		t.Fatalf("root x lost across promote: %v, %v", r, ok)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 {
		t.Fatalf("fsck epoch = %d, want 1", rep.Epoch)
	}
	if !strings.Contains(rep.String(), "epoch 1") {
		t.Fatalf("fsck report does not name the epoch: %q", rep.String())
	}
}

// TestPromoteIsInverseOfEnterReplica: replica mode refuses local
// mutation; Promote re-enables it, and later groups from the *old*
// regime can no longer be applied blindly — the store is a primary now.
func TestPromoteIsInverseOfEnterReplica(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnterReplica()
	if err := s.Bind("x", value.Int(1), nil); !errors.Is(err, ErrReplica) {
		t.Fatalf("Bind in replica mode: %v, want ErrReplica", err)
	}
	if _, err := s.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatalf("Bind after Promote: %v", err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("Commit after Promote: %v", err)
	}
}

// TestPromoteMonotonicAcrossReopens: each promotion appends a new epoch
// record; recovery always surfaces the last committed one.
func TestPromoteMonotonicAcrossReopens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	for want := uint64(1); want <= 3; want++ {
		s, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if s.Epoch() != want-1 {
			t.Fatalf("reopen before promote %d: epoch %d, want %d", want, s.Epoch(), want-1)
		}
		if e, err := s.Promote(); err != nil || e != want {
			t.Fatalf("Promote #%d = (%d, %v)", want, e, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPromoteRefusals: the operations Promote must refuse — an open
// staged batch (its owner decides its fate first), a v1 log (nothing
// replicable afterwards), and a closed store.
func TestPromoteRefusals(t *testing.T) {
	t.Run("staged batch", func(t *testing.T) {
		s := open(t)
		if err := s.Bind("x", value.Int(1), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.StageCommit(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Promote(); err == nil {
			t.Fatal("Promote with a staged batch open succeeded")
		}
		if _, err := s.SyncBatch(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Promote(); err != nil {
			t.Fatalf("Promote after SyncBatch: %v", err)
		}
	})
	t.Run("v1 log", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "v1.log")
		writeV1Log(t, path)
		s, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Promote(); !errors.Is(err, ErrUnverified) {
			t.Fatalf("Promote on v1 log: %v, want ErrUnverified", err)
		}
		// Compact upgrades to v2; promotion then works.
		if _, err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		if e, err := s.Promote(); err != nil || e != 1 {
			t.Fatalf("Promote after upgrade = (%d, %v), want (1, nil)", e, err)
		}
	})
	t.Run("closed", func(t *testing.T) {
		s := open(t)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Promote(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Promote on closed store: %v, want ErrClosed", err)
		}
	})
}

// promoteWorkload is the scripted session for the promotion crash matrix:
// one durable commit, the promotion, one more commit under the new epoch.
// It reports how far it got.
func promoteWorkload(fsys iofault.FS, path string) (epoch uint64, committedY bool) {
	s, err := OpenFS(fsys, path)
	if err != nil {
		return 0, false
	}
	defer s.Close()
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		return 0, false
	}
	if _, err := s.Commit(); err != nil {
		return 0, false
	}
	e, err := s.Promote()
	if err != nil {
		return 0, false
	}
	if err := s.Bind("y", value.Int(2), nil); err != nil {
		return e, false
	}
	if _, err := s.Commit(); err != nil {
		return e, false
	}
	return e, true
}

// TestPromoteCrashMatrix replays the promotion workload crashing at every
// mutating I/O boundary, with and without losing unsynced page-cache
// data. The epoch bump must be atomic: the reopened store shows epoch 0
// or epoch 1 — never a torn record, never a refused open — and the roots
// are always a committed checkpoint consistent with the epoch ("y" exists
// only under epoch 1, "x" always exists once the epoch does).
func TestPromoteCrashMatrix(t *testing.T) {
	probe := iofault.NewInjector(iofault.OS{})
	epoch, full := promoteWorkload(probe, filepath.Join(t.TempDir(), "probe.log"))
	if epoch != 1 || !full {
		t.Fatalf("fault-free workload = (epoch %d, committedY %v), want (1, true)", epoch, full)
	}
	n := probe.Ops()
	if n < 8 {
		t.Fatalf("workload performed only %d mutating ops", n)
	}

	for _, lose := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			t.Run(fmt.Sprintf("lose=%v/op=%d", lose, k), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "store.log")
				inj := iofault.NewInjector(iofault.OS{})
				inj.LoseUnsynced = lose
				inj.CrashAt(k)
				promoteWorkload(inj, path)
				if !inj.Crashed() {
					t.Fatalf("crash at op %d never fired", k)
				}

				s, err := Open(path)
				if err != nil {
					t.Fatalf("reopen after crash at op %d: %v", k, err)
				}
				defer s.Close()
				e := s.Epoch()
				if e != 0 && e != 1 {
					t.Fatalf("crash at op %d (lose=%v): reopened epoch %d, want 0 or 1 (torn bump?)", k, lose, e)
				}
				_, hasX := s.Root("x")
				_, hasY := s.Root("y")
				if e == 1 && !hasX {
					t.Fatalf("crash at op %d: epoch 1 durable but the commit before it (x) is not", k)
				}
				if hasY && e != 1 {
					t.Fatalf("crash at op %d: post-promotion commit (y) durable at epoch %d", k, e)
				}
				// And the survivor is a working primary: it can commit.
				if err := s.Bind("z", value.Int(3), nil); err != nil {
					t.Fatalf("Bind after recovery: %v", err)
				}
				if _, err := s.Commit(); err != nil {
					t.Fatalf("Commit after recovery: %v", err)
				}
			})
		}
	}
}

// TestVerifyTailPrefixProperty: for every offset into a real log, the
// primary's own bytes verify clean (full overlap, no error), and the same
// bytes with any single byte flipped report a DivergenceError at exactly
// the flipped offset. This is the property the rejoin check relies on: a
// follower's log either IS a byte prefix of the primary's or the first
// disagreement is named precisely.
func TestVerifyTailPrefixProperty(t *testing.T) {
	p, _ := primaryFixture(t)
	raw := allGroups(t, p)
	end := p.DurableEnd()
	if end != HeaderSize+int64(len(raw)) {
		t.Fatalf("fixture durable end %d does not match %d raw bytes", end, len(raw))
	}

	// Clean property, at every starting offset (byte-granular, not just
	// group boundaries: the comparison must not care about framing).
	for from := HeaderSize; from <= end; from += 7 {
		chunk := raw[from-HeaderSize:]
		n, err := p.VerifyTail(chunk, from)
		if err != nil {
			t.Fatalf("VerifyTail(clean, %d): %v", from, err)
		}
		if n != int64(len(chunk)) {
			t.Fatalf("VerifyTail(clean, %d) = %d, want full overlap %d", from, n, len(chunk))
		}
	}

	// Flip property: every corrupted byte is caught at its exact offset.
	for i := 0; i < len(raw); i += 11 {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		n, err := p.VerifyTail(bad, HeaderSize)
		var de *DivergenceError
		if !errors.As(err, &de) || !errors.Is(err, ErrDiverged) {
			t.Fatalf("VerifyTail(flip@%d) err = %v, want DivergenceError", i, err)
		}
		wantOff := HeaderSize + int64(i)
		if de.Offset != wantOff || n != int64(i) {
			t.Fatalf("flip@%d reported (overlap %d, offset %d), want (%d, %d)",
				i, n, de.Offset, i, wantOff)
		}
	}

	// Bytes past the durable end are not compared: overlap clamps.
	extra := append(append([]byte(nil), raw...), []byte("future bytes the primary does not have")...)
	n, err := p.VerifyTail(extra, HeaderSize)
	if err != nil || n != int64(len(raw)) {
		t.Fatalf("VerifyTail(past end) = (%d, %v), want (%d, nil)", n, err, len(raw))
	}
}

// TestRejoinDivergenceDetection builds the real failover shape: two
// stores share a history, then fork — the old primary commits one way,
// the new primary another. Verifying the new primary's bytes against the
// old one's log must refuse with a DivergenceError inside the forked
// region, and must NOT truncate or modify the old primary's log.
func TestRejoinDivergenceDetection(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.log")
	old, err := Open(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := old.Bind("shared", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := old.Commit(); err != nil {
		t.Fatal(err)
	}
	sharedEnd := old.DurableEnd()

	// Clone the shared history into the "new primary" file.
	newPath := filepath.Join(dir, "new.log")
	bytesShared, err := os.ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, bytesShared, 0o644); err != nil {
		t.Fatal(err)
	}
	np, err := Open(newPath)
	if err != nil {
		t.Fatal(err)
	}
	defer np.Close()

	// Fork: each side commits different data past the shared point.
	if err := old.Bind("fork", value.String("old primary kept going"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := old.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := np.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := np.Bind("fork", value.String("new primary after promote"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := np.Commit(); err != nil {
		t.Fatal(err)
	}

	// The shared prefix still agrees…
	newRaw, _, _, err := np.ReadGroupsAt(HeaderSize, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	n, err := old.VerifyTail(newRaw[:sharedEnd-HeaderSize], HeaderSize)
	if err != nil || n != sharedEnd-HeaderSize {
		t.Fatalf("shared prefix verify = (%d, %v), want (%d, nil)", n, err, sharedEnd-HeaderSize)
	}
	// …and the full stream is refused with a typed divergence inside the
	// forked region.
	endBefore := old.DurableEnd()
	_, err = old.VerifyTail(newRaw, HeaderSize)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("verify across the fork: %v, want DivergenceError", err)
	}
	if de.Offset < sharedEnd || de.Offset >= old.DurableEnd() {
		t.Fatalf("divergence offset %d outside the forked region [%d,%d)", de.Offset, sharedEnd, old.DurableEnd())
	}
	if old.DurableEnd() != endBefore {
		t.Fatalf("VerifyTail changed the durable end %d -> %d: silent truncation", endBefore, old.DurableEnd())
	}
	// The old primary's forked commit is still readable — nothing was lost.
	if r, ok := old.Root("fork"); !ok || !value.Equal(r.Value, value.String("old primary kept going")) {
		t.Fatalf("old primary's forked root damaged after verify: %v, %v", r, ok)
	}
}
