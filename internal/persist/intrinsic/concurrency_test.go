package intrinsic

import (
	"fmt"
	"sync"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// TestConcurrentBindOpenCommit exercises the store from concurrent binders,
// readers and committers. Run with -race.
func TestConcurrentBindOpenCommit(t *testing.T) {
	s := open(t)
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				name := fmt.Sprintf("r%d-%d", g, i)
				v := value.Rec("Name", value.String(name), "N", value.Int(int64(i)))
				if err := s.Bind(name, v, nil); err != nil {
					t.Errorf("Bind: %v", err)
					return
				}
				got, err := s.OpenAs(name, types.Top)
				if err != nil {
					t.Errorf("OpenAs: %v", err)
					return
				}
				if !value.Equal(got, v) {
					t.Errorf("OpenAs(%q) = %s", name, got)
					return
				}
				if i%5 == 0 {
					if _, err := s.Commit(); err != nil {
						t.Errorf("Commit: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	if got, want := len(s2.Names()), goroutines*15; got != want {
		t.Errorf("roots after reopen = %d, want %d", got, want)
	}
}
