package intrinsic

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/value"
)

// TestIndexDefsDurability: declared index definitions ride the commit
// group and survive reopen; dropping one is equally durable.
func TestIndexDefsDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("db", value.NewList(), nil); err != nil {
		t.Fatal(err)
	}
	if !s.DeclareIndex("Empno") {
		t.Fatal("DeclareIndex said already declared")
	}
	if s.DeclareIndex("Empno") {
		t.Fatal("second DeclareIndex said new")
	}
	s.DeclareIndex("Dept")
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.IndexDefs(); !reflect.DeepEqual(got, []string{"Dept", "Empno"}) {
		t.Fatalf("IndexDefs after reopen = %v", got)
	}
	if !s2.DropIndexDef("Dept") {
		t.Fatal("DropIndexDef said undeclared")
	}
	if _, err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.IndexDefs(); !reflect.DeepEqual(got, []string{"Empno"}) {
		t.Fatalf("IndexDefs after drop+reopen = %v", got)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.IndexDefs != 1 {
		t.Fatalf("fsck: clean=%v indexDefs=%d, want clean with 1", rep.Clean(), rep.IndexDefs)
	}
}

// TestIndexDefsUncommittedNotDurable: like Bind, DeclareIndex is in-memory
// until Commit — a reopen without one sees nothing.
func TestIndexDefsUncommittedNotDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.DeclareIndex("Empno")
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.IndexDefs(); len(got) != 0 {
		t.Fatalf("uncommitted declaration survived reopen: %v", got)
	}
}

// TestIndexDefsV1UpgradeViaCompact: a v1 log never receives 'X' records —
// its grammar is frozen — so definitions persist only once Compact
// rewrites the file at v2.
func TestIndexDefsV1UpgradeViaCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	writeV1Log(t, path)

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.DeclareIndex("Empno")
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Still v1: the commit must not have written an 'X' record — the log
	// stays structurally clean at version 1 with no definitions on disk.
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != logVersion1 || !rep.Clean() || rep.IndexDefs != 0 {
		t.Fatalf("v1 after commit: version=%d clean=%v defs=%d", rep.Version, rep.Clean(), rep.IndexDefs)
	}

	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.IndexDefs(); !reflect.DeepEqual(got, []string{"Empno"}) {
		t.Fatalf("IndexDefs after v1→v2 Compact = %v", got)
	}
}

// indexCrashWorkload is the crash-matrix workload for index definitions:
// each checkpoint pairs a root mutation with an index-definition change in
// the same commit group, so a crash can only ever reveal both or neither.
func indexCrashWorkload(fsys iofault.FS, path string) (checkpoints [][]string) {
	s, err := OpenFS(fsys, path)
	if err != nil {
		return nil
	}
	defer s.Close()
	step := func(mutate func() error) bool {
		if err := mutate(); err != nil {
			return false
		}
		if _, err := s.Commit(); err != nil {
			return false
		}
		checkpoints = append(checkpoints, s.IndexDefs())
		return true
	}
	if !step(func() error {
		s.DeclareIndex("Empno")
		return s.Bind("db", value.NewList(value.Int(1)), nil)
	}) {
		return
	}
	if !step(func() error {
		s.DeclareIndex("Dept")
		r, _ := s.Root("db")
		r.Value.(*value.List).Append(value.Int(2))
		return nil
	}) {
		return
	}
	step(func() error {
		s.DropIndexDef("Empno")
		r, _ := s.Root("db")
		r.Value.(*value.List).Append(value.Int(3))
		return nil
	})
	return
}

// TestIndexDefsCrashNeverAhead extends the crash matrix to index
// definitions: crash at every mutating I/O boundary, reopen, and require
// the visible definition set to be exactly a committed checkpoint — and to
// agree with the root state committed in the same group. An index
// definition must never be ahead of the durable offset.
func TestIndexDefsCrashNeverAhead(t *testing.T) {
	probe := iofault.NewInjector(iofault.OS{})
	want := indexCrashWorkload(probe, filepath.Join(t.TempDir(), "store.log"))
	if len(want) != 3 {
		t.Fatalf("fault-free workload made %d checkpoints, want 3", len(want))
	}
	n := probe.Ops()

	// rootLen pairs each checkpoint's defs with its committed list length.
	rootLen := func(s *Store) int {
		r, ok := s.Root("db")
		if !ok {
			return 0
		}
		return len(r.Value.(*value.List).Elems)
	}

	for _, lose := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			t.Run(fmt.Sprintf("lose=%v/op=%d", lose, k), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "store.log")
				inj := iofault.NewInjector(iofault.OS{})
				inj.LoseUnsynced = lose
				inj.CrashAt(k)
				got := indexCrashWorkload(inj, path)
				if !inj.Crashed() {
					t.Fatalf("crash at op %d never fired", k)
				}
				s, err := Open(path)
				if err != nil {
					t.Fatalf("reopen after crash at op %d: %v", k, err)
				}
				defer s.Close()

				defs := s.IndexDefs()
				nroot := rootLen(s)

				// Allowed states: (defs, rootLen) pairs of completed
				// checkpoints, plus the next one when the group was fully
				// durable before the crash boundary, plus empty.
				type st struct {
					defs []string
					n    int
				}
				allowed := []st{{nil, 0}}
				if len(got) > 0 {
					allowed = []st{{got[len(got)-1], len(got)}}
				}
				if len(got) < len(want) {
					allowed = append(allowed, st{want[len(got)], len(got) + 1})
				}
				for _, a := range allowed {
					if nroot == a.n && reflect.DeepEqual(defs, a.defs) ||
						(len(defs) == 0 && len(a.defs) == 0 && nroot == a.n) {
						return
					}
				}
				t.Fatalf("crash at op %d (lose=%v): reopened (defs=%v, rootLen=%d) is not a committed checkpoint (allowed %v)",
					k, lose, defs, nroot, allowed)
			})
		}
	}
}

// TestTornIndexRecordIsRecoverable: truncating inside an 'X' record is a
// torn tail (not corruption) and the store reopens at the previous commit.
func TestTornIndexRecordIsRecoverable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	good, _ := Fsck(path)
	s.DeclareIndex("AVeryLongFieldNameSoTruncationLandsInsideIt")
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the second group: past the first group's end, before the
	// second commit marker.
	if err := os.Truncate(path, (good.GoodEnd+fi.Size())/2); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != nil {
		t.Fatalf("torn 'X' group classified as corruption: %v", rep.Corrupt)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen with torn index group: %v", err)
	}
	defer s2.Close()
	if got := s2.IndexDefs(); len(got) != 0 {
		t.Fatalf("torn index definition visible after reopen: %v", got)
	}
}
