package intrinsic

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/value"
)

// batchMutations is the scripted history the batching tests share: six
// commit groups touching every record kind — node images, root-table
// rewrites (rebind and unbind), and an index-definition change. Each
// element is the mutation one commit group captures.
func batchMutations() []func(*Store) error {
	return []func(*Store) error{
		func(s *Store) error { return s.Bind("a", value.Int(1), nil) },
		func(s *Store) error {
			return s.Bind("emp", value.Rec("Name", value.String("J Doe"), "Empno", value.Int(7)), nil)
		},
		func(s *Store) error { s.DeclareIndex("Empno"); return s.Bind("a", value.Int(2), nil) },
		func(s *Store) error {
			return s.Bind("emps", value.NewSet(
				value.Rec("Empno", value.Int(1), "Name", value.String("A")),
				value.Rec("Empno", value.Int(2), "Name", value.String("B")),
			), nil)
		},
		func(s *Store) error { s.Unbind("a"); return s.Bind("tag", value.String("v1"), nil) },
		func(s *Store) error { return s.Bind("n", value.Int(42), nil) },
	}
}

// serialHistory commits the script one group per fsync and returns the
// rendered state after each commit plus the final log bytes — the ground
// truth every batched run is compared against.
func serialHistory(t *testing.T) (states []map[string]string, raw []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "serial.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, m := range batchMutations() {
		if err := m(s); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		states = append(states, render(s))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return states, raw
}

// TestStageSyncBatchRoundTrip: staged groups are invisible to the durable
// end until one SyncBatch promotes them all, and the result survives a
// reopen. The staged end meanwhile tracks every staged group — the
// acked-end watermark an async server publishes.
func TestStageSyncBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("y", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	if got := s.StagedGroups(); got != 2 {
		t.Fatalf("StagedGroups = %d, want 2", got)
	}
	if de := s.DurableEnd(); de != HeaderSize {
		t.Fatalf("durable end %d moved before SyncBatch (header is %d)", de, HeaderSize)
	}
	if se := s.StagedEnd(); se <= HeaderSize {
		t.Fatalf("staged end %d did not advance past header", se)
	}

	n, err := s.SyncBatch()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("SyncBatch promoted %d groups, want 2", n)
	}
	if s.StagedGroups() != 0 {
		t.Fatalf("%d groups still staged after SyncBatch", s.StagedGroups())
	}
	if s.DurableEnd() != s.StagedEnd() {
		t.Fatalf("durable end %d != staged end %d after SyncBatch", s.DurableEnd(), s.StagedEnd())
	}
	// An empty SyncBatch trivially succeeds.
	if n, err := s.SyncBatch(); n != 0 || err != nil {
		t.Fatalf("empty SyncBatch = (%d, %v), want (0, nil)", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rootInt(t, path, "x"); got != 1 {
		t.Fatalf("x = %d after reopen, want 1", got)
	}
	if got := rootInt(t, path, "y"); got != 2 {
		t.Fatalf("y = %d after reopen, want 2", got)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("log not clean after batched commit: %v", rep)
	}
}

// TestBatchedLogByteIdenticalToSerial enumerates every way to cut the
// six-group script into SyncBatch batches (2^5 partitions) and checks the
// resulting log is byte-for-byte the log serial commits produce: batching
// changes when bytes become durable, never which bytes are written. This
// is what keeps replication and recovery oblivious to group commit.
func TestBatchedLogByteIdenticalToSerial(t *testing.T) {
	_, want := serialHistory(t)
	muts := batchMutations()
	for mask := 0; mask < 1<<(len(muts)-1); mask++ {
		mask := mask
		t.Run(fmt.Sprintf("cuts=%05b", mask), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "batched.log")
			s, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i, m := range muts {
				if err := m(s); err != nil {
					t.Fatalf("mutation %d: %v", i, err)
				}
				if _, err := s.StageCommit(); err != nil {
					t.Fatalf("stage %d: %v", i, err)
				}
				if i == len(muts)-1 || mask&(1<<i) != 0 {
					if _, err := s.SyncBatch(); err != nil {
						t.Fatalf("sync after group %d: %v", i, err)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("batched log (%d bytes) differs from serial log (%d bytes)", len(got), len(want))
			}
		})
	}
}

// TestBatchPrefixReplayProperty is the recovery half of the invisibility
// property: replaying any group-boundary prefix of a group-committed log
// equals applying the same commits singly up to that point. Every prefix
// of the batched file (identical to the serial file, per the test above)
// is materialized as its own log and opened cold.
func TestBatchPrefixReplayProperty(t *testing.T) {
	states, raw := serialHistory(t)
	groups := splitGroups(t, raw[HeaderSize:])
	if len(groups) != len(states) {
		t.Fatalf("%d groups for %d states", len(groups), len(states))
	}
	end := HeaderSize
	for i, g := range groups {
		end += int64(len(g))
		path := filepath.Join(t.TempDir(), fmt.Sprintf("prefix%d.log", i))
		if err := os.WriteFile(path, raw[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if err != nil {
			t.Fatalf("open prefix of %d groups: %v", i+1, err)
		}
		got := render(s)
		s.Close()
		if !sameState(got, states[i]) {
			t.Fatalf("prefix of %d groups replays to %v, want serial state %v", i+1, got, states[i])
		}
	}
}

// TestBatchedAppendCrashMatrix is the group-commit crash matrix: the
// scripted batched workload (six staged groups, fsyncs after groups 2, 5
// and 6) is re-run crashing at every mutating I/O boundary, with and
// without losing unsynced page-cache data. The reopened store must hold a
// state some *serial prefix* of the staged history produced — a group
// boundary, never part of one group — and never less than what SyncBatch
// acked before the crash.
func TestBatchedAppendCrashMatrix(t *testing.T) {
	workload := func(fsys iofault.FS, path string) (states []map[string]string, acked int) {
		s, err := OpenFS(fsys, path)
		if err != nil {
			return nil, 0
		}
		defer s.Close()
		for i, m := range batchMutations() {
			if err := m(s); err != nil {
				return states, acked
			}
			if _, err := s.StageCommit(); err != nil {
				return states, acked
			}
			states = append(states, render(s))
			if i == 1 || i == 4 || i == 5 {
				n, err := s.SyncBatch()
				if err != nil {
					return states, acked
				}
				acked += n
			}
		}
		return states, acked
	}

	probe := iofault.NewInjector(iofault.OS{})
	allStates, allAcked := workload(probe, filepath.Join(t.TempDir(), "store.log"))
	if len(allStates) != 6 || allAcked != 6 {
		t.Fatalf("fault-free workload staged %d groups, acked %d; want 6, 6", len(allStates), allAcked)
	}
	n := probe.Ops()
	if n < 8 {
		t.Fatalf("workload performed only %d mutating ops", n)
	}

	for _, lose := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			t.Run(fmt.Sprintf("lose=%v/op=%d", lose, k), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "store.log")
				inj := iofault.NewInjector(iofault.OS{})
				inj.LoseUnsynced = lose
				inj.CrashAt(k)
				states, acked := workload(inj, path)
				if !inj.Crashed() {
					t.Fatalf("crash at op %d never fired", k)
				}

				s, err := Open(path)
				if err != nil {
					t.Fatalf("reopen after crash at op %d: %v", k, err)
				}
				defer s.Close()
				got := render(s)

				// Allowed: any state at or past the acked floor that some
				// staged group produced. Staged-but-unsynced groups may
				// survive a keep-cache crash (extra durability is fine);
				// an acked group may never be missing; a torn group may
				// never be visible.
				var allowed []map[string]string
				if acked == 0 {
					allowed = append(allowed, map[string]string{})
				}
				for j := acked - 1; j < len(states); j++ {
					if j >= 0 {
						allowed = append(allowed, states[j])
					}
				}
				for _, a := range allowed {
					if sameState(got, a) {
						return
					}
				}
				t.Fatalf("crash at op %d (lose=%v): reopened state %v is not a staged-group boundary at or past the acked floor (acked %d, staged %d)",
					k, lose, got, acked, len(states))
			})
		}
	}
}

// TestSyncBatchFailureFailsWholeBatch: an injected fsync failure under
// SyncBatch rolls every staged group back to the pre-batch durable end —
// the batch fails together, with one shared cause — and the store stays
// usable: the same mutations re-commit cleanly afterwards.
func TestSyncBatchFailureFailsWholeBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	inj := iofault.NewInjector(iofault.OS{})
	s, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("base", value.Int(0), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	durable := s.DurableEnd()

	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("y", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}

	inj.FailAt(iofault.OpSync, inj.Count(iofault.OpSync)+1)
	if _, err := s.SyncBatch(); err == nil {
		t.Fatal("SyncBatch with injected fsync failure succeeded")
	} else if !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("SyncBatch error %v does not wrap ErrInjected", err)
	}
	if s.DurableEnd() != durable {
		t.Fatalf("durable end moved to %d across a failed batch (pre-batch %d)", s.DurableEnd(), durable)
	}
	if s.StagedGroups() != 0 {
		t.Fatalf("%d groups still staged after a rolled-back batch", s.StagedGroups())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != durable {
		t.Fatalf("file size %d after rollback, want pre-batch durable end %d (err %v)", fi.Size(), durable, err)
	}

	// The handles still hold the uncommitted values; re-staging re-encodes
	// them (including the index-definition table a failed batch must mark
	// dirty again) and a clean sync promotes them.
	if _, err := s.StageCommit(); err != nil {
		t.Fatalf("re-stage after rollback: %v", err)
	}
	if n, err := s.SyncBatch(); err != nil || n != 1 {
		t.Fatalf("retry SyncBatch = (%d, %v), want (1, nil)", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rootInt(t, path, "y"); got != 2 {
		t.Fatalf("y = %d after reopen, want 2", got)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("log not clean after batch rollback + retry: %v", rep)
	}
}

// TestStageWriteFailureDiscardsBatch: a failed write while *staging* a
// later group discards the earlier staged groups too — a batch is
// all-or-nothing from the first stage onward, so no waiter can be acked
// on the strength of a batch that partially staged.
func TestStageWriteFailureDiscardsBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	inj := iofault.NewInjector(iofault.OS{})
	s, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	durable := s.DurableEnd()

	inj.FailAt(iofault.OpWrite, inj.Count(iofault.OpWrite)+1)
	if err := s.Bind("y", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err == nil {
		t.Fatal("StageCommit with injected write failure succeeded")
	} else if !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("StageCommit error %v does not wrap ErrInjected", err)
	}
	if s.StagedGroups() != 0 {
		t.Fatalf("%d groups staged after a failed stage rolled the batch back", s.StagedGroups())
	}
	if s.DurableEnd() != durable || s.StagedEnd() != durable {
		t.Fatalf("ends (%d, %d) after rollback, want both %d", s.DurableEnd(), s.StagedEnd(), durable)
	}
	// SyncBatch now has nothing to promote: it must not report success for
	// groups that were rolled back.
	if n, err := s.SyncBatch(); n != 0 || err != nil {
		t.Fatalf("SyncBatch after rolled-back batch = (%d, %v), want (0, nil)", n, err)
	}
}

// TestAbortDiscardsStagedGroups: staged-but-unsynced groups are complete,
// valid groups sitting in the file, so a log replay would resurrect them
// as committed — Abort must trim them first. After Abort the store is back
// at the last durable commit and commits cleanly.
func TestAbortDiscardsStagedGroups(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	durable := s.DurableEnd()
	want := render(s)

	if err := s.Bind("x", value.Int(99), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("z", value.Int(3), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(); err != nil {
		t.Fatalf("Abort with staged groups: %v", err)
	}
	if !sameState(render(s), want) {
		t.Fatalf("state %v after Abort, want last durable commit %v", render(s), want)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != durable {
		t.Fatalf("file size %d after Abort, want durable end %d (err %v)", fi.Size(), durable, err)
	}
	if err := s.Bind("w", value.Int(4), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("commit after Abort: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rootInt(t, path, "x"); got != 1 {
		t.Fatalf("x = %d after reopen, want 1 (staged 99 must not be resurrected)", got)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("log not clean after Abort of staged batch: %v", rep)
	}
}

// TestPoisonedBatchRecoversViaAbort drives the double-failure path: the
// batch fsync fails *and* the rollback truncate fails, so complete groups
// the waiters were failed for are stuck in the file past the durable end.
// The store must poison (refusing further appends), and Abort must retry
// the trim before replaying — after which the staged values are gone and
// committing works again.
func TestPoisonedBatchRecoversViaAbort(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	inj := iofault.NewInjector(iofault.OS{})
	s, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := s.Bind("x", value.Int(99), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	inj.FailAt(iofault.OpSync, inj.Count(iofault.OpSync)+1)
	inj.FailAt(iofault.OpTruncate, inj.Count(iofault.OpTruncate)+1)
	if _, err := s.SyncBatch(); err == nil {
		t.Fatal("SyncBatch with sync+truncate failures succeeded")
	}
	if _, err := s.Commit(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Commit on poisoned store = %v, want ErrPoisoned", err)
	}
	if _, err := s.StageCommit(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("StageCommit on poisoned store = %v, want ErrPoisoned", err)
	}

	if err := s.Abort(); err != nil {
		t.Fatalf("Abort on poisoned batch: %v", err)
	}
	if r, ok := s.Root("x"); !ok || r.Value.String() != value.Int(1).String() {
		t.Fatalf("x = %v after Abort, want the durable 1", r)
	}
	if err := s.Bind("y", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rootInt(t, path, "x"); got != 1 {
		t.Fatalf("x = %d after reopen, want 1", got)
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("log not clean after poisoned-batch recovery: %v", rep)
	}
}

// TestReadGroupsDuringStagedBatch: replication ships only the durable
// prefix — staged groups are volatile and must never reach a follower —
// and a replication read racing an open batch must not corrupt where the
// next staged group lands.
func TestReadGroupsDuringStagedBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	durable := s.DurableEnd()

	if err := s.Bind("y", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	raw, next, n, err := s.ReadGroupsAt(HeaderSize, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if next != durable || n != 1 {
		t.Fatalf("ReadGroupsAt returned %d groups up to %d; staged group leaked past durable end %d", n, next, durable)
	}
	if int64(len(raw)) != durable-HeaderSize {
		t.Fatalf("shipped %d bytes, want durable body %d", len(raw), durable-HeaderSize)
	}
	// Reading past the durable end (into staged territory) is refused.
	if _, _, _, err := s.ReadGroupsAt(s.StagedEnd(), 0); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("ReadGroupsAt(stagedEnd) = %v, want ErrBadOffset", err)
	}

	// The interleaved read must not have moved the append position: the
	// next staged group and the sync must land exactly after the first.
	if err := s.Bind("z", value.Int(3), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.SyncBatch(); err != nil || n != 2 {
		t.Fatalf("SyncBatch = (%d, %v), want (2, nil)", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{"x": 1, "y": 2, "z": 3} {
		if got := rootInt(t, path, name); got != want {
			t.Fatalf("%s = %d after reopen, want %d", name, got, want)
		}
	}
	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("log not clean after read-during-batch: %v", rep)
	}
}

// TestApplyGroupRefusesStagedBatch: a store with an open local batch
// cannot switch to applying replicated groups — the staged bytes would
// interleave with shipped bytes and break the byte-prefix invariant.
func TestApplyGroupRefusesStagedBatch(t *testing.T) {
	p, _ := primaryFixture(t)
	groups := splitGroups(t, allGroups(t, p))

	s, err := Open(filepath.Join(t.TempDir(), "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyGroup(groups[0]); !errors.Is(err, ErrReplica) {
		t.Fatalf("ApplyGroup with a staged local batch = %v, want ErrReplica", err)
	}
}

// TestCompactRefusesStagedBatch: Compact rewrites the whole file, which
// would silently drop (or worse, bake in) staged-but-unacked groups; it
// must refuse while a batch is open.
func TestCompactRefusesStagedBatch(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Bind("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StageCommit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err == nil {
		t.Fatal("Compact with a staged batch succeeded")
	}
	// The batch is still intact and can be promoted.
	if n, err := s.SyncBatch(); err != nil || n != 1 {
		t.Fatalf("SyncBatch after refused Compact = (%d, %v), want (1, nil)", n, err)
	}
}
