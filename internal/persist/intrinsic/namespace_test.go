package intrinsic

import (
	"errors"
	"testing"

	"dbpl/internal/value"
)

func openNS(t *testing.T, s *Store, name string) *Namespace {
	t.Helper()
	ns, err := s.Namespace(name)
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestNamespaceIsolation(t *testing.T) {
	s := open(t)
	alice := openNS(t, s, "alice")
	bob := openNS(t, s, "bob")

	if err := alice.Bind("db", value.Rec("K", value.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	if err := bob.Bind("db", value.Rec("K", value.Int(2)), nil); err != nil {
		t.Fatal(err)
	}
	ra, _ := alice.Root("db")
	rb, _ := bob.Root("db")
	if value.Equal(ra.Value, rb.Value) {
		t.Error("namespaces should be isolated")
	}
	if _, ok := alice.Root("other"); ok {
		t.Error("absent handle resolved")
	}
	// The anonymous namespace does not see either.
	anon := openNS(t, s, "")
	if len(anon.Names()) != 0 {
		t.Errorf("anonymous namespace sees %v", anon.Names())
	}
	if got := alice.Names(); len(got) != 1 || got[0] != "db" {
		t.Errorf("alice.Names = %v", got)
	}
	if got := s.Namespaces(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Errorf("Namespaces = %v", got)
	}
}

func TestNamespaceSurvivesReopen(t *testing.T) {
	s := open(t)
	alice := openNS(t, s, "alice")
	if err := alice.Bind("db", value.Rec("K", value.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	alice2 := openNS(t, s2, "alice")
	r, ok := alice2.Root("db")
	if !ok || !value.Equal(r.Value, value.Rec("K", value.Int(1))) {
		t.Errorf("namespace handle lost: %v %v", r, ok)
	}
}

func TestNamespaceShareTo(t *testing.T) {
	// Controlled sharing: updates flow both ways, across reopen.
	s := open(t)
	alice := openNS(t, s, "alice")
	bob := openNS(t, s, "bob")
	if err := alice.Bind("db", value.Rec("K", value.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	if err := alice.ShareTo(bob, "db"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s)
	alice2, bob2 := openNS(t, s2, "alice"), openNS(t, s2, "bob")
	ra, _ := alice2.Root("db")
	rb, _ := bob2.Root("db")
	ra.Value.(*value.Record).Set("K", value.Int(99))
	if v, _ := rb.Value.(*value.Record).Get("K"); !value.Equal(v, value.Int(99)) {
		t.Error("shared structure should propagate across namespaces after reopen")
	}
}

func TestNamespaceCopyTo(t *testing.T) {
	// Copying isolates: replication on request.
	s := open(t)
	alice := openNS(t, s, "alice")
	bob := openNS(t, s, "bob")
	if err := alice.Bind("db", value.Rec("K", value.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	if err := alice.CopyTo(bob, "db"); err != nil {
		t.Fatal(err)
	}
	ra, _ := alice.Root("db")
	ra.Value.(*value.Record).Set("K", value.Int(99))
	rb, _ := bob.Root("db")
	if v, _ := rb.Value.(*value.Record).Get("K"); !value.Equal(v, value.Int(1)) {
		t.Error("copied structure must be isolated")
	}
}

func TestNamespaceShareOfAbsentHandle(t *testing.T) {
	s := open(t)
	alice := openNS(t, s, "alice")
	bob := openNS(t, s, "bob")
	if err := alice.ShareTo(bob, "nope"); !errors.Is(err, ErrNoRoot) {
		t.Errorf("err = %v, want ErrNoRoot", err)
	}
	if err := alice.CopyTo(bob, "nope"); !errors.Is(err, ErrNoRoot) {
		t.Errorf("err = %v, want ErrNoRoot", err)
	}
}

func TestNamespaceBadNames(t *testing.T) {
	s := open(t)
	if _, err := s.Namespace("a/b"); !errors.Is(err, ErrBadName) {
		t.Errorf("namespace with separator: err = %v", err)
	}
	alice := openNS(t, s, "alice")
	if err := alice.Bind("x/y", value.Int(1), nil); !errors.Is(err, ErrBadName) {
		t.Errorf("handle with separator: err = %v", err)
	}
	if alice.Unbind("x/y") {
		t.Error("unbind of invalid name should fail")
	}
	if _, err := alice.OpenAs("x/y", nil); !errors.Is(err, ErrBadName) {
		t.Errorf("OpenAs with separator: err = %v", err)
	}
}

func TestNamespaceName(t *testing.T) {
	s := open(t)
	if openNS(t, s, "alice").Name() != "alice" {
		t.Error("Name")
	}
	if openNS(t, s, "").Name() != "" {
		t.Error("anonymous Name")
	}
}

func TestNamespaceSchemaEvolution(t *testing.T) {
	s := open(t)
	alice := openNS(t, s, "alice")
	stored := value.Rec("Employees", value.NewSet(
		value.Rec("Name", value.String("J"), "Empno", value.Int(1))))
	if err := alice.Bind("DB", stored, nil); err != nil {
		t.Fatal(err)
	}
	// Supertype view through the namespace.
	if _, err := alice.OpenAs("DB", value.TypeOf(
		value.Rec("Employees", value.NewSet(value.Rec("Name", value.String("x")))))); err != nil {
		t.Fatalf("namespace OpenAs view: %v", err)
	}
}
