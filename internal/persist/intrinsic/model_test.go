package intrinsic

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// This file model-tests the store: a random sequence of operations runs
// against both the real store and a trivially correct in-memory model, and
// the observable state (handle names, declared types, values) must agree
// after every step. Reopen and abort revert to the committed state; commit
// promotes the live state; compaction changes nothing observable.

// model is the reference implementation: two flat maps of deep copies.
type model struct {
	live      map[string]modelRoot
	committed map[string]modelRoot
}

type modelRoot struct {
	declared types.Type
	val      value.Value
}

func newModel() *model {
	return &model{live: map[string]modelRoot{}, committed: map[string]modelRoot{}}
}

func (m *model) bind(name string, v value.Value, declared types.Type) {
	m.live[name] = modelRoot{declared: declared, val: value.Copy(v)}
}

func (m *model) unbind(name string) { delete(m.live, name) }

func (m *model) commit() {
	m.committed = map[string]modelRoot{}
	for n, r := range m.live {
		m.committed[n] = modelRoot{declared: r.declared, val: value.Copy(r.val)}
	}
}

func (m *model) revert() {
	m.live = map[string]modelRoot{}
	for n, r := range m.committed {
		m.live[n] = modelRoot{declared: r.declared, val: value.Copy(r.val)}
	}
}

// genModelValue builds a random value without internal sharing (the model
// copies values, so shared substructure would diverge under mutation).
func genModelValue(rng *rand.Rand, depth int) value.Value {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return value.Int(int64(rng.Intn(100)))
		case 1:
			return value.String(fmt.Sprintf("s%d", rng.Intn(10)))
		case 2:
			return value.Bool(rng.Intn(2) == 0)
		default:
			return value.Float(float64(rng.Intn(10)))
		}
	}
	switch rng.Intn(4) {
	case 0, 1:
		rec := value.NewRecord()
		for _, l := range []string{"A", "B", "C"} {
			if rng.Intn(2) == 0 {
				rec.Set(l, genModelValue(rng, depth-1))
			}
		}
		return rec
	case 2:
		n := rng.Intn(3)
		lst := value.NewList()
		for i := 0; i < n; i++ {
			lst.Append(genModelValue(rng, depth-1))
		}
		return lst
	default:
		n := rng.Intn(3)
		s := value.NewSet()
		for i := 0; i < n; i++ {
			s.Add(genModelValue(rng, depth-1))
		}
		return s
	}
}

// check compares the store's observable state with the model's live state.
func check(t *testing.T, step int, op string, s *Store, m *model) {
	t.Helper()
	names := s.Names()
	if len(names) != len(m.live) {
		t.Fatalf("step %d (%s): store has %d handles, model %d (%v)", step, op, len(names), len(m.live), names)
	}
	for _, n := range names {
		r, ok := s.Root(n)
		if !ok {
			t.Fatalf("step %d (%s): store lost root %q", step, op, n)
		}
		mr, ok := m.live[n]
		if !ok {
			t.Fatalf("step %d (%s): store has unexpected root %q", step, op, n)
		}
		if !value.Equal(r.Value, mr.val) {
			t.Fatalf("step %d (%s): root %q value mismatch:\nstore %s\nmodel %s",
				step, op, n, r.Value, mr.val)
		}
		if !types.Equal(r.Declared, mr.declared) {
			t.Fatalf("step %d (%s): root %q type mismatch: %s vs %s",
				step, op, n, r.Declared, mr.declared)
		}
	}
}

func TestModelRandomOperations(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			path := filepath.Join(t.TempDir(), "store.log")
			s, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { s.Close() }()
			m := newModel()
			handles := []string{"a", "b", "c", "d"}

			steps := 150
			for i := 0; i < steps; i++ {
				switch op := rng.Intn(10); op {
				case 0, 1, 2: // bind a fresh random value
					n := handles[rng.Intn(len(handles))]
					v := genModelValue(rng, 3)
					declared := value.TypeOf(v)
					if err := s.Bind(n, v, declared); err != nil {
						t.Fatalf("step %d: bind: %v", i, err)
					}
					m.bind(n, v, declared)
					check(t, i, "bind", s, m)
				case 3: // unbind
					n := handles[rng.Intn(len(handles))]
					got := s.Unbind(n)
					_, want := m.live[n]
					if got != want {
						t.Fatalf("step %d: unbind %q = %v, model %v", i, n, got, want)
					}
					m.unbind(n)
					check(t, i, "unbind", s, m)
				case 4, 5: // mutate a live record root
					n := handles[rng.Intn(len(handles))]
					r, ok := s.Root(n)
					if !ok {
						continue
					}
					rec, ok := r.Value.(*value.Record)
					if !ok {
						continue
					}
					fv := value.Int(int64(rng.Intn(1000)))
					rec.Set("Mut", fv)
					mr := m.live[n]
					mr.val.(*value.Record).Set("Mut", fv)
					// The mutation may widen the value beyond the declared
					// type's record... it cannot: adding a field only makes
					// the value more specific. The declared type is
					// unchanged in both.
					check(t, i, "mutate", s, m)
				case 6, 7: // commit
					if _, err := s.Commit(); err != nil {
						t.Fatalf("step %d: commit: %v", i, err)
					}
					m.commit()
					check(t, i, "commit", s, m)
				case 8: // abort or reopen: both revert to committed state
					if rng.Intn(2) == 0 {
						if err := s.Abort(); err != nil {
							t.Fatalf("step %d: abort: %v", i, err)
						}
					} else {
						p := s.Path()
						if err := s.Close(); err != nil {
							t.Fatalf("step %d: close: %v", i, err)
						}
						if s, err = Open(p); err != nil {
							t.Fatalf("step %d: reopen: %v", i, err)
						}
					}
					m.revert()
					check(t, i, "revert", s, m)
				case 9: // compact (includes a commit)
					if _, err := s.Compact(); err != nil {
						t.Fatalf("step %d: compact: %v", i, err)
					}
					m.commit()
					check(t, i, "compact", s, m)
				}
			}
		})
	}
}

func TestModelMutationThroughSharedReference(t *testing.T) {
	// Beyond the flat model: sharing must behave identically before and
	// after a commit+reopen cycle, which the flat model can't express.
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close() }()
	shared := value.Rec("N", value.Int(0))
	root := value.Rec("L", shared, "R", shared)
	if err := s.Bind("x", root, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		p := s.Path()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if s, err = Open(p); err != nil {
			t.Fatal(err)
		}
		r, _ := s.Root("x")
		l := r.Value.(*value.Record).MustGet("L").(*value.Record)
		rr := r.Value.(*value.Record).MustGet("R").(*value.Record)
		if l != rr {
			t.Fatalf("cycle %d: sharing lost", i)
		}
		if v, _ := l.Get("N"); !value.Equal(v, value.Int(int64(i-1))) {
			t.Fatalf("cycle %d: N = %s, want %d", i, v, i-1)
		}
		l.Set("N", value.Int(int64(i)))
	}
}
