package intrinsic

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/value"
)

// primaryFixture builds a primary store with a scripted history: four
// commits touching every record kind replication has to carry — node
// images, root-table rewrites (including a rebind and an unbind), and an
// index-definition change.
func primaryFixture(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "primary.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	commit := func() {
		t.Helper()
		if _, err := p.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Bind("emp", value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("tag", value.String("v1"), nil); err != nil {
		t.Fatal(err)
	}
	commit()
	if err := p.Bind("emps", value.NewSet(
		value.Rec("Empno", value.Int(1), "Name", value.String("A")),
		value.Rec("Empno", value.Int(2), "Name", value.String("B")),
	), nil); err != nil {
		t.Fatal(err)
	}
	p.DeclareIndex("Empno")
	commit()
	if err := p.Bind("tag", value.String("v2"), nil); err != nil {
		t.Fatal(err)
	}
	p.Unbind("emp")
	commit()
	if err := p.Bind("n", value.Int(42), nil); err != nil {
		t.Fatal(err)
	}
	commit()
	return p, path
}

// allGroups reads the primary's whole verified log body in one window.
func allGroups(t *testing.T, p *Store) []byte {
	t.Helper()
	raw, _, n, err := p.ReadGroupsAt(HeaderSize, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("primary fixture holds no commit groups")
	}
	return raw
}

// splitGroups cuts raw log bytes into individual commit groups at the
// boundaries the structural scanner reports.
func splitGroups(t *testing.T, raw []byte) [][]byte {
	t.Helper()
	var ends []int64
	sum, err := scanRaw(raw, scanSink{commit: func(end int64) { ends = append(ends, end-HeaderSize) }})
	if err != nil {
		t.Fatal(err)
	}
	if sum.corrupt != nil {
		t.Fatal(sum.corrupt)
	}
	groups := make([][]byte, 0, len(ends))
	var prev int64
	for _, end := range ends {
		groups = append(groups, raw[prev:end])
		prev = end
	}
	if prev != int64(len(raw)) {
		t.Fatalf("%d trailing bytes past the last commit group", int64(len(raw))-prev)
	}
	return groups
}

// catchUp ships groups primary→follower until the follower's durable end
// reaches the primary's, cross-checking that the offsets the two stores
// report stay in lockstep (they must: the files are byte-identical).
func catchUp(t *testing.T, p, f *Store) {
	t.Helper()
	for {
		raw, next, n, err := p.ReadGroupsAt(f.DurableEnd(), 0)
		if err != nil {
			t.Fatalf("ReadGroupsAt(%d): %v", f.DurableEnd(), err)
		}
		if n == 0 {
			return
		}
		delta, err := f.ApplyGroup(raw)
		if err != nil {
			t.Fatalf("ApplyGroup at %d: %v", f.DurableEnd(), err)
		}
		if delta.End != next || delta.Groups != n {
			t.Fatalf("delta (end %d, %d groups) disagrees with shipped (next %d, %d groups)",
				delta.End, delta.Groups, next, n)
		}
	}
}

// TestReplicationRoundTrip: shipping every group of a primary's log into a
// fresh follower leaves the two log files byte-identical, the visible
// roots equal, and the index-definition tables equal — and the follower's
// file replays to the same state through a plain reopen.
func TestReplicationRoundTrip(t *testing.T) {
	p, ppath := primaryFixture(t)
	fpath := filepath.Join(t.TempDir(), "follower.log")
	f, err := Open(fpath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	catchUp(t, p, f)

	pb, err := os.ReadFile(ppath)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, fb) {
		t.Fatalf("follower log (%d bytes) is not byte-identical to primary log (%d bytes)", len(fb), len(pb))
	}
	if !sameState(render(p), render(f)) {
		t.Fatalf("follower state %v != primary state %v", render(f), render(p))
	}
	if !reflect.DeepEqual(p.IndexDefs(), f.IndexDefs()) {
		t.Fatalf("follower index defs %v != primary %v", f.IndexDefs(), p.IndexDefs())
	}

	// The shipped file stands on its own: a cold open replays it to the
	// same state a local history would.
	f2, err := Open(fpath)
	if err != nil {
		t.Fatalf("cold reopen of follower log: %v", err)
	}
	defer f2.Close()
	if !sameState(render(p), render(f2)) {
		t.Fatalf("reopened follower state %v != primary state %v", render(f2), render(p))
	}
}

// TestApplyGroupDelta: each applied group reports exactly which roots
// changed or vanished and whether the index-definition set moved — the
// vocabulary the server uses to advance its published state.
func TestApplyGroupDelta(t *testing.T) {
	p, _ := primaryFixture(t)
	groups := splitGroups(t, allGroups(t, p))
	if len(groups) != 4 {
		t.Fatalf("fixture produced %d groups, want 4", len(groups))
	}
	f, err := Open(filepath.Join(t.TempDir(), "follower.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := []GroupDelta{
		{Changed: []string{"emp", "tag"}},
		{Changed: []string{"emps"}, DefsChanged: true},
		{Changed: []string{"tag"}, Removed: []string{"emp"}},
		{Changed: []string{"n"}},
	}
	at := f.DurableEnd()
	for i, g := range groups {
		delta, err := f.ApplyGroup(g)
		if err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
		if delta.Start != at || delta.End != at+int64(len(g)) || delta.Groups != 1 {
			t.Fatalf("group %d spans [%d,%d) ×%d, want [%d,%d) ×1",
				i, delta.Start, delta.End, delta.Groups, at, at+int64(len(g)))
		}
		at = delta.End
		if !reflect.DeepEqual(delta.Changed, want[i].Changed) ||
			!reflect.DeepEqual(delta.Removed, want[i].Removed) ||
			delta.DefsChanged != want[i].DefsChanged {
			t.Fatalf("group %d delta = {Changed:%v Removed:%v Defs:%v}, want {Changed:%v Removed:%v Defs:%v}",
				i, delta.Changed, delta.Removed, delta.DefsChanged,
				want[i].Changed, want[i].Removed, want[i].DefsChanged)
		}
	}
}

// TestApplyGroupRejectsDamage: a truncated group is refused as ErrBadGroup
// and a checksum-damaged one as corruption — in both cases before any I/O,
// leaving the follower's log and state untouched and still able to apply
// the undamaged bytes.
func TestApplyGroupRejectsDamage(t *testing.T) {
	p, _ := primaryFixture(t)
	groups := splitGroups(t, allGroups(t, p))
	f, err := Open(filepath.Join(t.TempDir(), "follower.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ApplyGroup(groups[0]); err != nil {
		t.Fatal(err)
	}
	end, state := f.DurableEnd(), render(f)

	g := groups[1]
	if _, err := f.ApplyGroup(g[:len(g)-3]); !errors.Is(err, ErrBadGroup) {
		t.Fatalf("truncated group applied with %v, want ErrBadGroup", err)
	}
	// The group checksum is the last thing in the group: flipping a bit of
	// it leaves the structure parseable and fails verification.
	bad := append([]byte(nil), g...)
	bad[len(bad)-1] ^= 0x01
	if _, err := f.ApplyGroup(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("checksum-flipped group applied with %v, want ErrCorrupt", err)
	}
	// A flip in the middle lands wherever it lands — payload or structure —
	// but is always refused with a typed error.
	bad = append([]byte(nil), g...)
	bad[len(bad)/2] ^= 0x20
	if _, err := f.ApplyGroup(bad); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadGroup) {
		t.Fatalf("mid-flipped group applied with %v, want ErrCorrupt or ErrBadGroup", err)
	}

	if f.DurableEnd() != end {
		t.Fatalf("durable end moved %d→%d on rejected groups", end, f.DurableEnd())
	}
	if !sameState(render(f), state) {
		t.Fatalf("state changed on rejected groups: %v != %v", render(f), state)
	}
	if _, err := f.ApplyGroup(g); err != nil {
		t.Fatalf("undamaged group refused after rejections: %v", err)
	}
}

// TestReplicaRefusesLocalMutation: once a store is a follower — via
// EnterReplica or the first ApplyGroup — every local mutation path is a
// typed refusal, so the log can only grow through replication.
func TestReplicaRefusesLocalMutation(t *testing.T) {
	f, err := Open(filepath.Join(t.TempDir(), "follower.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.EnterReplica()
	if err := f.Bind("x", value.Int(1), nil); !errors.Is(err, ErrReplica) {
		t.Fatalf("Bind on replica: %v, want ErrReplica", err)
	}
	if _, err := f.Commit(); !errors.Is(err, ErrReplica) {
		t.Fatalf("Commit on replica: %v, want ErrReplica", err)
	}
	if _, err := f.Compact(); !errors.Is(err, ErrReplica) {
		t.Fatalf("Compact on replica: %v, want ErrReplica", err)
	}
}

// TestReadGroupsAtValidation: offsets outside the durable log are typed
// ErrBadOffset, the durable end itself means "caught up", an offset inside
// a group is detected as corruption (the primary never ships from a
// non-boundary), and a tiny window still returns at least one whole group.
func TestReadGroupsAtValidation(t *testing.T) {
	p, _ := primaryFixture(t)
	end := p.DurableEnd()
	for _, from := range []int64{0, HeaderSize - 1, end + 1, 1 << 40} {
		if _, _, _, err := p.ReadGroupsAt(from, 0); !errors.Is(err, ErrBadOffset) {
			t.Errorf("ReadGroupsAt(%d) = %v, want ErrBadOffset", from, err)
		}
	}
	raw, next, n, err := p.ReadGroupsAt(end, 0)
	if err != nil || raw != nil || next != end || n != 0 {
		t.Fatalf("ReadGroupsAt(end) = (%d bytes, %d, %d, %v), want (nil, %d, 0, nil)",
			len(raw), next, n, err, end)
	}
	if _, _, _, err := p.ReadGroupsAt(HeaderSize+1, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadGroupsAt(mid-group) = %v, want ErrCorrupt", err)
	}
	raw, next, n, err = p.ReadGroupsAt(HeaderSize, 1)
	if err != nil || n < 1 {
		t.Fatalf("ReadGroupsAt(maxBytes=1) = (%d groups, %v), want at least one whole group", n, err)
	}
	if next != HeaderSize+int64(len(raw)) {
		t.Fatalf("next %d != from+len(raw) %d", next, HeaderSize+int64(len(raw)))
	}
}

// TestReplicationRequiresV2: a v1 log has no group checksums, so neither
// side of the protocol will touch it — the primary refuses to ship and a
// follower refuses to apply.
func TestReplicationRequiresV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.log")
	writeV1Log(t, path)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, _, err := s.ReadGroupsAt(HeaderSize, 0); !errors.Is(err, ErrUnverified) {
		t.Fatalf("ReadGroupsAt on v1 log: %v, want ErrUnverified", err)
	}
	if _, err := s.ApplyGroup([]byte{recCommit}); !errors.Is(err, ErrUnverified) {
		t.Fatalf("ApplyGroup on v1 log: %v, want ErrUnverified", err)
	}
}

// applyAll opens a follower over fsys and applies the groups in order,
// stopping at the first failure — exactly what a crash does.
func applyAll(fsys iofault.FS, path string, groups [][]byte) int {
	f, err := OpenFS(fsys, path)
	if err != nil {
		return 0
	}
	defer f.Close()
	for i, g := range groups {
		if _, err := f.ApplyGroup(g); err != nil {
			return i
		}
	}
	return len(groups)
}

// TestFollowerPrefixCrashMatrix is the replication half of the crash
// matrix: a probe run counts the mutating I/O operations of applying the
// primary's whole history on a follower, then the apply is re-run crashing
// at every boundary (with and without losing unsynced page-cache data).
// After every crash the reopened follower must satisfy the shipping
// invariant — its durable log is a byte-for-byte prefix of the primary's,
// ending on a group boundary — and resuming from its durable end must
// converge to a byte-identical file and equal visible state.
func TestFollowerPrefixCrashMatrix(t *testing.T) {
	followerPrefixCrashMatrix(t, primaryFixture)
}

// TestFollowerPrefixCrashMatrixGroupCommit re-runs the follower crash
// matrix against a *group-committing* primary: the same logical history
// staged via StageCommit and promoted in two SyncBatch fsyncs. Because a
// batched log is byte-identical to a serial one, a follower streaming
// from it must still converge byte-identical through every crash.
func TestFollowerPrefixCrashMatrixGroupCommit(t *testing.T) {
	followerPrefixCrashMatrix(t, batchedPrimaryFixture)
}

// batchedPrimaryFixture builds the primaryFixture history with group
// commit: four staged groups, two shared fsyncs.
func batchedPrimaryFixture(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "primary.log")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	stage := func() {
		t.Helper()
		if _, err := p.StageCommit(); err != nil {
			t.Fatal(err)
		}
	}
	sync := func(want int) {
		t.Helper()
		if n, err := p.SyncBatch(); err != nil || n != want {
			t.Fatalf("SyncBatch = (%d, %v), want (%d, nil)", n, err, want)
		}
	}
	if err := p.Bind("emp", value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1)), nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("tag", value.String("v1"), nil); err != nil {
		t.Fatal(err)
	}
	stage()
	if err := p.Bind("emps", value.NewSet(
		value.Rec("Empno", value.Int(1), "Name", value.String("A")),
		value.Rec("Empno", value.Int(2), "Name", value.String("B")),
	), nil); err != nil {
		t.Fatal(err)
	}
	p.DeclareIndex("Empno")
	stage()
	sync(2)
	if err := p.Bind("tag", value.String("v2"), nil); err != nil {
		t.Fatal(err)
	}
	p.Unbind("emp")
	stage()
	if err := p.Bind("n", value.Int(42), nil); err != nil {
		t.Fatal(err)
	}
	stage()
	sync(2)
	return p, path
}

func followerPrefixCrashMatrix(t *testing.T, fixture func(*testing.T) (*Store, string)) {
	p, ppath := fixture(t)
	groups := splitGroups(t, allGroups(t, p))
	primaryBytes, err := os.ReadFile(ppath)
	if err != nil {
		t.Fatal(err)
	}
	want := render(p)

	probe := iofault.NewInjector(iofault.OS{})
	if got := applyAll(probe, filepath.Join(t.TempDir(), "follower.log"), groups); got != len(groups) {
		t.Fatalf("fault-free apply stopped after %d of %d groups", got, len(groups))
	}
	n := probe.Ops()
	if n < 5 {
		t.Fatalf("apply performed only %d mutating ops", n)
	}

	// Every legal durable end: the bare header, or the end of any group.
	boundaries := map[int64]bool{HeaderSize: true}
	off := HeaderSize
	for _, g := range groups {
		off += int64(len(g))
		boundaries[off] = true
	}

	for _, lose := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			t.Run(fmt.Sprintf("lose=%v/op=%d", lose, k), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "follower.log")
				inj := iofault.NewInjector(iofault.OS{})
				inj.LoseUnsynced = lose
				inj.CrashAt(k)
				applyAll(inj, path, groups)
				if !inj.Crashed() {
					t.Fatalf("crash at op %d never fired", k)
				}

				f, err := Open(path)
				if err != nil {
					t.Fatalf("reopen after crash at op %d: %v", k, err)
				}
				defer f.Close()
				de := f.DurableEnd()
				if !boundaries[de] {
					t.Fatalf("durable end %d after crash is not a group boundary", de)
				}
				fb, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if int64(len(fb)) < de || !bytes.Equal(fb[:de], primaryBytes[:de]) {
					t.Fatalf("follower durable prefix [0,%d) diverges from primary", de)
				}

				// Resume: ship everything past the follower's durable end,
				// then the two logs must be byte-identical.
				catchUp(t, p, f)
				fb, err = os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fb, primaryBytes) {
					t.Fatalf("resumed follower log (%d bytes) not byte-identical to primary (%d bytes)",
						len(fb), len(primaryBytes))
				}
				if !sameState(render(f), want) {
					t.Fatalf("resumed follower state %v != primary state %v", render(f), want)
				}
			})
		}
	}
}
