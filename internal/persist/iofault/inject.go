package iofault

import (
	"os"
	"sync"
)

// Injector wraps an FS with deterministic fault injection. Two independent
// mechanisms are provided:
//
//   - FailAt(op, nth): the nth operation of that kind returns an injected
//     error. A failed write is *torn* by default — half the bytes land
//     before the error — because that is what a failed write looks like to
//     a store (set CleanWrites to suppress the partial effect).
//
//   - CrashAt(nth): at the nth *mutating* operation the process "dies":
//     the operation takes partial effect (a write lands a torn prefix; a
//     sync, rename, truncate or remove does not happen at all), and every
//     subsequent operation fails with ErrCrashed. With LoseUnsynced set,
//     crashing also drops data written but never fsynced — each file is
//     truncated back to its size at the last successful Sync — modeling a
//     kernel page cache that never reached the platter.
//
// After a simulated crash the test reopens the store over the real files
// (through OS) and asserts on what survived. Ops() reports how many
// mutating operations a fault-free run performed, which is how the crash
// matrix enumerates every I/O boundary.
type Injector struct {
	inner FS

	// LoseUnsynced drops unsynced writes when the crash fires.
	LoseUnsynced bool
	// CleanWrites makes injected write failures land zero bytes instead of
	// a torn prefix.
	CleanWrites bool

	mu        sync.Mutex
	ops       int // mutating operations observed
	crashAt   int // 0 = disabled; crash on the crashAt-th mutating op
	crashed   bool
	kindCount map[Op]int
	fails     map[Op]map[int]bool
	files     map[string]*fileState // per real path, for unsynced-loss
}

// fileState tracks durability per path: the size that is known synced.
type fileState struct {
	synced int64
	open   *injFile // most recent open handle, nil after close
}

// NewInjector wraps inner (typically OS) with fault injection.
func NewInjector(inner FS) *Injector {
	return &Injector{
		inner:     inner,
		kindCount: map[Op]int{},
		fails:     map[Op]map[int]bool{},
		files:     map[string]*fileState{},
	}
}

// FailAt arranges for the nth (1-based) operation of the given kind to
// fail with ErrInjected.
func (i *Injector) FailAt(op Op, nth int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.fails[op] == nil {
		i.fails[op] = map[int]bool{}
	}
	i.fails[op][nth] = true
}

// Clear disarms every not-yet-fired FailAt fault of the given kind, so a
// test that over-arms (e.g. "fail the next K syncs however the batch
// splits") can let recovery proceed cleanly afterwards.
func (i *Injector) Clear(op Op) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.fails, op)
}

// CrashAt arranges a simulated crash at the nth (1-based) mutating
// operation. Zero disables.
func (i *Injector) CrashAt(nth int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashAt = nth
}

// Ops reports the number of mutating operations observed so far.
func (i *Injector) Ops() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Count reports how many operations of the given kind have been observed,
// so tests can target "the next write" with FailAt(op, Count(op)+1).
func (i *Injector) Count(op Op) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.kindCount[op]
}

// Crashed reports whether the simulated crash has fired.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// mutating reports whether op is an I/O boundary for the crash matrix.
func mutating(op Op) bool {
	switch op {
	case OpWrite, OpSync, OpClose, OpTruncate, OpRename, OpRemove,
		OpCreateTemp, OpSyncDir, OpMkdirAll:
		return true
	}
	return false
}

// gate is the common fault check. It returns crash=true when the caller
// must apply the partial effect of the operation and then call crash();
// err non-nil when the operation fails outright.
func (i *Injector) gate(op Op, path string) (crash bool, err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return false, &IOError{Op: op, Path: path, Err: ErrCrashed}
	}
	i.kindCount[op]++
	if i.fails[op][i.kindCount[op]] {
		return false, &IOError{Op: op, Path: path, Err: ErrInjected}
	}
	if mutating(op) {
		i.ops++
		if i.crashAt > 0 && i.ops == i.crashAt {
			return true, nil
		}
	}
	return false, nil
}

// crash flips the injector into the crashed state and, with LoseUnsynced,
// truncates every tracked file back to its last synced size.
func (i *Injector) crash() {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return
	}
	i.crashed = true
	if !i.LoseUnsynced {
		return
	}
	for path, st := range i.files {
		if st.open != nil {
			st.open.f.Truncate(st.synced)
			continue
		}
		if fi, err := os.Stat(path); err == nil && fi.Size() > st.synced {
			os.Truncate(path, st.synced)
		}
	}
}

// state returns (creating if needed) the durability state for path.
// Callers hold i.mu.
func (i *Injector) state(path string) *fileState {
	st, ok := i.files[path]
	if !ok {
		st = &fileState{}
		i.files[path] = st
	}
	return st
}

// ---------------------------------------------------------------------------
// FS implementation
// ---------------------------------------------------------------------------

func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := i.gate(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return i.track(f, name, flag&os.O_TRUNC != 0), nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	crash, err := i.gate(OpCreateTemp, dir)
	if err != nil {
		return nil, err
	}
	if crash {
		i.crash()
		return nil, &IOError{Op: OpCreateTemp, Path: dir, Err: ErrCrashed}
	}
	f, err := i.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return i.track(f, f.Name(), true), nil
}

// track registers an opened file. Existing content counts as synced (it
// was durable before we opened it); truncated/new files start at zero.
func (i *Injector) track(f File, name string, fresh bool) *injFile {
	i.mu.Lock()
	defer i.mu.Unlock()
	st := i.state(name)
	if fresh {
		st.synced = 0
	} else if fi, err := os.Stat(name); err == nil {
		st.synced = fi.Size()
	}
	inf := &injFile{inj: i, f: f, name: name, st: st}
	st.open = inf
	return inf
}

func (i *Injector) Rename(oldpath, newpath string) error {
	crash, err := i.gate(OpRename, newpath)
	if err != nil {
		return err
	}
	if crash {
		// A crash at the rename boundary: the rename never happens.
		i.crash()
		return &IOError{Op: OpRename, Path: newpath, Err: ErrCrashed}
	}
	if err := i.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	i.mu.Lock()
	if st, ok := i.files[oldpath]; ok {
		delete(i.files, oldpath)
		i.files[newpath] = st
	}
	i.mu.Unlock()
	return nil
}

func (i *Injector) Remove(name string) error {
	crash, err := i.gate(OpRemove, name)
	if err != nil {
		return err
	}
	if crash {
		i.crash()
		return &IOError{Op: OpRemove, Path: name, Err: ErrCrashed}
	}
	i.mu.Lock()
	delete(i.files, name)
	i.mu.Unlock()
	return i.inner.Remove(name)
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	if _, err := i.gate(OpReadFile, name); err != nil {
		return nil, err
	}
	return i.inner.ReadFile(name)
}

func (i *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := i.gate(OpReadDir, name); err != nil {
		return nil, err
	}
	return i.inner.ReadDir(name)
}

func (i *Injector) Stat(name string) (os.FileInfo, error) {
	if _, err := i.gate(OpStat, name); err != nil {
		return nil, err
	}
	return i.inner.Stat(name)
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	crash, err := i.gate(OpMkdirAll, path)
	if err != nil {
		return err
	}
	if crash {
		i.crash()
		return &IOError{Op: OpMkdirAll, Path: path, Err: ErrCrashed}
	}
	return i.inner.MkdirAll(path, perm)
}

func (i *Injector) SyncDir(dir string) error {
	crash, err := i.gate(OpSyncDir, dir)
	if err != nil {
		return err
	}
	if crash {
		i.crash()
		return &IOError{Op: OpSyncDir, Path: dir, Err: ErrCrashed}
	}
	return i.inner.SyncDir(dir)
}

// ---------------------------------------------------------------------------
// File implementation
// ---------------------------------------------------------------------------

type injFile struct {
	inj  *Injector
	f    File
	name string
	st   *fileState
}

func (f *injFile) Name() string { return f.name }

func (f *injFile) Read(p []byte) (int, error) {
	if _, err := f.inj.gate(OpRead, f.name); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	if _, err := f.inj.gate(OpSeek, f.name); err != nil {
		return 0, err
	}
	return f.f.Seek(offset, whence)
}

// Write lands all, half, or none of p. Both an injected failure and a
// crash leave a torn prefix (unless CleanWrites), because that is the
// hazard the store's rollback path must handle.
func (f *injFile) Write(p []byte) (int, error) {
	crash, err := f.inj.gate(OpWrite, f.name)
	if err != nil {
		n := 0
		if !f.inj.CleanWrites {
			n, _ = f.f.Write(p[:len(p)/2])
		}
		return n, err
	}
	if crash {
		n := 0
		if !f.inj.CleanWrites {
			n, _ = f.f.Write(p[:len(p)/2])
		}
		f.inj.crash()
		return n, &IOError{Op: OpWrite, Path: f.name, Err: ErrCrashed}
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	crash, err := f.inj.gate(OpSync, f.name)
	if err != nil {
		return err
	}
	if crash {
		// The sync never completes: whatever was unsynced stays at risk.
		f.inj.crash()
		return &IOError{Op: OpSync, Path: f.name, Err: ErrCrashed}
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.inj.mu.Lock()
	if fi, err := os.Stat(f.name); err == nil {
		f.st.synced = fi.Size()
	}
	f.inj.mu.Unlock()
	return nil
}

func (f *injFile) Truncate(size int64) error {
	crash, err := f.inj.gate(OpTruncate, f.name)
	if err != nil {
		return err
	}
	if crash {
		f.inj.crash()
		return &IOError{Op: OpTruncate, Path: f.name, Err: ErrCrashed}
	}
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.inj.mu.Lock()
	if f.st.synced > size {
		f.st.synced = size
	}
	f.inj.mu.Unlock()
	return nil
}

func (f *injFile) Close() error {
	crash, err := f.inj.gate(OpClose, f.name)
	if err != nil {
		// Still release the descriptor; the logical operation failed.
		f.f.Close()
		return err
	}
	f.inj.mu.Lock()
	if f.st.open == f {
		f.st.open = nil
	}
	f.inj.mu.Unlock()
	if crash {
		f.f.Close()
		f.inj.crash()
		return &IOError{Op: OpClose, Path: f.name, Err: ErrCrashed}
	}
	return f.f.Close()
}
