// Package iofault is the injectable I/O layer beneath every persistence
// store. The paper's second principle — "while a value persists, so does
// its type" — presumes the medium itself is trustworthy; "Orthogonal
// Persistence Revisited" (PAPERS.md) names resilience of the stable store
// as the unsolved engineering half of orthogonal persistence. This package
// makes that half testable: stores perform all file-system operations
// through the FS interface, production code passes OS, and the fault tests
// pass an Injector that can fail or short-write any Nth operation, or
// simulate a crash at every I/O boundary.
//
// The package also defines the shared I/O error taxonomy: every store
// wraps a failed file operation in *IOError, which identifies the
// operation and path and unwraps both to ErrIOFailed and to the cause.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Op identifies a class of file-system operation, for error reporting and
// fault targeting.
type Op string

// The operation classes. Mutating operations (everything except the read
// family) are the I/O boundaries the crash matrix enumerates.
const (
	OpOpen       Op = "open"
	OpCreateTemp Op = "create-temp"
	OpRead       Op = "read"
	OpReadFile   Op = "read-file"
	OpReadDir    Op = "read-dir"
	OpStat       Op = "stat"
	OpSeek       Op = "seek"
	OpWrite      Op = "write"
	OpSync       Op = "sync"
	OpClose      Op = "close"
	OpTruncate   Op = "truncate"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpMkdirAll   Op = "mkdir-all"
	OpSyncDir    Op = "sync-dir"
)

// Errors in the taxonomy. ErrIOFailed is the sentinel every *IOError
// unwraps to; ErrInjected and ErrCrashed are the causes produced by the
// Injector.
var (
	ErrIOFailed = errors.New("persist: i/o operation failed")
	ErrInjected = errors.New("iofault: injected fault")
	ErrCrashed  = errors.New("iofault: simulated crash")
)

// IOError is a failed file-system operation: which operation, on which
// path, and why. It unwraps to both ErrIOFailed and the underlying cause,
// so errors.Is works against either.
type IOError struct {
	Op   Op
	Path string
	Err  error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("persist: %s %q: %v", e.Op, e.Path, e.Err)
}

func (e *IOError) Unwrap() []error { return []error{ErrIOFailed, e.Err} }

// Wrap wraps err as an *IOError unless it already is one (faults from the
// Injector arrive pre-wrapped). A nil err stays nil.
func Wrap(op Op, path string, err error) error {
	if err == nil {
		return nil
	}
	var ioe *IOError
	if errors.As(err, &ioe) {
		return err
	}
	return &IOError{Op: op, Path: path, Err: err}
}

// File is the subset of *os.File the persistence stores need.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
}

// FS is the file-system surface the persistence stores operate through.
// OS is the production implementation; Injector wraps any FS with fault
// injection.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making preceding renames and
	// creates in it durable. Required after every atomic-replace rename:
	// without it the rename is metadata that a crash can undo.
	SyncDir(dir string) error
}

// OS is the production FS: direct delegation to package os.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error             { return os.Remove(name) }
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error) {
	return os.ReadDir(name)
}
func (OS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// AtomicWriteFile replaces path with content produced by write, using the
// full durable-replace protocol: write to a temporary file in the same
// directory, fsync it, close, rename over path, then fsync the directory
// so the rename itself survives a crash. path either keeps its previous
// content or holds the complete new content — never a torn mixture.
func AtomicWriteFile(fsys FS, path string, write func(io.Writer) error) error {
	dir := Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return Wrap(OpCreateTemp, path, err)
	}
	name := tmp.Name()
	defer fsys.Remove(name)
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return Wrap(OpSync, name, err)
	}
	if err := tmp.Close(); err != nil {
		return Wrap(OpClose, name, err)
	}
	if err := fsys.Rename(name, path); err != nil {
		return Wrap(OpRename, path, err)
	}
	return Wrap(OpSyncDir, dir, fsys.SyncDir(dir))
}

// Dir returns the directory containing path, "." when path has none. It is
// the argument SyncDir wants after renaming into path.
func Dir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "."
}
