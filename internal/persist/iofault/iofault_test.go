package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	f, err := fs.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	img, err := fs.ReadFile(filepath.Join(dir, "b"))
	if err != nil || string(img) != "hello" {
		t.Fatalf("ReadFile = %q, %v", img, err)
	}
}

func TestDir(t *testing.T) {
	cases := map[string]string{
		"/a/b/c": "/a/b",
		"/a":     "/",
		"a":      ".",
		"a/b":    "a",
	}
	for in, want := range cases {
		if got := Dir(in); got != want {
			t.Errorf("Dir(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInjectedWriteFailureIsTorn(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{})
	inj.FailAt(OpWrite, 1)
	f, err := inj.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrIOFailed) {
		t.Fatalf("want injected IO error, got %v", err)
	}
	if n != 5 {
		t.Fatalf("torn write landed %d bytes, want 5", n)
	}
	// The second write succeeds: the fault was one-shot.
	if _, err := f.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	img, _ := os.ReadFile(filepath.Join(dir, "a"))
	if string(img) != "01234xy" {
		t.Fatalf("file = %q", img)
	}
}

func TestCrashStopsAllFurtherIO(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{})
	f, err := inj.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil { // op 1
		t.Fatal(err)
	}
	inj.CrashAt(2)
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrCrashed) { // op 2: crash
		t.Fatalf("want crash, got %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed")
	}
	if _, err := f.Write([]byte("later")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if err := inj.Rename("x", "y"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
}

func TestCrashLoseUnsynced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	inj := NewInjector(OS{})
	inj.LoseUnsynced = true
	f, err := inj.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+volatile")); err != nil { // op 3
		t.Fatal(err)
	}
	inj.CrashAt(4)
	f.Sync() // op 4: crash before the sync happens
	img, _ := os.ReadFile(path)
	if string(img) != "durable" {
		t.Fatalf("after crash file = %q, want only the synced prefix", img)
	}
}

func TestCrashAtRenameLeavesTarget(t *testing.T) {
	dir := t.TempDir()
	oldp, newp := filepath.Join(dir, "tmp"), filepath.Join(dir, "dst")
	if err := os.WriteFile(oldp, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newp, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(OS{})
	inj.CrashAt(1)
	if err := inj.Rename(oldp, newp); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	img, _ := os.ReadFile(newp)
	if string(img) != "old" {
		t.Fatalf("rename happened despite crash: %q", img)
	}
}

// TestOpsCountIsDeterministic: two identical fault-free runs observe the
// same boundary count — the property the crash matrix relies on.
func TestOpsCountIsDeterministic(t *testing.T) {
	run := func() int {
		dir := t.TempDir()
		inj := NewInjector(OS{})
		f, err := inj.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("x"))
		f.Sync()
		f.Close()
		inj.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
		inj.SyncDir(dir)
		return inj.Ops()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("ops %d vs %d", a, b)
	}
}
