package snapshot

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"dbpl/internal/value"
)

func TestSaveResumeRoundTrip(t *testing.T) {
	env := NewEnvironment()
	env.Bind("db", value.Rec("Employees", value.NewSet(
		value.Rec("Name", value.String("J Doe")))))
	env.Bind("n", value.Int(42))

	var buf bytes.Buffer
	if err := Save(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Resume(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("resumed %d bindings, want 2", got.Len())
	}
	db, ok := got.Lookup("db")
	if !ok {
		t.Fatal("db binding missing")
	}
	want, _ := env.Lookup("db")
	if !value.Equal(db, want) {
		t.Errorf("db = %s, want %s", db, want)
	}
}

func TestAllOrNothingSavesEverything(t *testing.T) {
	// The paper's criticism: "the user cannot separate the relatively
	// constant structures he has created (the database) from the extremely
	// volatile structures such as experimental programs". The scratch
	// binding comes back whether wanted or not.
	env := NewEnvironment()
	env.Bind("database", value.Rec("K", value.Int(1)))
	env.Bind("scratch_experiment", value.NewList(value.Int(1), value.Int(2)))

	var buf bytes.Buffer
	if err := Save(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Resume(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Lookup("scratch_experiment"); !ok {
		t.Error("all-or-nothing persistence must drag the volatile state along")
	}
}

func TestSharingAcrossBindingsPreserved(t *testing.T) {
	shared := value.Rec("K", value.Int(7))
	env := NewEnvironment()
	env.Bind("a", value.Rec("S", shared))
	env.Bind("b", value.Rec("S", shared))

	var buf bytes.Buffer
	if err := Save(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := Resume(&buf)
	if err != nil {
		t.Fatal(err)
	}
	av, _ := got.Lookup("a")
	bv, _ := got.Lookup("b")
	as := av.(*value.Record).MustGet("S").(*value.Record)
	bs := bv.(*value.Record).MustGet("S").(*value.Record)
	if as != bs {
		t.Error("a whole-image snapshot should preserve sharing between bindings")
	}
}

func TestEnvironmentOps(t *testing.T) {
	env := NewEnvironment()
	env.Bind("x", value.Int(1))
	env.Bind("y", value.Int(2))
	env.Bind("x", value.Int(3)) // rebind
	if v, _ := env.Lookup("x"); !value.Equal(v, value.Int(3)) {
		t.Error("rebind failed")
	}
	if names := env.Names(); len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
	if !env.Unbind("y") || env.Unbind("y") {
		t.Error("Unbind misbehaves")
	}
	if _, ok := env.Lookup("zzz"); ok {
		t.Error("Lookup of absent name")
	}
}

func TestSaveFileResumeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.img")
	env := NewEnvironment()
	env.Bind("x", value.Int(1))
	if err := SaveFile(path, env); err != nil {
		t.Fatal(err)
	}
	got, err := ResumeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Lookup("x"); !value.Equal(v, value.Int(1)) {
		t.Error("file round trip failed")
	}
	// Overwrite is atomic and repeatable.
	env.Bind("x", value.Int(2))
	if err := SaveFile(path, env); err != nil {
		t.Fatal(err)
	}
	got, err = ResumeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Lookup("x"); !value.Equal(v, value.Int(2)) {
		t.Error("second save not visible")
	}
}

func TestResumeCorrupt(t *testing.T) {
	if _, err := Resume(bytes.NewReader([]byte("garbage"))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
	var buf bytes.Buffer
	env := NewEnvironment()
	env.Bind("x", value.Int(1))
	if err := Save(&buf, env); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	if _, err := Resume(bytes.NewReader(img[:len(img)-1])); err == nil {
		t.Error("truncated image should not resume")
	}
}
