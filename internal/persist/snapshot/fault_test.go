package snapshot

import (
	"errors"
	"path/filepath"
	"testing"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/value"
)

// saveEnv builds a small environment distinguishable across generations.
func saveEnv(gen int64) *Environment {
	e := NewEnvironment()
	e.Bind("gen", value.Int(gen))
	e.Bind("greeting", value.String("hello"))
	return e
}

func mustResume(t *testing.T, path string) *Environment {
	t.Helper()
	e, err := ResumeFile(path)
	if err != nil {
		t.Fatalf("ResumeFile: %v", err)
	}
	return e
}

func gen(t *testing.T, e *Environment) int64 {
	t.Helper()
	v, ok := e.Lookup("gen")
	if !ok {
		t.Fatalf("no gen binding")
	}
	return int64(v.(value.Int))
}

// TestSaveFileFaultAtomicity drives SaveFileFS through an injector failing
// each mutating op kind in turn, and asserts the previous image is always
// intact: a failed save is a no-op, never a torn file.
func TestSaveFileFaultAtomicity(t *testing.T) {
	for _, op := range []iofault.Op{
		iofault.OpCreateTemp, iofault.OpWrite, iofault.OpSync,
		iofault.OpClose, iofault.OpRename, iofault.OpSyncDir,
	} {
		t.Run(string(op), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "env.img")
			if err := SaveFile(path, saveEnv(1)); err != nil {
				t.Fatalf("baseline SaveFile: %v", err)
			}

			inj := iofault.NewInjector(iofault.OS{})
			inj.FailAt(op, 1)
			err := SaveFileFS(inj, path, saveEnv(2))
			if op == iofault.OpSyncDir {
				// The rename already happened; a failed directory fsync
				// must still be reported, but the new image is in place.
				if err == nil {
					t.Fatalf("SaveFileFS: expected injected %s error", op)
				}
				if g := gen(t, mustResume(t, path)); g != 2 {
					t.Fatalf("gen = %d, want 2 after post-rename SyncDir failure", g)
				}
				return
			}
			if err == nil {
				t.Fatalf("SaveFileFS: expected injected %s error", op)
			}
			if !errors.Is(err, iofault.ErrInjected) {
				t.Fatalf("SaveFileFS error %v does not wrap ErrInjected", err)
			}
			if !errors.Is(err, iofault.ErrIOFailed) {
				t.Fatalf("SaveFileFS error %v does not wrap ErrIOFailed", err)
			}
			if g := gen(t, mustResume(t, path)); g != 1 {
				t.Fatalf("gen = %d, want 1 (previous image) after failed %s", g, op)
			}
		})
	}
}

// TestSaveFileCrashEveryBoundary crashes at every I/O boundary of a save
// over an existing image; after each crash the file must hold either the
// old or the new environment, never garbage.
func TestSaveFileCrashEveryBoundary(t *testing.T) {
	// Count boundaries with a fault-free probe run.
	probeDir := t.TempDir()
	probePath := filepath.Join(probeDir, "env.img")
	if err := SaveFile(probePath, saveEnv(1)); err != nil {
		t.Fatalf("probe baseline: %v", err)
	}
	probe := iofault.NewInjector(iofault.OS{})
	if err := SaveFileFS(probe, probePath, saveEnv(2)); err != nil {
		t.Fatalf("probe save: %v", err)
	}
	n := probe.Ops()
	if n == 0 {
		t.Fatalf("probe recorded no mutating ops")
	}

	for k := 1; k <= n; k++ {
		for _, lose := range []bool{false, true} {
			path := filepath.Join(t.TempDir(), "env.img")
			if err := SaveFile(path, saveEnv(1)); err != nil {
				t.Fatalf("baseline: %v", err)
			}
			inj := iofault.NewInjector(iofault.OS{})
			inj.LoseUnsynced = lose
			inj.CrashAt(k)
			err := SaveFileFS(inj, path, saveEnv(2))
			if err == nil && k <= n-0 && !inj.Crashed() {
				t.Fatalf("crash %d: injector never fired", k)
			}
			g := gen(t, mustResume(t, path))
			if g != 1 && g != 2 {
				t.Fatalf("crash %d (lose=%v): gen = %d, want 1 or 2", k, lose, g)
			}
			if err != nil && g == 2 && !errors.Is(err, iofault.ErrCrashed) {
				t.Fatalf("crash %d: unexpected error %v", k, err)
			}
		}
	}
}
