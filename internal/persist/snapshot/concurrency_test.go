package snapshot

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dbpl/internal/value"
)

// TestConcurrentBindLookupSave exercises the environment from concurrent
// binders, readers and snapshotters. Run with -race.
func TestConcurrentBindLookupSave(t *testing.T) {
	e := NewEnvironment()
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("x%d-%d", g, i)
				e.Bind(name, value.Rec("N", value.Int(int64(i))))
				if _, ok := e.Lookup(name); !ok {
					t.Errorf("binding %q lost", name)
					return
				}
				if i%10 == 0 {
					var buf bytes.Buffer
					if err := Save(&buf, e); err != nil {
						t.Errorf("Save: %v", err)
						return
					}
					if _, err := Resume(&buf); err != nil {
						t.Errorf("Resume: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := e.Len(), goroutines*40; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
}
