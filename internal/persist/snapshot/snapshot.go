// Package snapshot implements the first and simplest of the paper's three
// forms of persistence: *all-or-nothing* persistence, "commonly used with
// interactive programming languages … achieved by copying a complete core
// image to secondary storage". An Environment is the core image — every
// named binding of the session, volatile scratch structures and database
// alike — and Save/Resume copy it wholesale.
//
// The package exists both as a working persistence mechanism and as the
// baseline whose shortcomings the paper enumerates: no sharing of values
// among programs, no way to separate "the relatively constant structures
// (the database) from the extremely volatile structures such as
// experimental programs", and survival tied to the integrity of the whole
// image. The tests and benchmarks exhibit all three.
package snapshot

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/value"
)

// ErrCorrupt wraps decoding failures of a snapshot image.
var ErrCorrupt = errors.New("snapshot: corrupt image")

// Environment is an interactive session's complete state: an ordered set of
// named bindings. It is safe for concurrent use.
type Environment struct {
	mu    sync.RWMutex
	binds map[string]value.Value
}

// NewEnvironment returns an empty environment.
func NewEnvironment() *Environment {
	return &Environment{binds: map[string]value.Value{}}
}

// Bind adds or replaces a named binding.
func (e *Environment) Bind(name string, v value.Value) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.binds[name] = v
}

// Lookup returns the named binding.
func (e *Environment) Lookup(name string) (value.Value, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.binds[name]
	return v, ok
}

// Unbind removes a binding, reporting whether it existed.
func (e *Environment) Unbind(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.binds[name]
	delete(e.binds, name)
	return ok
}

// Names returns all binding names in sorted order.
func (e *Environment) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.binds))
	for n := range e.binds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of bindings.
func (e *Environment) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.binds)
}

// Save writes the complete environment — all bindings, with structure
// sharing between them preserved — to w.
func Save(w io.Writer, e *Environment) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	enc := codec.NewEncoder(w)
	names := make([]string, 0, len(e.binds))
	for n := range e.binds {
		names = append(names, n)
	}
	sort.Strings(names)
	// The count, then each (name, value) pair. One encoder for the whole
	// image keeps sharing across bindings.
	if err := enc.Value(value.Int(int64(len(names)))); err != nil {
		return err
	}
	for _, n := range names {
		if err := enc.Value(value.String(n)); err != nil {
			return err
		}
		if err := enc.Value(e.binds[n]); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// Resume reads an environment previously written by Save.
func Resume(r io.Reader) (*Environment, error) {
	dec, err := codec.NewDecoder(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	nv, err := dec.Value()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n, ok := nv.(value.Int)
	if !ok || n < 0 {
		return nil, fmt.Errorf("%w: bad binding count", ErrCorrupt)
	}
	env := NewEnvironment()
	for i := int64(0); i < int64(n); i++ {
		name, err := dec.Value()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		s, ok := name.(value.String)
		if !ok {
			return nil, fmt.Errorf("%w: binding name is %T", ErrCorrupt, name)
		}
		v, err := dec.Value()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		env.binds[string(s)] = v
	}
	return env, nil
}

// SaveFile saves atomically and durably to path (temporary file, fsync,
// rename, directory fsync), so a crash mid-save — or even just after the
// rename — never destroys the previous image — though, as the paper
// notes, everything else about this model remains fragile.
func SaveFile(path string, e *Environment) error {
	return SaveFileFS(iofault.OS{}, path, e)
}

// SaveFileFS is SaveFile over an explicit file system — the seam the
// fault tests inject through.
func SaveFileFS(fsys iofault.FS, path string, e *Environment) error {
	return iofault.AtomicWriteFile(fsys, path, func(w io.Writer) error {
		return Save(w, e)
	})
}

// ResumeFile resumes from a file written by SaveFile.
func ResumeFile(path string) (*Environment, error) {
	return ResumeFileFS(iofault.OS{}, path)
}

// ResumeFileFS is ResumeFile over an explicit file system.
func ResumeFileFS(fsys iofault.FS, path string) (*Environment, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Resume(f)
}
