// Package codec implements the serialization substrate for persistence: a
// compact, self-describing binary encoding of values and of their types.
// The paper's second principle of persistence — "while a value persists, so
// should its description (type)" — is realized by the tagged forms, which
// write the type descriptor alongside the value, so a database file can
// never be read back at the wrong type silently (the classical file-system
// failure the principle guards against).
//
// Shared substructure is preserved: a value referenced from two places is
// written once and referenced thereafter, and cyclic records round-trip.
// This matters for replicating persistence, whose update anomalies the
// paper attributes to the *loss* of sharing between separately externed
// handles — sharing must survive within one image for the comparison to be
// meaningful.
package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Errors returned by decoding.
var (
	ErrBadMagic      = errors.New("codec: bad magic (not a dbpl image)")
	ErrBadVersion    = errors.New("codec: unsupported version")
	ErrCorrupt       = errors.New("codec: corrupt image")
	ErrUnsupported   = errors.New("codec: unsupported value kind")
	ErrLimitExceeded = errors.New("codec: size limit exceeded")
)

const (
	magic   = "DBPL"
	version = 1

	// maxCount bounds decoded collection sizes as a corruption guard.
	maxCount = 1 << 28
)

// Value tags.
const (
	vBottom byte = iota
	vUnit
	vInt
	vFloat
	vString
	vBoolTrue
	vBoolFalse
	vRecord
	vList
	vSet
	vTag
	vTypeVal
	vDynamic
	vRef // back-reference to an already-encoded container
)

// Type tags.
const (
	tInt byte = iota
	tFloat
	tString
	tBool
	tUnit
	tTop
	tBottom
	tDynamic
	tTypeRep
	tRecord
	tVariant
	tList
	tSet
	tFunc
	tVar
	tForAll
	tExists
	tRec
)

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

// Encoder writes values and types to an underlying stream. A single Encoder
// shares container references across everything it writes.
type Encoder struct {
	w    *bufio.Writer
	ids  map[value.Value]uint64 // container identity -> id
	next uint64
	err  error
}

// NewEncoder returns an encoder that writes the image header immediately.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{w: bufio.NewWriter(w), ids: map[value.Value]uint64{}}
	e.bytes([]byte(magic))
	e.byte(version)
	return e
}

// Flush flushes buffered output and returns the first error encountered.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

func (e *Encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *Encoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *Encoder) uvarint(x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	e.bytes(buf[:n])
}

func (e *Encoder) varint(x int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	e.bytes(buf[:n])
}

func (e *Encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}

// ref registers a container and reports whether it was already written; if
// so a back-reference has been emitted.
func (e *Encoder) ref(v value.Value) bool {
	if id, ok := e.ids[v]; ok {
		e.byte(vRef)
		e.uvarint(id)
		return true
	}
	e.ids[v] = e.next
	e.next++
	return false
}

// Value writes one value.
func (e *Encoder) Value(v value.Value) error {
	e.encodeValue(v)
	if e.err != nil {
		return e.err
	}
	return nil
}

func (e *Encoder) encodeValue(v value.Value) {
	if e.err != nil {
		return
	}
	switch vv := v.(type) {
	case value.Int:
		e.byte(vInt)
		e.varint(int64(vv))
	case value.Float:
		e.byte(vFloat)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(vv)))
		e.bytes(buf[:])
	case value.String:
		e.byte(vString)
		e.str(string(vv))
	case value.Bool:
		if vv {
			e.byte(vBoolTrue)
		} else {
			e.byte(vBoolFalse)
		}
	case *value.Record:
		if e.ref(v) {
			return
		}
		e.byte(vRecord)
		e.uvarint(uint64(vv.Len()))
		vv.Each(func(l string, f value.Value) {
			e.str(l)
			e.encodeValue(f)
		})
	case *value.List:
		if e.ref(v) {
			return
		}
		e.byte(vList)
		e.uvarint(uint64(len(vv.Elems)))
		for _, el := range vv.Elems {
			e.encodeValue(el)
		}
	case *value.Set:
		if e.ref(v) {
			return
		}
		e.byte(vSet)
		elems := vv.Elems()
		e.uvarint(uint64(len(elems)))
		for _, el := range elems {
			e.encodeValue(el)
		}
	case *value.Tag:
		if e.ref(v) {
			return
		}
		e.byte(vTag)
		e.str(vv.Label)
		e.encodeValue(vv.Payload)
	case *value.TypeVal:
		e.byte(vTypeVal)
		e.encodeType(vv.T)
	case *dynamic.Dynamic:
		if e.ref(v) {
			return
		}
		e.byte(vDynamic)
		e.encodeType(vv.Type())
		e.encodeValue(vv.Value())
	default:
		switch v.Kind() {
		case value.KindBottom:
			e.byte(vBottom)
		case value.KindUnit:
			e.byte(vUnit)
		default:
			e.err = fmt.Errorf("%w: %T", ErrUnsupported, v)
		}
	}
}

// Type writes one type descriptor.
func (e *Encoder) Type(t types.Type) error {
	e.encodeType(t)
	return e.err
}

func (e *Encoder) encodeType(t types.Type) {
	if e.err != nil {
		return
	}
	switch tt := t.(type) {
	case *types.Basic:
		switch tt.Kind() {
		case types.KindInt:
			e.byte(tInt)
		case types.KindFloat:
			e.byte(tFloat)
		case types.KindString:
			e.byte(tString)
		case types.KindBool:
			e.byte(tBool)
		case types.KindUnit:
			e.byte(tUnit)
		case types.KindTop:
			e.byte(tTop)
		case types.KindBottom:
			e.byte(tBottom)
		case types.KindDynamic:
			e.byte(tDynamic)
		case types.KindTypeRep:
			e.byte(tTypeRep)
		default:
			e.err = fmt.Errorf("%w: basic kind %v", ErrUnsupported, tt.Kind())
		}
	case *types.Record:
		e.byte(tRecord)
		e.uvarint(uint64(tt.Len()))
		for i := 0; i < tt.Len(); i++ {
			f := tt.Field(i)
			e.str(f.Label)
			e.encodeType(f.Type)
		}
	case *types.Variant:
		e.byte(tVariant)
		e.uvarint(uint64(tt.Len()))
		for i := 0; i < tt.Len(); i++ {
			f := tt.Tag(i)
			e.str(f.Label)
			e.encodeType(f.Type)
		}
	case *types.List:
		e.byte(tList)
		e.encodeType(tt.Elem)
	case *types.Set:
		e.byte(tSet)
		e.encodeType(tt.Elem)
	case *types.Func:
		e.byte(tFunc)
		e.uvarint(uint64(len(tt.Params)))
		for _, p := range tt.Params {
			e.encodeType(p)
		}
		e.encodeType(tt.Result)
	case *types.Var:
		e.byte(tVar)
		e.str(tt.Name)
	case *types.Quant:
		if tt.Kind() == types.KindForAll {
			e.byte(tForAll)
		} else {
			e.byte(tExists)
		}
		e.str(tt.Param)
		e.encodeType(tt.Bound)
		e.encodeType(tt.Body)
	case *types.Rec:
		e.byte(tRec)
		e.str(tt.Param)
		e.encodeType(tt.Body)
	default:
		e.err = fmt.Errorf("%w: type %T", ErrUnsupported, t)
	}
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

// Decoder reads values and types written by an Encoder.
type Decoder struct {
	r    *bufio.Reader
	refs []value.Value
	// typeDepth tracks Type's recursion so only complete top-level types are
	// canonicalized (open subterms under a binder should not be interned).
	typeDepth int
}

// NewDecoder checks the image header and returns a decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r)}
	var hdr [len(magic) + 1]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if hdr[len(magic)] != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[len(magic)])
	}
	return d, nil
}

func (d *Decoder) uvarint() (uint64, error) {
	x, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return x, nil
}

func (d *Decoder) count() (int, error) {
	x, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if x > maxCount {
		return 0, fmt.Errorf("%w: count %d", ErrLimitExceeded, x)
	}
	return int(x), nil
}

func (d *Decoder) str() (string, error) {
	n, err := d.count()
	if err != nil {
		return "", err
	}
	buf, err := readN(d.r, n)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}

// readN reads exactly n bytes, growing the buffer incrementally so a
// corrupt image claiming a huge length fails fast at end of input instead
// of pre-allocating gigabytes.
func readN(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	if n <= chunk {
		buf := make([]byte, n)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		step := n - len(buf)
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// capCount bounds an initial slice capacity derived from untrusted input.
func capCount(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

// Value reads one value.
func (d *Decoder) Value() (value.Value, error) {
	tag, err := d.r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	switch tag {
	case vBottom:
		return value.Bottom, nil
	case vUnit:
		return value.Unit, nil
	case vInt:
		x, err := binary.ReadVarint(d.r)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return value.Int(x), nil
	case vFloat:
		var buf [8]byte
		if _, err := io.ReadFull(d.r, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case vString:
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		return value.String(s), nil
	case vBoolTrue:
		return value.Bool(true), nil
	case vBoolFalse:
		return value.Bool(false), nil
	case vRecord:
		rec := value.NewRecord()
		d.refs = append(d.refs, rec) // register before children: cycles
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			l, err := d.str()
			if err != nil {
				return nil, err
			}
			f, err := d.Value()
			if err != nil {
				return nil, err
			}
			rec.Set(l, f)
		}
		return rec, nil
	case vList:
		lst := value.NewList()
		d.refs = append(d.refs, lst)
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			el, err := d.Value()
			if err != nil {
				return nil, err
			}
			lst.Append(el)
		}
		return lst, nil
	case vSet:
		set := value.NewSet()
		d.refs = append(d.refs, set)
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			el, err := d.Value()
			if err != nil {
				return nil, err
			}
			set.Add(el)
		}
		return set, nil
	case vTag:
		// Reserve the slot first so ids line up with encoding order.
		idx := len(d.refs)
		d.refs = append(d.refs, nil)
		label, err := d.str()
		if err != nil {
			return nil, err
		}
		payload, err := d.Value()
		if err != nil {
			return nil, err
		}
		tv := value.NewTag(label, payload)
		d.refs[idx] = tv
		return tv, nil
	case vTypeVal:
		t, err := d.Type()
		if err != nil {
			return nil, err
		}
		return value.NewTypeVal(t), nil
	case vDynamic:
		idx := len(d.refs)
		d.refs = append(d.refs, nil)
		t, err := d.Type()
		if err != nil {
			return nil, err
		}
		v, err := d.Value()
		if err != nil {
			return nil, err
		}
		dyn, err := dynamic.MakeAt(v, t)
		if err != nil {
			return nil, fmt.Errorf("%w: dynamic no longer conforms: %v", ErrCorrupt, err)
		}
		d.refs[idx] = dyn
		return dyn, nil
	case vRef:
		id, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if id >= uint64(len(d.refs)) || d.refs[id] == nil {
			return nil, fmt.Errorf("%w: dangling reference %d", ErrCorrupt, id)
		}
		return d.refs[id], nil
	default:
		return nil, fmt.Errorf("%w: value tag %d", ErrCorrupt, tag)
	}
}

// Type reads one type descriptor. Top-level types are routed through
// types.Canon, so every image of a schema decodes to the one canonical
// in-memory representation — and hence one entry in every type-keyed cache
// and one extent handle in the database engine.
func (d *Decoder) Type() (types.Type, error) {
	d.typeDepth++
	t, err := d.typeInner()
	d.typeDepth--
	if err == nil && d.typeDepth == 0 {
		t = types.Canon(t)
	}
	return t, err
}

func (d *Decoder) typeInner() (types.Type, error) {
	tag, err := d.r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	switch tag {
	case tInt:
		return types.Int, nil
	case tFloat:
		return types.Float, nil
	case tString:
		return types.String, nil
	case tBool:
		return types.Bool, nil
	case tUnit:
		return types.Unit, nil
	case tTop:
		return types.Top, nil
	case tBottom:
		return types.Bottom, nil
	case tDynamic:
		return types.Dynamic, nil
	case tTypeRep:
		return types.TypeRep, nil
	case tRecord, tVariant:
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		fs := make([]types.Field, 0, capCount(n))
		seen := make(map[string]bool, capCount(n))
		for i := 0; i < n; i++ {
			l, err := d.str()
			if err != nil {
				return nil, err
			}
			// NewRecord/NewVariant panic on duplicate labels; a corrupted
			// image must surface as an error instead.
			if seen[l] {
				return nil, fmt.Errorf("%w: duplicate label %q", ErrCorrupt, l)
			}
			seen[l] = true
			ft, err := d.Type()
			if err != nil {
				return nil, err
			}
			fs = append(fs, types.Field{Label: l, Type: ft})
		}
		if tag == tRecord {
			return types.NewRecord(fs...), nil
		}
		return types.NewVariant(fs...), nil
	case tList:
		el, err := d.Type()
		if err != nil {
			return nil, err
		}
		return types.NewList(el), nil
	case tSet:
		el, err := d.Type()
		if err != nil {
			return nil, err
		}
		return types.NewSet(el), nil
	case tFunc:
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		ps := make([]types.Type, 0, capCount(n))
		for i := 0; i < n; i++ {
			p, err := d.Type()
			if err != nil {
				return nil, err
			}
			ps = append(ps, p)
		}
		res, err := d.Type()
		if err != nil {
			return nil, err
		}
		return types.NewFunc(ps, res), nil
	case tVar:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		return types.NewVar(name), nil
	case tForAll, tExists:
		param, err := d.str()
		if err != nil {
			return nil, err
		}
		bound, err := d.Type()
		if err != nil {
			return nil, err
		}
		body, err := d.Type()
		if err != nil {
			return nil, err
		}
		if tag == tForAll {
			return types.NewForAll(param, bound, body), nil
		}
		return types.NewExists(param, bound, body), nil
	case tRec:
		param, err := d.str()
		if err != nil {
			return nil, err
		}
		body, err := d.Type()
		if err != nil {
			return nil, err
		}
		return types.NewRec(param, body), nil
	default:
		return nil, fmt.Errorf("%w: type tag %d", ErrCorrupt, tag)
	}
}

// ---------------------------------------------------------------------------
// Convenience: tagged and untagged images in memory
// ---------------------------------------------------------------------------

// MarshalTagged encodes v together with its type descriptor (principle P2).
// If declared is nil the value's most specific type is used.
func MarshalTagged(v value.Value, declared types.Type) ([]byte, error) {
	if declared == nil {
		declared = value.TypeOf(v)
	}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Type(declared); err != nil {
		return nil, err
	}
	if err := e.Value(v); err != nil {
		return nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalTagged decodes an image written by MarshalTagged, returning the
// value and the type that persisted with it.
func UnmarshalTagged(img []byte) (value.Value, types.Type, error) {
	d, err := NewDecoder(bytes.NewReader(img))
	if err != nil {
		return nil, nil, err
	}
	t, err := d.Type()
	if err != nil {
		return nil, nil, err
	}
	v, err := d.Value()
	if err != nil {
		return nil, nil, err
	}
	return v, t, nil
}

// MarshalValue encodes v without its type descriptor — the ablation of
// principle P2 used by the codec benchmarks.
func MarshalValue(v value.Value) ([]byte, error) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Value(v); err != nil {
		return nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalValue decodes an image written by MarshalValue.
func UnmarshalValue(img []byte) (value.Value, error) {
	d, err := NewDecoder(bytes.NewReader(img))
	if err != nil {
		return nil, err
	}
	return d.Value()
}
