package codec

import (
	"io"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// This file is the store-facing seam for *image files*: whole codec
// images written as one file. The replicating store's externed dynamics
// are the primary client; anything that materializes a tagged image on
// disk should go through here so it inherits the durable atomic-replace
// protocol and the fault-injection seam.

// WriteImageFile atomically replaces path with the tagged image of v at
// declared type t (MarshalTagged), through fsys: temp file, fsync,
// rename, directory fsync. On any error the previous file, if any, is
// untouched.
func WriteImageFile(fsys iofault.FS, path string, v value.Value, t types.Type) error {
	img, err := MarshalTagged(v, t)
	if err != nil {
		return err
	}
	return iofault.AtomicWriteFile(fsys, path, func(w io.Writer) error {
		_, werr := w.Write(img)
		return iofault.Wrap(iofault.OpWrite, path, werr)
	})
}

// ReadImageFile reads a tagged image written by WriteImageFile and
// decodes it to the value and its persisted type.
func ReadImageFile(fsys iofault.FS, path string) (value.Value, types.Type, error) {
	img, err := fsys.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return UnmarshalTagged(img)
}
