package codec

import (
	"fmt"
	"sync"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// TestConcurrentMarshalUnmarshal round-trips tagged images from many
// goroutines sharing the same declared type. Run with -race: the decoder's
// canonicalization path (types.Canon) and the value layer's label signatures
// are exercised concurrently.
func TestConcurrentMarshalUnmarshal(t *testing.T) {
	declared := types.MustParse("{Name: String, Age: Int}")
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := value.Rec(
					"Name", value.String(fmt.Sprintf("p%d-%d", g, i)),
					"Age", value.Int(int64(i)),
				)
				img, err := MarshalTagged(v, declared)
				if err != nil {
					t.Errorf("MarshalTagged: %v", err)
					return
				}
				got, typ, err := UnmarshalTagged(img)
				if err != nil {
					t.Errorf("UnmarshalTagged: %v", err)
					return
				}
				if !value.Equal(got, v) {
					t.Errorf("round trip changed value: %s", got)
					return
				}
				if !types.Equal(typ, declared) {
					t.Errorf("round trip changed type: %s", typ)
					return
				}
				// Decoded types are canonical: every image of the schema
				// shares one in-memory representation.
				if types.Intern(typ).Type() != typ {
					t.Errorf("decoded type is not the canonical representative")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
