package codec

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

func roundTripValue(t *testing.T, v value.Value) value.Value {
	t.Helper()
	img, err := MarshalValue(v)
	if err != nil {
		t.Fatalf("marshal %s: %v", v, err)
	}
	got, err := UnmarshalValue(img)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", v, err)
	}
	return got
}

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Int(0),
		value.Int(-(1 << 40)),
		value.Int(math.MaxInt64),
		value.Float(3.25),
		value.Float(math.Inf(-1)),
		value.String(""),
		value.String("J Doe — ünïcode ✓"),
		value.Bool(true),
		value.Bool(false),
		value.Unit,
		value.Bottom,
		value.Rec("Name", value.String("J Doe"), "Addr", value.Rec("City", value.String("Austin"))),
		value.NewList(value.Int(1), value.String("two"), value.NewList()),
		value.NewSet(value.Int(1), value.Int(2)),
		value.NewTag("Circle", value.Float(2.5)),
		value.NewTypeVal(types.MustParse("forall t <= {Name: String} . List[t]")),
	}
	for _, v := range vals {
		got := roundTripValue(t, v)
		if !value.Equal(got, v) {
			t.Errorf("round trip of %s gave %s", v, got)
		}
	}
}

func TestFloatNaNRoundTrip(t *testing.T) {
	got := roundTripValue(t, value.Float(math.NaN()))
	f, ok := got.(value.Float)
	if !ok || !math.IsNaN(float64(f)) {
		t.Errorf("NaN round trip gave %v", got)
	}
}

func TestTypeRoundTrip(t *testing.T) {
	srcs := []string{
		"Int", "Float", "String", "Bool", "Unit", "Top", "Bottom", "Dynamic", "Type",
		"{Name: String, Age: Int}",
		"[Circle: Float, Square: Float]",
		"List[Set[{A: Int}]]",
		"(Int, String) -> Bool",
		"forall t <= {Name: String} . t -> List[t]",
		"exists t <= Top . t",
		"rec t . {Value: Int, Next: t}",
	}
	for _, src := range srcs {
		want := types.MustParse(src)
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		if err := e.Type(want); err != nil {
			t.Fatalf("encode %s: %v", src, err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		d, err := NewDecoder(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Type()
		if err != nil {
			t.Fatalf("decode %s: %v", src, err)
		}
		if !types.Equal(got, want) {
			t.Errorf("type round trip of %s gave %s", src, got)
		}
	}
}

func TestSharingPreserved(t *testing.T) {
	shared := value.Rec("K", value.Int(1))
	root := value.Rec("A", shared, "B", shared)
	got := roundTripValue(t, root).(*value.Record)
	a := got.MustGet("A").(*value.Record)
	b := got.MustGet("B").(*value.Record)
	if a != b {
		t.Fatal("sharing lost: A and B decoded to distinct records")
	}
	// Mutating through one path is visible through the other.
	a.Set("K", value.Int(99))
	if v, _ := b.Get("K"); !value.Equal(v, value.Int(99)) {
		t.Error("decoded copies do not actually share")
	}
}

func TestSharingShrinksImage(t *testing.T) {
	big := value.NewList()
	for i := 0; i < 50; i++ {
		big.Append(value.Int(int64(i)))
	}
	sharedTwice := value.Rec("A", big, "B", big)
	copied := value.Rec("A", big, "B", value.Copy(big))
	img1, err := MarshalValue(sharedTwice)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := MarshalValue(copied)
	if err != nil {
		t.Fatal(err)
	}
	if len(img1) >= len(img2) {
		t.Errorf("shared image (%d bytes) should be smaller than copied image (%d bytes)",
			len(img1), len(img2))
	}
}

func TestCyclicRecordRoundTrip(t *testing.T) {
	r := value.NewRecord()
	r.Set("Name", value.String("loop"))
	r.Set("Self", r)
	img, err := MarshalValue(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalValue(img)
	if err != nil {
		t.Fatal(err)
	}
	rec := got.(*value.Record)
	self := rec.MustGet("Self").(*value.Record)
	if self != rec {
		t.Error("cycle not reconstructed")
	}
}

func TestDynamicRoundTrip(t *testing.T) {
	emp := value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1))
	d, err := dynamic.MakeAt(emp, types.MustParse("{Name: String}"))
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripValue(t, d).(*dynamic.Dynamic)
	if !types.Equal(got.Type(), d.Type()) {
		t.Errorf("dynamic type = %s, want %s", got.Type(), d.Type())
	}
	if !value.Equal(got.Value(), emp) {
		t.Errorf("dynamic value = %s", got.Value())
	}
}

func TestTaggedImageCarriesType(t *testing.T) {
	// Principle P2: "while a value persists, so should its type".
	v := value.Rec("Name", value.String("J Doe"))
	declared := types.MustParse("{Name: String}")
	img, err := MarshalTagged(v, declared)
	if err != nil {
		t.Fatal(err)
	}
	got, gotT, err := UnmarshalTagged(img)
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(gotT, declared) {
		t.Errorf("persisted type = %s, want %s", gotT, declared)
	}
	if !value.Equal(got, v) {
		t.Errorf("persisted value = %s", got)
	}
	// Nil declared type defaults to the most specific type.
	img2, err := MarshalTagged(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := UnmarshalTagged(img2)
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(t2, value.TypeOf(v)) {
		t.Errorf("default persisted type = %s", t2)
	}
}

func TestTaggedBiggerThanUntagged(t *testing.T) {
	v := value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1))
	tagged, err := MarshalTagged(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MarshalValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) <= len(plain) {
		t.Errorf("tagged %d bytes should exceed untagged %d bytes", len(tagged), len(plain))
	}
}

func TestCorruptionDetected(t *testing.T) {
	if _, err := UnmarshalValue([]byte("XXXX")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic err = %v", err)
	}
	if _, err := UnmarshalValue([]byte("DBPL\x09")); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}
	img, err := MarshalValue(value.Rec("A", value.Int(1), "B", value.String("x")))
	if err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere must error, never panic or hang.
	for cut := 5; cut < len(img); cut++ {
		if _, err := UnmarshalValue(img[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	// A wild tag byte.
	bad := append([]byte("DBPL\x01"), 0xEE)
	if _, err := UnmarshalValue(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wild tag err = %v", err)
	}
	// A dangling back-reference.
	bad = append([]byte("DBPL\x01"), vRef, 7)
	if _, err := UnmarshalValue(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("dangling ref err = %v", err)
	}
}

func TestUnsupportedKinds(t *testing.T) {
	if _, err := MarshalValue(opaque{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("opaque marshal err = %v, want ErrUnsupported", err)
	}
}

type opaque struct{}

func (opaque) Kind() value.Kind { return value.KindOpaque }
func (opaque) String() string   { return "opaque" }

// genValue builds random acyclic values for round-trip property testing.
func genValue(r *rand.Rand, depth int) value.Value {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return value.Int(int64(r.Uint64()))
		case 1:
			return value.Float(r.NormFloat64())
		case 2:
			return value.String(string(rune('a' + r.Intn(26))))
		case 3:
			return value.Bool(r.Intn(2) == 0)
		default:
			return value.Unit
		}
	}
	switch r.Intn(6) {
	case 0, 1:
		rec := value.NewRecord()
		for _, l := range []string{"A", "B", "C"} {
			if r.Intn(2) == 0 {
				rec.Set(l, genValue(r, depth-1))
			}
		}
		return rec
	case 2:
		n := r.Intn(4)
		lst := value.NewList()
		for i := 0; i < n; i++ {
			lst.Append(genValue(r, depth-1))
		}
		return lst
	case 3:
		n := r.Intn(4)
		s := value.NewSet()
		for i := 0; i < n; i++ {
			s.Add(genValue(r, depth-1))
		}
		return s
	case 4:
		return value.NewTag("T", genValue(r, depth-1))
	default:
		return genValue(r, 0)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := genValue(rng, 4)
		img, err := MarshalValue(v)
		if err != nil {
			return false
		}
		got, err := UnmarshalValue(img)
		if err != nil {
			return false
		}
		if !value.Equal(got, v) {
			return false
		}
		// Tagged round trip preserves the most specific type.
		timg, err := MarshalTagged(v, nil)
		if err != nil {
			return false
		}
		gv, gt, err := UnmarshalTagged(timg)
		return err == nil && value.Equal(gv, v) && types.Equal(gt, value.TypeOf(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStreamOfManyValues(t *testing.T) {
	// One encoder/decoder pair can stream many values with shared refs
	// across them.
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	shared := value.Rec("K", value.Int(7))
	for i := 0; i < 10; i++ {
		if err := e.Value(value.Rec("I", value.Int(int64(i)), "S", shared)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var first *value.Record
	for i := 0; i < 10; i++ {
		v, err := d.Value()
		if err != nil {
			t.Fatal(err)
		}
		s := v.(*value.Record).MustGet("S").(*value.Record)
		if first == nil {
			first = s
		} else if s != first {
			t.Fatal("cross-value sharing lost")
		}
	}
}
