package codec

import (
	"bytes"
	"testing"

	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Native fuzz targets. Under plain `go test` the seed corpus runs; under
// `go test -fuzz=FuzzUnmarshal ./internal/persist/codec` the engine
// explores further. The invariant is the fault-injection one: any input
// yields a value or an error, never a panic, and valid images round-trip.

func FuzzUnmarshalValue(f *testing.F) {
	seed := []value.Value{
		value.Int(42),
		value.String("J Doe"),
		value.Rec("Name", value.String("J"), "Addr", value.Rec("City", value.String("A"))),
		value.NewList(value.Int(1), value.Float(2), value.Bool(true)),
		value.NewSet(value.Rec("K", value.Int(1))),
		value.NewTag("Circle", value.Float(1.5)),
	}
	for _, v := range seed {
		img, err := MarshalValue(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
		timg, err := MarshalTagged(v, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(timg)
	}
	f.Add([]byte("DBPL\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, img []byte) {
		v, err := UnmarshalValue(img)
		if err != nil {
			return
		}
		// A successfully decoded value must re-encode and decode to an
		// equal value (unless it contains a cycle, in which round-tripping
		// still must not fail).
		img2, err := MarshalValue(v)
		if err != nil {
			t.Fatalf("re-encode of decoded value failed: %v", err)
		}
		v2, err := UnmarshalValue(img2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		_ = v2
	})
}

func FuzzDecodeType(f *testing.F) {
	for _, src := range []string{
		"Int", "{Name: String, Age: Int}", "List[Set[Bool]]",
		"forall t <= {A: Int} . t -> t", "rec t . {Next: t}",
	} {
		img, err := typeImage(src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
	}
	f.Fuzz(func(t *testing.T, img []byte) {
		d, err := NewDecoder(bytes.NewReader(img))
		if err != nil {
			return
		}
		_, _ = d.Type()
	})
}

// typeImage encodes a parsed type with the image header.
func typeImage(src string) ([]byte, error) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Type(types.MustParse(src)); err != nil {
		return nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
