package codec

import (
	"math/rand"
	"testing"
	"time"

	"dbpl/internal/value"
)

// Fault injection: a decoder fed arbitrarily corrupted images must either
// return an error or a value — never panic, hang, or allocate absurdly.

// corpusImages returns (untagged, tagged) images of random values.
func corpusImages(t *testing.T) (plain, tagged [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		v := genValue(rng, 4)
		img, err := MarshalValue(v)
		if err != nil {
			t.Fatal(err)
		}
		plain = append(plain, img)
		timg, err := MarshalTagged(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		tagged = append(tagged, timg)
	}
	return plain, tagged
}

func decodeSafely(t *testing.T, img []byte, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s: decoder panicked: %v", what, r)
			}
			close(done)
		}()
		_, _ = UnmarshalValue(img)
		_, _, _ = UnmarshalTagged(img)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: decoder hung", what)
	}
}

func TestBitFlipsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	plain, tagged := corpusImages(t)
	for _, img := range append(plain, tagged...) {
		for trial := 0; trial < 50; trial++ {
			mut := append([]byte(nil), img...)
			// Flip 1–3 random bits.
			for k := 0; k < 1+rng.Intn(3); k++ {
				i := rng.Intn(len(mut))
				mut[i] ^= 1 << rng.Intn(8)
			}
			decodeSafely(t, mut, "bitflip")
		}
	}
}

func TestRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		img := make([]byte, n)
		rng.Read(img)
		decodeSafely(t, img, "garbage")
	}
	// Garbage behind a valid header.
	for trial := 0; trial < 100; trial++ {
		img := append([]byte("DBPL\x01"), make([]byte, rng.Intn(64))...)
		rng.Read(img[5:])
		decodeSafely(t, img, "garbage-with-header")
	}
}

func TestByteTruncationAndExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	plain, tagged := corpusImages(t)
	for _, img := range append(append([][]byte(nil), plain...), tagged...) {
		// Random truncations.
		for trial := 0; trial < 25; trial++ {
			cut := rng.Intn(len(img))
			decodeSafely(t, img[:cut], "truncation")
		}
		// Trailing junk after a valid image must not panic the decoder.
		withJunk := append(append([]byte(nil), img...), 0xFF, 0x00, 0x13)
		decodeSafely(t, withJunk, "extension")
	}
	// A clean untagged prefix with junk after it still decodes: the junk is
	// simply unread stream.
	for _, img := range plain {
		withJunk := append(append([]byte(nil), img...), 0xFF, 0x00, 0x13)
		if _, err := UnmarshalValue(withJunk[:len(img)]); err != nil {
			t.Errorf("clean prefix failed to decode: %v", err)
		}
	}
}

func TestHugeCountsRejected(t *testing.T) {
	// A list claiming 2^40 elements must be rejected by the count guard,
	// not attempted.
	img := []byte("DBPL\x01")
	img = append(img, vList)
	img = append(img, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // huge uvarint
	v := value.NewList()
	_ = v
	if _, err := UnmarshalValue(img); err == nil {
		t.Error("huge count accepted")
	}
}
