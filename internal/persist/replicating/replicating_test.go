package replicating

import (
	"errors"
	"testing"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExternInternRoundTrip(t *testing.T) {
	// The paper's Amber fragment: extern('DBFile', dynamic d) then
	// coerce (intern 'DBFile') to database.
	s := open(t)
	dbType := types.MustParse("{Employees: Set[{Name: String}]}")
	db := value.Rec("Employees", value.NewSet(value.Rec("Name", value.String("J Doe"))))

	d, err := dynamic.MakeAt(db, dbType)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Extern("DBFile", d); err != nil {
		t.Fatal(err)
	}
	got, err := s.InternAs("DBFile", dbType)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, db) {
		t.Errorf("interned value = %s", got)
	}
}

func TestCoerceGuardsType(t *testing.T) {
	// Principle P2 in action: reading the structure back at the wrong type
	// fails instead of silently misinterpreting it.
	s := open(t)
	if err := s.ExternValue("DBFile", value.Int(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InternAs("DBFile", types.String); err == nil {
		t.Error("coerce to the wrong type must fail")
	}
	if v, err := s.InternAs("DBFile", types.Int); err != nil || !value.Equal(v, value.Int(3)) {
		t.Errorf("coerce to Int = %v, %v", v, err)
	}
}

func TestUpdateAnomalyLostModification(t *testing.T) {
	// The paper's program:
	//	var x = intern 'DBFile'
	//	-- code that modifies x
	//	x = intern 'DBFile'
	// "the modifications to x will not survive the second intern".
	s := open(t)
	if err := s.ExternValue("DBFile", value.Rec("Count", value.Int(0))); err != nil {
		t.Fatal(err)
	}
	x, err := s.Intern("DBFile")
	if err != nil {
		t.Fatal(err)
	}
	x.Value().(*value.Record).Set("Count", value.Int(99)) // modify the copy

	x2, err := s.Intern("DBFile")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := x2.Value().(*value.Record).Get("Count"); !value.Equal(v, value.Int(0)) {
		t.Errorf("modification survived without re-extern: Count = %s", v)
	}
}

func TestTwoInternsDoNotShare(t *testing.T) {
	s := open(t)
	if err := s.ExternValue("H", value.Rec("K", value.Int(1))); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Intern("H")
	b, _ := s.Intern("H")
	a.Value().(*value.Record).Set("K", value.Int(2))
	if v, _ := b.Value().(*value.Record).Get("K"); !value.Equal(v, value.Int(1)) {
		t.Error("two interns must be independent replicas")
	}
}

func TestSharedValueSplitsAcrossHandles(t *testing.T) {
	// "if values a and b both refer to a third value c then any change made
	// to c through a handle for a will not be visible from a handle for b,
	// since these two handles will refer to distinct copies of c."
	s := open(t)
	c := value.Rec("Balance", value.Int(100))
	a := value.Rec("Ref", c)
	b := value.Rec("Ref", c)
	if err := s.ExternValue("a", a); err != nil {
		t.Fatal(err)
	}
	if err := s.ExternValue("b", b); err != nil {
		t.Fatal(err)
	}

	// Update c through handle a and re-extern a.
	ia, _ := s.Intern("a")
	ia.Value().(*value.Record).MustGet("Ref").(*value.Record).Set("Balance", value.Int(0))
	if err := s.Extern("a", ia); err != nil {
		t.Fatal(err)
	}

	// The copy of c under handle b is unchanged: the update anomaly.
	ib, _ := s.Intern("b")
	bal, _ := ib.Value().(*value.Record).MustGet("Ref").(*value.Record).Get("Balance")
	if !value.Equal(bal, value.Int(100)) {
		t.Errorf("b's copy of c changed: %s — replicas should be distinct", bal)
	}
}

func TestWastedStorage(t *testing.T) {
	// The two handles above each store their own copy of c: combined they
	// use roughly double the space of the shared structure.
	s := open(t)
	c := value.NewList()
	for i := 0; i < 200; i++ {
		c.Append(value.Int(int64(i)))
	}
	if err := s.ExternValue("a", value.Rec("Ref", c)); err != nil {
		t.Fatal(err)
	}
	if err := s.ExternValue("b", value.Rec("Ref", c)); err != nil {
		t.Fatal(err)
	}
	sa, _ := s.Size("a")
	sb, _ := s.Size("b")
	// Within one handle, sharing IS preserved: a single record referring to
	// c twice is barely bigger than referring once.
	if err := s.ExternValue("both", value.Rec("R1", c, "R2", c)); err != nil {
		t.Fatal(err)
	}
	sBoth, _ := s.Size("both")
	if sBoth > sa+sb/4 {
		t.Errorf("intra-handle sharing lost: both=%d, a=%d", sBoth, sa)
	}
	if sa+sb < 2*sBoth-64 {
		t.Errorf("expected duplicated storage across handles: a+b=%d, both=%d", sa+sb, sBoth)
	}
}

func TestHandlesAndRemove(t *testing.T) {
	s := open(t)
	_ = s.ExternValue("b", value.Int(1))
	_ = s.ExternValue("a", value.Int(2))
	hs, err := s.Handles()
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || hs[0] != "a" || hs[1] != "b" {
		t.Errorf("Handles = %v", hs)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); !errors.Is(err, ErrNoHandle) {
		t.Errorf("double remove err = %v", err)
	}
	if _, err := s.Intern("a"); !errors.Is(err, ErrNoHandle) {
		t.Errorf("intern of removed handle err = %v", err)
	}
}

func TestBadHandleNames(t *testing.T) {
	s := open(t)
	for _, h := range []string{"", ".", "..", "a/b", `a\b`} {
		if err := s.ExternValue(h, value.Int(1)); !errors.Is(err, ErrHandle) {
			t.Errorf("Extern(%q) err = %v, want ErrHandle", h, err)
		}
		if _, err := s.Intern(h); !errors.Is(err, ErrHandle) {
			t.Errorf("Intern(%q) err = %v, want ErrHandle", h, err)
		}
	}
}

func TestExternReplaces(t *testing.T) {
	s := open(t)
	_ = s.ExternValue("h", value.Int(1))
	_ = s.ExternValue("h", value.Int(2))
	v, err := s.InternAs("h", types.Int)
	if err != nil || !value.Equal(v, value.Int(2)) {
		t.Errorf("after replace: %v, %v", v, err)
	}
}

func TestExternClosureReachability(t *testing.T) {
	// "when a dynamic value is externed, it carries with it everything that
	// is reachable from that value".
	s := open(t)
	inner := value.Rec("Deep", value.Rec("Deeper", value.Int(7)))
	if err := s.ExternValue("h", value.Rec("Outer", inner)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Intern("h")
	if err != nil {
		t.Fatal(err)
	}
	deep := got.Value().(*value.Record).MustGet("Outer").(*value.Record).
		MustGet("Deep").(*value.Record)
	if v, _ := deep.Get("Deeper"); !value.Equal(v, value.Int(7)) {
		t.Error("reachable structure lost")
	}
}
