// Package replicating implements the paper's second form of persistence:
// *replicating* persistence, "controlled by having program instructions
// that move structures in and out of secondary storage … structures are
// replicated in secondary storage". It is Amber's model:
//
//	extern('DBFile', dynamic d)          -- write a copy, with its type
//	var x = intern 'DBFile'
//	var d = coerce x to database         -- fails on a type mismatch
//
// A handle names a *copy* of the data, and that is the model's defect: a
// modification is lost unless re-externed; two interns of one handle do not
// share; and two handles that both reach a third value c get *distinct
// copies* of c, "the cause of both update anomalies and wasted storage".
// The tests demonstrate each failure mode exactly as the paper describes.
//
// Because the images are dynamics, the value's type persists with it
// (principle P2), and InternAs performs the guarding coerce.
package replicating

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dbpl/internal/dynamic"
	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Errors returned by store operations.
var (
	ErrNoHandle = errors.New("replicating: no such handle")
	ErrHandle   = errors.New("replicating: invalid handle name")
)

const fileSuffix = ".dyn"

// Store is a directory of externed images, one file per handle. It is safe
// for concurrent use; synchronization of extern/intern sequences across
// programs is — as the paper warns — the caller's problem.
type Store struct {
	mu  sync.Mutex
	fs  iofault.FS
	dir string
}

// Open returns a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	return OpenFS(iofault.OS{}, dir)
}

// OpenFS is Open over an explicit file system — the seam the fault tests
// inject through.
func OpenFS(fsys iofault.FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{fs: fsys, dir: dir}, nil
}

// checkHandle guards against path escapes.
func checkHandle(handle string) error {
	if handle == "" || strings.ContainsAny(handle, "/\\") || handle == "." || handle == ".." {
		return fmt.Errorf("%w: %q", ErrHandle, handle)
	}
	return nil
}

func (s *Store) path(handle string) string {
	return filepath.Join(s.dir, handle+fileSuffix)
}

// Extern writes a *copy* of the dynamic — the value, everything reachable
// from it, and its type — under the handle, replacing any previous image
// atomically and durably (temp file, fsync, rename, directory fsync): a
// failed or interrupted Extern leaves the previous image intact.
func (s *Store) Extern(handle string, d *dynamic.Dynamic) error {
	if err := checkHandle(handle); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return codec.WriteImageFile(s.fs, s.path(handle), d.Value(), d.Type())
}

// ExternValue is Extern of a dynamic made from v at its most specific type.
func (s *Store) ExternValue(handle string, v value.Value) error {
	return s.Extern(handle, dynamic.Make(v))
}

// Intern reads the handle's image and returns a fresh copy of the dynamic.
// Every call materializes a new replica: interning twice yields values that
// do not share structure.
func (s *Store) Intern(handle string) (*dynamic.Dynamic, error) {
	if err := checkHandle(handle); err != nil {
		return nil, err
	}
	s.mu.Lock()
	v, t, err := codec.ReadImageFile(s.fs, s.path(handle))
	s.mu.Unlock()
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrNoHandle, handle)
		}
		return nil, err
	}
	return dynamic.MakeAt(v, t)
}

// InternAs interns the handle and coerces the dynamic to want — the
// paper's "coerce x to database", failing when the persisted type is not a
// subtype of the expected one.
func (s *Store) InternAs(handle string, want types.Type) (value.Value, error) {
	d, err := s.Intern(handle)
	if err != nil {
		return nil, err
	}
	return d.Coerce(want)
}

// Handles lists the externed handle names in sorted order.
func (s *Store) Handles() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, fileSuffix) {
			out = append(out, strings.TrimSuffix(n, fileSuffix))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Remove deletes the handle's image.
func (s *Store) Remove(handle string) error {
	if err := checkHandle(handle); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.Remove(s.path(handle)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %q", ErrNoHandle, handle)
		}
		return err
	}
	return nil
}

// Size reports the stored image size in bytes for the handle; it makes the
// "wasted storage" of replicated shared values measurable.
func (s *Store) Size(handle string) (int64, error) {
	if err := checkHandle(handle); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, err := s.fs.Stat(s.path(handle))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %q", ErrNoHandle, handle)
		}
		return 0, err
	}
	return fi.Size(), nil
}
