package replicating

import (
	"fmt"
	"sync"
	"testing"

	"dbpl/internal/value"
)

// TestConcurrentExternIntern round-trips dynamics through the store from
// many goroutines, each on its own handle, with interleaved Handles scans.
// Run with -race.
func TestConcurrentExternIntern(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				h := fmt.Sprintf("h%d-%d", g, i)
				v := value.Rec("Name", value.String(h), "Age", value.Int(int64(i)))
				if err := s.ExternValue(h, v); err != nil {
					t.Errorf("ExternValue: %v", err)
					return
				}
				d, err := s.Intern(h)
				if err != nil {
					t.Errorf("Intern: %v", err)
					return
				}
				if !value.Equal(d.Value(), v) {
					t.Errorf("round trip changed %q: %s", h, d.Value())
					return
				}
				if i%7 == 0 {
					if _, err := s.Handles(); err != nil {
						t.Errorf("Handles: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	hs, err := s.Handles()
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != goroutines*20 {
		t.Errorf("Handles = %d, want %d", len(hs), goroutines*20)
	}
}
