package replicating

import (
	"errors"
	"testing"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/value"
)

// TestExternFaultAtomicity fails each mutating op of the atomic-replace
// protocol in turn and asserts the previously externed image is always the
// one interned afterward: a failed Extern never leaves a torn replica.
func TestExternFaultAtomicity(t *testing.T) {
	for _, op := range []iofault.Op{
		iofault.OpCreateTemp, iofault.OpWrite, iofault.OpSync,
		iofault.OpClose, iofault.OpRename,
	} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if err := st.ExternValue("db", value.Int(1)); err != nil {
				t.Fatalf("baseline Extern: %v", err)
			}

			inj := iofault.NewInjector(iofault.OS{})
			fst, err := OpenFS(inj, dir)
			if err != nil {
				t.Fatalf("OpenFS: %v", err)
			}
			inj.FailAt(op, 1)
			if err := fst.ExternValue("db", value.Int(2)); err == nil {
				t.Fatalf("Extern: expected injected %s error", op)
			} else if !errors.Is(err, iofault.ErrInjected) {
				t.Fatalf("Extern error %v does not wrap ErrInjected", err)
			}

			d, err := st.Intern("db")
			if err != nil {
				t.Fatalf("Intern after failed Extern: %v", err)
			}
			if got := d.Value().(value.Int); got != 1 {
				t.Fatalf("interned %d, want previous image 1", got)
			}
		})
	}
}

// TestExternCrashEveryBoundary crashes at every I/O boundary during a
// re-extern; the handle must afterward intern as either the old or the new
// value — never fail, never yield garbage.
func TestExternCrashEveryBoundary(t *testing.T) {
	// Probe run to count boundaries.
	probeDir := t.TempDir()
	{
		st, err := Open(probeDir)
		if err != nil {
			t.Fatalf("probe Open: %v", err)
		}
		if err := st.ExternValue("db", value.Int(1)); err != nil {
			t.Fatalf("probe baseline: %v", err)
		}
	}
	probe := iofault.NewInjector(iofault.OS{})
	pst, err := OpenFS(probe, probeDir)
	if err != nil {
		t.Fatalf("probe OpenFS: %v", err)
	}
	if err := pst.ExternValue("db", value.Int(2)); err != nil {
		t.Fatalf("probe Extern: %v", err)
	}
	n := probe.Ops()
	if n == 0 {
		t.Fatalf("probe recorded no mutating ops")
	}

	for k := 1; k <= n; k++ {
		for _, lose := range []bool{false, true} {
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if err := st.ExternValue("db", value.Int(1)); err != nil {
				t.Fatalf("baseline: %v", err)
			}
			inj := iofault.NewInjector(iofault.OS{})
			inj.LoseUnsynced = lose
			inj.CrashAt(k)
			fst, err := OpenFS(inj, dir)
			if err != nil {
				// MkdirAll is the first mutating op; a crash there leaves
				// the baseline intact.
				if !errors.Is(err, iofault.ErrCrashed) {
					t.Fatalf("OpenFS: %v", err)
				}
			} else {
				_ = fst.ExternValue("db", value.Int(2))
			}

			d, err := st.Intern("db")
			if err != nil {
				t.Fatalf("crash %d (lose=%v): Intern: %v", k, lose, err)
			}
			got := int64(d.Value().(value.Int))
			if got != 1 && got != 2 {
				t.Fatalf("crash %d (lose=%v): interned %d, want 1 or 2", k, lose, got)
			}
		}
	}
}
