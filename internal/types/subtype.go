package types

import "sync"

// Context carries bounds for free type variables, as introduced by opening a
// quantifier: inside forall t <= B . T, the variable t has bound B. The
// zero value is an empty context.
type Context struct {
	parent *Context
	name   string
	bound  Type
}

// Extend returns a context in which name has the given upper bound.
func (c *Context) Extend(name string, bound Type) *Context {
	return &Context{parent: c, name: name, bound: bound}
}

// Bound returns the declared upper bound of the named variable, if any.
func (c *Context) Bound(name string) (Type, bool) {
	for ctx := c; ctx != nil; ctx = ctx.parent {
		if ctx.name == name {
			return ctx.bound, true
		}
	}
	return nil, false
}

// isEmpty reports whether the context binds no variables. A non-nil chain of
// zero-value nodes (e.g. new(Context)) is as empty as nil, and must hit the
// same verdict cache.
func (c *Context) isEmpty() bool {
	for ctx := c; ctx != nil; ctx = ctx.parent {
		if ctx.name != "" {
			return false
		}
	}
	return true
}

// internPair is a pair of canonical type handles — the key of both the
// global verdict cache and the per-derivation assumption set. Comparing and
// hashing it is pointer work; no strings are built on the subtype hot path.
type internPair [2]*Interned

// subtypeCache memoizes verdicts for type pairs checked in an empty context.
// The paper notes that a database programming language performs "a certain
// amount of computation at the level of types"; caching keeps repeated
// extent extraction cheap. The cache is keyed on interned handle pairs, so a
// hit costs two pointer lookups instead of two key constructions and a
// concatenation. DESIGN.md lists the cache as an ablation target
// (BenchmarkSubtype* with SubtypeUncached).
var subtypeCache sync.Map // internPair -> bool

// Subtype reports whether s ≤ t: every value of type s is usable as a value
// of type t. The order includes Int ≤ Float, record width and depth
// subtyping, variant tag subtyping, covariant lists and sets, contravariant
// function parameters, Kernel-Fun quantifier rules, and equi-recursive
// unfolding. The algorithm always terminates.
func Subtype(s, t Type) bool { return SubtypeIn(nil, s, t) }

// SubtypeIn is Subtype under a context giving bounds to free variables.
// A context that binds nothing — nil or a chain of zero-value nodes — is
// normalized to the cached empty-context path.
func SubtypeIn(ctx *Context, s, t Type) bool {
	if ctx.isEmpty() {
		return SubtypeInterned(Intern(s), Intern(t))
	}
	return subtype(ctx, s, t, map[internPair]bool{})
}

// SubtypeInterned reports s.Type() ≤ t.Type() through the interned verdict
// cache. It is the form the extent engine uses per candidate object: alpha-
// equivalent witnesses collapse onto one handle, so a scan over a million
// same-shaped records performs one derivation and a pointer-keyed load each.
func SubtypeInterned(s, t *Interned) bool {
	if s == t {
		return true
	}
	pair := internPair{s, t}
	if v, ok := subtypeCache.Load(pair); ok {
		return v.(bool)
	}
	v := subtype(nil, s.t, t.t, map[internPair]bool{})
	subtypeCache.Store(pair, v)
	return v
}

// SubtypeUncached is Subtype with the global verdict cache bypassed. It
// exists so benchmarks can measure the raw cost of subtype derivation.
func SubtypeUncached(s, t Type) bool {
	return subtype(nil, s, t, map[internPair]bool{})
}

func subtype(ctx *Context, s, t Type, seen map[internPair]bool) bool {
	// Reflexivity and universal bounds.
	if t.Kind() == KindTop || s.Kind() == KindBottom {
		return true
	}
	si, ti := Intern(s), Intern(t)
	if si == ti {
		return true
	}
	// Coinductive hypothesis: assume the pair holds while deriving it. This
	// is what makes equi-recursive subtyping terminate.
	pair := internPair{si, ti}
	if seen[pair] {
		return true
	}
	seen[pair] = true

	// Unfold recursive types.
	if r, ok := s.(*Rec); ok {
		return subtype(ctx, r.Unfold(), t, seen)
	}
	if r, ok := t.(*Rec); ok {
		return subtype(ctx, s, r.Unfold(), seen)
	}

	// A variable is below anything its bound is below.
	if v, ok := s.(*Var); ok {
		if tv, ok := t.(*Var); ok && tv.Name == v.Name {
			return true
		}
		if b, ok := ctx.Bound(v.Name); ok {
			return subtype(ctx, b, t, seen)
		}
		return false
	}
	if _, ok := t.(*Var); ok {
		// s is not a variable (handled above) and nothing else is provably
		// below an abstract variable.
		return false
	}

	switch tt := t.(type) {
	case *Basic:
		switch tt.kind {
		case KindFloat:
			return s.Kind() == KindInt || s.Kind() == KindFloat
		default:
			return s.Kind() == tt.kind
		}
	case *Record:
		sr, ok := s.(*Record)
		if !ok {
			return false
		}
		// Width subtyping needs labels(t) ⊆ labels(s); the precomputed label
		// signatures reject a missing label without walking the fields. Both
		// field slices are label-sorted, so the walk is a merge join.
		if tt.labelBits&^sr.labelBits != 0 {
			return false
		}
		j := 0
		for i := range tt.fields {
			f := &tt.fields[i]
			for j < len(sr.fields) && sr.fields[j].Label < f.Label {
				j++
			}
			if j == len(sr.fields) || sr.fields[j].Label != f.Label {
				return false
			}
			if !subtype(ctx, sr.fields[j].Type, f.Type, seen) {
				return false
			}
		}
		return true
	case *Variant:
		sv, ok := s.(*Variant)
		if !ok {
			return false
		}
		// Dually, a variant needs tags(s) ⊆ tags(t); again a merge join over
		// the sorted tag slices.
		if sv.labelBits&^tt.labelBits != 0 {
			return false
		}
		j := 0
		for i := range sv.fields {
			f := &sv.fields[i]
			for j < len(tt.fields) && tt.fields[j].Label < f.Label {
				j++
			}
			if j == len(tt.fields) || tt.fields[j].Label != f.Label {
				return false
			}
			if !subtype(ctx, f.Type, tt.fields[j].Type, seen) {
				return false
			}
		}
		return true
	case *List:
		sl, ok := s.(*List)
		return ok && subtype(ctx, sl.Elem, tt.Elem, seen)
	case *Set:
		ss, ok := s.(*Set)
		return ok && subtype(ctx, ss.Elem, tt.Elem, seen)
	case *Func:
		sf, ok := s.(*Func)
		if !ok || len(sf.Params) != len(tt.Params) {
			return false
		}
		for i := range tt.Params {
			if !subtype(ctx, tt.Params[i], sf.Params[i], seen) { // contravariant
				return false
			}
		}
		return subtype(ctx, sf.Result, tt.Result, seen)
	case *Quant:
		sq, ok := s.(*Quant)
		if !ok || sq.kind != tt.kind {
			return false
		}
		// Kernel Fun: bounds must be equivalent; bodies compared with the
		// parameters identified. Kernel Fun keeps subtyping decidable, which
		// the paper flags as essential for type-level computation.
		if !equal(ctx, sq.Bound, tt.Bound, seen) {
			return false
		}
		fresh := freshName(sq.Param, FreeVars(sq.Body), FreeVars(tt.Body))
		sBody := Substitute(sq.Body, sq.Param, NewVar(fresh))
		tBody := Substitute(tt.Body, tt.Param, NewVar(fresh))
		return subtype(ctx.Extend(fresh, sq.Bound), sBody, tBody, seen)
	default:
		return false
	}
}

// Equal reports whether s and t denote the same set of values: s ≤ t and
// t ≤ s. Alpha-equivalent types are equal; so are a recursive type and its
// unfolding.
func Equal(s, t Type) bool {
	if Intern(s) == Intern(t) {
		return true
	}
	return Subtype(s, t) && Subtype(t, s)
}

func equal(ctx *Context, s, t Type, seen map[internPair]bool) bool {
	if Intern(s) == Intern(t) {
		return true
	}
	return subtype(ctx, s, t, seen) && subtype(ctx, t, s, seen)
}
