package types

import "sync"

// Context carries bounds for free type variables, as introduced by opening a
// quantifier: inside forall t <= B . T, the variable t has bound B. The
// zero value is an empty context.
type Context struct {
	parent *Context
	name   string
	bound  Type
}

// Extend returns a context in which name has the given upper bound.
func (c *Context) Extend(name string, bound Type) *Context {
	return &Context{parent: c, name: name, bound: bound}
}

// Bound returns the declared upper bound of the named variable, if any.
func (c *Context) Bound(name string) (Type, bool) {
	for ctx := c; ctx != nil; ctx = ctx.parent {
		if ctx.name == name {
			return ctx.bound, true
		}
	}
	return nil, false
}

// subtypeCache memoizes verdicts for closed type pairs. The paper notes that
// a database programming language performs "a certain amount of computation
// at the level of types"; caching keeps repeated extent extraction cheap.
// DESIGN.md lists the cache as an ablation target (BenchmarkSubtype* with
// SubtypeUncached).
var subtypeCache sync.Map // string -> bool

// Subtype reports whether s ≤ t: every value of type s is usable as a value
// of type t. The order includes Int ≤ Float, record width and depth
// subtyping, variant tag subtyping, covariant lists and sets, contravariant
// function parameters, Kernel-Fun quantifier rules, and equi-recursive
// unfolding. The algorithm always terminates.
func Subtype(s, t Type) bool { return SubtypeIn(nil, s, t) }

// SubtypeIn is Subtype under a context giving bounds to free variables.
func SubtypeIn(ctx *Context, s, t Type) bool {
	ck := ""
	if ctx == nil {
		ck = Key(s) + "≤" + Key(t)
		if v, ok := subtypeCache.Load(ck); ok {
			return v.(bool)
		}
	}
	v := subtype(ctx, s, t, map[[2]string]bool{})
	if ck != "" {
		subtypeCache.Store(ck, v)
	}
	return v
}

// SubtypeUncached is Subtype with the global verdict cache bypassed. It
// exists so benchmarks can measure the raw cost of subtype derivation.
func SubtypeUncached(s, t Type) bool {
	return subtype(nil, s, t, map[[2]string]bool{})
}

func subtype(ctx *Context, s, t Type, seen map[[2]string]bool) bool {
	// Reflexivity and universal bounds.
	if t.Kind() == KindTop || s.Kind() == KindBottom {
		return true
	}
	sk, tk := Key(s), Key(t)
	if sk == tk {
		return true
	}
	// Coinductive hypothesis: assume the pair holds while deriving it. This
	// is what makes equi-recursive subtyping terminate.
	pair := [2]string{sk, tk}
	if seen[pair] {
		return true
	}
	seen[pair] = true

	// Unfold recursive types.
	if r, ok := s.(*Rec); ok {
		return subtype(ctx, r.Unfold(), t, seen)
	}
	if r, ok := t.(*Rec); ok {
		return subtype(ctx, s, r.Unfold(), seen)
	}

	// A variable is below anything its bound is below.
	if v, ok := s.(*Var); ok {
		if tv, ok := t.(*Var); ok && tv.Name == v.Name {
			return true
		}
		if b, ok := ctx.Bound(v.Name); ok {
			return subtype(ctx, b, t, seen)
		}
		return false
	}
	if _, ok := t.(*Var); ok {
		// s is not a variable (handled above) and nothing else is provably
		// below an abstract variable.
		return false
	}

	switch tt := t.(type) {
	case *Basic:
		switch tt.kind {
		case KindFloat:
			return s.Kind() == KindInt || s.Kind() == KindFloat
		default:
			return s.Kind() == tt.kind
		}
	case *Record:
		sr, ok := s.(*Record)
		if !ok {
			return false
		}
		for i := 0; i < tt.Len(); i++ {
			f := tt.Field(i)
			st, ok := sr.Lookup(f.Label)
			if !ok || !subtype(ctx, st, f.Type, seen) {
				return false
			}
		}
		return true
	case *Variant:
		sv, ok := s.(*Variant)
		if !ok {
			return false
		}
		for i := 0; i < sv.Len(); i++ {
			f := sv.Tag(i)
			ut, ok := tt.Lookup(f.Label)
			if !ok || !subtype(ctx, f.Type, ut, seen) {
				return false
			}
		}
		return true
	case *List:
		sl, ok := s.(*List)
		return ok && subtype(ctx, sl.Elem, tt.Elem, seen)
	case *Set:
		ss, ok := s.(*Set)
		return ok && subtype(ctx, ss.Elem, tt.Elem, seen)
	case *Func:
		sf, ok := s.(*Func)
		if !ok || len(sf.Params) != len(tt.Params) {
			return false
		}
		for i := range tt.Params {
			if !subtype(ctx, tt.Params[i], sf.Params[i], seen) { // contravariant
				return false
			}
		}
		return subtype(ctx, sf.Result, tt.Result, seen)
	case *Quant:
		sq, ok := s.(*Quant)
		if !ok || sq.kind != tt.kind {
			return false
		}
		// Kernel Fun: bounds must be equivalent; bodies compared with the
		// parameters identified. Kernel Fun keeps subtyping decidable, which
		// the paper flags as essential for type-level computation.
		if !equal(ctx, sq.Bound, tt.Bound, seen) {
			return false
		}
		fresh := freshName(sq.Param, FreeVars(sq.Body), FreeVars(tt.Body))
		sBody := Substitute(sq.Body, sq.Param, NewVar(fresh))
		tBody := Substitute(tt.Body, tt.Param, NewVar(fresh))
		return subtype(ctx.Extend(fresh, sq.Bound), sBody, tBody, seen)
	default:
		return false
	}
}

// Equal reports whether s and t denote the same set of values: s ≤ t and
// t ≤ s. Alpha-equivalent types are equal; so are a recursive type and its
// unfolding.
func Equal(s, t Type) bool {
	if Key(s) == Key(t) {
		return true
	}
	return Subtype(s, t) && Subtype(t, s)
}

func equal(ctx *Context, s, t Type, seen map[[2]string]bool) bool {
	if Key(s) == Key(t) {
		return true
	}
	return subtype(ctx, s, t, seen) && subtype(ctx, t, s, seen)
}
