package types

import (
	"testing"
	"testing/quick"
)

func TestInternCanonical(t *testing.T) {
	a := MustParse("{Name: String, Age: Int}")
	b := MustParse("{Age: Int, Name: String}") // same structure, fresh pointers
	if Intern(a) != Intern(b) {
		t.Errorf("structurally equal types interned to distinct handles")
	}
	if Intern(a).Key() != Key(a) {
		t.Errorf("handle key %q != Key %q", Intern(a).Key(), Key(a))
	}
	if Intern(a) == Intern(MustParse("{Name: String}")) {
		t.Errorf("distinct types share a handle")
	}
}

func TestInternAlphaEquivalence(t *testing.T) {
	a := MustParse("forall t . List[t] -> t")
	b := MustParse("forall u . List[u] -> u")
	if Intern(a) != Intern(b) {
		t.Errorf("alpha-equivalent quantified types interned to distinct handles")
	}
	r1 := NewRec("x", NewRecord(Field{Label: "Next", Type: NewVar("x")}))
	r2 := NewRec("y", NewRecord(Field{Label: "Next", Type: NewVar("y")}))
	if Intern(r1) != Intern(r2) {
		t.Errorf("alpha-equivalent recursive types interned to distinct handles")
	}
}

func TestCanonSharesRepresentative(t *testing.T) {
	a := MustParse("{Pay: Float, Boss: {Pay: Float}}")
	b := MustParse("{Boss: {Pay: Float}, Pay: Float}")
	ca, cb := Canon(a), Canon(b)
	if ca != cb {
		t.Errorf("Canon returned distinct representatives for equal types")
	}
	if Key(ca) != Key(a) {
		t.Errorf("canonical representative changed the key")
	}
}

// TestSubtypeInEmptyContextCached is the regression test for the cache
// bypass asymmetry: a non-nil context that binds nothing must hit the same
// verdict cache as a nil context.
func TestSubtypeInEmptyContextCached(t *testing.T) {
	// Fresh labels so the pair cannot already be cached by another test.
	s := MustParse("{XEmptyCtxA: Int, XEmptyCtxB: String}")
	u := MustParse("{XEmptyCtxA: Float}")
	pair := internPair{Intern(s), Intern(u)}
	if _, ok := subtypeCache.Load(pair); ok {
		t.Fatalf("pair already cached; pick fresher labels")
	}
	if !SubtypeIn(new(Context), s, u) {
		t.Fatalf("SubtypeIn(empty, s, u) = false, want true")
	}
	v, ok := subtypeCache.Load(pair)
	if !ok {
		t.Fatalf("empty-context SubtypeIn bypassed the verdict cache")
	}
	if v != true {
		t.Fatalf("cached verdict = %v, want true", v)
	}
	// And a chain of zero-value nodes is still empty.
	if !new(Context).Extend("", nil).isEmpty() {
		t.Errorf("chain of unnamed nodes not recognized as empty")
	}
	if new(Context).Extend("t", Top).isEmpty() {
		t.Errorf("binding context reported empty")
	}
}

// TestQuickInternMatchesKey checks the interning invariant: two random types
// (randType and genType come from quick_test.go) share a handle exactly when
// they share a canonical key.
func TestQuickInternMatchesKey(t *testing.T) {
	f := func(a, b randType) bool {
		return (Intern(a.T) == Intern(b.T)) == (Key(a.T) == Key(b.T))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickRecUnfoldStable checks the memoized unfolding: repeated Unfold
// returns one pointer, and it interns to the folded type's handle (the
// equi-recursive equality the subtype rules depend on).
func TestQuickRecUnfoldStable(t *testing.T) {
	f := func(a randType, seed int64) bool {
		r := NewRec("x", NewRecord(
			Field{Label: "V", Type: a.T},
			Field{Label: "Next", Type: NewVar("x")},
		))
		u := r.Unfold()
		return r.Unfold() == u && Equal(r, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
