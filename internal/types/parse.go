package types

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// Parse reads a type from its concrete syntax, the same syntax produced by
// the String methods:
//
//	Int  Float  String  Bool  Unit  Top  Bottom  Dynamic  Type
//	{Name: String, Age: Int}              record
//	[Circle: Float, Square: Float]        variant
//	List[Int]   Set[{Name: String}]       lists and sets
//	Int -> Bool   (Int, Int) -> Int       functions
//	forall t <= {Name: String} . t        bounded universal
//	exists t <= Person . t                bounded existential
//	rec t . {Value: Int, Next: t}         recursive
//	t                                     type variable (lowercase)
//
// Quantifier bounds default to Top when the "<= Bound" part is omitted.
func Parse(src string) (Type, error) {
	p := &typeParser{src: src}
	p.next()
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.tok != tkEOF {
		return nil, fmt.Errorf("types: unexpected %q after type at offset %d", p.lit, p.off)
	}
	return t, nil
}

// MustParse is Parse but panics on error; for use in tests and fixtures.
func MustParse(src string) Type {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

type typeToken int

const (
	tkEOF typeToken = iota
	tkIdent
	tkLBrace  // {
	tkRBrace  // }
	tkLBrack  // [
	tkRBrack  // ]
	tkLParen  // (
	tkRParen  // )
	tkComma   // ,
	tkColon   // :
	tkDot     // .
	tkArrow   // ->
	tkLessEq  // <=
	tkInvalid // anything else
)

type typeParser struct {
	src string
	pos int // scan position
	off int // offset of current token
	tok typeToken
	lit string
}

func (p *typeParser) next() {
	for p.pos < len(p.src) {
		r, w := utf8.DecodeRuneInString(p.src[p.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		p.pos += w
	}
	p.off = p.pos
	if p.pos >= len(p.src) {
		p.tok, p.lit = tkEOF, ""
		return
	}
	r, w := utf8.DecodeRuneInString(p.src[p.pos:])
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := p.pos
		for p.pos < len(p.src) {
			r, w := utf8.DecodeRuneInString(p.src[p.pos:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			p.pos += w
		}
		p.tok, p.lit = tkIdent, p.src[start:p.pos]
		return
	case r == '{':
		p.tok, p.lit = tkLBrace, "{"
	case r == '}':
		p.tok, p.lit = tkRBrace, "}"
	case r == '[':
		p.tok, p.lit = tkLBrack, "["
	case r == ']':
		p.tok, p.lit = tkRBrack, "]"
	case r == '(':
		p.tok, p.lit = tkLParen, "("
	case r == ')':
		p.tok, p.lit = tkRParen, ")"
	case r == ',':
		p.tok, p.lit = tkComma, ","
	case r == ':':
		p.tok, p.lit = tkColon, ":"
	case r == '.':
		p.tok, p.lit = tkDot, "."
	case r == '-':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '>' {
			p.tok, p.lit = tkArrow, "->"
			p.pos += 2
			return
		}
		p.tok, p.lit = tkInvalid, "-"
	case r == '<':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '=' {
			p.tok, p.lit = tkLessEq, "<="
			p.pos += 2
			return
		}
		p.tok, p.lit = tkInvalid, "<"
	default:
		p.tok, p.lit = tkInvalid, string(r)
	}
	p.pos += w
}

func (p *typeParser) expect(tok typeToken, what string) error {
	if p.tok != tok {
		return fmt.Errorf("types: expected %s at offset %d, found %q", what, p.off, p.lit)
	}
	p.next()
	return nil
}

// parseType handles quantifiers, recursion and function arrows.
func (p *typeParser) parseType() (Type, error) {
	if p.tok == tkIdent {
		switch p.lit {
		case "forall", "exists":
			kw := p.lit
			p.next()
			if p.tok != tkIdent {
				return nil, fmt.Errorf("types: expected variable after %q at offset %d", kw, p.off)
			}
			param := p.lit
			p.next()
			bound := Type(Top)
			if p.tok == tkLessEq {
				p.next()
				var err error
				bound, err = p.parseType()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expect(tkDot, "'.'"); err != nil {
				return nil, err
			}
			body, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if kw == "forall" {
				return NewForAll(param, bound, body), nil
			}
			return NewExists(param, bound, body), nil
		case "rec":
			p.next()
			if p.tok != tkIdent {
				return nil, fmt.Errorf("types: expected variable after \"rec\" at offset %d", p.off)
			}
			param := p.lit
			p.next()
			if err := p.expect(tkDot, "'.'"); err != nil {
				return nil, err
			}
			body, err := p.parseType()
			if err != nil {
				return nil, err
			}
			return NewRec(param, body), nil
		}
	}
	// A primary, or a parenthesized parameter list, possibly followed by ->.
	parts, single, err := p.parsePrimaryGroup()
	if err != nil {
		return nil, err
	}
	if p.tok == tkArrow {
		p.next()
		result, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return NewFunc(parts, result), nil
	}
	if !single {
		return nil, fmt.Errorf("types: parameter list must be followed by \"->\" at offset %d", p.off)
	}
	return parts[0], nil
}

// parsePrimaryGroup parses either one primary type, or a parenthesized
// comma-separated group that may serve as a function parameter list. single
// reports whether the group is usable as a standalone type.
func (p *typeParser) parsePrimaryGroup() (parts []Type, single bool, err error) {
	if p.tok == tkLParen {
		p.next()
		if p.tok == tkRParen { // () -> T : no parameters
			p.next()
			return nil, false, nil
		}
		for {
			t, err := p.parseType()
			if err != nil {
				return nil, false, err
			}
			parts = append(parts, t)
			if p.tok != tkComma {
				break
			}
			p.next()
		}
		if err := p.expect(tkRParen, "')'"); err != nil {
			return nil, false, err
		}
		return parts, len(parts) == 1, nil
	}
	t, err := p.parsePrimary()
	if err != nil {
		return nil, false, err
	}
	return []Type{t}, true, nil
}

func (p *typeParser) parsePrimary() (Type, error) {
	switch p.tok {
	case tkIdent:
		name := p.lit
		p.next()
		switch name {
		case "Int":
			return Int, nil
		case "Float":
			return Float, nil
		case "String":
			return String, nil
		case "Bool":
			return Bool, nil
		case "Unit":
			return Unit, nil
		case "Top":
			return Top, nil
		case "Bottom":
			return Bottom, nil
		case "Dynamic":
			return Dynamic, nil
		case "Type":
			return TypeRep, nil
		case "List", "Set":
			if err := p.expect(tkLBrack, "'['"); err != nil {
				return nil, err
			}
			elem, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tkRBrack, "']'"); err != nil {
				return nil, err
			}
			if name == "List" {
				return NewList(elem), nil
			}
			return NewSet(elem), nil
		default:
			return NewVar(name), nil
		}
	case tkLBrace:
		fs, err := p.parseFields(tkRBrace, "'}'")
		if err != nil {
			return nil, err
		}
		for i := 1; i < len(fs); i++ {
			// NewRecord panics on duplicates; report a parse error instead.
			for j := 0; j < i; j++ {
				if fs[i].Label == fs[j].Label {
					return nil, fmt.Errorf("types: duplicate record label %q", fs[i].Label)
				}
			}
		}
		return NewRecord(fs...), nil
	case tkLBrack:
		fs, err := p.parseFields(tkRBrack, "']'")
		if err != nil {
			return nil, err
		}
		if len(fs) == 0 {
			return nil, fmt.Errorf("types: a variant needs at least one tag at offset %d", p.off)
		}
		for i := 1; i < len(fs); i++ {
			for j := 0; j < i; j++ {
				if fs[i].Label == fs[j].Label {
					return nil, fmt.Errorf("types: duplicate variant tag %q", fs[i].Label)
				}
			}
		}
		return NewVariant(fs...), nil
	default:
		return nil, fmt.Errorf("types: unexpected %q at offset %d", p.lit, p.off)
	}
}

func (p *typeParser) parseFields(closer typeToken, closeWhat string) ([]Field, error) {
	p.next() // consume the opener
	var fs []Field
	if p.tok == closer {
		p.next()
		return fs, nil
	}
	for {
		if p.tok != tkIdent {
			return nil, fmt.Errorf("types: expected label at offset %d, found %q", p.off, p.lit)
		}
		label := p.lit
		p.next()
		if err := p.expect(tkColon, "':'"); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fs = append(fs, Field{Label: label, Type: t})
		if p.tok != tkComma {
			break
		}
		p.next()
	}
	if err := p.expect(closer, closeWhat); err != nil {
		return nil, err
	}
	return fs, nil
}
