package types

import "testing"

// sub parses both sides and asserts the expected subtype verdict.
func sub(t *testing.T, s, u string, want bool) {
	t.Helper()
	st, ut := MustParse(s), MustParse(u)
	if got := Subtype(st, ut); got != want {
		t.Errorf("Subtype(%s, %s) = %v, want %v", s, u, got, want)
	}
	if got := SubtypeUncached(st, ut); got != want {
		t.Errorf("SubtypeUncached(%s, %s) = %v, want %v", s, u, got, want)
	}
}

func TestSubtypeBasics(t *testing.T) {
	sub(t, "Int", "Int", true)
	sub(t, "Int", "Float", true)
	sub(t, "Float", "Int", false)
	sub(t, "String", "Int", false)
	sub(t, "Bool", "Bool", true)
	sub(t, "Unit", "Unit", true)
	sub(t, "Dynamic", "Dynamic", true)
	sub(t, "Dynamic", "Int", false)
	sub(t, "Int", "Dynamic", false)
	sub(t, "Type", "Type", true)
}

func TestSubtypeTopBottom(t *testing.T) {
	for _, s := range []string{"Int", "String", "{Name: String}", "List[Int]", "Dynamic", "forall t . t"} {
		sub(t, s, "Top", true)
		sub(t, "Bottom", s, true)
	}
	sub(t, "Top", "Int", false)
	sub(t, "Int", "Bottom", false)
	sub(t, "Top", "Top", true)
	sub(t, "Bottom", "Bottom", true)
}

func TestSubtypeRecordWidth(t *testing.T) {
	// The paper's running example: Employee adds fields to Person, so every
	// operation on a Person applies to an Employee.
	sub(t, "{Name: String, Empno: Int}", "{Name: String}", true)
	sub(t, "{Name: String}", "{Name: String, Empno: Int}", false)
	sub(t, "{Name: String, Empno: Int, Dept: String}", "{Name: String, Dept: String}", true)
	sub(t, "{}", "{}", true)
	sub(t, "{Name: String}", "{}", true)
	sub(t, "{}", "{Name: String}", false)
}

func TestSubtypeRecordDepth(t *testing.T) {
	sub(t, "{Age: Int}", "{Age: Float}", true)
	sub(t, "{Age: Float}", "{Age: Int}", false)
	sub(t, "{Addr: {City: String, Zip: Int}}", "{Addr: {City: String}}", true)
	sub(t, "{Addr: {City: String}}", "{Addr: {City: String, Zip: Int}}", false)
}

func TestSubtypeRecordMixed(t *testing.T) {
	sub(t, "{A: {X: Int, Y: Int}, B: Int}", "{A: {X: Float}}", true)
	sub(t, "{A: Int}", "{B: Int}", false)
	sub(t, "{A: Int}", "List[Int]", false)
}

func TestSubtypeVariant(t *testing.T) {
	// Fewer tags is a subtype: a value known to be Circle fits anywhere a
	// Circle-or-Square is expected.
	sub(t, "[Circle: Float]", "[Circle: Float, Square: Float]", true)
	sub(t, "[Circle: Float, Square: Float]", "[Circle: Float]", false)
	sub(t, "[Circle: Int]", "[Circle: Float]", true)
	sub(t, "[Circle: Float]", "[Circle: Int]", false)
	sub(t, "[A: Int]", "[B: Int]", false)
}

func TestSubtypeListSet(t *testing.T) {
	sub(t, "List[Int]", "List[Float]", true)
	sub(t, "List[Float]", "List[Int]", false)
	sub(t, "Set[{Name: String, Age: Int}]", "Set[{Name: String}]", true)
	sub(t, "List[Int]", "Set[Int]", false)
	sub(t, "Set[Int]", "List[Int]", false)
	sub(t, "List[Bottom]", "List[Int]", true)
}

func TestSubtypeFunc(t *testing.T) {
	// Contravariant parameters, covariant results.
	sub(t, "{Name: String} -> Int", "{Name: String, Age: Int} -> Float", true)
	sub(t, "{Name: String, Age: Int} -> Int", "{Name: String} -> Int", false)
	sub(t, "Int -> Int", "Int -> Float", true)
	sub(t, "Float -> Int", "Int -> Int", true)
	sub(t, "Int -> Int", "Float -> Int", false)
	sub(t, "(Int, Int) -> Int", "(Int, Int) -> Int", true)
	sub(t, "(Int, Int) -> Int", "Int -> Int", false)
	sub(t, "() -> Int", "() -> Float", true)
}

func TestSubtypeQuantified(t *testing.T) {
	// Kernel Fun: equal bounds, pointwise bodies.
	sub(t, "forall t . t -> t", "forall t . t -> t", true)
	sub(t, "forall t . t -> t", "forall u . u -> u", true) // alpha
	sub(t, "forall t <= {Name: String} . t -> {Name: String}",
		"forall t <= {Name: String} . t -> {}", true)
	sub(t, "forall t <= {Name: String} . t", "forall t <= {Age: Int} . t", false)
	sub(t, "exists t <= {Name: String, Age: Int} . t", "exists t <= {Name: String, Age: Int} . t", true)
	sub(t, "forall t . t", "exists t . t", false) // different quantifiers
}

func TestSubtypeVarBound(t *testing.T) {
	// Under t <= {Name: String}, t is a subtype of {Name: String} and {}.
	ctx := (&Context{}).Extend("t", MustParse("{Name: String}"))
	v := NewVar("t")
	if !SubtypeIn(ctx, v, MustParse("{Name: String}")) {
		t.Error("t <= its own bound should hold")
	}
	if !SubtypeIn(ctx, v, MustParse("{}")) {
		t.Error("t <= supertype of bound should hold")
	}
	if SubtypeIn(ctx, v, MustParse("{Age: Int}")) {
		t.Error("t <= unrelated record should not hold")
	}
	if SubtypeIn(ctx, MustParse("{Name: String}"), v) {
		t.Error("nothing concrete is below an abstract variable")
	}
	if !SubtypeIn(ctx, v, v) {
		t.Error("a variable is below itself")
	}
}

func TestSubtypeRecursive(t *testing.T) {
	// rec t . {Value: Int, Next: t} is a subtype of rec t . {Value: Float, Next: t}.
	sub(t, "rec t . {Value: Int, Next: t}", "rec t . {Value: Float, Next: t}", true)
	sub(t, "rec t . {Value: Float, Next: t}", "rec t . {Value: Int, Next: t}", false)
	// A recursive type equals its unfolding.
	r := MustParse("rec t . {Value: Int, Next: t}").(*Rec)
	if !Equal(r, r.Unfold()) {
		t.Error("rec type should equal its unfolding")
	}
	// Extra fields still widen under recursion.
	sub(t, "rec t . {Value: Int, Tag: String, Next: t}", "rec t . {Value: Int, Next: t}", true)
	// Differently-shaped recursions that unfold to the same tree are equal.
	a := MustParse("rec t . {Next: t}")
	b := MustParse("rec t . {Next: {Next: t}}")
	if !Equal(a, b) {
		t.Errorf("one-step and two-step recursions denote the same tree")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Int", "Int", true},
		{"Int", "Float", false},
		{"{A: Int, B: String}", "{B: String, A: Int}", true}, // field order
		{"forall t . t -> t", "forall s . s -> s", true},
		{"List[{A: Int}]", "List[{A: Int}]", true},
		{"{A: Int}", "{A: Int, B: Int}", false},
	}
	for _, c := range cases {
		if got := Equal(MustParse(c.a), MustParse(c.b)); got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPersonEmployeeHierarchy(t *testing.T) {
	// The hierarchy used throughout the paper: Student-Employee ≤ Employee ≤ Person
	// and Student-Employee ≤ Student ≤ Person, all derived structurally with
	// no class declarations.
	person := MustParse("{Name: String, Address: {City: String}}")
	employee := MustParse("{Name: String, Address: {City: String}, Empno: Int, Dept: String}")
	student := MustParse("{Name: String, Address: {City: String}, StudentID: Int}")
	studentEmp := MustParse("{Name: String, Address: {City: String}, Empno: Int, Dept: String, StudentID: Int}")

	for _, c := range []struct {
		s, t Type
		want bool
	}{
		{employee, person, true},
		{student, person, true},
		{studentEmp, employee, true},
		{studentEmp, student, true},
		{studentEmp, person, true},
		{person, employee, false},
		{employee, student, false},
		{student, employee, false},
	} {
		if got := Subtype(c.s, c.t); got != c.want {
			t.Errorf("Subtype(%s, %s) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestSubtypeGetSignature(t *testing.T) {
	// The paper's headline type: Get : forall t . Database -> List[exists t' <= t . t'].
	// Check it round-trips and is self-subtype; instantiation covariance is
	// exercised in the core package.
	get := MustParse("forall t . List[Dynamic] -> List[exists u <= t . u]")
	if !Subtype(get, get) {
		t.Error("Get's type should be a subtype of itself")
	}
	if !Equal(get, MustParse("forall s . List[Dynamic] -> List[exists v <= s . v]")) {
		t.Error("alpha-variant Get types should be equal")
	}
}
