package types

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	// For each source, Parse then String then Parse again must give an
	// equal type, and the second print must be a fixed point.
	sources := []string{
		"Int",
		"Float",
		"String",
		"Bool",
		"Unit",
		"Top",
		"Bottom",
		"Dynamic",
		"Type",
		"{}",
		"{Name: String}",
		"{Address: {City: String, Zip: Int}, Name: String}",
		"[Circle: Float, Square: Float]",
		"List[Int]",
		"Set[{Name: String}]",
		"List[List[Set[Int]]]",
		"Int -> Int",
		"(Int, String) -> Bool",
		"() -> Unit",
		"Int -> Int -> Int", // right associative
		"(Int -> Int) -> Int",
		"forall t . t -> t",
		"forall t <= {Name: String} . t -> List[t]",
		"exists t <= {Name: String, Empno: Int} . t",
		"rec t . {Value: Int, Next: t}",
		"forall t . List[Dynamic] -> List[exists u <= t . u]",
	}
	for _, src := range sources {
		t1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := t1.String()
		t2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (printed %q): %v", src, printed, err)
			continue
		}
		if !Equal(t1, t2) {
			t.Errorf("round trip of %q changed the type: %s vs %s", src, t1, t2)
		}
		if t2.String() != printed {
			t.Errorf("printing is not a fixed point for %q: %q vs %q", src, printed, t2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"{Name String}",
		"{Name: String",
		"{Name: String, Name: Int}",
		"[Circle: Float, Circle: Int]",
		"[]", // empty variant
		"List[",
		"List Int",
		"Set[Int",
		"(Int, String)", // bare parameter list
		"forall . t",
		"forall t t",
		"rec . t",
		"Int ->",
		"Int Int",
		"{A: Int} extra",
		"<=",
		"!@#",
	}
	for _, src := range bad {
		if got, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %s, want error", src, got)
		}
	}
}

func TestParseFunctionAssociativity(t *testing.T) {
	got := MustParse("Int -> Int -> Int")
	want := NewFunc([]Type{Int}, NewFunc([]Type{Int}, Int))
	if !Equal(got, want) {
		t.Errorf("arrow should associate right: got %s", got)
	}
}

func TestParseBoundDefaultsToTop(t *testing.T) {
	q := MustParse("forall t . t").(*Quant)
	if q.Bound.Kind() != KindTop {
		t.Errorf("unbounded forall should default bound to Top, got %s", q.Bound)
	}
}

func TestParseWhitespaceInsensitive(t *testing.T) {
	a := MustParse("{Name:String,Age:Int}")
	b := MustParse("  {  Name :  String ,\n\tAge : Int }  ")
	if !Equal(a, b) {
		t.Error("whitespace should not matter")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of garbage should panic")
		}
	}()
	MustParse("{{{")
}

func TestStringContainsFields(t *testing.T) {
	s := MustParse("{Name: String, Age: Int}").String()
	for _, want := range []string{"Name: String", "Age: Int"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestKeyAlphaInvariance(t *testing.T) {
	a := MustParse("forall t . t -> List[t]")
	b := MustParse("forall zz . zz -> List[zz]")
	if Key(a) != Key(b) {
		t.Errorf("alpha-variants should share a key: %q vs %q", Key(a), Key(b))
	}
	c := MustParse("forall t . t -> Set[t]")
	if Key(a) == Key(c) {
		t.Error("distinct types should not share a key")
	}
}

func TestSubstituteCaptureAvoidance(t *testing.T) {
	// Substituting u := t into (forall t . u) must not capture: the result
	// binder is renamed.
	inner := NewForAll("t", nil, NewVar("u"))
	got := Substitute(inner, "u", NewVar("t")).(*Quant)
	if got.Param == "t" {
		t.Fatalf("binder captured the substituted variable: %s", got)
	}
	if v, ok := got.Body.(*Var); !ok || v.Name != "t" {
		t.Errorf("body should be the free t, got %s", got.Body)
	}
}

func TestFreeVars(t *testing.T) {
	ty := MustParse("forall t . (t, u) -> List[v]")
	free := FreeVars(ty)
	if !free["u"] || !free["v"] || free["t"] {
		t.Errorf("FreeVars = %v, want {u, v}", free)
	}
	if !Closed(MustParse("forall t . t")) {
		t.Error("closed type reported as open")
	}
	if Closed(MustParse("t")) {
		t.Error("bare variable reported as closed")
	}
}
