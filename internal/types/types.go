// Package types implements the structural type system of Buneman &
// Atkinson's SIGMOD '86 database programming language design: record types
// with width and depth subtyping, covariant lists and sets, contravariant
// functions, variants, Amber-style Dynamic, equi-recursive types, and
// Cardelli–Wegner bounded universal and existential quantification.
//
// Types are ordinary immutable Go values; the subtype order, lattice
// operations (meet/join), a parser, and a canonical printer are provided.
// Decidability is preserved by using Kernel-Fun rules for quantifiers and a
// coinductive (assumption-set) algorithm for recursive types, so every
// type-level computation terminates — a property the paper singles out as
// desirable for database programming languages.
package types

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind discriminates the concrete representations of Type.
type Kind int

// The kinds of type in the system.
const (
	KindInvalid Kind = iota
	KindInt          // Int: arbitrary-precision integers (represented as int64)
	KindFloat        // Float: IEEE-754 doubles; Int ≤ Float
	KindString       // String
	KindBool         // Bool
	KindUnit         // Unit: the one-value type
	KindTop          // Top: supertype of every type
	KindBottom       // Bottom: subtype of every type
	KindDynamic      // Dynamic: a value paired with its runtime type (Amber)
	KindTypeRep      // Type: runtime descriptions of types (Amber's typeOf)
	KindRecord       // {l1: T1, ..., ln: Tn}
	KindVariant      // [A: T1, ..., Z: Tn]
	KindList         // List[T]
	KindSet          // Set[T]
	KindFunc         // (T1, ..., Tn) -> U
	KindVar          // a type variable bound by forall/exists/rec
	KindForAll       // forall t <= B . T
	KindExists       // exists t <= B . T
	KindRec          // rec t . T (equi-recursive)
)

var kindNames = map[Kind]string{
	KindInvalid: "Invalid",
	KindInt:     "Int",
	KindFloat:   "Float",
	KindString:  "String",
	KindBool:    "Bool",
	KindUnit:    "Unit",
	KindTop:     "Top",
	KindBottom:  "Bottom",
	KindDynamic: "Dynamic",
	KindTypeRep: "Type",
	KindRecord:  "Record",
	KindVariant: "Variant",
	KindList:    "List",
	KindSet:     "Set",
	KindFunc:    "Func",
	KindVar:     "Var",
	KindForAll:  "ForAll",
	KindExists:  "Exists",
	KindRec:     "Rec",
}

// String returns the kind's name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Type is an immutable description of a set of values. Implementations are
// the *Basic, *Record, *Variant, *List, *Set, *Func, *Var, *Quant and *Rec
// structs below. Two types describing the same set of values may differ as
// Go pointers; use Equal for semantic equality and Subtype for the order.
type Type interface {
	// Kind reports which concrete representation this is.
	Kind() Kind
	// String renders the type in the concrete syntax accepted by Parse.
	String() string
}

// ---------------------------------------------------------------------------
// Basic types
// ---------------------------------------------------------------------------

// islot caches a node's canonical *Interned handle in the node itself, so
// Intern on an already-seen pointer is one atomic load — no global map, no
// eviction policy. Every concrete Type embeds it; the interner fills it on
// first use. Concurrent stores all write the same canonical handle, so the
// race-free atomic is enough.
type islot struct{ h atomic.Pointer[Interned] }

func (s *islot) internSlot() *atomic.Pointer[Interned] { return &s.h }

// Basic is a type with no structure: Int, Float, String, Bool, Unit, Top,
// Bottom, Dynamic and Type (the type of runtime type descriptions).
type Basic struct {
	islot
	kind Kind
}

// Shared instances of every basic type. Because Basic is stateless these are
// safe to compare by pointer, though Equal does not rely on that.
var (
	Int     = &Basic{kind: KindInt}
	Float   = &Basic{kind: KindFloat}
	String  = &Basic{kind: KindString}
	Bool    = &Basic{kind: KindBool}
	Unit    = &Basic{kind: KindUnit}
	Top     = &Basic{kind: KindTop}
	Bottom  = &Basic{kind: KindBottom}
	Dynamic = &Basic{kind: KindDynamic}
	TypeRep = &Basic{kind: KindTypeRep}
)

// Kind implements Type.
func (b *Basic) Kind() Kind { return b.kind }

// String implements Type.
func (b *Basic) String() string { return b.kind.String() }

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

// Field is a single labelled component of a record or variant type.
type Field struct {
	Label string
	Type  Type
}

// Record is a record type {l1: T1, ..., ln: Tn}. Fields are kept sorted by
// label; a record with more fields (or with pointwise-smaller field types)
// is a subtype: {Name: String, Age: Int} ≤ {Name: String}.
type Record struct {
	islot
	fields    []Field
	labelBits uint64 // bit per label hash; see LabelBits
}

// NewRecord builds a record type from the given fields. Labels must be
// distinct; NewRecord panics otherwise, since duplicate labels indicate a
// programming error rather than a recoverable condition.
func NewRecord(fields ...Field) *Record {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Label < fs[j].Label })
	for i := 1; i < len(fs); i++ {
		if fs[i].Label == fs[i-1].Label {
			panic(fmt.Sprintf("types: duplicate record label %q", fs[i].Label))
		}
	}
	return &Record{fields: fs, labelBits: labelBitsOf(fs)}
}

// LabelBit returns the signature bit for one label: a single set bit chosen
// by hashing the label. Label-set inclusion then has a necessary condition
// on the ORed signatures — a &^ b == 0 whenever labels(a) ⊆ labels(b) — so
// width subtyping and the value-level information order can reject
// incomparable records in one word operation before walking fields.
func LabelBit(label string) uint64 { return 1 << (hashKey(label) & 63) }

func labelBitsOf(fs []Field) uint64 {
	var bits uint64
	for _, f := range fs {
		bits |= LabelBit(f.Label)
	}
	return bits
}

// LabelBits returns the record's precomputed label signature: the OR of
// LabelBit over its labels.
func (r *Record) LabelBits() uint64 { return r.labelBits }

// Kind implements Type.
func (r *Record) Kind() Kind { return KindRecord }

// Len reports the number of fields.
func (r *Record) Len() int { return len(r.fields) }

// Field returns the i'th field in label order.
func (r *Record) Field(i int) Field { return r.fields[i] }

// Fields returns a copy of the fields in label order.
func (r *Record) Fields() []Field {
	fs := make([]Field, len(r.fields))
	copy(fs, r.fields)
	return fs
}

// Lookup returns the type of the named field, if present.
func (r *Record) Lookup(label string) (Type, bool) {
	i := sort.Search(len(r.fields), func(i int) bool { return r.fields[i].Label >= label })
	if i < len(r.fields) && r.fields[i].Label == label {
		return r.fields[i].Type, true
	}
	return nil, false
}

// String implements Type.
func (r *Record) String() string { return fieldString(r.fields, "{", "}") }

// ---------------------------------------------------------------------------
// Variants
// ---------------------------------------------------------------------------

// Variant is a tagged-union type [A: T1, ..., Z: Tn]. A variant with fewer
// tags is a subtype: [Circle: Float] ≤ [Circle: Float, Square: Float].
type Variant struct {
	islot
	fields    []Field
	labelBits uint64 // bit per tag hash; see LabelBits on Record
}

// NewVariant builds a variant type. Tags must be distinct; NewVariant panics
// otherwise.
func NewVariant(tags ...Field) *Variant {
	fs := make([]Field, len(tags))
	copy(fs, tags)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Label < fs[j].Label })
	for i := 1; i < len(fs); i++ {
		if fs[i].Label == fs[i-1].Label {
			panic(fmt.Sprintf("types: duplicate variant tag %q", fs[i].Label))
		}
	}
	return &Variant{fields: fs, labelBits: labelBitsOf(fs)}
}

// Kind implements Type.
func (v *Variant) Kind() Kind { return KindVariant }

// Len reports the number of tags.
func (v *Variant) Len() int { return len(v.fields) }

// Tag returns the i'th tag in label order.
func (v *Variant) Tag(i int) Field { return v.fields[i] }

// Lookup returns the type carried by the named tag, if present.
func (v *Variant) Lookup(tag string) (Type, bool) {
	i := sort.Search(len(v.fields), func(i int) bool { return v.fields[i].Label >= tag })
	if i < len(v.fields) && v.fields[i].Label == tag {
		return v.fields[i].Type, true
	}
	return nil, false
}

// String implements Type.
func (v *Variant) String() string { return fieldString(v.fields, "[", "]") }

func fieldString(fs []Field, open, close string) string {
	var b strings.Builder
	b.WriteString(open)
	for i, f := range fs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Label)
		b.WriteString(": ")
		b.WriteString(f.Type.String())
	}
	b.WriteString(close)
	return b.String()
}

// ---------------------------------------------------------------------------
// Lists and sets
// ---------------------------------------------------------------------------

// List is the type List[T] of finite sequences of T. Covariant.
type List struct {
	islot
	Elem Type
}

// NewList returns List[elem].
func NewList(elem Type) *List { return &List{Elem: elem} }

// Kind implements Type.
func (l *List) Kind() Kind { return KindList }

// String implements Type.
func (l *List) String() string { return "List[" + l.Elem.String() + "]" }

// Set is the type Set[T] of finite sets of T. Covariant.
type Set struct {
	islot
	Elem Type
}

// NewSet returns Set[elem].
func NewSet(elem Type) *Set { return &Set{Elem: elem} }

// Kind implements Type.
func (s *Set) Kind() Kind { return KindSet }

// String implements Type.
func (s *Set) String() string { return "Set[" + s.Elem.String() + "]" }

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

// Func is the type (P1, ..., Pn) -> R. Parameters are contravariant and the
// result covariant, as usual.
type Func struct {
	islot
	Params []Type
	Result Type
}

// NewFunc returns the function type with the given parameters and result.
func NewFunc(params []Type, result Type) *Func {
	ps := make([]Type, len(params))
	copy(ps, params)
	return &Func{Params: ps, Result: result}
}

// Kind implements Type.
func (f *Func) Kind() Kind { return KindFunc }

// String implements Type.
func (f *Func) String() string {
	var b strings.Builder
	if len(f.Params) == 1 && parenFree(f.Params[0]) {
		b.WriteString(f.Params[0].String())
	} else {
		b.WriteByte('(')
		for i, p := range f.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		b.WriteByte(')')
	}
	b.WriteString(" -> ")
	b.WriteString(f.Result.String())
	return b.String()
}

// parenFree reports whether t prints unambiguously as a sole function
// parameter without surrounding parentheses.
func parenFree(t Type) bool {
	switch t.Kind() {
	case KindFunc, KindForAll, KindExists, KindRec:
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// Type variables and binders
// ---------------------------------------------------------------------------

// Var is an occurrence of a type variable bound by an enclosing ForAll,
// Exists or Rec binder with the same Name. Free variables (no enclosing
// binder) are permitted in intermediate forms but are not subtypes of
// anything except via their bound in a Context.
type Var struct {
	islot
	Name string
}

// NewVar returns a variable occurrence with the given name.
func NewVar(name string) *Var { return &Var{Name: name} }

// Kind implements Type.
func (v *Var) Kind() Kind { return KindVar }

// String implements Type.
func (v *Var) String() string { return v.Name }

// Quant is a bounded quantified type: forall t <= Bound . Body or
// exists t <= Bound . Body, depending on kind (KindForAll or KindExists).
// The unbounded forms use Top as the bound.
type Quant struct {
	islot
	kind  Kind
	Param string
	Bound Type
	Body  Type
}

// NewForAll returns forall param <= bound . body. A nil bound means Top.
func NewForAll(param string, bound, body Type) *Quant {
	if bound == nil {
		bound = Top
	}
	return &Quant{kind: KindForAll, Param: param, Bound: bound, Body: body}
}

// NewExists returns exists param <= bound . body. A nil bound means Top.
//
// The paper's generic extraction function has exactly this shape in its
// result: Get : forall t . Database -> List[exists t' <= t . t'].
func NewExists(param string, bound, body Type) *Quant {
	if bound == nil {
		bound = Top
	}
	return &Quant{kind: KindExists, Param: param, Bound: bound, Body: body}
}

// Kind implements Type.
func (q *Quant) Kind() Kind { return q.kind }

// String implements Type.
func (q *Quant) String() string {
	kw := "forall"
	if q.kind == KindExists {
		kw = "exists"
	}
	if q.Bound.Kind() == KindTop {
		return fmt.Sprintf("%s %s . %s", kw, q.Param, q.Body)
	}
	return fmt.Sprintf("%s %s <= %s . %s", kw, q.Param, q.Bound, q.Body)
}

// Rec is an equi-recursive type rec t . Body, equal to its own unfolding
// Body[t := rec t . Body]. It lets schemas such as the paper's Part type —
// parts whose components are themselves parts — be expressed directly.
type Rec struct {
	islot
	Param string
	Body  Type

	unfold atomic.Value // Type; memoized Unfold
}

// NewRec returns rec param . body.
func NewRec(param string, body Type) *Rec { return &Rec{Param: param, Body: body} }

// Kind implements Type.
func (r *Rec) Kind() Kind { return KindRec }

// String implements Type.
func (r *Rec) String() string { return fmt.Sprintf("rec %s . %s", r.Param, r.Body) }

// Unfold returns Body with the bound variable replaced by the Rec itself.
// The result is memoized: the coinductive subtype algorithm unfolds the same
// Rec on every pass through a cycle, and a stable unfolding means the
// interner's pointer memo (and hence the assumption set) sees one pointer per
// cycle instead of a fresh substitution each time.
func (r *Rec) Unfold() Type {
	if u := r.unfold.Load(); u != nil {
		return u.(Type)
	}
	u := Substitute(r.Body, r.Param, r)
	r.unfold.Store(u)
	return u
}
