package types

import (
	"sync"
	"sync/atomic"
)

// This file implements hash-consed type interning. Intern(t) returns a
// canonical *Interned handle shared by every type alpha-equivalent to t, so
// type equivalence degrades to pointer comparison and the global subtype
// verdict cache can be keyed on handle pairs instead of freshly concatenated
// key strings. The paper observes that a database programming language
// performs "a certain amount of computation at the level of types"; interning
// is what keeps that computation off the Get hot path — the sharded extent
// engine in internal/core partitions and indexes extents by interned handle.

// Interned is the canonical handle of an equivalence class of
// alpha-equivalent types. Two types s and t satisfy Key(s) == Key(t) exactly
// when Intern(s) == Intern(t); the handle carries the canonical key and a
// precomputed structural hash so downstream consumers (the extent shards,
// the subtype cache) never rebuild either.
type Interned struct {
	t    Type
	key  string
	hash uint64
}

// Type returns the canonical representative of the equivalence class — the
// first type interned with this structure.
func (h *Interned) Type() Type { return h.t }

// Key returns the canonical alpha-invariant key (see Key).
func (h *Interned) Key() string { return h.key }

// Hash returns the precomputed FNV-1a hash of the canonical key. The extent
// engine uses it to pick shards.
func (h *Interned) Hash() uint64 { return h.hash }

// String renders the canonical representative.
func (h *Interned) String() string { return h.t.String() }

// internByKey maps canonical keys to their unique handle. It grows with the
// number of distinct type structures seen by the process, like the subtype
// verdict cache.
var internByKey sync.Map // string -> *Interned

// slotted is satisfied by every concrete type in this package: each node
// carries its own handle cache (islot), so Intern on a seen pointer is one
// atomic load with no shared map traffic and no eviction policy.
type slotted interface {
	internSlot() *atomic.Pointer[Interned]
}

// Intern returns the canonical handle for t. The first call on a node pays
// one Key construction; subsequent calls on the same pointer load the handle
// straight off the node, and calls on other pointers with the same structure
// return the same handle via the key table.
func Intern(t Type) *Interned {
	slot, ok := t.(slotted)
	if ok {
		if h := slot.internSlot().Load(); h != nil {
			return h
		}
	}
	k := Key(t)
	fresh := &Interned{t: t, key: k, hash: hashKey(k)}
	h, _ := internByKey.LoadOrStore(k, fresh)
	in := h.(*Interned)
	if ok {
		slot.internSlot().Store(in)
	}
	return in
}

// Canon returns the canonical representative type of t's equivalence class.
// Persistence decoders route loaded types through Canon so every image of a
// schema shares one in-memory representation (and therefore one entry in
// every type-keyed cache).
func Canon(t Type) Type { return Intern(t).t }

// hashKey is FNV-1a over the canonical key.
func hashKey(k string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return h
}
