package types

// This file implements the lattice structure on types: least upper bounds
// (Join), greatest lower bounds (Meet), and the consistency test the paper
// uses for schema evolution — two types are consistent when they have a
// common subtype with at least one value, so a database handle written at
// one type may be reopened at the other and the schema enriched to the meet.

// meetFuel bounds the unfolding of recursive types during Meet/Join. The
// subtype relation itself is exact (coinductive); the lattice operations on
// recursive types are approximated conservatively: if the bound is exceeded
// Join widens to Top and Meet reports failure.
const meetFuel = 64

// Join returns the least upper bound of s and t. It always exists because
// Top closes the order; structurally unrelated types join to Top.
func Join(s, t Type) Type { return join(s, t, meetFuel) }

func join(s, t Type, fuel int) Type {
	if Subtype(s, t) {
		return t
	}
	if Subtype(t, s) {
		return s
	}
	if fuel <= 0 {
		return Top
	}
	if r, ok := s.(*Rec); ok {
		return join(r.Unfold(), t, fuel-1)
	}
	if r, ok := t.(*Rec); ok {
		return join(s, r.Unfold(), fuel-1)
	}
	switch st := s.(type) {
	case *Basic:
		// Int/Float handled by the subtype fast paths above; anything that
		// reaches here is unrelated.
		return Top
	case *Record:
		tr, ok := t.(*Record)
		if !ok {
			return Top
		}
		// Width: keep only the common labels; depth: join their types.
		var fs []Field
		for i := 0; i < st.Len(); i++ {
			f := st.Field(i)
			if ot, ok := tr.Lookup(f.Label); ok {
				fs = append(fs, Field{Label: f.Label, Type: join(f.Type, ot, fuel-1)})
			}
		}
		return NewRecord(fs...)
	case *Variant:
		tv, ok := t.(*Variant)
		if !ok {
			return Top
		}
		// Union of tags, joining the payloads of shared tags.
		merged := map[string]Type{}
		for i := 0; i < st.Len(); i++ {
			f := st.Tag(i)
			merged[f.Label] = f.Type
		}
		for i := 0; i < tv.Len(); i++ {
			f := tv.Tag(i)
			if prev, ok := merged[f.Label]; ok {
				merged[f.Label] = join(prev, f.Type, fuel-1)
			} else {
				merged[f.Label] = f.Type
			}
		}
		fs := make([]Field, 0, len(merged))
		for l, ty := range merged {
			fs = append(fs, Field{Label: l, Type: ty})
		}
		return NewVariant(fs...)
	case *List:
		tl, ok := t.(*List)
		if !ok {
			return Top
		}
		return NewList(join(st.Elem, tl.Elem, fuel-1))
	case *Set:
		ts, ok := t.(*Set)
		if !ok {
			return Top
		}
		return NewSet(join(st.Elem, ts.Elem, fuel-1))
	case *Func:
		tf, ok := t.(*Func)
		if !ok || len(st.Params) != len(tf.Params) {
			return Top
		}
		ps := make([]Type, len(st.Params))
		for i := range ps {
			p, ok := meet(st.Params[i], tf.Params[i], fuel-1)
			if !ok {
				return Top
			}
			ps[i] = p
		}
		return &Func{Params: ps, Result: join(st.Result, tf.Result, fuel-1)}
	default:
		// Quantified types and variables: no useful bound short of Top
		// unless they are equal, which the fast paths covered.
		return Top
	}
}

// Meet returns the greatest lower bound of s and t and reports whether it is
// inhabited. ok is false when the only common subtype is (equivalent to)
// Bottom — e.g. Int vs String, or records that disagree on a field — in
// which case the returned type is Bottom.
func Meet(s, t Type) (Type, bool) { return meet(s, t, meetFuel) }

func meet(s, t Type, fuel int) (Type, bool) {
	if Subtype(s, t) {
		return s, s.Kind() != KindBottom
	}
	if Subtype(t, s) {
		return t, t.Kind() != KindBottom
	}
	if fuel <= 0 {
		return Bottom, false
	}
	if r, ok := s.(*Rec); ok {
		return meet(r.Unfold(), t, fuel-1)
	}
	if r, ok := t.(*Rec); ok {
		return meet(s, r.Unfold(), fuel-1)
	}
	switch st := s.(type) {
	case *Record:
		tr, ok := t.(*Record)
		if !ok {
			return Bottom, false
		}
		// Union of labels; common labels must have an inhabited meet, since
		// a record type with an uninhabited field type is itself empty.
		merged := map[string]Type{}
		for i := 0; i < st.Len(); i++ {
			f := st.Field(i)
			merged[f.Label] = f.Type
		}
		for i := 0; i < tr.Len(); i++ {
			f := tr.Field(i)
			if prev, ok := merged[f.Label]; ok {
				m, ok := meet(prev, f.Type, fuel-1)
				if !ok {
					return Bottom, false
				}
				merged[f.Label] = m
			} else {
				merged[f.Label] = f.Type
			}
		}
		fs := make([]Field, 0, len(merged))
		for l, ty := range merged {
			fs = append(fs, Field{Label: l, Type: ty})
		}
		return NewRecord(fs...), true
	case *Variant:
		tv, ok := t.(*Variant)
		if !ok {
			return Bottom, false
		}
		// Intersection of tags; a variant with no tags is empty.
		var fs []Field
		for i := 0; i < st.Len(); i++ {
			f := st.Tag(i)
			if ot, ok := tv.Lookup(f.Label); ok {
				if m, ok := meet(f.Type, ot, fuel-1); ok {
					fs = append(fs, Field{Label: f.Label, Type: m})
				}
			}
		}
		if len(fs) == 0 {
			return Bottom, false
		}
		return NewVariant(fs...), true
	case *List:
		tl, ok := t.(*List)
		if !ok {
			return Bottom, false
		}
		// List[Bottom] is inhabited (by the empty list), so an uninhabited
		// element meet does not make the list meet fail.
		m, ok := meet(st.Elem, tl.Elem, fuel-1)
		if !ok {
			m = Bottom
		}
		return NewList(m), true
	case *Set:
		ts, ok := t.(*Set)
		if !ok {
			return Bottom, false
		}
		m, ok := meet(st.Elem, ts.Elem, fuel-1)
		if !ok {
			m = Bottom
		}
		return NewSet(m), true
	case *Func:
		tf, ok := t.(*Func)
		if !ok || len(st.Params) != len(tf.Params) {
			return Bottom, false
		}
		ps := make([]Type, len(st.Params))
		for i := range ps {
			ps[i] = join(st.Params[i], tf.Params[i], fuel-1)
		}
		r, ok := meet(st.Result, tf.Result, fuel-1)
		if !ok {
			return Bottom, false
		}
		return &Func{Params: ps, Result: r}, true
	default:
		return Bottom, false
	}
}

// Consistent reports whether s and t have a common inhabited subtype. The
// paper: a handle stored at DBType may be reopened at DBType' when DBType is
// "consistent with it, i.e. there is a common subtype of both", enriching
// the database's schema to the meet.
func Consistent(s, t Type) bool {
	_, ok := Meet(s, t)
	return ok
}
