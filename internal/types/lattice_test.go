package types

import "testing"

func TestJoinBasics(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"Int", "Int", "Int"},
		{"Int", "Float", "Float"},
		{"Int", "String", "Top"},
		{"Int", "Top", "Top"},
		{"Bottom", "Int", "Int"},
		{"{Name: String, Age: Int}", "{Name: String, Dept: String}", "{Name: String}"},
		{"{Name: String, Age: Int}", "{Salary: Float}", "{}"},
		{"List[Int]", "List[Float]", "List[Float]"},
		{"Set[{A: Int, B: Int}]", "Set[{A: Int, C: Int}]", "Set[{A: Int}]"},
		{"List[Int]", "Set[Int]", "Top"},
		{"[Circle: Float]", "[Square: Float]", "[Circle: Float, Square: Float]"},
		{"Int -> Int", "Int -> Float", "Int -> Float"},
		{"Int -> Int", "Float -> Int", "Int -> Int"},
	}
	for _, c := range cases {
		got := Join(MustParse(c.a), MustParse(c.b))
		if !Equal(got, MustParse(c.want)) {
			t.Errorf("Join(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestMeetBasics(t *testing.T) {
	cases := []struct {
		a, b, want string
		ok         bool
	}{
		{"Int", "Int", "Int", true},
		{"Int", "Float", "Int", true},
		{"Int", "String", "Bottom", false},
		{"Int", "Top", "Int", true},
		{"Bottom", "Int", "Bottom", false},
		// The schema-evolution case: two record types that disagree on no
		// field are consistent; the meet carries both sets of fields.
		{"{Name: String, Age: Int}", "{Name: String, Dept: String}",
			"{Name: String, Age: Int, Dept: String}", true},
		// Records that disagree on a field are inconsistent.
		{"{Age: Int}", "{Age: String}", "Bottom", false},
		{"List[Int]", "List[Float]", "List[Int]", true},
		// List meets never fail outright: List[Bottom] has the empty list.
		{"List[Int]", "List[String]", "List[Bottom]", true},
		{"Set[Int]", "List[Int]", "Bottom", false},
		{"[Circle: Float, Square: Float]", "[Circle: Int, Tri: Float]", "[Circle: Int]", true},
		{"[Circle: Float]", "[Square: Float]", "Bottom", false},
		{"Int -> Int", "Float -> Int", "Float -> Int", true},
	}
	for _, c := range cases {
		got, ok := Meet(MustParse(c.a), MustParse(c.b))
		if ok != c.ok {
			t.Errorf("Meet(%s, %s) ok = %v, want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if !Equal(got, MustParse(c.want)) {
			t.Errorf("Meet(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestMeetIsLowerBound(t *testing.T) {
	pairs := [][2]string{
		{"{Name: String, Age: Int}", "{Name: String, Dept: String}"},
		{"Int", "Float"},
		{"List[{A: Int}]", "List[{B: Int}]"},
		{"[A: Int, B: Int]", "[B: Float, C: Int]"},
	}
	for _, pr := range pairs {
		a, b := MustParse(pr[0]), MustParse(pr[1])
		m, ok := Meet(a, b)
		if !ok {
			t.Errorf("Meet(%s, %s) unexpectedly failed", pr[0], pr[1])
			continue
		}
		if !Subtype(m, a) || !Subtype(m, b) {
			t.Errorf("Meet(%s, %s) = %s is not a lower bound", pr[0], pr[1], m)
		}
	}
}

func TestJoinIsUpperBound(t *testing.T) {
	pairs := [][2]string{
		{"{Name: String, Age: Int}", "{Name: String, Dept: String}"},
		{"Int", "String"},
		{"List[{A: Int}]", "List[{A: Int, B: Int}]"},
		{"Int -> Int", "Float -> Float"},
	}
	for _, pr := range pairs {
		a, b := MustParse(pr[0]), MustParse(pr[1])
		j := Join(a, b)
		if !Subtype(a, j) || !Subtype(b, j) {
			t.Errorf("Join(%s, %s) = %s is not an upper bound", pr[0], pr[1], j)
		}
	}
}

func TestConsistent(t *testing.T) {
	// The paper's DBType / DBType' scenario: consistent record types can be
	// used to enrich a stored database's schema; inconsistent ones cannot.
	cases := []struct {
		a, b string
		want bool
	}{
		{"{Employees: Set[{Name: String}]}", "{Employees: Set[{Name: String, Empno: Int}]}", true},
		{"{Employees: Set[{Name: String}]}", "{Departments: Set[{Dept: String}]}", true},
		{"{Employees: Set[{Name: String}]}", "{Employees: Int}", false},
		{"Int", "Float", true},
		{"Int", "String", false},
	}
	for _, c := range cases {
		if got := Consistent(MustParse(c.a), MustParse(c.b)); got != c.want {
			t.Errorf("Consistent(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMeetRecursiveConservative(t *testing.T) {
	// Meets involving recursive types are conservative but must terminate.
	a := MustParse("rec t . {Value: Int, Next: t}")
	b := MustParse("rec t . {Value: Float, Next: t}")
	m, ok := Meet(a, b)
	if !ok {
		t.Fatalf("Meet of comparable recursive types failed")
	}
	if !Equal(m, a) {
		t.Errorf("Meet = %s, want %s (the smaller of two comparable types)", m, a)
	}
	j := Join(a, b)
	if !Equal(j, b) {
		t.Errorf("Join = %s, want %s", j, b)
	}
}
