package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genType builds a random closed type of bounded depth. It favours records,
// since record subtyping is the paper's main vehicle for inheritance.
func genType(r *rand.Rand, depth int) Type {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return Int
		case 1:
			return Float
		case 2:
			return String
		case 3:
			return Bool
		case 4:
			return Unit
		default:
			return Top
		}
	}
	switch r.Intn(10) {
	case 0, 1, 2, 3:
		n := r.Intn(4)
		labels := []string{"A", "B", "C", "D", "E"}
		r.Shuffle(len(labels), func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
		fs := make([]Field, n)
		for i := 0; i < n; i++ {
			fs[i] = Field{Label: labels[i], Type: genType(r, depth-1)}
		}
		return NewRecord(fs...)
	case 4:
		return NewList(genType(r, depth-1))
	case 5:
		return NewSet(genType(r, depth-1))
	case 6:
		n := r.Intn(2) + 1
		labels := []string{"P", "Q", "R"}
		fs := make([]Field, n)
		for i := 0; i < n; i++ {
			fs[i] = Field{Label: labels[i], Type: genType(r, depth-1)}
		}
		return NewVariant(fs...)
	case 7:
		np := r.Intn(3)
		ps := make([]Type, np)
		for i := range ps {
			ps[i] = genType(r, depth-1)
		}
		return NewFunc(ps, genType(r, depth-1))
	case 8:
		return NewForAll("t", genType(r, depth-1), NewList(NewVar("t")))
	default:
		return genType(r, depth-1)
	}
}

// randType adapts genType to testing/quick.
type randType struct{ T Type }

// Generate implements quick.Generator.
func (randType) Generate(r *rand.Rand, size int) reflect.Value {
	d := size
	if d > 4 {
		d = 4
	}
	return reflect.ValueOf(randType{T: genType(r, d)})
}

var quickCfg = &quick.Config{MaxCount: 400}

func TestQuickReflexive(t *testing.T) {
	f := func(a randType) bool { return Subtype(a.T, a.T) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTopBottom(t *testing.T) {
	f := func(a randType) bool {
		return Subtype(a.T, Top) && Subtype(Bottom, a.T)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIsUpperBound(t *testing.T) {
	f := func(a, b randType) bool {
		j := Join(a.T, b.T)
		return Subtype(a.T, j) && Subtype(b.T, j)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMeetIsLowerBound(t *testing.T) {
	f := func(a, b randType) bool {
		m, ok := Meet(a.T, b.T)
		if !ok {
			return true // failed meets claim nothing
		}
		return Subtype(m, a.T) && Subtype(m, b.T)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMeetBelowJoin(t *testing.T) {
	f := func(a, b randType) bool {
		m, ok := Meet(a.T, b.T)
		if !ok {
			return true
		}
		return Subtype(m, Join(a.T, b.T))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtypeAgreesWithUncached(t *testing.T) {
	f := func(a, b randType) bool {
		return Subtype(a.T, b.T) == SubtypeUncached(a.T, b.T)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(a randType) bool {
		parsed, err := Parse(a.T.String())
		return err == nil && Equal(parsed, a.T)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDroppingFieldsWidens(t *testing.T) {
	// For any random record, removing a field yields a supertype; this is
	// exactly the Person/Employee relationship of the paper.
	f := func(a randType, which uint8) bool {
		rec, ok := a.T.(*Record)
		if !ok || rec.Len() == 0 {
			return true
		}
		drop := int(which) % rec.Len()
		var fs []Field
		for i := 0; i < rec.Len(); i++ {
			if i != drop {
				fs = append(fs, rec.Field(i))
			}
		}
		wider := NewRecord(fs...)
		return Subtype(rec, wider) && (Equal(rec, wider) || !Subtype(wider, rec))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTransitivityOnChains(t *testing.T) {
	// Random unrelated pairs are rarely comparable, so build comparable
	// chains deliberately: T'' adds fields to T' adds fields to T. Then
	// subtyping must be transitive along the chain.
	f := func(a randType, seed int64) bool {
		rec, ok := a.T.(*Record)
		if !ok {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		grow := func(t *Record, label string) *Record {
			fs := t.Fields()
			fs = append(fs, Field{Label: label, Type: genType(rng, 1)})
			return NewRecord(fs...)
		}
		t1 := grow(rec, "ZZ1")
		t2 := grow(t1, "ZZ2")
		return Subtype(t2, t1) && Subtype(t1, rec) && Subtype(t2, rec)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinCommutes(t *testing.T) {
	f := func(a, b randType) bool {
		return Equal(Join(a.T, b.T), Join(b.T, a.T))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMeetCommutes(t *testing.T) {
	f := func(a, b randType) bool {
		m1, ok1 := Meet(a.T, b.T)
		m2, ok2 := Meet(b.T, a.T)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || Equal(m1, m2)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyDeterminesEqual(t *testing.T) {
	f := func(a, b randType) bool {
		if Key(a.T) == Key(b.T) {
			return Equal(a.T, b.T)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubstituteIdentityOnClosed(t *testing.T) {
	f := func(a randType) bool {
		// Substituting for a variable that does not occur is the identity.
		return Equal(Substitute(a.T, "zzz_not_present", Int), a.T)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
