package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Substitute returns t with every free occurrence of the variable named
// param replaced by repl. Bound occurrences (under a binder reusing the same
// name) are left alone; binders whose parameter would capture a free
// variable of repl are alpha-renamed first.
func Substitute(t Type, param string, repl Type) Type {
	return substitute(t, param, repl, FreeVars(repl))
}

func substitute(t Type, param string, repl Type, avoid map[string]bool) Type {
	switch tt := t.(type) {
	case *Basic:
		return tt
	case *Var:
		if tt.Name == param {
			return repl
		}
		return tt
	case *Record:
		fs := make([]Field, tt.Len())
		changed := false
		for i := range fs {
			f := tt.Field(i)
			nt := substitute(f.Type, param, repl, avoid)
			if nt != f.Type {
				changed = true
			}
			fs[i] = Field{Label: f.Label, Type: nt}
		}
		if !changed {
			return tt
		}
		return NewRecord(fs...)
	case *Variant:
		fs := make([]Field, tt.Len())
		changed := false
		for i := range fs {
			f := tt.Tag(i)
			nt := substitute(f.Type, param, repl, avoid)
			if nt != f.Type {
				changed = true
			}
			fs[i] = Field{Label: f.Label, Type: nt}
		}
		if !changed {
			return tt
		}
		return NewVariant(fs...)
	case *List:
		ne := substitute(tt.Elem, param, repl, avoid)
		if ne == tt.Elem {
			return tt
		}
		return NewList(ne)
	case *Set:
		ne := substitute(tt.Elem, param, repl, avoid)
		if ne == tt.Elem {
			return tt
		}
		return NewSet(ne)
	case *Func:
		ps := make([]Type, len(tt.Params))
		changed := false
		for i, p := range tt.Params {
			ps[i] = substitute(p, param, repl, avoid)
			if ps[i] != p {
				changed = true
			}
		}
		nr := substitute(tt.Result, param, repl, avoid)
		if nr != tt.Result {
			changed = true
		}
		if !changed {
			return tt
		}
		return &Func{Params: ps, Result: nr}
	case *Quant:
		bound := substitute(tt.Bound, param, repl, avoid)
		if tt.Param == param {
			// The binder shadows param inside the body.
			if bound == tt.Bound {
				return tt
			}
			return &Quant{kind: tt.kind, Param: tt.Param, Bound: bound, Body: tt.Body}
		}
		p, body := freshen(tt.Param, tt.Body, avoid)
		nb := substitute(body, param, repl, avoid)
		if p == tt.Param && bound == tt.Bound && nb == tt.Body {
			return tt
		}
		return &Quant{kind: tt.kind, Param: p, Bound: bound, Body: nb}
	case *Rec:
		if tt.Param == param {
			return tt
		}
		p, body := freshen(tt.Param, tt.Body, avoid)
		nb := substitute(body, param, repl, avoid)
		if p == tt.Param && nb == tt.Body {
			return tt
		}
		return &Rec{Param: p, Body: nb}
	default:
		panic(fmt.Sprintf("types: substitute: unknown type %T", t))
	}
}

// freshen alpha-renames the binder param within body if param appears in the
// avoid set, returning the (possibly new) parameter name and rewritten body.
func freshen(param string, body Type, avoid map[string]bool) (string, Type) {
	if !avoid[param] {
		return param, body
	}
	n := param
	for i := 1; ; i++ {
		n = param + strconv.Itoa(i)
		if !avoid[n] {
			break
		}
	}
	return n, substitute(body, param, NewVar(n), map[string]bool{})
}

// freshName returns a name based on base that is absent from all the given
// sets. If base itself is absent everywhere it is returned unchanged.
func freshName(base string, avoid ...map[string]bool) string {
	taken := func(n string) bool {
		for _, m := range avoid {
			if m[n] {
				return true
			}
		}
		return false
	}
	if !taken(base) {
		return base
	}
	for i := 1; ; i++ {
		n := base + strconv.Itoa(i)
		if !taken(n) {
			return n
		}
	}
}

// FreeVars returns the set of names of type variables occurring free in t.
func FreeVars(t Type) map[string]bool {
	free := map[string]bool{}
	collectFree(t, map[string]int{}, free)
	return free
}

func collectFree(t Type, bound map[string]int, free map[string]bool) {
	switch tt := t.(type) {
	case *Basic:
	case *Var:
		if bound[tt.Name] == 0 {
			free[tt.Name] = true
		}
	case *Record:
		for i := 0; i < tt.Len(); i++ {
			collectFree(tt.Field(i).Type, bound, free)
		}
	case *Variant:
		for i := 0; i < tt.Len(); i++ {
			collectFree(tt.Tag(i).Type, bound, free)
		}
	case *List:
		collectFree(tt.Elem, bound, free)
	case *Set:
		collectFree(tt.Elem, bound, free)
	case *Func:
		for _, p := range tt.Params {
			collectFree(p, bound, free)
		}
		collectFree(tt.Result, bound, free)
	case *Quant:
		collectFree(tt.Bound, bound, free)
		bound[tt.Param]++
		collectFree(tt.Body, bound, free)
		bound[tt.Param]--
	case *Rec:
		bound[tt.Param]++
		collectFree(tt.Body, bound, free)
		bound[tt.Param]--
	default:
		panic(fmt.Sprintf("types: freeVars: unknown type %T", t))
	}
}

// Key returns a canonical, alpha-invariant string for t: bound variables are
// printed as de Bruijn indices, so alpha-equivalent types share a key. It is
// suitable for use as a map key in caches.
func Key(t Type) string {
	var b strings.Builder
	writeKey(&b, t, nil)
	return b.String()
}

func writeKey(b *strings.Builder, t Type, binders []string) {
	switch tt := t.(type) {
	case *Basic:
		b.WriteString(tt.kind.String())
	case *Var:
		for i := len(binders) - 1; i >= 0; i-- {
			if binders[i] == tt.Name {
				fmt.Fprintf(b, "#%d", len(binders)-1-i)
				return
			}
		}
		b.WriteByte('$')
		b.WriteString(tt.Name)
	case *Record:
		b.WriteByte('{')
		for i := 0; i < tt.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			f := tt.Field(i)
			b.WriteString(f.Label)
			b.WriteByte(':')
			writeKey(b, f.Type, binders)
		}
		b.WriteByte('}')
	case *Variant:
		b.WriteByte('[')
		for i := 0; i < tt.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			f := tt.Tag(i)
			b.WriteString(f.Label)
			b.WriteByte(':')
			writeKey(b, f.Type, binders)
		}
		b.WriteByte(']')
	case *List:
		b.WriteString("L[")
		writeKey(b, tt.Elem, binders)
		b.WriteByte(']')
	case *Set:
		b.WriteString("S[")
		writeKey(b, tt.Elem, binders)
		b.WriteByte(']')
	case *Func:
		b.WriteByte('(')
		for i, p := range tt.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			writeKey(b, p, binders)
		}
		b.WriteString(")->")
		writeKey(b, tt.Result, binders)
	case *Quant:
		if tt.kind == KindForAll {
			b.WriteString("∀<=")
		} else {
			b.WriteString("∃<=")
		}
		writeKey(b, tt.Bound, binders)
		b.WriteByte('.')
		writeKey(b, tt.Body, append(binders, tt.Param))
	case *Rec:
		b.WriteString("µ.")
		writeKey(b, tt.Body, append(binders, tt.Param))
	default:
		panic(fmt.Sprintf("types: key: unknown type %T", t))
	}
}

// Closed reports whether t has no free type variables.
func Closed(t Type) bool { return len(FreeVars(t)) == 0 }
