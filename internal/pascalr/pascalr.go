// Package pascalr emulates the persistence model of Pascal/R [Schm77], the
// first database programming language the paper surveys and the clearest
// early example of *separating* type, extent and persistence:
//
//	type EmpRel = relation of Employee;
//	var EmpDB = database
//	    Employees: EmpRel
//	end;
//
// A relation type provides extents; persistence is obtained by placing a
// relation in a database, "controlled in the same way that it is for
// files". The model's restriction — and the reason the paper moves past it
// — is that "only relation data types can be placed in a database": no
// nested structure, no arbitrary values, no inheritance.
//
// The package enforces exactly those restrictions, so the contrast with
// PS-algol-style intrinsic persistence (any value persists) is executable:
// see TestOnlyRelationsPersist and the examples in the tests.
package pascalr

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/relation"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Errors returned by Pascal/R database operations.
var (
	// ErrNotRelation reports an attempt to declare a database field whose
	// type is not a relation of flat records — the restriction the paper
	// criticizes.
	ErrNotRelation = errors.New("pascalr: only relation data types can be placed in a database")
	ErrNoField     = errors.New("pascalr: no such database field")
	ErrCorrupt     = errors.New("pascalr: corrupt database file")
)

// RelType is Pascal/R's `relation of T`: the element type must be a flat
// record of atomic attributes (Pascal records of scalars).
type RelType struct {
	Elem *types.Record
}

// NewRelType validates that elem is a legal Pascal/R tuple type: a record
// whose attributes are all scalar (Int, Float, String, Bool).
func NewRelType(elem types.Type) (RelType, error) {
	rec, ok := elem.(*types.Record)
	if !ok {
		return RelType{}, fmt.Errorf("%w: element type %s is not a record", ErrNotRelation, elem)
	}
	for i := 0; i < rec.Len(); i++ {
		f := rec.Field(i)
		switch f.Type.Kind() {
		case types.KindInt, types.KindFloat, types.KindString, types.KindBool:
		default:
			return RelType{}, fmt.Errorf("%w: attribute %q has non-scalar type %s",
				ErrNotRelation, f.Label, f.Type)
		}
	}
	return RelType{Elem: rec}, nil
}

// Database is a Pascal/R database: a fixed set of named relations declared
// up front, persisted wholesale like a file.
type Database struct {
	mu     sync.Mutex
	fs     iofault.FS
	path   string
	schema map[string]RelType
	rels   map[string]*relation.Flat
}

// Declare opens (or creates) a database at path with the given schema: a
// map from field names to `relation of T` types. An existing file is
// loaded; its contents must match the declared schema.
func Declare(path string, schema map[string]RelType) (*Database, error) {
	return DeclareFS(iofault.OS{}, path, schema)
}

// DeclareFS is Declare over an explicit file system — the seam the fault
// tests inject through.
func DeclareFS(fsys iofault.FS, path string, schema map[string]RelType) (*Database, error) {
	db := &Database{fs: fsys, path: path, schema: map[string]RelType{}, rels: map[string]*relation.Flat{}}
	for name, rt := range schema {
		db.schema[name] = rt
		attrs := make([]string, 0, rt.Elem.Len())
		for i := 0; i < rt.Elem.Len(); i++ {
			attrs = append(attrs, rt.Elem.Field(i).Label)
		}
		db.rels[name] = relation.NewFlat(attrs...)
	}
	if _, err := fsys.Stat(path); err == nil {
		if err := db.load(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Rel returns the named relation for querying and updating.
func (db *Database) Rel(name string) (*relation.Flat, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoField, name)
	}
	return r, nil
}

// Insert adds a tuple to the named relation, checking it against the
// declared element type (static typing in spirit; dynamic here because the
// host is Go).
func (db *Database) Insert(name string, tuple *value.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rels[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoField, name)
	}
	if !value.Conforms(tuple, db.schema[name].Elem) {
		return fmt.Errorf("pascalr: tuple %s does not conform to %s", tuple, db.schema[name].Elem)
	}
	return r.Insert(tuple)
}

// Fields lists the declared relation names in sorted order.
func (db *Database) Fields() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.schema))
	for n := range db.schema {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Save writes the whole database to its file — persistence "controlled in
// the same way that it is for files": whole-value, no sharing, no
// incrementality. The replace is atomic and durable (temp file, fsync,
// rename, directory fsync).
func (db *Database) Save() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return iofault.AtomicWriteFile(db.fs, db.path, func(w io.Writer) error {
		enc := codec.NewEncoder(w)
		names := make([]string, 0, len(db.rels))
		for n := range db.rels {
			names = append(names, n)
		}
		sort.Strings(names)
		if err := enc.Value(value.Int(int64(len(names)))); err != nil {
			return err
		}
		for _, n := range names {
			if err := enc.Value(value.String(n)); err != nil {
				return err
			}
			tuples := db.rels[n].Tuples()
			lst := value.NewList()
			for _, t := range tuples {
				lst.Append(t)
			}
			if err := enc.Value(lst); err != nil {
				return err
			}
		}
		return enc.Flush()
	})
}

// load reads the database file into the declared relations.
func (db *Database) load() error {
	f, err := db.fs.OpenFile(db.path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	dec, err := codec.NewDecoder(f)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	nv, err := dec.Value()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n, ok := nv.(value.Int)
	if !ok || n < 0 {
		return fmt.Errorf("%w: bad field count", ErrCorrupt)
	}
	for i := int64(0); i < int64(n); i++ {
		namev, err := dec.Value()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		name, ok := namev.(value.String)
		if !ok {
			return fmt.Errorf("%w: field name is %T", ErrCorrupt, namev)
		}
		lv, err := dec.Value()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		lst, ok := lv.(*value.List)
		if !ok {
			return fmt.Errorf("%w: field %q is not a relation image", ErrCorrupt, name)
		}
		rel, ok := db.rels[string(name)]
		if !ok {
			// A field the current schema does not declare: the paper-era
			// behaviour is a mismatch error, like reading a file at the
			// wrong type.
			return fmt.Errorf("%w: stored field %q not in the declared schema", ErrCorrupt, name)
		}
		for _, t := range lst.Elems {
			rec, ok := t.(*value.Record)
			if !ok {
				return fmt.Errorf("%w: tuple is %T", ErrCorrupt, t)
			}
			if !value.Conforms(rec, db.schema[string(name)].Elem) {
				return fmt.Errorf("%w: stored tuple %s does not conform to %s",
					ErrCorrupt, rec, db.schema[string(name)].Elem)
			}
			if err := rel.Insert(rec); err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
	}
	return nil
}
