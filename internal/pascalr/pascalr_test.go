package pascalr

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dbpl/internal/relation"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

func employeeRel(t *testing.T) RelType {
	t.Helper()
	rt, err := NewRelType(types.MustParse("{Name: String, Dept: String, Salary: Int}"))
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestOnlyRelationsPersist(t *testing.T) {
	// The restriction the paper criticizes: element types must be flat
	// records of scalars.
	bad := []string{
		"Int",                    // not a record at all
		"{Addr: {City: String}}", // nested record
		"{Tags: List[String]}",   // bulk attribute
		"{Rel: Set[{A: Int}]}",   // relation-valued attribute (non-1NF)
		"{F: Int -> Int}",        // function attribute
	}
	for _, src := range bad {
		if _, err := NewRelType(types.MustParse(src)); !errors.Is(err, ErrNotRelation) {
			t.Errorf("NewRelType(%s) err = %v, want ErrNotRelation", src, err)
		}
	}
	if _, err := NewRelType(types.MustParse("{Name: String, Salary: Int}")); err != nil {
		t.Errorf("flat scalar record rejected: %v", err)
	}
}

func TestDeclareInsertSaveReopen(t *testing.T) {
	// The paper's EmpDB: var EmpDB = database Employees: EmpRel end.
	path := filepath.Join(t.TempDir(), "empdb")
	schema := map[string]RelType{"Employees": employeeRel(t)}
	db, err := Declare(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		name, dept string
		sal        int64
	}{{"J Doe", "Sales", 100}, {"M Dee", "Manuf", 200}} {
		err := db.Insert("Employees", value.Rec(
			"Name", value.String(e.name), "Dept", value.String(e.dept),
			"Salary", value.Int(e.sal)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	// A later program re-declares the same database and finds the data.
	db2, err := Declare(path, schema)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db2.Rel("Employees")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("reopened relation has %d tuples, want 2", rel.Len())
	}
	// The relation supports the usual algebra.
	sales := relation.SelectFlat(rel, func(r *value.Record) bool {
		d, _ := r.Get("Dept")
		return value.Equal(d, value.String("Sales"))
	})
	if sales.Len() != 1 {
		t.Errorf("select = %d", sales.Len())
	}
}

func TestInsertConformance(t *testing.T) {
	db, err := Declare(filepath.Join(t.TempDir(), "db"),
		map[string]RelType{"Employees": employeeRel(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Employees", value.Rec("Name", value.String("X"))); err == nil {
		t.Error("non-conforming tuple accepted")
	}
	if err := db.Insert("Nope", value.Rec()); !errors.Is(err, ErrNoField) {
		t.Errorf("err = %v, want ErrNoField", err)
	}
	if _, err := db.Rel("Nope"); !errors.Is(err, ErrNoField) {
		t.Errorf("err = %v, want ErrNoField", err)
	}
	if fs := db.Fields(); len(fs) != 1 || fs[0] != "Employees" {
		t.Errorf("Fields = %v", fs)
	}
}

func TestSchemaMismatchOnReopen(t *testing.T) {
	// Reading the file at a different schema fails — file-style
	// persistence has no subtype views, unlike the intrinsic store.
	path := filepath.Join(t.TempDir(), "db")
	db, err := Declare(path, map[string]RelType{"Employees": employeeRel(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Employees", value.Rec(
		"Name", value.String("J"), "Dept", value.String("S"), "Salary", value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	// A program declaring a different field name cannot open the file.
	other, err := NewRelType(types.MustParse("{Dept: String, Floor: Int}"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Declare(path, map[string]RelType{"Departments": other}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("schema-mismatched reopen err = %v, want ErrCorrupt", err)
	}
	// Even a *supertype* schema fails: no subtyping in Pascal/R, which is
	// precisely the paper's motivation for the languages that follow it.
	super, err := NewRelType(types.MustParse("{Name: String, Dept: String, Salary: Int, Bonus: Int}"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Declare(path, map[string]RelType{"Employees": super}); err == nil {
		t.Error("incompatible tuple schema accepted on reopen")
	}
}

func TestSaveIsWholesale(t *testing.T) {
	// Persistence "controlled the same way as for files": every Save
	// rewrites everything, unlike the intrinsic store's delta commit.
	path := filepath.Join(t.TempDir(), "db")
	db, err := Declare(path, map[string]RelType{"Employees": employeeRel(t)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Insert("Employees", value.Rec(
			"Name", value.String(fmt.Sprintf("E%03d", i)),
			"Dept", value.String("S"), "Salary", value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	size1 := fileSize(t, path)
	// One more tuple: the file is rewritten whole and grows by ~one tuple.
	if err := db.Insert("Employees", value.Rec(
		"Name", value.String("ZZ"), "Dept", value.String("S"), "Salary", value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	size2 := fileSize(t, path)
	if size2 <= size1 {
		t.Errorf("file did not grow: %d -> %d", size1, size2)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func BenchmarkPascalRSave(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rt, err := NewRelType(types.MustParse("{Name: String, Dept: String, Salary: Int}"))
			if err != nil {
				b.Fatal(err)
			}
			db, err := Declare(filepath.Join(b.TempDir(), "db"),
				map[string]RelType{"Employees": rt})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := db.Insert("Employees", value.Rec(
					"Name", value.String(fmt.Sprintf("E%05d", i)),
					"Dept", value.String("S"), "Salary", value.Int(int64(i)))); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Save(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
