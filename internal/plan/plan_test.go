package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dbpl/internal/dynamic"
	"dbpl/internal/index"
	"dbpl/internal/telemetry"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

func newModel() *Model { return NewModel(telemetry.NewRegistry()) }

// TestPlanGetRegimesCold: with cold priors the planner must pick the
// obvious winner in each regime of the E16 grid.
func TestPlanGetRegimesCold(t *testing.T) {
	m := newModel()

	// R1: few types — the extent union is nearly free.
	p := m.PlanGet(GetInput{N: 10000, Types: 4})
	if p.Path != PathExtent {
		t.Errorf("R1 (few types): picked %s\n%s", p.Path, p)
	}

	// R2: every member its own type, but a rare indexed field.
	p = m.PlanGet(GetInput{N: 10000, Types: 10000, Field: "Empno", Candidates: 100})
	if p.Path != PathIndex || p.Field != "Empno" {
		t.Errorf("R2 (many types, rare field): picked %s\n%s", p.Path, p)
	}

	// R2 with a useless index (every member a candidate): not the index.
	p = m.PlanGet(GetInput{N: 10000, Types: 10000, Field: "ID", Candidates: 10000})
	if p.Path == PathIndex {
		t.Errorf("dense index should not win\n%s", p)
	}
}

// TestPlanGetFeedbackFlipsChoice: when observed latencies contradict the
// priors, the learned per-item costs must change the verdict — the whole
// point of telemetry-fed planning over fixed thresholds.
func TestPlanGetFeedbackFlipsChoice(t *testing.T) {
	m := newModel()
	in := GetInput{N: 10000, Types: 5000}
	if p := m.PlanGet(in); p.Path != PathExtent {
		t.Fatalf("cold pick = %s, want extent\n%s", p.Path, p)
	}
	// Feed reality in which the extent path is terrible (say, the type
	// cache is cold and the merge is wide) and the scan is cheap.
	for i := 0; i < minObs; i++ {
		m.Observe(PathExtent, 5*time.Millisecond, 5000, 5000, 10000)
		m.Observe(PathScan, 100*time.Microsecond, 10000, 5000, 10000)
	}
	if p := m.PlanGet(in); p.Path != PathScan {
		t.Errorf("after contrary observations pick = %s, want scan\n%s", p.Path, p)
	}
}

// TestSelectivityLearning: the extent cost must scale with observed
// selectivity, so high-selectivity workloads cost the extent path low.
func TestSelectivityLearning(t *testing.T) {
	m := newModel()
	if got := m.selectivity(); got != defaultSelectivity {
		t.Fatalf("cold selectivity = %v", got)
	}
	for i := 0; i < minObs; i++ {
		m.Observe(PathExtent, time.Microsecond, 100, 100, 10000) // 1%
	}
	if got := m.selectivity(); got < 0.005 || got > 0.02 {
		t.Errorf("learned selectivity = %v, want ≈0.01", got)
	}
	cold := newModel().PlanGet(GetInput{N: 10000, Types: 4}).CostExtent
	warm := m.PlanGet(GetInput{N: 10000, Types: 4}).CostExtent
	if warm >= cold {
		t.Errorf("extent cost did not shrink with selectivity: cold %v warm %v", cold, warm)
	}
}

func TestExplainRendering(t *testing.T) {
	m := newModel()
	p := m.PlanGet(GetInput{N: 10000, Types: 10000, Field: "Empno", Candidates: 100})
	out := p.String()
	for _, want := range []string{"path=index", "field=Empno", "n=10000", "types=10000",
		"candidates=100", "est_sel=", "cost{scan=", "extent=", "index="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN %q missing %q", out, want)
		}
	}
	p = m.PlanGet(GetInput{N: 100, Types: 2})
	if !strings.Contains(p.String(), "index=-") {
		t.Errorf("no-index EXPLAIN should render index=-: %q", p.String())
	}
}

// --- planner-path ≡ reference-scan property -------------------------------

var (
	personT   = types.MustParse("{Name: String, Address: {City: String}}")
	employeeT = types.MustParse("{Name: String, Address: {City: String}, Empno: Int, Dept: String}")
)

func employee(i int) *value.Record {
	return value.Rec("Name", value.String(fmt.Sprintf("E%d", i)),
		"Address", value.Rec("City", value.String("Austin")),
		"Empno", value.Int(int64(i)),
		"Dept", value.String(fmt.Sprintf("D%d", i%3)))
}

func person(i int) *value.Record {
	return value.Rec("Name", value.String(fmt.Sprintf("P%d", i)),
		"Address", value.Rec("City", value.String("Moose")))
}

// executeGet runs one GET through the chosen physical path against the
// index set, with the full member list standing in for the engine scan.
func executeGet(p GetPlan, set *index.Set, members []*dynamic.Dynamic, want *types.Interned) []*dynamic.Dynamic {
	var out []*dynamic.Dynamic
	switch p.Path {
	case PathScan:
		for _, d := range members {
			if types.SubtypeInterned(d.Interned(), want) {
				out = append(out, d)
			}
		}
	case PathExtent:
		entries, _ := set.GetEntries(want)
		for _, e := range entries {
			out = append(out, e.Dyn)
		}
	case PathIndex:
		cands, ok := set.Candidates(p.Field)
		if !ok {
			return nil
		}
		for _, e := range cands {
			if types.SubtypeInterned(e.Dyn.Interned(), want) {
				out = append(out, e.Dyn)
			}
		}
	}
	return out
}

// TestQuickPlannedGetEquivalent is the satellite property: for random
// databases, random index declarations, random model states, and random
// queries, the planner-chosen path returns exactly the reference full-scan
// result, in insertion order.
func TestQuickPlannedGetEquivalent(t *testing.T) {
	queries := []*types.Interned{
		types.Intern(personT),
		types.Intern(employeeT),
		types.Intern(types.MustParse("{Empno: Int}")),
		types.Intern(types.MustParse("{Dept: String}")),
		types.Intern(types.Top),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var defs []index.Def
		if rng.Intn(3) > 0 {
			defs = append(defs, index.Def{Field: "Empno"})
		}
		if rng.Intn(2) == 0 {
			defs = append(defs, index.Def{Field: "Dept"})
		}
		set := index.NewSet(defs...)
		var members []*dynamic.Dynamic
		n := 10 + rng.Intn(60)
		var ops []index.Op
		for i := 0; i < n; i++ {
			var d *dynamic.Dynamic
			switch rng.Intn(3) {
			case 0:
				d = dynamic.Make(person(i))
			case 1:
				d = dynamic.Make(employee(i))
			default:
				d = dynamic.Make(value.Int(int64(i)))
			}
			members = append(members, d)
			ops = append(ops, index.Op{Add: d})
		}
		set, _ = set.Apply(ops)

		m := newModel()
		// Random model state: sometimes warped by arbitrary observations.
		for i, k := 0, rng.Intn(3)*minObs; i < k; i++ {
			m.Observe(Path(rng.Intn(int(numPaths))),
				time.Duration(rng.Intn(int(time.Millisecond))),
				rng.Intn(1000), rng.Intn(100), n)
		}

		for _, q := range queries {
			// The server's field choice: the query's indexed field with the
			// fewest candidates.
			in := GetInput{N: set.Len(), Types: set.Types()}
			if rt, ok := q.Type().(*types.Record); ok {
				for _, fld := range rt.Fields() {
					if c, ok := set.CandidateCount(fld.Label); ok {
						if in.Field == "" || c < in.Candidates {
							in.Field, in.Candidates = fld.Label, c
						}
					}
				}
			}
			p := m.PlanGet(in)
			got := executeGet(p, set, members, q)
			var want []*dynamic.Dynamic
			for _, d := range members {
				if types.SubtypeInterned(d.Interned(), q) {
					want = append(want, d)
				}
			}
			if len(got) != len(want) {
				t.Logf("seed %d q=%s path=%s: got %d want %d", seed, q.Type(), p.Path, len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed %d q=%s path=%s: order diverges at %d", seed, q.Type(), p.Path, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
