// Package plan is the cost-based access-path chooser for GET subtype
// queries and for the JOIN build/probe decision. It turns the engine's
// three physical paths —
//
//   - scan:   walk every member, subtype-check each (the core engine's
//     sharded scan);
//   - extent: union the maintained per-type extents whose type passes one
//     cached subtype check (index.Set.GetEntries);
//   - index:  walk a declared field index's candidate list, re-checking
//     each candidate (index.Set.Candidates) —
//
// into one choice per query, made by comparing estimated costs instead of
// fixed thresholds. The per-item cost of each path is *learned*: the
// server feeds every executed query's latency and item count back into a
// pair of telemetry histograms per path, and the model divides sum of
// latency by sum of items (one Histogram.Stat call each — two atomic
// loads, no snapshot). Until a path has enough observations the model
// falls back to measured priors, so a cold server still plans sanely.
// Observed selectivity (result size over database size) feeds a third
// histogram and sizes the extent path's merge estimate.
//
// The model never affects correctness: all three paths return the same
// members (the quick-check property tests in this package and in
// internal/index prove it), so the worst a bad estimate can do is waste
// time — and the feedback loop then corrects it, which is exactly what
// EXPERIMENTS.md E16 demonstrates on the regime grid.
package plan

import (
	"fmt"
	"time"

	"dbpl/internal/telemetry"
)

// Path is a physical access path for a GET query.
type Path uint8

const (
	PathScan Path = iota
	PathExtent
	PathIndex
	numPaths
)

// String returns the path's metric label.
func (p Path) String() string {
	switch p {
	case PathScan:
		return "scan"
	case PathExtent:
		return "extent"
	case PathIndex:
		return "index"
	}
	return "unknown"
}

// Per-item priors in nanoseconds, used until a path has minObs observed
// items. Measured on the E11/E16 microbenchmarks (single-core container);
// the feedback loop overrides them as soon as real traffic exists, so
// only their *ordering* has to be roughly right.
const (
	priorScanNs   = 40.0 // visit one member: load + cached subtype check
	priorExtentNs = 12.0 // emit one result item from a pre-merged extent
	priorIndexNs  = 30.0 // visit one candidate: re-check + emit
	checkNs       = 20.0 // one cached subtype verdict (per distinct type)

	// minObs is the observation floor before a learned cost replaces its
	// prior — below it the mean is noise.
	minObs = 32

	// defaultSelectivity sizes the extent merge before any query has
	// been observed.
	defaultSelectivity = 0.5

	// selScale stores selectivity observations as parts-per-million so
	// they fit the integer histogram.
	selScale = 1e6
)

// Model is the feedback-fed cost model. One Model serves one server; all
// methods are safe for concurrent use (the histograms are lock-free and
// the rest is immutable).
type Model struct {
	lat   [numPaths]*telemetry.Histogram // per-path latency (ns)
	items [numPaths]*telemetry.Histogram // per-path items handled
	sel   *telemetry.Histogram           // observed selectivity (ppm)
}

// NewModel registers the model's instrument set in reg (pre-resolved
// per-path series — path names are a closed set, no cardinality hazard)
// and returns the model.
func NewModel(reg *telemetry.Registry) *Model {
	m := &Model{}
	for p := PathScan; p < numPaths; p++ {
		label := `{path="` + p.String() + `"}`
		m.lat[p] = reg.Histogram("dbpl_plan_path_seconds"+label,
			telemetry.UnitDuration, telemetry.DurationBuckets)
		m.items[p] = reg.Histogram("dbpl_plan_path_items"+label,
			telemetry.UnitCount, telemetry.SizeBuckets)
	}
	m.sel = reg.Histogram("dbpl_plan_selectivity_ppm",
		telemetry.UnitCount, telemetry.SizeBuckets)
	return m
}

// Observe feeds one executed GET back into the model: the path taken, its
// latency, the items it handled (members visited for scan, result size
// for extent, candidates for index), and the query's result size against
// the database size (the selectivity sample).
func (m *Model) Observe(p Path, d time.Duration, items, result, n int) {
	if p >= numPaths {
		return
	}
	m.lat[p].ObserveDuration(d)
	m.items[p].Observe(int64(items))
	if n > 0 {
		m.sel.Observe(int64(float64(result) / float64(n) * selScale))
	}
}

// costPerItem returns the learned mean cost of one item on path p, or the
// prior when observations are scarce.
func (m *Model) costPerItem(p Path) float64 {
	prior := [numPaths]float64{priorScanNs, priorExtentNs, priorIndexNs}[p]
	if m.lat[p] == nil {
		return prior
	}
	count, itemSum := m.items[p].Stat()
	if count < minObs {
		return prior
	}
	_, latSum := m.lat[p].Stat()
	if itemSum <= 0 || latSum <= 0 {
		return prior
	}
	return float64(latSum) / float64(itemSum)
}

// selectivity returns the observed mean selectivity in [0,1], or the
// default when observations are scarce.
func (m *Model) selectivity() float64 {
	if m.sel == nil {
		return defaultSelectivity
	}
	count, sum := m.sel.Stat()
	if count < minObs {
		return defaultSelectivity
	}
	s := float64(sum) / float64(count) / selScale
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// GetInput sizes one GET query for the planner. All counts are O(1) to
// obtain: N and Types from the index set's counters, Candidates from the
// chosen field index's length.
type GetInput struct {
	N     int // members in the database
	Types int // distinct member types (= maintained extents)
	// Field is the declared index chosen for this query (the requested
	// record type's field with the fewest candidates); empty when no
	// declared index applies.
	Field string
	// Candidates is that index's candidate count; ignored when Field is
	// empty.
	Candidates int
}

// GetPlan is the planner's verdict for one GET, carrying the full cost
// breakdown for EXPLAIN.
type GetPlan struct {
	Path  Path
	Field string // the index used, when Path == PathIndex

	// The inputs and estimates behind the choice.
	N, Types, Candidates int
	EstSelectivity       float64
	CostScan             float64 // estimated ns
	CostExtent           float64
	CostIndex            float64 // +Inf rendered as "-" when no index applies
}

// PlanGet chooses the access path for one GET query.
func (m *Model) PlanGet(in GetInput) GetPlan {
	sel := m.selectivity()
	estR := sel * float64(in.N)
	p := GetPlan{
		N:              in.N,
		Types:          in.Types,
		Candidates:     in.Candidates,
		EstSelectivity: sel,
		CostScan:       float64(in.N) * m.costPerItem(PathScan),
		CostExtent:     float64(in.Types)*checkNs + estR*m.costPerItem(PathExtent),
	}
	hasIndex := in.Field != ""
	if hasIndex {
		p.CostIndex = float64(in.Candidates) * m.costPerItem(PathIndex)
	}
	// Pick the cheapest; ties prefer extent (exact, pre-merged), then
	// index, then scan.
	p.Path = PathExtent
	best := p.CostExtent
	if hasIndex && p.CostIndex < best {
		p.Path, best = PathIndex, p.CostIndex
	}
	if p.CostScan < best {
		p.Path = PathScan
	}
	if p.Path == PathIndex {
		p.Field = in.Field
	}
	return p
}

// costNs renders an estimated cost for EXPLAIN.
func costNs(c float64) string {
	if c <= 0 {
		return "-"
	}
	return time.Duration(c).String()
}

// String renders the plan in the EXPLAIN format:
//
//	get path=extent n=10000 types=4 est_sel=1.0% cost{scan=400µs extent=3.1µs index=-}
func (p GetPlan) String() string {
	idx := "-"
	if p.Field != "" || p.CostIndex > 0 {
		idx = costNs(p.CostIndex)
	}
	field := ""
	if p.Field != "" {
		field = " field=" + p.Field
	}
	return fmt.Sprintf("get path=%s%s n=%d types=%d candidates=%d est_sel=%.1f%% cost{scan=%s extent=%s index=%s}",
		p.Path, field, p.N, p.Types, p.Candidates, p.EstSelectivity*100,
		costNs(p.CostScan), costNs(p.CostExtent), idx)
}
