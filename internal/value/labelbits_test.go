package value

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dbpl/internal/types"
)

// recomputeBits is the reference definition of the label signature.
func recomputeBits(r *Record) uint64 {
	var bits uint64
	for _, l := range r.Labels() {
		bits |= types.LabelBit(l)
	}
	return bits
}

// mutationScript drives a random Set/Delete sequence over one record.
type mutationScript struct {
	Ops []struct {
		Del   bool
		Label uint8
	}
}

// Generate implements quick.Generator.
func (mutationScript) Generate(r *rand.Rand, _ int) reflect.Value {
	var s mutationScript
	n := r.Intn(40)
	for i := 0; i < n; i++ {
		s.Ops = append(s.Ops, struct {
			Del   bool
			Label uint8
		}{Del: r.Intn(3) == 0, Label: uint8(r.Intn(12))})
	}
	return reflect.ValueOf(s)
}

// TestQuickLabelBitsExact checks the invariant the ⊑ fast path depends on:
// after any Set/Delete sequence the maintained signature equals the
// recomputed one — never a superset, never a subset.
func TestQuickLabelBitsExact(t *testing.T) {
	f := func(s mutationScript) bool {
		r := NewRecord()
		for _, op := range s.Ops {
			l := fmt.Sprintf("L%d", op.Label)
			if op.Del {
				r.Delete(l)
			} else {
				r.Set(l, Int(1))
			}
			if r.LabelBits() != recomputeBits(r) {
				return false
			}
		}
		return r.Copy().LabelBits() == r.LabelBits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestLeqBloomRejectSound pins the fast-reject direction: a record with a
// label absent from the other side is never ⊑ it, and the signature filter
// agrees with the field walk on positive cases.
func TestLeqBloomRejectSound(t *testing.T) {
	small := Rec("A", Int(1))
	big := Rec("A", Int(1), "B", Int(2))
	if !Leq(small, big) {
		t.Errorf("small ⊑ big expected")
	}
	if Leq(big, small) {
		t.Errorf("big ⊑ small unexpected")
	}
	// Deleting the extra field restores mutual ⊑ — stale signature bits
	// would break this.
	big.Delete("B")
	if !Leq(big, small) || !Leq(small, big) {
		t.Errorf("records should be mutually ⊑ after Delete")
	}
}
