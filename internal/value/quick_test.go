package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dbpl/internal/types"
)

// genValue builds a random value of bounded depth. Labels are drawn from a
// small pool so that random records are frequently comparable — the
// interesting regime for ⊑ and ⊔.
func genValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(7) {
		case 0:
			return Int(r.Intn(3))
		case 1:
			return Float(r.Intn(3))
		case 2:
			return String([]string{"x", "y"}[r.Intn(2)])
		case 3:
			return Bool(r.Intn(2) == 0)
		case 4:
			return Unit
		case 5:
			return Bottom
		default:
			return Rec()
		}
	}
	switch r.Intn(8) {
	case 0, 1, 2:
		labels := []string{"A", "B", "C", "D"}
		rec := NewRecord()
		for _, l := range labels {
			if r.Intn(2) == 0 {
				rec.Set(l, genValue(r, depth-1))
			}
		}
		return rec
	case 3:
		n := r.Intn(3)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		return NewList(elems...)
	case 4:
		n := r.Intn(3)
		s := NewSet()
		for i := 0; i < n; i++ {
			s.Add(genValue(r, depth-1))
		}
		return s
	case 5:
		return NewTag([]string{"P", "Q"}[r.Intn(2)], genValue(r, depth-1))
	default:
		return genValue(r, 0)
	}
}

// randValue adapts genValue to testing/quick.
type randValue struct{ V Value }

// Generate implements quick.Generator.
func (randValue) Generate(r *rand.Rand, size int) reflect.Value {
	d := size
	if d > 3 {
		d = 3
	}
	return reflect.ValueOf(randValue{V: genValue(r, d)})
}

var quickCfg = &quick.Config{MaxCount: 500}

func TestQuickLeqReflexive(t *testing.T) {
	f := func(a randValue) bool { return Leq(a.V, a.V) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBottomBelowAll(t *testing.T) {
	f := func(a randValue) bool { return Leq(Bottom, a.V) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLeqAntisymmetricUpToEqual(t *testing.T) {
	f := func(a, b randValue) bool {
		if Leq(a.V, b.V) && Leq(b.V, a.V) {
			// Mutually comparable records must have the same fields; for
			// non-set values this means structural equality. (Sets are
			// ordered by the relation preorder, which is not antisymmetric:
			// {⊥, x} and {⊥} are mutually below each other.)
			if a.V.Kind() == KindSet || b.V.Kind() == KindSet || containsSet(a.V) || containsSet(b.V) {
				return true
			}
			return Equal(a.V, b.V)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func containsSet(v Value) bool {
	switch vv := v.(type) {
	case *Set:
		return true
	case *Record:
		found := false
		vv.Each(func(_ string, f Value) { found = found || containsSet(f) })
		return found
	case *List:
		for _, e := range vv.Elems {
			if containsSet(e) {
				return true
			}
		}
		return false
	case *Tag:
		return containsSet(vv.Payload)
	default:
		return false
	}
}

func TestQuickJoinUpperBound(t *testing.T) {
	f := func(a, b randValue) bool {
		j, err := Join(a.V, b.V)
		if err != nil {
			return true // partiality: a failed join claims nothing
		}
		return Leq(a.V, j) && Leq(b.V, j)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(a, b randValue) bool {
		j1, e1 := Join(a.V, b.V)
		j2, e2 := Join(b.V, a.V)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		return e1 != nil || Equal(j1, j2)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIdempotent(t *testing.T) {
	// Idempotence holds for set-free values. For sets the join is the
	// generalized *natural join*, which can merge compatible incomparable
	// members of a relation with themselves: {{A=1},{B=2}} ⋈ itself yields
	// {{A=1,B=2}} — exactly natural-join semantics, tested separately.
	f := func(a randValue) bool {
		if containsSet(a.V) {
			return true
		}
		j, err := Join(a.V, a.V)
		return err == nil && Equal(j, a.V)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestSetSelfJoinMergesCompatible(t *testing.T) {
	s := NewSet(Rec("A", Int(1)), Rec("B", Int(2)))
	j := SetJoin(s, s)
	want := NewSet(Rec("A", Int(1), "B", Int(2)))
	if !Equal(j, want) {
		t.Errorf("self-join = %s, want %s", j, want)
	}
	// On a relation whose members pairwise conflict (a keyed relation),
	// self-join is the identity, as for the classical natural join.
	keyed := NewSet(
		Rec("Name", String("J Doe"), "Dept", String("Sales")),
		Rec("Name", String("M Dee"), "Dept", String("Manuf")),
	)
	if !Equal(SetJoin(keyed, keyed), keyed) {
		t.Error("self-join of a keyed relation should be the identity")
	}
}

func TestQuickJoinDefinedIffUpperBoundForRecords(t *testing.T) {
	// For set-free values, Leq(a, b) implies Join(a, b) = b.
	f := func(a, b randValue) bool {
		if containsSet(a.V) || containsSet(b.V) {
			return true
		}
		if !Leq(a.V, b.V) {
			return true
		}
		j, err := Join(a.V, b.V)
		return err == nil && Equal(j, b.V)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinAssociative(t *testing.T) {
	// For set-free values ⊔ is associative where defined: if both
	// groupings are defined they agree; and mixed definedness implies a
	// conflict exists in the triple either way.
	f := func(a, b, c randValue) bool {
		if containsSet(a.V) || containsSet(b.V) || containsSet(c.V) {
			return true
		}
		l1, e1 := Join(a.V, b.V)
		var left Value
		var leftErr error
		if e1 == nil {
			left, leftErr = Join(l1, c.V)
		} else {
			leftErr = e1
		}
		r1, e2 := Join(b.V, c.V)
		var right Value
		var rightErr error
		if e2 == nil {
			right, rightErr = Join(a.V, r1)
		} else {
			rightErr = e2
		}
		if leftErr == nil && rightErr == nil {
			return Equal(left, right)
		}
		// One side failing while the other succeeds cannot happen for the
		// record/atom domain: both orders must detect the same conflicts.
		return (leftErr == nil) == (rightErr == nil)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLeqTransitive(t *testing.T) {
	// Build comparable chains explicitly: a ⊑ a⊔x ⊑ (a⊔x)⊔y when defined.
	f := func(a, x, y randValue) bool {
		if containsSet(a.V) || containsSet(x.V) || containsSet(y.V) {
			return true
		}
		b, err := Join(a.V, x.V)
		if err != nil {
			return true
		}
		c, err := Join(b, y.V)
		if err != nil {
			return true
		}
		return Leq(a.V, b) && Leq(b, c) && Leq(a.V, c)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMeetLowerBound(t *testing.T) {
	f := func(a, b randValue) bool {
		if containsSet(a.V) || containsSet(b.V) {
			return true // meet is not defined pointwise for sets
		}
		m := Meet(a.V, b.V)
		return Leq(m, a.V) && Leq(m, b.V)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualMatchesKey(t *testing.T) {
	f := func(a, b randValue) bool {
		return Equal(a.V, b.V) == (Key(a.V) == Key(b.V))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCopyEqualAndIndependent(t *testing.T) {
	f := func(a randValue) bool {
		cp := Copy(a.V)
		if !Equal(cp, a.V) {
			return false
		}
		if rec, ok := cp.(*Record); ok {
			rec.Set("ZZZ_fresh", Int(1))
			if orig, ok := a.V.(*Record); ok {
				if _, present := orig.Get("ZZZ_fresh"); present {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTypeOfRespectsLeq(t *testing.T) {
	// More informative set-free, ⊥-free objects have smaller (more
	// specific) record types: o ⊑ o' on records implies TypeOf(o') ≤
	// TypeOf(o) — the paper's observation that the object order is the
	// reverse of the type order. (⊥-containing objects are excluded:
	// TypeOf(⊥) = Bottom, so refining ⊥ to any proper value moves the type
	// *up*, not down — ⊥ is "no information", not "every information".)
	f := func(a, b randValue) bool {
		ra, ok1 := a.V.(*Record)
		rb, ok2 := b.V.(*Record)
		if !ok1 || !ok2 || containsSet(ra) || containsSet(rb) ||
			containsBottom(ra) || containsBottom(rb) {
			return true
		}
		if !Leq(ra, rb) {
			return true
		}
		return types.Subtype(TypeOf(rb), TypeOf(ra))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func containsBottom(v Value) bool {
	switch vv := v.(type) {
	case bottomValue:
		return true
	case *Record:
		found := false
		vv.Each(func(_ string, f Value) { found = found || containsBottom(f) })
		return found
	case *List:
		for _, e := range vv.Elems {
			if containsBottom(e) {
				return true
			}
		}
		// An empty list types as List[Bottom]: the same caveat applies.
		return len(vv.Elems) == 0
	case *Tag:
		return containsBottom(vv.Payload)
	default:
		return false
	}
}

func TestQuickConformsOwnType(t *testing.T) {
	f := func(a randValue) bool { return Conforms(a.V, TypeOf(a.V)) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMaximalFastEqualsNaive(t *testing.T) {
	// The signature/discriminator-pruned Maximal must agree with the naive
	// O(n²) definition on record-only inputs large enough to take the fast
	// path, including comparable chains and duplicates.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var vs []Value
		n := 40 + rng.Intn(30)
		for i := 0; i < n; i++ {
			rec := NewRecord()
			for _, l := range []string{"A", "B", "C", "D"} {
				switch rng.Intn(4) {
				case 0:
					rec.Set(l, Int(int64(rng.Intn(3))))
				case 1:
					rec.Set(l, Rec("X", Int(int64(rng.Intn(2)))))
				case 2:
					rec.Set(l, Rec("X", Int(int64(rng.Intn(2))), "Y", Int(int64(rng.Intn(2)))))
				}
			}
			vs = append(vs, rec)
			if rng.Intn(5) == 0 { // inject duplicates
				vs = append(vs, Copy(rec))
			}
		}
		fast := Maximal(vs)
		naive := maximalNaive(vs)
		if len(fast) != len(naive) {
			return false
		}
		for i := range fast {
			if !Equal(fast[i], naive[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickMaximalIsCochain(t *testing.T) {
	f := func(a, b, c randValue) bool {
		out := Maximal([]Value{a.V, b.V, c.V})
		for i, x := range out {
			for j, y := range out {
				if i != j && Leq(x, y) && !Leq(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
