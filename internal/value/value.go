// Package value implements the object domain of Buneman & Atkinson's
// SIGMOD '86 paper: atoms, records-as-partial-functions, lists, sets and
// tagged variants, together with the *information ordering* o ⊑ o' ("o'
// contains more information than o"), the partial *join* o ⊔ o' that merges
// the information in two objects, and a most-specific-type function TypeOf.
//
// Records here are mutable and have pointer identity, reflecting the
// object-oriented reading of the paper: "objects are not identified by
// intrinsic properties". Structural operations (Leq, Join, Equal, keys)
// always work on the current contents.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dbpl/internal/types"
)

// Kind discriminates the concrete representations of Value.
type Kind int

// The kinds of value in the domain.
const (
	KindInvalid Kind = iota
	KindBottom       // ⊥ — the wholly uninformative object
	KindInt
	KindFloat
	KindString
	KindBool
	KindUnit
	KindRecord
	KindList
	KindSet
	KindTag  // a variant value: Label(payload)
	KindType // a type treated as a value (Amber's typeOf results)
	KindOpaque
)

// Value is an object in the database domain. Concrete representations are
// Int, Float, String, Bool, Unit, Bottom, *Record, *List, *Set, *Tag and
// *TypeVal; packages building on this one (closures in the language
// evaluator) may add opaque kinds.
type Value interface {
	// Kind reports which concrete representation this is.
	Kind() Kind
	// String renders the value in the paper's notation, e.g.
	// {Name = 'J Doe', Addr = {City = 'Austin'}}.
	String() string
}

// ---------------------------------------------------------------------------
// Atoms
// ---------------------------------------------------------------------------

// Int is an integer atom.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// String implements Value.
func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }

// Float is a floating-point atom.
type Float float64

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// String implements Value.
func (v Float) String() string {
	if v == Float(math.Trunc(float64(v))) && math.Abs(float64(v)) < 1e15 {
		return strconv.FormatFloat(float64(v), 'f', 1, 64)
	}
	return strconv.FormatFloat(float64(v), 'g', -1, 64)
}

// String is a string atom.
type String string

// Kind implements Value.
func (String) Kind() Kind { return KindString }

// String implements Value; strings print in the paper's quote style.
func (v String) String() string { return "'" + string(v) + "'" }

// Bool is a boolean atom.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// String implements Value.
func (v Bool) String() string { return strconv.FormatBool(bool(v)) }

// unitValue is the sole value of type Unit.
type unitValue struct{}

// Unit is the single value of the Unit type.
var Unit Value = unitValue{}

// Kind implements Value.
func (unitValue) Kind() Kind { return KindUnit }

// String implements Value.
func (unitValue) String() string { return "unit" }

// bottomValue is ⊥, below every object in the information ordering.
type bottomValue struct{}

// Bottom is ⊥: the object carrying no information at all. It is below every
// value in the ordering and is the unit of Join.
var Bottom Value = bottomValue{}

// Kind implements Value.
func (bottomValue) Kind() Kind { return KindBottom }

// String implements Value.
func (bottomValue) String() string { return "⊥" }

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

// Record is a record object — in the paper's treatment, a partial function
// from labels to values. An absent field means "no information", so adding
// a field produces a more informative object. Records are mutable and have
// pointer identity.
type Record struct {
	labels []string // sorted
	values []Value  // parallel to labels
	// labelBits is the OR of types.LabelBit over labels, maintained eagerly
	// by Set/Delete so concurrent readers (Leq under the extent engine) never
	// write. It must stay exact — stale extra bits or missing bits both make
	// the ⊑ fast-reject wrong.
	labelBits uint64
}

// NewRecord returns an empty record object.
func NewRecord() *Record { return &Record{} }

// Rec builds a record from alternating label, value pairs:
// Rec("Name", String("J Doe"), "Age", Int(42)). It panics on an odd number
// of arguments or a non-string label, which indicate programming errors.
func Rec(pairs ...any) *Record {
	if len(pairs)%2 != 0 {
		panic("value: Rec requires label/value pairs")
	}
	r := NewRecord()
	for i := 0; i < len(pairs); i += 2 {
		label, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("value: Rec label %v is not a string", pairs[i]))
		}
		v, ok := pairs[i+1].(Value)
		if !ok {
			panic(fmt.Sprintf("value: Rec value for %q is not a Value", label))
		}
		r.Set(label, v)
	}
	return r
}

// Kind implements Value.
func (r *Record) Kind() Kind { return KindRecord }

// Len reports the number of fields.
func (r *Record) Len() int { return len(r.labels) }

// Labels returns the field labels in sorted order.
func (r *Record) Labels() []string {
	out := make([]string, len(r.labels))
	copy(out, r.labels)
	return out
}

// Get returns the value of the named field, if present.
func (r *Record) Get(label string) (Value, bool) {
	i := sort.SearchStrings(r.labels, label)
	if i < len(r.labels) && r.labels[i] == label {
		return r.values[i], true
	}
	return nil, false
}

// MustGet is Get but panics when the field is absent; for fixtures/tests.
func (r *Record) MustGet(label string) Value {
	v, ok := r.Get(label)
	if !ok {
		panic(fmt.Sprintf("value: record has no field %q", label))
	}
	return v
}

// Set adds or replaces the named field in place. This is the operation that
// makes the paper's object extension possible: an existing Person record can
// be enriched to an Employee without disturbing references to it.
func (r *Record) Set(label string, v Value) {
	i := sort.SearchStrings(r.labels, label)
	if i < len(r.labels) && r.labels[i] == label {
		r.values[i] = v
		return
	}
	r.labels = append(r.labels, "")
	r.values = append(r.values, nil)
	copy(r.labels[i+1:], r.labels[i:])
	copy(r.values[i+1:], r.values[i:])
	r.labels[i] = label
	r.values[i] = v
	r.labelBits |= types.LabelBit(label)
}

// Delete removes the named field if present, reporting whether it was there.
func (r *Record) Delete(label string) bool {
	i := sort.SearchStrings(r.labels, label)
	if i >= len(r.labels) || r.labels[i] != label {
		return false
	}
	r.labels = append(r.labels[:i], r.labels[i+1:]...)
	r.values = append(r.values[:i], r.values[i+1:]...)
	// Another label may hash to the deleted label's bit, so recompute rather
	// than clear.
	var bits uint64
	for _, l := range r.labels {
		bits |= types.LabelBit(l)
	}
	r.labelBits = bits
	return true
}

// LabelBits returns the record's label signature: the OR of types.LabelBit
// over its labels. labels(a) ⊆ labels(b) implies a.LabelBits()&^b.LabelBits()
// == 0, which is what lets ⊑ and Maximal reject incomparable records without
// walking fields.
func (r *Record) LabelBits() uint64 { return r.labelBits }

// Each calls f for every field in label order.
func (r *Record) Each(f func(label string, v Value)) {
	for i, l := range r.labels {
		f(l, r.values[i])
	}
}

// Copy returns a deep copy of the record (sharing atoms, copying all
// containers).
func (r *Record) Copy() *Record {
	out := &Record{labels: append([]string(nil), r.labels...), values: make([]Value, len(r.values)), labelBits: r.labelBits}
	for i, v := range r.values {
		out.values[i] = Copy(v)
	}
	return out
}

// String implements Value.
func (r *Record) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range r.labels {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l)
		b.WriteString(" = ")
		b.WriteString(r.values[i].String())
	}
	b.WriteByte('}')
	return b.String()
}

// ---------------------------------------------------------------------------
// Lists
// ---------------------------------------------------------------------------

// List is a finite sequence of values.
type List struct {
	Elems []Value
}

// NewList returns a list of the given elements.
func NewList(elems ...Value) *List { return &List{Elems: append([]Value(nil), elems...)} }

// Kind implements Value.
func (l *List) Kind() Kind { return KindList }

// Len reports the number of elements.
func (l *List) Len() int { return len(l.Elems) }

// Append adds a value at the end.
func (l *List) Append(v Value) { l.Elems = append(l.Elems, v) }

// String implements Value.
func (l *List) String() string {
	var b strings.Builder
	b.WriteString("list(")
	for i, e := range l.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ---------------------------------------------------------------------------
// Sets
// ---------------------------------------------------------------------------

// Set is a finite set of values, deduplicated by structural equality.
type Set struct {
	elems []Value
	keys  map[string]int // canonical key -> index
}

// NewSet returns a set of the given elements with duplicates removed.
func NewSet(elems ...Value) *Set {
	s := &Set{keys: map[string]int{}}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Kind implements Value.
func (s *Set) Kind() Kind { return KindSet }

// Len reports the number of distinct elements.
func (s *Set) Len() int { return len(s.elems) }

// Add inserts v, reporting whether the set changed.
func (s *Set) Add(v Value) bool {
	if s.keys == nil {
		s.keys = map[string]int{}
	}
	k := Key(v)
	if _, ok := s.keys[k]; ok {
		return false
	}
	s.keys[k] = len(s.elems)
	s.elems = append(s.elems, v)
	return true
}

// Contains reports whether a structurally equal element is present.
func (s *Set) Contains(v Value) bool {
	if s.keys == nil {
		return false
	}
	_, ok := s.keys[Key(v)]
	return ok
}

// Remove deletes the element structurally equal to v, reporting whether it
// was present.
func (s *Set) Remove(v Value) bool {
	if s.keys == nil {
		return false
	}
	k := Key(v)
	i, ok := s.keys[k]
	if !ok {
		return false
	}
	last := len(s.elems) - 1
	if i != last {
		s.elems[i] = s.elems[last]
		s.keys[Key(s.elems[i])] = i
	}
	s.elems = s.elems[:last]
	delete(s.keys, k)
	return true
}

// Elems returns the elements in insertion order (after removals the order of
// the tail may differ). The slice is a copy.
func (s *Set) Elems() []Value { return append([]Value(nil), s.elems...) }

// Each calls f for each element.
func (s *Set) Each(f func(Value)) {
	for _, e := range s.elems {
		f(e)
	}
}

// String implements Value; elements print in canonical (sorted-key) order so
// equal sets print identically.
func (s *Set) String() string {
	keys := make([]string, len(s.elems))
	byKey := map[string]Value{}
	for i, e := range s.elems {
		keys[i] = Key(e)
		byKey[keys[i]] = e
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(byKey[k].String())
	}
	b.WriteString("}")
	return b.String()
}

// ---------------------------------------------------------------------------
// Variant values
// ---------------------------------------------------------------------------

// Tag is a variant value: the named alternative carrying a payload.
type Tag struct {
	Label   string
	Payload Value
}

// NewTag returns the variant value Label(payload).
func NewTag(label string, payload Value) *Tag { return &Tag{Label: label, Payload: payload} }

// Kind implements Value.
func (*Tag) Kind() Kind { return KindTag }

// String implements Value.
func (t *Tag) String() string { return t.Label + "(" + t.Payload.String() + ")" }

// ---------------------------------------------------------------------------
// Copy, equality, canonical keys
// ---------------------------------------------------------------------------

// Copy deep-copies containers and shares atoms. Opaque values are shared.
func Copy(v Value) Value {
	switch vv := v.(type) {
	case *Record:
		return vv.Copy()
	case *List:
		out := &List{Elems: make([]Value, len(vv.Elems))}
		for i, e := range vv.Elems {
			out.Elems[i] = Copy(e)
		}
		return out
	case *Set:
		out := NewSet()
		for _, e := range vv.elems {
			out.Add(Copy(e))
		}
		return out
	case *Tag:
		return NewTag(vv.Label, Copy(vv.Payload))
	default:
		return v
	}
}

// Equal reports deep structural equality. Int and Float atoms are never
// equal to each other even when numerically equal, mirroring the type
// distinction. Opaque values are equal only when identical.
func Equal(a, b Value) bool {
	if a == b {
		return true
	}
	return Key(a) == Key(b)
}

// Key returns a canonical string for v: structurally equal values share a
// key and distinct values practically never collide. Set elements are
// ordered by their own keys, so the key is order-insensitive for sets.
func Key(v Value) string {
	var b strings.Builder
	writeKey(&b, v)
	return b.String()
}

func writeKey(b *strings.Builder, v Value) {
	switch vv := v.(type) {
	case Int:
		fmt.Fprintf(b, "i%d", int64(vv))
	case Float:
		fmt.Fprintf(b, "f%x", math.Float64bits(float64(vv)))
	case String:
		fmt.Fprintf(b, "s%d:%s", len(vv), string(vv))
	case Bool:
		if vv {
			b.WriteString("bt")
		} else {
			b.WriteString("bf")
		}
	case unitValue:
		b.WriteString("u")
	case bottomValue:
		b.WriteString("⊥")
	case *Record:
		b.WriteByte('{')
		for i, l := range vv.labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%d:%s=", len(l), l)
			writeKey(b, vv.values[i])
		}
		b.WriteByte('}')
	case *List:
		b.WriteString("l(")
		for i, e := range vv.Elems {
			if i > 0 {
				b.WriteByte(',')
			}
			writeKey(b, e)
		}
		b.WriteByte(')')
	case *Set:
		keys := make([]string, len(vv.elems))
		for i, e := range vv.elems {
			keys[i] = Key(e)
		}
		sort.Strings(keys)
		b.WriteString("S(")
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
		}
		b.WriteByte(')')
	case *Tag:
		fmt.Fprintf(b, "t%d:%s(", len(vv.Label), vv.Label)
		writeKey(b, vv.Payload)
		b.WriteByte(')')
	case *TypeVal:
		b.WriteString("T<")
		b.WriteString(types.Key(vv.T))
		b.WriteByte('>')
	default:
		// Opaque values: identity only.
		fmt.Fprintf(b, "opaque%p", v)
	}
}
