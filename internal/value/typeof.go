package value

import (
	"dbpl/internal/types"
)

// TypeVal is a type treated as a value — the result of Amber's typeOf
// applied to a dynamic value. Its type is the basic type Type.
type TypeVal struct {
	T types.Type
}

// NewTypeVal wraps a type as a value.
func NewTypeVal(t types.Type) *TypeVal { return &TypeVal{T: t} }

// Kind implements Value.
func (*TypeVal) Kind() Kind { return KindType }

// String implements Value.
func (tv *TypeVal) String() string { return "type(" + tv.T.String() + ")" }

// TypeOf returns the most specific type of v. For containers the element
// type is the join of the element types, so an empty list has type
// List[Bottom] — which is a subtype of every list type, exactly what lets a
// base part with no components inhabit the paper's recursive Part type.
//
// Values may share structure (DAGs); results are memoized per record so the
// traversal is linear in the number of distinct nodes. A cyclic value is
// given Top at the back edge, a conservative answer that keeps TypeOf total.
func TypeOf(v Value) types.Type {
	return typeOf(v, map[*Record]types.Type{})
}

// inProgress marks a record currently being typed (cycle detection).
var inProgress = types.Type(types.Top)

func typeOf(v Value, memo map[*Record]types.Type) types.Type {
	switch vv := v.(type) {
	case Int:
		return types.Int
	case Float:
		return types.Float
	case String:
		return types.String
	case Bool:
		return types.Bool
	case unitValue:
		return types.Unit
	case bottomValue:
		return types.Bottom
	case *TypeVal:
		return types.TypeRep
	case *Record:
		if t, ok := memo[vv]; ok {
			return t // includes the Top answer for back edges
		}
		memo[vv] = inProgress
		fs := make([]types.Field, vv.Len())
		for i, l := range vv.labels {
			fs[i] = types.Field{Label: l, Type: typeOf(vv.values[i], memo)}
		}
		t := types.NewRecord(fs...)
		memo[vv] = t
		return t
	case *List:
		elem := types.Type(types.Bottom)
		for _, e := range vv.Elems {
			elem = types.Join(elem, typeOf(e, memo))
		}
		return types.NewList(elem)
	case *Set:
		elem := types.Type(types.Bottom)
		for _, e := range vv.elems {
			elem = types.Join(elem, typeOf(e, memo))
		}
		return types.NewSet(elem)
	case *Tag:
		return types.NewVariant(types.Field{Label: vv.Label, Type: typeOf(vv.Payload, memo)})
	default:
		return types.Top
	}
}

// Conforms reports whether v can be used at type t — v's most specific type
// is a subtype of t. This is the dynamic check behind coerce and behind the
// generic Get function's filtering of a heterogeneous database.
func Conforms(v Value, t types.Type) bool {
	return ConformsInterned(v, types.Intern(t))
}

// ConformsInterned is Conforms with the target type already interned, for
// callers filtering many values against one type (relation extraction, class
// conformance): the subtype verdict is then a pointer-keyed cache hit per
// distinct value shape.
func ConformsInterned(v Value, t *types.Interned) bool {
	return types.SubtypeInterned(types.Intern(TypeOf(v)), t)
}
