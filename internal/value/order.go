package value

import (
	"errors"
	"fmt"
	"strings"
)

// This file implements the paper's "Inheritance on Values" section: the
// information ordering ⊑ on objects, the partial join ⊔ ("adding
// information"), and the total meet ⊓ (the information two objects agree
// on). Records are ordered as partial functions: o ⊑ o' holds when o' has
// every field of o with a pointwise-greater value — o' was obtained from o
// by adding new fields or better defining existing ones.

// ErrConflict is returned (wrapped) by Join when the two objects disagree on
// a common component — e.g. joining {Name = 'J Doe'} with {Name = 'K Smith'}
// — so no object contains the information of both.
var ErrConflict = errors.New("value: join conflict")

// Leq reports o ⊑ o': every piece of information in o is also in o'.
// ⊥ ⊑ v for all v; atoms are ordered discretely; records by field inclusion
// with pointwise Leq; lists pointwise at equal length; tags by equal label
// and payload Leq; sets by the paper's relation ordering (each element of
// the larger is above some element of the smaller).
func Leq(o, op Value) bool {
	if o.Kind() == KindBottom {
		return true
	}
	switch a := o.(type) {
	case Int, Float, String, Bool, unitValue:
		return Equal(o, op)
	case *Record:
		b, ok := op.(*Record)
		if !ok {
			return false
		}
		// a ⊑ b needs labels(a) ⊆ labels(b); the precomputed signatures
		// reject a missing label in one word operation.
		if a.labelBits&^b.labelBits != 0 {
			return false
		}
		for i, l := range a.labels {
			bv, ok := b.Get(l)
			if !ok || !Leq(a.values[i], bv) {
				return false
			}
		}
		return true
	case *List:
		b, ok := op.(*List)
		if !ok || len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !Leq(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case *Tag:
		b, ok := op.(*Tag)
		return ok && a.Label == b.Label && Leq(a.Payload, b.Payload)
	case *Set:
		b, ok := op.(*Set)
		if !ok {
			return false
		}
		return SetLeq(a, b)
	default:
		return o == op
	}
}

// SetLeq is the paper's ordering on relations: R ⊑ R' iff for every object
// o' in R' there is an object o in R with o ⊑ o' — every member of R' is
// more informative than some member of R.
func SetLeq(r, rp *Set) bool {
	for _, op := range rp.elems {
		found := false
		for _, o := range r.elems {
			if Leq(o, op) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Comparable reports whether o ⊑ o' or o' ⊑ o. Generalized relations forbid
// comparable pairs (they are cochains).
func Comparable(o, op Value) bool { return Leq(o, op) || Leq(op, o) }

// Join returns the least object containing the information of both a and b,
// or an error wrapping ErrConflict when they disagree on a common component.
// Joining records merges their fields; this is the paper's mechanism for
// turning a Person into an Employee by "adding information":
//
//	{Name = 'J Doe'} ⊔ {Emp_no = 1234} = {Name = 'J Doe', Emp_no = 1234}
func Join(a, b Value) (Value, error) {
	if a.Kind() == KindBottom {
		return b, nil
	}
	if b.Kind() == KindBottom {
		return a, nil
	}
	switch av := a.(type) {
	case Int, Float, String, Bool, unitValue:
		if Equal(a, b) {
			return a, nil
		}
		return nil, conflict(a, b)
	case *Record:
		bv, ok := b.(*Record)
		if !ok {
			return nil, conflict(a, b)
		}
		out := NewRecord()
		for i, l := range av.labels {
			out.Set(l, av.values[i])
		}
		var err error
		bv.Each(func(l string, v Value) {
			if err != nil {
				return
			}
			if prev, ok := out.Get(l); ok {
				j, jerr := Join(prev, v)
				if jerr != nil {
					err = fmt.Errorf("field %s: %w", l, jerr)
					return
				}
				out.Set(l, j)
			} else {
				out.Set(l, v)
			}
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	case *List:
		bv, ok := b.(*List)
		if !ok || len(av.Elems) != len(bv.Elems) {
			return nil, conflict(a, b)
		}
		out := &List{Elems: make([]Value, len(av.Elems))}
		for i := range av.Elems {
			j, err := Join(av.Elems[i], bv.Elems[i])
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			out.Elems[i] = j
		}
		return out, nil
	case *Tag:
		bv, ok := b.(*Tag)
		if !ok || av.Label != bv.Label {
			return nil, conflict(a, b)
		}
		p, err := Join(av.Payload, bv.Payload)
		if err != nil {
			return nil, err
		}
		return NewTag(av.Label, p), nil
	case *Set:
		bv, ok := b.(*Set)
		if !ok {
			return nil, conflict(a, b)
		}
		return SetJoin(av, bv), nil
	default:
		if a == b {
			return a, nil
		}
		return nil, conflict(a, b)
	}
}

func conflict(a, b Value) error {
	return fmt.Errorf("%w: %s vs %s", ErrConflict, a, b)
}

// SetJoin is the least upper bound of two sets under the relation ordering:
// all pairwise element joins that succeed, reduced to mutually incomparable
// maximal elements. Applied to generalized relations it is exactly the
// generalized natural join of the paper's Figure 1.
func SetJoin(a, b *Set) *Set {
	var joined []Value
	for _, x := range a.elems {
		for _, y := range b.elems {
			if j, err := Join(x, y); err == nil {
				joined = append(joined, j)
			}
		}
	}
	return NewSet(Maximal(joined)...)
}

// Maximal returns the elements of vs that are not strictly below any other
// element — the cochain of maximal elements. Duplicates (and mutually-⊑
// pairs, possible only through sets) collapse to the first occurrence.
//
// For large record-only inputs the quadratic scan is pruned by two facts:
// r ⊑ r' requires labels(r) ⊆ labels(r'), so only label-superset groups
// can dominate; and two records whose common atomic field differs are
// incomparable, so groups are bucketed by a discriminating atom when one
// exists. maximalNaive is the reference implementation (property-tested
// equal).
func Maximal(vs []Value) []Value {
	if len(vs) <= 32 {
		return maximalNaive(vs)
	}
	for _, v := range vs {
		if _, ok := v.(*Record); !ok {
			return maximalNaive(vs) // mixed kinds: rare, keep it simple
		}
	}
	return maximalRecords(vs)
}

// maximalNaive is the direct O(n²) definition.
func maximalNaive(vs []Value) []Value {
	var out []Value
	for i, v := range vs {
		dominated := false
		for j, w := range vs {
			if i == j {
				continue
			}
			if Leq(v, w) && !Leq(w, v) {
				dominated = true
				break
			}
			// For equal pairs keep only the first occurrence.
			if j < i && Leq(v, w) && Leq(w, v) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}

// sigGroup collects the records sharing one label set.
type sigGroup struct {
	labels []string
	bits   uint64 // label signature of the shared label set
	// members in input order, with their input indices (for the
	// first-occurrence tie-break on mutually-⊑ pairs).
	recs []*Record
	idx  []int
	// disc is a label whose value is an atom in every member ("" if none);
	// buckets groups members by that atom's key.
	disc    string
	buckets map[string][]int // atom key -> positions in recs
}

func maximalRecords(vs []Value) []Value {
	// Deduplicate by structural key, keeping first occurrences.
	seen := map[string]int{}
	var uniq []*Record
	var uniqIdx []int
	for i, v := range vs {
		k := Key(v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = i
		uniq = append(uniq, v.(*Record))
		uniqIdx = append(uniqIdx, i)
	}

	// Group by label-set signature.
	groups := map[string]*sigGroup{}
	sigOf := func(r *Record) string {
		var b strings.Builder
		for _, l := range r.Labels() {
			b.WriteString(l)
			b.WriteByte(0)
		}
		return b.String()
	}
	for i, r := range uniq {
		s := sigOf(r)
		g, ok := groups[s]
		if !ok {
			g = &sigGroup{labels: r.Labels(), bits: r.labelBits}
			groups[s] = g
		}
		g.recs = append(g.recs, r)
		g.idx = append(g.idx, uniqIdx[i])
	}
	// Pick a discriminating atom label per group and bucket by it.
	for _, g := range groups {
		for _, l := range g.labels {
			allAtoms := true
			for _, r := range g.recs {
				v, _ := r.Get(l)
				switch v.Kind() {
				case KindInt, KindFloat, KindString, KindBool:
				default:
					allAtoms = false
				}
				if !allAtoms {
					break
				}
			}
			if allAtoms {
				g.disc = l
				break
			}
		}
		if g.disc != "" {
			g.buckets = map[string][]int{}
			for i, r := range g.recs {
				v, _ := r.Get(g.disc)
				k := Key(v)
				g.buckets[k] = append(g.buckets[k], i)
			}
		}
	}
	// For each record, search for a dominator among label-superset groups.
	subset := func(a, b []string) bool { // a ⊆ b, both sorted
		i := 0
		for _, l := range a {
			for i < len(b) && b[i] < l {
				i++
			}
			if i >= len(b) || b[i] != l {
				return false
			}
			i++
		}
		return true
	}
	dominatedBy := func(r *Record, rIdx int, g *sigGroup) bool {
		check := func(j int) bool {
			w := g.recs[j]
			if w == r {
				return false
			}
			if Leq(r, w) {
				if !Leq(w, r) {
					return true
				}
				return g.idx[j] < rIdx // mutual ⊑: first occurrence wins
			}
			return false
		}
		if g.disc != "" {
			// The dominator must agree on the discriminating atom; a
			// candidate r lacking the label (or non-atomic there) cannot be
			// below any member that has an atom in it only if the field
			// would be missing in r — but labels(r) ⊆ labels(w) suffices
			// for domination, and if r lacks disc entirely r can still be
			// below w. Only when r *has* an atom at disc can we restrict to
			// the equal-atom bucket.
			if v, ok := r.Get(g.disc); ok {
				switch v.Kind() {
				case KindInt, KindFloat, KindString, KindBool:
					for _, j := range g.buckets[Key(v)] {
						if check(j) {
							return true
						}
					}
					return false
				}
			}
		}
		for j := range g.recs {
			if check(j) {
				return true
			}
		}
		return false
	}

	var out []Value
	for i, r := range uniq {
		labels := r.Labels()
		dominated := false
		for _, g := range groups {
			// Signature prefilter: labels(r) ⊆ g.labels requires r's bits to
			// be covered by the group's bits.
			if r.labelBits&^g.bits != 0 {
				continue
			}
			if len(g.labels) < len(labels) || !subset(labels, g.labels) {
				continue
			}
			if dominatedBy(r, uniqIdx[i], g) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, r)
		}
	}
	return out
}

// Meet returns the greatest object whose information is contained in both a
// and b — what the two objects agree on. Unlike Join it is total: objects
// with nothing in common meet at ⊥ (or, for records, at the empty record).
func Meet(a, b Value) Value {
	if a.Kind() == KindBottom || b.Kind() == KindBottom {
		return Bottom
	}
	switch av := a.(type) {
	case Int, Float, String, Bool, unitValue:
		if Equal(a, b) {
			return a
		}
		return Bottom
	case *Record:
		bv, ok := b.(*Record)
		if !ok {
			return Bottom
		}
		out := NewRecord()
		for i, l := range av.labels {
			if w, ok := bv.Get(l); ok {
				m := Meet(av.values[i], w)
				if m.Kind() != KindBottom {
					out.Set(l, m)
				}
			}
		}
		return out
	case *List:
		bv, ok := b.(*List)
		if !ok || len(av.Elems) != len(bv.Elems) {
			return Bottom
		}
		out := &List{Elems: make([]Value, len(av.Elems))}
		for i := range av.Elems {
			out.Elems[i] = Meet(av.Elems[i], bv.Elems[i])
		}
		return out
	case *Tag:
		bv, ok := b.(*Tag)
		if !ok || av.Label != bv.Label {
			return Bottom
		}
		return NewTag(av.Label, Meet(av.Payload, bv.Payload))
	default:
		if a == b {
			return a
		}
		return Bottom
	}
}
