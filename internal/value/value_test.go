package value

import (
	"errors"
	"testing"

	"dbpl/internal/types"
)

// Objects from the paper's "Inheritance on Values" section.
func paperObjects() (o1, o2, o3 *Record) {
	o1 = Rec("Name", String("J Doe"), "Address", Rec("City", String("Austin")))
	o2 = Rec("Name", String("J Doe"), "Address", Rec("City", String("Austin")),
		"Emp_no", Int(1234))
	o3 = Rec("Name", String("J Doe"),
		"Address", Rec("City", String("Austin"), "Zip", Int(78759)))
	return
}

func TestPaperOrderingExamples(t *testing.T) {
	o1, o2, o3 := paperObjects()
	// o1 ⊑ o2 (new field added) and o1 ⊑ o3 (existing field better defined).
	if !Leq(o1, o2) {
		t.Error("o1 ⊑ o2 should hold (Emp_no added)")
	}
	if !Leq(o1, o3) {
		t.Error("o1 ⊑ o3 should hold (Address refined)")
	}
	if Leq(o2, o1) || Leq(o3, o1) {
		t.Error("the ordering should be strict")
	}
	if Leq(o2, o3) || Leq(o3, o2) {
		t.Error("o2 and o3 are incomparable")
	}
}

func TestPaperJoinExamples(t *testing.T) {
	// {Name = 'J Doe'} ⊔ {Emp_no = 1234} = {Name = 'J Doe', Emp_no = 1234}
	j, err := Join(Rec("Name", String("J Doe")), Rec("Emp_no", Int(1234)))
	if err != nil {
		t.Fatalf("join failed: %v", err)
	}
	want := Rec("Name", String("J Doe"), "Emp_no", Int(1234))
	if !Equal(j, want) {
		t.Errorf("join = %s, want %s", j, want)
	}

	// o2 ⊔ o3 from the paper.
	_, o2, o3 := paperObjects()
	j, err = Join(o2, o3)
	if err != nil {
		t.Fatalf("o2 ⊔ o3 failed: %v", err)
	}
	want = Rec("Name", String("J Doe"),
		"Address", Rec("City", String("Austin"), "Zip", Int(78759)),
		"Emp_no", Int(1234))
	if !Equal(j, want) {
		t.Errorf("o2 ⊔ o3 = %s, want %s", j, want)
	}
}

func TestPaperJoinConflict(t *testing.T) {
	// "we cannot join o1 with {Name = 'K Smith'}".
	o1, _, _ := paperObjects()
	_, err := Join(o1, Rec("Name", String("K Smith")))
	if !errors.Is(err, ErrConflict) {
		t.Errorf("joining records that disagree on Name: err = %v, want ErrConflict", err)
	}
}

func TestJoinUnitAndBottom(t *testing.T) {
	o1, _, _ := paperObjects()
	j, err := Join(Bottom, o1)
	if err != nil || !Equal(j, o1) {
		t.Errorf("⊥ ⊔ o1 = %v, %v; want o1", j, err)
	}
	j, err = Join(o1, Bottom)
	if err != nil || !Equal(j, o1) {
		t.Errorf("o1 ⊔ ⊥ = %v, %v; want o1", j, err)
	}
}

func TestJoinIsLub(t *testing.T) {
	_, o2, o3 := paperObjects()
	j, err := Join(o2, o3)
	if err != nil {
		t.Fatal(err)
	}
	if !Leq(o2, j) || !Leq(o3, j) {
		t.Error("join is not an upper bound")
	}
}

func TestJoinAtomsAndKinds(t *testing.T) {
	if j, err := Join(Int(3), Int(3)); err != nil || !Equal(j, Int(3)) {
		t.Errorf("3 ⊔ 3 = %v, %v", j, err)
	}
	if _, err := Join(Int(3), Int(4)); !errors.Is(err, ErrConflict) {
		t.Error("3 ⊔ 4 should conflict")
	}
	if _, err := Join(Int(3), Float(3)); !errors.Is(err, ErrConflict) {
		t.Error("Int and Float atoms should conflict")
	}
	if _, err := Join(Int(3), Rec()); !errors.Is(err, ErrConflict) {
		t.Error("atom ⊔ record should conflict")
	}
}

func TestJoinLists(t *testing.T) {
	a := NewList(Rec("A", Int(1)), Rec("B", Int(2)))
	b := NewList(Rec("C", Int(3)), Rec("B", Int(2)))
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := NewList(Rec("A", Int(1), "C", Int(3)), Rec("B", Int(2)))
	if !Equal(j, want) {
		t.Errorf("list join = %s, want %s", j, want)
	}
	if _, err := Join(a, NewList(Rec("A", Int(1)))); !errors.Is(err, ErrConflict) {
		t.Error("lists of different length should conflict")
	}
}

func TestJoinTags(t *testing.T) {
	a := NewTag("Circle", Rec("R", Int(2)))
	b := NewTag("Circle", Rec("Color", String("red")))
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := NewTag("Circle", Rec("R", Int(2), "Color", String("red")))
	if !Equal(j, want) {
		t.Errorf("tag join = %s, want %s", j, want)
	}
	if _, err := Join(a, NewTag("Square", Rec())); !errors.Is(err, ErrConflict) {
		t.Error("different tags should conflict")
	}
}

func TestMeet(t *testing.T) {
	_, o2, o3 := paperObjects()
	m := Meet(o2, o3)
	want := Rec("Name", String("J Doe"), "Address", Rec("City", String("Austin")))
	if !Equal(m, want) {
		t.Errorf("o2 ⊓ o3 = %s, want %s", m, want)
	}
	if !Leq(m, o2) || !Leq(m, o3) {
		t.Error("meet is not a lower bound")
	}
	if Meet(Int(1), Int(2)).Kind() != KindBottom {
		t.Error("disagreeing atoms meet at ⊥")
	}
	if !Equal(Meet(Rec("A", Int(1)), Rec("B", Int(2))), Rec()) {
		t.Error("disjoint records meet at the empty record")
	}
}

func TestSetOrdering(t *testing.T) {
	// R ⊑ R' iff every object in R' is above some object in R.
	r := NewSet(Rec("Name", String("J Doe")))
	rp := NewSet(
		Rec("Name", String("J Doe"), "Dept", String("Sales")),
		Rec("Name", String("J Doe"), "Dept", String("Manuf")),
	)
	if !SetLeq(r, rp) {
		t.Error("R ⊑ R' should hold: both R' members refine R's single member")
	}
	if SetLeq(rp, r) {
		t.Error("R' ⊑ R should not hold")
	}
}

func TestSetJoinIsFigureOneShaped(t *testing.T) {
	// A miniature of Figure 1: joining on the shared Dept field.
	people := NewSet(
		Rec("Name", String("J Doe"), "Dept", String("Sales")),
		Rec("Name", String("N Bug")),
	)
	depts := NewSet(
		Rec("Dept", String("Sales"), "Floor", Int(3)),
		Rec("Dept", String("Admin"), "Floor", Int(1)),
	)
	j := SetJoin(people, depts)
	want := NewSet(
		Rec("Name", String("J Doe"), "Dept", String("Sales"), "Floor", Int(3)),
		Rec("Name", String("N Bug"), "Dept", String("Sales"), "Floor", Int(3)),
		Rec("Name", String("N Bug"), "Dept", String("Admin"), "Floor", Int(1)),
	)
	if !Equal(j, want) {
		t.Errorf("set join = %s, want %s", j, want)
	}
	// The result is an upper bound of both inputs.
	if !SetLeq(people, j) || !SetLeq(depts, j) {
		t.Error("set join is not an upper bound under the relation ordering")
	}
}

func TestMaximal(t *testing.T) {
	a := Rec("Name", String("J Doe"))
	b := Rec("Name", String("J Doe"), "Dept", String("Sales"))
	c := Rec("Name", String("K Smith"))
	got := Maximal([]Value{a, b, c})
	if len(got) != 2 {
		t.Fatalf("Maximal kept %d elements, want 2", len(got))
	}
	s := NewSet(got...)
	if !s.Contains(b) || !s.Contains(c) {
		t.Errorf("Maximal = %v, want {b, c}", s)
	}
	// Duplicates collapse.
	if got := Maximal([]Value{a, a.Copy()}); len(got) != 1 {
		t.Errorf("duplicates should collapse, got %d", len(got))
	}
	if got := Maximal(nil); got != nil {
		t.Errorf("Maximal(nil) = %v, want nil", got)
	}
}

func TestRecordMutation(t *testing.T) {
	r := Rec("Name", String("J Doe"))
	r.Set("Emp_no", Int(1234))
	if v, ok := r.Get("Emp_no"); !ok || !Equal(v, Int(1234)) {
		t.Error("Set should add the field")
	}
	r.Set("Emp_no", Int(99))
	if v, _ := r.Get("Emp_no"); !Equal(v, Int(99)) {
		t.Error("Set should replace the field")
	}
	if !r.Delete("Emp_no") {
		t.Error("Delete should report removal")
	}
	if _, ok := r.Get("Emp_no"); ok {
		t.Error("field should be gone after Delete")
	}
	if r.Delete("Emp_no") {
		t.Error("second Delete should report absence")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRecordIdentityPreservedOnExtension(t *testing.T) {
	// The paper's complaint about Amber: extending a record should not
	// require delete-and-readd, which breaks references. Our records extend
	// in place.
	person := Rec("Name", String("J Doe"))
	holder := NewList(person) // a reference elsewhere in the database
	person.Set("Emp_no", Int(1234))
	got := holder.Elems[0].(*Record)
	if _, ok := got.Get("Emp_no"); !ok {
		t.Error("reference should observe the extension")
	}
	if got != person {
		t.Error("identity should be preserved")
	}
}

func TestSetSemantics(t *testing.T) {
	s := NewSet()
	if !s.Add(Rec("A", Int(1))) {
		t.Error("first add should change the set")
	}
	if s.Add(Rec("A", Int(1))) {
		t.Error("duplicate add should not change the set")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Contains(Rec("A", Int(1))) {
		t.Error("Contains should use structural equality")
	}
	if !s.Remove(Rec("A", Int(1))) {
		t.Error("Remove should find the structural match")
	}
	if s.Len() != 0 || s.Contains(Rec("A", Int(1))) {
		t.Error("set should be empty after removal")
	}
	// Removal keeps the key index consistent.
	s = NewSet(Int(1), Int(2), Int(3))
	s.Remove(Int(1))
	if !s.Contains(Int(3)) || !s.Contains(Int(2)) || s.Contains(Int(1)) {
		t.Error("index corrupted by removal")
	}
}

func TestCopyIsDeep(t *testing.T) {
	o1, _, _ := paperObjects()
	cp := Copy(o1).(*Record)
	addr := o1.MustGet("Address").(*Record)
	addr.Set("Zip", Int(78759))
	cpAddr := cp.MustGet("Address").(*Record)
	if _, ok := cpAddr.Get("Zip"); ok {
		t.Error("copy shares nested structure with the original")
	}
}

func TestKeyAndEqual(t *testing.T) {
	// Field insertion order must not matter.
	a := Rec("A", Int(1), "B", Int(2))
	b := Rec("B", Int(2), "A", Int(1))
	if !Equal(a, b) {
		t.Error("records with same fields should be equal")
	}
	// Set element order must not matter.
	s1 := NewSet(Int(1), Int(2))
	s2 := NewSet(Int(2), Int(1))
	if Key(s1) != Key(s2) {
		t.Error("set keys should be order-insensitive")
	}
	// Int vs Float with same numeric value are distinct.
	if Equal(Int(3), Float(3)) {
		t.Error("Int(3) and Float(3) should differ")
	}
	// Key injectivity smoke cases (shapes that could collide naively).
	if Key(NewList()) == Key(NewSet()) {
		t.Error("empty list and empty set should have distinct keys")
	}
	if Key(String("12")) == Key(String("1")+"2") {
		// identical content should collide — sanity check the test itself
	} else {
		t.Error("equal strings must share a key")
	}
	if Key(Rec("A", String("B=C"))) == Key(Rec("A", String("B"), "C", String(""))) {
		t.Error("keys must not be confusable by separator injection")
	}
}

func TestTypeOf(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(3), "Int"},
		{Float(3.5), "Float"},
		{String("x"), "String"},
		{Bool(true), "Bool"},
		{Unit, "Unit"},
		{Bottom, "Bottom"},
		{Rec("Name", String("J Doe"), "Age", Int(30)), "{Age: Int, Name: String}"},
		{NewList(Int(1), Int(2)), "List[Int]"},
		{NewList(), "List[Bottom]"},
		{NewList(Int(1), Float(2)), "List[Float]"},
		{NewSet(Rec("A", Int(1)), Rec("A", Int(2), "B", Int(3))), "Set[{A: Int}]"},
		{NewTag("Circle", Float(1)), "[Circle: Float]"},
		{NewTypeVal(types.Int), "Type"},
	}
	for _, c := range cases {
		got := TypeOf(c.v)
		if !types.Equal(got, types.MustParse(c.want)) {
			t.Errorf("TypeOf(%s) = %s, want %s", c.v, got, c.want)
		}
	}
}

func TestConformsSubsumption(t *testing.T) {
	emp := Rec("Name", String("J Doe"), "Empno", Int(1), "Dept", String("Sales"))
	person := types.MustParse("{Name: String}")
	employee := types.MustParse("{Name: String, Empno: Int, Dept: String}")
	if !Conforms(emp, employee) {
		t.Error("employee value should conform to Employee")
	}
	if !Conforms(emp, person) {
		t.Error("employee value should conform to Person by subsumption")
	}
	if Conforms(Rec("Name", String("X")), employee) {
		t.Error("bare person should not conform to Employee")
	}
}

func TestConformsRecursivePartType(t *testing.T) {
	// Finite parts with empty component lists inhabit the recursive Part
	// type because List[Bottom] ≤ List[T] for every T.
	part := types.MustParse("rec p . {Name: String, Components: List[{SubPart: p, Qty: Int}]}")
	base := Rec("Name", String("bolt"), "Components", NewList())
	assembly := Rec("Name", String("frame"),
		"Components", NewList(Rec("SubPart", base, "Qty", Int(8))))
	if !Conforms(base, part) {
		t.Error("base part should conform to Part")
	}
	if !Conforms(assembly, part) {
		t.Error("assembly should conform to Part")
	}
	if Conforms(Rec("Name", String("x")), part) {
		t.Error("record missing Components should not conform")
	}
}

func TestTypeOfCyclicValue(t *testing.T) {
	// A cyclic record must not hang TypeOf.
	r := NewRecord()
	r.Set("Self", r)
	got := TypeOf(r)
	want := types.NewRecord(types.Field{Label: "Self", Type: types.Top})
	if !types.Equal(got, want) {
		t.Errorf("TypeOf(cyclic) = %s, want %s", got, want)
	}
}

func TestTypeOfSharedDag(t *testing.T) {
	shared := Rec("K", Int(1))
	r := Rec("A", shared, "B", shared)
	got := TypeOf(r)
	if !types.Equal(got, types.MustParse("{A: {K: Int}, B: {K: Int}}")) {
		t.Errorf("TypeOf(dag) = %s", got)
	}
}

func TestStringRendering(t *testing.T) {
	o1, _, _ := paperObjects()
	want := "{Address = {City = 'Austin'}, Name = 'J Doe'}"
	if o1.String() != want {
		t.Errorf("String = %q, want %q", o1.String(), want)
	}
	if got := NewSet(Int(2), Int(1)).String(); got != NewSet(Int(1), Int(2)).String() {
		t.Error("set String should be canonical")
	}
}
