package index

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

var (
	personT   = types.MustParse("{Name: String, Address: {City: String}}")
	employeeT = types.MustParse("{Name: String, Address: {City: String}, Empno: Int, Dept: String}")
	studentT  = types.MustParse("{Name: String, Address: {City: String}, StudentID: Int}")
)

func person(name, city string) *value.Record {
	return value.Rec("Name", value.String(name),
		"Address", value.Rec("City", value.String(city)))
}

func employee(name, city string, empno int, dept string) *value.Record {
	r := person(name, city)
	r.Set("Empno", value.Int(int64(empno)))
	r.Set("Dept", value.String(dept))
	return r
}

func student(name, city string, id int) *value.Record {
	r := person(name, city)
	r.Set("StudentID", value.Int(int64(id)))
	return r
}

func addAll(s *Set, ds ...*dynamic.Dynamic) *Set {
	ops := make([]Op, len(ds))
	for i, d := range ds {
		ops[i] = Op{Add: d}
	}
	s, _ = s.Apply(ops)
	return s
}

// mixed returns a population with records of several types plus non-record
// members, in a fixed insertion order.
func mixed() []*dynamic.Dynamic {
	return []*dynamic.Dynamic{
		dynamic.Make(person("P1", "Austin")),
		dynamic.Make(employee("E1", "Austin", 1, "Sales")),
		dynamic.Make(person("P2", "Moose")),
		dynamic.Make(student("S1", "Austin", 100)),
		dynamic.Make(employee("E2", "Glasgow", 2, "Manuf")),
		dynamic.Make(value.Int(42)),
		dynamic.Make(value.String("anything")),
		dynamic.Make(employee("E3", "Philadelphia", 3, "Sales")),
	}
}

// refGet is the reference answer: a full scan filtering by the subtype
// check, in insertion order.
func refGet(members []*dynamic.Dynamic, want *types.Interned) []*dynamic.Dynamic {
	var out []*dynamic.Dynamic
	for _, d := range members {
		if types.SubtypeInterned(d.Interned(), want) {
			out = append(out, d)
		}
	}
	return out
}

func sameDyns(got []Entry, want []*dynamic.Dynamic) error {
	if len(got) != len(want) {
		return fmt.Errorf("len: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Dyn != want[i] {
			return fmt.Errorf("entry %d: got %v want %v", i, got[i].Dyn, want[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq >= got[i].Seq {
			return fmt.Errorf("seq order violated at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
	return nil
}

func TestGetEntriesMatchesReferenceScan(t *testing.T) {
	members := mixed()
	s := addAll(NewSet(), members...)
	for _, q := range []types.Type{personT, employeeT, studentT, types.Int, types.Top} {
		want := types.Intern(q)
		got, _ := s.GetEntries(want)
		if err := sameDyns(got, refGet(members, want)); err != nil {
			t.Errorf("Get[%s]: %v", q, err)
		}
	}
}

func TestMatchStatsAgreesWithGetEntries(t *testing.T) {
	s := addAll(NewSet(), mixed()...)
	for _, q := range []types.Type{personT, employeeT, types.Int, types.Top} {
		want := types.Intern(q)
		entries, m1 := s.GetEntries(want)
		n, m2 := s.MatchStats(want)
		if n != len(entries) || m1 != m2 {
			t.Errorf("MatchStats[%s] = (%d,%d), GetEntries = (%d,%d)", q, n, m2, len(entries), m1)
		}
	}
}

func TestRemoveMaintainsExtentsAndIndexes(t *testing.T) {
	members := mixed()
	s := addAll(NewSet(Def{Field: "Empno"}), members...)
	victim := members[4] // E2
	s2, stats := s.Apply([]Op{{Remove: victim}})
	if stats.EntriesTouched == 0 {
		t.Fatalf("remove touched nothing")
	}
	var left []*dynamic.Dynamic
	for _, d := range members {
		if d != victim {
			left = append(left, d)
		}
	}
	got, _ := s2.GetEntries(types.Intern(employeeT))
	if err := sameDyns(got, refGet(left, types.Intern(employeeT))); err != nil {
		t.Errorf("after remove: %v", err)
	}
	cand, ok := s2.Candidates("Empno")
	if !ok {
		t.Fatalf("Empno index gone")
	}
	for _, e := range cand {
		if e.Dyn == victim {
			t.Errorf("removed member still an index candidate")
		}
	}
	// The parent Set is untouched (COW): the victim is still there.
	before, _ := s.GetEntries(types.Intern(employeeT))
	if err := sameDyns(before, refGet(members, types.Intern(employeeT))); err != nil {
		t.Errorf("parent mutated by Apply: %v", err)
	}
}

// TestFieldIndexSoundAndComplete: the candidate set must contain every
// member that conforms to a record type requiring the field (complete),
// and the bucket statistics must reflect the atom values.
func TestFieldIndexSoundAndComplete(t *testing.T) {
	members := mixed()
	s := addAll(NewSet(Def{Field: "Dept"}), members...)
	cand, ok := s.Candidates("Dept")
	if !ok {
		t.Fatal("Dept not indexed")
	}
	in := map[*dynamic.Dynamic]bool{}
	for _, e := range cand {
		in[e.Dyn] = true
	}
	deptT := types.Intern(types.MustParse("{Dept: String}"))
	for _, d := range refGet(members, deptT) {
		if !in[d] {
			t.Errorf("member %v conforms to {Dept:String} but is not a candidate", d)
		}
	}
	fi := s.Field("Dept")
	if fi.Distinct() != 2 { // Sales, Manuf
		t.Errorf("Distinct = %d, want 2", fi.Distinct())
	}
	if got := len(fi.Bucket(value.Key(value.String("Sales")))); got != 2 {
		t.Errorf("Sales bucket = %d, want 2", got)
	}
	if fi.Defined() != 3 {
		t.Errorf("Defined = %d, want 3", fi.Defined())
	}
}

func TestWithFieldBackfillEqualsIncremental(t *testing.T) {
	members := mixed()
	inc := addAll(NewSet(Def{Field: "StudentID"}), members...)
	back := addAll(NewSet(), members...).WithField(Def{Field: "StudentID"})
	a, aok := inc.Candidates("StudentID")
	b, bok := back.Candidates("StudentID")
	if !aok || !bok {
		t.Fatal("index missing")
	}
	if len(a) != len(b) {
		t.Fatalf("candidates: incremental %d, backfill %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Dyn != b[i].Dyn {
			t.Errorf("candidate %d differs", i)
		}
	}
	if inc.Field("StudentID").Distinct() != back.Field("StudentID").Distinct() {
		t.Error("Distinct differs between incremental and backfill")
	}
}

func TestDropField(t *testing.T) {
	s := addAll(NewSet(Def{Field: "Empno"}), mixed()...)
	s2, ok := s.DropField("Empno")
	if !ok {
		t.Fatal("DropField said undeclared")
	}
	if _, ok := s2.Candidates("Empno"); ok {
		t.Error("index survives drop")
	}
	if _, ok := s.Candidates("Empno"); !ok {
		t.Error("drop mutated the parent")
	}
	if _, ok := s2.DropField("Empno"); ok {
		t.Error("second drop reported declared")
	}
	if s.WithField(Def{Field: "Empno"}) != s {
		t.Error("re-declaring an existing index is not the identity")
	}
}

func TestRebuildEqualsIncremental(t *testing.T) {
	members := mixed()
	inc := addAll(NewSet(Def{Field: "Empno"}), members...)
	reb := Rebuild(members, Def{Field: "Empno"})
	for _, q := range []types.Type{personT, employeeT, types.Top} {
		a, _ := inc.GetEntries(types.Intern(q))
		b, _ := reb.GetEntries(types.Intern(q))
		if len(a) != len(b) {
			t.Fatalf("Get[%s]: incremental %d, rebuild %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Dyn != b[i].Dyn {
				t.Errorf("Get[%s] entry %d differs", q, i)
			}
		}
	}
}

func TestDefsSorted(t *testing.T) {
	s := NewSet(Def{Field: "Zeta"}, Def{Field: "Alpha"})
	defs := s.Defs()
	if len(defs) != 2 || defs[0].Field != "Alpha" || defs[1].Field != "Zeta" {
		t.Errorf("Defs = %v", defs)
	}
}

// randomMember draws a member from a small universe of shapes so random
// databases exercise multi-extent merges, the field indexes, and the odd
// (non-record) path.
func randomMember(rng *rand.Rand) *dynamic.Dynamic {
	switch rng.Intn(6) {
	case 0:
		return dynamic.Make(person(fmt.Sprintf("P%d", rng.Intn(50)), "Austin"))
	case 1:
		return dynamic.Make(employee(fmt.Sprintf("E%d", rng.Intn(50)), "Moose", rng.Intn(10), "Sales"))
	case 2:
		return dynamic.Make(employee(fmt.Sprintf("E%d", rng.Intn(50)), "Glasgow", rng.Intn(10), "Manuf"))
	case 3:
		return dynamic.Make(student(fmt.Sprintf("S%d", rng.Intn(50)), "Austin", rng.Intn(10)))
	case 4:
		return dynamic.Make(value.Int(int64(rng.Intn(100))))
	default:
		return dynamic.Make(value.String(fmt.Sprintf("s%d", rng.Intn(100))))
	}
}

// TestQuickSetEquivalentToScan is the quick-check property: after a random
// interleaving of adds and removes, every query path of the Set agrees
// with the reference full scan over the surviving members.
func TestQuickSetEquivalentToScan(t *testing.T) {
	queries := []*types.Interned{
		types.Intern(personT),
		types.Intern(employeeT),
		types.Intern(studentT),
		types.Intern(types.Int),
		types.Intern(types.Top),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(Def{Field: "Empno"}, Def{Field: "StudentID"})
		var alive []*dynamic.Dynamic
		nops := 20 + rng.Intn(60)
		for i := 0; i < nops; i++ {
			if len(alive) > 0 && rng.Intn(4) == 0 {
				k := rng.Intn(len(alive))
				s, _ = s.Apply([]Op{{Remove: alive[k]}})
				alive = append(alive[:k:k], alive[k+1:]...)
			} else {
				d := randomMember(rng)
				s, _ = s.Apply([]Op{{Add: d}})
				alive = append(alive, d)
			}
		}
		if s.Len() != len(alive) {
			t.Logf("Len = %d, want %d", s.Len(), len(alive))
			return false
		}
		for _, q := range queries {
			got, _ := s.GetEntries(q)
			if err := sameDyns(got, refGet(alive, q)); err != nil {
				t.Logf("seed %d Get[%s]: %v", seed, q.Type(), err)
				return false
			}
		}
		// Index completeness: every member conforming to a record type
		// requiring the field is a candidate.
		for _, field := range []string{"Empno", "StudentID"} {
			cand, _ := s.Candidates(field)
			in := map[*dynamic.Dynamic]bool{}
			for _, e := range cand {
				in[e.Dyn] = true
			}
			ft := types.Intern(types.NewRecord(types.Field{Label: field, Type: types.Int}))
			for _, d := range refGet(alive, ft) {
				if !in[d] {
					t.Logf("seed %d: %v missing from %s candidates", seed, d, field)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMaintenanceStress publishes successive Sets through an
// atomic pointer while readers query lock-free — the server's exact usage
// — and checks every observed snapshot is internally consistent. Run
// under -race (make race / index-tests).
func TestConcurrentMaintenanceStress(t *testing.T) {
	var pub atomic.Pointer[Set]
	pub.Store(NewSet(Def{Field: "Empno"}))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	emp := types.Intern(employeeT)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := pub.Load()
				got, _ := s.GetEntries(emp)
				n, _ := s.MatchStats(emp)
				if n != len(got) {
					t.Errorf("reader %d: MatchStats %d != entries %d", r, n, len(got))
					return
				}
				for i := 1; i < len(got); i++ {
					if got[i-1].Seq >= got[i].Seq {
						t.Errorf("reader %d: out of order", r)
						return
					}
				}
				if cand, ok := s.Candidates("Empno"); ok {
					for i := 1; i < len(cand); i++ {
						if cand[i-1].Seq >= cand[i].Seq {
							t.Errorf("reader %d: candidates out of order", r)
							return
						}
					}
				}
			}
		}(r)
	}
	rng := rand.New(rand.NewSource(1))
	var alive []*dynamic.Dynamic
	for i := 0; i < 3000; i++ {
		s := pub.Load()
		if len(alive) > 64 || (len(alive) > 0 && rng.Intn(3) == 0) {
			k := rng.Intn(len(alive))
			s, _ = s.Apply([]Op{{Remove: alive[k]}})
			alive = append(alive[:k:k], alive[k+1:]...)
		} else {
			d := randomMember(rng)
			s, _ = s.Apply([]Op{{Add: d}})
			alive = append(alive, d)
		}
		pub.Store(s)
	}
	close(stop)
	wg.Wait()
	final := pub.Load()
	if final.Len() != len(alive) {
		t.Errorf("final Len = %d, want %d", final.Len(), len(alive))
	}
}
