// Package index makes the paper's maintained extents — and their
// generalization, field-value indexes — first-class, immutable values that
// the server publishes behind the same atomic pointer as the committed
// state. "A type is a very large relation" (experiment E10) becomes an
// executable access path: a Set holds one maintained extent per distinct
// member type plus any number of declared field indexes, and answers a
// GET-by-subtype query by unioning the extents whose type passes the
// (cached, pointer-keyed) subtype check instead of scanning members.
//
// # Copy-on-write discipline
//
// A Set is immutable once published. Apply returns the successor Set with
// a commit group's membership delta applied, sharing every untouched
// structure with its parent. Appends may reuse spare capacity of the
// parent's backing arrays — safe under the *single-successor* rule: a Set
// may be Apply'd (or WithField'd/DropField'd) at most once, and only the
// newest Set in a lineage may be advanced. The server guarantees this by
// serializing writers through commitMu, exactly the discipline of the
// core engine's published COW slices. Readers never take a lock.
//
// Unlike the core engine's per-shard extents (16 slices re-merged on
// every read — the ~4× high-selectivity regression documented in E11),
// a Set keeps each extent as one flat, insertion-ordered slice, so a
// high-selectivity read costs exactly the result walk. E16 measures the
// repair.
//
// # Field-value indexes
//
// A Def declares an index on a record field label. The index keeps, in
// insertion order, every member whose declared type can possibly conform
// to a record type requiring that field — the 64-bit label signatures
// from the interning layer (types.LabelBit) make the membership test one
// mask check — plus hash buckets keyed by the field's atomic value for
// members that define it atomically (the join planner's statistics).
// The index is a sound prefilter, never a verdict: the planner's index
// path re-checks every candidate against the requested type, so the
// quick-check property "planner path ≡ reference scan" holds by
// construction (plan/quick tests enforce it anyway).
package index

import (
	"sort"

	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Entry is one indexed member: the dynamic plus the Set-wide sequence
// number that restores insertion order when extents are unioned.
type Entry struct {
	Dyn *dynamic.Dynamic
	Seq uint64
}

// Def declares one field-value index.
type Def struct {
	// Field is the record label the index covers.
	Field string
}

// Op is one membership change of a commit group, in application order:
// Remove (when non-nil) leaves the database, then Add (when non-nil)
// enters it. A root rebind is one Op carrying both.
type Op struct {
	Remove *dynamic.Dynamic
	Add    *dynamic.Dynamic
}

// ApplyStats reports what one Apply touched, for the maintenance-cost
// telemetry.
type ApplyStats struct {
	// EntriesTouched counts entry insertions and removals summed over the
	// extent map and every field index.
	EntriesTouched int
}

// Extent is the maintained extent of one interned type: the members whose
// declared type *is* (not merely conforms to) the type, as one flat
// seq-ascending slice. A subtype query unions the extents whose types pass
// the cached subtype check.
type Extent struct {
	in    *types.Interned
	items []Entry
}

// Type returns the extent's interned type handle.
func (e *Extent) Type() *types.Interned { return e.in }

// Items returns the extent's members in insertion order. The slice is
// shared and must not be mutated.
func (e *Extent) Items() []Entry { return e.items }

// Len reports the member count.
func (e *Extent) Len() int { return len(e.items) }

// FieldIndex is one declared field-value index; see the package comment.
type FieldIndex struct {
	field string
	bit   uint64 // types.LabelBit(field): the signature prefilter mask

	// defined holds, seq-ascending, every member whose declared type is a
	// record type with the field — by record-width subtyping the complete
	// candidate set for any record type requiring it.
	defined []Entry
	// odd holds members whose declared type is not a record type at all.
	// Such members cannot be rejected by the field rule without a full
	// subtype check, so the index path keeps them as candidates too. In a
	// database of records it stays empty.
	odd []Entry
	// buckets groups the members of defined whose *value* carries the
	// field as an atom, keyed by value.Key of that atom — the maintained
	// form of the partition JoinFast builds per call, and the planner's
	// distinct-count statistic.
	buckets map[string][]Entry
}

// Field returns the indexed label.
func (fi *FieldIndex) Field() string { return fi.field }

// Defined returns the number of members whose type defines the field.
func (fi *FieldIndex) Defined() int { return len(fi.defined) }

// Distinct returns the number of distinct atomic values the field takes.
func (fi *FieldIndex) Distinct() int { return len(fi.buckets) }

// Bucket returns the members whose value defines the field as exactly the
// atom with canonical key k, in insertion order. The slice is shared.
func (fi *FieldIndex) Bucket(k string) []Entry { return fi.buckets[k] }

// hasField reports whether the member's declared type makes it a possible
// match for a record type requiring the indexed field: a record type
// carrying the field (the label-signature mask rejects most non-members
// before the lookup), or — conservatively — not a record type at all.
func (fi *FieldIndex) hasField(in *types.Interned) (member, odd bool) {
	rt, ok := in.Type().(*types.Record)
	if !ok {
		return false, true
	}
	if rt.LabelBits()&fi.bit == 0 {
		return false, false // signature: the field cannot be present
	}
	_, ok = rt.Lookup(fi.field)
	return ok, false
}

// atomOf extracts the member value's indexed field when it is an atom.
func (fi *FieldIndex) atomOf(d *dynamic.Dynamic) (string, bool) {
	rec, ok := d.Value().(*value.Record)
	if !ok {
		return "", false
	}
	fv, ok := rec.Get(fi.field)
	if !ok {
		return "", false
	}
	switch fv.Kind() {
	case value.KindInt, value.KindFloat, value.KindString, value.KindBool:
		return value.Key(fv), true
	}
	return "", false
}

// Set is an immutable collection of maintained extents and field indexes
// over one committed membership; see the package comment for the
// copy-on-write discipline.
type Set struct {
	seq    uint64 // next sequence number to assign
	total  int    // members across all extents
	byType map[*types.Interned]*Extent
	fields map[string]*FieldIndex
}

// NewSet returns an empty Set with the given field indexes declared.
func NewSet(defs ...Def) *Set {
	s := &Set{
		byType: map[*types.Interned]*Extent{},
		fields: map[string]*FieldIndex{},
	}
	for _, d := range defs {
		s.fields[d.Field] = newFieldIndex(d.Field)
	}
	return s
}

func newFieldIndex(field string) *FieldIndex {
	return &FieldIndex{field: field, bit: types.LabelBit(field), buckets: map[string][]Entry{}}
}

// Len reports the total member count.
func (s *Set) Len() int { return s.total }

// Types reports the number of distinct member types (= maintained extents).
func (s *Set) Types() int { return len(s.byType) }

// Extent returns the maintained extent for the interned type, nil when no
// member has it.
func (s *Set) Extent(in *types.Interned) *Extent { return s.byType[in] }

// Field returns the declared index for the label, nil when undeclared.
func (s *Set) Field(label string) *FieldIndex { return s.fields[label] }

// Defs returns the declared field indexes in sorted label order.
func (s *Set) Defs() []Def {
	labels := make([]string, 0, len(s.fields))
	for l := range s.fields {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]Def, len(labels))
	for i, l := range labels {
		out[i] = Def{Field: l}
	}
	return out
}

// clone is the shallow successor: maps copied, slices shared.
func (s *Set) clone() *Set {
	next := &Set{
		seq:    s.seq,
		total:  s.total,
		byType: make(map[*types.Interned]*Extent, len(s.byType)+1),
		fields: make(map[string]*FieldIndex, len(s.fields)),
	}
	for in, e := range s.byType {
		next.byType[in] = e
	}
	for l, fi := range s.fields {
		next.fields[l] = fi
	}
	return next
}

// removeEntry returns items without the entry holding d, always copying,
// and reports whether it was present.
func removeEntry(items []Entry, d *dynamic.Dynamic) ([]Entry, bool) {
	for i := range items {
		if items[i].Dyn == d {
			next := make([]Entry, 0, len(items)-1)
			next = append(next, items[:i]...)
			next = append(next, items[i+1:]...)
			return next, true
		}
	}
	return items, false
}

// Apply returns the successor Set with the commit group's ops applied in
// order, together with maintenance statistics. Apply must only be called
// on the newest Set of a lineage, at most once (the single-successor
// rule); the caller serializes writers.
func (s *Set) Apply(ops []Op) (*Set, ApplyStats) {
	next := s.clone()
	var stats ApplyStats
	for _, op := range ops {
		if op.Remove != nil {
			stats.EntriesTouched += next.remove(op.Remove)
		}
		if op.Add != nil {
			stats.EntriesTouched += next.add(op.Add)
		}
	}
	return next, stats
}

// add appends d to its extent and every covering field index. Called on a
// fresh clone only.
func (next *Set) add(d *dynamic.Dynamic) int {
	e := Entry{Dyn: d, Seq: next.seq}
	next.seq++
	next.total++
	in := d.Interned()
	touched := 1
	ext := next.byType[in]
	if ext == nil {
		next.byType[in] = &Extent{in: in, items: []Entry{e}}
	} else {
		// append may reuse the parent's spare capacity: safe, because older
		// published Sets hold shorter slice headers and the single-successor
		// rule means no sibling Set appends to the same array.
		next.byType[in] = &Extent{in: in, items: append(ext.items, e)}
	}
	for l, fi := range next.fields {
		member, odd := fi.hasField(in)
		if !member && !odd {
			continue
		}
		nf := &FieldIndex{field: fi.field, bit: fi.bit, defined: fi.defined, odd: fi.odd, buckets: fi.buckets}
		if odd {
			nf.odd = append(nf.odd, e)
		} else {
			nf.defined = append(nf.defined, e)
			if k, ok := nf.atomOf(d); ok {
				nb := make(map[string][]Entry, len(nf.buckets)+1)
				for bk, bv := range nf.buckets {
					nb[bk] = bv
				}
				nb[k] = append(nb[k], e)
				nf.buckets = nb
			}
		}
		next.fields[l] = nf
		touched++
	}
	return touched
}

// remove deletes d from its extent and every covering field index,
// reporting entries touched. Called on a fresh clone only.
func (next *Set) remove(d *dynamic.Dynamic) int {
	in := d.Interned()
	touched := 0
	if ext := next.byType[in]; ext != nil {
		if items, ok := removeEntry(ext.items, d); ok {
			touched++
			next.total--
			if len(items) == 0 {
				delete(next.byType, in)
			} else {
				next.byType[in] = &Extent{in: in, items: items}
			}
		}
	}
	for l, fi := range next.fields {
		member, odd := fi.hasField(in)
		if !member && !odd {
			continue
		}
		nf := &FieldIndex{field: fi.field, bit: fi.bit, defined: fi.defined, odd: fi.odd, buckets: fi.buckets}
		changed := false
		if odd {
			nf.odd, changed = removeEntry(nf.odd, d)
		} else {
			nf.defined, changed = removeEntry(nf.defined, d)
			if k, ok := nf.atomOf(d); ok {
				if items, hit := removeEntry(nf.buckets[k], d); hit {
					nb := make(map[string][]Entry, len(nf.buckets))
					for bk, bv := range nf.buckets {
						nb[bk] = bv
					}
					if len(items) == 0 {
						delete(nb, k)
					} else {
						nb[k] = items
					}
					nf.buckets = nb
				}
			}
		}
		if changed {
			next.fields[l] = nf
			touched++
		}
	}
	return touched
}

// WithField returns the successor Set with a field index declared and
// backfilled from the current membership. Declaring an existing field is
// the identity. Single-successor rule applies.
func (s *Set) WithField(d Def) *Set {
	if _, ok := s.fields[d.Field]; ok {
		return s
	}
	next := s.clone()
	fi := newFieldIndex(d.Field)
	for _, e := range s.All() {
		member, odd := fi.hasField(e.Dyn.Interned())
		switch {
		case odd:
			fi.odd = append(fi.odd, e)
		case member:
			fi.defined = append(fi.defined, e)
			if k, ok := fi.atomOf(e.Dyn); ok {
				fi.buckets[k] = append(fi.buckets[k], e)
			}
		}
	}
	next.fields[d.Field] = fi
	return next
}

// DropField returns the successor Set without the field index, and
// whether it was declared.
func (s *Set) DropField(label string) (*Set, bool) {
	if _, ok := s.fields[label]; !ok {
		return s, false
	}
	next := s.clone()
	delete(next.fields, label)
	return next, true
}

// mergeBySeq restores global insertion order across seq-ascending parts
// with a tree of two-way merges (no comparison sort). The result may
// alias an input when only one part is non-empty.
func mergeBySeq(parts [][]Entry, total int) []Entry {
	live, last := 0, -1
	for i := range parts {
		if len(parts[i]) > 0 {
			live, last = live+1, i
		}
	}
	if live == 0 {
		return nil
	}
	if live == 1 {
		return parts[last]
	}
	cur := make([][]Entry, len(parts), len(parts)+1)
	copy(cur, parts)
	buf, alt := make([]Entry, 0, total), make([]Entry, 0, total)
	for len(cur) > 1 {
		if len(cur)%2 == 1 {
			cur = append(cur, nil)
		}
		dst := buf[:0]
		next := cur[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			start := len(dst)
			dst = merge2(dst, cur[i], cur[i+1])
			next = append(next, dst[start:len(dst):len(dst)])
		}
		cur = next
		buf, alt = alt, dst
	}
	return cur[0]
}

func merge2(dst, a, b []Entry) []Entry {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Seq <= b[j].Seq {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// All returns every member in insertion order.
func (s *Set) All() []Entry {
	parts := make([][]Entry, 0, len(s.byType))
	for _, e := range s.byType {
		parts = append(parts, e.items)
	}
	return mergeBySeq(parts, s.total)
}

// GetEntries answers the subtype query: every member whose declared type
// conforms to want, in insertion order, by unioning the matching extents.
// matched reports how many extents passed the (cached) subtype check —
// the planner's merge-width estimate confirmed.
func (s *Set) GetEntries(want *types.Interned) (entries []Entry, matched int) {
	parts := make([][]Entry, 0, 8)
	total := 0
	for in, e := range s.byType {
		if types.SubtypeInterned(in, want) {
			parts = append(parts, e.items)
			total += len(e.items)
		}
	}
	return mergeBySeq(parts, total), len(parts)
}

// MatchStats sizes the subtype query without materializing it: the result
// cardinality and the number of matching extents. The cost is one cached
// subtype check per distinct member type.
func (s *Set) MatchStats(want *types.Interned) (result, matched int) {
	for in, e := range s.byType {
		if types.SubtypeInterned(in, want) {
			result += len(e.items)
			matched++
		}
	}
	return result, matched
}

// Candidates returns the index path's candidate set for a record query
// requiring the indexed field: the members whose type defines it plus the
// conservatively kept non-record-typed members, in insertion order. The
// caller must still check every candidate against the requested type. ok
// is false when the field is not indexed.
func (s *Set) Candidates(field string) (entries []Entry, ok bool) {
	fi := s.fields[field]
	if fi == nil {
		return nil, false
	}
	if len(fi.odd) == 0 {
		return fi.defined, true
	}
	return mergeBySeq([][]Entry{fi.defined, fi.odd}, len(fi.defined)+len(fi.odd)), true
}

// CandidateCount sizes the index path for a field without materializing
// it; ok is false when the field is not indexed.
func (s *Set) CandidateCount(field string) (n int, ok bool) {
	fi := s.fields[field]
	if fi == nil {
		return 0, false
	}
	return len(fi.defined) + len(fi.odd), true
}

// Rebuild constructs a Set from scratch: members added in the given
// order (their insertion order), with the given field indexes declared.
// This is the recovery fallback — a store reopened after a crash, a
// salvaged log, or a follower catching up rebuilds its Set from the
// committed roots, so an index can never be ahead of the durable state.
func Rebuild(members []*dynamic.Dynamic, defs ...Def) *Set {
	s := NewSet(defs...)
	ops := make([]Op, len(members))
	for i, d := range members {
		ops[i] = Op{Add: d}
	}
	s, _ = s.Apply(ops)
	return s
}
