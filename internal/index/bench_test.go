// Benchmarks for the E16 grid: the maintained flat extent and the field
// index against the same mixed population the root package's
// BenchmarkGetScan (full scan) and BenchmarkGetExtent (the E11 sharded
// re-merge) measure. The packing into core.Packed is included so the
// numbers are directly comparable with db.Get, which returns Packed.
package index

import (
	"fmt"
	"math/rand"
	"testing"

	"dbpl/internal/core"
	"dbpl/internal/dynamic"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// benchSet builds the root bench_test.go fillMixed population (seed 42,
// member 0 always an employee) as an index.Set.
func benchSet(n int, sel float64, defs ...Def) *Set {
	rng := rand.New(rand.NewSource(42))
	ops := make([]Op, n)
	for i := 0; i < n; i++ {
		if i == 0 || rng.Float64() < sel {
			ops[i] = Op{Add: dynamic.Make(employee(fmt.Sprintf("P%06d", i), "Austin", i, "Sales"))}
		} else {
			ops[i] = Op{Add: dynamic.Make(person(fmt.Sprintf("P%06d", i), "Austin"))}
		}
	}
	s, _ := NewSet(defs...).Apply(ops)
	return s
}

func pack(entries []Entry) []core.Packed {
	out := make([]core.Packed, len(entries))
	for i, e := range entries {
		out[i] = core.Packed{Value: e.Dyn.Value(), Witness: e.Dyn.Type()}
	}
	return out
}

// BenchmarkGetFlatExtent is the repaired E11 row: one flat seq-ascending
// slice per type, no per-read re-merge. Compare with the root package's
// BenchmarkGetExtent (sharded) at the same (n, sel) cells.
func BenchmarkGetFlatExtent(b *testing.B) {
	want := types.Intern(employeeT)
	for _, n := range []int{100, 1000, 10000} {
		for _, sel := range []float64{0.01, 0.10, 0.50} {
			b.Run(fmt.Sprintf("n=%d/sel=%.2f", n, sel), func(b *testing.B) {
				s := benchSet(n, sel)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					entries, _ := s.GetEntries(want)
					if got := pack(entries); len(got) == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkGetFieldIndex reads through a field-value index over a
// population where every member has its own record type, so the extent
// union degenerates and the candidate prefilter is what saves the read.
// ~1% of members carry the indexed Empno field.
func BenchmarkGetFieldIndex(b *testing.B) {
	want := types.Intern(types.MustParse("{Empno: Int}"))
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ops := make([]Op, n)
			for i := 0; i < n; i++ {
				if i%100 == 0 {
					ops[i] = Op{Add: dynamic.Make(employee(fmt.Sprintf("E%06d", i), "Austin", i, "Sales"))}
				} else {
					ops[i] = Op{Add: dynamic.Make(value.Rec(
						"Name", value.String(fmt.Sprintf("P%06d", i)),
						fmt.Sprintf("X%05d", i), value.Int(int64(i))))}
				}
			}
			s, _ := NewSet(Def{Field: "Empno"}).Apply(ops)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands, ok := s.Candidates("Empno")
				if !ok {
					b.Fatal("index missing")
				}
				var out []core.Packed
				for _, e := range cands {
					if types.SubtypeInterned(e.Dyn.Interned(), want) {
						out = append(out, core.Packed{Value: e.Dyn.Value(), Witness: e.Dyn.Type()})
					}
				}
				if len(out) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkApply is the maintenance cost a commit pays: COW-extend the
// published Set with one replaced root (remove + add), with and without a
// field index defined.
func BenchmarkApply(b *testing.B) {
	for _, defs := range []struct {
		name string
		defs []Def
	}{
		{"extents-only", nil},
		{"with-field-index", []Def{{Field: "Empno"}}},
	} {
		for _, n := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("%s/n=%d", defs.name, n), func(b *testing.B) {
				s := benchSet(n, 0.10, defs.defs...)
				// Swap the same pair back and forth, chaining successors so
				// each iteration honors the single-successor rule exactly
				// like a real commit sequence does.
				a := s.All()[0].Dyn
				r := dynamic.Make(employee("R", "Austin", 1, "Sales"))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op := Op{Remove: a, Add: r}
					if i%2 == 1 {
						op = Op{Remove: r, Add: a}
					}
					next, _ := s.Apply([]Op{op})
					if next.Len() != n {
						b.Fatal("length drifted")
					}
					s = next
				}
			})
		}
	}
}
