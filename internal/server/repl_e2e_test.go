package server_test

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dbpl/client"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/server"
	"dbpl/internal/server/netfault"
	"dbpl/internal/value"
)

// replCfg is the follower config the replication tests share: a fast
// heartbeat so link death is noticed in tens of milliseconds, not seconds.
func replCfg(primary string) server.Config {
	return server.Config{Follow: primary, ReplHeartbeat: 50 * time.Millisecond}
}

// bootAt is bootCfg on an explicit listen address — for tests that
// restart a server at the same place a follower keeps dialing.
func bootAt(t *testing.T, path, addr string, cfg server.Config) *harness {
	t.Helper()
	st, err := intrinsic.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	h := &harness{t: t, path: path, store: st, srv: srv, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { h.done <- srv.Serve(ln) }()
	t.Cleanup(h.stop)
	return h
}

// freeAddr reserves an ephemeral port and releases it, returning an
// address a test can bind twice in a row (primary restart).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitConverged polls until the follower's durable end reaches the
// primary's (both nonempty), the replication battery's definition of
// "caught up".
func waitConverged(t *testing.T, p, f *harness) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		pe, fe := p.store.DurableEnd(), f.store.DurableEnd()
		if pe == fe && pe > intrinsic.HeaderSize {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: primary end %d, follower end %d", pe, fe)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sameLog asserts the two log files are byte-identical — the replication
// invariant in its strongest form.
func sameLog(t *testing.T, ppath, fpath string) {
	t.Helper()
	pb, err := os.ReadFile(ppath)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, fb) {
		t.Fatalf("follower log (%d bytes) not byte-identical to primary log (%d bytes)", len(fb), len(pb))
	}
}

func counter(h *harness, name string) uint64 {
	return h.srv.Telemetry().Counter(name).Value()
}

// TestFollowerServesReadsRefusesWrites: a follower replays the primary's
// history, serves the whole read surface (GET, JOIN-free here, NAMES,
// EXPLAIN with the replicated index), reports itself read-only with its
// durable offset in HEALTH, and refuses every write verb with the typed
// read-only error naming the primary.
func TestFollowerServesReadsRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	for i, name := range []string{"e1", "e2", "e3"} {
		if err := pc.Put(name, emp(name, int64(i+1), "Sales"), employeeT); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pc.CreateIndex("Empno"); err != nil {
		t.Fatal(err)
	}

	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, replCfg(p.addr))
	waitConverged(t, p, f)

	fc := dial(t, f, noRetry())
	names, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("follower NAMES = %v, want 3 roots", names)
	}
	got, err := fc.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"e1", "e2", "e3"}; !reflect.DeepEqual(namesOf(got), want) {
		t.Fatalf("follower GET = %v, want %v", namesOf(got), want)
	}
	// The replicated index definition reaches the follower's planner: the
	// same cost-annotated plan a primary would print.
	plan, err := fc.ExplainGet(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "get path=") {
		t.Fatalf("follower ExplainGet = %q, want a planner-rendered plan", plan)
	}

	// Every write verb is the typed refusal, and it names the primary.
	if err := fc.Put("x", value.Int(1), nil); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("PUT on follower: %v, want ErrReadOnly", err)
	} else if !strings.Contains(err.Error(), p.addr) {
		t.Fatalf("read-only refusal %q does not name the primary %s", err, p.addr)
	}
	if _, err := fc.Delete("e1"); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("DELETE on follower: %v, want ErrReadOnly", err)
	}
	if _, err := fc.CreateIndex("Dept"); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("CREATEINDEX on follower: %v, want ErrReadOnly", err)
	}
	if _, err := fc.Begin(); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("BEGIN on follower: %v, want ErrReadOnly", err)
	}
	if n := counter(f, "dbpl_repl_readonly_refusals_total"); n < 4 {
		t.Errorf("refusal counter = %d, want >= 4", n)
	}

	// HEALTH: the follower flags itself read-only and reports the same
	// durable offset the primary does; the primary reports writable.
	fh, err := fc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !fh.ReadOnly || fh.DurableEnd != f.store.DurableEnd() {
		t.Fatalf("follower HEALTH = %+v, want ReadOnly with DurableEnd %d", fh, f.store.DurableEnd())
	}
	ph, err := pc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if ph.ReadOnly || ph.DurableEnd != fh.DurableEnd {
		t.Fatalf("primary HEALTH = %+v, want writable at the follower's offset %d", ph, fh.DurableEnd)
	}
	sameLog(t, p.path, f.path)
}

// TestFollowerLiveTail: writes landing on the primary *after* the
// follower subscribed stream through and become visible to follower
// reads, including deletes and index drops.
func TestFollowerLiveTail(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	if err := pc.Put("seed", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, replCfg(p.addr))
	waitConverged(t, p, f)

	for i, name := range []string{"e1", "e2"} {
		if err := pc.Put(name, emp(name, int64(i+1), "Ops"), employeeT); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pc.Delete("seed"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p, f)

	fc := dial(t, f, nil)
	names, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("follower NAMES after live tail = %v, want [e1 e2]", names)
	}
	for _, n := range names {
		if n == "seed" {
			t.Fatal("deleted root 'seed' still visible on follower")
		}
	}
	sameLog(t, p.path, f.path)
	// Exactly-once accounting: the bytes applied equal the log body shipped,
	// with nothing double-counted.
	if n := counter(f, "dbpl_repl_bytes_applied_total"); n != uint64(p.store.DurableEnd()-intrinsic.HeaderSize) {
		t.Errorf("bytes applied = %d, want %d", n, p.store.DurableEnd()-intrinsic.HeaderSize)
	}
}

// TestFollowerRestartResume: a follower stopped cold resumes from its own
// durable offset when rebooted over the same log — it asks the primary
// only for what it is missing, and converges byte-identically.
func TestFollowerRestartResume(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	if err := pc.Put("a", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	fpath := filepath.Join(dir, "follower.log")
	f1 := bootCfg(t, fpath, nil, replCfg(p.addr))
	waitConverged(t, p, f1)
	f1.stop()

	// The primary moves on while the follower is down.
	for _, n := range []string{"b", "c", "d"} {
		if err := pc.Put(n, value.String(n), nil); err != nil {
			t.Fatal(err)
		}
	}

	f2 := bootCfg(t, fpath, nil, replCfg(p.addr))
	waitConverged(t, p, f2)
	sameLog(t, p.path, fpath)
	// Resume shipped only the missing suffix, not the whole log again: the
	// second follower applied strictly fewer bytes than the log body holds.
	applied := counter(f2, "dbpl_repl_bytes_applied_total")
	body := uint64(p.store.DurableEnd() - intrinsic.HeaderSize)
	if applied == 0 || applied >= body {
		t.Errorf("resumed follower applied %d bytes of a %d-byte body, want a strict suffix", applied, body)
	}
	fc := dial(t, f2, nil)
	names, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("follower NAMES after resume = %v, want 4 roots", names)
	}
}

// TestPrimaryRestartFollowerResubscribes: the primary dies and comes back
// at the same address; the follower's heartbeat deadline notices the dead
// link, its backoff loop re-dials, and the stream resumes from the
// follower's durable end with no operator intervention.
func TestPrimaryRestartFollowerResubscribes(t *testing.T) {
	dir := t.TempDir()
	ppath := filepath.Join(dir, "primary.log")
	addr := freeAddr(t)
	p1 := bootAt(t, ppath, addr, server.Config{})
	pc1 := dial(t, p1, nil)
	if err := pc1.Put("before", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, replCfg(addr))
	waitConverged(t, p1, f)
	p1.stop()

	p2 := bootAt(t, ppath, addr, server.Config{})
	pc2 := dial(t, p2, nil)
	if err := pc2.Put("after", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p2, f)
	sameLog(t, ppath, f.path)
	if n := counter(f, "dbpl_repl_reconnects_total"); n < 1 {
		t.Errorf("reconnect counter = %d, want >= 1 after primary restart", n)
	}
}

// TestReplChaosPartitionHeal: a network partition opens mid-stream while
// the primary keeps committing; on heal the follower resumes from its
// durable end. Byte-identical logs prove no group was lost, and the
// bytes-applied counter matching the log body proves none was applied
// twice.
func TestReplChaosPartitionHeal(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	if err := pc.Put("pre", value.Int(0), nil); err != nil {
		t.Fatal(err)
	}
	px, err := netfault.New(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, replCfg(px.Addr()))
	waitConverged(t, p, f)

	px.Partition()
	for i := 0; i < 5; i++ {
		if err := pc.Put("part"+string(rune('a'+i)), value.Int(int64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Give the follower time to notice the dead link and burn a few
	// failed re-dials while partitioned.
	time.Sleep(300 * time.Millisecond)
	if p.store.DurableEnd() == f.store.DurableEnd() {
		t.Fatal("follower converged through a partition")
	}
	px.Heal()
	waitConverged(t, p, f)
	sameLog(t, p.path, f.path)
	if n := counter(f, "dbpl_repl_bytes_applied_total"); n != uint64(p.store.DurableEnd()-intrinsic.HeaderSize) {
		t.Errorf("bytes applied = %d, want %d (exactly-once)", n, p.store.DurableEnd()-intrinsic.HeaderSize)
	}
	if n := counter(f, "dbpl_repl_reconnects_total"); n < 1 {
		t.Errorf("reconnect counter = %d, want >= 1 after partition", n)
	}
}

// TestReplChaosFlipByteOnStream: a bit flip on the wire inside a shipped
// frame is caught by the frame CRC (or the frame decoder) before any byte
// reaches the follower's log; the follower drops the link and the re-sent
// intact frame converges the logs byte-identically.
func TestReplChaosFlipByteOnStream(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	if err := pc.Put("pre", value.Int(0), nil); err != nil {
		t.Fatal(err)
	}
	px, err := netfault.New(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	// A long heartbeat keeps the primary→follower direction quiet between
	// commits, so the armed flip lands inside the next REPDATA frame.
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil,
		server.Config{Follow: px.Addr(), ReplHeartbeat: 5 * time.Second})
	waitConverged(t, p, f)

	px.FlipByte(netfault.ServerToClient, px.Forwarded(netfault.ServerToClient)+10)
	if err := pc.Put("flipped", value.String("survives"), nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p, f)
	sameLog(t, p.path, f.path)
	if n := counter(f, "dbpl_repl_reconnects_total"); n < 1 {
		t.Errorf("reconnect counter = %d, want >= 1 after wire corruption", n)
	}
	fc := dial(t, f, nil)
	names, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("follower NAMES after flip = %v, want [flipped pre]", names)
	}
}

// TestReplChaosFollowerCrashDuringApply: the follower's disk dies in the
// middle of applying a shipped group. The reopened log must hold a whole
// prefix (single-node crash recovery), and a fresh follower over the same
// file must catch up to a byte-identical log.
func TestReplChaosFollowerCrashDuringApply(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	if err := pc.Put("pre", value.Int(0), nil); err != nil {
		t.Fatal(err)
	}

	fpath := filepath.Join(dir, "follower.log")
	inj := iofault.NewInjector(iofault.OS{})
	fst, err := intrinsic.OpenFS(inj, fpath)
	if err != nil {
		t.Fatal(err)
	}
	f1 := bootCfg(t, fpath, fst, replCfg(p.addr))
	waitConverged(t, p, f1)

	// Crash the follower's disk partway into the next apply: the write of
	// the incoming group fails and every later I/O fails too.
	inj.CrashAt(inj.Ops() + 2)
	for _, n := range []string{"a", "b", "c"} {
		if err := pc.Put(n, value.String(n), nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !inj.Crashed() {
		if time.Now().After(deadline) {
			t.Fatal("injected follower crash never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	f1.stop()

	// Reopen over the real disk: recovery leaves a whole prefix of the
	// primary's log, and a fresh follower resumes from it.
	pb, err := os.ReadFile(p.path)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(fpath)
	if err != nil {
		t.Fatal(err)
	}
	check, err := intrinsic.Open(fpath)
	if err != nil {
		t.Fatalf("reopen crashed follower log: %v", err)
	}
	de := check.DurableEnd()
	check.Close()
	if int64(len(fb)) < de || !bytes.Equal(fb[:de], pb[:de]) {
		t.Fatalf("crashed follower's durable prefix [0,%d) diverges from primary", de)
	}

	f2 := bootCfg(t, fpath, nil, replCfg(p.addr))
	waitConverged(t, p, f2)
	sameLog(t, p.path, fpath)
	fc := dial(t, f2, nil)
	names, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("follower NAMES after crash recovery = %v, want 4 roots", names)
	}
}

// TestReplShutdownTerminatesStream: a draining primary tells its
// followers with a typed shutdown error instead of leaving them hanging
// on a dead stream; the follower survives and reconnects to the next
// primary at that address.
func TestReplShutdownTerminatesStream(t *testing.T) {
	dir := t.TempDir()
	addr := freeAddr(t)
	p := bootAt(t, filepath.Join(dir, "primary.log"), addr, server.Config{})
	pc := dial(t, p, nil)
	if err := pc.Put("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, replCfg(addr))
	waitConverged(t, p, f)
	if g := f.srv.Telemetry().Gauge("dbpl_repl_lag_bytes").Value(); g != 0 {
		t.Errorf("replication lag gauge = %d on a converged follower, want 0", g)
	}
	p.stop()
	// The follower is still serving reads while its primary is gone.
	fc := dial(t, f, nil)
	if _, err := fc.Names(); err != nil {
		t.Fatalf("follower NAMES with primary down: %v", err)
	}
}
