// Log-shipping replication: the primary side (streamReplicate, serving
// the REPLICATE opcode) and the follower side (followLoop, run when
// Config.Follow names a primary).
//
// The unit of replication is the intrinsic log's commit group, shipped as
// raw log bytes. The primary only reads groups back through
// Store.ReadGroupsAt, which re-verifies structure and CRC before the
// bytes leave the machine; each REPDATA frame carries its own CRC-32C so
// wire damage is caught before the follower touches its log; and the
// follower's Store.ApplyGroup verifies once more before appending. A
// follower's log is therefore a byte-for-byte prefix of the primary's
// verified prefix at every instant, which makes resumption trivial: after
// any crash or disconnect, either side's contribution to the handshake is
// just the follower's durable end. No group can be lost (the primary
// streams from exactly that offset) or applied twice (a duplicate frame
// ends at or before the durable end and is dropped).
//
// Idle streams carry REPHEARTBEAT frames bearing the primary's durable
// end, so a follower can distinguish "primary idle" from "link dead"
// (four missed heartbeats) and can report its replication lag in bytes.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dbpl/internal/dynamic"
	"dbpl/internal/index"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/server/wire"
	rtrace "dbpl/internal/telemetry/trace"
)

// notifyCommit wakes every blocked replication streamer by closing the
// current signal channel and installing a fresh one. Streamers load the
// channel *before* reading the durable end, so a commit landing between
// the two closes exactly the channel they are about to wait on — the
// wakeup cannot be lost.
func (s *Server) notifyCommit() {
	ch := make(chan struct{})
	if old := s.commitSignal.Swap(&ch); old != nil {
		close(*old)
	}
}

// ---------------------------------------------------------------------------
// Primary: the REPLICATE stream
// ---------------------------------------------------------------------------

// streamReplicate consumes the connection: it streams commit groups from
// the requested offset, then heartbeats while caught up, until the peer
// hangs up or the server drains. REPLICATE bypasses admission control —
// a follower holding a stream open is not "in-flight work", and shedding
// it under load would amplify the load with reconnect storms.
//
// A follower can itself serve REPLICATE (its log is byte-identical to
// the primary's prefix), so chains of followers work unmodified.
func (s *Server) streamReplicate(conn net.Conn, fields [][]byte, writeTO time.Duration) {
	s.m.requests[wire.OpReplicate].Inc()
	s.m.replStreams.Add(1)
	defer s.m.replStreams.Add(-1)
	maxFrame := s.cfg.maxFrame()
	fail := func(we *wire.WireError) {
		if writeTO > 0 {
			conn.SetWriteDeadline(time.Now().Add(writeTO))
		}
		wire.WriteFrame(conn, maxFrame, wire.OpError, wire.ErrorFields(we)...)
	}
	from, subEpoch, err := wire.DecodeReplicateReq(fields)
	if err != nil {
		fail(toWireError(err))
		return
	}
	if from == 0 {
		// A fresh follower's log is just the header; offset 0 means "from
		// the beginning".
		from = intrinsic.HeaderSize
	}
	// Fencing, primary side: a subscriber carrying a higher promotion
	// epoch has been promoted past us — we are the stale half of a
	// failover. Demote ourselves (under commitMu, so no write in flight
	// can be acked after the decision) and refuse the stream.
	if subEpoch > s.store.Epoch() {
		s.observeEpoch(subEpoch, "")
		fail(&wire.WireError{Code: wire.CodeFenced,
			Msg: fmt.Sprintf("subscriber epoch %d is above this server's epoch %d; fenced", subEpoch, s.store.Epoch())})
		return
	}
	hb := s.cfg.replHeartbeat()
	// An immediate heartbeat opens every stream: it carries our epoch and
	// durable end, so the subscriber learns about a failover (and can run
	// rejoin verification) before a single group is applied — and even
	// when the loop below refuses because its log has grown past ours.
	if writeTO > 0 {
		conn.SetWriteDeadline(time.Now().Add(writeTO))
	}
	if wire.WriteFrame(conn, maxFrame, wire.OpRepHeartbeat,
		wire.HeartbeatFields(s.store.DurableEnd(), s.store.Epoch())...) != nil {
		return
	}
	for {
		if s.draining.Load() {
			fail(&wire.WireError{Code: wire.CodeShutdown, Msg: "server is draining"})
			return
		}
		// Order matters: load the signal channel before the durable end
		// (see notifyCommit).
		sig := *s.commitSignal.Load()
		end := s.store.DurableEnd()
		if from > end {
			fail(&wire.WireError{Code: wire.CodeBadRequest,
				Msg: fmt.Sprintf("replication offset %d past durable end %d", from, end)})
			return
		}
		if from < end {
			raw, next, groups, err := s.store.ReadGroupsAt(from, s.cfg.replChunk())
			if err != nil {
				fail(toWireError(err))
				return
			}
			if writeTO > 0 {
				conn.SetWriteDeadline(time.Now().Add(writeTO))
			}
			// A chunk whose tail is the most recent commit carries that
			// commit's trace ID and wall-clock in the 6-field REPDATA form,
			// so the follower's apply span can link back to the primary's
			// commit span and measure the shipping delay. Catch-up chunks
			// (older history, or an untraced commit) use the 4-field form.
			repFields := wire.ReplDataFields(from, raw, s.store.Epoch())
			if mk := s.lastCommit.Load(); mk != nil && mk.trace != 0 && mk.end == next {
				repFields = wire.ReplDataTraceFields(from, raw, s.store.Epoch(), mk.trace, mk.ns)
			}
			if wire.WriteFrame(conn, maxFrame, wire.OpRepData, repFields...) != nil {
				return
			}
			from = next
			s.m.replGroupsShipped.Add(uint64(groups))
			s.m.replBytesShipped.Add(uint64(len(raw)))
			continue
		}
		// Caught up. Wait for the next commit, heartbeating so the
		// follower can tell an idle primary from a dead link. The
		// heartbeat write doubles as peer-death detection: this goroutine
		// never reads, so a vanished follower is noticed at the next
		// heartbeat's failed write.
		select {
		case <-sig:
		case <-s.shutdownCh:
			fail(&wire.WireError{Code: wire.CodeShutdown, Msg: "server is draining"})
			return
		case <-time.After(hb):
			if writeTO > 0 {
				conn.SetWriteDeadline(time.Now().Add(writeTO))
			}
			if wire.WriteFrame(conn, maxFrame, wire.OpRepHeartbeat, wire.HeartbeatFields(end, s.store.Epoch())...) != nil {
				return
			}
			s.m.replHeartbeats.Inc()
		}
	}
}

// ---------------------------------------------------------------------------
// Follower: the follow loop
// ---------------------------------------------------------------------------

// followerState is the follow loop's shared state: the primary's last
// reported durable end (for lag gauges and client staleness bounds), and
// the live connection so Shutdown can sever it.
type followerState struct {
	primaryEnd atomic.Int64
	done       chan struct{}
	// stop ends the follow loop without shutting the server down — the
	// promotion path: a follower that becomes the primary must not keep a
	// subscription to the server it just superseded.
	stop     chan struct{}
	stopOnce sync.Once
	// verifiedEpoch is the highest upstream epoch whose history this
	// follower has proven its own log a byte prefix of (rejoin
	// verification). Streams from an upstream above this epoch are not
	// applied until the proof succeeds.
	verifiedEpoch atomic.Uint64

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// setConn records the live link; it refuses once closeConn has run so a
// dial racing Shutdown cannot leak a connection.
func (f *followerState) setConn(c net.Conn) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed && c != nil {
		return false
	}
	f.conn = c
	return true
}

// closeConn severs the current link and refuses future ones; the follow
// loop's blocked read fails immediately and the loop observes shutdown.
func (f *followerState) closeConn() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	if f.conn != nil {
		f.conn.Close()
		f.conn = nil
	}
}

// followLoop subscribes to the primary and re-subscribes forever, with
// full-jitter exponential backoff between failed attempts. Progress
// (at least one group applied) resets the backoff, so a mid-stream
// partition heals at the base delay, not wherever the backoff had grown
// to during the outage.
func (s *Server) followLoop() {
	defer close(s.follower.done)
	const base, cap = 25 * time.Millisecond, time.Second
	backoff := base
	first := true
	for {
		select {
		case <-s.shutdownCh:
			return
		case <-s.follower.stop:
			return
		default:
		}
		if !first {
			s.m.replReconnects.Inc()
		}
		first = false
		progressed, err := s.followOnce()
		if err != nil && !s.draining.Load() && !stopped(s.follower.stop) {
			s.logf("server: replication: %v", err)
		}
		if errors.Is(err, intrinsic.ErrDiverged) {
			// Divergence is permanent: redialing would only re-prove it.
			// The log is left intact (never truncated); recovery is the
			// explicit runbook in docs/REPLICATION.md. Reads keep working.
			return
		}
		if progressed {
			backoff = base
			continue
		}
		select {
		case <-time.After(time.Duration(rand.Int63n(int64(backoff)) + 1)):
		case <-s.shutdownCh:
			return
		case <-s.follower.stop:
			return
		}
		if backoff *= 2; backoff > cap {
			backoff = cap
		}
	}
}

// stopped reports whether ch (a close-only signal channel) is closed.
func stopped(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// stopFollow ends the follow loop and severs its upstream link, then
// waits for it to exit — the first step of a promotion, so no replicated
// frame can race the epoch bump.
func (s *Server) stopFollow() {
	if s.follower == nil {
		return
	}
	s.follower.stopOnce.Do(func() { close(s.follower.stop) })
	s.follower.closeConn()
	<-s.follower.done
}

// followOnce is one subscription: dial, request the stream from our
// durable end, and apply frames until the link dies or the server shuts
// down. It reports whether any group was applied.
func (s *Server) followOnce() (progressed bool, err error) {
	conn, err := net.DialTimeout("tcp", s.cfg.Follow, 5*time.Second)
	if err != nil {
		return false, fmt.Errorf("dialing primary %s: %w", s.cfg.Follow, err)
	}
	defer conn.Close()
	if !s.follower.setConn(conn) {
		return false, nil // shutting down
	}
	defer s.follower.setConn(nil)
	maxFrame := s.cfg.maxFrame()
	hb := s.cfg.replHeartbeat()
	conn.SetWriteDeadline(time.Now().Add(4 * hb))
	if err := wire.WriteFrame(conn, maxFrame, wire.OpReplicate,
		wire.ReplicateFields(s.store.DurableEnd(), s.store.Epoch())...); err != nil {
		return false, fmt.Errorf("subscribing to %s: %w", s.cfg.Follow, err)
	}
	conn.SetWriteDeadline(time.Time{})
	br := bufio.NewReader(conn)
	for {
		// Four missed heartbeats ⇒ the link is dead, not idle.
		conn.SetReadDeadline(time.Now().Add(4 * hb))
		op, fields, err := wire.ReadFrame(br, maxFrame)
		if err != nil {
			return progressed, fmt.Errorf("stream from %s: %w", s.cfg.Follow, err)
		}
		switch op {
		case wire.OpRepHeartbeat:
			end, upEpoch, err := wire.DecodeHeartbeat(fields)
			if err != nil {
				return progressed, err
			}
			if err := s.checkUpstreamEpoch(upEpoch); err != nil {
				return progressed, err
			}
			s.follower.primaryEnd.Store(end)
		case wire.OpRepData:
			rd, err := wire.DecodeReplData(fields)
			if err != nil {
				// Checksum mismatch or malformed frame: drop the link
				// without applying anything. The redial resumes from our
				// durable end, so the damaged group is re-sent intact.
				return progressed, fmt.Errorf("stream from %s: %w", s.cfg.Follow, err)
			}
			if err := s.checkUpstreamEpoch(rd.Epoch); err != nil {
				return progressed, err
			}
			n, err := s.applyReplicated(rd)
			if err != nil {
				return progressed, err
			}
			if n > 0 {
				progressed = true
			}
		case wire.OpError:
			return progressed, fmt.Errorf("primary %s refused stream: %w",
				s.cfg.Follow, wire.DecodeError(fields))
		default:
			return progressed, fmt.Errorf("unexpected stream opcode %#x from %s", op, s.cfg.Follow)
		}
	}
}

// checkUpstreamEpoch is fencing, follower side, applied to every frame's
// epoch before the frame is: an upstream below our own epoch is a stale
// ex-primary (its history and ours may have forked past our shared
// prefix) — the link is dropped, never applied. An upstream *above* our
// epoch was promoted while we were partitioned from it: before applying
// anything we must prove our log is still a byte prefix of the new
// history (rejoin verification); the proof is cached per epoch so a
// healthy stream pays it once.
func (s *Server) checkUpstreamEpoch(up uint64) error {
	local := s.store.Epoch()
	if up < local {
		return fmt.Errorf("fencing: upstream %s at epoch %d is behind local epoch %d; dropping replication link",
			s.cfg.Follow, up, local)
	}
	if up > local && s.follower.verifiedEpoch.Load() < up {
		if err := s.verifyRejoin(); err != nil {
			return err
		}
		s.follower.verifiedEpoch.Store(up)
	}
	return nil
}

// verifyRejoin proves this store's durable log is a byte prefix of the
// upstream's history, before any higher-epoch group is applied. After a
// failover the new primary may have been promoted holding *less* history
// than we do (groups the old primary acked but never shipped): those
// offsets belong to the forked old history, and blindly appending the
// new primary's groups after them would interleave two histories in one
// log. The check streams the upstream's log from the beginning on a
// separate connection and byte-compares it against ours; a mismatch — or
// an upstream whose history ends before ours with every shared byte
// equal — is a typed *intrinsic.DivergenceError naming the first
// divergent offset. The local log is never truncated; recovery is the
// explicit runbook in docs/REPLICATION.md.
func (s *Server) verifyRejoin() error {
	localEnd := s.store.DurableEnd()
	if localEnd <= intrinsic.HeaderSize {
		return nil // nothing local that could disagree
	}
	conn, err := net.DialTimeout("tcp", s.cfg.Follow, 5*time.Second)
	if err != nil {
		return fmt.Errorf("rejoin verification: %w", err)
	}
	defer conn.Close()
	maxFrame := s.cfg.maxFrame()
	hb := s.cfg.replHeartbeat()
	conn.SetWriteDeadline(time.Now().Add(4 * hb))
	if err := wire.WriteFrame(conn, maxFrame, wire.OpReplicate,
		wire.ReplicateFields(intrinsic.HeaderSize, s.store.Epoch())...); err != nil {
		return fmt.Errorf("rejoin verification: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	br := bufio.NewReader(conn)
	verified := intrinsic.HeaderSize
	for verified < localEnd {
		conn.SetReadDeadline(time.Now().Add(4 * hb))
		op, fields, err := wire.ReadFrame(br, maxFrame)
		if err != nil {
			return fmt.Errorf("rejoin verification: %w", err)
		}
		switch op {
		case wire.OpRepData:
			rd, err := wire.DecodeReplData(fields)
			if err != nil {
				return fmt.Errorf("rejoin verification: %w", err)
			}
			if rd.Start != verified {
				return fmt.Errorf("rejoin verification: frame at offset %d, wanted %d", rd.Start, verified)
			}
			n, err := s.store.VerifyTail(rd.Raw, rd.Start)
			if err != nil {
				return fmt.Errorf("rejoin refused: %w", err)
			}
			verified += n
			if n < int64(len(rd.Raw)) {
				// The new history extends past our durable end and every
				// local byte matched: we are a clean prefix. The remainder
				// arrives through the ordinary stream.
				return nil
			}
		case wire.OpRepHeartbeat:
			end, _, err := wire.DecodeHeartbeat(fields)
			if err != nil {
				return fmt.Errorf("rejoin verification: %w", err)
			}
			if end < localEnd && verified >= end {
				// The upstream's history ends here and ours continues:
				// our extra groups were never shipped and are not part of
				// the new history. Typed refusal, not truncation.
				return fmt.Errorf("rejoin refused: %w", &intrinsic.DivergenceError{Offset: end})
			}
		case wire.OpError:
			return fmt.Errorf("rejoin verification: upstream refused: %w", wire.DecodeError(fields))
		default:
			return fmt.Errorf("rejoin verification: unexpected stream opcode %#x", op)
		}
	}
	return nil
}

// applyReplicated makes one REPDATA frame durable and visible: verify +
// append via Store.ApplyGroup, then publish the successor state. It runs
// under commitMu for the same reason commits do — state publication is
// serialized — though on a follower it is the only writer.
//
// A 6-field frame carries the originating commit's trace ID and commit
// wall-clock: when the follower's sampler keeps that ID (the decision is
// deterministic in the ID, so both ends agree), the apply gets its own
// span tree linked to the primary's trace, and the commit-to-apply lag
// feeds dbpl_repl_apply_delay_seconds with the primary trace as the
// exemplar.
func (s *Server) applyReplicated(rd wire.ReplData) (int, error) {
	start, raw := rd.Start, rd.Raw
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	// A frame already in flight when this server was promoted must not
	// land after the epoch bump: the new primary's log grows through
	// local commits now.
	if wire.Role(s.role.Load()) == wire.RolePrimary {
		return 0, fmt.Errorf("promoted to primary at epoch %d; dropping replication stream", s.store.Epoch())
	}
	var tr *rtrace.Trace
	if s.traces != nil && rd.Trace != 0 && s.sampler.Sample(rd.Trace) {
		tr = rtrace.New(rtrace.NextID(), "REPL-APPLY")
		tr.SetLink(rd.Trace)
	}
	end := s.store.DurableEnd()
	// Duplicate and overlap handling. Frames arrive in order on one
	// connection, but a frame in flight when a link died can be re-sent
	// after the resubscribe. Both ends of any overlap are group
	// boundaries (our durable end always is, and frames hold whole
	// groups); the overlap is byte-verified against the local log — a
	// re-sent group must be *the same* group, not a forked history's —
	// so trimming is exact and divergence surfaces typed instead of
	// being silently overwritten.
	if start < end {
		n, err := s.store.VerifyTail(raw, start)
		if err != nil {
			return 0, fmt.Errorf("replication overlap disagrees with local log: %w", err)
		}
		raw = raw[n:]
		start += n
	}
	if len(raw) == 0 {
		return 0, nil // wholly duplicate: already durable here
	}
	if start > end {
		return 0, fmt.Errorf("replication gap: frame at offset %d, durable end %d", start, end)
	}
	asp := tr.Start(0, "apply")
	delta, err := s.store.ApplyGroup(raw)
	tr.End(asp)
	if err != nil {
		return 0, err
	}
	psp := tr.Start(0, "publish")
	if err := s.publishDelta(delta); err != nil {
		// The group is durable but the cheap delta publication failed
		// (a root that does not conform to its declared type — a primary
		// never ships one). Rebuild the full state from the store rather
		// than diverge from the log.
		s.logf("server: replication: %v; rebuilding state", err)
		st, rerr := stateFromStore(s.store)
		if rerr != nil {
			return 0, errors.Join(err, rerr)
		}
		s.state.Store(st)
		s.notifyCommit()
	}
	tr.End(psp)
	s.m.replGroupsApplied.Add(uint64(delta.Groups))
	s.m.replBytesApplied.Add(uint64(len(raw)))
	if rd.CommitNS > 0 {
		// Commit-to-apply lag across two hosts' clocks: an honest lag
		// indicator, clamped so clock skew cannot go negative.
		delay := time.Now().UnixNano() - rd.CommitNS
		if delay < 0 {
			delay = 0
		}
		s.m.replApplyDelay.ObserveExemplar(delay, rd.Trace)
	}
	if tr != nil {
		tr.Finish()
		s.traces.Record(tr.Data(), false)
	}
	// Applying proves the primary's log reaches at least this far.
	if pe := s.follower.primaryEnd.Load(); delta.End > pe {
		s.follower.primaryEnd.Store(delta.End)
	}
	return len(raw), nil
}

// publishDelta advances the published state by what ApplyGroup reported:
// removed roots become deletes, changed roots re-bind from the store's
// materialized value, and a changed index-definition table is reconciled
// field by field. The same state.apply path as a local commit, so
// follower GETs stay planner-served and lock-free. Caller holds commitMu.
func (s *Server) publishDelta(delta intrinsic.GroupDelta) error {
	cur := s.state.Load()
	ops := make([]txnOp, 0, len(delta.Changed)+len(delta.Removed))
	for _, name := range delta.Removed {
		ops = append(ops, txnOp{name: name, del: true})
	}
	for _, name := range delta.Changed {
		r, ok := s.store.Root(name)
		if !ok {
			continue
		}
		d, err := dynamic.MakeAt(r.Value, r.Declared)
		if err != nil {
			return fmt.Errorf("replicated root %q does not conform to its declared type: %w", name, err)
		}
		ops = append(ops, txnOp{name: name, dyn: d})
	}
	next := cur
	var istats index.ApplyStats
	if len(ops) > 0 {
		next, istats = cur.apply(ops)
	}
	if delta.DefsChanged {
		want := map[string]bool{}
		for _, f := range s.store.IndexDefs() {
			want[f] = true
		}
		idx := next.idx
		for _, d := range idx.Defs() {
			if !want[d.Field] {
				idx, _ = idx.DropField(d.Field)
			}
		}
		have := map[string]bool{}
		for _, d := range idx.Defs() {
			have[d.Field] = true
		}
		for f := range want {
			if !have[f] {
				idx = idx.WithField(index.Def{Field: f})
			}
		}
		if next == cur {
			next = &state{roots: cur.roots, db: cur.db}
		}
		next.idx = idx
	}
	if next != cur {
		s.state.Store(next)
		s.notifyCommit()
		s.m.indexTouched.Add(uint64(istats.EntriesTouched))
		s.m.commits.Inc()
	}
	return nil
}
