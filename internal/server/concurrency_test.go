package server_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"dbpl/client"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// TestConcurrentIsolation is the acceptance criterion under -race: client
// goroutines hammer GETs while one session runs commit/abort cycles, and
// every GET observes only committed states. The writer keeps three roots
// a, b, c in lockstep (all equal to the cycle number) inside each
// transaction, and interleaves aborted transactions that write a sentinel
// root; a reader that ever sees a != b != c, or sees the sentinel, has
// observed an uncommitted state.
func TestConcurrentIsolation(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "race.log"))

	tripleT := types.MustParse("{K: String, V: Int}")
	sentinelT := types.MustParse("{Ghost: Bool}")
	triple := func(k string, v int64) value.Value {
		return value.Rec("K", value.String(k), "V", value.Int(v))
	}

	wc := dial(t, h, &client.Options{PoolSize: 1})
	// Committed cycle 0 so readers always have a complete triple to see.
	for _, k := range []string{"a", "b", "c"} {
		if err := wc.Put(k, triple(k, 0), tripleT); err != nil {
			t.Fatal(err)
		}
	}

	// Modest sizes: the host has one CPU, and the point is interleaving,
	// not throughput.
	const (
		readers = 4
		cycles  = 40
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	for i := 0; i < readers; i++ {
		rc := dial(t, h, &client.Options{PoolSize: 1})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ps, err := rc.Get(tripleT)
				if err != nil {
					errs <- fmt.Errorf("reader GET: %w", err)
					return
				}
				vs := map[string]int64{}
				for _, p := range ps {
					r := p.Value.(*value.Record)
					k, _ := r.Get("K")
					v, _ := r.Get("V")
					vs[string(k.(value.String))] = int64(v.(value.Int))
				}
				if len(vs) != 3 || vs["a"] != vs["b"] || vs["b"] != vs["c"] {
					errs <- fmt.Errorf("torn read: observed uncommitted state %v", vs)
					return
				}
				ghosts, err := rc.Get(sentinelT)
				if err != nil {
					errs <- fmt.Errorf("reader GET sentinel: %w", err)
					return
				}
				if len(ghosts) != 0 {
					errs <- errors.New("observed a root written by an aborted transaction")
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := int64(1); i <= cycles; i++ {
			s, err := wc.Begin()
			if err != nil {
				errs <- fmt.Errorf("writer BEGIN: %w", err)
				return
			}
			for _, k := range []string{"a", "b", "c"} {
				if err := s.Put(k, triple(k, i), tripleT); err != nil {
					errs <- fmt.Errorf("writer PUT: %w", err)
					return
				}
			}
			if err := s.Commit(); err != nil {
				errs <- fmt.Errorf("writer COMMIT: %w", err)
				return
			}
			// An aborted transaction: its sentinel must never surface.
			s2, err := wc.Begin()
			if err != nil {
				errs <- fmt.Errorf("writer BEGIN(2): %w", err)
				return
			}
			if err := s2.Put("ghost", value.Rec("Ghost", value.Bool(true)), sentinelT); err != nil {
				errs <- fmt.Errorf("writer PUT ghost: %w", err)
				return
			}
			if err := s2.Abort(); err != nil {
				errs <- fmt.Errorf("writer ABORT: %w", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The final committed state is the last full cycle.
	final, err := wc.Get(tripleT)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range final {
		v, _ := p.Value.(*value.Record).Get("V")
		if int64(v.(value.Int)) != cycles {
			t.Errorf("final state %s, want V=%d", p.Value, cycles)
		}
	}
}

// TestConcurrentAutocommitWriters: many sessions autocommitting to
// disjoint roots race through commitMu; every write survives, and
// concurrent full-extent GETs stay well-formed throughout.
func TestConcurrentAutocommitWriters(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "writers.log"))
	rowT := types.MustParse("{W: Int, N: Int}")

	const (
		writers = 4
		rows    = 25
	)
	var writerWG, scanWG sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		c := dial(t, h, &client.Options{PoolSize: 1})
		writerWG.Add(1)
		go func(w int64) {
			defer writerWG.Done()
			for n := int64(0); n < rows; n++ {
				name := fmt.Sprintf("w%d.n%d", w, n)
				v := value.Rec("W", value.Int(w), "N", value.Int(n))
				if err := c.Put(name, v, rowT); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(int64(w))
	}
	rc := dial(t, h, nil)
	done := make(chan struct{})
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			ps, err := rc.Get(rowT)
			if err != nil {
				errs <- fmt.Errorf("scanner: %w", err)
				return
			}
			for _, p := range ps {
				if _, ok := p.Value.(*value.Record); !ok {
					errs <- fmt.Errorf("scanner: malformed member %T", p.Value)
					return
				}
			}
		}
	}()

	writerWG.Wait()
	close(done)
	scanWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ps, err := rc.Get(rowT)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != writers*rows {
		t.Errorf("final extent = %d rows, want %d", len(ps), writers*rows)
	}
}

// TestConcurrentDeleteReportsExistedOnce: `existed` is computed under
// commitMu against the committed state each DELETE's commit group actually
// applies to, so of N racing DELETEs of one root exactly one observes it —
// not the stale pre-lock answer where several can claim the kill.
func TestConcurrentDeleteReportsExistedOnce(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "delete.log"))
	c := dial(t, h, &client.Options{PoolSize: 4})

	for round := 0; round < 5; round++ {
		if err := c.Put("X", value.Int(int64(round)), nil); err != nil {
			t.Fatal(err)
		}
		const deleters = 8
		var wg sync.WaitGroup
		existed := make([]bool, deleters)
		errs := make([]error, deleters)
		for i := 0; i < deleters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				existed[i], errs[i] = c.Delete("X")
			}(i)
		}
		wg.Wait()
		trues := 0
		for i := range existed {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if existed[i] {
				trues++
			}
		}
		if trues != 1 {
			t.Fatalf("round %d: %d deleters saw existed=true, want exactly 1", round, trues)
		}
	}
}
