package server_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dbpl/client"
	"dbpl/internal/server"
	"dbpl/internal/server/wire"
	"dbpl/internal/telemetry"
)

// TestStatsOpcodeEndToEnd drives real traffic through a real client and
// asserts the STATS snapshot accounts for it: per-opcode request counters
// and latency histograms, commit metrics, error-code counters, and the
// gauges — all decoded from one binary frame.
func TestStatsOpcodeEndToEnd(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "store.log"))
	c := dial(t, h, nil)

	if err := c.Put("alice", emp("Alice", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("bob", emp("Bob", 2, "Lab"), employeeT); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(personT); err != nil {
		t.Fatal(err)
	}

	// Provoke one classified server-side error: GET with no type image is
	// a bad request, counted under its code.
	raw, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := wire.WriteFrame(raw, 0, wire.OpGet); err != nil {
		t.Fatal(err)
	}
	if op, _, err := wire.ReadFrame(raw, 0); err != nil || op != wire.OpError {
		t.Fatalf("bare GET: op=%#x err=%v, want OpError", op, err)
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := snap.Counter(`dbpl_server_requests_total{op="PUT"}`); got != 2 {
		t.Errorf(`requests_total{op="PUT"} = %d, want 2`, got)
	}
	if got, _ := snap.Counter(`dbpl_server_requests_total{op="GET"}`); got < 2 {
		t.Errorf(`requests_total{op="GET"} = %d, want >= 2 (client GET + bare GET)`, got)
	}
	if hist, ok := snap.Histogram(`dbpl_server_request_seconds{op="PUT"}`); !ok || hist.Count != 2 {
		t.Errorf(`request_seconds{op="PUT"} count = %d, want 2 (every request timed)`, hist.Count)
	}
	if got, _ := snap.Counter(`dbpl_server_errors_total{code="bad-request"}`); got == 0 {
		t.Error("bad request was not counted under its error code")
	}
	commits, _ := snap.Counter("dbpl_server_commits_total")
	if commits < 2 {
		t.Errorf("commits_total = %d, want >= 2 (each Put is a commit group)", commits)
	}
	if hist, ok := snap.Histogram("dbpl_server_commit_seconds"); !ok || hist.Count != commits {
		t.Errorf("commit_seconds count = %d, want %d (every commit timed)", hist.Count, commits)
	}
	if hist, ok := snap.Histogram("dbpl_server_commit_group_ops"); !ok || hist.Sum < 2 {
		t.Errorf("commit_group_ops sum = %d, want >= 2 ops across groups", hist.Sum)
	}
	if got, _ := snap.Gauge("dbpl_server_roots"); got != 2 {
		t.Errorf("roots gauge = %d, want 2", got)
	}
	if got, _ := snap.Gauge("dbpl_server_sessions"); got < 1 {
		t.Errorf("sessions gauge = %d, want >= 1 (this very connection)", got)
	}
	if got, _ := snap.Gauge("dbpl_server_uptime_ns"); got <= 0 {
		t.Errorf("uptime gauge = %d, want > 0", got)
	}
	// STATS counts itself: the snapshot was taken during the STATS request,
	// so in-flight is at least 1 at capture time... except STATS bypasses
	// admission and never touches the in-flight gauge. What must hold is
	// that the STATS request itself shows up on the next snapshot.
	snap2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := snap2.Counter(`dbpl_server_requests_total{op="STATS"}`); got < 1 {
		t.Errorf(`requests_total{op="STATS"} = %d, want >= 1`, got)
	}
}

// TestTraceReachesSlowLog: a negative threshold records every request, so
// the client's wire-propagated trace IDs must land in the ring — the
// whole point of the extension is correlating a client call site with a
// server-side slow operation.
func TestTraceReachesSlowLog(t *testing.T) {
	h := bootCfg(t, filepath.Join(t.TempDir(), "store.log"), nil,
		server.Config{SlowOpThreshold: -1})
	c := dial(t, h, nil)

	if err := c.Put("alice", emp("Alice", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}

	ops := h.srv.SlowOps()
	if len(ops) == 0 {
		t.Fatal("negative threshold recorded nothing")
	}
	var put *telemetry.SlowOp
	for i := range ops {
		if ops[i].Op == "PUT" {
			put = &ops[i]
			break
		}
	}
	if put == nil {
		t.Fatalf("no PUT in the slow log: %+v", ops)
	}
	if put.Trace == 0 {
		t.Error("PUT entry lost its client trace ID")
	}
	if put.Session == "" {
		t.Error("PUT entry has no session address")
	}
	if put.Duration <= 0 {
		t.Errorf("PUT duration = %v, want > 0", put.Duration)
	}
	if put.Time.IsZero() || time.Since(put.Time) > time.Minute {
		t.Errorf("PUT timestamp %v is not recent", put.Time)
	}

	// DisableTrace turns the client extension off; the entry records
	// trace 0 rather than inventing one.
	c2 := dial(t, h, &client.Options{DisableTrace: true})
	if _, err := c2.Names(); err != nil {
		t.Fatal(err)
	}
	for _, op := range h.srv.SlowOps() {
		if op.Op == "NAMES" && op.Trace != 0 {
			t.Errorf("untraced NAMES recorded trace %#x, want 0", op.Trace)
		}
	}
}

// TestHealthConsistentWithTelemetry is the tear-fix regression: HEALTH is
// now derived from one registry snapshot, so its fields must agree with
// the committed state — roots after a Put, a live session, real uptime.
func TestHealthConsistentWithTelemetry(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "store.log"))
	c := dial(t, h, nil)

	if err := c.Put("alice", emp("Alice", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	hl, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if hl.Poisoned {
		t.Error("healthy server reports poisoned")
	}
	if hl.Roots != 1 {
		t.Errorf("Health.Roots = %d, want 1", hl.Roots)
	}
	if hl.Sessions < 1 {
		t.Errorf("Health.Sessions = %d, want >= 1", hl.Sessions)
	}
	if hl.Uptime <= 0 {
		t.Errorf("Health.Uptime = %v, want > 0", hl.Uptime)
	}
	if hl.InFlight < 0 {
		t.Errorf("Health.InFlight = %d, want >= 0", hl.InFlight)
	}
}

// TestOpsHandlerEndpoints exercises the HTTP side: /metrics speaks the
// Prometheus text format with the right content type, /slowops is JSON,
// and the pprof index answers.
func TestOpsHandlerEndpoints(t *testing.T) {
	h := bootCfg(t, filepath.Join(t.TempDir(), "store.log"), nil,
		server.Config{SlowOpThreshold: -1})
	c := dial(t, h, nil)
	if err := c.Put("alice", emp("Alice", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}

	web := httptest.NewServer(h.srv.OpsHandler())
	defer web.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ctype, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ctype != telemetry.PromContentType {
		t.Errorf("/metrics content type %q, want %q", ctype, telemetry.PromContentType)
	}
	for _, want := range []string{
		"# TYPE dbpl_server_requests_total counter",
		`dbpl_server_requests_total{op="PUT"} 1`,
		"dbpl_server_request_seconds_bucket",
		"dbpl_server_inflight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, _, body = get("/slowops")
	if code != http.StatusOK {
		t.Fatalf("/slowops status %d", code)
	}
	var slow []telemetry.SlowOp
	if err := json.Unmarshal([]byte(body), &slow); err != nil {
		t.Fatalf("/slowops is not a JSON SlowOp array: %v\n%s", err, body)
	}
	if len(slow) == 0 {
		t.Error("/slowops empty despite a record-everything threshold")
	}

	if code, _, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}
