// The failover chaos battery (`make failover-tests`): epoch-fenced
// follower promotion, stale-primary demotion, divergent-rejoin refusal,
// and client-driven write failover, each under the faults that motivate
// them — a dead primary, a partition straddling the promotion, a bit
// flip or a silently hung link in the middle of it.
//
// The three invariants under test:
//
//  1. Durability across promotion: every write acked at-or-below the
//     follower's durable end when the primary died is readable on the
//     promoted follower — and its log remains a byte prefix of what the
//     old primary held, extended only by the epoch record and new
//     commits.
//  2. Fencing: once a higher epoch exists, the stale primary's write
//     path answers CodeFenced naming its successor; writes it acked
//     while partitioned survive in its own log (never truncated) but do
//     not leak into the new history.
//  3. Divergence is typed, never silent: an old primary rejoining with
//     forked history gets a *intrinsic.DivergenceError and keeps its
//     log intact, rather than having the fork overwritten.
package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dbpl/client"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/server"
	"dbpl/internal/server/netfault"
	"dbpl/internal/server/wire"
	"dbpl/internal/value"
)

// promotableCfg is replCfg plus the promotion gate — the config an
// operator gives a follower that is allowed to take over.
func promotableCfg(primary string) server.Config {
	cfg := replCfg(primary)
	cfg.AllowPromote = true
	return cfg
}

// waitRole polls a server's HEALTH until it reports the wanted role.
func waitRole(t *testing.T, c *client.Client, want wire.Role) client.Health {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health()
		if err == nil && h.Role == want {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reached role %v (last health %+v, err %v)", want, h, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFailoverPromoteAfterPrimaryDeath is invariant 1 end to end: the
// primary dies, the follower is promoted by the operator verb, and every
// write acked at-or-below the follower's durable end survives — the log
// grows by exactly the epoch record plus new commits, byte-preserving
// the old primary's history as a prefix.
func TestFailoverPromoteAfterPrimaryDeath(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	for i, name := range []string{"e1", "e2", "e3"} {
		if err := pc.Put(name, emp(name, int64(i+1), "Sales"), employeeT); err != nil {
			t.Fatal(err)
		}
	}
	// Promotion is an explicit operator grant, not a default capability:
	// a server booted without -allow-promote refuses the verb.
	if _, err := pc.Promote(); err == nil || !strings.Contains(err.Error(), "allow-promote") {
		t.Fatalf("PROMOTE without AllowPromote: %v, want a refusal naming the flag", err)
	}

	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, promotableCfg(p.addr))
	waitConverged(t, p, f)
	ackedEnd := f.store.DurableEnd() // every write acked by p is at or below this
	p.stop()

	fc := dial(t, f, noRetry())
	epoch, err := fc.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("promotion epoch = %d, want 1 (first promotion of this log)", epoch)
	}
	h := waitRole(t, fc, wire.RolePrimary)
	if h.ReadOnly || h.Epoch != 1 {
		t.Fatalf("promoted HEALTH = %+v, want writable primary at epoch 1", h)
	}

	// Invariant 1: everything acked at-or-below ackedEnd is readable.
	got, err := fc.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"e1", "e2", "e3"}; fmt.Sprint(namesOf(got)) != fmt.Sprint(want) {
		t.Fatalf("promoted follower GET = %v, want %v", namesOf(got), want)
	}
	// The write path is live again — the inverse of the follower refusal.
	if err := fc.Put("e4", emp("e4", 4, "Manuf"), employeeT); err != nil {
		t.Fatalf("PUT on promoted follower: %v", err)
	}

	// Byte-level: everything shipped before the death is still a byte
	// prefix of the survivor's log; the promotion appended, never rewrote.
	// (The comparison stops at ackedEnd — the dead primary's shutdown path
	// appends a final group of its own that never shipped.)
	pb, err := os.ReadFile(p.path)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(f.path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(pb)) < ackedEnd || int64(len(fb)) <= ackedEnd ||
		!bytes.Equal(fb[:ackedEnd], pb[:ackedEnd]) {
		t.Fatalf("promoted log (%d bytes) is not a strict byte extension of the shipped prefix [0,%d)",
			len(fb), ackedEnd)
	}
	// Epoch is monotonic: a second promotion (e.g. failing back later)
	// bumps again rather than reusing the number.
	if e2, err := fc.Promote(); err != nil || e2 != 2 {
		t.Fatalf("second Promote = (%d, %v), want (2, nil)", e2, err)
	}
}

// TestFailoverFencedPrimaryRefusesLateAcks is invariant 2: the primary is
// partitioned from its follower mid-stream and keeps acking writes; the
// follower is promoted behind the partition; when the partition heals,
// the fence notification lands and the old primary's write path answers
// CodeFenced naming its successor. The writes it acked while partitioned
// stay in its own log — readable, never truncated — but are absent from
// the new history.
func TestFailoverFencedPrimaryRefusesLateAcks(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, noRetry())
	if err := pc.Put("shared", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	px, err := netfault.New(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, promotableCfg(px.Addr()))
	waitConverged(t, p, f)

	// The partition opens; the stale primary keeps acking writes that can
	// no longer ship. These are exactly the at-risk writes the runbook
	// warns about.
	px.Partition()
	for _, n := range []string{"late1", "late2"} {
		if err := pc.Put(n, value.String(n), nil); err != nil {
			t.Fatalf("stale primary refused %s during partition: %v", n, err)
		}
	}

	fc := dial(t, f, noRetry())
	if _, err := fc.Promote(); err != nil {
		t.Fatalf("Promote behind partition: %v", err)
	}
	// The new history moves on without the late writes.
	if err := fc.Put("newhist", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}

	// Heal: the new primary's retried fence notification gets through and
	// the old primary demotes itself.
	px.Heal()
	waitRole(t, pc, wire.RoleFenced)

	// The fence decision is visible on the write path: CodeFenced, naming
	// the successor so a human (or a failover client) knows where to go.
	err = pc.Put("after-fence", value.Int(3), nil)
	if !errors.Is(err, client.ErrFenced) {
		t.Fatalf("PUT on fenced primary: %v, want ErrFenced", err)
	}
	if !strings.Contains(err.Error(), f.addr) {
		t.Fatalf("fenced refusal %q does not name the new primary %s", err, f.addr)
	}
	if n := counter(p, "dbpl_repl_fenced_refusals_total"); n < 1 {
		t.Errorf("fenced refusal counter = %d, want >= 1", n)
	}

	// The late acks survive in the old primary's own log (no truncation) …
	names, err := pc.Names()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"late1", "late2", "shared"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("fenced primary NAMES = %v: acked root %q was lost", names, want)
		}
	}
	// … and never leak into the new history.
	fnames, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fnames {
		if n == "late1" || n == "late2" {
			t.Fatalf("unshipped write %q leaked into the new primary's history", n)
		}
	}

	// A client pinned to the fenced primary with a failover set follows
	// the fence to the successor on its own.
	foc := dial(t, p, &client.Options{Replicas: []string{f.addr}, RequestTimeout: 2 * time.Second})
	if err := foc.Put("via-failover", value.Int(4), nil); err != nil {
		t.Fatalf("failover client PUT through fenced primary: %v", err)
	}
	if n := foc.Telemetry().Counter("dbpl_client_failovers_total").Value(); n != 1 {
		t.Errorf("client failovers counter = %d, want 1", n)
	}
	h, err := fc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != wire.RolePrimary || h.Epoch != 1 {
		t.Fatalf("new primary HEALTH = %+v, want primary at epoch 1", h)
	}
}

// TestFailoverDivergentRejoinRefused is invariant 3: the old primary
// forked (it acked writes that never shipped) and the new primary's
// history moved past the shared prefix. When the old primary rejoins as
// a follower, rejoin verification ends in a typed DivergenceError; its
// forked log is left byte-for-byte intact and its reads keep working.
func TestFailoverDivergentRejoinRefused(t *testing.T) {
	dir := t.TempDir()
	ppath := filepath.Join(dir, "primary.log")
	p1 := bootAt(t, ppath, freeAddr(t), server.Config{})
	pc := dial(t, p1, noRetry())
	if err := pc.Put("shared", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	px, err := netfault.New(p1.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, promotableCfg(px.Addr()))
	waitConverged(t, p1, f)

	// Fork: behind the partition the old primary acks "old-fork" (never
	// ships), while the promoted follower commits "new-fork" at the same
	// offset of a different history.
	px.Partition()
	if err := pc.Put("old-fork", value.String("acked but never shipped"), nil); err != nil {
		t.Fatal(err)
	}
	fc := dial(t, f, noRetry())
	if _, err := fc.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := fc.Put("new-fork", value.String("the new history"), nil); err != nil {
		t.Fatal(err)
	}

	// Rejoin: restart the old primary as a follower of its successor,
	// capturing its log output so the typed refusal is observable.
	p1.stop()
	var logMu sync.Mutex
	var logBuf strings.Builder
	cfg := replCfg(f.addr)
	cfg.Logf = func(format string, args ...any) {
		logMu.Lock()
		fmt.Fprintf(&logBuf, format+"\n", args...)
		logMu.Unlock()
	}
	p2 := bootAt(t, ppath, freeAddr(t), cfg)
	forkedEnd := p2.store.DurableEnd()

	// The refusal is typed and permanent: the follow loop logs the
	// DivergenceError and exits instead of retrying into the same wall.
	deadline := time.Now().Add(10 * time.Second)
	for {
		logMu.Lock()
		logged := logBuf.String()
		logMu.Unlock()
		if strings.Contains(logged, "diverges at offset") && strings.Contains(logged, "refusing to truncate") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoin never surfaced the typed divergence refusal; log:\n%s", logged)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Never silent truncation: the forked log did not move — no byte
	// appended, none removed — while the new history kept growing.
	if end := p2.store.DurableEnd(); end != forkedEnd {
		t.Fatalf("rejoining old primary's durable end moved %d -> %d; divergence must freeze the log", forkedEnd, end)
	}
	if f.store.DurableEnd() <= intrinsic.HeaderSize {
		t.Fatal("new primary's history vanished")
	}
	// The fork stays readable on the refused node (reads keep working; the
	// runbook salvages from here), and stays out of the new history.
	p2c := dial(t, p2, noRetry())
	names, err := p2c.Names()
	if err != nil {
		t.Fatal(err)
	}
	haveFork := false
	for _, n := range names {
		haveFork = haveFork || n == "old-fork"
	}
	if !haveFork {
		t.Fatalf("refused node NAMES = %v: forked root 'old-fork' was lost", names)
	}
	fnames, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fnames {
		if n == "old-fork" {
			t.Fatal("forked root 'old-fork' leaked into the new history during rejoin")
		}
	}
}

// TestFailoverFlipByteDuringPromotion: a bit flip corrupts the
// replication stream in the same instant the follower is promoted. The
// frame CRC keeps the damaged group out of the follower's log, so the
// promoted log is a clean whole prefix of the old primary's plus the
// epoch record — promotion never launders wire corruption into history.
func TestFailoverFlipByteDuringPromotion(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	if err := pc.Put("pre", value.Int(0), nil); err != nil {
		t.Fatal(err)
	}
	px, err := netfault.New(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	// A long heartbeat keeps the stream quiet between commits so the
	// armed flip lands inside the next REPDATA frame.
	cfg := server.Config{Follow: px.Addr(), ReplHeartbeat: 5 * time.Second, AllowPromote: true}
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, cfg)
	waitConverged(t, p, f)

	px.FlipByte(netfault.ServerToClient, px.Forwarded(netfault.ServerToClient)+10)
	if err := pc.Put("flipped", value.String("in flight during promotion"), nil); err != nil {
		t.Fatal(err)
	}
	// Promote while the corrupted frame is in flight / being refused.
	preEnd := f.store.DurableEnd()
	fc := dial(t, f, noRetry())
	if _, err := fc.Promote(); err != nil {
		t.Fatalf("Promote during wire corruption: %v", err)
	}
	if err := fc.Put("after", value.Int(1), nil); err != nil {
		t.Fatalf("PUT after promotion: %v", err)
	}

	// Whatever the follower had applied before promotion is byte-identical
	// to the primary's prefix: the flipped frame never touched the log.
	pb, err := os.ReadFile(p.path)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(f.path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(pb)) < preEnd || int64(len(fb)) < preEnd || !bytes.Equal(fb[:preEnd], pb[:preEnd]) {
		t.Fatalf("promoted log's pre-promotion prefix [0,%d) diverges from the primary's — corruption leaked", preEnd)
	}
	names, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pre", "after"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("promoted NAMES = %v, want %q present", names, want)
		}
	}
}

// TestFailoverHeartbeatLossDuringPromotion: the follower's upstream link
// is silently hung — TCP up, no bytes, no FIN — which is the failure
// heartbeats exist to catch. Promotion in that state must not block on
// the hung link: stopFollow severs it locally and the epoch bump
// proceeds.
func TestFailoverHeartbeatLossDuringPromotion(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	pc := dial(t, p, nil)
	if err := pc.Put("pre", value.Int(0), nil); err != nil {
		t.Fatal(err)
	}
	px, err := netfault.New(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, promotableCfg(px.Addr()))
	waitConverged(t, p, f)

	// Kill the live stream and arm the hang: the follower's redial is
	// accepted but answered with silence.
	px.HangNextConn()
	px.Partition()
	px.Heal()
	time.Sleep(100 * time.Millisecond) // let the redial land in the hang

	start := time.Now()
	fc := dial(t, f, noRetry())
	epoch, err := fc.Promote()
	if err != nil {
		t.Fatalf("Promote with hung upstream link: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("promotion with hung link took %v; must sever locally, not wait out the hang", took)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	if err := fc.Put("after", value.Int(1), nil); err != nil {
		t.Fatalf("PUT after promotion: %v", err)
	}
	h := waitRole(t, fc, wire.RolePrimary)
	if h.ReadOnly {
		t.Fatalf("promoted HEALTH = %+v, want writable", h)
	}
}

// TestClientWriteFailover: the client's Replicas list is a failover set.
// With the primary dead and the follower promoted, the next write fails
// over by probing HEALTH for the highest-epoch writable node, re-pins,
// and replays under the same idempotency key — the caller sees one
// successful Put and exactly one copy of the write.
func TestClientWriteFailover(t *testing.T) {
	dir := t.TempDir()
	p := boot(t, filepath.Join(dir, "primary.log"))
	f := bootCfg(t, filepath.Join(dir, "follower.log"), nil, promotableCfg(p.addr))

	c := dial(t, p, &client.Options{Replicas: []string{f.addr}, RequestTimeout: 2 * time.Second})
	for i, name := range []string{"w1", "w2"} {
		if err := c.Put(name, emp(name, int64(i+1), "Ops"), employeeT); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, p, f)
	p.stop()
	fc := dial(t, f, noRetry())
	if _, err := fc.Promote(); err != nil {
		t.Fatal(err)
	}

	// The pinned conns are dead; this write must fail over and land.
	if err := c.Put("w3", emp("w3", 3, "Ops"), employeeT); err != nil {
		t.Fatalf("PUT across failover: %v", err)
	}
	if n := c.Telemetry().Counter("dbpl_client_failovers_total").Value(); n != 1 {
		t.Errorf("client failovers counter = %d, want exactly 1", n)
	}
	// Exactly once: the replayed write exists exactly once in the
	// surviving history, alongside everything acked before the failover.
	got, err := fc.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"w1", "w2", "w3"}; fmt.Sprint(namesOf(got)) != fmt.Sprint(want) {
		t.Fatalf("post-failover GET = %v, want %v", namesOf(got), want)
	}
	// The pin is sticky: later writes go straight to the new primary with
	// no further probing.
	if err := c.Put("w4", emp("w4", 4, "Ops"), employeeT); err != nil {
		t.Fatalf("PUT after failover settled: %v", err)
	}
	if n := c.Telemetry().Counter("dbpl_client_failovers_total").Value(); n != 1 {
		t.Errorf("client failovers counter moved to %d after a settled write, want 1", n)
	}
	// Transactions fail over too: BEGIN re-pins the session dial.
	sess, err := c.Begin()
	if err != nil {
		t.Fatalf("Begin on failed-over client: %v", err)
	}
	if err := sess.Put("w5", emp("w5", 5, "Ops"), employeeT); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatalf("Commit on failed-over session: %v", err)
	}
	names, err := fc.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 {
		t.Fatalf("NAMES after session failover = %v, want 5 roots", names)
	}
}
