// Package netfault is the scriptable TCP proxy behind the chaos battery,
// the network twin of persist/iofault: iofault makes the disk's failure
// modes injectable, netfault does the same for the wire. A Proxy sits
// between a client and a dbpl server and can, on command, add latency,
// reset a connection after forwarding exactly N bytes, black-hole a
// direction (data vanishes but the connection stays up — a silent drop,
// not an error), partition the network entirely, or flip a byte in
// flight. The e2e chaos tests drive these to prove the acknowledgement
// contract: no acknowledged commit is lost, retried writes apply exactly
// once, and every fault surfaces as a typed error rather than a hang.
//
// Faults are scripted per direction. Byte offsets are measured in bytes
// observed so far in that direction across all connections (black-holed
// bytes count: they were observed, just not delivered), so a test can
// say "reset the server's very next response byte" with
// ResetAfter(ServerToClient, 0) regardless of earlier traffic.
package netfault

import (
	"io"
	"net"
	"sync"
	"time"
)

// Dir is a traffic direction through the proxy.
type Dir int

const (
	// ClientToServer is traffic from the dialing side toward the target.
	ClientToServer Dir = iota
	// ServerToClient is traffic from the target back to the dialer.
	ServerToClient
)

func (d Dir) String() string {
	if d == ClientToServer {
		return "client→server"
	}
	return "server→client"
}

// rules is the fault script for one direction.
type rules struct {
	forwarded int64 // bytes observed so far (including black-holed)
	resetAt   int64 // absolute observed-byte offset to reset at; -1 = off
	flipAt    int64 // absolute observed-byte offset to corrupt; -1 = off
	blackhole bool
}

// Proxy is one scriptable TCP relay in front of a fixed target address.
// All methods are safe for concurrent use; faults apply to every current
// and future connection until cleared.
type Proxy struct {
	target string
	ln     net.Listener

	mu          sync.Mutex
	dirs        [2]rules
	latency     time.Duration
	partitioned bool
	hangNext    bool                  // one-shot: hang the next accepted conn
	links       map[net.Conn]struct{} // live upstream+downstream conns
	closed      bool
}

// New starts a proxy on an ephemeral localhost port relaying to target.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, links: make(map[net.Conn]struct{})}
	p.dirs[ClientToServer] = rules{resetAt: -1, flipAt: -1}
	p.dirs[ServerToClient] = rules{resetAt: -1, flipAt: -1}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting and severs every live link.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.dropLinks()
	return err
}

// SetLatency delays every forwarded chunk by d (both directions).
// Zero clears it.
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latency = d
}

// ResetAfter arms a one-shot reset: after n more bytes are observed in
// dir, both sides of that link are torn down with an RST (not a clean
// FIN), so the peer sees a connection error mid-stream. n = 0 means the
// very next byte triggers it.
func (p *Proxy) ResetAfter(dir Dir, n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dirs[dir].resetAt = p.dirs[dir].forwarded + n
}

// FlipByte arms a one-shot corruption: the byte at offset off (relative
// to bytes observed so far in dir) is XORed with 0xFF before forwarding.
func (p *Proxy) FlipByte(dir Dir, off int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dirs[dir].flipAt = p.dirs[dir].forwarded + off
}

// Blackhole silently discards traffic in dir while on: bytes are
// observed (counters advance) but never delivered, and the connection
// stays up — the peer just waits. The slow-reader / lost-datagram
// simulation, as opposed to ResetAfter's loud failure.
func (p *Proxy) Blackhole(dir Dir, on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dirs[dir].blackhole = on
}

// HangNextConn arms a one-shot hang: the next accepted connection is
// established normally (the dialer's connect succeeds) but never
// relayed — no upstream is dialed, incoming bytes are read and silently
// discarded, and nothing is ever written back. No RST, no FIN, no
// error: the peer's requests enter a working TCP stream and simply
// never get answers. This is how a dead-but-not-disconnected server
// looks from outside, and it is the fault that only a timeout can
// detect — the heartbeat-loss leg of the failover battery drives it to
// prove promotion does not depend on the old primary failing loudly.
// One-shot: connections after the hung one relay normally.
func (p *Proxy) HangNextConn() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hangNext = true
}

// Partition severs every live link with an RST and makes new connections
// die immediately after accept, until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.mu.Unlock()
	p.dropLinks()
}

// Heal ends a Partition; new connections relay normally again.
func (p *Proxy) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = false
}

// Forwarded reports the bytes observed so far in dir (black-holed bytes
// included).
func (p *Proxy) Forwarded(dir Dir) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirs[dir].forwarded
}

// dropLinks RSTs every live connection pair.
func (p *Proxy) dropLinks() {
	p.mu.Lock()
	links := make([]net.Conn, 0, len(p.links))
	for c := range p.links {
		links = append(links, c)
	}
	p.links = make(map[net.Conn]struct{})
	p.mu.Unlock()
	for _, c := range links {
		abort(c)
	}
}

// abort closes c with an RST rather than a clean FIN, so the peer's next
// read fails loudly instead of looking like an orderly shutdown.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) acceptLoop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return // Close
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			abort(down)
			continue
		}
		hang := p.hangNext
		p.hangNext = false
		p.mu.Unlock()
		if hang {
			go p.hang(down)
			continue
		}
		go p.relay(down)
	}
}

// hang holds a connection open forever without relaying it: incoming
// bytes are drained (so the peer's writes succeed and its socket buffers
// never push back) and discarded, and no byte ever flows back. The link
// dies only when the peer gives up, or when Close/Partition tears every
// link down.
func (p *Proxy) hang(down net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		abort(down)
		return
	}
	p.links[down] = struct{}{}
	p.mu.Unlock()
	buf := make([]byte, 32<<10)
	for {
		if _, err := down.Read(buf); err != nil {
			break
		}
	}
	p.mu.Lock()
	delete(p.links, down)
	p.mu.Unlock()
	down.Close()
}

// relay dials the target and pumps both directions until either side
// dies or a scripted reset fires.
func (p *Proxy) relay(down net.Conn) {
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		abort(down)
		return
	}
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.mu.Unlock()
		abort(down)
		abort(up)
		return
	}
	p.links[down] = struct{}{}
	p.links[up] = struct{}{}
	p.mu.Unlock()

	done := func() {
		p.mu.Lock()
		delete(p.links, down)
		delete(p.links, up)
		p.mu.Unlock()
		abort(down)
		abort(up)
	}
	var once sync.Once
	go func() {
		p.pump(ClientToServer, down, up)
		once.Do(done)
	}()
	p.pump(ServerToClient, up, down)
	once.Do(done)
}

// pump forwards src→dst chunk by chunk, applying the direction's script
// to each chunk. It returns when the stream ends, a write fails, or a
// scripted reset consumes the link.
func (p *Proxy) pump(dir Dir, src, dst net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]

			p.mu.Lock()
			r := &p.dirs[dir]
			start := r.forwarded
			r.forwarded += int64(n)
			latency := p.latency
			drop := r.blackhole
			if r.flipAt >= start && r.flipAt < start+int64(n) {
				chunk[r.flipAt-start] ^= 0xFF
				r.flipAt = -1
			}
			reset := r.resetAt >= 0 && r.resetAt < start+int64(n)
			if reset {
				// Deliver only the bytes before the reset point, so
				// "reset after N" means exactly N bytes arrived.
				chunk = chunk[:r.resetAt-start]
				r.resetAt = -1
			}
			p.mu.Unlock()

			if latency > 0 {
				time.Sleep(latency)
			}
			if !drop && len(chunk) > 0 {
				if _, werr := dst.Write(chunk); werr != nil {
					return
				}
			}
			if reset {
				abort(src)
				abort(dst)
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Propagate a clean EOF as a half-close when possible.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}
