package netfault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back, returning
// its address.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func proxyTo(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// echo sends msg and reads back the same number of bytes.
func echo(c net.Conn, msg []byte) ([]byte, error) {
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err := io.ReadFull(c, got)
	return got, err
}

func TestForwardsTransparently(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	msg := []byte("hello through the proxy")
	got, err := echo(c, msg)
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	if f := p.Forwarded(ClientToServer); f != int64(len(msg)) {
		t.Errorf("Forwarded(ClientToServer) = %d, want %d", f, len(msg))
	}
	if f := p.Forwarded(ServerToClient); f != int64(len(msg)) {
		t.Errorf("Forwarded(ServerToClient) = %d, want %d", f, len(msg))
	}
}

func TestLatencyDelaysChunks(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	p.SetLatency(50 * time.Millisecond)
	c := dial(t, p.Addr())
	start := time.Now()
	if _, err := echo(c, []byte("slow")); err != nil {
		t.Fatalf("echo: %v", err)
	}
	// Two traversals (request + response), each delayed once.
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Errorf("round trip took %v, want >= 100ms under 2x50ms latency", el)
	}
}

func TestResetAfterSurfacesAsError(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	if _, err := echo(c, []byte("warm")); err != nil {
		t.Fatalf("warm echo: %v", err)
	}
	// Kill the response path before its next byte.
	p.ResetAfter(ServerToClient, 0)
	if _, err := echo(c, []byte("doomed")); err == nil {
		t.Fatal("echo after reset succeeded, want connection error")
	}
}

func TestResetAfterDeliversExactPrefix(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	p.ResetAfter(ServerToClient, 3)
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(c)
	if err == nil {
		t.Fatalf("read all = %q with clean EOF, want reset error", got)
	}
	if string(got) != "abc" {
		t.Errorf("delivered %q before reset, want %q", got, "abc")
	}
}

func TestFlipByteCorruptsExactOffset(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	p.FlipByte(ServerToClient, 2)
	got, err := echo(c, []byte("abcdef"))
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	want := []byte("abcdef")
	want[2] ^= 0xFF
	if string(got) != string(want) {
		t.Errorf("got %q, want %q (byte 2 flipped)", got, want)
	}
	// One-shot: the next exchange is clean.
	got, err = echo(c, []byte("ghijkl"))
	if err != nil {
		t.Fatalf("second echo: %v", err)
	}
	if string(got) != "ghijkl" {
		t.Errorf("second echo got %q, want %q", got, "ghijkl")
	}
}

func TestBlackholeKeepsConnUp(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	p.Blackhole(ServerToClient, true)
	if _, err := c.Write([]byte("void")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 4)
	_, err := c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read during blackhole: %v, want timeout (silent drop, not reset)", err)
	}
	if f := p.Forwarded(ServerToClient); f != 4 {
		t.Errorf("Forwarded(ServerToClient) = %d, want 4 (observed though dropped)", f)
	}
	// Healing the blackhole lets new traffic flow again.
	p.Blackhole(ServerToClient, false)
	got, err := echo(c, []byte("back"))
	if err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
	if string(got) != "back" {
		t.Errorf("got %q, want %q", got, "back")
	}
}

// TestHangNextConnIsSilent: a hung connection establishes (the dial and
// the write both succeed) but never answers and never errors — the only
// way out is a timeout, which is the point of the primitive.
func TestHangNextConn(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	p.HangNextConn()
	c := dial(t, p.Addr())
	if _, err := c.Write([]byte("anybody home")); err != nil {
		t.Fatalf("write into hung conn: %v (writes must succeed silently)", err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 4)
	_, err := c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read from hung conn: %v, want timeout (no RST, no FIN, no echo)", err)
	}

	// One-shot: the next connection relays normally even while the first
	// one is still hanging.
	c2 := dial(t, p.Addr())
	got, err := echo(c2, []byte("next"))
	if err != nil {
		t.Fatalf("echo on the connection after the hang: %v", err)
	}
	if string(got) != "next" {
		t.Errorf("got %q, want %q", got, "next")
	}

	// And the hung connection is STILL silent — hanging is per-conn state,
	// not a direction script the second connection could have cleared.
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("hung conn produced bytes after a later connection relayed")
	}
}

// TestHangNextConnDrainsWrites: the hung side keeps accepting bytes
// (drained, not buffered), so a peer that streams into the void never
// blocks on TCP backpressure — it has to detect the silence by timeout.
func TestHangNextConnDrainsWrites(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	p.HangNextConn()
	c := dial(t, p.Addr())
	chunk := make([]byte, 64<<10)
	c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 16; i++ { // 1MiB total, far past any socket buffer
		if _, err := c.Write(chunk); err != nil {
			t.Fatalf("write %d into hung conn: %v (drain must prevent backpressure)", i, err)
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	addr := echoServer(t)
	p := proxyTo(t, addr)
	c := dial(t, p.Addr())
	if _, err := echo(c, []byte("pre")); err != nil {
		t.Fatalf("echo before partition: %v", err)
	}

	p.Partition()
	// The live link died.
	if _, err := echo(c, []byte("gone")); err == nil {
		t.Fatal("echo over partitioned link succeeded")
	}
	// New connections die immediately: either dial fails or first use does.
	if c2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second); err == nil {
		if _, err := echo(c2, []byte("x")); err == nil {
			t.Fatal("echo through partition succeeded")
		}
		c2.Close()
	}

	p.Heal()
	c3 := dial(t, p.Addr())
	got, err := echo(c3, []byte("post"))
	if err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
	if string(got) != "post" {
		t.Errorf("got %q, want %q", got, "post")
	}
}
