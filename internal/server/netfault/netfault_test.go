package netfault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back, returning
// its address.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func proxyTo(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// echo sends msg and reads back the same number of bytes.
func echo(c net.Conn, msg []byte) ([]byte, error) {
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err := io.ReadFull(c, got)
	return got, err
}

func TestForwardsTransparently(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	msg := []byte("hello through the proxy")
	got, err := echo(c, msg)
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	if f := p.Forwarded(ClientToServer); f != int64(len(msg)) {
		t.Errorf("Forwarded(ClientToServer) = %d, want %d", f, len(msg))
	}
	if f := p.Forwarded(ServerToClient); f != int64(len(msg)) {
		t.Errorf("Forwarded(ServerToClient) = %d, want %d", f, len(msg))
	}
}

func TestLatencyDelaysChunks(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	p.SetLatency(50 * time.Millisecond)
	c := dial(t, p.Addr())
	start := time.Now()
	if _, err := echo(c, []byte("slow")); err != nil {
		t.Fatalf("echo: %v", err)
	}
	// Two traversals (request + response), each delayed once.
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Errorf("round trip took %v, want >= 100ms under 2x50ms latency", el)
	}
}

func TestResetAfterSurfacesAsError(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	if _, err := echo(c, []byte("warm")); err != nil {
		t.Fatalf("warm echo: %v", err)
	}
	// Kill the response path before its next byte.
	p.ResetAfter(ServerToClient, 0)
	if _, err := echo(c, []byte("doomed")); err == nil {
		t.Fatal("echo after reset succeeded, want connection error")
	}
}

func TestResetAfterDeliversExactPrefix(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	p.ResetAfter(ServerToClient, 3)
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(c)
	if err == nil {
		t.Fatalf("read all = %q with clean EOF, want reset error", got)
	}
	if string(got) != "abc" {
		t.Errorf("delivered %q before reset, want %q", got, "abc")
	}
}

func TestFlipByteCorruptsExactOffset(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	p.FlipByte(ServerToClient, 2)
	got, err := echo(c, []byte("abcdef"))
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	want := []byte("abcdef")
	want[2] ^= 0xFF
	if string(got) != string(want) {
		t.Errorf("got %q, want %q (byte 2 flipped)", got, want)
	}
	// One-shot: the next exchange is clean.
	got, err = echo(c, []byte("ghijkl"))
	if err != nil {
		t.Fatalf("second echo: %v", err)
	}
	if string(got) != "ghijkl" {
		t.Errorf("second echo got %q, want %q", got, "ghijkl")
	}
}

func TestBlackholeKeepsConnUp(t *testing.T) {
	p := proxyTo(t, echoServer(t))
	c := dial(t, p.Addr())
	p.Blackhole(ServerToClient, true)
	if _, err := c.Write([]byte("void")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 4)
	_, err := c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read during blackhole: %v, want timeout (silent drop, not reset)", err)
	}
	if f := p.Forwarded(ServerToClient); f != 4 {
		t.Errorf("Forwarded(ServerToClient) = %d, want 4 (observed though dropped)", f)
	}
	// Healing the blackhole lets new traffic flow again.
	p.Blackhole(ServerToClient, false)
	got, err := echo(c, []byte("back"))
	if err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
	if string(got) != "back" {
		t.Errorf("got %q, want %q", got, "back")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	addr := echoServer(t)
	p := proxyTo(t, addr)
	c := dial(t, p.Addr())
	if _, err := echo(c, []byte("pre")); err != nil {
		t.Fatalf("echo before partition: %v", err)
	}

	p.Partition()
	// The live link died.
	if _, err := echo(c, []byte("gone")); err == nil {
		t.Fatal("echo over partitioned link succeeded")
	}
	// New connections die immediately: either dial fails or first use does.
	if c2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second); err == nil {
		if _, err := echo(c2, []byte("x")); err == nil {
			t.Fatal("echo through partition succeeded")
		}
		c2.Close()
	}

	p.Heal()
	c3 := dial(t, p.Addr())
	got, err := echo(c3, []byte("post"))
	if err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
	if string(got) != "post" {
		t.Errorf("got %q, want %q", got, "post")
	}
}
