// The ops endpoint: an optional HTTP listener (`dbpl serve -ops addr`)
// exposing the same telemetry the wire protocol serves, in the formats
// operational tooling expects — Prometheus text exposition, a JSON
// slow-op log, and net/http/pprof. It shares the server's registry, so a
// scrape and a STATS frame report the same numbers.
//
// The endpoint is unauthenticated by design (like the wire protocol);
// cmd/dbpl binds it to loopback by default and docs/OBSERVABILITY.md
// carries the security note.
package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"dbpl/internal/telemetry"
	rtrace "dbpl/internal/telemetry/trace"
)

// OpsHandler returns the HTTP handler for the ops endpoint:
//
//	/metrics        Prometheus text exposition of the registry
//	/slowops        JSON array of retained slow operations, newest first
//	/traces         JSON array of retained span trees, newest first
//	/debug/pprof/*  the standard runtime profiles
//
// The handler is safe for concurrent use and never touches locks a
// wedged writer could hold — all views are computed from snapshots.
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.m.reg.Snapshot()
		w.Header().Set("Content-Type", telemetry.PromContentType)
		snap.WriteProm(w)
	})
	mux.HandleFunc("/slowops", func(w http.ResponseWriter, r *http.Request) {
		ops := s.SlowOps()
		if ops == nil {
			ops = []telemetry.SlowOp{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ops)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		ds := s.Traces()
		if ds == nil {
			ds = []rtrace.Data{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ds)
	})
	// pprof's package-level handlers register on http.DefaultServeMux; wire
	// the explicit funcs instead so the ops mux is self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
