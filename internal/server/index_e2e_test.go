package server_test

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dbpl/internal/server/wire"
)

// TestE2EIndexLifecycle drives the index-administration opcodes through
// the client: create (idempotent), queries stay correct while the index
// exists, EXPLAIN renders both plan kinds, drop (reports existence).
func TestE2EIndexLifecycle(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "idx.log"))
	c := dial(t, h, nil)

	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("emp%d", i)
		if err := c.Put(name, emp(name, int64(i), "Lab"), employeeT); err != nil {
			t.Fatal(err)
		}
	}
	before, err := c.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}

	created, err := c.CreateIndex("Empno")
	if err != nil || !created {
		t.Fatalf("CreateIndex = (%v, %v), want (true, nil)", created, err)
	}
	if again, err := c.CreateIndex("Empno"); err != nil || again {
		t.Fatalf("second CreateIndex = (%v, %v), want (false, nil)", again, err)
	}

	// The index must be invisible to results: same members, same order.
	after, err := c.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(namesOf(before), namesOf(after)) {
		t.Errorf("GET diverged after CreateIndex: %v vs %v", namesOf(before), namesOf(after))
	}
	// Writes keep maintaining it.
	if err := c.Put("emp8", emp("emp8", 8, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("emp0"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Errorf("after put+delete: %d members, want 8", len(got))
	}

	// EXPLAIN renders both plan kinds without executing anything.
	plan, err := c.ExplainGet(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"get path=", "cost{scan=", "candidates="} {
		if !strings.Contains(plan, want) {
			t.Errorf("ExplainGet %q missing %q", plan, want)
		}
	}
	jplan, err := c.ExplainJoin(employeeT, deptT)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jplan, "join path=") {
		t.Errorf("ExplainJoin %q missing join path", jplan)
	}

	existed, err := c.DropIndex("Empno")
	if err != nil || !existed {
		t.Fatalf("DropIndex = (%v, %v), want (true, nil)", existed, err)
	}
	if again, err := c.DropIndex("Empno"); err != nil || again {
		t.Fatalf("second DropIndex = (%v, %v), want (false, nil)", again, err)
	}
}

// TestE2EIndexDDLRefusedInTxn: index DDL is not transactional; inside
// BEGIN it must be refused with the txn code and leave no definition.
func TestE2EIndexDDLRefusedInTxn(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "idxtxn.log"))

	raw, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	roundTrip := func(op byte, fields ...[]byte) (byte, [][]byte) {
		t.Helper()
		if err := wire.WriteFrame(raw, 0, op, fields...); err != nil {
			t.Fatal(err)
		}
		respOp, respFields, err := wire.ReadFrame(raw, 0)
		if err != nil {
			t.Fatal(err)
		}
		return respOp, respFields
	}
	if op, _ := roundTrip(wire.OpBegin); op != wire.OpOK {
		t.Fatalf("BEGIN: op=%#x", op)
	}
	for _, op := range []byte{wire.OpCreateIndex, wire.OpDropIndex} {
		respOp, respFields := roundTrip(op, []byte("Empno"))
		if respOp != wire.OpError {
			t.Fatalf("%s inside txn: op=%#x, want OpError", wire.OpName(op), respOp)
		}
		if err := wire.DecodeError(respFields); !errors.Is(err, wire.ErrTxn) {
			t.Errorf("%s inside txn: %v, want ErrTxn", wire.OpName(op), err)
		}
	}
	if op, _ := roundTrip(wire.OpAbort); op != wire.OpOK {
		t.Fatalf("ABORT: op=%#x", op)
	}

	// Nothing leaked outside the refused transaction.
	c := dial(t, h, nil)
	if existed, err := c.DropIndex("Empno"); err != nil || existed {
		t.Errorf("DropIndex after refused DDL = (%v, %v), want (false, nil)", existed, err)
	}
}

// TestE2EIndexSurvivesRestart: the definition is durable (an 'X' record
// in the commit group) and the index rebuilds from the committed roots on
// reopen — so a restarted server still has it, with correct results.
func TestE2EIndexSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idxdur.log")
	h := boot(t, path)
	c := dial(t, h, nil)
	if err := c.Put("alice", emp("Alice", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	if created, err := c.CreateIndex("Dept"); err != nil || !created {
		t.Fatalf("CreateIndex = (%v, %v)", created, err)
	}
	if err := c.Put("bob", emp("Bob", 2, "Lab"), employeeT); err != nil {
		t.Fatal(err)
	}
	c.Close()
	h.stop()

	h2 := boot(t, path)
	c2 := dial(t, h2, nil)
	// The definition survived: re-declaring reports "already exists".
	if created, err := c2.CreateIndex("Dept"); err != nil || created {
		t.Fatalf("CreateIndex after restart = (%v, %v), want (false, nil)", created, err)
	}
	got, err := c2.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Alice", "Bob"}; !reflect.DeepEqual(namesOf(got), want) {
		t.Errorf("GET after restart = %v, want %v", namesOf(got), want)
	}
}

// TestStatsPlannerCounters: the planner's decisions and the index
// maintenance work surface in the STATS snapshot — the satellite's
// observability requirement. Uses pre-resolved series only.
func TestStatsPlannerCounters(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "idxstats.log"))
	c := dial(t, h, nil)

	if created, err := c.CreateIndex("Empno"); err != nil || !created {
		t.Fatalf("CreateIndex = (%v, %v)", created, err)
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("emp%d", i)
		if err := c.Put(name, emp(name, int64(i), "Lab"), employeeT); err != nil {
			t.Fatal(err)
		}
	}
	const gets = 5
	for i := 0; i < gets; i++ {
		if _, err := c.Get(employeeT); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Join(employeeT, deptT); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var chosen uint64
	for _, path := range []string{"scan", "extent", "index"} {
		n, _ := snap.Counter(`dbpl_plan_chosen_total{path="` + path + `"}`)
		chosen += n
	}
	if chosen < gets {
		t.Errorf("plan_chosen_total sums to %d, want >= %d (one per GET)", chosen, gets)
	}
	nested, _ := snap.Counter(`dbpl_plan_join_total{path="nested"}`)
	partition, _ := snap.Counter(`dbpl_plan_join_total{path="partition"}`)
	if nested+partition < 1 {
		t.Errorf("plan_join_total sums to %d, want >= 1", nested+partition)
	}
	if touched, _ := snap.Counter("dbpl_index_entries_touched_total"); touched < 6 {
		t.Errorf("index_entries_touched_total = %d, want >= 6 (each PUT maintains the index)", touched)
	}
	if defs, _ := snap.Gauge("dbpl_index_defs"); defs != 1 {
		t.Errorf("index_defs gauge = %d, want 1", defs)
	}
	if extents, _ := snap.Gauge("dbpl_index_extents"); extents != 1 {
		t.Errorf("index_extents gauge = %d, want 1 (every member the same type)", extents)
	}
	// The planner's learning loop is visible too: every executed GET
	// observed its path latency.
	var observed uint64
	for _, path := range []string{"scan", "extent", "index"} {
		if hist, ok := snap.Histogram(`dbpl_plan_path_seconds{path="` + path + `"}`); ok {
			observed += hist.Count
		}
	}
	if observed < gets {
		t.Errorf("plan_path_seconds observations = %d, want >= %d", observed, gets)
	}
	// The new opcodes have their own pre-resolved request series.
	if n, _ := snap.Counter(`dbpl_server_requests_total{op="CREATEINDEX"}`); n != 1 {
		t.Errorf(`requests_total{op="CREATEINDEX"} = %d, want 1`, n)
	}
}
