// Server-side telemetry: the metric set `dbpl serve` maintains on every
// request, and how the hot path updates it. All metrics live in one
// telemetry.Registry (shared with the persistence layer's dbpl_persist_*
// set when the store was opened through telemetry.InstrumentFS), are
// always on, and cost one or two uncontended atomics per update —
// EXPERIMENTS.md E15 measures the total against the uninstrumented seed.
package server

import (
	"time"

	"dbpl/internal/plan"
	"dbpl/internal/server/wire"
	"dbpl/internal/telemetry"
)

// numPlanPaths sizes the planner-decision counter array.
const numPlanPaths = int(plan.PathIndex) + 1

// serverMetrics is the per-server instrument set, pre-resolved into
// arrays indexed by opcode and error code so the request loop never
// touches the registry's maps. Unknown opcodes share one "unknown"
// series — a hostile peer must not be able to mint unbounded label
// cardinality.
type serverMetrics struct {
	reg *telemetry.Registry

	requests [lastKnownOp + 1]*telemetry.Counter   // per-opcode request count
	latency  [lastKnownOp + 1]*telemetry.Histogram // per-opcode request latency
	unknown  *telemetry.Counter

	errors [int(lastWireCode) + 1]*telemetry.Counter // per-code error responses

	shed     *telemetry.Counter // admission-control refusals
	degraded *telemetry.Counter // writes refused by the poisoned write path
	idemHits *telemetry.Counter // retried writes answered from the dedup cache

	commits       *telemetry.Counter   // durable commit groups published
	commitSeconds *telemetry.Histogram // store.Commit latency (fsync-dominated)
	commitOps     *telemetry.Histogram // operations per commit group

	// Group commit (coalesce.go). batchGroups is the size of each
	// promoted batch in commit groups; fsyncsSaved counts the fsyncs
	// coalescing avoided (batch size - 1, summed); commitQueueWait is how
	// long each commit sat queued before its batch began (the follower
	// wait); commitSyncSeconds is the shared batch fsync (the leader
	// wait).
	batchGroups       *telemetry.Histogram
	fsyncsSaved       *telemetry.Counter
	commitQueueWait   *telemetry.Histogram
	commitSyncSeconds *telemetry.Histogram

	inflight *telemetry.Gauge // requests admitted and not yet answered
	sessions *telemetry.Gauge // open connections

	// Planner decisions, pre-resolved per path (a closed set — no
	// cardinality hazard), and index-maintenance work done at commit.
	planChosen    [numPlanPaths]*telemetry.Counter // GET access-path picks
	joinNested    *telemetry.Counter               // JOIN planned nested-loop
	joinPartition *telemetry.Counter               // JOIN planned build/probe
	indexTouched  *telemetry.Counter               // index entries touched at commit

	// Replication. The shipped side counts what this server streamed to
	// followers; the applied side counts what this server (as a follower)
	// verified and applied; reconnects counts the follow loop's re-dials.
	replStreams       *telemetry.Gauge   // live REPLICATE subscriptions
	replGroupsShipped *telemetry.Counter // commit groups streamed out
	replBytesShipped  *telemetry.Counter // raw log bytes streamed out
	replHeartbeats    *telemetry.Counter // idle keepalives sent
	replGroupsApplied *telemetry.Counter // groups verified + applied (follower)
	replBytesApplied  *telemetry.Counter // raw log bytes applied (follower)
	replReconnects    *telemetry.Counter // follow-loop re-dials after a failure
	replReadOnly      *telemetry.Counter // writes refused with CodeReadOnly
	fencedRefusals    *telemetry.Counter // writes refused with CodeFenced (demoted primary)

	// replApplyDelay is the follower-side commit-to-apply lag: for each
	// traced commit group applied, now minus the primary's commit
	// wall-clock carried in the 6-field REPDATA form. Clock skew between
	// the two hosts leaks straight into it — it is a lag indicator, not a
	// precision measurement; negative skew clamps to zero.
	replApplyDelay *telemetry.Histogram
}

const lastKnownOp = int(wire.OpTraces)
const lastWireCode = wire.CodeFenced

// trackedOps are the request opcodes that get per-opcode series.
var trackedOps = []byte{
	wire.OpPing, wire.OpGet, wire.OpPut, wire.OpDelete, wire.OpJoin,
	wire.OpBegin, wire.OpCommit, wire.OpAbort, wire.OpNames,
	wire.OpHealth, wire.OpStats,
	wire.OpCreateIndex, wire.OpDropIndex, wire.OpExplain,
	wire.OpReplicate, wire.OpPromote, wire.OpTraces,
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{reg: reg}
	for _, op := range trackedOps {
		label := `{op="` + wire.OpName(op) + `"}`
		m.requests[op] = reg.Counter("dbpl_server_requests_total" + label)
		m.latency[op] = reg.Histogram("dbpl_server_request_seconds"+label,
			telemetry.UnitDuration, telemetry.DurationBuckets)
	}
	m.unknown = reg.Counter(`dbpl_server_requests_total{op="unknown"}`)
	for code := wire.CodeBadFrame; code <= lastWireCode; code++ {
		m.errors[code] = reg.Counter(`dbpl_server_errors_total{code="` + code.String() + `"}`)
	}
	m.shed = reg.Counter("dbpl_server_shed_total")
	m.degraded = reg.Counter("dbpl_server_degraded_refusals_total")
	m.idemHits = reg.Counter("dbpl_server_idem_hits_total")
	m.commits = reg.Counter("dbpl_server_commits_total")
	m.commitSeconds = reg.Histogram("dbpl_server_commit_seconds",
		telemetry.UnitDuration, telemetry.DurationBuckets)
	m.commitOps = reg.Histogram("dbpl_server_commit_group_ops",
		telemetry.UnitCount, telemetry.SizeBuckets)
	m.batchGroups = reg.Histogram("dbpl_commit_batch_groups",
		telemetry.UnitCount, telemetry.SizeBuckets)
	m.fsyncsSaved = reg.Counter("dbpl_commit_fsyncs_saved_total")
	m.commitQueueWait = reg.Histogram("dbpl_commit_queue_wait_seconds",
		telemetry.UnitDuration, telemetry.DurationBuckets)
	m.commitSyncSeconds = reg.Histogram("dbpl_commit_sync_seconds",
		telemetry.UnitDuration, telemetry.DurationBuckets)
	m.inflight = reg.Gauge("dbpl_server_inflight")
	m.sessions = reg.Gauge("dbpl_server_sessions")
	for p := plan.PathScan; int(p) < numPlanPaths; p++ {
		m.planChosen[p] = reg.Counter(`dbpl_plan_chosen_total{path="` + p.String() + `"}`)
	}
	m.joinNested = reg.Counter(`dbpl_plan_join_total{path="nested"}`)
	m.joinPartition = reg.Counter(`dbpl_plan_join_total{path="partition"}`)
	m.indexTouched = reg.Counter("dbpl_index_entries_touched_total")
	m.replStreams = reg.Gauge("dbpl_repl_streams")
	m.replGroupsShipped = reg.Counter("dbpl_repl_groups_shipped_total")
	m.replBytesShipped = reg.Counter("dbpl_repl_bytes_shipped_total")
	m.replHeartbeats = reg.Counter("dbpl_repl_heartbeats_total")
	m.replGroupsApplied = reg.Counter("dbpl_repl_groups_applied_total")
	m.replBytesApplied = reg.Counter("dbpl_repl_bytes_applied_total")
	m.replReconnects = reg.Counter("dbpl_repl_reconnects_total")
	m.replReadOnly = reg.Counter("dbpl_repl_readonly_refusals_total")
	m.fencedRefusals = reg.Counter("dbpl_repl_fenced_refusals_total")
	m.replApplyDelay = reg.Histogram("dbpl_repl_apply_delay_seconds",
		telemetry.UnitDuration, telemetry.DurationBuckets)

	// Operator documentation for the principal families, surfaced as
	// # HELP lines on the /metrics exposition.
	for name, help := range map[string]string{
		"dbpl_server_requests_total":     "requests served, by opcode",
		"dbpl_server_request_seconds":    "request latency by opcode, admission to response write",
		"dbpl_server_errors_total":       "error responses, by wire error code",
		"dbpl_server_commit_seconds":     "commit latency, enqueue (or lock) to durable publication",
		"dbpl_server_commits_total":      "durable commit groups published",
		"dbpl_commit_queue_wait_seconds": "time a commit sat queued before its batch began",
		"dbpl_commit_sync_seconds":       "shared batch fsync latency under group commit",
		"dbpl_commit_batch_groups":       "commit groups coalesced per shared fsync",
		"dbpl_repl_apply_delay_seconds":  "follower lag: primary commit wall-clock to local apply",
		"dbpl_trace_total":               "traces retained in the in-memory ring",
	} {
		reg.SetHelp(name, help)
	}
	return m
}

// observe records one answered request: the per-opcode count and
// latency, and the error code when the response is an error frame. A
// non-zero trace stamps the latency bucket's exemplar so an operator
// can jump from a histogram outlier to the span tree that produced it.
func (m *serverMetrics) observe(op byte, d time.Duration, respOp byte, respFields [][]byte, trace uint64) {
	if int(op) <= lastKnownOp && m.requests[op] != nil {
		m.requests[op].Inc()
		m.latency[op].ObserveDurationExemplar(d, trace)
	} else {
		m.unknown.Inc()
	}
	if respOp == wire.OpError && len(respFields) > 0 && len(respFields[0]) == 1 {
		if code := wire.Code(respFields[0][0]); code >= wire.CodeBadFrame && code <= lastWireCode {
			m.errors[code].Inc()
		}
	}
}
